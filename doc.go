// Package parbw is a simulation library reproducing Adler, Gibbons, Matias
// & Ramachandran, "Modeling Parallel Bandwidth: Local vs. Global
// Restrictions" (SPAA 1997).
//
// The library lives in internal packages (this module is a self-contained
// reproduction, not an importable SDK):
//
//	internal/model      — the BSP(g), BSP(m), QSM(g), QSM(m) cost models
//	internal/bsp        — bulk-synchronous message-passing machine simulator
//	internal/qsm        — queuing shared-memory machine simulator
//	internal/pram       — EREW/QRQW/CRCW PRAM and PRAM(m) simulators
//	internal/sched      — the Section 6.1 unbalanced-send schedulers
//	internal/collective — broadcast / reduction / prefix / one-to-all
//	internal/problems   — parity, summation, list ranking, sorting, leader
//	internal/emulate    — cross-model emulations (Section 4, Theorem 5.1)
//	internal/dynamic    — Section 6.2 adversarial dynamic routing
//	internal/queue      — M/G/1 reference analytics (Claim 6.8)
//	internal/lower      — every predicted bound as a closed-form function
//	internal/harness    — the experiment registry behind cmd/bandsim
//
// The benchmarks in bench_test.go regenerate every table of the paper's
// evaluation; run them with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the measured-versus-paper comparison.
package parbw
