// Benchmarks regenerating the paper's quantitative results: one benchmark
// per Table 1 row and per theorem-level experiment. Each benchmark runs the
// corresponding algorithms on simulated machines and reports the *simulated
// model time* as custom metrics (simtime-local, simtime-global, and their
// ratio sep-x) alongside the usual wall-clock ns/op of the simulator itself.
//
// Run: go test -bench=. -benchmem
package parbw_test

import (
	"testing"

	"parbw/internal/async"
	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/dynamic"
	"parbw/internal/emulate"
	"parbw/internal/model"
	"parbw/internal/netsim"
	"parbw/internal/pram"
	"parbw/internal/problems"
	"parbw/internal/qsm"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

const benchSeed = 1

func bspg(p, g, l int) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: benchSeed})
}

func bspmL(p, m, l int) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(m, l), Seed: benchSeed})
}

func bspmE(p, m, l int) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: benchSeed})
}

func qsmg(p, mem, g int) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: model.QSMg(g), Seed: benchSeed})
}

func qsmmL(p, mem, m int) *qsm.Machine {
	c := model.QSMm(m)
	c.Penalty = model.LinearPenalty
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: c, Seed: benchSeed})
}

// report attaches the simulated times and separation to the benchmark.
func report(b *testing.B, local, global float64) {
	b.ReportMetric(local, "simtime-local")
	b.ReportMetric(global, "simtime-global")
	if global > 0 {
		b.ReportMetric(local/global, "sep-x")
	}
}

// --- Table 1, row 1 ---

func BenchmarkTable1OneToAll(b *testing.B) {
	p, g, l := 1024, 16, 8
	vals := make([]int64, p)
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		collective.OneToAllBSP(lm, 0, vals)
		gm := bspmL(p, p/g, l)
		collective.OneToAllBSP(gm, 0, vals)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Table 1, row 2 ---

func BenchmarkTable1Broadcast(b *testing.B) {
	p, g, l := 4096, 8, 32
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		collective.BroadcastBSP(lm, 0, 1)
		gm := bspmL(p, p/g, l)
		collective.BroadcastBSP(gm, 0, 1)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

func BenchmarkTable1BroadcastQSM(b *testing.B) {
	p, g := 4096, 8
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := qsmg(p, 2*p, g)
		collective.BroadcastQSM(lm, 0, 1)
		gm := qsmmL(p, 2*p, p/g)
		collective.BroadcastQSM(gm, 0, 1)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Table 1, row 3 ---

func BenchmarkTable1Parity(b *testing.B) {
	p, g, l := 1024, 16, 16
	rng := xrand.New(benchSeed)
	bits := make([]int64, p)
	for i := range bits {
		bits[i] = int64(rng.Intn(2))
	}
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		problems.ParityBSP(lm, bits)
		gm := bspmL(p, p/g, l)
		problems.ParityBSP(gm, bits)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Table 1, row 4 ---

func BenchmarkTable1ListRank(b *testing.B) {
	// Separation regime: large gap, small latency (the Ω(lg n/lg lg n)
	// separation of Table 1 row 4 needs g ≫ L, else L·rounds dominates
	// both models).
	p, g, l := 1024, 32, 2
	rng := xrand.New(benchSeed)
	list := problems.RandomList(rng, p)
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		problems.ListRankContractBSP(lm, list)
		gm := bspmL(p, p/g, l)
		problems.ListRankContractBSP(gm, list)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Table 1, row 5 ---

func BenchmarkTable1Sort(b *testing.B) {
	p, g, l := 1024, 16, 8
	rng := xrand.New(benchSeed)
	keys := make([]int64, p)
	for i := range keys {
		keys[i] = int64(rng.Uint64() % 100003)
	}
	q := 8
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		problems.ColumnsortBSP(lm, keys, q)
		gm := bspmL(p, p/g, l)
		problems.ColumnsortBSP(gm, keys, q)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Section 4.2: ternary non-receipt broadcast vs Theorem 4.1 ---

func BenchmarkBroadcastTernary(b *testing.B) {
	p, g, l := 6561, 8, 8
	var t float64
	for i := 0; i < b.N; i++ {
		m := bspg(p, g, l)
		collective.BroadcastTernaryBSPg(m, 1)
		t = m.Time()
	}
	b.ReportMetric(t, "simtime")
}

// --- Section 4.1: h-relation on the CRCW PRAM in O(h) ---

func BenchmarkHRelationCRCW(b *testing.B) {
	p, h := 64, 16
	plan := make([][]problems.HRelationMsg, p)
	for i := range plan {
		for j := 0; j < h; j++ {
			plan[i] = append(plan[i], problems.HRelationMsg{Dst: j, Val: int64(i + j)})
		}
	}
	var t float64
	for i := 0; i < b.N; i++ {
		m := pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.CRCWArbitrary, Seed: benchSeed})
		problems.HRelationCRCW(m, plan)
		t = m.Time()
	}
	b.ReportMetric(t, "simtime")
	b.ReportMetric(t/float64(h), "simtime-per-h")
}

// --- Theorem 5.1: CRCW PRAM(m) step on the QSM(m) ---

func BenchmarkSimCRCWPRAMm(b *testing.B) {
	p, mm, cells := 512, 8, 64
	pm := emulate.PRAMm{Base: p, MCells: cells}
	rng := xrand.New(benchSeed)
	addr := make([]int, p)
	for i := range addr {
		addr[i] = rng.Intn(cells)
	}
	var t float64
	for i := 0; i < b.N; i++ {
		m := qsmmL(p, pm.Base+cells+3*p+8, mm)
		for a := 0; a < cells; a++ {
			m.Store(pm.Base+a, int64(a))
		}
		pm.SimulateCRCWRead(m, addr)
		t = m.Time()
	}
	b.ReportMetric(t, "simtime")
	b.ReportMetric(t/(float64(p)/float64(mm)), "x-of-p/m")
}

// --- Theorem 5.2: leader recognition CR vs ER ---

func BenchmarkLeaderRecognition(b *testing.B) {
	p, mm := 1024, 4
	rom := problems.LeaderInput(p, p/3)
	var tcr, ter float64
	for i := 0; i < b.N; i++ {
		cr := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.CRCWArbitrary, ROM: rom, Seed: benchSeed})
		problems.LeaderCR(cr)
		er := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.EREW, ROM: rom, Seed: benchSeed})
		problems.LeaderER(er, mm)
		tcr, ter = cr.Time(), er.Time()
	}
	report(b, ter, tcr) // "local" = exclusive read, "global" = concurrent
}

// --- Theorem 6.2: Unbalanced-Send ---

func BenchmarkUnbalancedSend(b *testing.B) {
	p, mm, l := 256, 64, 8
	rng := xrand.New(benchSeed)
	plan := sched.ZipfPlan(rng, p, 8192, 1.2)
	var t, opt float64
	for i := 0; i < b.N; i++ {
		m := bspmE(p, mm, l)
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
		t, opt = r.Time, r.OptimalOffline(mm, l)
	}
	b.ReportMetric(t, "simtime")
	b.ReportMetric(t/opt, "x-of-optimal")
}

// --- Theorem 6.3: Unbalanced-Consecutive-Send ---

func BenchmarkConsecutiveSend(b *testing.B) {
	p, mm, l := 128, 32, 4
	plan := sched.SkewedExchangePlan(p, p/8, 8, 1)
	var t, opt float64
	for i := 0; i < b.N; i++ {
		m := bspmE(p, mm, l)
		r := sched.UnbalancedConsecutiveSend(m, plan, sched.Options{Eps: 0.25})
		t, opt = r.Time, r.OptimalOffline(mm, l)
	}
	b.ReportMetric(t, "simtime")
	b.ReportMetric(t/opt, "x-of-optimal")
}

// --- Theorem 6.4: Unbalanced-Granular-Send ---

func BenchmarkGranularSend(b *testing.B) {
	p, mm, l := 512, 16, 4
	rng := xrand.New(benchSeed)
	plan := sched.ZipfPlan(rng, p, 8192, 1.0)
	var t, opt float64
	for i := 0; i < b.N; i++ {
		m := bspmE(p, mm, l)
		r := sched.UnbalancedGranularSend(m, plan, sched.Options{GranularC: 4})
		t, opt = r.Time, r.OptimalOffline(mm, l)
	}
	b.ReportMetric(t, "simtime")
	b.ReportMetric(t/opt, "x-of-optimal")
}

// --- Section 6.1 long-message / overhead variant ---

func BenchmarkFlitSend(b *testing.B) {
	p, mm, l := 128, 32, 4
	rng := xrand.New(benchSeed)
	plan := sched.UnbalancedExchangePlan(rng, p, 6).WithOverhead(2)
	var t float64
	for i := 0; i < b.N; i++ {
		m := bspmE(p, mm, l)
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
		t = r.Time
	}
	b.ReportMetric(t, "simtime")
}

// --- Section 2 / Theorem 6.2: self-scheduling emulation ---

func BenchmarkSelfScheduling(b *testing.B) {
	p, mm, l := 256, 64, 4
	rng := xrand.New(benchSeed)
	plan := sched.ZipfPlan(rng, p, 8192, 1.1)
	var tss, treal float64
	for i := 0; i < b.N; i++ {
		ss := bsp.New(bsp.Config{P: p, Cost: model.BSPSelfSched(mm, l), Seed: benchSeed})
		sres := sched.NaiveSend(ss, plan)
		real := bspmE(p, mm, l)
		rres := sched.UnbalancedSend(real, plan, sched.Options{Eps: 0.25, KnownN: sres.N})
		tss, treal = sres.Time, rres.Time
	}
	b.ReportMetric(tss, "simtime-selfsched")
	b.ReportMetric(treal, "simtime-realized")
	b.ReportMetric(treal/tss, "overhead-x")
}

// --- Theorem 6.5: BSP(g) dynamic stability ---

func BenchmarkDynamicBSPg(b *testing.B) {
	p, g, l := 16, 8, 4
	lmt := dynamic.Limits{W: 32, Alpha: 0.5, Beta: 0.5}
	adv := dynamic.SingleTargetAdversary{L: lmt}
	var backlog float64
	for i := 0; i < b.N; i++ {
		m := bspg(p, g, l)
		res := dynamic.RunBSPgInterval(m, adv, lmt, 60)
		backlog = float64(res.MaxBacklog)
	}
	b.ReportMetric(backlog, "max-backlog")
}

// --- Theorem 6.7: Algorithm B on the BSP(m) ---

func BenchmarkDynamicBSPm(b *testing.B) {
	p, mm, l := 32, 8, 2
	lmt := dynamic.Limits{W: 64, Alpha: 4, Beta: 0.9}
	var backlog, svc float64
	for i := 0; i < b.N; i++ {
		adv := dynamic.NewUniformAdversary(p, lmt, benchSeed)
		m := bspmE(p, mm, l)
		res := dynamic.RunAlgorithmB(m, adv, lmt, 80, 0.25)
		backlog = float64(res.MaxBacklog)
		svc = res.MeanService()
	}
	b.ReportMetric(backlog, "max-backlog")
	b.ReportMetric(svc, "mean-service")
}

// --- Section 4 grouping observation ---

func BenchmarkGroupEmulation(b *testing.B) {
	p, g, l := 256, 8, 8
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := bspg(p, g, l)
		lm.Superstep(func(c *bsp.Ctx) {
			for k := 0; k < 4; k++ {
				c.Send((c.ID()+k+1)%p, 0, 1)
			}
		})
		gm := bspmE(p, p/g, l)
		emulate.RunGroupedBSP(gm, g, func(c *bsp.Ctx, send func(int, bsp.Msg)) {
			for k := 0; k < 4; k++ {
				send((c.ID()+k+1)%p, bsp.Msg{A: 1})
			}
		})
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

// --- Engine micro-benchmarks (simulator throughput) ---

func BenchmarkBSPSuperstep(b *testing.B) {
	m := bspmL(1024, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Superstep(func(c *bsp.Ctx) {
			c.SendAt(c.ID()%16, (c.ID()+1)%1024, bsp.Msg{A: 1})
		})
	}
}

func BenchmarkQSMPhase(b *testing.B) {
	m := qsmmL(1024, 2048, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Phase(func(c *qsm.Ctx) {
			c.WriteAt(c.ID()%16, c.ID(), int64(i))
		})
	}
}

func BenchmarkPRAMStep(b *testing.B) {
	m := pram.New(pram.Config{P: 1024, Mem: 1024, Mode: pram.CRCWArbitrary, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(func(c *pram.Ctx) {
			c.Write(c.ID(), int64(i))
		})
	}
}

// --- Extension systems ---

func BenchmarkAsyncBackpressure(b *testing.B) {
	p, mm, per := 128, 16, 32
	var done float64
	for i := 0; i < b.N; i++ {
		ma := async.New(async.Config{P: p, M: mm, Latency: 4, Buffer: p * per})
		done = ma.Run(func(pr *async.Proc) {
			for k := 0; k < per; k++ {
				pr.Send((pr.ID()+1+k)%p, int64(k))
			}
			for k := 0; k < per; k++ {
				pr.Recv()
			}
		})
	}
	b.ReportMetric(done, "simtime")
	b.ReportMetric(done/(float64(p*per)/float64(mm)), "x-of-n/m")
}

func BenchmarkChannelNetwork(b *testing.B) {
	p, mm := 64, 8
	x := make([]int, p)
	for i := range x {
		x[i] = 16
	}
	var paced, burst float64
	for i := 0; i < b.N; i++ {
		rng := xrand.New(benchSeed)
		pr := netsim.Run(netsim.Config{Sources: p, Channels: mm, Seed: benchSeed},
			netsim.UnbalancedSchedule(rng, x, mm, 4.0))
		br := netsim.Run(netsim.Config{Sources: p, Channels: mm, Seed: benchSeed},
			netsim.NaiveSchedule(x))
		paced, burst = float64(pr.Makespan), float64(br.Makespan)
	}
	b.ReportMetric(paced, "paced-makespan")
	b.ReportMetric(burst/paced, "burst-penalty-x")
}

func BenchmarkTable1SortQSM(b *testing.B) {
	p, g := 1024, 16
	rng := xrand.New(benchSeed)
	keys := make([]int64, p)
	for i := range keys {
		keys[i] = int64(rng.Uint64() % 100003)
	}
	var tl, tg float64
	for i := 0; i < b.N; i++ {
		lm := qsmg(p, p, g)
		problems.ColumnsortQSM(lm, keys, 8)
		gm := qsmmL(p, p, p/g)
		problems.ColumnsortQSM(gm, keys, 8)
		tl, tg = lm.Time(), gm.Time()
	}
	report(b, tl, tg)
}

func BenchmarkPRAMMapPrefixSum(b *testing.B) {
	n, mm := 256, 8
	var t float64
	for i := 0; i < b.N; i++ {
		prog, _ := emulate.PrefixDoublingSum(n)
		m := qsmmL(64, 2*n, mm)
		for j := 0; j < n; j++ {
			m.Store(j, 1)
		}
		emulate.RunPRAMOnQSM(m, prog)
		t = m.Time()
	}
	b.ReportMetric(t, "simtime")
}
