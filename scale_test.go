// Large-scale sanity: the engines handle tens of thousands of simulated
// processors, and the Table 1 separations persist at scale. Skipped under
// -short.
package parbw_test

import (
	"runtime"
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

// TestScaleMillionProcessors runs supersteps on a 2^20-processor BSP machine
// and asserts a hard heap ceiling. This is the columnar engine's reason to
// exist: per-processor state is flat columns plus O(cores) chunk arenas, so
// a million processors cost a handful of large allocations (~100 MB for this
// workload), not millions of small ones. The ceiling is asserted after a
// forced GC and skipped under the race detector, whose shadow memory
// inflates every allocation.
func TestScaleMillionProcessors(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const p = 1 << 20
	const heapCeiling = 192 << 20 // bytes; ~2x the expected live heap
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPg(4, 16), Seed: 11, Workers: 4})
	program := func(c *bsp.Ctx) {
		if i := c.ID(); i&1 == 0 {
			c.Send(i+1, 7, int64(i))
		}
	}
	for s := 0; s < 3; s++ {
		st := m.Superstep(program)
		if st.N != p/2 {
			t.Fatalf("superstep %d: N = %d, want %d", s, st.N, p/2)
		}
		if st.H != 1 {
			t.Fatalf("superstep %d: H = %d, want 1", s, st.H)
		}
	}
	// Every even processor sent to its odd neighbor; spot-check delivery
	// across the machine.
	for i := 1; i < p; i += 99991 {
		j := i &^ 1 // even sender for this stride's odd receiver
		in := m.Inbox(j + 1)
		if len(in) != 1 || in[0].A != int64(j) {
			t.Fatalf("proc %d inbox = %+v, want one message from %d", j+1, in, j)
		}
	}
	if !raceEnabled {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > heapCeiling {
			t.Errorf("HeapAlloc = %d MB after p=2^20 supersteps, ceiling %d MB",
				ms.HeapAlloc>>20, heapCeiling>>20)
		}
	}
}

func TestScaleBroadcast16k(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	p, g, l := 1<<14, 16, 32
	lm := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: 1})
	out := collective.BroadcastBSP(lm, 0, 5)
	for i := 0; i < p; i += 1000 {
		if out[i] != 5 {
			t.Fatalf("proc %d missed the broadcast", i)
		}
	}
	gm := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(p/g, l), Seed: 1})
	collective.BroadcastBSP(gm, 0, 5)
	if gm.Time() >= lm.Time() {
		t.Fatalf("scale separation inverted: %v vs %v", gm.Time(), lm.Time())
	}
}

func TestScaleUnbalancedSend(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	p, mm := 4096, 256
	rng := xrand.New(2)
	plan := sched.ZipfPlan(rng, p, 1<<17, 1.1)
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, 8), Seed: 2})
	r := sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
	if r.Send.Overload != 0 {
		t.Fatalf("overloaded at scale: %d steps (maxslot %d)", r.Send.Overload, r.Send.MaxSlot)
	}
	opt := r.OptimalOffline(mm, 8)
	if (r.Time-r.Tau)/opt > 1.3 {
		t.Fatalf("time/opt = %v at scale", (r.Time-r.Tau)/opt)
	}
}

func TestScaleQSMPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	p := 1 << 13
	m := qsm.New(qsm.Config{P: p, Mem: 2 * p, Cost: model.QSMm(64), Seed: 3})
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = 1
	}
	pre, total := collective.PrefixSumQSM(m, vals, collective.Sum, 0)
	if total != int64(p) || pre[p-1] != int64(p-1) {
		t.Fatalf("prefix wrong at scale: total %d, last %d", total, pre[p-1])
	}
}
