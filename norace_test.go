//go:build !race

package parbw_test

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
