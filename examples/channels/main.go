// Channels: what the BSP(m)'s exponential penalty actually abstracts.
// p sources share m Ethernet-like channels (the multiple-channel model of
// the paper's Section 3 related work): per step each pending source picks a
// random channel, and a flit is delivered only when its channel has exactly
// one contender. Throughput is k·(1−1/m)^{k−1} for k contenders — the
// slotted-ALOHA curve, which peaks at m/e and then collapses.
//
// The example drains the same traffic three ways: an Unbalanced-Send-paced
// schedule, a naive burst, and a naive burst rescued by binary exponential
// backoff, then prints the throughput curve alongside the model's f^u
// charge.
//
// Run with: go run ./examples/channels
package main

import (
	"fmt"
	"strings"

	"parbw/internal/model"
	"parbw/internal/netsim"
	"parbw/internal/xrand"
)

const (
	p    = 64
	m    = 8
	per  = 16 // flits per source
	seed = 2
)

func main() {
	x := make([]int, p)
	for i := range x {
		x[i] = per
	}
	n := p * per

	rng := xrand.New(seed)
	paced := netsim.Run(netsim.Config{Sources: p, Channels: m, Seed: seed},
		netsim.UnbalancedSchedule(rng, x, m, 4.0)) // load 0.2·m < ALOHA capacity m/e
	burst := netsim.Run(netsim.Config{Sources: p, Channels: m, Seed: seed},
		netsim.NaiveSchedule(x))
	backoff := netsim.RunBackoff(netsim.Config{Sources: p, Channels: m, Seed: seed},
		netsim.NaiveSchedule(x), 10)

	fmt.Printf("%d flits through %d channels (%d sources):\n\n", n, m, p)
	fmt.Printf("  %-28s makespan %8d   collisions %8d\n", "Unbalanced-Send paced (ε=4):", paced.Makespan, paced.Collided)
	fmt.Printf("  %-28s makespan %8d   collisions %8d\n", "naive burst:", burst.Makespan, burst.Collided)
	fmt.Printf("  %-28s makespan %8d   collisions %8d\n", "burst + binary backoff:", backoff.Makespan, backoff.Collided)

	fmt.Printf("\nthroughput vs contenders (m=%d) — why overload is penalized exponentially:\n\n", m)
	fmt.Printf("  %-12s %-10s %-28s %s\n", "contenders", "del./step", "", "f^u charge")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		thr := netsim.ExpectedThroughput(k, m)
		pen := model.ExpPenalty(k, m)
		bar := strings.Repeat("#", int(thr*8))
		fmt.Printf("  %-12d %-10.3f %-28s %.3g\n", k, thr, bar, pen)
	}
	fmt.Println("\nThe paced schedule never exceeds the network's stable region; the burst")
	fmt.Println("enters the collapse regime that the BSP(m)'s f^u(m_t) = e^{m_t/m − 1} models.")
}
