// Quickstart: build a globally-limited BSP(m) machine, give its processors
// a skewed set of messages, and compare three ways of injecting them into a
// network that sustains m messages per step:
//
//   - NaiveSend: everyone starts at step 0 (what a schedule-oblivious
//     program does) — catastrophic under the exponential overload penalty;
//   - UnbalancedSend: the paper's randomized schedule (Theorem 6.2),
//     within (1+ε) of optimal without knowing the skew in advance;
//   - OfflineSend: the optimal offline schedule, as the yardstick.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

func main() {
	const (
		p    = 128 // processors
		m    = 16  // aggregate bandwidth: the network moves m messages/step
		l    = 4   // latency / periodicity
		seed = 1
	)

	// A Zipf-skewed workload: a few processors hold most of the messages,
	// the regime where globally-limited models beat locally-limited ones.
	rng := xrand.New(seed)
	plan := sched.ZipfPlan(rng, p, 4096, 1.2)
	x, n, _ := plan.Flits(p)
	xbar := 0
	for _, v := range x {
		if v > xbar {
			xbar = v
		}
	}
	fmt.Printf("workload: n=%d messages over p=%d processors, busiest sender x̄=%d\n\n", n, p, xbar)

	machine := func() *bsp.Machine {
		return bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: seed})
	}

	naive := sched.NaiveSend(machine(), plan)
	fmt.Printf("naive (all at step 0):   time %12.1f  max step load %4d (m=%d)\n",
		naive.Time, naive.Send.MaxSlot, m)

	unb := sched.UnbalancedSend(machine(), plan, sched.Options{Eps: 0.25})
	fmt.Printf("Unbalanced-Send:         time %12.1f  max step load %4d  (τ=%.0f)\n",
		unb.Time, unb.Send.MaxSlot, unb.Tau)

	off := sched.OfflineSend(machine(), plan)
	fmt.Printf("offline optimal:         time %12.1f  max step load %4d\n\n",
		off.Time, off.Send.MaxSlot)

	opt := unb.OptimalOffline(m, l)
	fmt.Printf("offline lower bound max(n/m, x̄, ȳ, L) = %.0f\n", opt)
	fmt.Printf("Unbalanced-Send is within %.2fx of optimal; naive is %.1fx worse than scheduled.\n",
		unb.Time/opt, naive.Time/unb.Time)

	// The same traffic on a locally-limited BSP(g) with equal aggregate
	// bandwidth (g = p/m) pays the Proposition 6.1 price g·(x̄+ȳ).
	g := p / m
	lg := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
	lgr := sched.NaiveSend(lg, plan)
	fmt.Printf("\nBSP(g) with g=p/m=%d:     time %12.1f — the Θ(g) separation of the paper.\n",
		g, lgr.Time)
}
