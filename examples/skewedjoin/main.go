// Skewed join: the Section 6 motivation "skew in the amount of new values
// produced by the processors (e.g., an intermediate result of a join
// operation)". Each processor holds a partition of two relations R and S
// hashed on the join key; a handful of heavy-hitter keys make a few
// processors produce most of the join output, which must then be
// redistributed (hashed on the output key) for the next operator.
//
// The example measures that redistribution on a BSP(m) machine with the
// exponential overload penalty: naive injection melts down, Unbalanced-Send
// stays within (1+ε) of the offline optimum, and a locally-limited BSP(g)
// with the same aggregate bandwidth is ~g slower because the skew
// concentrates traffic at few senders.
//
// Run with: go run ./examples/skewedjoin
package main

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

const (
	p    = 128
	m    = 16
	l    = 4
	seed = 7

	rTuples = 8192 // |R|
	sTuples = 8192 // |S|
	keys    = 512  // join-key domain, zipf-distributed
)

func main() {
	rng := xrand.New(seed)
	z := xrand.NewZipf(rng, keys, 1.1)

	// Hash-partition both relations on the join key: key k lives on
	// processor k mod p. Count tuples per key.
	rCount := make([]int, keys)
	sCount := make([]int, keys)
	for i := 0; i < rTuples; i++ {
		rCount[z.Draw()]++
	}
	for i := 0; i < sTuples; i++ {
		sCount[z.Draw()]++
	}

	// The join output for key k has rCount[k]*sCount[k] tuples, produced at
	// processor k mod p, and each tuple is redistributed to a
	// pseudo-random target (hash of the output key).
	plan := make(sched.Plan, p)
	out := 0
	for k := 0; k < keys; k++ {
		owner := k % p
		tuples := rCount[k] * sCount[k]
		// Cap pathological keys so the example stays quick; real systems
		// would spill — the cap keeps x̄ ≫ n/p skew intact.
		if tuples > 4096 {
			tuples = 4096
		}
		for t := 0; t < tuples; t++ {
			dst := int(rng.Uint64() % uint64(p))
			plan[owner] = append(plan[owner], bsp.Msg{Dst: int32(dst), A: int64(k)})
			out++
		}
	}
	x, n, _ := plan.Flits(p)
	xbar := 0
	busy := 0
	for _, v := range x {
		if v > xbar {
			xbar = v
		}
		if v > 0 {
			busy++
		}
	}
	fmt.Printf("join produced %d output tuples at %d/%d processors; busiest holds %d (%.1f%% of all)\n\n",
		n, busy, p, xbar, 100*float64(xbar)/float64(n))

	mk := func() *bsp.Machine {
		return bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: seed})
	}
	naive := sched.NaiveSend(mk(), plan)
	unb := sched.UnbalancedSend(mk(), plan, sched.Options{Eps: 0.25})
	opt := unb.OptimalOffline(m, l)
	fmt.Printf("redistribution on BSP(m=%d), exponential penalty:\n", m)
	fmt.Printf("  naive:           %14.0f (max step load %d)\n", naive.Time, naive.Send.MaxSlot)
	fmt.Printf("  Unbalanced-Send: %14.0f (within %.2fx of offline optimum %0.f)\n",
		unb.Time, unb.Time/opt, opt)

	g := p / m
	lg := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
	lgr := sched.NaiveSend(lg, plan)
	fmt.Printf("  BSP(g=%d):        %14.0f — pays g·(x̄+ȳ); skew costs it %.1fx vs BSP(m)\n",
		g, lgr.Time, lgr.Time/unb.Time)
}
