// Dynamic routing under an adversarial arrival process (Section 6.2).
// An adversary injects messages over an infinite time line subject to a
// window-w envelope: at most ⌈αw⌉ messages per window, at most ⌈βw⌉ from or
// to any one processor. Theorem 6.5 says a BSP(g) is stable only for
// β <= 1/g; Theorem 6.7's Algorithm B keeps the BSP(m) stable at local
// rates up to ~1 — a factor g more.
//
// The example drives a single hot flow at β = 0.5 into both machines (same
// aggregate bandwidth) and prints the backlog trace: BSP(g) diverges
// linearly, BSP(m) stays flat.
//
// Run with: go run ./examples/dynamicrouting
package main

import (
	"fmt"
	"strings"

	"parbw/internal/bsp"
	"parbw/internal/dynamic"
	"parbw/internal/model"
)

const (
	p       = 16
	g       = 8
	l       = 4
	w       = 32
	beta    = 0.5 // > 1/g = 0.125: kills the BSP(g)
	windows = 48
	seed    = 5
)

func main() {
	limits := dynamic.Limits{W: w, Alpha: beta, Beta: beta}
	adv := dynamic.SingleTargetAdversary{L: limits}
	if err := dynamic.Validate(adv, limits, p, windows*w, false); err != nil {
		panic(err)
	}
	fmt.Printf("adversary: single flow 0→1 at β=%.3f (⌈βw⌉=%d per window of %d); threshold 1/g = %.3f\n\n",
		beta, limits.MaxLocalPerWindow(), w, 1.0/float64(g))

	lg := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
	lres := dynamic.RunBSPgInterval(lg, adv, limits, windows)

	gm := bsp.New(bsp.Config{P: p, Cost: model.BSPm(p/g, l), Seed: seed})
	gres := dynamic.RunAlgorithmB(gm, adv, limits, windows, 0.25)

	fmt.Printf("%-8s %-28s %-28s\n", "window", fmt.Sprintf("BSP(g=%d) backlog", g), fmt.Sprintf("BSP(m=%d) backlog", p/g))
	for i := 0; i < windows; i += 4 {
		fmt.Printf("%-8d %-28s %-28s\n", i,
			bar(lres.Backlog[i], 24), bar(gres.Backlog[i], 24))
	}
	fmt.Println()
	verdict := func(r dynamic.Result) string {
		if r.LooksStable() {
			return "STABLE"
		}
		return "UNSTABLE (backlog diverging)"
	}
	fmt.Printf("BSP(g): %s — max backlog %d, mean batch service %.1f\n",
		verdict(lres), lres.MaxBacklog, lres.MeanService())
	fmt.Printf("BSP(m): %s — max backlog %d, mean batch service %.1f\n",
		verdict(gres), gres.MaxBacklog, gres.MeanService())
	fmt.Printf("\nTheorem 6.5/6.7: the globally-limited machine absorbs a local rate %.0fx past the BSP(g) threshold.\n",
		beta*float64(g))
}

// bar renders a backlog value as a scaled ASCII bar.
func bar(v, width int) string {
	n := v / 2
	if n > width {
		n = width
	}
	return fmt.Sprintf("%4d %s", v, strings.Repeat("#", n))
}
