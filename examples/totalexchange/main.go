// Total exchange (all-to-all personalized communication), the primitive
// behind matrix transposition, 2-D FFT and HPF array remapping (paper,
// Section 3). This example transposes a matrix distributed row-wise over the
// processors by exchanging blocks all-to-all, then repeats the experiment
// with an *unbalanced* exchange ("chatting") in which message lengths vary,
// showing where the globally-limited machine pulls ahead.
//
// Run with: go run ./examples/totalexchange
package main

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/sched"
)

const (
	p    = 64
	g    = 8
	l    = 4
	seed = 3
)

func machines() (*bsp.Machine, *bsp.Machine) {
	local := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
	global := bsp.New(bsp.Config{P: p, Cost: model.BSPm(p/g, l), Seed: seed})
	return local, global
}

func main() {
	// --- Balanced total exchange: an N×N matrix, one row block per
	// processor; transposing exchanges equal-size blocks between every
	// pair. Balanced traffic is where BSP(g) and BSP(m) coincide
	// (h-relation with h = n/p exactly).
	const blockFlits = 4 // flits per (i,j) block
	balanced := sched.TotalExchangePlan(p, blockFlits)
	local, global := machines()
	lr := sched.NaiveSend(local, balanced) // BSP(g) needs no schedule
	gr := sched.UnbalancedSend(global, balanced, sched.Options{Eps: 0.25})
	fmt.Println("balanced total exchange (matrix transpose):")
	fmt.Printf("  BSP(g, g=%d): %8.0f    BSP(m, m=%d): %8.0f   (τ=%.0f)\n",
		g, lr.Time, p/g, gr.Time, gr.Tau)
	fmt.Printf("  balanced traffic: both models cost ~g·h = n/m; separation %.2fx\n\n",
		lr.Time/gr.Time)

	// --- Unbalanced total exchange (the Bhatt et al. "chatting" problem):
	// p/8 chatty processors send long messages to everyone, the rest send
	// a single flit. Now h ≫ n/p and the globally-limited machine wins.
	chatting := sched.SkewedExchangePlan(p, p/8, 16, 1)
	x, n, y := chatting.Flits(p)
	xbar, ybar := 0, 0
	for i := range x {
		if x[i] > xbar {
			xbar = x[i]
		}
		if y[i] > ybar {
			ybar = y[i]
		}
	}
	local, global = machines()
	lr = sched.NaiveSend(local, chatting)
	gr = sched.UnbalancedConsecutiveSend(global, chatting, sched.Options{Eps: 0.25})
	fmt.Println("unbalanced total exchange (chatting, p/8 heavy senders):")
	fmt.Printf("  n=%d flits, x̄=%d, ȳ=%d\n", n, xbar, ybar)
	fmt.Printf("  BSP(g): %8.0f  — pays Θ(g(x̄+ȳ)) >= g·max(x̄,ȳ) = %d (Prop 6.1)\n",
		lr.Time, g*maxOf(xbar, ybar))
	fmt.Printf("  BSP(m): %8.0f  — near max(n/m, x̄, ȳ) = %d (Thm 6.3 schedule)\n",
		gr.Time, maxOf(n/(p/g), xbar, ybar))
	fmt.Printf("  separation %.2fx (paper predicts up to Θ(g) = %d under imbalance)\n",
		lr.Time/gr.Time, g)

	// Verify the transpose actually delivered every block.
	delivered := 0
	for i := 0; i < p; i++ {
		for _, msg := range global.Inbox(i) {
			delivered += msg.Flits()
		}
	}
	fmt.Printf("\ndelivered %d of %d flits through the m-limited network\n", delivered, n)
}

func maxOf(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
