package main

import (
	"reflect"
	"testing"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("node-0=http://a:8080, node-1=http://b:8080/ ,node-2=http://c:8080")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"node-0": "http://a:8080",
		"node-1": "http://b:8080", // trailing slash stripped
		"node-2": "http://c:8080",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsePeers = %v, want %v", got, want)
	}

	for _, bad := range []string{"node-0", "=http://a", "node-0=http://a,node-0=http://b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted a malformed list", bad)
		}
	}
}

func TestServeClusterFlagValidation(t *testing.T) {
	// Peers without a self name is a configuration error, not a panic.
	if err := runServe([]string{"-cluster-peers", "node-1=http://b:8080", "-store", t.TempDir()}); err == nil {
		t.Fatal("serve accepted -cluster-peers without -cluster-self")
	}
}
