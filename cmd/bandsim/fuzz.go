// The fuzz subcommand: generate seeded workloads, check every invariant
// oracle against each, and ddmin-shrink whatever fails. Seeds fan out over
// a workpool but results are reported in seed order from a seed-indexed
// slice, so two runs with the same flags produce byte-identical output
// regardless of scheduling.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"parbw/internal/harness"
	"parbw/internal/oracle"
	"parbw/internal/shrink"
	"parbw/internal/workgen"
	"parbw/internal/workpool"
)

// fuzzFailure is one reported failing seed — one JSON line under -json.
type fuzzFailure struct {
	Seed             uint64             `json:"seed"`
	Family           string             `json:"family"`
	Violations       []oracle.Violation `json:"violations"`
	Shrunk           *workgen.Workload  `json:"shrunk,omitempty"`
	ShrinkEvals      int                `json:"shrink_evals,omitempty"`
	Nondeterministic int                `json:"nondeterministic,omitempty"`
}

// fuzzSummary is the final line of every fuzz run.
type fuzzSummary struct {
	Version    int      `json:"version"`
	Seeds      int      `json:"seeds"`
	SeedBase   uint64   `json:"seed_base"`
	Families   []string `json:"families"`
	TotalSends int      `json:"total_sends"`
	TotalFlits int      `json:"total_flits"`
	Failures   int      `json:"failures"`
}

// runFuzz implements `bandsim fuzz`. It writes all run output to stdout
// (stderr is reserved for flag errors) and returns a non-nil error when
// any seed violated an invariant, which main turns into exit status 1.
func runFuzz(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seeds := fs.Int("seeds", 256, "number of seeds to run")
	seedBase := fs.Uint64("seed-base", 1, "first seed; seed i of the run is seed-base+i")
	family := fs.String("family", "all", "workload family: hrel, dag, balls, or all (cycled per seed)")
	doShrink := fs.Bool("shrink", true, "ddmin-shrink failing workloads to minimal counterexamples")
	corpusDir := fs.String("corpus", "", "write failing (shrunk) workloads as corpus entries into this directory")
	jsonOut := fs.Bool("json", false, "emit JSON lines instead of text")
	workers := fs.Int("workers", 0, "parallel oracle workers (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `usage: bandsim fuzz [-seeds N] [-seed-base S] [-family F] [-shrink] [-corpus dir] [-json] [-workers N]

Generates N seeded workloads, checks every invariant oracle against each,
and shrinks failures with ddmin. Same flags => byte-identical output.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fuzz takes no positional arguments, got %q", fs.Args())
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be positive, got %d", *seeds)
	}
	fams := workgen.Families()
	if *family != "all" {
		f, err := workgen.ParseFamily(*family)
		if err != nil {
			return errors.New(unknownFamilyMessage(*family))
		}
		fams = []workgen.Family{f}
	}

	// Phase 1 — parallel generate + check. Each seed owns one cell of the
	// results slice, so the fan-out leaves no scheduling fingerprint.
	type cell struct {
		w  *workgen.Workload
		vs []oracle.Violation
	}
	cells := make([]cell, *seeds)
	workpool.New(*workers).For(*seeds, func(i int) {
		w := workgen.Generate(workgen.GenConfig{
			Family: fams[i%len(fams)],
			Seed:   *seedBase + uint64(i),
		})
		cells[i] = cell{w: w, vs: oracle.Check(w)}
	})

	// Phase 2 — sequential, seed-ordered report; shrinking runs here so the
	// (rare) failing path is deterministic too.
	enc := json.NewEncoder(stdout)
	enc.SetEscapeHTML(false)
	sum := fuzzSummary{Version: workgen.Version, Seeds: *seeds, SeedBase: *seedBase}
	for _, f := range fams {
		sum.Families = append(sum.Families, string(f))
	}
	var failures []fuzzFailure
	for i, c := range cells {
		sends, flits := c.w.CountSends()
		sum.TotalSends += sends
		sum.TotalFlits += flits
		if len(c.vs) == 0 {
			continue
		}
		fail := fuzzFailure{
			Seed:       *seedBase + uint64(i),
			Family:     string(c.w.Family),
			Violations: c.vs,
		}
		if *doShrink {
			want := oracle.Names(c.vs)
			res := shrink.Minimize(c.w, func(cand *workgen.Workload) bool {
				return sameViolationNames(oracle.Names(oracle.Check(cand)), want)
			}, shrink.Options{})
			fail.Shrunk = res.Workload
			fail.ShrinkEvals = res.Evals
			fail.Nondeterministic = res.Nondeterministic
		}
		failures = append(failures, fail)
		if *jsonOut {
			if err := enc.Encode(fail); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(stdout, "fuzz: seed %d (%s): violations %s\n",
				fail.Seed, fail.Family, strings.Join(oracle.Names(fail.Violations), ","))
			for _, v := range fail.Violations {
				fmt.Fprintf(stdout, "  %s: %s\n", v.Invariant, v.Detail)
			}
			if fail.Shrunk != nil {
				ssends, _ := fail.Shrunk.CountSends()
				fmt.Fprintf(stdout, "  shrunk to %d step(s), %d send(s) in %d evals\n",
					len(fail.Shrunk.Steps), ssends, fail.ShrinkEvals)
			}
		}
	}
	sum.Failures = len(failures)

	if *corpusDir != "" && len(failures) > 0 {
		if err := writeCorpus(*corpusDir, failures); err != nil {
			return err
		}
	}

	if *jsonOut {
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "fuzz: %d seeds (base %d), families %s: %d violation(s), %d sends / %d flits generated\n",
			sum.Seeds, sum.SeedBase, strings.Join(sum.Families, ","), sum.Failures, sum.TotalSends, sum.TotalFlits)
	}
	if len(failures) > 0 {
		return fmt.Errorf("fuzz: %d of %d seeds violated invariants", len(failures), *seeds)
	}
	return nil
}

// unknownFamilyMessage formats the error for a mistyped -family value,
// reusing the harness's did-you-mean matcher over the family names plus the
// "all" sentinel — the same shape unknownIDMessage gives mistyped
// experiment ids.
func unknownFamilyMessage(name string) string {
	candidates := []string{"all"}
	for _, f := range workgen.Families() {
		candidates = append(candidates, string(f))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz: unknown family %q", name)
	if sug := harness.SuggestFrom(name, candidates); len(sug) > 0 {
		b.WriteString("\ndid you mean:")
		for _, s := range sug {
			fmt.Fprintf(&b, "\n  %s", s)
		}
	} else {
		fmt.Fprintf(&b, " (want %s, or all)", strings.Join(familyNames(), ", "))
	}
	return b.String()
}

func familyNames() []string {
	out := make([]string, 0, len(workgen.Families()))
	for _, f := range workgen.Families() {
		out = append(out, string(f))
	}
	return out
}

// sameViolationNames reports whether two violation-name lists are equal —
// the shrink predicate pins the exact failure mode, so a candidate that
// fails differently (or stops failing) is rejected.
func sameViolationNames(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// writeCorpus writes one oracle corpus entry per failure, named
// <family>-seed<seed>.json, shrunk when shrinking ran. Entries replay
// under go test via the corpus replay test at the repository root.
func writeCorpus(dir string, failures []fuzzFailure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range failures {
		w := f.Shrunk
		if w == nil {
			// Re-generate: the checked workload itself was not retained.
			w = workgen.Generate(workgen.GenConfig{Family: workgen.Family(f.Family), Seed: f.Seed})
		}
		e := &oracle.Entry{
			Note:       fmt.Sprintf("bandsim fuzz: family=%s seed=%d", f.Family, f.Seed),
			Violations: oracle.Names(f.Violations),
			Workload:   w,
		}
		data, err := e.Encode()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-seed%d.json", f.Family, f.Seed)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
