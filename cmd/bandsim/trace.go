package main

import (
	"fmt"
	"io"
	"sort"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/problems"
	"parbw/internal/sched"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

// traceTargets maps `bandsim trace <name>` to algorithm drivers executed on
// a traced BSP(m) machine (p=256, m=32, L=4, exponential penalty).
var traceTargets = map[string]func(m *bsp.Machine, seed uint64){
	"broadcast": func(m *bsp.Machine, seed uint64) {
		collective.BroadcastBSP(m, 0, 1)
	},
	"prefix": func(m *bsp.Machine, seed uint64) {
		vals := make([]int64, m.P())
		for i := range vals {
			vals[i] = int64(i)
		}
		collective.PrefixSumBSP(m, vals, collective.Sum, 0)
	},
	"unbalanced": func(m *bsp.Machine, seed uint64) {
		plan := sched.ZipfPlan(xrand.New(seed), m.P(), 8*m.P(), 1.1)
		sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
	},
	"listrank": func(m *bsp.Machine, seed uint64) {
		problems.ListRankContractBSP(m, problems.RandomList(xrand.New(seed), m.P()))
	},
	"sort": func(m *bsp.Machine, seed uint64) {
		keys := make([]int64, m.P())
		rng := xrand.New(seed)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 9973)
		}
		problems.ColumnsortBSP(m, keys, 8)
	},
}

// runTrace executes the named algorithm on a traced machine and prints a
// per-superstep timeline: work, h, injection steps, max per-step load,
// overloads, c_m and the superstep's charged cost.
func runTrace(w io.Writer, name string, seed uint64, csv bool) error {
	fn, ok := traceTargets[name]
	if !ok {
		names := make([]string, 0, len(traceTargets))
		for n := range traceTargets {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown trace target %q (have %v)", name, names)
	}
	m := bsp.New(bsp.Config{P: 256, Cost: model.BSPm(32, 4), Seed: seed, Trace: true})
	fn(m, seed)
	t := tablefmt.New(fmt.Sprintf("superstep timeline: %s (p=256, m=32, L=4)", name),
		"superstep", "work", "h", "msgs", "steps", "maxload", "overloads", "c_m", "cost", "cum time")
	cum := 0.0
	for i, st := range m.Trace() {
		cum += st.Cost
		t.Row(i, st.W, st.H, st.N, st.Steps, st.MaxSlot, st.Overload, st.CM, st.Cost, cum)
	}
	if csv {
		fmt.Fprint(w, t.CSV())
	} else {
		fmt.Fprintln(w, t.String())
	}
	fmt.Fprintf(w, "total simulated time: %.1f over %d supersteps\n", m.Time(), m.Supersteps())
	return nil
}
