package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/engine"
	"parbw/internal/harness"
	"parbw/internal/model"
	"parbw/internal/problems"
	"parbw/internal/sched"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

// traceTargets maps the classic `bandsim trace <name>` algorithm targets to
// drivers executed on a traced BSP(m) machine (p=256, m=32, L=4, exponential
// penalty). Any registered experiment id is also a valid trace target: it is
// run under a process-global engine observer that records every superstep of
// every machine the experiment constructs.
var traceTargets = map[string]func(m *bsp.Machine, seed uint64){
	"broadcast": func(m *bsp.Machine, seed uint64) {
		collective.BroadcastBSP(m, 0, 1)
	},
	"prefix": func(m *bsp.Machine, seed uint64) {
		vals := make([]int64, m.P())
		for i := range vals {
			vals[i] = int64(i)
		}
		collective.PrefixSumBSP(m, vals, collective.Sum, 0)
	},
	"unbalanced": func(m *bsp.Machine, seed uint64) {
		plan := sched.ZipfPlan(xrand.New(seed), m.P(), 8*m.P(), 1.1)
		sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
	},
	"listrank": func(m *bsp.Machine, seed uint64) {
		problems.ListRankContractBSP(m, problems.RandomList(xrand.New(seed), m.P()))
	},
	"sort": func(m *bsp.Machine, seed uint64) {
		keys := make([]int64, m.P())
		rng := xrand.New(seed)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 9973)
		}
		problems.ColumnsortBSP(m, keys, 8)
	},
}

// traceTargetNames returns the legacy algorithm target names, sorted.
func traceTargetNames() []string {
	names := make([]string, 0, len(traceTargets))
	for n := range traceTargets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// unknownTraceTargetError formats the failure for a mistyped trace target
// with closest-match suggestions drawn from both the legacy algorithm names
// and the experiment registry, mirroring `bandsim run`'s behavior.
func unknownTraceTargetError(name string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "unknown trace target %q", name)
	var sug []string
	q := strings.ToLower(strings.TrimSpace(name))
	for _, n := range traceTargetNames() {
		common := 0
		for common < len(n) && common < len(q) && n[common] == q[common] {
			common++
		}
		if q != "" && (strings.Contains(n, q) || common >= 3) {
			sug = append(sug, n)
		}
	}
	sug = append(sug, harness.Suggest(name)...)
	if len(sug) > 0 {
		b.WriteString("\ndid you mean:\n")
		for _, s := range sug {
			fmt.Fprintf(&b, "  %s\n", s)
		}
		b.WriteString("targets are the algorithm names ")
		fmt.Fprintf(&b, "%v or any experiment id ('bandsim list')", traceTargetNames())
	} else {
		fmt.Fprintf(&b, "\ntargets are the algorithm names %v or any experiment id ('bandsim list')", traceTargetNames())
	}
	return fmt.Errorf("%s", b.String())
}

// runTrace executes the named target and prints a per-superstep timeline:
// work, h, injection steps, max per-step load, overloads, c_m and the
// superstep's charged cost. A legacy algorithm name runs on a dedicated
// traced BSP(m) machine; an experiment id runs the experiment under a global
// engine observer, so the timeline covers every machine (BSP, QSM, PRAM)
// the experiment drives.
func runTrace(w io.Writer, name string, seed uint64, csv bool) error {
	if fn, ok := traceTargets[name]; ok {
		m := bsp.New(bsp.Config{P: 256, Cost: model.BSPm(32, 4), Seed: seed, Trace: true})
		fn(m, seed)
		t := tablefmt.New(fmt.Sprintf("superstep timeline: %s (p=256, m=32, L=4)", name),
			"superstep", "work", "h", "msgs", "steps", "maxload", "overloads", "c_m", "cost", "cum time")
		cum := 0.0
		for i, st := range m.Trace() {
			cum += st.Cost
			t.Row(i, st.W, st.H, st.N, st.Steps, st.MaxSlot, st.Overload, st.CM, st.Cost, cum)
		}
		if csv {
			fmt.Fprint(w, t.CSV())
		} else {
			fmt.Fprintln(w, t.String())
		}
		fmt.Fprintf(w, "total simulated time: %.1f over %d supersteps\n", m.Time(), m.Supersteps())
		return nil
	}
	if e, ok := harness.ByID(name); ok {
		return traceExperiment(w, e, seed, csv)
	}
	return unknownTraceTargetError(name)
}

// traceExperiment runs one registered experiment with a recording observer
// attached and prints the combined timeline of every machine it drove.
func traceExperiment(w io.Writer, e harness.Experiment, seed uint64, csv bool) error {
	var steps []engine.StepStats
	obs := engine.ObserverFunc(func(st engine.StepStats) {
		steps = append(steps, st)
	})
	cfg := harness.Config{Seed: seed, Params: harness.QuickParams(), Observer: obs}
	e.Run(io.Discard, cfg)

	t := tablefmt.New(fmt.Sprintf("superstep timeline: %s (quick, seed %d)", e.ID, seed),
		"#", "machine", "step", "work", "h", "msgs", "steps", "maxload", "overloads", "c_m", "cost", "cum time")
	cum := 0.0
	for i, st := range steps {
		cum += st.Cost
		t.Row(i, st.Machine, st.Index, st.W, st.H, st.N, st.Steps, st.MaxSlot, st.Overload, st.CM, st.Cost, cum)
	}
	if csv {
		fmt.Fprint(w, t.CSV())
	} else {
		fmt.Fprintln(w, t.String())
	}
	fmt.Fprintf(w, "total simulated time: %.1f over %d machine steps\n", cum, len(steps))
	return nil
}
