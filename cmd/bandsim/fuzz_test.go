package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbw/internal/harness"
	"parbw/internal/oracle"
	"parbw/internal/runstore"
	"parbw/internal/service"
)

// Two fuzz runs with identical flags must produce byte-identical output —
// the acceptance criterion behind checking fuzz output into CI logs.
func TestFuzzOutputByteIdentical(t *testing.T) {
	run := func(extra ...string) string {
		var buf bytes.Buffer
		if err := runFuzz(append([]string{"-seeds", "200"}, extra...), &buf); err != nil {
			t.Fatalf("runFuzz: %v", err)
		}
		return buf.String()
	}
	if a, b := run("-json"), run("-json"); a != b {
		t.Fatal("two -json runs with identical flags differ")
	}
	if a, b := run(), run(); a != b {
		t.Fatal("two text runs with identical flags differ")
	}
	// The JSON summary line reports a clean run.
	var sum fuzzSummary
	out := strings.TrimSpace(run("-json"))
	last := out[strings.LastIndexByte(out, '\n')+1:]
	if err := json.Unmarshal([]byte(last), &sum); err != nil {
		t.Fatalf("summary line %q: %v", last, err)
	}
	if sum.Failures != 0 || sum.Seeds != 200 || sum.TotalFlits == 0 {
		t.Fatalf("unexpected summary %+v", sum)
	}
}

// The end-to-end acceptance scenario: with a deliberately broken invariant
// (test-only hook), `bandsim fuzz` finds the failures, shrinks each to at
// most 3 supersteps, and writes corpus entries that replay cleanly.
func TestFuzzBrokenInvariantShrinksAndWritesCorpus(t *testing.T) {
	oracle.BreakForTest = "workload/conserve"
	defer func() { oracle.BreakForTest = "" }()

	dir := t.TempDir()
	var buf bytes.Buffer
	err := runFuzz([]string{"-seeds", "6", "-json", "-corpus", dir}, &buf)
	if err == nil {
		t.Fatal("broken invariant produced no failure exit")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var sum fuzzSummary
	if jerr := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); jerr != nil {
		t.Fatalf("summary: %v", jerr)
	}
	if sum.Failures == 0 {
		t.Fatal("no failures reported")
	}
	for _, line := range lines[:len(lines)-1] {
		var f fuzzFailure
		if jerr := json.Unmarshal([]byte(line), &f); jerr != nil {
			t.Fatalf("failure line %q: %v", line, jerr)
		}
		if f.Shrunk == nil {
			t.Fatalf("seed %d: no shrunk workload", f.Seed)
		}
		if len(f.Shrunk.Steps) > 3 {
			t.Fatalf("seed %d: shrunk to %d supersteps, want <= 3", f.Seed, len(f.Shrunk.Steps))
		}
		if f.Nondeterministic != 0 {
			t.Fatalf("seed %d: %d nondeterministic shrink candidates", f.Seed, f.Nondeterministic)
		}
	}

	// Every corpus entry decodes and replays to exactly its recorded
	// violation set (the hook is still active, so the recorded failure
	// reproduces).
	files, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(files) != sum.Failures {
		t.Fatalf("%d corpus files for %d failures", len(files), sum.Failures)
	}
	for _, fi := range files {
		data, rerr := os.ReadFile(filepath.Join(dir, fi.Name()))
		if rerr != nil {
			t.Fatal(rerr)
		}
		e, derr := oracle.DecodeEntry(data)
		if derr != nil {
			t.Fatalf("%s: %v", fi.Name(), derr)
		}
		if perr := oracle.Replay(e); perr != nil {
			t.Fatalf("%s: replay: %v", fi.Name(), perr)
		}
	}
}

func TestFuzzRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := runFuzz([]string{"-seeds", "0"}, &buf); err == nil {
		t.Fatal("zero seeds accepted")
	}
	if err := runFuzz([]string{"-family", "nope"}, &buf); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := runFuzz([]string{"stray"}, &buf); err == nil {
		t.Fatal("positional argument accepted")
	}
}

// A mistyped -family gets the same did-you-mean shape mistyped experiment
// ids get, via the shared harness.SuggestFrom matcher.
func TestFuzzUnknownFamilySuggests(t *testing.T) {
	var buf bytes.Buffer
	err := runFuzz([]string{"-family", "ball", "-seeds", "1"}, &buf)
	if err == nil {
		t.Fatal("near-miss family accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown family "ball"`) {
		t.Fatalf("message missing family name: %q", msg)
	}
	if !strings.Contains(msg, "did you mean") || !strings.Contains(msg, "balls") {
		t.Fatalf("message missing suggestion: %q", msg)
	}

	// Nonsense gets the full family list instead of bogus suggestions.
	err = runFuzz([]string{"-family", "zzz", "-seeds", "1"}, &buf)
	if err == nil {
		t.Fatal("nonsense family accepted")
	}
	msg = err.Error()
	if strings.Contains(msg, "did you mean") {
		t.Fatalf("bogus suggestions for nonsense family: %q", msg)
	}
	if !strings.Contains(msg, "hrel, dag, balls") {
		t.Fatalf("fallback family list missing: %q", msg)
	}
}

// The CLI's -json error envelope must be byte-identical to the v1 HTTP
// API's response for the same mistake — same codes, same messages, same
// did-you-mean suggestion payloads.
func TestCLIAndAPIErrorEnvelopeParity(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(service.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) []byte {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Unknown experiment: the API response and the CLI's envelope for the
	// same typo must match byte for byte, suggestions included.
	api := post(`{"experiments":["table1/brodcast"]}`)
	var cli bytes.Buffer
	writeErrorEnvelope(&cli, service.UnknownExperimentEnvelope("table1/brodcast"))
	if !bytes.Equal(api, cli.Bytes()) {
		t.Fatalf("unknown-experiment envelopes differ:\napi %s\ncli %s", api, cli.Bytes())
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal(api, &env); err != nil || len(env.Error.Suggestions) == 0 {
		t.Fatalf("envelope %s carries no suggestions (err %v)", api, err)
	}

	// Unknown parameter: the CLI reaches the envelope through Resolve, the
	// API through Submit; both must serialize identically.
	api = post(`{"experiments":["sched/static"],"params":{"epz":0.5}}`)
	e, ok := harness.ByID("sched/static")
	if !ok {
		t.Fatal("sched/static not registered")
	}
	_, rerr := e.Resolve(map[string]string{"epz": "0.5"})
	if rerr == nil {
		t.Fatal("epz resolved")
	}
	cli.Reset()
	writeErrorEnvelope(&cli, service.ParamErrorEnvelope(rerr))
	if !bytes.Equal(api, cli.Bytes()) {
		t.Fatalf("unknown-param envelopes differ:\napi %s\ncli %s", api, cli.Bytes())
	}
	if err := json.Unmarshal(api, &env); err != nil || len(env.Error.Suggestions) == 0 || env.Error.Suggestions[0] != "eps" {
		t.Fatalf("envelope %s: want suggestions [eps ...] (err %v)", api, err)
	}
}
