package main

// bandsim watch <job-id> — follow a job's live event stream over the SSE
// endpoint GET /v1/runs/{id}/events. The default output is one human-readable
// line per event; -json prints the raw event objects (one per line) for
// piping into jq. Reconnection is the client's job: -last-event-id resumes a
// broken stream from the bus's replay ring, exactly like a browser's
// EventSource would.

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"parbw/internal/service"
)

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// readSSE parses a text/event-stream, invoking fn once per complete frame.
// Comment lines (": hb" heartbeats) are skipped; multi-line data fields are
// joined with newlines per the SSE spec. It returns when the stream ends,
// the reader fails, or fn returns an error.
func readSSE(r io.Reader, fn func(sseEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev sseEvent
	dispatch := func() error {
		if ev.Event == "" && ev.Data == "" && ev.ID == "" {
			return nil // blank line after a comment: nothing accumulated
		}
		err := fn(ev)
		ev = sseEvent{}
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment — the server's heartbeat; carries no event
		case strings.HasPrefix(line, "id:"):
			ev.ID = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			ev.Event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if ev.Data != "" {
				ev.Data += "\n"
			}
			ev.Data += strings.TrimSpace(line[len("data:"):])
		}
	}
	if err := dispatch(); err != nil {
		return err
	}
	return sc.Err()
}

// formatEvent renders one event as the human-readable watch line.
func formatEvent(ev service.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-5d %-9s", ev.ID, ev.Type)
	if ev.Task >= 0 {
		fmt.Fprintf(&b, " task %-4d", ev.Task)
	}
	if ev.Experiment != "" {
		fmt.Fprintf(&b, " %s seed=%d", ev.Experiment, ev.Seed)
	}
	switch ev.Type {
	case service.EventStep:
		fmt.Fprintf(&b, " machine=%s superstep=%d cost=%.4g", ev.Machine, ev.Superstep, ev.Cost)
	case service.EventGap:
		fmt.Fprintf(&b, " events %d..%d dropped (slow consumer or resume past replay ring)", ev.From, ev.To)
	case service.EventJob:
		fmt.Fprintf(&b, " state=%s", ev.State)
		if len(ev.Counts) > 0 {
			keys := make([]string, 0, len(ev.Counts))
			for k := range ev.Counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, ev.Counts[k])
			}
			fmt.Fprintf(&b, " tasks[%s]", strings.Join(parts, " "))
		}
	}
	if ev.Node != "" {
		fmt.Fprintf(&b, " node=%s", ev.Node)
	}
	if ev.Cached {
		b.WriteString(" cached")
	}
	if ev.Forwarded {
		b.WriteString(" forwarded")
	}
	if ev.Degraded {
		b.WriteString(" degraded")
	}
	if ev.Error != "" {
		fmt.Fprintf(&b, " error=%q", ev.Error)
	}
	return b.String()
}

// runWatch implements the watch subcommand.
func runWatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "service base URL")
	jsonOut := fs.Bool("json", false, "print raw event JSON, one object per line")
	resume := fs.String("last-event-id", "", "resume after this event id (sent as Last-Event-ID)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandsim watch [flags] <job-id>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) > 0 {
		// Allow "bandsim watch job-000001 -json": the id may precede flags.
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
	}
	if len(rest) == 0 || len(fs.Args()) > 0 {
		fs.Usage()
		return fmt.Errorf("watch needs exactly one job id")
	}
	id := rest[0]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	url := strings.TrimRight(*addr, "/") + "/v1/runs/" + id + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if *resume != "" {
		req.Header.Set("Last-Event-ID", *resume)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var env service.ErrorEnvelope
		if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
			return fmt.Errorf("watch %s: %s (%s)", id, env.Error.Message, env.Error.Code)
		}
		return fmt.Errorf("watch %s: status %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}

	err = readSSE(resp.Body, func(frame sseEvent) error {
		if *jsonOut {
			_, err := fmt.Fprintln(out, frame.Data)
			return err
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(frame.Data), &ev); err != nil {
			_, err := fmt.Fprintf(out, "#%-5s %-9s %s\n", frame.ID, frame.Event, frame.Data)
			return err
		}
		_, err := fmt.Fprintln(out, formatEvent(ev))
		return err
	})
	if err != nil && ctx.Err() != nil {
		return nil // interrupted by the user: a clean exit, not a failure
	}
	return err
}
