package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parbw/internal/cluster"
	"parbw/internal/runstore"
	"parbw/internal/service"
)

// runServe starts the experiment run service: the HTTP API over the job
// queue, sweep executor, and content-addressed run store. On SIGINT/SIGTERM
// it drains gracefully — running jobs finish inside the drain deadline,
// queued jobs cancel, new submissions get 503 — before the listener stops.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	storeDir := fs.String("store", ".bandsim/runs", "run-store directory")
	maxMem := fs.Int("store-mem", runstore.DefaultMaxMem, "in-memory run-store entries (LRU bound)")
	workers := fs.Int("workers", 0, "sweep executor fan-out width (0 = GOMAXPROCS)")
	timeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job timeout")
	retries := fs.Int("retries", 2, "extra attempts per failed task")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown")
	scrub := fs.Bool("scrub", false, "verify every stored entry at startup (quarantining corrupt ones)")
	compat := fs.Bool("compat-unversioned", true, "serve the deprecated unversioned path aliases (/runs, /healthz, ...)")
	heartbeat := fs.Duration("sse-heartbeat", 0, "SSE heartbeat interval on /v1/runs/{id}/events (0 = default 15s, negative = off)")
	stepSample := fs.Int("step-sample", 0, "publish every Nth engine superstep as a stream event (0 = default 64, negative = off)")
	clusterSelf := fs.String("cluster-self", "", "this node's name in the cluster ring (enables cluster mode)")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated name=url list of every ring member (a self entry is ignored)")
	forwardTimeout := fs.Duration("forward-timeout", 2*time.Second, "per-attempt deadline for forwarding a task to its owning peer")
	forwardRetries := fs.Int("forward-retries", 2, "extra forward attempts before degrading to local compute")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandsim serve [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := runstore.Open(*storeDir, *maxMem)
	if err != nil {
		return err
	}
	if *scrub {
		rep, err := store.Scrub()
		if err != nil {
			return err
		}
		fmt.Printf("bandsim serve: scrub checked %d entries, quarantined %d, swept %d temp files\n",
			rep.Checked, rep.Quarantined, rep.TmpSwept)
	}
	r := *retries
	if r == 0 {
		r = -1 // Options treats <0 as "no retries"; 0 selects the default
	}
	var cl *cluster.Client
	if *clusterSelf != "" || *clusterPeers != "" {
		if *clusterSelf == "" {
			return errors.New("bandsim serve: -cluster-peers requires -cluster-self")
		}
		peers, err := parsePeers(*clusterPeers)
		if err != nil {
			return err
		}
		fr := *forwardRetries
		if fr == 0 {
			fr = -1 // same convention as -retries
		}
		cl, err = cluster.New(cluster.Options{
			Self:           *clusterSelf,
			Peers:          peers,
			AttemptTimeout: *forwardTimeout,
			Retries:        fr,
		})
		if err != nil {
			return err
		}
	}
	svc, err := service.New(service.Options{
		Store:                store,
		Workers:              *workers,
		JobTimeout:           *timeout,
		Retries:              r,
		Cluster:              cl,
		Heartbeat:            *heartbeat,
		StepSample:           *stepSample,
		NoUnversionedAliases: !*compat,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Slowloris defense: a client cannot hold a connection open by
		// trickling header or body bytes. Handler time (long-polling POST
		// /runs with wait=true) is not under ReadTimeout, which only covers
		// reading the request.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("bandsim serve: listening on http://%s (store %s)\n", *addr, store.Dir())
	if cl != nil {
		fmt.Printf("bandsim serve: cluster mode, node %s of ring %v\n", cl.Self(), cl.Members())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Printf("\nbandsim serve: draining (deadline %s)\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain the executor first — running jobs finish, queued jobs
		// cancel, submissions 503 — then stop the HTTP listener so waiting
		// clients get their terminal job states.
		if err := svc.Shutdown(shutCtx); err != nil {
			fmt.Printf("bandsim serve: drain deadline hit, running jobs cancelled\n")
		}
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

// parsePeers parses the -cluster-peers value: "name=url,name=url,...". Every
// ring member appears in the list; the entry naming this node is ignored by
// cluster.New, so all nodes can share one membership string verbatim.
func parsePeers(spec string) (map[string]string, error) {
	peers := map[string]string{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bandsim serve: bad -cluster-peers entry %q (want name=url)", entry)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("bandsim serve: duplicate peer %q in -cluster-peers", name)
		}
		peers[name] = strings.TrimRight(url, "/")
	}
	return peers, nil
}
