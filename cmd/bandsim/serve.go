package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parbw/internal/runstore"
	"parbw/internal/service"
)

// runServe starts the experiment run service: the HTTP API over the job
// queue, sweep executor, and content-addressed run store.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	storeDir := fs.String("store", ".bandsim/runs", "run-store directory")
	maxMem := fs.Int("store-mem", runstore.DefaultMaxMem, "in-memory run-store entries (LRU bound)")
	workers := fs.Int("workers", 0, "sweep executor fan-out width (0 = GOMAXPROCS)")
	timeout := fs.Duration("job-timeout", 5*time.Minute, "default per-job timeout")
	retries := fs.Int("retries", 2, "extra attempts per failed task")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandsim serve [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := runstore.Open(*storeDir, *maxMem)
	if err != nil {
		return err
	}
	r := *retries
	if r == 0 {
		r = -1 // Options treats <0 as "no retries"; 0 selects the default
	}
	svc, err := service.New(service.Options{
		Store:      store,
		Workers:    *workers,
		JobTimeout: *timeout,
		Retries:    r,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("bandsim serve: listening on http://%s (store %s)\n", *addr, store.Dir())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("\nbandsim serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
