package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"parbw/internal/bench"
)

// runBench implements `bandsim bench`: run the fixed benchmark suite from
// internal/bench and write the canonical report. With -baseline it also
// compares against a checked-in report and exits non-zero on regression,
// which is what the CI bench job runs.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "output path ('-' for stdout; default BENCH_<timestamp>.json)")
	dry := fs.Bool("dry", false, "skip the timed loops: zero timings, fixed timestamp (determinism check)")
	baseline := fs.String("baseline", "", "compare against this report and fail on regression")
	benchtime := fs.String("benchtime", "1s", "per-case measurement budget (testing -benchtime syntax)")
	tol := fs.Float64("tol", 0.20, "allowed fractional ns/op regression vs -baseline")
	run := fs.String("run", "", "run only cases matching this regexp; -baseline is filtered the same way")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: bandsim bench [-out FILE] [-dry] [-baseline FILE] [-benchtime DUR] [-tol FRAC] [-run REGEXP]

Runs the fixed hot-path suite (superstep merge per model, the static
scheduling sweep, and quick Table 1 experiments) and writes a canonical
JSON report. Model fingerprints in the report are wall-clock-free, so a
-dry run is byte-reproducible and -baseline catches both performance
regressions and model-semantics drift.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	now := time.Now().UTC()
	rep, err := bench.Run(bench.Options{
		Dry:       *dry,
		BenchTime: *benchtime,
		Run:       *run,
		Timestamp: now.Format(time.RFC3339),
	})
	if err != nil {
		return err
	}
	data, err := rep.Marshal()
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		if *dry {
			path = "-" // a dry report is for inspection, not archiving
		} else {
			path = "BENCH_" + now.Format("20060102T150405Z") + ".json"
		}
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("wrote %s (%d cases, checksum %s)\n", path, len(rep.Results), rep.ModelChecksum)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		base, err := bench.Unmarshal(raw)
		if err != nil {
			return err
		}
		if *run != "" {
			if base, err = base.Filter(*run); err != nil {
				return err
			}
		}
		if fails := bench.Compare(base, rep, *tol); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "bench regression:", f)
			}
			return fmt.Errorf("%d benchmark check(s) failed against %s", len(fails), *baseline)
		}
		fmt.Printf("benchmarks within %.0f%% of %s, model checksum matches\n", *tol*100, *baseline)
	}
	return nil
}
