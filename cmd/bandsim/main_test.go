package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbw/internal/harness"
)

func TestRunTraceTargets(t *testing.T) {
	for name := range traceTargets {
		var buf bytes.Buffer
		if err := runTrace(&buf, name, 1, false); err != nil {
			t.Fatalf("trace %s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "superstep timeline") || !strings.Contains(out, "total simulated time") {
			t.Fatalf("trace %s output malformed:\n%s", name, out)
		}
	}
}

func TestRunTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runTrace(&buf, "broadcast", 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "superstep,") {
		t.Fatalf("CSV trace missing header: %q", buf.String()[:40])
	}
}

func TestRunTraceUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runTrace(&buf, "nope", 1, false); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// A registered experiment id is a valid trace target: the engine observer
// records every superstep of every machine the experiment drives.
func TestRunTraceExperimentID(t *testing.T) {
	var buf bytes.Buffer
	if err := runTrace(&buf, "table1/broadcast", 1, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "superstep timeline: table1/broadcast") {
		t.Fatalf("missing timeline header:\n%s", out)
	}
	// The Table 1 broadcast experiment drives both message-passing and
	// shared-memory machines; the combined timeline should name each family.
	if !strings.Contains(out, "bsp") || !strings.Contains(out, "qsm") {
		t.Fatalf("timeline missing machine families:\n%s", out)
	}
	if !strings.Contains(out, "total simulated time") {
		t.Fatalf("missing summary line:\n%s", out)
	}
}

// Mistyped trace targets suggest close matches from both the legacy
// algorithm names and the experiment registry, and the error is non-nil so
// main exits non-zero.
func TestRunTraceUnknownSuggests(t *testing.T) {
	var buf bytes.Buffer
	err := runTrace(&buf, "brodcast", 1, false)
	if err == nil {
		t.Fatal("mistyped target accepted")
	}
	if !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "broadcast") {
		t.Fatalf("missing suggestion: %v", err)
	}
	err = runTrace(&buf, "table1/brodcast", 1, false)
	if err == nil {
		t.Fatal("mistyped experiment id accepted")
	}
	if !strings.Contains(err.Error(), "table1/broadcast") {
		t.Fatalf("missing registry suggestion: %v", err)
	}
}

func TestUnknownIDMessageSuggests(t *testing.T) {
	msg := unknownIDMessage("table1/brodcast")
	if !strings.Contains(msg, `unknown experiment "table1/brodcast"`) {
		t.Fatalf("message missing id: %q", msg)
	}
	if !strings.Contains(msg, "did you mean") || !strings.Contains(msg, "table1/broadcast") {
		t.Fatalf("message missing suggestion: %q", msg)
	}
}

func TestUnknownIDMessageNoMatches(t *testing.T) {
	msg := unknownIDMessage("zzzzqqq")
	if !strings.Contains(msg, "bandsim list") {
		t.Fatalf("fallback hint missing: %q", msg)
	}
	if strings.Contains(msg, "did you mean") {
		t.Fatalf("bogus suggestions for nonsense id: %q", msg)
	}
}

func TestExportAll(t *testing.T) {
	dir := t.TempDir()
	if err := exportAll(dir, harness.Config{Seed: 1, Params: harness.QuickParams()}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(harness.All()) {
		t.Fatalf("exported %d files, want %d", len(entries), len(harness.All()))
	}
	b, err := os.ReadFile(filepath.Join(dir, "table1_broadcast.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "p,model,measured") {
		t.Fatalf("CSV header missing: %q", string(b)[:60])
	}
}

func TestSetFlags(t *testing.T) {
	s := setFlags{}
	for _, v := range []string{"p=64", " g = 8 ", "p=128", "eps=0.5"} {
		if err := s.Set(v); err != nil {
			t.Fatalf("Set(%q): %v", v, err)
		}
	}
	if s["p"] != "128" || s["g"] != "8" || s["eps"] != "0.5" {
		t.Fatalf("setFlags = %v", s)
	}
	if got := s.String(); got != "eps=0.5,g=8,p=128" {
		t.Fatalf("String() = %q", got)
	}
	for _, bad := range []string{"", "noequals", "=5"} {
		if err := s.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestExportAllRejectsBadParams(t *testing.T) {
	dir := t.TempDir()
	err := exportAll(dir, harness.Config{Seed: 1, Params: map[string]string{"bogus": "1"}})
	if err == nil {
		t.Fatal("exportAll accepted an undeclared param")
	}
}
