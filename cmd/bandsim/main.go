// Command bandsim runs the paper-reproduction experiments of the parbw
// library: the Table 1 separation rows, the lower-bound and simulation
// results of Sections 4–5, and the unbalanced/dynamic scheduling results of
// Section 6 of Adler, Gibbons, Matias & Ramachandran, "Modeling Parallel
// Bandwidth: Local vs. Global Restrictions" (SPAA 1997).
//
// Usage:
//
//	bandsim list                 list all experiment ids
//	bandsim run <id>...          run selected experiments
//	bandsim run all              run everything (this regenerates Table 1
//	                             and every per-theorem table)
//	bandsim serve                HTTP run service (see serve.go)
//	bandsim watch <job-id>       follow a job's live event stream (see watch.go)
//	bandsim fuzz                 seeded workload fuzzing with invariant
//	                             oracles and ddmin shrinking (see fuzz.go)
//
// Flags:
//
//	-seed N         experiment seed (default 1)
//	-quick          the "quick" preset: smaller parameter sweeps
//	-set key=value  set one experiment parameter (repeatable); names and
//	                values are validated against each experiment's declared
//	                schema, with did-you-mean suggestions on a typo
//	-csv            emit CSV instead of aligned tables
//	-json           emit structured result JSON (run only)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parbw/internal/harness"
	"parbw/internal/service"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, `the "quick" preset: smaller parameter sweeps`)
	csv := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit structured result JSON (run only)")
	sets := setFlags{}
	flag.Var(sets, "set", "set an experiment parameter as key=value (repeatable)")
	flag.Usage = usage
	args := parseArgs()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	params := map[string]string{}
	if *quick {
		for k, v := range harness.Presets["quick"] {
			params[k] = v
		}
	}
	for k, v := range sets { // explicit -set wins over the preset
		params[k] = v
	}
	cfg := harness.Config{Seed: *seed, Params: params, CSV: *csv}

	switch args[0] {
	case "trace":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "bandsim: trace needs a target (broadcast|prefix|unbalanced|listrank|sort, or any experiment id)")
			os.Exit(2)
		}
		if err := runTrace(os.Stdout, args[1], *seed, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "verify":
		if fails := harness.Verify(os.Stdout, *seed); fails > 0 {
			fmt.Fprintf(os.Stderr, "bandsim: %d check(s) failed\n", fails)
			os.Exit(1)
		}
		fmt.Println("\nall reproduction checks passed")
	case "export":
		dir := "results"
		if len(args) > 1 {
			dir = args[1]
		}
		if err := exportAll(dir, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment CSVs to %s/\n", len(harness.All()), dir)
	case "list":
		for _, e := range harness.All() {
			fmt.Printf("%-20s %s — %s\n", e.ID, e.Title, e.Source)
		}
	case "serve":
		if err := runServe(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "watch":
		if err := runWatch(args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "bench":
		if err := runBench(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "fuzz":
		if err := runFuzz(args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "bandsim: run needs experiment ids (or 'all')")
			os.Exit(2)
		}
		ids := args[1:]
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, e := range harness.All() {
				ids = append(ids, e.ID)
			}
		}
		// Validate the whole selection — ids and parameter assignments —
		// before running any of it.
		for _, id := range ids {
			e, ok := harness.ByID(id)
			if !ok {
				if *jsonOut {
					writeErrorEnvelope(os.Stdout, service.UnknownExperimentEnvelope(id))
				} else {
					fmt.Fprint(os.Stderr, unknownIDMessage(id))
				}
				os.Exit(1)
			}
			if _, err := e.Resolve(cfg.Params); err != nil {
				if *jsonOut {
					writeErrorEnvelope(os.Stdout, service.ParamErrorEnvelope(err))
				} else {
					fmt.Fprintln(os.Stderr, "bandsim:", err)
				}
				os.Exit(1)
			}
		}
		for _, id := range ids {
			e, _ := harness.ByID(id)
			if *jsonOut {
				res := e.Run(nil, cfg)
				data, err := res.CanonicalJSON()
				if err != nil {
					fmt.Fprintln(os.Stderr, "bandsim:", err)
					os.Exit(1)
				}
				os.Stdout.Write(append(data, '\n'))
				continue
			}
			fmt.Printf("\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
			e.Run(os.Stdout, cfg)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// parseArgs parses the command line allowing global flags before or after
// the subcommand and ids ("bandsim run table1/broadcast -set p=64"), which
// the stdlib parser alone does not: it stops at the first positional, so the
// remainder is re-parsed until only positionals are left. The serve and
// bench subcommands own their trailing flags and are left untouched.
func parseArgs() []string {
	flag.Parse()
	rest := flag.Args()
	if len(rest) > 0 && (rest[0] == "serve" || rest[0] == "bench" || rest[0] == "fuzz" || rest[0] == "watch") {
		return rest
	}
	var out []string
	for {
		i := 0
		for i < len(rest) && !strings.HasPrefix(rest[i], "-") {
			out = append(out, rest[i])
			i++
		}
		if i == len(rest) {
			return out
		}
		flag.CommandLine.Parse(rest[i:]) // ExitOnError: exits on a bad flag
		rest = flag.Args()
	}
}

// setFlags is the repeatable -set key=value flag: later assignments to the
// same key win, matching how presets are overridden.
type setFlags map[string]string

func (s setFlags) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s[k]
	}
	return strings.Join(parts, ",")
}

func (s setFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	k = strings.TrimSpace(k)
	if !ok || k == "" {
		return fmt.Errorf("expected key=value, got %q", v)
	}
	s[k] = strings.TrimSpace(val)
	return nil
}

// writeErrorEnvelope prints a v1 error envelope as one JSON line — the
// same {code, message, suggestions} object the HTTP API answers with, and
// encoded with the same settings, so -json consumers parse one shape
// across both surfaces.
func writeErrorEnvelope(w io.Writer, env service.ErrorEnvelope) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(env); err != nil {
		fmt.Fprintln(os.Stderr, "bandsim:", err)
	}
}

// unknownIDMessage formats the error for a mistyped experiment id, with the
// registry's closest matches when there are any.
func unknownIDMessage(id string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bandsim: unknown experiment %q\n", id)
	if sug := harness.Suggest(id); len(sug) > 0 {
		b.WriteString("did you mean:\n")
		for _, s := range sug {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	} else {
		b.WriteString("run 'bandsim list' for all experiment ids\n")
	}
	return b.String()
}

func usage() {
	fmt.Fprintf(os.Stderr, `bandsim — experiments for "Modeling Parallel Bandwidth: Local vs. Global Restrictions"

usage:
  bandsim [flags] list
  bandsim [flags] run <id>... | all
  bandsim [flags] export [dir]    write every experiment as CSV (default dir: results/)
  bandsim [flags] verify          run the reproduction checklist (PASS/FAIL per claim)
  bandsim [flags] trace <target>  per-superstep timeline: an algorithm name or
                                  any experiment id (engine observer over every
                                  machine the experiment drives)
  bandsim serve [serve flags]     HTTP run service: job queue + sweep executor over
                                  a content-addressed run store ('serve -h' for flags)
  bandsim watch [flags] <job-id>  follow a job's live event stream (SSE) from a
                                  running serve instance ('watch -h' for flags)
  bandsim bench [bench flags]     fixed hot-path benchmark suite; emits a canonical
                                  BENCH_<timestamp>.json report ('bench -h' for flags)
  bandsim fuzz [fuzz flags]       seeded workload fuzzing: generate workloads, check
                                  the invariant oracles, ddmin-shrink any failure
                                  ('fuzz -h' for flags)

flags:
`)
	flag.PrintDefaults()
}

// exportAll writes one CSV file per experiment into dir.
func exportAll(dir string, cfg harness.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg.CSV = true
	for _, e := range harness.All() {
		if _, err := e.Resolve(cfg.Params); err != nil {
			return err
		}
		name := strings.ReplaceAll(e.ID, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		e.Run(f, cfg)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
