// Command bandsim runs the paper-reproduction experiments of the parbw
// library: the Table 1 separation rows, the lower-bound and simulation
// results of Sections 4–5, and the unbalanced/dynamic scheduling results of
// Section 6 of Adler, Gibbons, Matias & Ramachandran, "Modeling Parallel
// Bandwidth: Local vs. Global Restrictions" (SPAA 1997).
//
// Usage:
//
//	bandsim list                 list all experiment ids
//	bandsim run <id>...          run selected experiments
//	bandsim run all              run everything (this regenerates Table 1
//	                             and every per-theorem table)
//
// Flags:
//
//	-seed N    experiment seed (default 1)
//	-quick     smaller parameter sweeps
//	-csv       emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parbw/internal/harness"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := harness.Config{Seed: *seed, Quick: *quick, CSV: *csv}

	switch args[0] {
	case "trace":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "bandsim: trace needs a target (broadcast|prefix|unbalanced|listrank|sort)")
			os.Exit(2)
		}
		if err := runTrace(os.Stdout, args[1], *seed, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
	case "verify":
		if fails := harness.Verify(os.Stdout, *seed); fails > 0 {
			fmt.Fprintf(os.Stderr, "bandsim: %d check(s) failed\n", fails)
			os.Exit(1)
		}
		fmt.Println("\nall reproduction checks passed")
	case "export":
		dir := "results"
		if len(args) > 1 {
			dir = args[1]
		}
		if err := exportAll(dir, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "bandsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment CSVs to %s/\n", len(harness.All()), dir)
	case "list":
		for _, e := range harness.All() {
			fmt.Printf("%-20s %s — %s\n", e.ID, e.Title, e.Source)
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "bandsim: run needs experiment ids (or 'all')")
			os.Exit(2)
		}
		if args[1] == "all" {
			harness.RunAll(os.Stdout, cfg)
			return
		}
		for _, id := range args[1:] {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "bandsim: unknown experiment %q (try 'bandsim list')\n", id)
				os.Exit(1)
			}
			fmt.Printf("\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
			e.Run(os.Stdout, cfg)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `bandsim — experiments for "Modeling Parallel Bandwidth: Local vs. Global Restrictions"

usage:
  bandsim [flags] list
  bandsim [flags] run <id>... | all
  bandsim [flags] export [dir]    write every experiment as CSV (default dir: results/)
  bandsim [flags] verify          run the reproduction checklist (PASS/FAIL per claim)
  bandsim [flags] trace <algo>    per-superstep timeline of one algorithm run

flags:
`)
	flag.PrintDefaults()
}

// exportAll writes one CSV file per experiment into dir.
func exportAll(dir string, cfg harness.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg.CSV = true
	for _, e := range harness.All() {
		name := strings.ReplaceAll(e.ID, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		e.Run(f, cfg)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
