package main

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parbw/internal/runstore"
	"parbw/internal/service"
)

func TestReadSSEParsesFramesAndSkipsComments(t *testing.T) {
	stream := "" +
		": hb\n\n" +
		"id: 1\nevent: admitted\ndata: {\"id\":1}\n\n" +
		": hb\n\n" +
		"id: 2\nevent: step\ndata: line1\ndata: line2\n\n" +
		"id: 3\nevent: completed\ndata: {\"id\":3}\n\n"
	var got []sseEvent
	err := readSSE(strings.NewReader(stream), func(ev sseEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []sseEvent{
		{ID: "1", Event: "admitted", Data: `{"id":1}`},
		{ID: "2", Event: "step", Data: "line1\nline2"},
		{ID: "3", Event: "completed", Data: `{"id":3}`},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d frames, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadSSEStopsOnCallbackError(t *testing.T) {
	stream := "id: 1\nevent: a\ndata: x\n\nid: 2\nevent: b\ndata: y\n\n"
	sentinel := errors.New("stop")
	n := 0
	err := readSSE(strings.NewReader(stream), func(sseEvent) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("err=%v after %d frames, want sentinel after 1", err, n)
	}
}

func TestFormatEventShapes(t *testing.T) {
	cases := []struct {
		ev   service.Event
		want []string
	}{
		{service.Event{ID: 7, Type: service.EventCompleted, Task: 3, Experiment: "table1/broadcast", Seed: 1, Cached: true},
			[]string{"#7", "completed", "task 3", "table1/broadcast seed=1", "cached"}},
		{service.Event{ID: 9, Type: service.EventGap, Task: -1, From: 4, To: 8},
			[]string{"gap", "events 4..8 dropped"}},
		{service.Event{ID: 2, Type: service.EventJob, Task: -1, State: service.StatusDone, Counts: map[string]int{"done": 2}},
			[]string{"state=done", "tasks[done=2]"}},
		{service.Event{ID: 5, Type: service.EventStep, Task: 0, Machine: "bsp", Superstep: 12, Cost: 3.5, Node: "b"},
			[]string{"machine=bsp", "superstep=12", "node=b"}},
	}
	for _, tc := range cases {
		line := formatEvent(tc.ev)
		for _, frag := range tc.want {
			if !strings.Contains(line, frag) {
				t.Fatalf("formatEvent(%+v) = %q, missing %q", tc.ev, line, frag)
			}
		}
	}
}

// End-to-end: watch a finished job against a real server — the subscribe-on-
// closed-bus replay path — and check the human lines cover the lifecycle.
func TestWatchReplaysFinishedJob(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	job, err := svc.Submit(service.RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != service.StatusDone {
		t.Fatalf("job state %q, want done", state)
	}

	var out bytes.Buffer
	if err := runWatch([]string{"-addr", ts.URL, job.View().ID}, &out); err != nil {
		t.Fatalf("runWatch: %v (output %s)", err, out.String())
	}
	text := out.String()
	for _, frag := range []string{"admitted", "started", "completed", "state=done"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("watch output missing %q:\n%s", frag, text)
		}
	}

	// -json mode emits one JSON object per line, raw.
	out.Reset()
	if err := runWatch([]string{"-addr", ts.URL, "-json", job.View().ID}, &out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("-json line is not a JSON object: %q", line)
		}
	}

	// An unknown job reports the server's error envelope.
	if err := runWatch([]string{"-addr", ts.URL, "job-404404"}, &out); err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Fatalf("unknown job error = %v, want envelope with not_found", err)
	}
}
