// Native fuzz targets for the core invariants. Under plain `go test` the
// seed corpus runs as regular tests; `go test -fuzz=FuzzX` explores further.
package parbw_test

import (
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/problems"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

// FuzzUnbalancedSend: any workload shape must deliver every message exactly
// once, with the result accounting consistent.
func FuzzUnbalancedSend(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(3), false)
	f.Add(uint64(7), uint16(2000), uint8(1), true)
	f.Add(uint64(42), uint16(0), uint8(7), false)
	f.Fuzz(func(t *testing.T, seed uint64, nMsgs uint16, mmRaw uint8, consecutive bool) {
		p := 32
		mm := 1 << (mmRaw % 6) // 1..32
		rng := xrand.New(seed)
		plan := sched.ZipfPlan(rng, p, int(nMsgs)%3000, 1.0)
		m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, 2), Seed: seed})
		var r sched.Result
		if consecutive {
			r = sched.UnbalancedConsecutiveSend(m, plan, sched.Options{Eps: 0.25})
		} else {
			r = sched.UnbalancedSend(m, plan, sched.Options{Eps: 0.25})
		}
		_, want, _ := plan.Flits(p)
		got := 0
		for i := 0; i < p; i++ {
			for _, msg := range m.Inbox(i) {
				got += msg.Flits()
			}
		}
		if got != want || r.N != want {
			t.Fatalf("delivered %d, result %d, want %d", got, r.N, want)
		}
		if r.Time < r.Send.Cost {
			t.Fatalf("total time %v below send cost %v", r.Time, r.Send.Cost)
		}
	})
}

// FuzzColumnsort: the distributed sort must produce the sorted multiset for
// any power-of-two shape and any keys.
func FuzzColumnsort(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(3))
	f.Add(uint64(9), uint8(8), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, nExp, qExp uint8) {
		n := 1 << (3 + nExp%7) // 8..512
		q := 1 << (qExp % 5)   // 1..16
		if q > n {
			q = n
		}
		p := 16
		if q > p {
			p = q
		}
		rng := xrand.New(seed)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64()%2048) - 1024
		}
		m := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(4, 2), Seed: seed})
		got := problems.ColumnsortBSP(m, keys, q)
		if !problems.IsSorted(got) {
			t.Fatalf("n=%d q=%d: not sorted", n, q)
		}
		// Multiset equality via counting.
		counts := map[int64]int{}
		for _, k := range keys {
			counts[k]++
		}
		for _, k := range got {
			counts[k]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("key %d count off by %d", k, c)
			}
		}
	})
}

// FuzzListRank: contraction ranking matches the sequential reference on any
// random list.
func FuzzListRank(f *testing.F) {
	f.Add(uint64(3), uint8(50))
	f.Add(uint64(11), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := 1 + int(nRaw)%120
		rng := xrand.New(seed)
		list := problems.RandomList(rng, n)
		want := list.SequentialRanks()
		m := bsp.New(bsp.Config{P: n, Cost: model.BSPmLinear(4, 2), Seed: seed})
		got := problems.ListRankContractBSP(m, list)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}
