# parbw — reproduction of "Modeling Parallel Bandwidth: Local vs. Global
# Restrictions" (SPAA 1997). Stdlib-only Go; everything runs offline.

GO ?= go

.PHONY: all build vet test race chaos chaos-cluster stream-chaos bench bench-baseline bench-scale bench-tables bench-smoke dag-verify experiments verify export serve fuzz fuzz-smoke clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (CI runs this).
race:
	$(GO) test -race ./...

# Deterministic fault-injection suite (CI runs this): the internal/fault
# framework, the hardened run store, and the service chaos tests — fixed
# plan seeds, so failures replay bit-identically. Race detector on, cache
# off, so injected faults actually re-fire every run.
chaos:
	$(GO) test -race -count=1 ./internal/fault ./internal/runstore ./internal/retry
	$(GO) test -race -count=1 -run 'Chaos|Breaker|Backoff|EncodeErrors|RetryAfter' ./internal/service

# Cluster chaos (CI runs this): a 3-node in-process cluster driven through
# seeded peer-failure plans — node down, slow peer, partitioned store, torn
# forwards, breaker heal — plus the ring and forwarding-client suites. Every
# sweep must complete (degraded, never failed) with results byte-identical
# to a single-node run, and every node's store must scrub clean.
chaos-cluster:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -count=1 -run 'Cluster' ./internal/service

# Stream chaos (CI runs this): the per-job event bus, the SSE surface of
# GET /v1/runs/{id}/events, and the cluster event back-channel — resume
# replays the exact missed suffix, a chaos-slowed subscriber loses events
# to explicit gap markers without ever slowing the executor, a 10k-cell
# sweep streams every terminal event exactly once, and fixed-seed cluster
# chaos streams byte-identically. Race detector on, cache off.
stream-chaos:
	$(GO) test -race -count=1 -run 'TestBus|TestSSE|TestClusterPartitionedExecution|TestClusterChaosStreamByteStable|TestClusterEventBackChannel' ./internal/service
	$(GO) test -race -count=1 -run 'TestReadSSE|TestFormatEvent|TestWatch' ./cmd/bandsim
	$(GO) test -race -count=1 -run 'Writer' ./internal/fault

# The fixed hot-path suite via the bench-regression harness: superstep
# merge per model, the static scheduling sweep, and quick Table 1 runs.
# Fails when any case regresses >20% ns/op against the checked-in baseline
# or any model fingerprint drifts (CI runs this with -benchtime 100ms).
bench:
	$(GO) run ./cmd/bandsim bench -baseline BENCH_baseline.json -out -

# Regenerate the checked-in baseline (run on a quiet machine).
bench-baseline:
	$(GO) run ./cmd/bandsim bench -out BENCH_baseline.json

# The p-scaling block only (columnar engine at p = 10k / 100k / 2^20),
# gated against the checked-in baseline, plus the million-processor heap
# ceiling test. Divide a case's ns/op by its p for the per-processor cost.
bench-scale:
	$(GO) run ./cmd/bandsim bench -run '^superstep/bsp/p' -baseline BENCH_baseline.json -out -
	$(GO) test -run TestScaleMillionProcessors -count=1 .

# One benchmark per paper table/figure; simulated model time reported as
# custom metrics (simtime-*, sep-x).
bench-tables:
	$(GO) test -bench=. -benchmem .

# Engine benchmark smoke: one iteration of each machine's superstep-merge
# benchmark, proving the bench harness compiles and runs (CI runs this).
bench-smoke:
	$(GO) test -run '^$$' -bench=Superstep -benchtime=1x -benchmem ./...

# DAG lowering conformance (CI runs this): the work IR and dagsched unit
# suites, the oracle's precedence-invariant tests, and a 200-seed
# precedence replay of the reworked dag family — all under the race
# detector, zero violations required.
dag-verify:
	$(GO) test -race -count=1 ./internal/work/...
	$(GO) test -race -count=1 -run 'Precedence|DAG|Dagsched|CheckIR' ./internal/oracle
	$(GO) run -race ./cmd/bandsim fuzz -seeds 200 -family dag

# Regenerate every paper table (EXPERIMENTS.md quotes these).
experiments:
	$(GO) run ./cmd/bandsim run all

# The reproduction checklist: PASS/FAIL per headline claim.
verify:
	$(GO) run ./cmd/bandsim verify

# CSVs for downstream plotting.
export:
	$(GO) run ./cmd/bandsim export results

# The HTTP run service (job queue + content-addressed run store).
serve:
	$(GO) run ./cmd/bandsim serve

# Seeded workload fuzzing: generated workloads through every invariant
# oracle, ddmin-shrinking any failure ('bandsim fuzz -h' for flags).
fuzz:
	$(GO) run ./cmd/bandsim fuzz -seeds 1000

# CI's fixed-seed smoke block: race detector on, zero violations required,
# and the -json output must be byte-identical across two runs.
fuzz-smoke:
	$(GO) run -race ./cmd/bandsim fuzz -seeds 200 -json > /tmp/parbw_fuzz1.json
	$(GO) run -race ./cmd/bandsim fuzz -seeds 200 -json > /tmp/parbw_fuzz2.json
	cmp /tmp/parbw_fuzz1.json /tmp/parbw_fuzz2.json

# The capture files the repo ships with.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf results
