# parbw — reproduction of "Modeling Parallel Bandwidth: Local vs. Global
# Restrictions" (SPAA 1997). Stdlib-only Go; everything runs offline.

GO ?= go

.PHONY: all build test bench experiments verify export clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure; simulated model time reported as
# custom metrics (simtime-*, sep-x).
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper table (EXPERIMENTS.md quotes these).
experiments:
	$(GO) run ./cmd/bandsim run all

# The reproduction checklist: PASS/FAIL per headline claim.
verify:
	$(GO) run ./cmd/bandsim verify

# CSVs for downstream plotting.
export:
	$(GO) run ./cmd/bandsim export results

# The capture files the repo ships with.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -rf results
