//go:build race

package parbw_test

// raceEnabled reports that this binary was built with the race detector,
// whose shadow memory makes absolute heap-size assertions meaningless.
const raceEnabled = true
