module parbw

go 1.22
