package harness

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"parbw/internal/result"
)

// ParamKind is the type of an experiment parameter.
type ParamKind int

const (
	KindInt ParamKind = iota
	KindFloat
	KindBool
)

// String returns the schema name of the kind ("int", "float", "bool").
func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("ParamKind(%d)", int(k))
}

// ParamSpec declares one typed parameter of an experiment: its name, kind,
// canonical default, numeric bounds (inclusive; ±Inf when unbounded), and a
// one-line doc string. Schemas are validated at registration time and drive
// central defaulting + validation in Resolve, the GET /v1/experiments
// discovery endpoint, and the EXPERIMENTS.md parameter tables.
//
// Integer parameters whose doc starts with "0 = " use zero as a sentinel
// meaning "use the experiment's built-in value or sweep"; any positive value
// overrides it (a built-in sweep collapses to that single point).
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Default string // canonical encoding (FormatInt / FormatFloat 'g' / FormatBool)
	Min     float64
	Max     float64
	Doc     string
}

// IntParam declares an int parameter, unbounded until Range is applied.
func IntParam(name string, def int, doc string) ParamSpec {
	return ParamSpec{Name: name, Kind: KindInt, Default: strconv.FormatInt(int64(def), 10),
		Min: math.Inf(-1), Max: math.Inf(1), Doc: doc}
}

// FloatParam declares a float parameter, unbounded until Range is applied.
func FloatParam(name string, def float64, doc string) ParamSpec {
	return ParamSpec{Name: name, Kind: KindFloat, Default: strconv.FormatFloat(def, 'g', -1, 64),
		Min: math.Inf(-1), Max: math.Inf(1), Doc: doc}
}

// BoolParam declares a bool parameter.
func BoolParam(name string, def bool, doc string) ParamSpec {
	return ParamSpec{Name: name, Kind: KindBool, Default: strconv.FormatBool(def),
		Min: math.Inf(-1), Max: math.Inf(1), Doc: doc}
}

// Range returns a copy of the spec with inclusive numeric bounds.
func (s ParamSpec) Range(min, max float64) ParamSpec {
	s.Min, s.Max = min, max
	return s
}

// quickSpec is the built-in parameter every experiment carries: the small
// sweeps used by tests and the -quick flag. register prepends it, so
// experiment declarations never list it themselves.
func quickSpec() ParamSpec {
	return BoolParam("quick", false, "smaller parameter sweeps (the -quick preset)")
}

// Presets are named parameter overlays selectable by flag or API. The -quick
// boolean of earlier revisions is now just the "quick" preset.
var Presets = map[string]map[string]string{
	"quick": {"quick": "true"},
}

// QuickParams returns a fresh copy of the quick preset — the common "small
// sweeps" configuration used by tests and tooling.
func QuickParams() map[string]string {
	out := make(map[string]string, len(Presets["quick"]))
	for k, v := range Presets["quick"] {
		out[k] = v
	}
	return out
}

// UnknownParamError reports a raw parameter name not declared by the
// experiment's schema, with did-you-mean suggestions from the declared names.
type UnknownParamError struct {
	Experiment  string
	Name        string
	Suggestions []string
}

func (e *UnknownParamError) Error() string {
	msg := fmt.Sprintf("experiment %q has no parameter %q", e.Experiment, e.Name)
	if len(e.Suggestions) > 0 {
		msg += fmt.Sprintf(" (did you mean %v?)", e.Suggestions)
	}
	return msg
}

// ParamValueError reports a declared parameter given an unparseable or
// out-of-range value.
type ParamValueError struct {
	Experiment string
	Name       string
	Value      string
	Reason     string
}

func (e *ParamValueError) Error() string {
	return fmt.Sprintf("experiment %q parameter %s=%q: %s", e.Experiment, e.Name, e.Value, e.Reason)
}

// Resolved is a fully validated parameter assignment: every declared
// parameter mapped to its canonical string encoding. Equal assignments have
// equal canonical strings regardless of the spelling ("0.250" vs "0.25") or
// map order of the raw input — the property the content-addressed run store
// keys on.
type Resolved map[string]string

// ResultParams folds the assignment and seed into the result.Params that
// identifies the run.
func (r Resolved) ResultParams(seed uint64) result.Params {
	return result.NewParams(seed, r)
}

// Canonical renders the assignment as "k=v,k=v" in name order.
func (r Resolved) Canonical() string {
	return result.NewParams(0, r).Canonical()
}

// Resolve validates raw overrides against the experiment's schema and
// returns the full canonical assignment (defaults applied, values
// normalized). Unknown names yield *UnknownParamError with suggestions;
// malformed or out-of-range values yield *ParamValueError.
func (e Experiment) Resolve(raw map[string]string) (Resolved, error) {
	out := make(Resolved, len(e.Params))
	for _, s := range e.Params {
		out[s.Name] = s.Default
	}
	// Deterministic error selection: report the alphabetically first bad name.
	names := make([]string, 0, len(raw))
	for name := range raw {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec, ok := e.specIdx[name]
		if !ok {
			declared := make([]string, 0, len(e.Params))
			for _, s := range e.Params {
				declared = append(declared, s.Name)
			}
			return nil, &UnknownParamError{
				Experiment:  e.ID,
				Name:        name,
				Suggestions: SuggestFrom(name, declared),
			}
		}
		canon, err := canonicalize(spec, raw[name])
		if err != nil {
			return nil, &ParamValueError{Experiment: e.ID, Name: name, Value: raw[name], Reason: err.Error()}
		}
		out[name] = canon
	}
	return out, nil
}

// canonicalize parses v per the spec's kind, checks bounds, and returns the
// canonical encoding.
func canonicalize(spec ParamSpec, v string) (string, error) {
	switch spec.Kind {
	case KindInt:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return "", fmt.Errorf("not an integer")
		}
		if err := checkRange(spec, float64(n)); err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	case KindFloat:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return "", fmt.Errorf("not a number")
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("must be finite")
		}
		if err := checkRange(spec, f); err != nil {
			return "", err
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case KindBool:
		b, err := strconv.ParseBool(v)
		if err != nil {
			return "", fmt.Errorf("not a boolean")
		}
		return strconv.FormatBool(b), nil
	}
	return "", fmt.Errorf("unknown kind %v", spec.Kind)
}

func checkRange(spec ParamSpec, f float64) error {
	if f < spec.Min || f > spec.Max {
		return fmt.Errorf("out of range [%s, %s]", boundStr(spec.Min), boundStr(spec.Max))
	}
	return nil
}

func boundStr(b float64) string {
	if math.IsInf(b, -1) {
		return "-inf"
	}
	if math.IsInf(b, 1) {
		return "+inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// validateSpecs panics on a malformed schema at registration time: duplicate
// or empty names, a reserved name colliding with the built-in quick param, or
// a default that fails its own validation.
func validateSpecs(id string, specs []ParamSpec) map[string]ParamSpec {
	idx := make(map[string]ParamSpec, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			panic(fmt.Sprintf("harness: experiment %q declares a param with an empty name", id))
		}
		if _, dup := idx[s.Name]; dup {
			panic(fmt.Sprintf("harness: experiment %q declares duplicate param %q", id, s.Name))
		}
		if _, err := canonicalize(s, s.Default); err != nil {
			panic(fmt.Sprintf("harness: experiment %q param %q default %q invalid: %v", id, s.Name, s.Default, err))
		}
		idx[s.Name] = s
	}
	return idx
}
