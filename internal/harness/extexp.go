package harness

import (
	"fmt"

	"parbw/internal/async"
	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/dynamic"
	"parbw/internal/emulate"
	"parbw/internal/model"
	"parbw/internal/netsim"
	"parbw/internal/problems"
	"parbw/internal/sched"
	"parbw/internal/tablefmt"
	"parbw/internal/work"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "sched/qsm-static",
		Title:  "Unbalanced-Send on the QSM(m) (the paper's reader exercise)",
		Source: "Section 6 intro: \"the same techniques ... for the QSM(m)\"",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (64 full, 32 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("blk", 64, "per-processor address block size").Range(1, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runSchedQSM,
	})
	register(Experiment{
		ID:     "emul/pram-map",
		Title:  "Generic EREW-PRAM → QSM(m) mapping, O(n/m + t + w/m)",
		Source: "Section 4 observation",
		Params: []ParamSpec{
			IntParam("n", 0, "0 = built-in input size (512 full, 128 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in bandwidth sweep; >0 runs one m").Range(0, 1<<16),
		},
		run: runPRAMMap,
	})
	register(Experiment{
		ID:     "dyn/phase",
		Title:  "Dynamic stability phase diagram over (α, β)",
		Source: "Theorems 6.5 and 6.7 combined",
		Params: []ParamSpec{
			IntParam("p", 16, "processors").Range(2, 1<<16),
			IntParam("g", 8, "per-processor gap of the BSP(g)").Range(1, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("windows", 0, "0 = built-in horizon (100 full, 30 quick)").Range(0, 1<<20),
		},
		run: runDynPhase,
	})
	register(Experiment{
		ID:     "coll/pipeline",
		Title:  "Pipelined k-item broadcast and gather",
		Source: "collective machinery behind the Table 1 primitives",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("k", 0, "0 = built-in sweep over item counts; >0 runs one k").Range(0, 1<<16),
			IntParam("m", 32, "aggregate bandwidth of the BSP(m) variant").Range(1, 1<<16),
			IntParam("g", 8, "per-processor gap of the BSP(g) variant").Range(1, 1<<16),
		},
		run: runPipeline,
	})
}

func runSchedQSM(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, blk := rec.IntOr("p", 64, 32), rec.IntOr("m", 16, 8), rec.Int("blk")
	eps := rec.Float("eps")
	t := tablefmt.New("QSM(m) write scheduling: Unbalanced-Send vs naive (exp penalty)",
		"skew", "n", "x̄", "scheduled", "naive", "naive/sched", "maxslot", "m")
	for _, skew := range []float64{0, 0.8, 1.4} {
		rng := xrand.New(cfg.Seed)
		plan := qsmZipfPlan(rng, p, p*30, blk, skew)
		ms := newQSMmMem(p, p*blk, expQSMm(mm), cfg.Seed)
		rs := sched.UnbalancedSendQSM(ms, plan, sched.Options{Eps: eps})
		mn := newQSMmMem(p, p*blk, expQSMm(mm), cfg.Seed)
		rn := sched.NaiveSendQSM(mn, plan)
		t.Row(fmt.Sprintf("zipf %.1f", skew), rs.N, rs.XBar, rs.Time, rn.Time,
			rn.Time/rs.Time, rs.Phase.MaxSlot, mm)
	}
	rec.Emit(t)
}

// qsmZipfPlan mirrors the test generator: disjoint per-processor address
// blocks with Zipf-skewed counts.
func qsmZipfPlan(rng *xrand.Source, p, n, blk int, skew float64) sched.QSMPlan {
	plan := make(sched.QSMPlan, p)
	z := xrand.NewZipf(rng, p, skew)
	count := make([]int, p)
	for k := 0; k < n; k++ {
		i := z.Draw()
		if count[i] >= blk {
			continue
		}
		plan[i] = append(plan[i], sched.QSMWrite{Addr: i*blk + count[i], Val: int64(k)})
		count[i]++
	}
	return plan
}

func expQSMm(mm int) (c modelCost) {
	c = qsmmExpCost(mm)
	return c
}

func runPRAMMap(rec *Recorder) {
	cfg := rec.Cfg
	n := rec.IntOr("n", 512, 128)
	t := tablefmt.New("prefix-doubling summation (t=2·lg n steps, w≈2n·lg n) mapped to the QSM(m)",
		"n", "m", "QSM time", "t + w/m", "ratio", "overloads")
	for _, mm := range rec.IntSweep("m", []int{2, 4, 8, 16, 32}, []int{2, 8}) {
		prog, final := emulate.PrefixDoublingSum(n)
		m := newQSMmMem(64, 2*n, qsmmLinCost(mm), cfg.Seed)
		for i := 0; i < n; i++ {
			m.Store(i, 1)
		}
		st := emulate.RunPRAMOnQSM(m, prog)
		if m.Load(final()) != int64(n) {
			panic("harness: mapped prefix sum wrong")
		}
		pred := float64(st.Steps) + float64(st.Work)/float64(mm)
		t.Row(n, mm, st.QSMTime, pred, st.QSMTime/pred, st.Overload)
	}
	rec.Emit(t)
}

func runDynPhase(rec *Recorder) {
	cfg := rec.Cfg
	p, g, l := rec.Int("p"), rec.Int("g"), rec.Int("l")
	mm := max(p/g, 1)
	windows := rec.IntOr("windows", 100, 30)
	t := tablefmt.New(fmt.Sprintf("stability phase diagram (p=%d, g=%d, m=%d, uniform adversary; S=stable, U=unstable)", p, g, mm),
		"α \\ β", "0.125", "0.25", "0.5", "1.0")
	for _, alpha := range []float64{0.25, 0.5, 1.0, 2.0} {
		row := []any{fmt.Sprintf("%.2f", alpha)}
		for _, beta := range []float64{0.125, 0.25, 0.5, 1.0} {
			if beta > alpha {
				row = append(row, "-")
				continue
			}
			lmt := dynamic.Limits{W: 32, Alpha: alpha, Beta: beta}
			advG := dynamic.NewUniformAdversary(p, lmt, cfg.Seed)
			mg := newBSPg(p, g, l, cfg.Seed)
			rg := dynamic.RunBSPgInterval(mg, advG, lmt, windows)
			advM := dynamic.NewUniformAdversary(p, lmt, cfg.Seed)
			mb := newBSPmExp(p, mm, l, cfg.Seed)
			rm := dynamic.RunAlgorithmB(mb, advM, lmt, windows, 0.25)
			cell := verdictChar(rg.LooksStable()) + "/" + verdictChar(rm.LooksStable())
			row = append(row, cell+" (g/m)")
		}
		t.Row(row...)
	}
	rec.Emit(t)

	t2 := tablefmt.New("single-target flows across the β axis (the Theorem 6.5 witness)",
		"β", "BSP(g) verdict", "BSP(m) verdict")
	for _, beta := range []float64{0.0625, 0.125, 0.25, 0.5, 1.0} {
		lmt := dynamic.Limits{W: 32, Alpha: beta, Beta: beta}
		adv := dynamic.SingleTargetAdversary{L: lmt}
		mg := newBSPg(p, g, l, cfg.Seed)
		rg := dynamic.RunBSPgInterval(mg, adv, lmt, windows)
		mb := newBSPmExp(p, mm, l, cfg.Seed)
		rm := dynamic.RunAlgorithmB(mb, adv, lmt, windows, 0.25)
		t2.Row(beta, stableStr(rg.LooksStable()), stableStr(rm.LooksStable()))
	}
	rec.Emit(t2)
}

func verdictChar(stable bool) string {
	if stable {
		return "S"
	}
	return "U"
}

func runPipeline(rec *Recorder) {
	cfg := rec.Cfg
	p, l := rec.IntOr("p", 256, 64), rec.Int("l")
	mm, g := rec.Int("m"), rec.Int("g")
	t := tablefmt.New("k-item pipelined broadcast: pipelined vs k sequential broadcasts",
		"model", "k", "pipelined", "sequential", "speedup")
	for _, k := range rec.IntSweep("k", []int{8, 32, 128}, []int{8}) {
		for _, global := range []bool{false, true} {
			vec := make([]int64, k)
			var pipe, seq float64
			var name string
			if global {
				name = fmt.Sprintf("BSP(m=%d)", mm)
				mp := newBSPmL(p, mm, l, cfg.Seed)
				collectiveBroadcastVec(mp, vec)
				pipe = mp.Time()
				msq := newBSPmL(p, mm, l, cfg.Seed)
				for j := 0; j < k; j++ {
					collectiveBroadcast(msq, int64(j))
				}
				seq = msq.Time()
			} else {
				name = fmt.Sprintf("BSP(g=%d)", g)
				mp := newBSPg(p, g, l, cfg.Seed)
				collectiveBroadcastVec(mp, vec)
				pipe = mp.Time()
				msq := newBSPg(p, g, l, cfg.Seed)
				for j := 0; j < k; j++ {
					collectiveBroadcast(msq, int64(j))
				}
				seq = msq.Time()
			}
			t.Row(name, k, pipe, seq, seq/pipe)
		}
	}
	rec.Emit(t)
}

// modelCost aliases keep extexp.go's helper signatures short.
type modelCost = model.Cost

func qsmmExpCost(mm int) model.Cost { return model.QSMm(mm) }

func qsmmLinCost(mm int) model.Cost {
	c := model.QSMm(mm)
	c.Penalty = model.LinearPenalty
	return c
}

func collectiveBroadcastVec(m *bsp.Machine, vec []int64) { collective.BroadcastVecBSP(m, 0, vec) }
func collectiveBroadcast(m *bsp.Machine, v int64)        { collective.BroadcastBSP(m, 0, v) }

func init() {
	register(Experiment{
		ID:     "ablation/sort",
		Title:  "Sorting: splitter-free columnsort vs sample sort across n/p",
		Source: "DESIGN.md ablation; Table 1 row 5 machinery",
		Params: []ParamSpec{
			IntParam("n", 0, "0 = built-in sweeps over key counts; >0 runs one n in both regimes").Range(0, 1<<20),
			IntParam("p", 32, "processors of the n ≫ p regime").Range(2, 1<<16),
			IntParam("m", 8, "aggregate bandwidth of the BSP(m)").Range(1, 1<<16),
			IntParam("l", 2, "latency/periodicity floor L").Range(0, 1<<16),
		},
		run: runSortAblation,
	})
	register(Experiment{
		ID:     "sched/template",
		Title:  "Template schedules: enforced separation between a processor's sends",
		Source: "Section 6.1 closing remark (sending-pattern templates)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (128 full, 32 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (32 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runTemplate,
	})
}

func runSortAblation(rec *Recorder) {
	cfg := rec.Cfg
	// depth1Q returns the largest power-of-two sorter count admitting a
	// depth-1 columnsort (the favourable shape).
	depth1Q := func(n, p int) int {
		q := 1
		for q*2 <= p && q*2 <= n && n/(q*2) >= 2*(q*2-1)*(q*2-1) {
			q *= 2
		}
		return q
	}

	// Regime 1: n ≫ p. Sample sort's p² splitter traffic amortizes and its
	// single routing round beats columnsort's 8-step schedule.
	p, mm, l := rec.Int("p"), rec.Int("m"), rec.Int("l")
	t := tablefmt.New(fmt.Sprintf("n ≫ p regime: columnsort vs sample sort on BSP(m=%d), p=%d", mm, p),
		"n", "n/p", "columnsort", "sample sort", "winner")
	for _, n := range rec.IntSweep("n", []int{1024, 4096, 16384}, []int{256, 1024}) {
		rng := xrand.New(cfg.Seed)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 1000003)
		}
		q := depth1Q(n, p)
		mc := newBSPmL(p, mm, l, cfg.Seed)
		problemsColumnsort(mc, keys, q)
		ms := newBSPmL(p, mm, l, cfg.Seed)
		problemsSampleSort(ms, keys)
		t.Row(n, n/p, mc.Time(), ms.Time(), sortWinner(mc.Time(), ms.Time()))
	}
	rec.Emit(t)

	// Regime 2: n = p (Table 1). Every processor holds ONE key, so sample
	// sort's splitter broadcast moves p·(p−1) words — Θ(p²/m) — while
	// splitter-free columnsort stays near n/m. This is why the paper's
	// sorting algorithm is columnsort.
	t2 := tablefmt.New(fmt.Sprintf("n = p regime (Table 1): columnsort vs sample sort on BSP(m=%d)", mm),
		"n = p", "columnsort", "sample sort", "samplesort/columnsort", "winner")
	for _, n := range rec.IntSweep("n", []int{1024, 4096}, []int{512}) {
		rng := xrand.New(cfg.Seed)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 1000003)
		}
		q := depth1Q(n, n)
		mc := newBSPmL(n, mm, l, cfg.Seed)
		problemsColumnsort(mc, keys, q)
		ms := newBSPmL(n, mm, l, cfg.Seed)
		problemsSampleSort(ms, keys)
		t2.Row(n, mc.Time(), ms.Time(), ms.Time()/mc.Time(), sortWinner(mc.Time(), ms.Time()))
	}
	rec.Emit(t2)
}

func sortWinner(col, smp float64) string {
	if smp < col {
		return "sample sort"
	}
	return "columnsort"
}

func runTemplate(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 128, 32), rec.IntOr("m", 32, 8), rec.Int("l")
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	plan := sched.ZipfPlan(rng, p, p*20, 1.0)
	t := tablefmt.New("Unbalanced-Send with per-processor separation sep (zipf workload)",
		"sep", "period", "measured", "offline opt", "maxslot", "overloads")
	for _, sep := range []int{0, 1, 2, 4} {
		m := newBSPmExp(p, mm, l, cfg.Seed)
		r := sched.TemplateSend(m, plan, sep, sched.Options{Eps: eps})
		t.Row(sep, r.Period, r.Time, r.OptimalOffline(mm, l), r.Send.MaxSlot, r.Send.Overload)
	}
	rec.Emit(t)
}

func problemsColumnsort(m *bsp.Machine, keys []int64, q int) { problems.ColumnsortBSP(m, keys, q) }
func problemsSampleSort(m *bsp.Machine, keys []int64)        { problems.SampleSortBSP(m, keys, 8) }

func init() {
	register(Experiment{
		ID:     "validate/channels",
		Title:  "Grounding f^u: schedules on a concrete m-channel contention network",
		Source: "Section 2 penalty discussion + Section 3 multiple-channel comparison",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in source count (64 full, 32 quick)").Range(0, 1<<20),
			IntParam("per", 0, "0 = built-in per-source load (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("m", 0, "0 = built-in channel sweep; >0 runs one m").Range(0, 1<<16),
		},
		run: runChannels,
	})
}

func runChannels(rec *Recorder) {
	cfg := rec.Cfg
	p := rec.IntOr("p", 64, 32)
	per := rec.IntOr("per", 16, 8)
	x := make([]int, p)
	for i := range x {
		x[i] = per
	}
	n := p * per
	t := tablefmt.New("m-channel slotted-ALOHA network: paced vs burst vs backoff makespan (uniform x_i)",
		"m", "n", "paced (ε=4)", "burst", "burst+backoff", "burst/paced", "n/(m/e) ideal")
	// The network stream must differ from the schedule stream below while all
	// three runs share one network seed so makespans stay comparable.
	netSeed := xrand.Derive(cfg.Seed, "net/channels").Uint64()
	for _, mm := range rec.IntSweep("m", []int{4, 8, 16}, []int{8}) {
		rng := xrand.New(cfg.Seed)
		eps := 4.0 // target load 0.2·m < ALOHA capacity m/e
		paced := netsim.Run(netsim.Config{Sources: p, Channels: mm, Seed: netSeed},
			netsim.UnbalancedSchedule(rng, x, mm, eps))
		burst := netsim.Run(netsim.Config{Sources: p, Channels: mm, Seed: netSeed},
			netsim.NaiveSchedule(x))
		backoff := netsim.RunBackoff(netsim.Config{Sources: p, Channels: mm, Seed: netSeed},
			netsim.NaiveSchedule(x), 10)
		ideal := float64(n) / (float64(mm) / 2.718281828)
		t.Row(mm, n, paced.Makespan, burst.Makespan, backoff.Makespan,
			float64(burst.Makespan)/float64(paced.Makespan), ideal)
	}
	rec.Emit(t)

	t2 := tablefmt.New("throughput collapse: expected deliveries/step vs contenders (m=8)",
		"contenders k", "k/m", "E[deliveries] k(1−1/m)^{k−1}", "f^u charge e^{k/m−1}")
	for _, k := range []int{2, 8, 16, 32, 64} {
		t2.Row(k, float64(k)/8, netsim.ExpectedThroughput(k, 8), model.ExpPenalty(k, 8))
	}
	rec.Emit(t2)
}

func init() {
	register(Experiment{
		ID:     "ablation/combinetree",
		Title:  "Combine-tree fan-in for the τ term: binary vs L-ary",
		Source: "DESIGN.md ablation; τ = O(p/m + L + L·lg m/lg L)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (4096 full, 512 quick)").Range(0, 1<<20),
		},
		run: runCombineTree,
	})
	register(Experiment{
		ID:     "ablation/wraparound",
		Title:  "Cyclic (wraparound) vs consecutive slot assignment",
		Source: "DESIGN.md ablation; Theorems 6.2 vs 6.3",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (32 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runWraparound,
	})
}

func runCombineTree(rec *Recorder) {
	cfg := rec.Cfg
	p := rec.IntOr("p", 4096, 512)
	t := tablefmt.New("reduction on BSP(m): τ vs tree fan-in d (L-ary is the paper's choice)",
		"m", "L", "d=2", "d=4", "d=L", "L-ary speedup vs binary")
	for _, ml := range [][2]int{{64, 16}, {256, 16}, {64, 64}} {
		mm, l := ml[0], ml[1]
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = 1
		}
		run := func(d int) float64 {
			m := newBSPmL(p, mm, l, cfg.Seed)
			if got := collective.ReduceBSPDegree(m, vals, collective.Sum, d); got != int64(p) {
				panic("harness: reduce wrong")
			}
			return m.Time()
		}
		d2, d4, dl := run(2), run(4), run(l)
		t.Row(mm, l, d2, d4, dl, d2/dl)
	}
	rec.Emit(t)
}

func runWraparound(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 256, 64), rec.IntOr("m", 32, 8), rec.Int("l")
	eps := rec.Float("eps")
	t := tablefmt.New("wraparound (Thm 6.2) vs consecutive (Thm 6.3) slot assignment",
		"workload", "wraparound time", "consecutive time", "consec/wrap", "wrap maxslot", "consec maxslot")
	rng := xrand.New(cfg.Seed)
	for _, name := range workloadOrder {
		plan := workloads(rng, p, 16)[name]
		mw := newBSPmExp(p, mm, l, cfg.Seed)
		rw := sched.UnbalancedSend(mw, plan, sched.Options{Eps: eps})
		mc := newBSPmExp(p, mm, l, cfg.Seed)
		rc := sched.UnbalancedConsecutiveSend(mc, plan, sched.Options{Eps: eps})
		t.Row(name, rw.Time, rc.Time, rc.Time/rw.Time, rw.Send.MaxSlot, rc.Send.MaxSlot)
	}
	rec.Emit(t)
}

func init() {
	register(Experiment{
		ID:     "async/backpressure",
		Title:  "Asynchronous BSP(m): flow control replaces explicit scheduling",
		Source: "Section 1 remark (\"many of our results extend to more asynchronous models\")",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (128 full, 32 quick)").Range(0, work.MaxP),
			IntParam("m", 16, "aggregate bandwidth of the BSP(m)").Range(1, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("per", 0, "0 = built-in per-processor load (32 full, 8 quick)").Range(0, 1<<16),
		},
		run: runAsync,
	})
}

func runAsync(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 128, 32), rec.Int("m"), rec.Int("l")
	per := rec.IntOr("per", 32, 8)
	t := tablefmt.New("the same oblivious burst on three machines (uniform, per-proc load)",
		"machine", "completion", "x-of-offline-bound")
	n := p * per

	// 1. Bulk-synchronous BSP(m) with exponential penalty, naive injection.
	b := work.NewBuilder(p, mm, l).Family("async/burst").Seed(cfg.Seed)
	b.Step()
	for i := 0; i < p; i++ {
		for k := 0; k < per; k++ {
			b.Send(i, (i+1+k)%p, 1)
		}
	}
	ir := b.MustIR()
	mb := newBSPmExp(p, mm, l, cfg.Seed)
	rNaive := sched.NaiveSendIR(mb, ir, 0)
	opt := rNaive.OptimalOffline(mm, l)
	t.Row("bulk-sync naive (f^u)", rNaive.Time, rNaive.Time/opt)

	// 2. Bulk-synchronous BSP(m) with Unbalanced-Send.
	ms := newBSPmExp(p, mm, l, cfg.Seed)
	rSched := sched.UnbalancedSendIR(ms, ir, 0, sched.Options{Eps: 0.25, KnownN: n})
	t.Row("bulk-sync Unbalanced-Send", rSched.Time, rSched.Time/opt)

	// 3. Asynchronous machine with token-bucket backpressure, naive
	// injection: the flow control self-schedules.
	ma := async.New(async.Config{P: p, M: mm, Latency: float64(l), Buffer: n})
	done := ma.Run(func(pr *async.Proc) {
		for k := 0; k < per; k++ {
			pr.Send((pr.ID()+1+k)%p, int64(k))
		}
		for k := 0; k < per; k++ {
			pr.Recv()
		}
	})
	t.Row("async naive (backpressure)", done, done/opt)
	rec.Emit(t)
}
