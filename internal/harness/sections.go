package harness

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/emulate"
	"parbw/internal/lower"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/problems"
	"parbw/internal/qsm"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "lb/broadcast",
		Title:  "Broadcast lower bound vs the ternary non-receipt algorithm",
		Source: "Theorem 4.1 and the Section 4.2 algorithm",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in sweep over machine sizes (ternary table)").Range(0, 1<<20),
			IntParam("p2", 0, "0 = built-in size of the tree-broadcast table (4096 full, 256 quick)").Range(0, 1<<20),
		},
		run: runBroadcastLB,
	})
	register(Experiment{
		ID:     "lb/hrelation-crcw",
		Title:  "Realizing h-relations on the CRCW PRAM in O(h)",
		Source: "Section 4.1 (lower-bound conversion machinery)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (64 full, 16 quick)").Range(0, 1<<20),
			IntParam("h", 0, "0 = built-in sweep over relation degrees; >0 runs one h").Range(0, 1<<16),
		},
		run: runHRelationCRCW,
	})
	register(Experiment{
		ID:     "sim/crcw-pramm",
		Title:  "Simulating a CRCW PRAM(m) read step on the QSM(m)",
		Source: "Theorem 5.1",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (1024 full, 128 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in bandwidth sweep; >0 runs one m").Range(0, 1<<16),
			IntParam("cells", 64, "shared PRAM(m) cells simulated").Range(1, 1<<16),
		},
		run: runCRCWSim,
	})
	register(Experiment{
		ID:     "sep/leader",
		Title:  "Leader recognition: concurrent vs exclusive read",
		Source: "Theorem 5.2 / Lemma 5.3",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in sweep over machine sizes; >0 runs one p").Range(0, 1<<20),
			IntParam("m", 4, "shared-memory cells / aggregate bandwidth m").Range(1, 1<<16),
		},
		run: runLeader,
	})
	register(Experiment{
		ID:     "emul/group",
		Title:  "Group emulation of BSP(g) supersteps on the BSP(m)",
		Source: "Section 4 (grouping observation)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("l", 8, "latency/periodicity floor L").Range(0, 1<<16),
		},
		run: runGroupEmul,
	})
}

func newQSMmMem(p, mem int, c model.Cost, seed uint64) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: c, Seed: seed})
}

func runBroadcastLB(rec *Recorder) {
	cfg := rec.Cfg
	t := tablefmt.New("single-bit broadcast on BSP(g): ternary algorithm vs Theorem 4.1 lower bound",
		"p", "g", "L", "ternary measured", "alg predicted g·⌈log3 p⌉", "Thm4.1 LB", "measured/LB")
	ps := rec.IntSweep("p", []int{81, 729, 6561}, []int{27, 243})
	for _, p := range ps {
		for _, gl := range [][2]int{{8, 8}, {16, 8}, {32, 4}} {
			g, l := gl[0], gl[1]
			m := newBSPg(p, g, l, cfg.Seed)
			collective.BroadcastTernaryBSPg(m, 1)
			lb := lower.BroadcastLBBSPg(p, g, l)
			pred := lower.BroadcastTernaryBSPg(p, g)
			t.Row(p, g, l, m.Time(), pred, lb, m.Time()/lb)
		}
	}
	rec.Emit(t)

	t2 := tablefmt.New("tree broadcast vs Theorem 4.1 lower bound across L/g",
		"p", "g", "L", "tree measured", "Thm4.1 LB", "measured/LB")
	p := rec.IntOr("p2", 4096, 256)
	for _, gl := range [][2]int{{1, 2}, {2, 8}, {4, 32}, {8, 128}} {
		g, l := gl[0], gl[1]
		m := newBSPg(p, g, l, cfg.Seed)
		collective.BroadcastBSP(m, 0, 1)
		lb := lower.BroadcastLBBSPg(p, g, l)
		t2.Row(p, g, l, m.Time(), lb, m.Time()/lb)
	}
	rec.Emit(t2)
}

func runHRelationCRCW(rec *Recorder) {
	cfg := rec.Cfg
	p := rec.IntOr("p", 64, 16)
	t := tablefmt.New("h-relation realization on Arbitrary-CRCW PRAM (p=64)",
		"h (degree)", "rounds", "PRAM steps", "steps/h")
	for _, h := range rec.IntSweep("h", []int{1, 2, 4, 8, 16, 32, 63}, []int{1, 4, 15}) {
		// Each processor sends h messages to cyclically shifted targets, so
		// every processor also receives exactly h: degree = h exactly.
		plan := make([][]problems.HRelationMsg, p)
		for i := range plan {
			for j := 0; j < h && j < p; j++ {
				plan[i] = append(plan[i], problems.HRelationMsg{Dst: (i + j + 1) % p, Val: int64(i*100 + j)})
			}
		}
		deg := problems.HRelationDegree(plan)
		m := pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.CRCWArbitrary, Seed: cfg.Seed})
		_, rounds := problems.HRelationCRCW(m, plan)
		t.Row(deg, rounds, m.Time(), m.Time()/float64(deg))
	}
	rec.Emit(t)

	// The two §4.1 routes: contention resolution O(h) vs sort-based
	// O(lg p · lg(x̄p)). The crossover is the reason the paper gives both.
	t2 := tablefmt.New("§4.1 routes compared: contention resolution vs sort-based (p=16, single hot target)",
		"h", "contention steps", "radix-sort steps", "winner")
	for _, h := range rec.IntSweep("h", []int{1, 4, 16, 64}, []int{1, 16}) {
		plan := make([][]problems.HRelationMsg, 16)
		for i := range plan {
			for j := 0; j < h; j++ {
				plan[i] = append(plan[i], problems.HRelationMsg{Dst: 0, Val: int64(i*100 + j)})
			}
		}
		mc := pram.New(pram.Config{P: 16, Mem: 32, Mode: pram.CRCWArbitrary, Seed: cfg.Seed})
		problems.HRelationCRCW(mc, plan)
		ms := pram.New(pram.Config{P: 16 * h, Mem: 48 * h, Mode: pram.CRCWArbitrary, Seed: cfg.Seed})
		problems.HRelationRadixCRCW(ms, plan)
		winner := "contention"
		if ms.Time() < mc.Time() {
			winner = "radix sort"
		}
		t2.Row(h, mc.Time(), ms.Time(), winner)
	}
	rec.Emit(t2)
}

func runCRCWSim(rec *Recorder) {
	cfg := rec.Cfg
	p := rec.IntOr("p", 1024, 128)
	cells := rec.Int("cells")
	t := tablefmt.New("one CRCW PRAM(m) read step on the QSM(m): measured vs Θ(p/m)",
		"p", "m", "pattern", "measured", "p/m", "ratio")
	for _, mm := range rec.IntSweep("m", []int{2, 4, 8, 16, 32}, []int{2, 8}) {
		for _, pattern := range []string{"random", "all-same", "distinct"} {
			pmKind := emulate.PRAMm{Base: p, MCells: cells}
			mem := pmKind.Base + cells + 2*p + p + 8
			c := model.QSMm(mm)
			c.Penalty = model.LinearPenalty
			m := newQSMmMem(p, mem, c, cfg.Seed)
			rng := xrand.Derive(cfg.Seed, fmt.Sprintf("crcw-sim/m=%d", mm))
			for a := 0; a < cells; a++ {
				m.Store(pmKind.Base+a, int64(a*3+1))
			}
			addr := make([]int, p)
			for i := range addr {
				switch pattern {
				case "random":
					addr[i] = rng.Intn(cells)
				case "all-same":
					addr[i] = 7
				case "distinct":
					addr[i] = i % cells
				}
			}
			pmKind.SimulateCRCWRead(m, addr)
			pred := lower.SimSlowdownCRCWPRAMm(p, mm)
			t.Row(p, mm, pattern, m.Time(), pred, m.Time()/pred)
		}
	}
	rec.Emit(t)
}

func runLeader(rec *Recorder) {
	cfg := rec.Cfg
	mm := rec.Int("m")
	t := tablefmt.New(fmt.Sprintf("leader recognition, CR PRAM(m) vs ER PRAM(m) vs QSM(m) (m=%d, w=64)", mm),
		"p", "CR steps", "ER steps", "QSM(m) time", "ER/CR", "paper separation Ω(p·lg m/(m·lg p))")
	for _, p := range rec.IntSweep("p", []int{64, 256, 1024, 4096}, []int{64, 256}) {
		leader := p / 3
		cr := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.CRCWArbitrary,
			ROM: problems.LeaderInput(p, leader), Seed: cfg.Seed})
		problems.LeaderCR(cr)
		er := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.EREW,
			ROM: problems.LeaderInput(p, leader), Seed: cfg.Seed})
		problems.LeaderER(er, mm)
		qm := newQSMmMem(p, 3*p, qsmmLinCost(mm), cfg.Seed)
		problems.LeaderQSM(qm, 2*p, leader)
		sep := lower.SeparationERCR(p, mm)
		t.Row(p, cr.Time(), er.Time(), qm.Time(), er.Time()/cr.Time(), sep)
	}
	rec.Emit(t)
}

func runGroupEmul(rec *Recorder) {
	cfg := rec.Cfg
	p, l := rec.IntOr("p", 256, 64), rec.Int("l")
	t := tablefmt.New("h-relation superstep: BSP(g) vs group-emulated BSP(m), m=p/g",
		"g", "h", "BSP(g) time", "BSP(m) emulated", "max slot load", "m")
	for _, g := range []int{2, 4, 8, 16} {
		for _, h := range []int{1, 4, 16} {
			mBW := p / g
			lg := newBSPg(p, g, l, cfg.Seed)
			lg.Superstep(func(c *bsp.Ctx) {
				for k := 0; k < h; k++ {
					c.Send((c.ID()+k+1)%p, 0, 1)
				}
			})
			gm := newBSPmExp(p, mBW, l, cfg.Seed)
			st := emulate.RunGroupedBSP(gm, g, func(c *bsp.Ctx, send func(int, bsp.Msg)) {
				for k := 0; k < h; k++ {
					send((c.ID()+k+1)%p, bsp.Msg{A: 1})
				}
			})
			t.Row(g, h, lg.Time(), gm.Time(), st.MaxSlot, mBW)
		}
	}
	rec.Emit(t)
}
