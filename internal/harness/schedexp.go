package harness

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/lower"
	"parbw/internal/model"
	"parbw/internal/sched"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "sched/static",
		Title:  "Unbalanced-Send on skewed h-relations",
		Source: "Theorem 6.2 and Proposition 6.1",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (64 full, 16 quick)").Range(0, 1<<16),
			IntParam("l", 8, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε of Theorem 6.2").Range(0.001, 8),
		},
		run: runSchedStatic,
	})
	register(Experiment{
		ID:     "sched/consecutive",
		Title:  "Unbalanced-Consecutive-Send",
		Source: "Theorem 6.3",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (32 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runSchedConsecutive,
	})
	register(Experiment{
		ID:     "sched/granular",
		Title:  "Unbalanced-Granular-Send",
		Source: "Theorem 6.4",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (512 full, 128 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("c", 4, "period constant c of the granular schedule").Range(1, 64),
		},
		run: runSchedGranular,
	})
	register(Experiment{
		ID:     "sched/flits",
		Title:  "Long messages (consecutive flits) and per-message overhead o",
		Source: "Section 6.1 (final remarks)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (128 full, 32 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (32 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runSchedFlits,
	})
	register(Experiment{
		ID:     "sched/selfsched",
		Title:  "Self-scheduling BSP(m) realized on the BSP(m)",
		Source: "Section 2 (simplified cost metric) + Theorem 6.2",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (64 full, 16 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε / (1+ε) ratio target").Range(0.001, 8),
		},
		run: runSelfSched,
	})
	register(Experiment{
		ID:     "ablation/penalty",
		Title:  "Value of scheduling under linear vs exponential penalty",
		Source: "DESIGN.md ablation; Section 2 penalty discussion",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			FloatParam("eps", 0.25, "schedule slack ε").Range(0.001, 8),
		},
		run: runPenaltyAblation,
	})
	register(Experiment{
		ID:     "ablation/eps",
		Title:  "ε sweep: overload probability vs schedule slack",
		Source: "Theorem 6.2's Chernoff analysis",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (256 full, 64 quick)").Range(0, 1<<20),
			IntParam("m", 0, "0 = built-in bandwidth sweep; >0 runs one m").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
		},
		run: runEpsAblation,
	})
}

// workloads returns the named skew shapes of Section 6's motivation.
func workloads(rng *xrand.Source, p, scale int) map[string]sched.Plan {
	return map[string]sched.Plan{
		"uniform":  sched.UniformPlan(rng, p, scale),
		"zipf":     sched.ZipfPlan(rng, p, p*scale, 1.2),
		"halfhalf": sched.HalfHalfPlan(rng, p, 2*scale, scale/4+1),
		"point":    sched.PointPlan(p, p*scale/4),
	}
}

var workloadOrder = []string{"uniform", "zipf", "halfhalf", "point"}

func runSchedStatic(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 256, 64), rec.IntOr("m", 64, 16), rec.Int("l")
	g := max(p/mm, 1)
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	t := tablefmt.New("Unbalanced-Send vs offline optimum and BSP(g) (p=256, m=64, exp penalty)",
		"workload", "n", "x̄", "ȳ", "measured", "offline opt", "Thm6.2 bound", "BSP(g) Θ(g(x̄+ȳ))", "maxslot", "overloads")
	for _, name := range workloadOrder {
		plan := workloads(rng, p, 16)[name]
		m := newBSPmExp(p, mm, l, cfg.Seed)
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps})
		opt := r.OptimalOffline(mm, l)
		bound := lower.UnbalancedSendBound(r.N, r.XBar, r.YBar, p, mm, l, eps)
		bspg := lower.RoutingBSPg(r.XBar, r.YBar, g, l)
		t.Row(name, r.N, r.XBar, r.YBar, r.Time, opt, bound, bspg, r.Send.MaxSlot, r.Send.Overload)
	}
	rec.Emit(t)
}

func runSchedConsecutive(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 256, 64), rec.IntOr("m", 32, 8), rec.Int("l")
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	t := tablefmt.New("Unbalanced-Consecutive-Send (all flits of a sender contiguous)",
		"workload", "n", "x̄", "measured", "Thm6.3 bound", "maxslot", "overloads")
	for _, name := range workloadOrder {
		plan := workloads(rng, p, 8)[name]
		m := newBSPmExp(p, mm, l, cfg.Seed)
		r := sched.UnbalancedConsecutiveSend(m, plan, sched.Options{Eps: eps})
		// x̄' = max over non-overloaded senders; conservatively x̄.
		bound := lower.ConsecutiveSendBound(r.N, r.XBar, minInt(r.XBar, r.Period), r.YBar, p, mm, l, eps)
		t.Row(name, r.N, r.XBar, r.Time, bound, r.Send.MaxSlot, r.Send.Overload)
	}
	rec.Emit(t)
}

func runSchedGranular(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 512, 128), rec.IntOr("m", 16, 8), rec.Int("l")
	c := rec.Int("c")
	rng := xrand.New(cfg.Seed)
	t := tablefmt.New(fmt.Sprintf("Unbalanced-Granular-Send (granularity t' = n/p, period c·n/m, c=%d)", c),
		"workload", "n", "t'", "measured", "c·n/m + x̄", "maxslot", "overloads")
	for _, name := range workloadOrder {
		plan := workloads(rng, p, 8)[name]
		m := newBSPmExp(p, mm, l, cfg.Seed)
		r := sched.UnbalancedGranularSend(m, plan, sched.Options{GranularC: float64(c)})
		tg := r.N / p
		if tg < 1 {
			tg = 1
		}
		bound := float64(c)*float64(r.N)/float64(mm) + float64(r.XBar) + r.Tau
		t.Row(name, r.N, tg, r.Time, bound, r.Send.MaxSlot, r.Send.Overload)
	}
	rec.Emit(t)
}

func runSchedFlits(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 128, 32), rec.IntOr("m", 32, 8), rec.Int("l")
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	base := sched.UnbalancedExchangePlan(rng, p, 6) // lengths 1..6
	t := tablefmt.New("long messages and startup overhead o (unbalanced total exchange, ℓ ≤ 6)",
		"o", "n (flits)", "ℓ̂", "measured", "(1+ε)(1+o/ℓ̄)n/m + ℓ̂ + o + τ")
	_, n0, _ := base.Flits(p)
	msgs := 0
	for _, ms := range base {
		msgs += len(ms)
	}
	lbar := float64(n0) / float64(msgs)
	for _, o := range []int{0, 1, 2, 4, 8} {
		plan := base.WithOverhead(o)
		m := newBSPmExp(p, mm, l, cfg.Seed)
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps})
		lhat := plan.MaxLen()
		bound := (1+eps)*(1+float64(o)/lbar)*float64(n0)/float64(mm) +
			float64(lhat) + float64(o) + r.Tau
		t.Row(o, r.N, lhat, r.Time, bound)
	}
	rec.Emit(t)
}

func runSelfSched(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 256, 64), rec.IntOr("m", 64, 16), rec.Int("l")
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	t := tablefmt.New("self-scheduling BSP(m) metric vs realized BSP(m) schedule",
		"workload", "self-sched time", "BSP(m) measured", "ratio", "(1+ε) target")
	for _, name := range workloadOrder {
		plan := workloads(rng, p, 16)[name]
		ss := bsp.New(bsp.Config{P: p, Cost: model.BSPSelfSched(mm, l), Seed: cfg.Seed})
		ssr := sched.NaiveSend(ss, plan) // metric ignores injection times
		real := newBSPmExp(p, mm, l, cfg.Seed)
		rr := sched.UnbalancedSend(real, plan, sched.Options{Eps: eps, KnownN: ssr.N})
		t.Row(name, ssr.Time, rr.Time, rr.Time/ssr.Time, 1+eps)
	}
	rec.Emit(t)
}

func runPenaltyAblation(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 256, 64), rec.IntOr("m", 16, 8), rec.Int("l")
	eps := rec.Float("eps")
	rng := xrand.New(cfg.Seed)
	plan := sched.UniformPlan(rng, p, 32)
	t := tablefmt.New("naive (all inject at step 0) vs Unbalanced-Send under both penalties",
		"penalty", "naive time", "scheduled time", "naive/scheduled")
	type pen struct {
		name string
		mk   func() *bsp.Machine
	}
	for _, pc := range []pen{
		{"linear f^ℓ", func() *bsp.Machine { return newBSPmL(p, mm, l, cfg.Seed) }},
		{"exponential f^u", func() *bsp.Machine { return newBSPmExp(p, mm, l, cfg.Seed) }},
	} {
		naive := sched.NaiveSend(pc.mk(), plan)
		schd := sched.UnbalancedSend(pc.mk(), plan, sched.Options{Eps: eps})
		t.Row(pc.name, naive.Time, schd.Time, naive.Time/schd.Time)
	}
	rec.Emit(t)
}

func runEpsAblation(rec *Recorder) {
	cfg := rec.Cfg
	p, l := rec.IntOr("p", 256, 64), rec.Int("l")
	rng := xrand.New(cfg.Seed)
	t := tablefmt.New("ε sweep: slack vs overload (zipf workload, exp penalty)",
		"m", "ε", "period", "measured", "offline opt", "maxslot", "overloads")
	for _, mm := range rec.IntSweep("m", []int{16, 64}, []int{16}) {
		plan := sched.ZipfPlan(rng, p, p*16, 1.1)
		for _, eps := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
			m := newBSPmExp(p, mm, l, cfg.Seed)
			r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps})
			t.Row(mm, eps, r.Period, r.Time, r.OptimalOffline(mm, l), r.Send.MaxSlot, r.Send.Overload)
		}
	}
	rec.Emit(t)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
