package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1/onetoall", "table1/broadcast", "table1/parity",
		"table1/listrank", "table1/sort", "table1/summary",
		"lb/broadcast", "lb/hrelation-crcw",
		"sim/crcw-pramm", "sep/leader", "emul/group",
		"sched/static", "sched/consecutive", "sched/granular",
		"sched/flits", "sched/selfsched",
		"dyn/bspg", "dyn/bspm", "dyn/phase",
		"sched/qsm-static", "emul/pram-map", "coll/pipeline",
		"ablation/sort", "sched/template", "validate/channels",
		"ablation/combinetree", "ablation/wraparound", "async/backpressure",
		"ablation/penalty", "ablation/eps", "ablation/listrank",
		"dag/lower", "dag/comm",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope/nothing"); ok {
		t.Fatal("unknown id found")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}
}

// Every experiment must run to completion in quick mode and emit at least
// one non-empty table.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(strings.ReplaceAll(e.ID, "/", "_"), func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			e.Run(&buf, Config{Seed: 42, Params: QuickParams()})
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("experiment %s produced almost no output: %q", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("experiment %s produced no table header", e.ID)
			}
		})
	}
}

func TestCSVMode(t *testing.T) {
	e, _ := ByID("sched/static")
	var buf bytes.Buffer
	e.Run(&buf, Config{Seed: 1, Params: QuickParams(), CSV: true})
	if !strings.Contains(buf.String(), ",") {
		t.Fatal("CSV mode produced no commas")
	}
}

// Golden determinism guard: every registered experiment, run twice with
// Quick+Seed 1, must produce identical structured results — same canonical
// JSON bytes. This is the property the content-addressed run store
// (internal/runstore) and the serve cache depend on.
func TestGoldenStructuredDeterminism(t *testing.T) {
	cfg := Config{Seed: 1, Params: QuickParams()}
	for _, e := range All() {
		e := e
		t.Run(strings.ReplaceAll(e.ID, "/", "_"), func(t *testing.T) {
			t.Parallel()
			a := e.Run(io.Discard, cfg)
			b := e.Run(io.Discard, cfg)
			aj, err := a.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			bj, err := b.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aj, bj) {
				t.Fatalf("structured result not deterministic:\n%s\n---\n%s", aj, bj)
			}
			if len(a.Tables) == 0 {
				t.Fatal("experiment produced no structured tables")
			}
			for _, tb := range a.Tables {
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %q: row has %d cells for %d columns", tb.Title, len(row), len(tb.Columns))
					}
				}
			}
		})
	}
}

// Structured results and the rendered view must agree: rendering the Result
// to a buffer reproduces exactly what Run streams to its writer.
func TestRenderIsViewOverResult(t *testing.T) {
	for _, id := range []string{"table1/broadcast", "sched/static", "table1/summary"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var live bytes.Buffer
		res := e.Run(&live, Config{Seed: 3, Params: QuickParams()})
		var view bytes.Buffer
		res.Render(&view, false)
		if live.String() != view.String() {
			t.Fatalf("%s: rendered view diverges from live output", id)
		}
	}
}

func TestSuggest(t *testing.T) {
	cases := []struct {
		in   string
		want string // must appear in suggestions
	}{
		{"table1/brodcast", "table1/broadcast"},
		{"broadcast", "table1/broadcast"},
		{"static", "sched/static"},
		{"sched", "sched/flits"},
		{"table1", "table1/broadcast"},
	}
	for _, c := range cases {
		got := Suggest(c.in)
		found := false
		for _, id := range got {
			if id == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Suggest(%q) = %v, want it to include %q", c.in, got, c.want)
		}
	}
	if got := Suggest("zzzzqqq"); len(got) != 0 {
		t.Errorf("Suggest(nonsense) = %v, want none", got)
	}
	if got := Suggest("a"); len(got) > 5 {
		t.Errorf("Suggest returned %d ids, cap is 5", len(got))
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	e, _ := ByID("sched/static")
	var a, b bytes.Buffer
	e.Run(&a, Config{Seed: 7, Params: QuickParams()})
	e.Run(&b, Config{Seed: 7, Params: QuickParams()})
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}

// The headline claim of the paper in one assertion: on every Table 1 row,
// the globally-limited model's measured time beats the locally-limited
// model's at matched aggregate bandwidth.
func TestSeparationDirection(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []string{"table1/onetoall", "table1/broadcast", "table1/parity"} {
		e, _ := ByID(id)
		buf.Reset()
		e.Run(&buf, Config{Seed: 11, Params: QuickParams()})
		out := buf.String()
		// Separation column entries like "3.10x" must exceed 1 for the
		// (m) rows; spot-check that at least one x-ratio > 1 appears.
		if !strings.Contains(out, "x") {
			t.Fatalf("%s: no separation ratios in output", id)
		}
	}
}

// The reproduction checklist must pass for several seeds (the claims are
// w.h.p. statements; the chosen parameters put failure probabilities far
// below per-seed flakiness).
func TestVerifyPassesAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 12345} {
		var buf bytes.Buffer
		if fails := Verify(&buf, seed); fails != 0 {
			t.Fatalf("seed %d: %d checks failed:\n%s", seed, fails, buf.String())
		}
	}
}

func TestChecksHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if seen[c.ID] {
			t.Fatalf("duplicate check id %q", c.ID)
		}
		seen[c.ID] = true
		if c.Claim == "" || c.Source == "" || c.Run == nil {
			t.Fatalf("check %q incomplete", c.ID)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("only %d checks registered", len(seen))
	}
}
