package harness

import (
	"fmt"

	"parbw/internal/sched"
	"parbw/internal/tablefmt"
	"parbw/internal/work"
	"parbw/internal/work/dagsched"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "dag/lower",
		Title:  "Level-scheduled DAG lowerings priced under BSP(g) vs BSP(m)",
		Source: "Section 2 models over precedence-structured workloads; Theorem 6.2 for the BSP(m) schedule",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (64 full, 16 quick)").Range(0, work.MaxP),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("deps", 2, "dependencies drawn per node on the previous level").Range(1, 8),
			IntParam("maxlen", 4, "maximum edge payload in flits").Range(1, work.MaxMsgLen),
			FloatParam("eps", 0.25, "schedule slack ε of the Unbalanced-Send pricing").Range(0.001, 8),
		},
		run: runDAGLower,
	})
	register(Experiment{
		ID:     "dag/comm",
		Title:  "Comm-aware placement and message batching for DAG lowerings",
		Source: "Section 2 models; message-combining folklore (PAPERS.md, Papp et al.)",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (64 full, 16 quick)").Range(0, work.MaxP),
			IntParam("m", 0, "0 = built-in aggregate bandwidth (16 full, 8 quick)").Range(0, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("width", 0, "0 = built-in nodes per level (32 full, 8 quick)").Range(0, 1<<10),
			IntParam("depth", 0, "0 = built-in levels (8 full, 4 quick)").Range(0, work.MaxSteps),
			FloatParam("cap", 2, "comm-aware load cap factor over perfect balance").Range(1, 16),
			FloatParam("eps", 0.25, "schedule slack ε of the Unbalanced-Send pricing").Range(0.001, 8),
		},
		run: runDAGComm,
	})
}

// layeredDAG builds a random layered DAG: depth levels of width nodes each,
// every node past level 0 consuming 1..deps outputs of the previous level
// (duplicate picks model a consumer reading the same output twice). Layer
// membership equals longest-path level by construction, so the lowering's
// level bands match the generator's layers exactly.
func layeredDAG(rng *xrand.Source, width, depth, deps, maxLen int) *dagsched.DAG {
	d := &dagsched.DAG{Nodes: make([]dagsched.Node, width*depth)}
	for i := range d.Nodes {
		d.Nodes[i].Work = int64(1 + rng.Intn(3))
	}
	for lv := 1; lv < depth; lv++ {
		for j := 0; j < width; j++ {
			v := lv*width + j
			k := 1 + rng.Intn(deps)
			for e := 0; e < k; e++ {
				u := (lv-1)*width + rng.Intn(width)
				d.Edges = append(d.Edges, dagsched.Edge{U: u, V: v, Len: 1 + rng.Intn(maxLen)})
			}
		}
	}
	return d
}

// commOnly strips the compute vectors from a lowered schedule: work is
// charged identically under every cost model, so the BSP(g)-vs-BSP(m)
// comparison prices communication alone.
func commOnly(ir *work.IR) *work.IR {
	c := ir.Clone()
	for i := range c.Steps {
		c.Steps[i].Work = nil
	}
	return c
}

// pricing is one lowered schedule priced three ways at matched aggregate
// bandwidth (g = p/m): replayed as-is on BSP(g), replayed as-is on the
// exponential-penalty BSP(m), and rescheduled per superstep by
// Unbalanced-Send on BSP(m). replayOv and schedOv count the injection steps
// exceeding the global budget m under each BSP(m) run.
type pricing struct {
	tg, tm, ts        float64
	replayOv, schedOv int
}

func priceLowering(comm *work.IR, p, mm, g, l int, eps float64, seed uint64) pricing {
	var pr pricing
	mg := newBSPg(p, g, l, seed)
	sched.ReplayAll(mg, comm)
	pr.tg = float64(mg.Time())

	mb := newBSPmExp(p, mm, l, seed)
	for _, st := range sched.ReplayAll(mb, comm) {
		pr.replayOv += st.Overload
	}
	pr.tm = float64(mb.Time())

	// The lowering knows its own traffic, so Unbalanced-Send runs with n
	// known (no learn-n collective); empty supersteps launch no comm phase.
	ms := newBSPmExp(p, mm, l, seed)
	for step := range comm.Steps {
		n := 0
		for _, s := range comm.Steps[step].Sends {
			n += s.Flits()
		}
		if n == 0 {
			continue
		}
		r := sched.UnbalancedSendIR(ms, comm, step, sched.Options{Eps: eps, KnownN: n})
		pr.schedOv += r.Send.Overload
	}
	pr.ts = float64(ms.Time())
	return pr
}

func runDAGLower(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 64, 16), rec.IntOr("m", 16, 8), rec.Int("l")
	deps, maxLen := rec.Int("deps"), rec.Int("maxlen")
	eps := rec.Float("eps")
	g := max(p/mm, 1)
	widths := pick(rec.Bool("quick"), []int{16, 64, 256}, []int{4, 16, 64})
	depths := pick(rec.Bool("quick"), []int{4, 16}, []int{4, 8})
	t := tablefmt.New(fmt.Sprintf("level-scheduled DAG lowering, comm only (p=%d, m=%d, g=p/m=%d, exp penalty)", p, mm, g),
		"width", "depth", "nodes", "xedges", "xflits", "BSP(g) replay", "BSP(m) replay", "ov(replay)", "BSP(m) UnbSend", "ov(sched)", "sched/BSP(g)")
	rng := xrand.Derive(cfg.Seed, "harness/dag/lower")
	cells, globalWins, overCells, schedCaps := 0, 0, 0, 0
	for _, w := range widths {
		for _, dep := range depths {
			d := layeredDAG(rng.Split(uint64(w)<<16|uint64(dep)), w, dep, deps, maxLen)
			levels, err := d.Levels()
			if err != nil {
				panic(err)
			}
			place := dagsched.LevelSchedule(d, levels, p)
			ir, err := dagsched.Lower(d, levels, place, p, mm, l, dagsched.Options{})
			if err != nil {
				panic(err)
			}
			comm := commOnly(ir)
			xe, xf := dagsched.CrossEdges(d, place)
			pr := priceLowering(comm, p, mm, g, l, eps, cfg.Seed)
			cells++
			if pr.ts <= pr.tg {
				globalWins++
			}
			if pr.replayOv > 0 {
				overCells++
				if pr.schedOv < pr.replayOv {
					schedCaps++
				}
			}
			t.Row(w, dep, len(d.Nodes), xe, xf, pr.tg, pr.tm, pr.replayOv, pr.ts, pr.schedOv, pr.ts/pr.tg)
		}
	}
	rec.Emit(t)
	rec.Notef("replay injects the dense per-processor slots as lowered; on wide levels that floods the global budget m and the exponential penalty makes BSP(m) replay lose — Unbalanced-Send restores the global model's advantage")
	rec.Verdict("dag/global-wins-scheduled", globalWins == cells,
		fmt.Sprintf("scheduled BSP(m) beats BSP(g) pricing of the same lowering on %d/%d cells at matched aggregate bandwidth", globalWins, cells))
	rec.Verdict("dag/schedule-caps-overload", schedCaps == overCells,
		fmt.Sprintf("Unbalanced-Send rescheduling cuts overloaded injection steps on %d/%d cells the dense lowering overloads", schedCaps, overCells))
}

func runDAGComm(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.IntOr("p", 64, 16), rec.IntOr("m", 16, 8), rec.Int("l")
	w, dep := rec.IntOr("width", 32, 8), rec.IntOr("depth", 8, 4)
	capf, eps := rec.Float("cap"), rec.Float("eps")
	g := max(p/mm, 1)
	densities := pick(rec.Bool("quick"), []int{1, 2, 4, 8}, []int{1, 2, 4})
	t := tablefmt.New(fmt.Sprintf("greedy vs comm-aware placement, batched combining (w=%d, d=%d, p=%d, m=%d, comm only)", w, dep, p, mm),
		"deps", "xflits greedy", "xflits aware", "msgs aware", "msgs batched", "BSP(g) greedy", "BSP(g) aware", "BSP(m) aware", "BSP(m)/BSP(g)")
	rng := xrand.Derive(cfg.Seed, "harness/dag/comm")
	rows, awareWins, batchWins, globalWins := 0, 0, 0, 0
	for _, deps := range densities {
		d := layeredDAG(rng.Split(uint64(deps)), w, dep, deps, 4)
		levels, err := d.Levels()
		if err != nil {
			panic(err)
		}
		greedy := dagsched.LevelSchedule(d, levels, p)
		aware := dagsched.CommAwareSchedule(d, levels, p, capf)
		_, gf := dagsched.CrossEdges(d, greedy)
		_, af := dagsched.CrossEdges(d, aware)
		irG, err := dagsched.Lower(d, levels, greedy, p, mm, l, dagsched.Options{})
		if err != nil {
			panic(err)
		}
		irA, err := dagsched.Lower(d, levels, aware, p, mm, l, dagsched.Options{})
		if err != nil {
			panic(err)
		}
		irAB, err := dagsched.Lower(d, levels, aware, p, mm, l, dagsched.Options{Batch: true})
		if err != nil {
			panic(err)
		}
		commG, commAB := commOnly(irG), commOnly(irAB)

		mgG := newBSPg(p, g, l, cfg.Seed)
		sched.ReplayAll(mgG, commG)
		tgG := float64(mgG.Time())
		pr := priceLowering(commAB, p, mm, g, l, eps, cfg.Seed)

		rows++
		if af <= gf {
			awareWins++
		}
		if irAB.TotalSends <= irA.TotalSends {
			batchWins++
		}
		if pr.tm <= pr.tg {
			globalWins++
		}
		t.Row(deps, gf, af, irA.TotalSends, irAB.TotalSends, tgG, pr.tg, pr.tm, pr.tm/pr.tg)
	}
	rec.Emit(t)
	rec.Verdict("dag/comm-aware-cuts-cross-traffic", awareWins == rows,
		fmt.Sprintf("comm-aware placement carries no more cross-processor flits than greedy on %d/%d densities", awareWins, rows))
	rec.Verdict("dag/batching-coalesces", batchWins == rows,
		fmt.Sprintf("batched lowering sends no more messages than unbatched on %d/%d densities", batchWins, rows))
	rec.Verdict("dag/global-wins-comm", globalWins == rows,
		fmt.Sprintf("BSP(m) executes the comm-aware batched lowering no slower than BSP(g) on %d/%d densities at matched aggregate bandwidth", globalWins, rows))
}
