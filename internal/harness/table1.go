package harness

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/lower"
	"parbw/internal/model"
	"parbw/internal/problems"
	"parbw/internal/qsm"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

// Machine constructors for the standing Table 1 comparison: a locally
// limited machine with gap g and its globally-limited counterpart with the
// same aggregate bandwidth m = p/g.

func newBSPg(p, g, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
}

func newBSPmL(p, m, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(m, l), Seed: seed})
}

func newBSPmExp(p, m, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPm(m, l), Seed: seed})
}

func newQSMg(p, mem, g int, seed uint64) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: model.QSMg(g), Seed: seed})
}

func newQSMmL(p, mem, m int, seed uint64) *qsm.Machine {
	c := model.QSMm(m)
	c.Penalty = model.LinearPenalty
	return qsm.New(qsm.Config{P: p, Mem: mem, Cost: c, Seed: seed})
}

// table1Params is the shared schema shape of the five Table 1 rows: the
// swept machine size plus the (g, L) point the row's separation regime
// needs. Defaults reproduce the paper's configuration for the row.
func table1Params(g, l int) []ParamSpec {
	return []ParamSpec{
		IntParam("p", 0, "0 = built-in sweep over machine sizes; >0 runs one size").Range(0, 1<<20),
		IntParam("g", g, "per-processor gap of the locally-limited models").Range(1, 1<<20),
		IntParam("l", l, "latency/periodicity floor L").Range(0, 1<<20),
	}
}

func init() {
	register(Experiment{
		ID:     "table1/onetoall",
		Title:  "One-to-all personalized communication",
		Source: "Table 1 row 1; Section 1 motivating example",
		Params: table1Params(16, 8),
		run:    runOneToAll,
	})
	register(Experiment{
		ID:     "table1/broadcast",
		Title:  "Broadcasting one value to p processors",
		Source: "Table 1 row 2",
		Params: table1Params(8, 32),
		run:    runBroadcastRow,
	})
	register(Experiment{
		ID:     "table1/parity",
		Title:  "Parity and summation of n = p values",
		Source: "Table 1 row 3",
		Params: table1Params(16, 16),
		run:    runParityRow,
	})
	register(Experiment{
		ID:     "table1/listrank",
		Title:  "List ranking an n = p node list",
		Source: "Table 1 row 4",
		Params: table1Params(32, 2),
		run:    runListRankRow,
	})
	register(Experiment{
		ID:     "table1/sort",
		Title:  "Sorting n = p keys",
		Source: "Table 1 row 5",
		Params: table1Params(16, 8),
		run:    runSortRow,
	})
}

func runOneToAll(rec *Recorder) {
	cfg := rec.Cfg
	g, l := rec.Int("g"), rec.Int("l")
	ps := rec.IntSweep("p", []int{256, 1024, 4096}, []int{64, 256})
	t := tablefmt.New(fmt.Sprintf("one-to-all: measured vs predicted (g=%d, m=p/g, L=%d)", g, l),
		"p", "model", "measured", "predicted", "ratio", "separation")
	for _, p := range ps {
		m := max(p/g, 1)
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(i)
		}

		lb := newBSPg(p, g, l, cfg.Seed)
		collective.OneToAllBSP(lb, 0, vals)
		gb := newBSPmL(p, m, l, cfg.Seed)
		collective.OneToAllBSP(gb, 0, vals)
		predL := lower.OneToAllBSPg(p, g, l)
		predG := lower.OneToAllBSPm(p, l)
		t.Row(p, "BSP(g)", lb.Time(), predL, lb.Time()/predL, "")
		t.Row(p, "BSP(m)", gb.Time(), predG, gb.Time()/predG,
			ratioStr(lb.Time(), gb.Time()))

		lq := newQSMg(p, 2*p, g, cfg.Seed)
		collective.OneToAllQSM(lq, 0, vals)
		gq := newQSMmL(p, 2*p, m, cfg.Seed)
		collective.OneToAllQSM(gq, 0, vals)
		t.Row(p, "QSM(g)", lq.Time(), lower.OneToAllQSMg(p, g),
			lq.Time()/lower.OneToAllQSMg(p, g), "")
		t.Row(p, "QSM(m)", gq.Time(), lower.OneToAllQSMm(p),
			gq.Time()/lower.OneToAllQSMm(p), ratioStr(lq.Time(), gq.Time()))
	}
	rec.Emit(t)
}

func runBroadcastRow(rec *Recorder) {
	cfg := rec.Cfg
	g, l := rec.Int("g"), rec.Int("l")
	ps := rec.IntSweep("p", []int{256, 1024, 4096, 16384}, []int{64, 256})
	t := tablefmt.New(fmt.Sprintf("broadcast: measured vs predicted (g=%d, m=p/g, L=%d)", g, l),
		"p", "model", "measured", "predicted", "ratio", "separation")
	for _, p := range ps {
		m := max(p/g, 1)

		lb := newBSPg(p, g, l, cfg.Seed)
		collective.BroadcastBSP(lb, 0, 7)
		gb := newBSPmL(p, m, l, cfg.Seed)
		collective.BroadcastBSP(gb, 0, 7)
		predL := lower.BroadcastBSPg(p, g, l)
		predG := lower.BroadcastBSPm(p, m, l)
		t.Row(p, "BSP(g)", lb.Time(), predL, lb.Time()/predL, "")
		t.Row(p, "BSP(m)", gb.Time(), predG, gb.Time()/predG,
			ratioStr(lb.Time(), gb.Time()))

		lq := newQSMg(p, 2*p, g, cfg.Seed)
		collective.BroadcastQSM(lq, 0, 7)
		gq := newQSMmL(p, 2*p, m, cfg.Seed)
		collective.BroadcastQSM(gq, 0, 7)
		t.Row(p, "QSM(g)", lq.Time(), lower.BroadcastQSMg(p, g),
			lq.Time()/lower.BroadcastQSMg(p, g), "")
		t.Row(p, "QSM(m)", gq.Time(), lower.BroadcastQSMm(p, m),
			gq.Time()/lower.BroadcastQSMm(p, m), ratioStr(lq.Time(), gq.Time()))
	}
	rec.Emit(t)
}

func runParityRow(rec *Recorder) {
	cfg := rec.Cfg
	g, l := rec.Int("g"), rec.Int("l")
	ps := rec.IntSweep("p", []int{256, 1024, 4096}, []int{64, 256})
	t := tablefmt.New(fmt.Sprintf("parity of n=p bits: measured vs predicted (g=%d, m=p/g, L=%d)", g, l),
		"n=p", "model", "measured", "predicted", "ratio", "separation")
	for _, p := range ps {
		m := max(p/g, 1)
		rng := xrand.New(cfg.Seed)
		bits := make([]int64, p)
		for i := range bits {
			bits[i] = int64(rng.Intn(2))
		}

		lb := newBSPg(p, g, l, cfg.Seed)
		problems.ParityBSP(lb, bits)
		gb := newBSPmL(p, m, l, cfg.Seed)
		problems.ParityBSP(gb, bits)
		predL := lower.ParityBSPg(p, g, l)
		predG := lower.ParityBSPm(p, m, l)
		t.Row(p, "BSP(g)", lb.Time(), predL, lb.Time()/predL, "")
		t.Row(p, "BSP(m)", gb.Time(), predG, gb.Time()/predG,
			ratioStr(lb.Time(), gb.Time()))

		lq := newQSMg(p, 2*p, g, cfg.Seed)
		problems.ParityQSM(lq, bits)
		gq := newQSMmL(p, 2*p, m, cfg.Seed)
		problems.ParityQSM(gq, bits)
		predQL := lower.ParityQSMgLB(p, g) // lower bound for the weak model
		predQG := lower.ParityQSMm(p, m)
		t.Row(p, "QSM(g)", lq.Time(), predQL, lq.Time()/predQL, "")
		t.Row(p, "QSM(m)", gq.Time(), predQG, gq.Time()/predQG,
			ratioStr(lq.Time(), gq.Time()))
	}
	rec.Emit(t)
}

func runListRankRow(rec *Recorder) {
	cfg := rec.Cfg
	// g ≫ L: the row-4 separation vanishes when the latency floor L
	// dominates the per-round cost of both models.
	g, l := rec.Int("g"), rec.Int("l")
	ps := rec.IntSweep("p", []int{512, 1024, 2048}, []int{64, 128})
	t := tablefmt.New(fmt.Sprintf("list ranking n=p nodes (contraction): measured vs predicted (g=%d, m=p/g, L=%d)", g, l),
		"n=p", "model", "measured", "predicted", "ratio", "separation")
	for _, p := range ps {
		m := max(p/g, 1)
		rng := xrand.New(cfg.Seed)
		list := problems.RandomList(rng, p)

		lb := newBSPg(p, g, l, cfg.Seed)
		problems.ListRankContractBSP(lb, list)
		gb := newBSPmL(p, m, l, cfg.Seed)
		problems.ListRankContractBSP(gb, list)
		predL := lower.ListRankLBg(p, g)
		predG := lower.ListRankBSPm(p, m, l)
		t.Row(p, "BSP(g)", lb.Time(), predL, lb.Time()/predL, "")
		t.Row(p, "BSP(m)", gb.Time(), predG, gb.Time()/predG,
			ratioStr(lb.Time(), gb.Time()))

		lq := newQSMg(p, 3*p, g, cfg.Seed)
		problems.ListRankContractQSM(lq, list)
		gq := newQSMmL(p, 3*p, m, cfg.Seed)
		problems.ListRankContractQSM(gq, list)
		predQG := lower.ListRankQSMm(p, m)
		t.Row(p, "QSM(g)", lq.Time(), predL, lq.Time()/predL, "")
		t.Row(p, "QSM(m)", gq.Time(), predQG, gq.Time()/predQG,
			ratioStr(lq.Time(), gq.Time()))
	}
	rec.Emit(t)
}

func runSortRow(rec *Recorder) {
	cfg := rec.Cfg
	g, l := rec.Int("g"), rec.Int("l")
	ps := rec.IntSweep("p", []int{512, 1024, 4096}, []int{128, 512})
	t := tablefmt.New(fmt.Sprintf("sorting n=p keys (columnsort): measured vs predicted (g=%d, m=p/g, L=%d)", g, l),
		"n=p", "model", "q", "measured", "predicted", "ratio", "separation")
	for _, p := range ps {
		m := max(p/g, 1)
		// Sorter count: depth-1 columnsort shape (q ≈ (n/2)^{1/3}) so the
		// recursion constant is fixed across the sweep.
		q := 1
		for q*2 <= p && p/(q*2) >= 2*(q*2-1)*(q*2-1) {
			q *= 2
		}
		rng := xrand.New(cfg.Seed)
		keys := make([]int64, p)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 1000003)
		}

		lb := newBSPg(p, g, l, cfg.Seed)
		problems.ColumnsortBSP(lb, keys, q)
		gb := newBSPmL(p, m, l, cfg.Seed)
		problems.ColumnsortBSP(gb, keys, q)
		predL := lower.SortLBg(p, g)
		predG := lower.SortBSPm(p, m, l)
		t.Row(p, "BSP(g)", q, lb.Time(), predL, lb.Time()/predL, "")
		t.Row(p, "BSP(m)", q, gb.Time(), predG, gb.Time()/predG,
			ratioStr(lb.Time(), gb.Time()))

		lq := newQSMg(p, p, g, cfg.Seed)
		problems.ColumnsortQSM(lq, keys, q)
		gq := newQSMmL(p, p, m, cfg.Seed)
		problems.ColumnsortQSM(gq, keys, q)
		predQG := lower.SortQSMm(p, m)
		t.Row(p, "QSM(g)", q, lq.Time(), predL, lq.Time()/predL, "")
		t.Row(p, "QSM(m)", q, gq.Time(), predQG, gq.Time()/predQG,
			ratioStr(lq.Time(), gq.Time()))
	}
	rec.Emit(t)
}

// ratioStr formats the local/global separation factor.
func ratioStr(local, global float64) string {
	if global == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", local/global)
}

func newBSPSelfSched(p, m, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPSelfSched(m, l), Seed: seed})
}
