// Package harness defines the experiment registry that regenerates every
// table and quantitative claim of the paper: the five Table 1 rows, the
// Section 4.2 broadcast lower bound, the Section 5 concurrent-read results,
// the Section 6.1 scheduling theorems, the Section 6.2 dynamic routing
// theorems, and the ablations called out in DESIGN.md.
//
// Each experiment produces a structured *result.Result — named-column tables
// with measured simulated time next to the paper's predicted bound and their
// ratio, plus optional verdicts — and the ASCII-table / CSV output is a view
// rendered from that structure. The bounds are asymptotic, so a reproduction
// is judged on shape: ratios that stay roughly flat across a sweep, and "who
// wins" agreeing with the paper.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parbw/internal/engine"
	"parbw/internal/result"
	"parbw/internal/tablefmt"
)

// CodeVersion names the current revision of the experiment semantics. It is
// folded into the run-store cache key alongside (experiment id, params,
// seed), so bumping it invalidates every previously stored run. Bump it
// whenever any experiment's structured output changes.
const CodeVersion = "2"

// Config controls an experiment run.
type Config struct {
	Seed uint64
	// Params holds raw parameter overrides by name ("p" → "64"). Unset
	// parameters take their schema defaults; nil runs every default. Values
	// are validated against the experiment's ParamSpec schema by Resolve.
	// The former Quick boolean is the Presets["quick"] overlay.
	Params map[string]string
	CSV    bool // emit CSV instead of aligned tables
	// Observer, if non-nil, receives an engine.StepStats callback for every
	// superstep of every machine the experiment constructs. It is attached
	// via the engine's process-global tap for the duration of the run;
	// harness.Run serializes observed runs against all other runs in the
	// process, so an observer sees only its own experiment's machines.
	Observer engine.Observer
}

// tapMu guards the process-global engine observer tap across concurrent
// harness.Run calls. Runs that attach an observer take the write lock —
// exclusive, so they never see another run's machines — while unobserved
// runs share the read lock and proceed fully in parallel (the service's
// sweep executor stays concurrent).
var tapMu sync.RWMutex

// Recorder collects the structured output of one experiment run and hands
// the experiment body its resolved parameters. Bodies emit tables, notes,
// and verdicts through it and read parameters via Int/Float/Bool; they never
// write to an io.Writer directly.
type Recorder struct {
	Cfg    Config
	res    *result.Result
	expID  string
	specs  map[string]ParamSpec
	values Resolved
}

// param returns the canonical value of a declared parameter, panicking on an
// undeclared name or kind mismatch — both programming errors in the
// experiment body, not runtime input errors.
func (r *Recorder) param(name string, kind ParamKind) string {
	spec, ok := r.specs[name]
	if !ok {
		panic(fmt.Sprintf("harness: experiment %q reads undeclared param %q", r.expID, name))
	}
	if spec.Kind != kind {
		panic(fmt.Sprintf("harness: experiment %q reads param %q as %v but it is declared %v",
			r.expID, name, kind, spec.Kind))
	}
	return r.values[name]
}

// Int returns the resolved value of a declared int parameter.
func (r *Recorder) Int(name string) int {
	n, _ := strconv.ParseInt(r.param(name, KindInt), 10, 64)
	return int(n)
}

// Float returns the resolved value of a declared float parameter.
func (r *Recorder) Float(name string) float64 {
	f, _ := strconv.ParseFloat(r.param(name, KindFloat), 64)
	return f
}

// Bool returns the resolved value of a declared bool parameter.
func (r *Recorder) Bool(name string) bool {
	b, _ := strconv.ParseBool(r.param(name, KindBool))
	return b
}

// IntOr resolves a sentinel int parameter: a positive value overrides; zero
// means "use the built-in value" — full normally, quick under the quick
// preset.
func (r *Recorder) IntOr(name string, full, quick int) int {
	if v := r.Int(name); v > 0 {
		return v
	}
	return pick(r.Bool("quick"), full, quick)
}

// IntSweep resolves a sentinel int parameter controlling a sweep axis: a
// positive value collapses the sweep to that single point; zero keeps the
// built-in sweep (full normally, quick under the quick preset).
func (r *Recorder) IntSweep(name string, full, quick []int) []int {
	if v := r.Int(name); v > 0 {
		return []int{v}
	}
	return pick(r.Bool("quick"), full, quick)
}

// Emit records a finished table into the run's structured result.
func (r *Recorder) Emit(t *tablefmt.Table) {
	r.res.AddTable(result.Table{Title: t.Title(), Columns: t.Header(), Rows: t.Rows()})
}

// Notef records a free-form note line.
func (r *Recorder) Notef(format string, args ...any) { r.res.Notef(format, args...) }

// Verdict records a pass/fail judgment the experiment makes about its own
// measurements (rendered as a [PASS]/[FAIL] line under the tables).
func (r *Recorder) Verdict(id string, ok bool, detail string) { r.res.AddVerdict(id, ok, detail) }

// Experiment is one reproducible experiment.
type Experiment struct {
	ID     string // harness id, e.g. "table1/broadcast"
	Title  string
	Source string // where in the paper it comes from
	// Params is the experiment's declared parameter schema. register
	// prepends the built-in "quick" bool, so every experiment accepts the
	// quick preset without declaring it.
	Params []ParamSpec
	run    func(rec *Recorder)

	specIdx map[string]ParamSpec // name → spec, built at registration
}

var registry []Experiment

// register adds an experiment to the registry, prepending the built-in
// "quick" param and validating the schema. It panics on a duplicate ID — a
// copy-pasted init() would otherwise silently shadow lookups — and leaves
// the registry untouched when it does.
func register(e Experiment) {
	for _, x := range registry {
		if x.ID == e.ID {
			panic(fmt.Sprintf("harness: duplicate experiment id %q", e.ID))
		}
	}
	e.Params = append([]ParamSpec{quickSpec()}, e.Params...)
	e.specIdx = validateSpecs(e.ID, e.Params)
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Suggest returns up to five registered experiment ids that most resemble
// the (typically mistyped or partial) id: substring matches, per-segment
// matches ("broadcast" → "table1/broadcast", "lb/broadcast"), and shared
// prefixes, best first.
func Suggest(id string) []string {
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return SuggestFrom(id, ids)
}

// SuggestFrom is the scoring core behind Suggest, shared by every
// did-you-mean surface in the tree (experiment ids, parameter names, the
// fuzz command's workload families): up to five candidates most resembling
// q, best first.
func SuggestFrom(q string, candidates []string) []string {
	q = strings.ToLower(strings.TrimSpace(q))
	if q == "" {
		return nil
	}
	type scored struct {
		id    string
		score int
	}
	var matches []scored
	for _, id := range candidates {
		cand := strings.ToLower(id)
		score := 0
		switch {
		case strings.HasPrefix(cand, q):
			score = 100
		case strings.Contains(cand, q):
			score = 80
		}
		for _, seg := range strings.Split(cand, "/") {
			if seg == q {
				score = max(score, 90)
			} else if strings.HasPrefix(seg, q) {
				score = max(score, 70)
			}
		}
		if score == 0 {
			n := 0
			for n < len(cand) && n < len(q) && cand[n] == q[n] {
				n++
			}
			// Short candidates (param names like "eps") can't reach the
			// 3-char prefix bar a typo'd last letter leaves; accept 2.
			if n >= 3 || (n >= 2 && len(cand) <= 4) {
				score = n
			}
		}
		if score > 0 {
			matches = append(matches, scored{id, score})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].score != matches[j].score {
			return matches[i].score > matches[j].score
		}
		return matches[i].id < matches[j].id
	})
	if len(matches) > 5 {
		matches = matches[:5]
	}
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = m.id
	}
	return out
}

// Run executes the experiment and returns its structured result. The
// rendered view (aligned tables, or CSV when cfg.CSV) is written to w; pass
// nil or io.Discard to run silently.
//
// Run panics on invalid cfg.Params — callers taking untrusted parameter
// input (CLI flags, API requests) must pre-validate with Resolve and report
// the error themselves.
func (e Experiment) Run(w io.Writer, cfg Config) *result.Result {
	vals, err := e.Resolve(cfg.Params)
	if err != nil {
		panic(fmt.Sprintf("harness: %v (pre-validate with Resolve)", err))
	}
	res := result.New(e.ID, e.Title, e.Source, vals.ResultParams(cfg.Seed))
	rec := &Recorder{Cfg: cfg, res: res, expID: e.ID, specs: e.specIdx, values: vals}
	if cfg.Observer != nil {
		// Exclusive: the process-global tap must see only this run's machines.
		tapMu.Lock()
		defer tapMu.Unlock()
		remove := engine.AddGlobalObserver(cfg.Observer)
		defer remove()
	} else {
		tapMu.RLock()
		defer tapMu.RUnlock()
	}
	start := time.Now()
	e.run(rec)
	res.WallNS = time.Since(start).Nanoseconds()
	res.Finalize()
	if w != nil {
		res.Render(w, cfg.CSV)
	}
	return res
}

// RunAll executes every experiment in ID order and returns their structured
// results.
func RunAll(w io.Writer, cfg Config) []*result.Result {
	out := make([]*result.Result, 0, len(registry))
	for _, e := range All() {
		if w != nil {
			fmt.Fprintf(w, "\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
		}
		out = append(out, e.Run(w, cfg))
	}
	return out
}

// pick returns full unless quick.
func pick[T any](quick bool, full, q T) T {
	if quick {
		return q
	}
	return full
}
