// Package harness defines the experiment registry that regenerates every
// table and quantitative claim of the paper: the five Table 1 rows, the
// Section 4.2 broadcast lower bound, the Section 5 concurrent-read results,
// the Section 6.1 scheduling theorems, the Section 6.2 dynamic routing
// theorems, and the ablations called out in DESIGN.md.
//
// Each experiment prints one or more paper-style tables with measured
// simulated time next to the paper's predicted bound and their ratio. The
// bounds are asymptotic, so a reproduction is judged on shape: ratios that
// stay roughly flat across a sweep, and "who wins" agreeing with the paper.
package harness

import (
	"fmt"
	"io"
	"sort"
)

// Config controls an experiment run.
type Config struct {
	Seed  uint64
	Quick bool // smaller sweeps (used by tests and -quick)
	CSV   bool // emit CSV instead of aligned tables
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID     string // harness id, e.g. "table1/broadcast"
	Title  string
	Source string // where in the paper it comes from
	Run    func(w io.Writer, cfg Config)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer, cfg Config) {
	for _, e := range All() {
		fmt.Fprintf(w, "\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
		e.Run(w, cfg)
	}
}

// pick returns full unless cfg.Quick, then quick.
func pick[T any](cfg Config, full, quick T) T {
	if cfg.Quick {
		return quick
	}
	return full
}

// emit renders a table per cfg.
type stringerTable interface {
	String() string
	CSV() string
}

func emit(w io.Writer, cfg Config, t stringerTable) {
	if cfg.CSV {
		fmt.Fprint(w, t.CSV())
	} else {
		fmt.Fprintln(w, t.String())
	}
}
