// Package harness defines the experiment registry that regenerates every
// table and quantitative claim of the paper: the five Table 1 rows, the
// Section 4.2 broadcast lower bound, the Section 5 concurrent-read results,
// the Section 6.1 scheduling theorems, the Section 6.2 dynamic routing
// theorems, and the ablations called out in DESIGN.md.
//
// Each experiment produces a structured *result.Result — named-column tables
// with measured simulated time next to the paper's predicted bound and their
// ratio, plus optional verdicts — and the ASCII-table / CSV output is a view
// rendered from that structure. The bounds are asymptotic, so a reproduction
// is judged on shape: ratios that stay roughly flat across a sweep, and "who
// wins" agreeing with the paper.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"parbw/internal/engine"
	"parbw/internal/result"
	"parbw/internal/tablefmt"
)

// CodeVersion names the current revision of the experiment semantics. It is
// folded into the run-store cache key alongside (experiment id, params,
// seed), so bumping it invalidates every previously stored run. Bump it
// whenever any experiment's structured output changes.
const CodeVersion = "1"

// Config controls an experiment run.
type Config struct {
	Seed  uint64
	Quick bool // smaller sweeps (used by tests and -quick)
	CSV   bool // emit CSV instead of aligned tables
	// Observer, if non-nil, receives an engine.StepStats callback for every
	// superstep of every machine the experiment constructs. It is attached
	// via the engine's process-global tap for the duration of the run, so it
	// suits single-run tooling (`bandsim trace`) and tests; concurrent runs
	// in the same process would observe each other's machines.
	Observer engine.Observer
}

// Recorder collects the structured output of one experiment run. Experiment
// bodies emit tables, notes, and verdicts through it; they never write to an
// io.Writer directly.
type Recorder struct {
	Cfg Config
	res *result.Result
}

// Emit records a finished table into the run's structured result.
func (r *Recorder) Emit(t *tablefmt.Table) {
	r.res.AddTable(result.Table{Title: t.Title(), Columns: t.Header(), Rows: t.Rows()})
}

// Notef records a free-form note line.
func (r *Recorder) Notef(format string, args ...any) { r.res.Notef(format, args...) }

// Verdict records a pass/fail judgment the experiment makes about its own
// measurements (rendered as a [PASS]/[FAIL] line under the tables).
func (r *Recorder) Verdict(id string, ok bool, detail string) { r.res.AddVerdict(id, ok, detail) }

// Experiment is one reproducible experiment.
type Experiment struct {
	ID     string // harness id, e.g. "table1/broadcast"
	Title  string
	Source string // where in the paper it comes from
	run    func(rec *Recorder)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Suggest returns up to five registered experiment ids that most resemble
// the (typically mistyped or partial) id: substring matches, per-segment
// matches ("broadcast" → "table1/broadcast", "lb/broadcast"), and shared
// prefixes, best first.
func Suggest(id string) []string {
	q := strings.ToLower(strings.TrimSpace(id))
	if q == "" {
		return nil
	}
	type scored struct {
		id    string
		score int
	}
	var matches []scored
	for _, e := range All() {
		cand := strings.ToLower(e.ID)
		score := 0
		switch {
		case strings.HasPrefix(cand, q):
			score = 100
		case strings.Contains(cand, q):
			score = 80
		}
		for _, seg := range strings.Split(cand, "/") {
			if seg == q {
				score = max(score, 90)
			} else if strings.HasPrefix(seg, q) {
				score = max(score, 70)
			}
		}
		if score == 0 {
			n := 0
			for n < len(cand) && n < len(q) && cand[n] == q[n] {
				n++
			}
			if n >= 3 {
				score = n
			}
		}
		if score > 0 {
			matches = append(matches, scored{e.ID, score})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].score != matches[j].score {
			return matches[i].score > matches[j].score
		}
		return matches[i].id < matches[j].id
	})
	if len(matches) > 5 {
		matches = matches[:5]
	}
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = m.id
	}
	return out
}

// Run executes the experiment and returns its structured result. The
// rendered view (aligned tables, or CSV when cfg.CSV) is written to w; pass
// nil or io.Discard to run silently.
func (e Experiment) Run(w io.Writer, cfg Config) *result.Result {
	res := result.New(e.ID, e.Title, e.Source, result.Params{Seed: cfg.Seed, Quick: cfg.Quick})
	rec := &Recorder{Cfg: cfg, res: res}
	if cfg.Observer != nil {
		remove := engine.AddGlobalObserver(cfg.Observer)
		defer remove()
	}
	start := time.Now()
	e.run(rec)
	res.WallNS = time.Since(start).Nanoseconds()
	res.Finalize()
	if w != nil {
		res.Render(w, cfg.CSV)
	}
	return res
}

// RunAll executes every experiment in ID order and returns their structured
// results.
func RunAll(w io.Writer, cfg Config) []*result.Result {
	out := make([]*result.Result, 0, len(registry))
	for _, e := range All() {
		if w != nil {
			fmt.Fprintf(w, "\n### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
		}
		out = append(out, e.Run(w, cfg))
	}
	return out
}

// pick returns full unless cfg.Quick, then quick.
func pick[T any](cfg Config, full, quick T) T {
	if cfg.Quick {
		return quick
	}
	return full
}
