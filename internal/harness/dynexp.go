package harness

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/dynamic"
	"parbw/internal/lower"
	"parbw/internal/problems"
	"parbw/internal/queue"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "dyn/bspg",
		Title:  "Dynamic routing stability threshold on the BSP(g)",
		Source: "Theorem 6.5",
		Params: []ParamSpec{
			IntParam("p", 16, "processors").Range(2, 1<<16),
			IntParam("g", 8, "per-processor gap of the BSP(g)").Range(1, 1<<16),
			IntParam("l", 4, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("windows", 0, "0 = built-in horizon (120 full, 40 quick)").Range(0, 1<<20),
		},
		run: runDynBSPg,
	})
	register(Experiment{
		ID:     "dyn/bspm",
		Title:  "Algorithm B on the BSP(m): stability region and service time",
		Source: "Theorem 6.7 and Claim 6.8",
		Params: []ParamSpec{
			IntParam("p", 32, "processors").Range(2, 1<<16),
			IntParam("m", 8, "aggregate bandwidth of the BSP(m)").Range(1, 1<<16),
			IntParam("l", 2, "latency/periodicity floor L").Range(0, 1<<16),
			IntParam("w", 64, "adversary window length w").Range(4, 1<<16),
			IntParam("windows", 0, "0 = built-in horizon (200 full, 50 quick)").Range(0, 1<<20),
		},
		run: runDynBSPm,
	})
	register(Experiment{
		ID:     "ablation/listrank",
		Title:  "List ranking: pointer jumping vs random-mate contraction",
		Source: "DESIGN.md ablation; Table 1 row 4 machinery",
		Params: []ParamSpec{
			IntParam("n", 0, "0 = built-in sweep over list lengths (n = p)").Range(0, 1<<20),
			IntParam("m", 8, "aggregate bandwidth of the BSP(m)").Range(1, 1<<16),
			IntParam("l", 2, "latency/periodicity floor L").Range(0, 1<<16),
		},
		run: runListRankAblation,
	})
}

func runDynBSPg(rec *Recorder) {
	cfg := rec.Cfg
	p, g, l := rec.Int("p"), rec.Int("g"), rec.Int("l")
	windows := rec.IntOr("windows", 120, 40)
	t := tablefmt.New(fmt.Sprintf("BSP(g) interval router, single-source flow (g=%d, threshold 1/g = %g)", g, 1/float64(g)),
		"β", "β·g", "stable?", "final backlog", "max backlog")
	for _, beta := range []float64{0.0625, 0.125, 0.25, 0.5, 1.0} {
		lmt := dynamic.Limits{W: 32, Alpha: beta, Beta: beta}
		adv := dynamic.SingleTargetAdversary{L: lmt}
		m := newBSPg(p, g, l, cfg.Seed)
		res := dynamic.RunBSPgInterval(m, adv, lmt, windows)
		t.Row(beta, beta*float64(g), stableStr(res.LooksStable()),
			res.Backlog[len(res.Backlog)-1], res.MaxBacklog)
	}
	rec.Emit(t)

	t2 := tablefmt.New(fmt.Sprintf("same flows on the BSP(m), m = p/g = %d (Algorithm B)", max(p/g, 1)),
		"β", "stable?", "final backlog", "max backlog")
	for _, beta := range []float64{0.25, 0.5, 1.0} {
		lmt := dynamic.Limits{W: 32, Alpha: beta, Beta: beta}
		adv := dynamic.SingleTargetAdversary{L: lmt}
		m := newBSPmExp(p, max(p/g, 1), l, cfg.Seed)
		res := dynamic.RunAlgorithmB(m, adv, lmt, windows, 0.25)
		t2.Row(beta, stableStr(res.LooksStable()),
			res.Backlog[len(res.Backlog)-1], res.MaxBacklog)
	}
	rec.Emit(t2)

	// Corollary 6.6: no algorithm is stable on the BSP(g) above total rate
	// p/g, even with perfectly balanced (uniform) traffic.
	t3 := tablefmt.New(fmt.Sprintf("Corollary 6.6: BSP(g) total-rate ceiling p/g = %d (uniform adversary)", max(p/g, 1)),
		"α (total rate)", "α·g/p", "stable?", "max backlog")
	for _, alpha := range []float64{1, 2, 3, 4} {
		lmt := dynamic.Limits{W: 32, Alpha: alpha, Beta: alpha / float64(p) * 4}
		adv := dynamic.NewUniformAdversary(p, lmt, cfg.Seed)
		m := newBSPg(p, g, l, cfg.Seed)
		res := dynamic.RunBSPgInterval(m, adv, lmt, windows)
		t3.Row(alpha, alpha*float64(g)/float64(p), stableStr(res.LooksStable()), res.MaxBacklog)
	}
	rec.Emit(t3)
}

func runDynBSPm(rec *Recorder) {
	cfg := rec.Cfg
	p, mm, l := rec.Int("p"), rec.Int("m"), rec.Int("l")
	windows := rec.IntOr("windows", 200, 50)
	wW := rec.Int("w")
	t := tablefmt.New(fmt.Sprintf("Algorithm B stability region (p=%d, m=%d, w=%d, uniform adversary)", p, mm, wW),
		"α", "α/m", "stable?", "max backlog", "mean service", "w bound")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.5} {
		alpha := frac * float64(mm)
		lmt := dynamic.Limits{W: wW, Alpha: alpha, Beta: 0.9}
		adv := dynamic.NewUniformAdversary(p, lmt, cfg.Seed)
		m := newBSPmExp(p, mm, l, cfg.Seed)
		res := dynamic.RunAlgorithmB(m, adv, lmt, windows, 0.25)
		t.Row(alpha, frac, stableStr(res.LooksStable()), res.MaxBacklog,
			res.MeanService(), wW)
	}
	rec.Emit(t)

	// Service-time comparison against the Claim 6.8 dominating system and
	// the Theorem 6.7 O(w²/u) bound.
	u := max(wW/4, 1)
	sd := queue.SDoublePrime{W: wW, U: u}
	t2 := tablefmt.New(fmt.Sprintf("Claim 6.8 analytics (w=%d, u=%d)", wW, u),
		"quantity", "value")
	t2.Row("E[S''0] (dominating scaled service)", sd.Mean())
	t2.Row("paper bound 1.21·w/u", 1.21*float64(wW)/float64(u))
	t2.Row("Thm 6.7 expected-service bound 2.42·w²/u", lower.ExpectedServiceTime(wW, u))
	mg1 := queue.MG1{Lambda: 0.1, Mu1: sd.Mean(), Mu2: sd.SecondMoment()}
	t2.Row("M/G/1 mean queue at departure (r=0.1)", mg1.MeanQueueAtDeparture())
	rec.Emit(t2)

	// Variable-length extension: Algorithm B parameterized by the
	// consecutive-flit scheduler (Theorem 6.7's "algorithm A" slot filled
	// with Theorem 6.3).
	t3 := tablefmt.New("Algorithm B with long messages (A = Unbalanced-Consecutive-Send)",
		"flits/msg", "α·flits", "stable?", "max backlog", "mean service")
	for _, fl := range []int{1, 2, 4, 8} {
		alpha := float64(mm) / float64(4*fl)
		lmt := dynamic.Limits{W: wW, Alpha: alpha, Beta: 0.5}
		adv := dynamic.NewUniformAdversary(p, lmt, cfg.Seed)
		m := newBSPmExp(p, mm, l, cfg.Seed)
		res := dynamic.RunAlgorithmBWith(m, adv, lmt, windows, fl,
			dynamic.ConsecutiveSendScheduler(0.25))
		t3.Row(fl, alpha*float64(fl), stableStr(res.LooksStable()), res.MaxBacklog, res.MeanService())
	}
	rec.Emit(t3)
}

func runListRankAblation(rec *Recorder) {
	cfg := rec.Cfg
	// Fixed small aggregate bandwidth m = 8 — the m ≪ p regime where the
	// n/m term dominates. Pointer jumping moves Θ(n) messages per round
	// (Θ((n/m)·lg n) total); contraction's geometrically shrinking rounds
	// pay Θ(n/m + L·lg n), so its advantage grows with n.
	l, mm := rec.Int("l"), rec.Int("m")
	t := tablefmt.New(fmt.Sprintf("list ranking on BSP(m=%d): pointer jumping vs contraction (n = p)", mm),
		"n", "pointer jumping", "contraction", "jump/contract")
	for _, p := range rec.IntSweep("n", []int{512, 1024, 4096}, []int{256}) {
		list := randomListFor(cfg.Seed, p)
		mj := newBSPmL(p, mm, l, cfg.Seed)
		problemsListRankJump(mj, list)
		mc := newBSPmL(p, mm, l, cfg.Seed)
		problemsListRankContract(mc, list)
		t.Row(p, mj.Time(), mc.Time(), mj.Time()/mc.Time())
	}
	rec.Emit(t)
}

func stableStr(b bool) string {
	if b {
		return "stable"
	}
	return "UNSTABLE"
}

// Small indirections keeping dynexp.go's imports tidy.
func randomListFor(seed uint64, n int) problems.List {
	return problems.RandomList(xrand.New(seed), n)
}

func problemsListRankJump(m *bsp.Machine, l problems.List)     { problems.ListRankJumpBSP(m, l) }
func problemsListRankContract(m *bsp.Machine, l problems.List) { problems.ListRankContractBSP(m, l) }
