package harness

import (
	"fmt"
	"io"

	"parbw/internal/collective"
	"parbw/internal/dynamic"
	"parbw/internal/lower"
	"parbw/internal/pram"
	"parbw/internal/problems"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

// Check is one verifiable claim of the paper, evaluated against the
// simulator: Run returns a human-readable measurement and whether it
// confirms the claim.
type Check struct {
	ID     string
	Claim  string
	Source string
	Run    func(seed uint64) (detail string, ok bool)
}

// Checks returns the reproduction checklist: the headline quantitative
// claims, each as an executable assertion. `bandsim verify` runs them all.
func Checks() []Check {
	return []Check{
		{
			ID:     "onetoall-theta-g",
			Claim:  "one-to-all separation is exactly Θ(g) at matched bandwidth",
			Source: "Table 1 row 1",
			Run: func(seed uint64) (string, bool) {
				p, g, l := 1024, 16, 8
				vals := make([]int64, p)
				lm := newBSPg(p, g, l, seed)
				collective.OneToAllBSP(lm, 0, vals)
				gm := newBSPmL(p, p/g, l, seed)
				collective.OneToAllBSP(gm, 0, vals)
				sep := lm.Time() / gm.Time()
				return fmt.Sprintf("separation %.2f vs g=%d", sep, g),
					sep > 0.9*float64(g) && sep <= float64(g)+1
			},
		},
		{
			ID:     "global-wins-every-row",
			Claim:  "globally-limited model wins every Table 1 row",
			Source: "Table 1",
			Run: func(seed uint64) (string, bool) {
				p, g, l := 512, 16, 8
				wins := 0
				// broadcast
				lm := newBSPg(p, g, l, seed)
				collective.BroadcastBSP(lm, 0, 1)
				gm := newBSPmL(p, p/g, l, seed)
				collective.BroadcastBSP(gm, 0, 1)
				if gm.Time() < lm.Time() {
					wins++
				}
				// parity
				bits := make([]int64, p)
				lm2 := newBSPg(p, g, l, seed)
				problems.ParityBSP(lm2, bits)
				gm2 := newBSPmL(p, p/g, l, seed)
				problems.ParityBSP(gm2, bits)
				if gm2.Time() < lm2.Time() {
					wins++
				}
				// list ranking (g ≫ L regime)
				list := problems.RandomList(xrand.New(seed), p)
				lm3 := newBSPg(p, 32, 2, seed)
				problems.ListRankContractBSP(lm3, list)
				gm3 := newBSPmL(p, p/32, 2, seed)
				problems.ListRankContractBSP(gm3, list)
				if gm3.Time() < lm3.Time() {
					wins++
				}
				// sorting
				keys := make([]int64, p)
				rng := xrand.New(seed)
				for i := range keys {
					keys[i] = int64(rng.Uint64() % 9973)
				}
				lm4 := newBSPg(p, g, l, seed)
				problems.ColumnsortBSP(lm4, keys, 4)
				gm4 := newBSPmL(p, p/g, l, seed)
				problems.ColumnsortBSP(gm4, keys, 4)
				if gm4.Time() < lm4.Time() {
					wins++
				}
				return fmt.Sprintf("%d/4 rows won by the (m) model", wins), wins == 4
			},
		},
		{
			ID:     "unbalanced-send-near-optimal",
			Claim:  "Unbalanced-Send completes within (1+ε)·optimal + τ w.h.p.",
			Source: "Theorem 6.2",
			Run: func(seed uint64) (string, bool) {
				p, mm, l := 256, 64, 8
				eps := 0.25
				plan := sched.ZipfPlan(xrand.New(seed), p, 8192, 1.1)
				m := newBSPmExp(p, mm, l, seed)
				r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps})
				opt := r.OptimalOffline(mm, l)
				ratio := (r.Time - r.Tau) / opt
				return fmt.Sprintf("time/opt = %.3f (ε=%.2f), overloads %d",
					ratio, eps, r.Send.Overload), ratio <= 1+eps+0.05
			},
		},
		{
			ID:     "naive-catastrophic",
			Claim:  "unscheduled bursts are catastrophically slow under f^u",
			Source: "Section 2 penalty discussion",
			Run: func(seed uint64) (string, bool) {
				p, mm, l := 128, 8, 2
				plan := sched.UniformPlan(xrand.New(seed), p, 32)
				naive := sched.NaiveSend(newBSPmExp(p, mm, l, seed), plan)
				schd := sched.UnbalancedSend(newBSPmExp(p, mm, l, seed), plan, sched.Options{})
				ratio := naive.Time / schd.Time
				return fmt.Sprintf("naive/scheduled = %.3g", ratio), ratio > 1000
			},
		},
		{
			ID:     "bspg-threshold",
			Claim:  "BSP(g) dynamic routing is stable iff β <= 1/g",
			Source: "Theorem 6.5",
			Run: func(seed uint64) (string, bool) {
				p, g, l := 16, 8, 4
				at := func(beta float64) bool {
					lmt := dynamic.Limits{W: 32, Alpha: beta, Beta: beta}
					m := newBSPg(p, g, l, seed)
					return dynamic.RunBSPgInterval(m, dynamic.SingleTargetAdversary{L: lmt}, lmt, 80).LooksStable()
				}
				below, above := at(1.0/float64(g)), at(2.0/float64(g))
				return fmt.Sprintf("stable@1/g=%v, stable@2/g=%v", below, above),
					below && !above
			},
		},
		{
			ID:     "bspm-absorbs-beta-1",
			Claim:  "Algorithm B absorbs local rate β = 1 (g× past the BSP(g) threshold)",
			Source: "Theorem 6.7",
			Run: func(seed uint64) (string, bool) {
				p, g, l := 16, 8, 4
				lmt := dynamic.Limits{W: 32, Alpha: 1, Beta: 1}
				m := newBSPmExp(p, p/g, l, seed)
				res := dynamic.RunAlgorithmB(m, dynamic.SingleTargetAdversary{L: lmt}, lmt, 80, 0.25)
				return fmt.Sprintf("max backlog %d over %d windows", res.MaxBacklog, res.Windows),
					res.LooksStable()
			},
		},
		{
			ID:     "er-cr-gap-grows",
			Claim:  "ER/CR leader-recognition gap grows with p at fixed m",
			Source: "Theorem 5.2 / Lemma 5.3",
			Run: func(seed uint64) (string, bool) {
				mm := 4
				gap := func(p int) float64 {
					cr := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.CRCWArbitrary,
						ROM: problems.LeaderInput(p, p/2), Seed: seed})
					problems.LeaderCR(cr)
					er := pram.New(pram.Config{P: p, Mem: mm, Mode: pram.EREW,
						ROM: problems.LeaderInput(p, p/2), Seed: seed})
					problems.LeaderER(er, mm)
					return er.Time() / cr.Time()
				}
				g1, g2 := gap(256), gap(2048)
				lb := lower.SeparationERCR(2048, mm)
				return fmt.Sprintf("gap %.0f→%.0f (p 256→2048), Ω-bound %.0f", g1, g2, lb),
					g2 > 4*g1 && g2 >= lb
			},
		},
		{
			ID:     "hrelation-linear",
			Claim:  "h-relations route on the CRCW PRAM in O(h) steps",
			Source: "Section 4.1",
			Run: func(seed uint64) (string, bool) {
				p := 32
				stepsPerH := func(h int) float64 {
					plan := make([][]problems.HRelationMsg, p)
					for i := range plan {
						for j := 0; j < h; j++ {
							plan[i] = append(plan[i], problems.HRelationMsg{Dst: (i + j + 1) % p, Val: 1})
						}
					}
					m := pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.CRCWArbitrary, Seed: seed})
					problems.HRelationCRCW(m, plan)
					return m.Time() / float64(h)
				}
				s4, s16 := stepsPerH(4), stepsPerH(16)
				return fmt.Sprintf("steps/h: %.2f at h=4, %.2f at h=16", s4, s16),
					s4 < 8 && s16 < 8
			},
		},
		{
			ID:     "ternary-beats-trees",
			Claim:  "non-receipt broadcast runs in g·⌈log3 p⌉ and beats the Thm 4.1 LB constant",
			Source: "Section 4.2",
			Run: func(seed uint64) (string, bool) {
				p, g, l := 729, 8, 8
				m := newBSPg(p, g, l, seed)
				collective.BroadcastTernaryBSPg(m, 1)
				pred := lower.BroadcastTernaryBSPg(p, g)
				lb := lower.BroadcastLBBSPg(p, g, l)
				return fmt.Sprintf("measured %.0f <= alg bound %.0f, >= LB %.1f", m.Time(), pred, lb),
					m.Time() <= pred && m.Time() >= lb
			},
		},
		{
			ID:     "selfsched-valid",
			Claim:  "self-scheduling BSP(m) algorithms realize on the BSP(m) within (1+ε)",
			Source: "Section 2",
			Run: func(seed uint64) (string, bool) {
				p, mm, l := 256, 64, 4
				plan := sched.ZipfPlan(xrand.New(seed), p, 8192, 1.1)
				ss := newBSPSelfSched(p, mm, l, seed)
				sres := sched.NaiveSend(ss, plan)
				real := newBSPmExp(p, mm, l, seed)
				rres := sched.UnbalancedSend(real, plan, sched.Options{Eps: 0.25, KnownN: sres.N})
				ratio := rres.Time / sres.Time
				return fmt.Sprintf("realized/metric = %.3f", ratio), ratio <= 1.3
			},
		},
	}
}

// Verify runs every check and reports; it returns the number of failures.
func Verify(w io.Writer, seed uint64) int {
	fails := 0
	for _, c := range Checks() {
		detail, ok := c.Run(seed)
		status := "PASS"
		if !ok {
			status = "FAIL"
			fails++
		}
		fmt.Fprintf(w, "[%s] %-28s %s (%s)\n        %s\n", status, c.ID, c.Claim, c.Source, detail)
	}
	return fails
}
