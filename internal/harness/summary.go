package harness

import (
	"fmt"

	"parbw/internal/collective"
	"parbw/internal/lower"
	"parbw/internal/problems"
	"parbw/internal/tablefmt"
	"parbw/internal/xrand"
)

func init() {
	register(Experiment{
		ID:     "table1/summary",
		Title:  "Table 1, measured: all five rows in the paper's shape",
		Source: "Table 1",
		Params: []ParamSpec{
			IntParam("p", 0, "0 = built-in size (4096 full, 256 quick)").Range(0, 1<<20),
		},
		run: runTable1Summary,
	})
}

// runTable1Summary reproduces the paper's Table 1 layout: one row per
// problem, strong (globally-limited) and weak (locally-limited) model times
// side by side with the measured separation and the paper's predicted
// separation shape, all at one configuration per row (chosen inside each
// row's separation regime).
func runTable1Summary(rec *Recorder) {
	cfg := rec.Cfg
	p := rec.IntOr("p", 4096, 256)
	t := tablefmt.New(fmt.Sprintf("Table 1 (measured, n = p = %d, m = p/g)", p),
		"problem", "params", "strong model", "weak model", "measured sep", "paper separation (n=p)")
	wins := 0

	// Row 1: one-to-all personalized communication, g = 16, L = 8.
	{
		g, l := 16, 8
		vals := make([]int64, p)
		lm := newBSPg(p, g, l, cfg.Seed)
		collective.OneToAllBSP(lm, 0, vals)
		gm := newBSPmL(p, p/g, l, cfg.Seed)
		collective.OneToAllBSP(gm, 0, vals)
		if gm.Time() < lm.Time() {
			wins++
		}
		t.Row("One-to-all comm.", fmt.Sprintf("g=%d L=%d", g, l),
			fmt.Sprintf("BSP(m): %.0f", gm.Time()),
			fmt.Sprintf("BSP(g): %.0f", lm.Time()),
			ratioStr(lm.Time(), gm.Time()), fmt.Sprintf("Θ(g) = %d", g))
	}

	// Row 2: broadcasting, g = 8, L = 32.
	{
		g, l := 8, 32
		lm := newBSPg(p, g, l, cfg.Seed)
		collective.BroadcastBSP(lm, 0, 1)
		gm := newBSPmL(p, p/g, l, cfg.Seed)
		collective.BroadcastBSP(gm, 0, 1)
		pred := lower.BroadcastBSPg(p, g, l) / lower.BroadcastBSPm(p, p/g, l)
		if gm.Time() < lm.Time() {
			wins++
		}
		t.Row("Broadcasting", fmt.Sprintf("g=%d L=%d", g, l),
			fmt.Sprintf("BSP(m): %.0f", gm.Time()),
			fmt.Sprintf("BSP(g): %.0f", lm.Time()),
			ratioStr(lm.Time(), gm.Time()),
			fmt.Sprintf("Θ(lgL·lgp/(lg(L/g)·lgm)) ≈ %.1f", pred))
	}

	// Row 3: parity / summation, QSM machines, g = 16.
	{
		g := 16
		rng := xrand.New(cfg.Seed)
		bits := make([]int64, p)
		for i := range bits {
			bits[i] = int64(rng.Intn(2))
		}
		lm := newQSMg(p, 2*p, g, cfg.Seed)
		problems.ParityQSM(lm, bits)
		gm := newQSMmL(p, 2*p, p/g, cfg.Seed)
		problems.ParityQSM(gm, bits)
		if gm.Time() < lm.Time() {
			wins++
		}
		t.Row("Parity, Summation", fmt.Sprintf("g=%d", g),
			fmt.Sprintf("QSM(m): %.0f", gm.Time()),
			fmt.Sprintf("QSM(g): %.0f", lm.Time()),
			ratioStr(lm.Time(), gm.Time()),
			fmt.Sprintf("Ω(lgn/lglgn) ≈ %.1f", lower.Lg(float64(p))/lower.LgLg(float64(p))))
	}

	// Row 4: list ranking, g ≫ L regime.
	{
		g, l := 32, 2
		rng := xrand.New(cfg.Seed)
		list := problems.RandomList(rng, p)
		lm := newBSPg(p, g, l, cfg.Seed)
		problems.ListRankContractBSP(lm, list)
		gm := newBSPmL(p, p/g, l, cfg.Seed)
		problems.ListRankContractBSP(gm, list)
		if gm.Time() < lm.Time() {
			wins++
		}
		t.Row("List ranking", fmt.Sprintf("g=%d L=%d", g, l),
			fmt.Sprintf("BSP(m): %.0f", gm.Time()),
			fmt.Sprintf("BSP(g): %.0f", lm.Time()),
			ratioStr(lm.Time(), gm.Time()),
			fmt.Sprintf("Ω(lgn/lglgn) ≈ %.1f", lower.Lg(float64(p))/lower.LgLg(float64(p))))
	}

	// Row 5: sorting, m = O(n^{1-ε}).
	{
		g, l := 16, 8
		rng := xrand.New(cfg.Seed)
		keys := make([]int64, p)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 1000003)
		}
		q := 1
		for q*2 <= p && p/(q*2) >= 2*(q*2-1)*(q*2-1) {
			q *= 2
		}
		lm := newBSPg(p, g, l, cfg.Seed)
		problems.ColumnsortBSP(lm, keys, q)
		gm := newBSPmL(p, p/g, l, cfg.Seed)
		problems.ColumnsortBSP(gm, keys, q)
		if gm.Time() < lm.Time() {
			wins++
		}
		t.Row("Sorting", fmt.Sprintf("g=%d L=%d q=%d", g, l, q),
			fmt.Sprintf("BSP(m): %.0f", gm.Time()),
			fmt.Sprintf("BSP(g): %.0f", lm.Time()),
			ratioStr(lm.Time(), gm.Time()),
			fmt.Sprintf("Θ(lgn/lglgn) ≈ %.1f", lower.Lg(float64(p))/lower.LgLg(float64(p))))
	}
	rec.Emit(t)
	rec.Verdict("table1/global-wins-all-rows", wins == 5,
		fmt.Sprintf("globally-limited model faster on %d/5 rows at matched aggregate bandwidth", wins))
}
