package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"parbw/internal/xrand"
)

func TestSingleSourceDrains(t *testing.T) {
	res := Run(Config{Sources: 1, Channels: 4, Seed: 1}, [][]int{{0, 1, 2, 3, 4}})
	if res.Delivered != 5 || res.Truncated {
		t.Fatalf("single source failed to drain: %+v", res)
	}
	// Alone on the network: no collisions, one delivery per step.
	if res.Collided != 0 || res.Makespan != 5 {
		t.Fatalf("lone source collided or stalled: %+v", res)
	}
}

func TestAllFlitsDelivered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 2 + int(seed%10)
		x := make([]int, p)
		total := 0
		for i := range x {
			x[i] = rng.Intn(8)
			total += x[i]
		}
		res := Run(Config{Sources: p, Channels: 4, Seed: seed}, NaiveSchedule(x))
		return res.Delivered == total && !res.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleShapes(t *testing.T) {
	x := []int{3, 0, 5}
	nv := NaiveSchedule(x)
	if len(nv[0]) != 3 || len(nv[1]) != 0 || len(nv[2]) != 5 {
		t.Fatal("NaiveSchedule counts wrong")
	}
	if nv[2][4] != 4 {
		t.Fatal("NaiveSchedule not back-to-back")
	}
	rng := xrand.New(2)
	ub := UnbalancedSchedule(rng, x, 2, 0.25)
	if len(ub[0]) != 3 || len(ub[2]) != 5 {
		t.Fatal("UnbalancedSchedule counts wrong")
	}
}

func TestExpectedThroughput(t *testing.T) {
	if ExpectedThroughput(0, 4) != 0 {
		t.Fatal("zero contenders")
	}
	if ExpectedThroughput(1, 4) != 1 {
		t.Fatal("single contender should always deliver")
	}
	// k=m: ≈ m·e^{-1}-ish; monotone collapse beyond.
	m := 16
	peak := ExpectedThroughput(m, m)
	deep := ExpectedThroughput(8*m, m)
	if deep >= peak/10 {
		t.Fatalf("throughput did not collapse: k=m gives %v, k=8m gives %v", peak, deep)
	}
}

// The validation claim: a paced (Unbalanced-Send) schedule completes near
// n/m on the contention network, while the naive burst suffers the
// exponential collapse and takes several times longer.
func TestScheduledBeatsNaiveOnChannels(t *testing.T) {
	p, m := 64, 8
	x := make([]int, p)
	for i := range x {
		x[i] = 16
	}
	n := p * 16
	rng := xrand.New(3)
	// Slotted-ALOHA capacity is m/e, so pace for load 0.2·m (ε = 4): the
	// abstract BSP(m) bandwidth corresponds to an ALOHA network's m/e.
	eps := 4.0
	paced := Run(Config{Sources: p, Channels: m, Seed: 7},
		UnbalancedSchedule(rng, x, m, eps))
	burst := Run(Config{Sources: p, Channels: m, Seed: 7}, NaiveSchedule(x))
	if paced.Truncated || burst.Truncated {
		t.Fatalf("runs truncated: %+v %+v", paced, burst)
	}
	if burst.Makespan < 2*paced.Makespan {
		t.Fatalf("burst (%d) not ≫ paced (%d)", burst.Makespan, paced.Makespan)
	}
	// Paced drains close to its planned period T = (1+ε)n/m.
	T := (1 + eps) * float64(n) / float64(m)
	if float64(paced.Makespan) > 2*T {
		t.Fatalf("paced makespan %d vs planned period %v", paced.Makespan, T)
	}
}

func TestGoodputCollapseMatchesFormula(t *testing.T) {
	// Empirical single-step success rate at k contenders ≈ k(1-1/m)^{k-1}.
	p, m := 64, 8
	x := make([]int, p)
	for i := range x {
		x[i] = 50
	}
	res := Run(Config{Sources: p, Channels: m, Seed: 9}, NaiveSchedule(x))
	// During the long saturated phase all p sources contend; goodput should
	// be near ExpectedThroughput(p, m) per step, which is tiny.
	pred := ExpectedThroughput(p, m)
	if math.Abs(res.Goodput-pred)/math.Max(pred, res.Goodput) > 0.9 {
		t.Fatalf("goodput %v wildly off prediction %v", res.Goodput, pred)
	}
	if res.Goodput > float64(m)/4 {
		t.Fatalf("saturated goodput %v did not collapse (m=%d)", res.Goodput, m)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	Run(Config{Sources: 2, Channels: 0}, make([][]int, 2))
}

func TestPlannedSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched planned accepted")
		}
	}()
	Run(Config{Sources: 3, Channels: 1}, make([][]int, 2))
}

func TestTruncation(t *testing.T) {
	// An impossible drain within 3 steps must report truncation.
	res := Run(Config{Sources: 4, Channels: 1, Seed: 1, MaxSteps: 3},
		NaiveSchedule([]int{5, 5, 5, 5}))
	if !res.Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestBackoffDrains(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 2 + int(seed%10)
		x := make([]int, p)
		total := 0
		for i := range x {
			x[i] = rng.Intn(8)
			total += x[i]
		}
		res := RunBackoff(Config{Sources: p, Channels: 2, Seed: seed}, NaiveSchedule(x), 10)
		return res.Delivered == total && !res.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Backoff rescues the naive burst from the ALOHA death spiral: on a heavy
// burst it finishes orders of magnitude before the no-backoff protocol,
// but a paced schedule still beats both.
func TestBackoffBetweenNaiveAndPaced(t *testing.T) {
	p, m := 64, 8
	x := make([]int, p)
	for i := range x {
		x[i] = 16
	}
	rng := xrand.New(5)
	paced := Run(Config{Sources: p, Channels: m, Seed: 11},
		UnbalancedSchedule(rng, x, m, 4.0))
	burstNoBackoff := Run(Config{Sources: p, Channels: m, Seed: 11}, NaiveSchedule(x))
	burstBackoff := RunBackoff(Config{Sources: p, Channels: m, Seed: 11}, NaiveSchedule(x), 10)
	if burstBackoff.Makespan >= burstNoBackoff.Makespan {
		t.Fatalf("backoff (%d) did not improve on blind retry (%d)",
			burstBackoff.Makespan, burstNoBackoff.Makespan)
	}
	if paced.Makespan >= burstBackoff.Makespan {
		t.Fatalf("paced (%d) lost to backoff burst (%d)", paced.Makespan, burstBackoff.Makespan)
	}
}

func TestBackoffValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	RunBackoff(Config{Sources: 1, Channels: 0}, make([][]int, 1), 4)
}
