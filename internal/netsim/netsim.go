// Package netsim simulates a concrete contention network — p sources
// sharing m Ethernet-like channels, the model of Raghavan & Upfal and
// Goldberg & MacKenzie that the paper's Section 3 compares against — and
// measures the real completion time of an injection schedule on it.
//
// Each time step, every source holding a flit whose scheduled time has
// arrived picks one of the m channels uniformly at random; a channel
// delivers a flit only if exactly one source chose it, and colliding
// sources retry in subsequent steps. With k simultaneous contenders the
// expected throughput is k·(1−1/m)^{k−1} ≈ k·e^{−k/m}: it peaks at m/e
// when k = m and *collapses* exponentially beyond — the slotted-ALOHA
// curve. This is the physical behaviour that the BSP(m)'s pessimistic
// penalty f^u(m_t) = e^{m_t/m − 1} abstracts: an m-channel contention
// network realizes an *effective* aggregate bandwidth of m/e, and a
// schedule is stable on it exactly when its offered per-step load stays
// below that capacity — i.e. Unbalanced-Send pacing with period
// (1+ε)n/m_eff. The validation experiment shows paced schedules draining
// at the planned rate while naive bursts enter the collapse regime and
// take an order of magnitude longer.
package netsim

import (
	"sort"

	"parbw/internal/xrand"
)

// Config describes the channel network.
type Config struct {
	Sources  int    // p
	Channels int    // m
	Seed     uint64 // contention randomness
	// MaxSteps aborts a run that fails to drain (0 = 100·(n + p) steps).
	MaxSteps int
}

// Result reports one network run.
type Result struct {
	Makespan  int     // step at which the last flit was delivered
	Attempts  int     // total channel attempts (including collisions)
	Delivered int     // flits delivered
	Collided  int     // attempts lost to collisions
	MaxQueue  int     // peak per-source backlog
	Truncated bool    // hit MaxSteps before draining
	Goodput   float64 // Delivered / Makespan
}

// Run drains the schedule through the network. planned[i] holds source i's
// flit injection times (any order; sorted internally): source i offers its
// next flit at max(planned time, previous flit's delivery attempt chain),
// one attempt per step.
func Run(cfg Config, planned [][]int) Result {
	if len(planned) != cfg.Sources {
		panic("netsim: planned rows must equal Sources")
	}
	if cfg.Channels < 1 {
		panic("netsim: need at least one channel")
	}
	rng := xrand.New(cfg.Seed)
	queues := make([][]int, cfg.Sources) // remaining planned times, sorted
	total := 0
	for i, ts := range planned {
		qs := append([]int(nil), ts...)
		sort.Ints(qs)
		queues[i] = qs
		total += len(qs)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100 * (total + cfg.Sources + 1)
	}

	var res Result
	pick := make([]int, cfg.Sources) // channel chosen this step, -1 = idle
	count := make([]int, cfg.Channels)
	for t := 0; res.Delivered < total && t < maxSteps; t++ {
		for c := range count {
			count[c] = 0
		}
		offering := 0
		backlog := 0
		for i := range queues {
			pick[i] = -1
			if len(queues[i]) == 0 {
				continue
			}
			ready := 0
			for _, pt := range queues[i] {
				if pt > t { // sorted: the rest are later
					break
				}
				ready++
			}
			backlog += ready
			if ready == 0 {
				continue
			}
			ch := rng.Intn(cfg.Channels)
			pick[i] = ch
			count[ch]++
			offering++
			res.Attempts++
		}
		if backlog > res.MaxQueue {
			res.MaxQueue = backlog
		}
		for i := range queues {
			ch := pick[i]
			if ch < 0 {
				continue
			}
			if count[ch] == 1 {
				queues[i] = queues[i][1:]
				res.Delivered++
				res.Makespan = t + 1
			} else {
				res.Collided++
			}
		}
	}
	if res.Delivered < total {
		res.Truncated = true
		res.Makespan = maxSteps
	}
	if res.Makespan > 0 {
		res.Goodput = float64(res.Delivered) / float64(res.Makespan)
	}
	return res
}

// NaiveSchedule plans every source's flits back-to-back from step 0 — the
// unscheduled burst.
func NaiveSchedule(x []int) [][]int {
	out := make([][]int, len(x))
	for i, k := range x {
		ts := make([]int, k)
		for j := range ts {
			ts[j] = j
		}
		out[i] = ts
	}
	return out
}

// UnbalancedSchedule plans flits with the Theorem 6.2 schedule: source i
// with x_i <= T gets a uniform cyclic start in the period T = (1+ε)n/m;
// overloaded sources start at 0.
func UnbalancedSchedule(rng *xrand.Source, x []int, m int, eps float64) [][]int {
	n := 0
	for _, k := range x {
		n += k
	}
	T := int((1 + eps) * float64(n) / float64(m))
	if T < 1 {
		T = 1
	}
	out := make([][]int, len(x))
	for i, k := range x {
		ts := make([]int, k)
		if k > T {
			for j := range ts {
				ts[j] = j
			}
		} else {
			start := rng.Intn(T)
			for j := range ts {
				ts[j] = (start + j) % T
			}
		}
		out[i] = ts
	}
	return out
}

// ExpectedThroughput returns the per-step expected deliveries when k
// sources contend for m channels: k·(1−1/m)^{k−1}.
func ExpectedThroughput(k, m int) float64 {
	if k <= 0 {
		return 0
	}
	p := 1.0
	base := 1 - 1/float64(m)
	for i := 0; i < k-1; i++ {
		p *= base
	}
	return float64(k) * p
}

// RunBackoff drains the schedule with binary exponential backoff (the
// protocol family studied by Goldberg & MacKenzie in the paper's Section 3
// citations): after a collision a source waits a uniform number of steps
// in [0, 2^c) where c is its collision count (capped), instead of retrying
// immediately. Backoff stabilizes moderate overloads without global
// coordination — the decentralized alternative to Unbalanced-Send's
// schedule — at the price of idle steps at low load.
func RunBackoff(cfg Config, planned [][]int, maxExp int) Result {
	if len(planned) != cfg.Sources {
		panic("netsim: planned rows must equal Sources")
	}
	if cfg.Channels < 1 {
		panic("netsim: need at least one channel")
	}
	if maxExp < 1 {
		maxExp = 10
	}
	rng := xrand.New(cfg.Seed)
	queues := make([][]int, cfg.Sources)
	total := 0
	for i, ts := range planned {
		qs := append([]int(nil), ts...)
		sort.Ints(qs)
		queues[i] = qs
		total += len(qs)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1000 * (total + cfg.Sources + 1)
	}

	var res Result
	pick := make([]int, cfg.Sources)
	count := make([]int, cfg.Channels)
	waitUntil := make([]int, cfg.Sources) // backoff deadline per source
	collisions := make([]int, cfg.Sources)
	for t := 0; res.Delivered < total && t < maxSteps; t++ {
		for c := range count {
			count[c] = 0
		}
		backlog := 0
		for i := range queues {
			pick[i] = -1
			if len(queues[i]) == 0 {
				continue
			}
			ready := 0
			for _, pt := range queues[i] {
				if pt > t {
					break
				}
				ready++
			}
			backlog += ready
			if ready == 0 || t < waitUntil[i] {
				continue
			}
			ch := rng.Intn(cfg.Channels)
			pick[i] = ch
			count[ch]++
			res.Attempts++
		}
		if backlog > res.MaxQueue {
			res.MaxQueue = backlog
		}
		for i := range queues {
			ch := pick[i]
			if ch < 0 {
				continue
			}
			if count[ch] == 1 {
				queues[i] = queues[i][1:]
				res.Delivered++
				res.Makespan = t + 1
				collisions[i] = 0
			} else {
				res.Collided++
				if collisions[i] < maxExp {
					collisions[i]++
				}
				waitUntil[i] = t + 1 + rng.Intn(1<<collisions[i])
			}
		}
	}
	if res.Delivered < total {
		res.Truncated = true
		res.Makespan = maxSteps
	}
	if res.Makespan > 0 {
		res.Goodput = float64(res.Delivered) / float64(res.Makespan)
	}
	return res
}
