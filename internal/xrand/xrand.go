// Package xrand provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Every randomized component of the library (processor programs, schedulers,
// adversaries, workload generators) draws from an xrand.Source derived from a
// single experiment seed, so that an entire experiment is reproducible from
// that one seed while different logical streams (e.g. each of the p simulated
// processors) remain statistically independent.
//
// The generator is SplitMix64 followed by xoshiro-style output mixing; it is
// not cryptographically secure, which is fine for simulation.
package xrand

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Source is a small, fast, deterministic PRNG. The zero value is a valid
// source seeded with 0. Source is not safe for concurrent use; derive one
// per goroutine with Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// splitmix64 advances a 64-bit state and returns a mixed output. It is the
// reference SplitMix64 step function.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	return splitmix64(&s.state)
}

// Derive returns an independent Source for a (seed, label) pair: the stream
// state is the first 8 bytes of SHA-256(seed as 8 little-endian bytes ||
// label). Distinct labels under one seed yield statistically independent
// streams, and the mapping is byte-stable across platforms and Go versions —
// it depends only on SHA-256 and a fixed little-endian encoding, never on
// host endianness, map order, or hash/maphash process seeds.
//
// Derive is the canonical way to fan one experiment seed out into per-axis
// sub-streams ("workgen/hrel/slots", "contention/m=8", ...). Prefer it over
// ad-hoc arithmetic like New(seed + k): offset seeds produce overlapping
// SplitMix64 sequences (stream k's output is stream k+1's shifted by one),
// while labeled derivation gives every axis its own independent stream and
// names it for debugging.
func Derive(seed uint64, label string) *Source {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(label))
	var sum [sha256.Size]byte
	return &Source{state: binary.LittleEndian.Uint64(h.Sum(sum[:0]))}
}

// Split derives an independent child stream identified by id. Two children
// with distinct ids, or a child and its parent, produce statistically
// independent sequences. Split does not advance the parent.
func (s *Source) Split(id uint64) *Source {
	child := new(Source)
	s.SplitInto(id, child)
	return child
}

// SplitInto writes the child stream Split(id) would return into dst without
// allocating. It exists for columnar engines that derive per-processor
// sources lazily into a flat array: SplitInto(i, &col[i]) yields a source
// byte-for-byte identical to Split(i). Split does not advance the parent.
func (s *Source) SplitInto(id uint64, dst *Source) {
	// Mix the parent state with the id through two rounds so that adjacent
	// ids do not yield correlated child seeds.
	st := s.state ^ (id+1)*0xd1342543de82ef95
	_ = splitmix64(&st)
	_ = splitmix64(&st)
	dst.state = st
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Bool returns a uniform boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Zipf draws from a bounded Zipf distribution over [0, n) with exponent
// alpha > 0 using inverse-CDF over precomputed weights. For repeated draws
// prefer NewZipf.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over [0, n) with exponent alpha.
// Rank 0 is the most likely value. It panics if n <= 0 or alpha < 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if alpha < 0 {
		panic("xrand: NewZipf with negative alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
