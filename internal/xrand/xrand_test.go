package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(0)
	c2 := root.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("adjacent split ids produced identical first draws")
	}
	// Split must not advance the parent.
	before := *root
	_ = root.Split(99)
	if *root != before {
		t.Fatal("Split advanced the parent state")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(5)
	b := New(9).Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal splits diverged at draw %d", i)
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(99, "workgen/dag/edges")
	b := Derive(99, "workgen/dag/edges")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal (seed,label) derivations diverged at draw %d", i)
		}
	}
}

func TestDeriveLabelIndependence(t *testing.T) {
	// Distinct labels under one seed, and one label under distinct seeds,
	// must yield unrelated streams: no identical draws in a short prefix.
	pairs := [][2]*Source{
		{Derive(7, "shape"), Derive(7, "slots")},
		{Derive(7, "shape"), Derive(8, "shape")},
		{Derive(7, "a"), Derive(7, "ab")}, // prefix labels must not collide
		{Derive(7, "shape"), New(7)},      // derived vs raw seed
	}
	for pi, p := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if p[0].Uint64() == p[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("pair %d: %d identical draws between supposedly independent streams", pi, same)
		}
	}
}

func TestDeriveNotOffsetCorrelated(t *testing.T) {
	// The ad-hoc New(seed+k) idiom produces streams that are shifted copies
	// of each other (stream k's second draw equals stream k+1's first).
	// Derive must not have that property for "adjacent" labels.
	a := Derive(3, "m=1")
	b := Derive(3, "m=2")
	af := a.Uint64()
	as := a.Uint64()
	bf := b.Uint64()
	if as == bf || af == bf {
		t.Fatal("adjacent labels produced shifted/identical streams")
	}
}

func TestDeriveByteStability(t *testing.T) {
	// Golden values pin the exact (seed,label) -> stream mapping. They must
	// never change: corpus seeds, golden experiment outputs, and checked-in
	// counterexamples all depend on this mapping being stable across
	// platforms and releases. The mapping is pure SHA-256 over a fixed
	// little-endian encoding, so these values are host-independent.
	cases := []struct {
		seed   uint64
		label  string
		first  uint64
		second uint64
	}{
		{0, "", 0x175a373c860e188b, 0x5c4236fa0b679db0},
		{1, "workgen/hrel/slots", 0x8c0e678ab74a586e, 0x8fa3c03c329c2092},
		{1, "workgen/hrel/shape", 0x01bcbcc2544dfbfc, 0x8cbbc66513c97ee6},
		{42, "contention/m=8", 0x91a937a627af3083, 0x550f302b92784be0},
		{18446744073709551615, "x", 0xa1ddc06c60d82989, 0x831cf6d31ea0cf8a},
	}
	for _, c := range cases {
		s := Derive(c.seed, c.label)
		if got := s.Uint64(); got != c.first {
			t.Errorf("Derive(%d, %q) first draw = %#x, want %#x", c.seed, c.label, got, c.first)
		}
		if got := s.Uint64(); got != c.second {
			t.Errorf("Derive(%d, %q) second draw = %#x, want %#x", c.seed, c.label, got, c.second)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const buckets, n = 8, 80000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(200)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(11)
	n := 64
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	s.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, n)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate value %d after Shuffle", v)
		}
		seen[v] = true
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	const rate, n = 2.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(13)
	z := NewZipf(s, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		r := z.Draw()
		if r < 0 || r >= 100 {
			t.Fatalf("Zipf draw %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Fatal("Zipf degenerate counts")
	}
}

func TestZipfAlphaZeroUniformish(t *testing.T) {
	s := New(14)
	z := NewZipf(s, 10, 0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for r, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Fatalf("alpha=0 rank %d count %d not uniform", r, c)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(15)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-n/2) > 5*math.Sqrt(n/4) {
		t.Fatalf("Bool trues = %d of %d", trues, n)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNewZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 0, 1) },
		func() { NewZipf(New(1), 5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad Zipf params accepted")
				}
			}()
			fn()
		}()
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
