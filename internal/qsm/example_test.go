package qsm_test

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/qsm"
)

// Example shows one QSM(m) phase: eight processors publish values with
// requests spread two per step (m = 2), then a second phase reads them.
// Phase costs are max(w, h, κ, c_m).
func Example() {
	m := qsm.New(qsm.Config{P: 8, Mem: 8, Cost: func() model.Cost {
		c := model.QSMm(2)
		c.Penalty = model.LinearPenalty
		return c
	}(), Seed: 1})
	st := m.Phase(func(c *qsm.Ctx) {
		c.WriteAt(c.ID()/2, c.ID(), int64(c.ID()*3))
	})
	fmt.Printf("write phase cost %v (c_m=%v)\n", st.Cost, st.CM)
	var got int64
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() == 0 {
			got = c.Read(5)
		}
	})
	fmt.Println("read back:", got)
	// Output:
	// write phase cost 4 (c_m=4)
	// read back: 15
}
