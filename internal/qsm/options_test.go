package qsm

import (
	"testing"

	"parbw/internal/engine"
	"parbw/internal/model"
)

// A machine built from engine.Options must behave identically to one built
// from the equivalent Config.
func TestNewFromOptionsEquivalent(t *testing.T) {
	run := func(m *Machine) model.Time {
		p := m.P()
		for s := 0; s < 3; s++ {
			m.Phase(func(c *Ctx) {
				c.Charge(1)
				c.Read(c.RNG().Intn(p))
				c.Write(p+c.ID(), int64(c.ID()))
			})
		}
		return m.Time()
	}
	cases := []struct {
		name string
		cfg  Config
		opts engine.Options
	}{
		{"qsmm", Config{P: 16, Mem: 32, Cost: model.QSMm(4), Seed: 5}, engine.Options{Procs: 16, Mem: 32, M: 4, Seed: 5}},
		{"qsmg", Config{P: 16, Mem: 32, Cost: model.QSMg(4), Seed: 5}, engine.Options{Procs: 16, Mem: 32, G: 4, Seed: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := New(tc.cfg), New(tc.opts)
			if a.Cost().Kind != b.Cost().Kind {
				t.Fatalf("cost kinds differ: %v vs %v", a.Cost().Kind, b.Cost().Kind)
			}
			ta, tb := run(a), run(b)
			if ta != tb {
				t.Fatalf("model time differs: Config %g vs Options %g", ta, tb)
			}
			if a.Last() != b.Last() {
				t.Fatalf("final stats differ: %+v vs %+v", a.Last(), b.Last())
			}
		})
	}
}
