package qsm

import (
	"testing"

	"parbw/internal/model"
)

// benchMachine builds a single-worker machine plus a representative phase
// program: every processor reads from the low half of memory and writes its
// private cell in the high half (QSM forbids reading and writing the same
// location in one phase). The program closure is hoisted so that per-call
// closure allocation does not mask the machine's own behavior.
func benchMachine(p int) (*Machine, func()) {
	m := New(Config{P: p, Mem: 2 * p, Cost: model.QSMm(32), Seed: 1, Workers: 1})
	body := func(c *Ctx) {
		c.Charge(4)
		c.Read((c.ID() + 1) % p)
		c.Write(p+c.ID(), int64(c.ID()))
	}
	return m, func() { m.Phase(body) }
}

func BenchmarkSuperstepMerge(b *testing.B) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// The merge path recycles its histogram and contention scratch; after warmup
// a phase must not allocate at all.
const phaseAllocBudget = 0

func TestSuperstepMergeAllocs(t *testing.T) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	avg := testing.AllocsPerRun(50, step)
	if avg > phaseAllocBudget {
		t.Errorf("phase allocates %.1f objects/op, budget %d", avg, phaseAllocBudget)
	}
}
