package qsm

import (
	"testing"
	"testing/quick"

	"parbw/internal/model"
)

// Metamorphic properties of the QSM cost accounting.

// Adding a request never decreases phase cost, under either model.
func TestQSMCostMonotoneInRequests(t *testing.T) {
	costs := []model.Cost{model.QSMg(4), model.QSMm(4)}
	f := func(seed uint64) bool {
		p := 8
		k := int(seed % 4)
		for _, cost := range costs {
			run := func(extra bool) float64 {
				m := New(Config{P: p, Mem: 64, Cost: cost, Seed: seed})
				m.Phase(func(c *Ctx) {
					for j := 0; j < k; j++ {
						c.WriteAt(j, c.ID()*8+j, 1)
					}
					if extra && c.ID() == 0 {
						c.WriteAt(k, 60, 5)
					}
				})
				return m.Time()
			}
			if run(true) < run(false)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Raising contention (more readers of one cell) never decreases cost.
func TestQSMCostMonotoneInContention(t *testing.T) {
	f := func(seed uint64) bool {
		p := 16
		readers := 1 + int(seed%15)
		run := func(r int) float64 {
			m := New(Config{P: p, Mem: 4, Cost: model.QSMg(2), Seed: seed})
			m.Phase(func(c *Ctx) {
				if c.ID() < r {
					c.Read(0)
				}
			})
			return m.Time()
		}
		return run(readers) <= run(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Worker-count invariance: engine concurrency must be invisible.
func TestQSMWorkerInvariance(t *testing.T) {
	run := func(workers int) (int64, float64) {
		m := New(Config{P: 64, Mem: 128, Cost: model.QSMm(8), Seed: 3, Workers: workers})
		m.Phase(func(c *Ctx) {
			c.WriteAt(c.ID()%8, c.ID(), int64(c.RNG().Intn(100)))
		})
		var sum int64
		for a := 0; a < 128; a++ {
			sum += m.Load(a)
		}
		return sum, m.Time()
	}
	s1, t1 := run(1)
	s8, t8 := run(8)
	if s1 != s8 || t1 != t8 {
		t.Fatalf("worker count changed outcome: (%d,%v) vs (%d,%v)", s1, t1, s8, t8)
	}
}

// The final memory state depends only on the writes, not on the phase's
// request step assignment (slots affect cost, not semantics).
func TestQSMSlotsDoNotAffectSemantics(t *testing.T) {
	run := func(stagger bool) []int64 {
		m := New(Config{P: 16, Mem: 16, Cost: model.QSMm(4), Seed: 5})
		m.Phase(func(c *Ctx) {
			slot := 0
			if stagger {
				slot = c.ID() % 4
			}
			c.WriteAt(slot, c.ID(), int64(c.ID()*3))
		})
		out := make([]int64, 16)
		for a := range out {
			out[a] = m.Load(a)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot assignment changed memory at %d", i)
		}
	}
}
