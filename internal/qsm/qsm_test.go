package qsm

import (
	"testing"
	"testing/quick"

	"parbw/internal/model"
)

func newQSMg(p, mem, g int) *Machine {
	return New(Config{P: p, Mem: mem, Cost: model.QSMg(g), Seed: 1})
}

func newQSMmLin(p, mem, m int) *Machine {
	c := model.QSMm(m)
	c.Penalty = model.LinearPenalty
	return New(Config{P: p, Mem: mem, Cost: c, Seed: 1})
}

func TestWriteVisibleNextPhase(t *testing.T) {
	m := newQSMg(2, 4, 1)
	m.Phase(func(c *Ctx) {
		if c.ID() == 0 {
			c.Write(2, 77)
		}
	})
	var got int64
	m.Phase(func(c *Ctx) {
		if c.ID() == 1 {
			got = c.Read(2)
		}
	})
	if got != 77 {
		t.Fatalf("read %d, want 77", got)
	}
}

func TestReadsSeePhaseStartSnapshot(t *testing.T) {
	m := newQSMg(2, 4, 1)
	m.Store(0, 5)
	var seen int64 = -1
	m.Phase(func(c *Ctx) {
		switch c.ID() {
		case 0:
			c.Write(1, 9) // write to a different cell than the read below
		case 1:
			seen = c.Read(0)
		}
	})
	if seen != 5 {
		t.Fatalf("read %d, want phase-start value 5", seen)
	}
}

func TestArbitraryWriteHighestWins(t *testing.T) {
	m := newQSMg(4, 2, 1)
	m.Phase(func(c *Ctx) {
		c.Write(0, int64(c.ID()+100))
	})
	if got := m.Load(0); got != 103 {
		t.Fatalf("winner = %d, want 103 (highest-numbered writer)", got)
	}
}

func TestContentionKappa(t *testing.T) {
	m := newQSMg(8, 4, 2)
	st := m.Phase(func(c *Ctx) {
		c.Read(1) // all 8 read one location
	})
	// κ = 8, h = 1, cost = max(0, g·1=2, 8) = 8.
	if st.Kappa != 8 || st.Cost != 8 {
		t.Fatalf("stats = %+v, want Kappa=8 Cost=8", st)
	}
}

func TestQSMgHCost(t *testing.T) {
	m := newQSMg(4, 64, 3)
	st := m.Phase(func(c *Ctx) {
		for j := 0; j < 5; j++ {
			c.Read(c.ID()*8 + j) // distinct cells: κ = 1, h = 5
		}
	})
	if st.H != 5 || st.Cost != 15 {
		t.Fatalf("stats = %+v, want H=5 Cost=15", st)
	}
}

func TestReadWriteSameCellPanics(t *testing.T) {
	m := newQSMg(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("read+write same location did not panic")
		}
	}()
	m.Phase(func(c *Ctx) {
		if c.ID() == 0 {
			c.Read(1)
		} else {
			c.Write(1, 3)
		}
	})
}

func TestQSMmScheduledCost(t *testing.T) {
	m := newQSMmLin(8, 16, 2)
	// 8 processors each issue one request, two per step across 4 steps:
	// c_m = 4; h = 1; κ = 1; cost = 4.
	st := m.Phase(func(c *Ctx) {
		c.WriteAt(c.ID()/2, c.ID(), int64(c.ID()))
	})
	if st.CM != 4 || st.Cost != 4 || st.MaxSlot != 2 {
		t.Fatalf("stats = %+v, want CM=4 Cost=4 MaxSlot=2", st)
	}
}

func TestQSMmOverload(t *testing.T) {
	m := newQSMmLin(8, 16, 2)
	st := m.Phase(func(c *Ctx) {
		c.WriteAt(0, c.ID(), 1) // all 8 requests in step 0
	})
	if st.CM != 4 || st.Overload != 1 {
		t.Fatalf("stats = %+v, want CM=4 Overload=1", st)
	}
}

func TestOneRequestPerStepEnforced(t *testing.T) {
	m := newQSMmLin(2, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("two requests in one step did not panic")
		}
	}()
	m.Phase(func(c *Ctx) {
		if c.ID() == 0 {
			c.ReadAt(3, 0)
			c.WriteAt(3, 1, 5)
		}
	})
}

func TestIdlePhaseCost(t *testing.T) {
	m := newQSMg(4, 4, 5)
	st := m.Phase(func(c *Ctx) { c.Charge(2) })
	// h floored at 1: cost = max(w=2, g·1=5, κ=0) = 5.
	if st.Cost != 5 {
		t.Fatalf("idle cost = %v, want 5", st.Cost)
	}
}

func TestLocalWorkDominates(t *testing.T) {
	m := newQSMg(4, 4, 1)
	st := m.Phase(func(c *Ctx) {
		if c.ID() == 2 {
			c.Charge(40)
		}
	})
	if st.W != 40 || st.Cost != 40 {
		t.Fatalf("stats = %+v, want W=40 Cost=40", st)
	}
}

func TestInvalidAddressPanics(t *testing.T) {
	m := newQSMg(2, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid address did not panic")
		}
	}()
	m.Phase(func(c *Ctx) { c.Read(4) })
}

func TestBSPKindRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BSP cost on qsm.New did not panic")
		}
	}()
	New(Config{P: 2, Mem: 2, Cost: model.BSPg(1, 1)})
}

func TestReset(t *testing.T) {
	m := newQSMg(2, 4, 1)
	m.Phase(func(c *Ctx) { c.Write(0, 9) })
	m.Reset()
	if m.Load(0) != 0 || m.Time() != 0 || m.Phases() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestTrace(t *testing.T) {
	m := New(Config{P: 2, Mem: 2, Cost: model.QSMg(1), Seed: 1, Trace: true})
	m.Phase(func(c *Ctx) {})
	if len(m.Trace()) != 1 {
		t.Fatal("trace not retained")
	}
}

// Property: concurrent reads return the stored value for all readers, and κ
// equals the reader count when all processors read one cell.
func TestConcurrentReadConsistency(t *testing.T) {
	f := func(seed uint64, val int64) bool {
		p := int(seed%7) + 2
		m := New(Config{P: p, Mem: 4, Cost: model.QSMg(1), Seed: seed})
		m.Store(3, val)
		vals := make([]int64, p)
		st := m.Phase(func(c *Ctx) {
			vals[c.ID()] = c.Read(3)
		})
		if st.Kappa != p {
			return false
		}
		for _, v := range vals {
			if v != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with equal aggregate bandwidth and a balanced schedule, the
// QSM(m) phase never costs more than the QSM(g) phase for the same accesses
// (the Section 4 grouped emulation).
func TestGroupedEmulationDominance(t *testing.T) {
	f := func(seed uint64) bool {
		g := 1 << (seed % 4) // 1, 2, 4 or 8 — must divide p
		p := 16
		mBW := p / g
		lm := New(Config{P: p, Mem: p, Cost: model.QSMg(g), Seed: seed})
		gm := newQSMmLin(p, p, mBW)
		lm.Phase(func(c *Ctx) { c.Write(c.ID(), 1) })
		gm.Phase(func(c *Ctx) {
			// Emulation: processor i issues its request in substep i / m.
			c.WriteAt(c.ID()/mBW, c.ID(), 1)
		})
		return gm.Time() <= lm.Time()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChargeTime(t *testing.T) {
	m := newQSMg(2, 2, 1)
	m.ChargeTime(3.5)
	if m.Time() != 3.5 {
		t.Fatal("ChargeTime not applied")
	}
}
