// Package qsm simulates the Queuing Shared Memory machines of Gibbons,
// Matias & Ramachandran under the locally-limited QSM(g) and the
// globally-limited QSM(m) cost models of the SPAA 1997 bandwidth paper.
//
// A Machine owns p processors and a flat shared memory of int64 words.
// An algorithm is a sequence of Phase calls. Within a phase each processor
// may read and write shared-memory locations and perform local computation;
// reads observe the memory as of the start of the phase (the model specifies
// that a value returned by a read is usable only in a subsequent phase — the
// engine realizes this by buffering all writes until the end of the phase),
// and concurrent writes to one location are resolved by the Arbitrary rule.
// Reading and writing the same location within one phase is a model
// violation and panics.
//
// Cost per phase: QSM(g) charges max(w, g·h, κ); QSM(m) charges
// max(w, h, κ, c_m) where c_m is computed from the exact per-step request
// histogram (processors schedule requests into steps via ReadAt/WriteAt, at
// most one request per processor per step).
//
// The phase loop itself — context lifecycle, worker-pool fan-out, clock and
// trace commit, observer fan-out — lives in internal/engine; this package
// contributes the QSM-specific merge strategy (request validation,
// contention accounting, write resolution, cost accounting).
package qsm

import (
	"fmt"
	"slices"

	"parbw/internal/engine"
	"parbw/internal/model"
	"parbw/internal/xrand"
)

// Stats describes one executed phase.
type Stats struct {
	W        int        // maximum local work over processors
	H        int        // max over processors of max(reads, writes), at least 1
	Reads    int        // total read requests
	Writes   int        // total write requests
	Kappa    int        // maximum per-location contention
	Steps    int        // number of request steps spanned
	MaxSlot  int        // maximum per-step request count
	Overload int        // steps with more than m requests (QSM(m) only)
	CM       model.Time // c_m (QSM(m) only)
	Cost     model.Time // phase cost under the machine's model
}

// Config configures a Machine with an explicit model.Cost. It is the
// low-level construction surface; most callers should build machines from
// the cross-machine engine.Options instead (see New).
type Config struct {
	P       int        // processors
	Mem     int        // shared-memory words
	Cost    model.Cost // must be a QSM kind
	Seed    uint64
	Workers int
	Trace   bool
	// Observer, if non-nil, receives a normalized engine.StepStats callback
	// after every phase (Machine.Attach adds more).
	Observer engine.Observer
}

// request is a buffered shared-memory access.
type request struct {
	slot  int
	addr  int
	val   int64
	write bool
}

// Machine is a simulated QSM machine. Methods must be called from a single
// driver goroutine.
//
// Per-processor state is columnar: counters and cursors live in flat
// engine.Cols arrays indexed by processor id, and buffered requests live in
// O(cores) chunk-local arenas addressed by the Off/Cnt columns, so machine
// memory is O(p) flat words plus O(cores) objects — never O(p) objects.
type Machine struct {
	p    int
	mem  []int64
	cost model.Cost
	core *engine.Core[Stats]
	cols *engine.Cols

	// shards are the chunk-local request arenas: chunk r of the fan-out (the
	// contiguous processors [r·width, (r+1)·width)) appends its requests to
	// shards[r].buf, recycled across phases. Each shard also carries the one
	// Ctx its chunk's programs share.
	width  int
	shards []shard

	// scratch contention counters indexed by address, plus the touched
	// addresses of the current phase, reused across phases
	rdCount, wrCount []int
	touched          []int

	// fn is the program of the phase in flight; body and mergeFn are the
	// closures handed to the engine core, built once so that Phase itself is
	// allocation-free.
	fn      func(c *Ctx)
	body    func(lo, hi int)
	mergeFn func() (Stats, engine.StepStats)
}

// shard is one chunk's recycled request arena plus the Ctx view its programs
// run under. Chunks are disjoint contiguous processor ranges, so a shard is
// only ever touched by the one goroutine running its chunk.
type shard struct {
	buf []request
	ctx Ctx
}

// reqs returns processor i's buffered run inside its shard's arena.
func (m *Machine) reqs(i int) []request {
	off := m.cols.Off[i]
	return m.shards[i/m.width].buf[off : off+m.cols.Cnt[i]]
}

// New constructs a Machine from either the package-native Config or the
// cross-machine engine.Options surface (engine.Options selects QSM(m) when
// M > 0, QSM(g) otherwise; see its docs). It panics on invalid
// configuration.
func New[C Config | engine.Options](cfg C) *Machine {
	if o, ok := any(cfg).(engine.Options); ok {
		return newMachine(Config{
			P:        o.Procs,
			Mem:      o.Mem,
			Cost:     o.QSMCost(),
			Seed:     o.Seed,
			Workers:  o.Workers,
			Trace:    o.Trace,
			Observer: o.Observer,
		})
	}
	return newMachine(any(cfg).(Config))
}

func newMachine(cfg Config) *Machine {
	if !cfg.Cost.SharedMemory() {
		panic(fmt.Sprintf("qsm: cost model %v is not a QSM kind", cfg.Cost.Kind))
	}
	if err := cfg.Cost.Validate(cfg.P); err != nil {
		panic("qsm: " + err.Error())
	}
	if cfg.Mem < 1 {
		panic("qsm: Mem must be >= 1")
	}
	m := &Machine{
		p:       cfg.P,
		mem:     make([]int64, cfg.Mem),
		cost:    cfg.Cost,
		core:    engine.NewCore[Stats]("qsm", cfg.P, cfg.Workers, cfg.Trace),
		cols:    engine.NewCols(cfg.P, cfg.Seed),
		rdCount: make([]int, cfg.Mem),
		wrCount: make([]int, cfg.Mem),
	}
	m.core.Attach(cfg.Observer)
	width, chunks := m.core.ChunkPlan(cfg.P)
	m.width = width
	m.shards = make([]shard, chunks)
	for r := range m.shards {
		m.shards[r].ctx = Ctx{m: m, sh: &m.shards[r]}
	}
	m.body = func(lo, hi int) {
		sh := &m.shards[lo/m.width]
		sh.buf = sh.buf[:0]
		c := &sh.ctx
		cols := m.cols
		for i := lo; i < hi; i++ {
			cols.ResetProc(i)
			cols.Off[i] = int32(len(sh.buf))
			cols.Cnt[i] = 0
			c.id = i
			m.fn(c)
		}
	}
	m.mergeFn = m.merge
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Mem returns the shared-memory size in words.
func (m *Machine) Mem() int { return len(m.mem) }

// Cost returns the machine's cost model.
func (m *Machine) Cost() model.Cost { return m.cost }

// Time returns the accumulated simulated time.
func (m *Machine) Time() model.Time { return m.core.Time() }

// Phases returns the number of phases executed.
func (m *Machine) Phases() int { return m.core.Steps() }

// Last returns the Stats of the most recent phase.
func (m *Machine) Last() Stats { return m.core.Last() }

// Trace returns retained per-phase Stats (nil unless Config.Trace).
func (m *Machine) Trace() []Stats { return m.core.Trace() }

// Attach registers an observer for this machine's phases.
func (m *Machine) Attach(obs engine.Observer) { m.core.Attach(obs) }

// ChargeTime adds simulated time outside any phase.
func (m *Machine) ChargeTime(t model.Time) { m.core.ChargeTime(t) }

// Load reads shared memory directly, free of model charge (setup and
// inspection only).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes shared memory directly, free of model charge (input placement
// and tests only).
func (m *Machine) Store(addr int, val int64) { m.mem[addr] = val }

// Ctx is the per-processor view of the current phase. It is a thin
// index-plus-pointer view: the state it reads and writes lives in the
// machine's columnar arrays and its chunk's request arena.
type Ctx struct {
	id int
	m  *Machine
	sh *shard
}

// ID returns this processor's index.
func (c *Ctx) ID() int { return c.id }

// P returns the machine's processor count.
func (c *Ctx) P() int { return c.m.p }

// RNG returns this processor's private deterministic random source. The
// source persists across phases (it is derived lazily on first use,
// byte-for-byte identical to an eager per-processor split of the seed).
func (c *Ctx) RNG() *xrand.Source { return c.m.cols.RNG(c.id) }

// Charge records units of local computation performed this phase.
func (c *Ctx) Charge(units int) {
	if units > 0 {
		c.m.cols.Work[c.id] += units
	}
}

// Read issues a read of addr in this processor's next free request step and
// returns the value the location held at the start of the phase.
func (c *Ctx) Read(addr int) int64 { return c.ReadAt(c.m.cols.AutoSlot[c.id], addr) }

// ReadAt issues a read of addr in request step slot.
func (c *Ctx) ReadAt(slot, addr int) int64 {
	c.addReq(slot, addr, 0, false)
	return c.m.mem[addr]
}

// Write issues a write of val to addr in this processor's next free request
// step. The write takes effect at the end of the phase; concurrent writers
// to one location are resolved by the Arbitrary rule (in this engine, the
// highest-numbered writing processor deterministically wins).
func (c *Ctx) Write(addr int, val int64) { c.WriteAt(c.m.cols.AutoSlot[c.id], addr, val) }

// WriteAt issues a write in request step slot.
func (c *Ctx) WriteAt(slot, addr int, val int64) {
	c.addReq(slot, addr, val, true)
}

// addReq is the per-request hot path; the panics live in separate functions
// so that it stays within the inlining budget, and the request is written in
// place in the chunk's arena rather than appended by value.
func (c *Ctx) addReq(slot, addr int, val int64, write bool) {
	if slot < 0 {
		c.badSlot(slot)
	}
	if addr < 0 || addr >= len(c.m.mem) {
		c.badAddr(addr)
	}
	buf := c.sh.buf
	n := len(buf)
	if n == cap(buf) {
		buf = append(buf, request{})
	} else {
		buf = buf[:n+1]
	}
	r := &buf[n]
	r.slot = slot
	r.addr = addr
	r.val = val
	r.write = write
	c.sh.buf = buf
	cols := c.m.cols
	cols.Cnt[c.id]++
	if slot+1 > cols.AutoSlot[c.id] {
		cols.AutoSlot[c.id] = slot + 1
	}
}

//go:noinline
func (c *Ctx) badSlot(slot int) {
	panic(fmt.Sprintf("qsm: proc %d request at negative slot %d", c.id, slot))
}

//go:noinline
func (c *Ctx) badAddr(addr int) {
	panic(fmt.Sprintf("qsm: proc %d access to invalid address %d (mem=%d)", c.id, addr, len(c.m.mem)))
}

// Phase executes fn for every processor, applies buffered writes, computes
// contention and cost, and advances the clock. It returns the phase Stats.
func (m *Machine) Phase(fn func(c *Ctx)) Stats {
	m.fn = fn
	st := m.core.Step(m.body, m.mergeFn)
	m.fn = nil
	return st
}

// insertionSortMax bounds the request-schedule length handled by the
// inlined insertion sort; longer schedules fall back to the library sort.
const insertionSortMax = 32

// merge is the QSM merge strategy: it validates request schedules, computes
// contention κ, applies buffered writes, and prices the phase. Processors
// are walked in ascending id order via their arena runs, so every
// order-sensitive outcome (the Arbitrary write rule, panic attribution) is
// identical for any worker count.
func (m *Machine) merge() (Stats, engine.StepStats) {
	var st Stats
	m.touched = m.touched[:0]
	cols := m.cols

	maxStep := 0
	for i := 0; i < m.p; i++ {
		if w := cols.Work[i]; w > st.W {
			st.W = w
		}
		reqs := m.reqs(i)
		nr, nw := 0, 0
		for k := range reqs {
			if reqs[k].write {
				nw++
			} else {
				nr++
			}
		}
		hi := nr
		if nw > hi {
			hi = nw
		}
		if hi > st.H {
			st.H = hi
		}
		st.Reads += nr
		st.Writes += nw
		// Validate one request per processor per step: sort by slot, then
		// reject duplicates. Inlined on the concrete request type (the
		// generic closure-based engine.CheckSchedule dominated the
		// pre-rework phase-merge profile); short schedules take the
		// allocation-free insertion sort. Slots are strictly increasing
		// after a valid sort, so the processor's step span is the last
		// request's slot.
		if n := len(reqs); n > 1 {
			if n <= insertionSortMax {
				for a := 1; a < n; a++ {
					for j := a; j > 0 && reqs[j].slot < reqs[j-1].slot; j-- {
						reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
					}
				}
			} else {
				slices.SortFunc(reqs, func(a, b request) int { return a.slot - b.slot })
			}
		}
		prevSlot := -1
		for k := range reqs {
			r := &reqs[k]
			if r.slot == prevSlot {
				panic(fmt.Sprintf("qsm: proc %d issues two requests in step %d", i, r.slot))
			}
			prevSlot = r.slot
			if m.rdCount[r.addr] == 0 && m.wrCount[r.addr] == 0 {
				m.touched = append(m.touched, r.addr)
			}
			if r.write {
				m.wrCount[r.addr]++
			} else {
				m.rdCount[r.addr]++
			}
		}
		if prevSlot+1 > maxStep {
			maxStep = prevSlot + 1
		}
	}
	if st.H < 1 {
		st.H = 1
	}
	st.Steps = maxStep

	// Contention κ and the read-write exclusion rule; reset the counters
	// for the next phase as we go (only touched addresses are non-zero).
	for _, addr := range m.touched {
		rd, wr := m.rdCount[addr], m.wrCount[addr]
		if rd > 0 && wr > 0 {
			panic(fmt.Sprintf("qsm: location %d both read and written in one phase", addr))
		}
		if rd > st.Kappa {
			st.Kappa = rd
		}
		if wr > st.Kappa {
			st.Kappa = wr
		}
		m.rdCount[addr], m.wrCount[addr] = 0, 0
	}

	// Histogram over request steps; apply writes in processor order so the
	// highest-numbered writer wins deterministically (Arbitrary rule).
	hist := m.core.Hist(maxStep)
	for i := 0; i < m.p; i++ {
		reqs := m.reqs(i)
		for k := range reqs {
			r := &reqs[k]
			hist[r.slot]++
			if r.write {
				m.mem[r.addr] = r.val
			}
		}
	}
	for _, mt := range hist {
		if mt > st.MaxSlot {
			st.MaxSlot = mt
		}
		if m.cost.Kind == model.KindQSMm && mt > m.cost.M {
			st.Overload++
		}
	}
	if m.cost.Kind == model.KindQSMm {
		st.CM = m.cost.CM(hist)
	}
	st.Cost = m.cost.QSMPhase(st.W, st.H, st.Kappa, hist)
	return st, engine.StepStats{
		W: st.W, H: st.H, N: st.Reads + st.Writes,
		Steps: st.Steps, MaxSlot: st.MaxSlot, Overload: st.Overload,
		CM: st.CM, Cost: st.Cost, Hist: hist,
	}
}

// Reset clears memory, time and trace, preserving processor RNG state.
func (m *Machine) Reset() {
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.core.ResetClock()
}
