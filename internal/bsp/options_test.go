package bsp

import (
	"testing"

	"parbw/internal/engine"
	"parbw/internal/model"
)

// A machine built from engine.Options must behave identically to one built
// from the equivalent Config: same cost model, same RNG derivation, same
// simulated time.
func TestNewFromOptionsEquivalent(t *testing.T) {
	run := func(m *Machine) model.Time {
		p := m.P()
		for s := 0; s < 3; s++ {
			m.Superstep(func(c *Ctx) {
				c.Charge(2)
				c.Send((c.ID()+c.RNG().Intn(p-1)+1)%p, 1, int64(c.ID()))
			})
		}
		return m.Time()
	}
	cases := []struct {
		name string
		cfg  Config
		opts engine.Options
	}{
		{"bspm", Config{P: 32, Cost: model.BSPm(8, 4), Seed: 7}, engine.Options{Procs: 32, M: 8, L: 4, Seed: 7}},
		{"bspg", Config{P: 32, Cost: model.BSPg(2, 4), Seed: 7}, engine.Options{Procs: 32, G: 2, L: 4, Seed: 7}},
		{"bspm linear", Config{P: 32, Cost: model.BSPmLinear(8, 4), Seed: 7},
			engine.Options{Procs: 32, M: 8, L: 4, Penalty: model.LinearPenalty, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := New(tc.cfg), New(tc.opts)
			if a.Cost().Kind != b.Cost().Kind {
				t.Fatalf("cost kinds differ: %v vs %v", a.Cost().Kind, b.Cost().Kind)
			}
			ta, tb := run(a), run(b)
			if ta != tb {
				t.Fatalf("model time differs: Config %g vs Options %g", ta, tb)
			}
			if a.Last() != b.Last() {
				t.Fatalf("final stats differ: %+v vs %+v", a.Last(), b.Last())
			}
		})
	}
}
