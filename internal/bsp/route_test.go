package bsp

import (
	"testing"

	"parbw/internal/model"
)

// routeWorkload is a skewed mixed-length traffic pattern: processor i sends
// msgs messages of varying length to scattered destinations, with a hotspot
// at processor 0. It is deliberately irregular so that bucket sizes differ
// wildly across destinations.
func routeWorkload(p, msgs int) func(c *Ctx) {
	return func(c *Ctx) {
		i := c.ID()
		for k := 0; k < msgs; k++ {
			dst := (i*7 + k*k + 3) % p
			if k%5 == 0 {
				dst = 0 // hotspot
			}
			ln := int32(1 + (i+k)%3)
			c.SendMsg(dst, Msg{Tag: uint8(k), Len: ln, A: int64(i), B: int64(k)})
		}
	}
}

// runRouted executes steps supersteps of the workload and returns the final
// inbox contents per processor plus the last step's Stats.
func runRouted(p, msgs, workers, steps int) ([][]Msg, Stats) {
	m := New(Config{P: p, Cost: model.BSPm(64, 4), Seed: 9, Workers: workers})
	var st Stats
	body := routeWorkload(p, msgs)
	for s := 0; s < steps; s++ {
		st = m.Superstep(body)
	}
	out := make([][]Msg, p)
	for i := 0; i < p; i++ {
		out[i] = append([]Msg(nil), m.Inbox(i)...)
	}
	return out, st
}

// The destination-sharded parallel routing passes must deliver exactly the
// messages, in exactly the order, the serial counting sort does — for any
// worker count. This is the property all golden outputs rest on.
func TestParallelRouteEquivalence(t *testing.T) {
	old := parallelRouteMin
	parallelRouteMin = 1 // force the parallel path on the multi-worker run
	defer func() { parallelRouteMin = old }()

	for _, workers := range []int{2, 3, 4, 7} {
		serialBoxes, serialStats := runRouted(96, 6, 1, 3)
		parBoxes, parStats := runRouted(96, 6, workers, 3)
		if serialStats != parStats {
			t.Fatalf("workers=%d: stats diverge: serial %+v parallel %+v", workers, serialStats, parStats)
		}
		for i := range serialBoxes {
			if len(serialBoxes[i]) != len(parBoxes[i]) {
				t.Fatalf("workers=%d: proc %d inbox length %d vs %d", workers, i, len(serialBoxes[i]), len(parBoxes[i]))
			}
			for k := range serialBoxes[i] {
				if serialBoxes[i][k] != parBoxes[i][k] {
					t.Fatalf("workers=%d: proc %d msg %d differs: %+v vs %+v", workers, i, k, serialBoxes[i][k], parBoxes[i][k])
				}
			}
		}
	}
}

// Above the message-count threshold the parallel path engages on its own;
// the delivered traffic must still match the serial machine exactly.
func TestParallelRouteThreshold(t *testing.T) {
	p, msgs := 512, 8 // 4096 messages >= parallelRouteMin
	serialBoxes, serialStats := runRouted(p, msgs, 1, 2)
	parBoxes, parStats := runRouted(p, msgs, 4, 2)
	if serialStats != parStats {
		t.Fatalf("stats diverge: serial %+v parallel %+v", serialStats, parStats)
	}
	for i := range serialBoxes {
		for k := range serialBoxes[i] {
			if serialBoxes[i][k] != parBoxes[i][k] {
				t.Fatalf("proc %d msg %d differs", i, k)
			}
		}
	}
}

// Closing the grid gate (a sparse step on a huge machine, where the
// chunk×destination matrix would dwarf the traffic) must drop the
// multi-worker machine back to the serial placement — and the delivered
// traffic must still be exactly the serial machine's.
func TestParallelRouteGridGate(t *testing.T) {
	oldMin, oldGrid := parallelRouteMin, parallelRouteGrid
	parallelRouteMin = 1
	parallelRouteGrid = 0 // gate always closed
	defer func() { parallelRouteMin, parallelRouteGrid = oldMin, oldGrid }()

	serialBoxes, serialStats := runRouted(96, 6, 1, 3)
	gatedBoxes, gatedStats := runRouted(96, 6, 4, 3)
	if serialStats != gatedStats {
		t.Fatalf("stats diverge: serial %+v gated %+v", serialStats, gatedStats)
	}
	for i := range serialBoxes {
		if len(serialBoxes[i]) != len(gatedBoxes[i]) {
			t.Fatalf("proc %d inbox length %d vs %d", i, len(serialBoxes[i]), len(gatedBoxes[i]))
		}
		for k := range serialBoxes[i] {
			if serialBoxes[i][k] != gatedBoxes[i][k] {
				t.Fatalf("proc %d msg %d differs", i, k)
			}
		}
	}
}

// Deliver must never clobber a neighboring routed bucket: the inbox views
// are capacity-clamped subslices of one shared slab, so an append past a
// view's length has to reallocate rather than overwrite.
func TestDeliverDoesNotClobberSlab(t *testing.T) {
	p := 8
	m := New(Config{P: p, Cost: model.BSPm(8, 2), Seed: 3, Workers: 1})
	m.Superstep(func(c *Ctx) {
		c.Send((c.ID()+1)%p, 1, int64(c.ID()))
	})
	want := make([][]Msg, p)
	for i := 0; i < p; i++ {
		want[i] = append([]Msg(nil), m.Inbox(i)...)
	}
	// Append extra traffic to processor 3's inbox; every other inbox must
	// be unaffected.
	m.Deliver([]Msg{{Src: 0, Dst: 3, Tag: 99, Len: 1, A: 42}})
	for i := 0; i < p; i++ {
		if i == 3 {
			continue
		}
		for k := range want[i] {
			if m.Inbox(i)[k] != want[i][k] {
				t.Fatalf("Deliver to proc 3 clobbered proc %d msg %d", i, k)
			}
		}
	}
	in3 := m.Inbox(3)
	if got := in3[len(in3)-1]; got.Tag != 99 || got.A != 42 {
		t.Fatalf("delivered message missing from proc 3 inbox: %+v", got)
	}
}
