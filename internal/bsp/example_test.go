package bsp_test

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
)

// Example shows one superstep on a globally-limited machine: every
// processor sends a token to its right neighbour, injections staggered two
// per step (m = 2), and the model charges max(w, h, c_m, L).
func Example() {
	m := bsp.New(bsp.Config{P: 4, Cost: model.BSPmLinear(2, 1), Seed: 1})
	st := m.Superstep(func(c *bsp.Ctx) {
		// Stagger: processors 0,1 inject at step 0; processors 2,3 at step 1.
		c.SendAt(c.ID()/2, (c.ID()+1)%4, bsp.Msg{A: int64(c.ID())})
	})
	fmt.Printf("cost=%v c_m=%v received-by-0=%d\n", st.Cost, st.CM, m.Inbox(0)[0].A)
	// Output: cost=2 c_m=2 received-by-0=3
}

// Example_nonReceipt demonstrates that silence is information: processor 1
// decodes a bit it never received, because the sender's choice of target
// encodes it (the Section 4.2 trick).
func Example_nonReceipt() {
	m := bsp.New(bsp.Config{P: 3, Cost: model.BSPg(1, 1), Seed: 1})
	bit := int64(1)
	m.Superstep(func(c *bsp.Ctx) {
		if c.ID() == 0 {
			if bit == 0 {
				c.Send(1, 0, 0) // bit 0: message to processor 1
			} else {
				c.Send(2, 0, 1) // bit 1: message to processor 2
			}
		}
	})
	decoded := int64(0)
	if len(m.Inbox(1)) == 0 { // processor 1 infers the bit from non-receipt
		decoded = 1
	}
	fmt.Println("decoded:", decoded)
	// Output: decoded: 1
}
