package bsp

import (
	"testing"
	"testing/quick"

	"parbw/internal/model"
)

// Metamorphic properties of the BSP cost accounting: relations that must
// hold between executions regardless of workload.

// Adding a message to a superstep never decreases its cost, under any model.
func TestCostMonotoneInMessages(t *testing.T) {
	costs := []model.Cost{
		model.BSPg(4, 8), model.BSPmLinear(4, 8), model.BSPm(4, 8),
		model.BSPSelfSched(4, 8),
	}
	f := func(seed uint64) bool {
		p := 16
		k := int(seed % 6)
		for _, cost := range costs {
			run := func(extra bool) float64 {
				m := New(Config{P: p, Cost: cost, Seed: seed})
				m.Superstep(func(c *Ctx) {
					for j := 0; j < k; j++ {
						c.SendAt(j, (c.ID()+j+1)%p, Msg{A: 1})
					}
					if extra && c.ID() == 0 {
						c.SendAt(k, 1, Msg{A: 2})
					}
				})
				return m.Time()
			}
			if run(true) < run(false)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Increasing local work never decreases cost.
func TestCostMonotoneInWork(t *testing.T) {
	f := func(seed uint64) bool {
		w := int(seed % 1000)
		run := func(extra int) float64 {
			m := New(Config{P: 4, Cost: model.BSPmLinear(2, 4), Seed: seed})
			m.Superstep(func(c *Ctx) { c.Charge(w + extra) })
			return m.Time()
		}
		return run(7) >= run(0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Splitting one superstep's sends into two supersteps never reduces total
// time (each superstep pays the latency floor).
func TestSuperstepSplitNoCheaper(t *testing.T) {
	f := func(seed uint64) bool {
		p := 8
		k := 1 + int(seed%4)
		one := New(Config{P: p, Cost: model.BSPmLinear(2, 4), Seed: seed})
		one.Superstep(func(c *Ctx) {
			for j := 0; j < 2*k; j++ {
				c.SendAt(j, (c.ID()+1)%p, Msg{})
			}
		})
		two := New(Config{P: p, Cost: model.BSPmLinear(2, 4), Seed: seed})
		for half := 0; half < 2; half++ {
			two.Superstep(func(c *Ctx) {
				for j := 0; j < k; j++ {
					c.SendAt(j, (c.ID()+1)%p, Msg{})
				}
			})
		}
		return two.Time() >= one.Time()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Under the linear penalty, the cost of a superstep is invariant to how the
// same multiset of messages is distributed over senders' slots, as long as
// the histogram is a permutation of the original (relabeling slots).
func TestSlotRelabelInvariance(t *testing.T) {
	p := 8
	base := func(order []int) float64 {
		m := New(Config{P: p, Cost: model.BSPmLinear(2, 1), Seed: 1})
		m.Superstep(func(c *Ctx) {
			if c.ID() == 0 {
				for k, slot := range order {
					c.SendAt(slot, 1+k%(p-1), Msg{})
				}
			}
		})
		return m.Time()
	}
	// Same histogram {0,1,2,3} in different send orders.
	if base([]int{0, 1, 2, 3}) != base([]int{3, 2, 1, 0}) {
		t.Fatal("slot relabeling changed cost")
	}
}

// Exponential penalty always costs at least the linear penalty for the same
// execution.
func TestExpPenaltyDominatesLinear(t *testing.T) {
	f := func(seed uint64) bool {
		p := 16
		burst := 1 + int(seed%16)
		run := func(cost model.Cost) float64 {
			m := New(Config{P: p, Cost: cost, Seed: seed})
			m.Superstep(func(c *Ctx) {
				if c.ID() < burst {
					c.SendAt(0, (c.ID()+1)%p, Msg{})
				}
			})
			return m.Time()
		}
		return run(model.BSPm(2, 1)) >= run(model.BSPmLinear(2, 1))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Raising m never increases the cost of a fixed execution.
func TestCostMonotoneInBandwidth(t *testing.T) {
	f := func(seed uint64) bool {
		p := 16
		run := func(mm int) float64 {
			m := New(Config{P: p, Cost: model.BSPmLinear(mm, 1), Seed: seed})
			m.Superstep(func(c *Ctx) {
				c.SendAt(int(seed%4), (c.ID()+1)%p, Msg{})
			})
			return m.Time()
		}
		return run(8) <= run(2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Worker count must not affect results (engine concurrency is invisible).
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]Msg, float64) {
		m := New(Config{P: 64, Cost: model.BSPmLinear(8, 2), Seed: 5, Workers: workers})
		m.Superstep(func(c *Ctx) {
			k := c.RNG().Intn(4)
			for j := 0; j < k; j++ {
				c.SendAt(j, c.RNG().Intn(64), Msg{A: int64(c.ID()*10 + j)})
			}
		})
		var all []Msg
		for i := 0; i < 64; i++ {
			all = append(all, m.Inbox(i)...)
		}
		return all, m.Time()
	}
	m1, t1 := run(1)
	m8, t8 := run(8)
	if t1 != t8 || len(m1) != len(m8) {
		t.Fatalf("worker count changed outcome: %v/%d vs %v/%d", t1, len(m1), t8, len(m8))
	}
	for i := range m1 {
		if m1[i] != m8[i] {
			t.Fatalf("message %d differs across worker counts", i)
		}
	}
}
