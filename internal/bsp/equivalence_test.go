package bsp_test

import (
	"runtime"
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/workgen"
)

// replay runs every superstep of w on one machine with the given worker
// count and returns the per-step Stats plus the final per-processor inboxes.
func replay(t *testing.T, w *workgen.Workload, workers int) ([]bsp.Stats, [][]bsp.Msg) {
	t.Helper()
	m := bsp.New(bsp.Config{P: w.P, Cost: model.BSPm(w.M, w.L), Seed: w.Seed, Workers: workers})
	stats := make([]bsp.Stats, 0, len(w.Steps))
	for step := range w.Steps {
		sends := w.Steps[step].Sends
		stats = append(stats, m.Superstep(func(c *bsp.Ctx) {
			for _, s := range sends {
				if s.Proc != c.ID() {
					continue
				}
				c.SendAt(s.Slot, s.Dst, bsp.Msg{Len: int32(s.Len)})
			}
		}))
	}
	boxes := make([][]bsp.Msg, w.P)
	for i := 0; i < w.P; i++ {
		boxes[i] = append([]bsp.Msg(nil), m.Inbox(i)...)
	}
	return stats, boxes
}

// TestWorkerCountEquivalence is the engine-level determinism contract of the
// columnar rework: the same seeded workload produces byte-identical Stats,
// costs, clock, and delivered traffic at every worker count — chunked state,
// shard arenas, and the parallel router are pure representation. Runs under
// -race in CI, which also exercises the fan-out for data races.
func TestWorkerCountEquivalence(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, family := range workgen.Families() {
		for seed := uint64(1); seed <= 4; seed++ {
			w := workgen.Generate(workgen.GenConfig{Family: family, Seed: seed})
			if err := w.Validate(); err != nil {
				t.Fatalf("%s/%d: invalid workload: %v", family, seed, err)
			}
			refStats, refBoxes := replay(t, w, workerCounts[0])
			for _, workers := range workerCounts[1:] {
				stats, boxes := replay(t, w, workers)
				for s := range refStats {
					if stats[s] != refStats[s] {
						t.Fatalf("%s/%d workers=%d: superstep %d stats %+v, want %+v",
							family, seed, workers, s, stats[s], refStats[s])
					}
				}
				for i := range refBoxes {
					if len(boxes[i]) != len(refBoxes[i]) {
						t.Fatalf("%s/%d workers=%d: proc %d inbox length %d, want %d",
							family, seed, workers, i, len(boxes[i]), len(refBoxes[i]))
					}
					for k := range refBoxes[i] {
						if boxes[i][k] != refBoxes[i][k] {
							t.Fatalf("%s/%d workers=%d: proc %d msg %d = %+v, want %+v",
								family, seed, workers, i, k, boxes[i][k], refBoxes[i][k])
						}
					}
				}
			}
		}
	}
}
