package bsp

import (
	"testing"

	"parbw/internal/model"
)

// benchMachine builds a single-worker machine (so allocation measurements
// are not polluted by worker goroutine scheduling) plus a representative
// communication superstep: every processor sends two single-flit messages on
// its auto-assigned injection slots.
func benchMachine(p int) (*Machine, func()) {
	m := New(Config{P: p, Cost: model.BSPm(32, 4), Seed: 1, Workers: 1})
	body := func(c *Ctx) {
		c.Charge(4)
		c.Send((c.ID()+1)%p, 1, int64(c.ID()))
		c.Send((c.ID()+7)%p, 2, int64(c.ID()))
	}
	return m, func() { m.Superstep(body) }
}

func BenchmarkSuperstepMerge(b *testing.B) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// The merge path recycles its histogram, receive ledger and inbox buffers;
// after warmup a superstep must not allocate at all.
const superstepAllocBudget = 0

func TestSuperstepMergeAllocs(t *testing.T) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	avg := testing.AllocsPerRun(50, step)
	if avg > superstepAllocBudget {
		t.Errorf("superstep allocates %.1f objects/op, budget %d", avg, superstepAllocBudget)
	}
}
