package bsp

import (
	"strings"
	"testing"
	"testing/quick"

	"parbw/internal/model"
)

func newBSPg(p, g, l int) *Machine {
	return New(Config{P: p, Cost: model.BSPg(g, l), Seed: 1})
}

func newBSPmLin(p, m, l int) *Machine {
	return New(Config{P: p, Cost: model.BSPmLinear(m, l), Seed: 1})
}

func TestMessageDelivery(t *testing.T) {
	m := newBSPg(4, 1, 1)
	m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(3, 7, 42)
		}
	})
	got := false
	m.Superstep(func(c *Ctx) {
		if c.ID() == 3 {
			msgs := c.Recv()
			if len(msgs) == 1 && msgs[0].A == 42 && msgs[0].Tag == 7 && msgs[0].Src == 0 {
				got = true
			}
		} else if len(c.Recv()) != 0 {
			t.Errorf("proc %d received unexpected messages", c.ID())
		}
	})
	if !got {
		t.Fatal("message not delivered to proc 3")
	}
}

func TestInboxClearedAfterSuperstep(t *testing.T) {
	m := newBSPg(2, 1, 1)
	m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(1, 0, 1)
		}
	})
	m.Superstep(func(c *Ctx) {}) // does not read; inbox replaced anyway
	m.Superstep(func(c *Ctx) {
		if c.ID() == 1 && len(c.Recv()) != 0 {
			t.Error("stale message survived two supersteps")
		}
	})
}

func TestBSPgCost(t *testing.T) {
	m := newBSPg(4, 3, 2)
	st := m.Superstep(func(c *Ctx) {
		c.Charge(1)
		if c.ID() == 0 {
			for i := 1; i < 4; i++ {
				c.Send(i, 0, int64(i))
			}
		}
	})
	// h = max(send=3, recv=1) = 3; cost = max(w=1, g*h=9, L=2) = 9.
	if st.H != 3 || st.Cost != 9 {
		t.Fatalf("stats = %+v, want H=3 Cost=9", st)
	}
	if m.Time() != 9 {
		t.Fatalf("Time = %v, want 9", m.Time())
	}
}

func TestBSPgReceiveSideH(t *testing.T) {
	m := newBSPg(4, 2, 1)
	m.Superstep(func(c *Ctx) {
		if c.ID() != 3 {
			c.Send(3, 0, 1)
		}
	})
	st := m.Last()
	// proc 3 receives 3 messages: h = 3, cost = 6.
	if st.HRecv != 3 || st.Cost != 6 {
		t.Fatalf("stats = %+v, want HRecv=3 Cost=6", st)
	}
}

func TestBSPmScheduledCost(t *testing.T) {
	m := newBSPmLin(8, 2, 1)
	// Each of 8 processors sends one message in slot id/2: exactly m=2 per
	// slot over 4 slots -> c_m = 4, h = max(1, recv) and every message goes
	// to processor (id+1)%8 so recv = 1. Cost = max(0,1,4,1) = 4.
	st := m.Superstep(func(c *Ctx) {
		c.SendAt(c.ID()/2, (c.ID()+1)%8, Msg{A: 1})
	})
	if st.CM != 4 || st.Cost != 4 || st.MaxSlot != 2 || st.Overload != 0 {
		t.Fatalf("stats = %+v, want CM=4 Cost=4 MaxSlot=2", st)
	}
}

func TestBSPmOverloadLinear(t *testing.T) {
	m := newBSPmLin(8, 2, 1)
	// All 8 in slot 0: c_m = 8/2 = 4 under the linear penalty.
	st := m.Superstep(func(c *Ctx) {
		c.SendAt(0, (c.ID()+1)%8, Msg{A: 1})
	})
	if st.CM != 4 || st.Overload != 1 || st.MaxSlot != 8 {
		t.Fatalf("stats = %+v, want CM=4 Overload=1 MaxSlot=8", st)
	}
}

func TestBSPmOverloadExponential(t *testing.T) {
	m := New(Config{P: 8, Cost: model.BSPm(2, 1), Seed: 1})
	st := m.Superstep(func(c *Ctx) {
		c.SendAt(0, (c.ID()+1)%8, Msg{A: 1})
	})
	want := model.ExpPenalty(8, 2)
	if st.CM != want {
		t.Fatalf("CM = %v, want %v", st.CM, want)
	}
}

func TestOneFlitPerStepEnforced(t *testing.T) {
	m := newBSPmLin(2, 1, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double injection did not panic")
		}
		if !strings.Contains(r.(string), "two flits") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendAt(5, 1, Msg{A: 1})
			c.SendAt(5, 1, Msg{A: 2})
		}
	})
}

func TestLongMessageOccupiesConsecutiveSlots(t *testing.T) {
	m := newBSPmLin(2, 1, 1)
	st := m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendAt(2, 1, Msg{Len: 3, A: 9})
		}
	})
	// Flits occupy slots 2,3,4: steps spanned = 5, c_m = 3 (three busy steps).
	if st.Steps != 5 || st.CM != 3 || st.N != 3 || st.H != 3 {
		t.Fatalf("stats = %+v, want Steps=5 CM=3 N=3 H=3", st)
	}
}

func TestLongMessageOverlapPanics(t *testing.T) {
	m := newBSPmLin(2, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping long message did not panic")
		}
	}()
	m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendAt(0, 1, Msg{Len: 3})
			c.SendAt(2, 1, Msg{Len: 1})
		}
	})
}

func TestAutoSlotAfterSendAt(t *testing.T) {
	m := newBSPmLin(2, 4, 1)
	st := m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendAt(3, 1, Msg{Len: 2}) // slots 3,4
			c.SendMsg(1, Msg{Len: 1})   // auto: slot 5
		}
	})
	if st.Steps != 6 {
		t.Fatalf("Steps = %d, want 6 (auto slot after SendAt)", st.Steps)
	}
}

func TestNonReceiptObservable(t *testing.T) {
	m := newBSPg(3, 1, 1)
	m.Superstep(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(1, 0, 1) // send only to 1; 2 learns from silence
		}
	})
	learned := make([]int64, 3)
	m.Superstep(func(c *Ctx) {
		if len(c.Recv()) > 0 {
			learned[c.ID()] = 1
		} else {
			learned[c.ID()] = -1 // inferred bit from non-receipt
		}
	})
	if learned[1] != 1 || learned[2] != -1 {
		t.Fatalf("learned = %v", learned)
	}
}

func TestSelfSchedCost(t *testing.T) {
	m := New(Config{P: 8, Cost: model.BSPSelfSched(2, 1), Seed: 1})
	st := m.Superstep(func(c *Ctx) {
		c.Send((c.ID()+1)%8, 0, 1) // n=8, m=2 -> n/m = 4
	})
	if st.Cost != 4 {
		t.Fatalf("self-sched cost = %v, want 4", st.Cost)
	}
}

func TestDeliverAndInbox(t *testing.T) {
	m := newBSPg(2, 1, 1)
	m.Deliver([]Msg{{Dst: 1, A: 5}})
	if len(m.Inbox(1)) != 1 || m.Inbox(1)[0].A != 5 {
		t.Fatal("Deliver did not reach inbox")
	}
	if m.Time() != 0 {
		t.Fatal("Deliver charged time")
	}
}

func TestChargeTime(t *testing.T) {
	m := newBSPg(2, 1, 1)
	m.ChargeTime(17)
	if m.Time() != 17 {
		t.Fatalf("Time = %v, want 17", m.Time())
	}
}

func TestReset(t *testing.T) {
	m := newBSPg(2, 1, 1)
	m.Superstep(func(c *Ctx) { c.Send(1-c.ID(), 0, 1) })
	m.Reset()
	if m.Time() != 0 || m.Supersteps() != 0 || len(m.Inbox(0)) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestTraceRetention(t *testing.T) {
	m := New(Config{P: 2, Cost: model.BSPg(1, 1), Seed: 1, Trace: true})
	m.Superstep(func(c *Ctx) {})
	m.Superstep(func(c *Ctx) {})
	if len(m.Trace()) != 2 {
		t.Fatalf("trace length = %d, want 2", len(m.Trace()))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Msg {
		m := New(Config{P: 16, Cost: model.BSPmLinear(4, 1), Seed: 99, Workers: 4})
		m.Superstep(func(c *Ctx) {
			dst := c.RNG().Intn(16)
			c.SendAt(c.RNG().Intn(8), dst, Msg{A: int64(c.ID())})
		})
		var all []Msg
		for i := 0; i < 16; i++ {
			all = append(all, m.Inbox(i)...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at message %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInvalidDstPanics(t *testing.T) {
	m := newBSPg(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid dst did not panic")
		}
	}()
	m.Superstep(func(c *Ctx) { c.Send(2, 0, 1) })
}

func TestNegativeSlotPanics(t *testing.T) {
	m := newBSPmLin(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative slot did not panic")
		}
	}()
	m.Superstep(func(c *Ctx) { c.SendAt(-1, 1, Msg{}) })
}

func TestQSMKindRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QSM cost on bsp.New did not panic")
		}
	}()
	New(Config{P: 2, Cost: model.QSMg(1)})
}

// Property: the total flits received always equals the total flits sent, and
// per-slot histogram totals match N.
func TestConservationOfMessages(t *testing.T) {
	f := func(seed uint64) bool {
		p := 8
		m := New(Config{P: p, Cost: model.BSPmLinear(4, 1), Seed: seed})
		sent := make([]int, p)
		st := m.Superstep(func(c *Ctx) {
			k := c.RNG().Intn(5)
			for j := 0; j < k; j++ {
				c.SendMsg(c.RNG().Intn(p), Msg{A: int64(j)})
			}
			sent[c.ID()] = k
		})
		total := 0
		for _, s := range sent {
			total += s
		}
		recv := 0
		for i := 0; i < p; i++ {
			recv += len(m.Inbox(i))
		}
		return st.N == total && recv == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BSP(m) cost is always >= the self-scheduling cost for the same
// traffic (the self-scheduling metric is the idealized lower envelope).
func TestBSPmDominatesSelfSched(t *testing.T) {
	f := func(seed uint64) bool {
		p, mm := 8, 2
		run := func(cost model.Cost) model.Time {
			m := New(Config{P: p, Cost: cost, Seed: seed})
			m.Superstep(func(c *Ctx) {
				k := c.RNG().Intn(4)
				for j := 0; j < k; j++ {
					c.SendAt(j, c.RNG().Intn(p), Msg{})
				}
			})
			return m.Time()
		}
		tm := run(model.BSPmLinear(mm, 1))
		ts := run(model.BSPSelfSched(mm, 1))
		return tm >= ts-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgFlits(t *testing.T) {
	if (Msg{Len: 0}).Flits() != 1 || (Msg{Len: -2}).Flits() != 1 || (Msg{Len: 7}).Flits() != 7 {
		t.Fatal("Flits normalization wrong")
	}
}
