// Package bsp simulates bulk-synchronous message-passing machines under the
// locally-limited BSP(g) and globally-limited BSP(m) cost models of Adler,
// Gibbons, Matias & Ramachandran (SPAA 1997), as well as the paper's
// self-scheduling BSP(m) variant.
//
// A Machine owns p simulated processors. An algorithm is a sequence of calls
// to Machine.Superstep, each executing a per-processor program concurrently
// (on a bounded worker pool) and then performing the bulk synchronization:
// messages sent in a superstep are delivered before the next superstep
// begins, and the superstep is charged according to the machine's cost
// model. All "time" accumulated by the machine is simulated model time.
//
// In the globally-limited models, a processor must schedule its message
// injections into discrete steps within the superstep (at most one flit per
// processor per step); SendAt pins the injection step, while Send assigns
// the next free step. The engine records the exact per-step injection
// histogram m_t and charges c_m = Σ_t f_m(m_t) per the model's penalty
// function.
//
// Non-receipt of messages is observable (an empty inbox is information),
// which the ternary broadcast of the paper's Section 4.2 exploits.
//
// The superstep loop itself — context lifecycle, worker-pool fan-out, clock
// and trace commit, observer fan-out — lives in internal/engine; this
// package contributes the BSP-specific merge strategy (schedule validation,
// message routing, cost accounting).
package bsp

import (
	"fmt"
	"slices"

	"parbw/internal/engine"
	"parbw/internal/model"
	"parbw/internal/xrand"
)

// Msg is a point-to-point message. Len is the message length in flits
// (Len <= 0 is treated as 1). The payload fields A, B, C carry algorithm
// data; Tag distinguishes message roles within an algorithm.
type Msg struct {
	Src, Dst int32
	Tag      uint8
	Len      int32
	A, B, C  int64
}

// Flits returns the length of the message in flits (at least 1).
func (m Msg) Flits() int {
	if m.Len <= 1 {
		return 1
	}
	return int(m.Len)
}

// send is a scheduled outgoing message: the message's flits occupy
// injection steps slot, slot+1, ..., slot+Flits-1 of the superstep.
type send struct {
	slot int
	msg  Msg
}

// Stats describes one executed superstep.
type Stats struct {
	W        int        // maximum local work over processors
	H        int        // max over processors of max(flits sent, flits received)
	HSend    int        // max flits sent by any processor
	HRecv    int        // max flits received by any processor
	N        int        // total flits sent
	Steps    int        // number of injection steps spanned (max slot + 1)
	MaxSlot  int        // maximum per-step injection count m_t
	Overload int        // number of steps with m_t > m (0 for local models)
	CM       model.Time // c_m = Σ_t f_m(m_t) (0 for local models)
	Cost     model.Time // superstep cost under the machine's model
}

// Config configures a Machine with an explicit model.Cost. It is the
// low-level construction surface; most callers should build machines from
// the cross-machine engine.Options instead (see New). Config remains for
// cost models Options cannot express, such as the self-scheduling BSP(m).
type Config struct {
	P    int        // number of simulated processors (>= 1)
	Cost model.Cost // cost model; must be a BSP kind
	Seed uint64     // experiment seed; all processor RNGs derive from it
	// Workers bounds the host-CPU parallelism used to execute processor
	// programs; <= 0 selects GOMAXPROCS.
	Workers int
	// Trace, if true, retains the Stats of every superstep (Machine.Trace).
	Trace bool
	// Observer, if non-nil, receives a normalized engine.StepStats callback
	// after every superstep (Machine.Attach adds more).
	Observer engine.Observer
}

// Machine is a simulated BSP machine. Methods must be called from a single
// driver goroutine; the per-processor programs passed to Superstep run
// concurrently with each other but never concurrently with the driver.
//
// Per-processor state is columnar: counters and cursors live in flat
// engine.Cols arrays indexed by processor id, queued sends live in O(cores)
// chunk-local arenas addressed by the Off/Cnt columns, and inboxes are
// offset columns over one routed message slab. A Ctx is a thin
// index-plus-pointer view over that state, so machine memory is O(p) flat
// words plus O(cores) objects — never O(p) objects.
type Machine struct {
	p    int
	cost model.Cost
	core *engine.Core[Stats]
	cols *engine.Cols

	// shards are the chunk-local send arenas: chunk r of the fan-out (the
	// contiguous processors [r·width, (r+1)·width)) appends its sends to
	// shards[r].buf, recycled across supersteps. Each shard also carries the
	// one Ctx its chunk's programs share, so live per-step state is O(cores).
	width  int
	shards []shard

	// inbox is the current routed message slab in destination order; inOff
	// (length p+1) carves it into per-destination views, spareOff is the
	// column the next merge fills before the swap. slabs double-buffer the
	// storage: the inbox of the superstep in flight is never overwritten by
	// the merge that builds the next one. cur indexes the slab backing inbox.
	inbox    []Msg
	inOff    []int32
	spareOff []int32
	slabs    [2]engine.Slab[Msg]
	cur      int

	// fn is the program of the superstep in flight; body and mergeFn are the
	// closures handed to the engine core, built once so that Superstep itself
	// is allocation-free.
	fn      func(c *Ctx)
	body    func(lo, hi int)
	mergeFn func() (Stats, engine.StepStats)
}

// shard is one chunk's recycled send arena plus the Ctx view its programs
// run under. Chunks are disjoint contiguous processor ranges, so a shard is
// only ever touched by the one goroutine running its chunk.
type shard struct {
	buf []send
	ctx Ctx
}

// sends returns processor i's queued run inside its shard's arena.
func (m *Machine) sends(i int) []send {
	off := m.cols.Off[i]
	return m.shards[i/m.width].buf[off : off+m.cols.Cnt[i]]
}

// New constructs a Machine from either the package-native Config or the
// cross-machine engine.Options surface (engine.Options selects BSP(m) when
// M > 0, BSP(g) otherwise; see its docs). The two calls build identical
// machines:
//
//	bsp.New(bsp.Config{P: 64, Cost: model.BSPm(8, 4), Seed: 1})
//	bsp.New(engine.Options{Procs: 64, M: 8, L: 4, Seed: 1})
func New[C Config | engine.Options](cfg C) *Machine {
	if o, ok := any(cfg).(engine.Options); ok {
		return newMachine(Config{
			P:        o.Procs,
			Cost:     o.BSPCost(),
			Seed:     o.Seed,
			Workers:  o.Workers,
			Trace:    o.Trace,
			Observer: o.Observer,
		})
	}
	return newMachine(any(cfg).(Config))
}

func newMachine(cfg Config) *Machine {
	if cfg.Cost.SharedMemory() {
		panic(fmt.Sprintf("bsp: cost model %v is a QSM kind", cfg.Cost.Kind))
	}
	if err := cfg.Cost.Validate(cfg.P); err != nil {
		panic("bsp: " + err.Error())
	}
	m := &Machine{
		p:        cfg.P,
		cost:     cfg.Cost,
		core:     engine.NewCore[Stats]("bsp", cfg.P, cfg.Workers, cfg.Trace),
		cols:     engine.NewCols(cfg.P, cfg.Seed),
		inOff:    make([]int32, cfg.P+1),
		spareOff: make([]int32, cfg.P+1),
	}
	m.core.Attach(cfg.Observer)
	width, chunks := m.core.ChunkPlan(cfg.P)
	m.width = width
	m.shards = make([]shard, chunks)
	for r := range m.shards {
		m.shards[r].ctx = Ctx{m: m, sh: &m.shards[r]}
	}
	m.body = func(lo, hi int) {
		sh := &m.shards[lo/m.width]
		sh.buf = sh.buf[:0]
		c := &sh.ctx
		cols := m.cols
		for i := lo; i < hi; i++ {
			cols.ResetProc(i)
			cols.Off[i] = int32(len(sh.buf))
			cols.Cnt[i] = 0
			c.id = i
			m.fn(c)
		}
	}
	m.mergeFn = m.merge
	return m
}

// P returns the number of simulated processors.
func (m *Machine) P() int { return m.p }

// Cost returns the machine's cost model.
func (m *Machine) Cost() model.Cost { return m.cost }

// L returns the machine's periodicity parameter.
func (m *Machine) L() int { return m.cost.L }

// Time returns the accumulated simulated time.
func (m *Machine) Time() model.Time { return m.core.Time() }

// Supersteps returns the number of supersteps executed.
func (m *Machine) Supersteps() int { return m.core.Steps() }

// Last returns the Stats of the most recent superstep.
func (m *Machine) Last() Stats { return m.core.Last() }

// Trace returns the retained per-superstep Stats (nil unless Config.Trace).
func (m *Machine) Trace() []Stats { return m.core.Trace() }

// Attach registers an observer for this machine's supersteps.
func (m *Machine) Attach(obs engine.Observer) { m.core.Attach(obs) }

// ChargeTime adds t units of simulated time outside any superstep. It is
// used by protocols whose analysis charges fixed terms (for example a known
// constant broadcast cost) without simulating them step by step.
func (m *Machine) ChargeTime(t model.Time) { m.core.ChargeTime(t) }

// Ctx is the per-processor view of the current superstep. A Ctx is valid
// only inside the program function of the superstep it was passed to. It is
// a thin index-plus-pointer view: the state it reads and writes lives in
// the machine's columnar arrays and its chunk's send arena.
type Ctx struct {
	id int
	m  *Machine
	sh *shard
}

// ID returns this processor's index in [0, P).
func (c *Ctx) ID() int { return c.id }

// P returns the machine's processor count.
func (c *Ctx) P() int { return c.m.p }

// L returns the machine's periodicity parameter.
func (c *Ctx) L() int { return c.m.cost.L }

// RNG returns this processor's private deterministic random source. The
// source persists across supersteps (it is derived lazily on first use,
// byte-for-byte identical to an eager per-processor split of the seed).
func (c *Ctx) RNG() *xrand.Source { return c.m.cols.RNG(c.id) }

// Charge records units of local computation performed this superstep.
func (c *Ctx) Charge(units int) {
	if units > 0 {
		c.m.cols.Work[c.id] += units
	}
}

// Recv returns the messages delivered to this processor at the end of the
// previous superstep. The slice is owned by the engine and must not be
// retained past the program function.
func (c *Ctx) Recv() []Msg {
	c.m.cols.RecvUsed[c.id] = true
	return c.m.inboxView(c.id)
}

// Send enqueues msg to dst, assigning the message's flits to this
// processor's next free injection steps. Payload a is stored in Msg.A.
func (c *Ctx) Send(dst int, tag uint8, a int64) {
	c.SendMsg(dst, Msg{Tag: tag, A: a})
}

// SendMsg enqueues msg to dst at this processor's next free injection steps.
func (c *Ctx) SendMsg(dst int, msg Msg) {
	c.sendAt(c.m.cols.AutoSlot[c.id], dst, msg)
}

// SendAt enqueues msg to dst with its first flit injected at step slot
// (0-based within the superstep); a message of k flits occupies steps
// slot..slot+k-1 consecutively. At most one flit may be injected by a
// processor per step; violations are detected at superstep end and panic.
func (c *Ctx) SendAt(slot, dst int, msg Msg) {
	if slot < 0 {
		panic(fmt.Sprintf("bsp: proc %d SendAt negative slot %d", c.id, slot))
	}
	c.sendAt(slot, dst, msg)
}

// sendAt is the per-message hot path: it normalizes the message and appends
// it to the processor's run in the chunk's send arena. The
// invalid-destination panic lives in a separate function so sendAt stays
// within the inlining budget — enqueueing a message is a bounds check plus
// one 56-byte arena append and two column stores.
func (c *Ctx) sendAt(slot, dst int, msg Msg) {
	if dst < 0 || dst >= c.m.p {
		c.badDst(dst)
	}
	buf := c.sh.buf
	n := len(buf)
	if n == cap(buf) {
		buf = append(buf, send{})
	} else {
		buf = buf[:n+1]
	}
	s := &buf[n]
	s.slot = slot
	s.msg = msg
	s.msg.Src = int32(c.id)
	s.msg.Dst = int32(dst)
	if msg.Len <= 0 {
		s.msg.Len = 1
	}
	c.sh.buf = buf
	cols := c.m.cols
	cols.Cnt[c.id]++
	if end := slot + int(s.msg.Len); end > cols.AutoSlot[c.id] {
		cols.AutoSlot[c.id] = end
	}
}

//go:noinline
func (c *Ctx) badDst(dst int) {
	panic(fmt.Sprintf("bsp: proc %d send to invalid dst %d (p=%d)", c.id, dst, c.m.p))
}

// Superstep executes fn for every processor, then synchronizes: messages are
// delivered, the superstep is costed under the machine's model, and the
// machine clock advances. It returns the superstep's Stats.
func (m *Machine) Superstep(fn func(c *Ctx)) Stats {
	m.fn = fn
	st := m.core.Step(m.body, m.mergeFn)
	m.fn = nil
	return st
}

// insertionSortMax bounds the schedule length handled by the inlined
// insertion sort; longer schedules (a single processor streaming thousands
// of flits) fall back to the library sort.
const insertionSortMax = 32

// parallelRouteMin is the per-superstep message count below which the
// destination-sharded parallel routing passes are not worth their fan-out
// overhead (a variable so tests can force either path).
var parallelRouteMin = 2048

// parallelRouteGrid caps the parallel router's chunk×destination count
// matrix at this multiple of the step's message count: above it, the O(
// chunks·p) grid would dominate the work (and, at p in the millions, the
// memory), so the serial placement — O(total + p) — wins. A variable so
// tests can force either path.
var parallelRouteGrid = 4

// merge is the BSP merge strategy: it validates injection schedules, builds
// the per-step histogram, counting-sorts messages into the next inbox slab,
// and computes the cost.
func (m *Machine) merge() (Stats, engine.StepStats) {
	var st Stats

	// Pass 1, fused: per-processor schedule validation (sort by start slot,
	// then reject overlapping [slot, slot+len) intervals — the model permits
	// one flit injection per processor per step) together with the size
	// accounting and the per-destination message/flit counts the router
	// needs. After a valid sort the interval ends are monotone, so the
	// processor's step span is simply the last interval's end. The sort and
	// the overlap check are inlined on the concrete send type: the generic
	// closure-based engine.CheckSchedule was the hottest single item in the
	// pre-rework merge profile. Processors are walked shard by shard —
	// shards hold contiguous ascending processor ranges, so this is
	// processor order without a per-processor division.
	recv := m.core.Ledger() // flits destined per processor
	cnt := m.core.Offsets() // messages destined per processor
	cols := m.cols
	maxStep := 0
	total := 0 // messages this superstep
	for i := 0; i < m.p; i++ {
		if w := cols.Work[i]; w > st.W {
			st.W = w
		}
		sends := m.sends(i)
		if n := len(sends); n > 1 {
			if n <= insertionSortMax {
				for a := 1; a < n; a++ {
					for j := a; j > 0 && sends[j].slot < sends[j-1].slot; j-- {
						sends[j], sends[j-1] = sends[j-1], sends[j]
					}
				}
			} else {
				slices.SortFunc(sends, func(a, b send) int { return a.slot - b.slot })
			}
		}
		sent := 0
		prevEnd := -1
		for k := range sends {
			s := &sends[k]
			fl := int(s.msg.Len) // sendAt normalized Len >= 1
			if s.slot < prevEnd {
				panic(fmt.Sprintf("bsp: proc %d injects two flits in step %d (model allows one send initiation per step)", i, s.slot))
			}
			prevEnd = s.slot + fl
			sent += fl
			d := int(s.msg.Dst)
			recv[d] += fl
			cnt[d]++
		}
		if prevEnd > maxStep {
			maxStep = prevEnd
		}
		if sent > st.HSend {
			st.HSend = sent
		}
		st.N += sent
		total += len(sends)
	}
	st.Steps = maxStep

	// Bucket layout: exclusive prefix sum over the per-destination counts
	// turns them into placement cursors and fills the spare offset column
	// that will carve per-destination inbox views out of the flat slab. The
	// slab, histogram, ledger and offset columns are all recycled across
	// supersteps; Recv slices are therefore only valid within their
	// superstep, as documented.
	hist := m.core.Hist(maxStep)
	slab := m.slabs[1-m.cur].Take(total)
	nextOff := m.spareOff
	acc := 0
	for d := 0; d < m.p; d++ {
		nextOff[d] = int32(acc)
		k := cnt[d]
		cnt[d] = acc
		acc += k
	}
	nextOff[m.p] = int32(acc)

	// Pass 2: the per-step injection histogram and the counting-sort
	// placement. Every message's slab position is determined by the
	// precomputed cursors — (destination, then source processor, then slot
	// order within the processor) — exactly the delivery order the old
	// append-per-destination routing produced. Large steps on a
	// multi-worker machine take the destination-sharded parallel passes
	// instead; they compute the same positions chunk-locally, so the slab
	// contents are byte-identical either way.
	if m.core.Workers() > 1 && total >= parallelRouteMin && m.gridFits(maxStep, total) {
		m.routeParallel(slab, hist, cnt)
	} else {
		for i := 0; i < m.p; i++ {
			sends := m.sends(i)
			for k := range sends {
				s := &sends[k]
				end := s.slot + int(s.msg.Len)
				for f := s.slot; f < end; f++ {
					hist[f]++
				}
				d := int(s.msg.Dst)
				slab[cnt[d]] = s.msg
				cnt[d]++
			}
		}
	}
	for _, r := range recv {
		if r > st.HRecv {
			st.HRecv = r
		}
	}
	st.H = st.HSend
	if st.HRecv > st.H {
		st.H = st.HRecv
	}
	for _, mt := range hist {
		if mt > st.MaxSlot {
			st.MaxSlot = mt
		}
		if m.cost.Global() && mt > m.cost.M {
			st.Overload++
		}
	}
	if m.cost.Kind == model.KindBSPm {
		st.CM = m.cost.CM(hist)
	}
	st.Cost = m.cost.BSPSuperstep(st.W, st.H, st.N, hist)

	m.inbox = slab
	m.inOff, m.spareOff = m.spareOff, m.inOff
	m.cur = 1 - m.cur
	return st, engine.StepStats{
		W: st.W, H: st.H, N: st.N,
		Steps: st.Steps, MaxSlot: st.MaxSlot, Overload: st.Overload,
		CM: st.CM, Cost: st.Cost, Hist: hist,
	}
}

// gridFits reports whether the parallel router's chunk×destination count
// matrix is small enough relative to the step's traffic to be worth
// building. At bench-scale machines (hundreds of processors) it always is;
// at p in the millions a sparse step would spend more on the grid than on
// the messages, so the serial placement runs instead. Either path produces
// a byte-identical slab.
func (m *Machine) gridFits(nh, total int) bool {
	return len(m.shards)*(m.p+nh) <= parallelRouteGrid*total
}

// routeParallel is the destination-sharded routing used for large steps on
// multi-worker machines: each worker chunk counts its own messages per
// destination and its own injection histogram into a recycled
// chunk×destination grid (no global map, no locks), a serial reduce turns
// the chunk counts into exact slab positions (bucket start + messages the
// earlier chunks place in that bucket), and a second parallel pass writes
// every message to its precomputed position. The fan-out chunks coincide
// with the send shards, and a shard's arena is its processors' runs
// concatenated in (processor, slot-sorted) order, so the passes scan each
// arena linearly. Positions depend only on (processor order, slot order
// within processor), never on worker scheduling, so the slab is
// byte-identical to the serial path for any worker count.
func (m *Machine) routeParallel(slab []Msg, hist []int, cur []int) {
	p := m.p
	nh := len(hist)
	width, chunks := m.width, len(m.shards)
	grid := m.core.Grid(chunks * (p + nh))
	cnts := grid[:chunks*p]
	hists := grid[chunks*p:]

	m.core.ForChunks(p, func(lo, hi int) {
		r := lo / width
		crow := cnts[r*p : (r+1)*p]
		hrow := hists[r*nh : (r+1)*nh]
		sends := m.shards[r].buf
		for k := range sends {
			s := &sends[k]
			end := s.slot + int(s.msg.Len)
			for f := s.slot; f < end; f++ {
				hrow[f]++
			}
			crow[int(s.msg.Dst)]++
		}
	})

	for t := 0; t < nh; t++ {
		sum := 0
		for r := 0; r < chunks; r++ {
			sum += hists[r*nh+t]
		}
		hist[t] = sum
	}
	for d := 0; d < p; d++ {
		s := cur[d]
		for r := 0; r < chunks; r++ {
			k := cnts[r*p+d]
			cnts[r*p+d] = s
			s += k
		}
	}

	m.core.ForChunks(p, func(lo, hi int) {
		r := lo / width
		crow := cnts[r*p : (r+1)*p]
		sends := m.shards[r].buf
		for k := range sends {
			d := int(sends[k].msg.Dst)
			slab[crow[d]] = sends[k].msg
			crow[d]++
		}
	})
}

// inboxView carves processor i's inbox out of the routed slab. The view is
// a three-index subslice (cap == len), so an append past it — Deliver's old
// behavior, or a misbehaving caller — reallocates rather than clobbering a
// neighboring bucket.
func (m *Machine) inboxView(i int) []Msg {
	lo, hi := m.inOff[i], m.inOff[i+1]
	return m.inbox[lo:hi:hi]
}

// Inbox returns processor i's current inbox (the messages it would see via
// Recv in the next superstep). Intended for drivers and tests.
func (m *Machine) Inbox(i int) []Msg { return m.inboxView(i) }

// Deliver injects messages directly into inboxes without cost, bypassing
// the network. It models free input distribution in experiments whose
// problem statement places inputs at processors (and is also convenient in
// tests). The inbox slab is destination-ordered, so Deliver rebuilds it
// with the new messages appended to their destinations' buckets (existing
// messages first, then the new ones in argument order); it is a setup path
// and may allocate.
func (m *Machine) Deliver(msgs []Msg) {
	for _, msg := range msgs {
		if d := int(msg.Dst); d < 0 || d >= m.p {
			panic(fmt.Sprintf("bsp: Deliver to invalid dst %d", d))
		}
	}
	add := make([]int32, m.p+1)
	for _, msg := range msgs {
		add[msg.Dst]++
	}
	merged := make([]Msg, len(m.inbox)+len(msgs))
	newOff := make([]int32, m.p+1)
	acc := int32(0)
	for d := 0; d < m.p; d++ {
		newOff[d] = acc
		acc += m.inOff[d+1] - m.inOff[d] + add[d]
	}
	newOff[m.p] = acc
	// Place existing bucket contents, then the new messages in argument
	// order; add[] doubles as the per-destination write cursor.
	for d := 0; d < m.p; d++ {
		add[d] = newOff[d] + int32(copy(merged[newOff[d]:], m.inbox[m.inOff[d]:m.inOff[d+1]]))
	}
	for _, msg := range msgs {
		merged[add[msg.Dst]] = msg
		add[msg.Dst]++
	}
	m.inbox = merged
	m.inOff = newOff
}

// Reset clears inboxes, time and trace, preserving processors and RNG state.
func (m *Machine) Reset() {
	m.inbox = nil
	for i := range m.inOff {
		m.inOff[i] = 0
		m.spareOff[i] = 0
	}
	m.core.ResetClock()
}
