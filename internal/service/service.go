// Package service turns the experiment registry into a run service: a job
// queue plus a sweep executor on top of the content-addressed run store.
//
// A job is one request — a set of experiment ids × seeds. The executor fans
// the tasks of a job out over an internal/workpool pool with a per-job
// context timeout, prompt cancellation, panic recovery around experiment
// code, and bounded retries. Every completed task is stored in
// internal/runstore keyed by (experiment, params, seed, code version), so a
// repeated request is served from cache without re-simulating — the
// simulations are deterministic, which makes them the ideal cacheable
// workload. The HTTP API in http.go exposes the whole thing as
// `bandsim serve`.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"parbw/internal/harness"
	"parbw/internal/result"
	"parbw/internal/runstore"
	"parbw/internal/workpool"
)

// Runner executes one experiment run. The default runner dispatches into the
// harness registry; tests substitute flaky runners to exercise retry and
// panic-recovery paths.
type Runner func(id string, cfg harness.Config) (*result.Result, error)

// DefaultRunner runs a registered experiment silently and returns its
// structured result.
func DefaultRunner(id string, cfg harness.Config) (*result.Result, error) {
	e, ok := harness.ByID(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return e.Run(io.Discard, cfg), nil
}

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	Store      *runstore.Store // required
	Workers    int             // sweep fan-out width; <=0 → GOMAXPROCS
	JobTimeout time.Duration   // default per-job timeout; <=0 → 5m
	Retries    int             // extra attempts per failed task; <0 → 0 (default 2)
	QueueDepth int             // pending-job bound; <=0 → 64
	MaxTasks   int             // per-job task bound; <=0 → 4096
	Runner     Runner          // nil → DefaultRunner
}

// Task and job states.
const (
	StatusQueued    = "queued" // jobs only
	StatusPending   = "pending"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Task is one (experiment, seed) cell of a job's sweep.
type Task struct {
	Experiment string  `json:"experiment"`
	Seed       uint64  `json:"seed"`
	Quick      bool    `json:"quick"`
	Key        string  `json:"key"`
	Status     string  `json:"status"`
	Cached     bool    `json:"cached"`
	Attempts   int     `json:"attempts"`
	WallMS     float64 `json:"wall_ms"`
	Error      string  `json:"error,omitempty"`

	// Result is the canonical JSON of the structured result, exactly the
	// bytes held by the run store — byte-identical across repeated requests.
	Result []byte `json:"-"`
}

// Job is one submitted request moving through the queue. job.mu guards
// state, the timestamps, and every field of its tasks; the executor and the
// HTTP snapshotting both take it.
type Job struct {
	id      string
	timeout time.Duration
	runCtx  context.Context

	mu       sync.Mutex
	state    string
	tasks    []*Task
	created  time.Time
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

// TaskView is the JSON shape of a task, including the cached result bytes.
type TaskView struct {
	Experiment string          `json:"experiment"`
	Seed       uint64          `json:"seed"`
	Quick      bool            `json:"quick"`
	Key        string          `json:"key"`
	Status     string          `json:"status"`
	Cached     bool            `json:"cached"`
	Attempts   int             `json:"attempts"`
	WallMS     float64         `json:"wall_ms"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// JobView is the JSON shape of a job.
type JobView struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	TimeoutMS int64      `json:"timeout_ms"`
	Tasks     []TaskView `json:"tasks"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Created:   j.created,
		TimeoutMS: j.timeout.Milliseconds(),
		Tasks:     make([]TaskView, len(j.tasks)),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	for i, t := range j.tasks {
		v.Tasks[i] = TaskView{
			Experiment: t.Experiment,
			Seed:       t.Seed,
			Quick:      t.Quick,
			Key:        t.Key,
			Status:     t.Status,
			Cached:     t.Cached,
			Attempts:   t.Attempts,
			WallMS:     t.WallMS,
			Error:      t.Error,
			Result:     json.RawMessage(t.Result),
		}
	}
	return v
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job finishes (any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation; queued tasks stop dispatching promptly.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes or ctx is done; it returns the job's
// terminal state, or "" if ctx won the race.
func (j *Job) Wait(ctx context.Context) string {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state
	case <-ctx.Done():
		return ""
	}
}

// Stats are the server's lifetime counters, served by /statsz.
type Stats struct {
	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	TasksRun      uint64 `json:"tasks_run"`
	TasksCached   uint64 `json:"tasks_cached"`
	TaskRetries   uint64 `json:"task_retries"`
	TaskPanics    uint64 `json:"task_panics"`
	QueueLen      int    `json:"queue_len"`
	Workers       int    `json:"workers"`
}

// Server owns the job queue, the executor, and the run store.
type Server struct {
	opts   Options
	pool   *workpool.Pool
	runner Runner

	baseCtx context.Context
	cancel  context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    int
	jobs   map[string]*Job
	order  []string // job ids, oldest first, for pruning
	stats  Stats
}

// maxRetainedJobs bounds the in-memory job index; the oldest finished jobs
// are pruned past it (their results stay in the run store).
const maxRetainedJobs = 512

// New starts a server: the dispatcher goroutine runs until Close.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("service: Options.Store is required")
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 5 * time.Minute
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxTasks <= 0 {
		opts.MaxTasks = 4096
	}
	if opts.Runner == nil {
		opts.Runner = DefaultRunner
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		pool:    workpool.New(opts.Workers),
		runner:  opts.Runner,
		baseCtx: ctx,
		cancel:  cancel,
		queue:   make(chan *Job, opts.QueueDepth),
		jobs:    map[string]*Job{},
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Close cancels every running job, stops the dispatcher, and waits for it to
// drain. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Store exposes the underlying run store (for stats and direct key reads).
func (s *Server) Store() *runstore.Store { return s.opts.Store }

// RunRequest is a submitted sweep: the cross product of Experiments × Seeds.
type RunRequest struct {
	// Experiments lists harness ids; the single entry "all" expands to every
	// registered experiment.
	Experiments []string `json:"experiments"`
	// Seeds defaults to [1].
	Seeds []uint64 `json:"seeds"`
	Quick bool     `json:"quick"`
	// TimeoutMS overrides the server's default per-job timeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// Wait, when true (the HTTP default), makes POST /runs block until the
	// job reaches a terminal state.
	Wait *bool `json:"wait"`
}

// UnknownExperimentError reports an id that is not in the registry, with
// closest-match suggestions.
type UnknownExperimentError struct {
	ID          string
	Suggestions []string
}

func (e *UnknownExperimentError) Error() string {
	if len(e.Suggestions) == 0 {
		return fmt.Sprintf("unknown experiment %q", e.ID)
	}
	return fmt.Sprintf("unknown experiment %q (closest: %v)", e.ID, e.Suggestions)
}

// Submit validates req, builds the job, and enqueues it. It returns
// immediately; use Job.Wait or Job.Done for completion.
func (s *Server) Submit(req RunRequest) (*Job, error) {
	ids, err := expandExperiments(req.Experiments)
	if err != nil {
		return nil, err
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	if n := len(ids) * len(seeds); n > s.opts.MaxTasks {
		return nil, fmt.Errorf("service: job would have %d tasks, cap is %d", n, s.opts.MaxTasks)
	}
	timeout := s.opts.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	tasks := make([]*Task, 0, len(ids)*len(seeds))
	for _, id := range ids {
		for _, seed := range seeds {
			tasks = append(tasks, &Task{
				Experiment: id,
				Seed:       seed,
				Quick:      req.Quick,
				Key: runstore.Key(runstore.KeySpec{
					Experiment: id,
					Seed:       seed,
					Quick:      req.Quick,
					Version:    harness.CodeVersion,
				}),
				Status: StatusPending,
			})
		}
	}

	jobCtx, jobCancel := context.WithCancel(s.baseCtx)
	job := &Job{
		timeout: timeout,
		runCtx:  jobCtx,
		state:   StatusQueued,
		tasks:   tasks,
		created: time.Now(),
		cancel:  jobCancel,
		done:    make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jobCancel()
		return nil, errors.New("service: server is shut down")
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.stats.JobsAccepted++
	s.pruneLocked()
	s.mu.Unlock()

	select {
	case s.queue <- job:
		return job, nil
	default:
		s.finishJob(job, StatusFailed)
		return nil, fmt.Errorf("service: queue full (depth %d)", s.opts.QueueDepth)
	}
}

func expandExperiments(ids []string) ([]string, error) {
	if len(ids) == 0 {
		return nil, errors.New("service: no experiments requested")
	}
	if len(ids) == 1 && ids[0] == "all" {
		all := harness.All()
		out := make([]string, len(all))
		for i, e := range all {
			out[i] = e.ID
		}
		return out, nil
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, ok := harness.ByID(id); !ok {
			return nil, &UnknownExperimentError{ID: id, Suggestions: harness.Suggest(id)}
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

// Job lookup by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every retained job, oldest first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueLen = len(s.queue)
	st.Workers = s.pool.Workers()
	return st
}

// pruneLocked drops the oldest finished jobs past maxRetainedJobs.
func (s *Server) pruneLocked() {
	for len(s.order) > maxRetainedJobs {
		dropped := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
			j.mu.Lock()
			terminal := j.state == StatusDone || j.state == StatusFailed || j.state == StatusCancelled
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything retained is still live
		}
	}
}

// dispatch is the queue consumer: jobs execute one at a time in submission
// order; each job's tasks fan out over the workpool.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			// Drain anything still queued as cancelled.
			for {
				select {
				case job := <-s.queue:
					s.finishJob(job, StatusCancelled)
				default:
					return
				}
			}
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	ctx, cancelTimeout := context.WithTimeout(job.runCtx, job.timeout)
	defer cancelTimeout()

	job.mu.Lock()
	job.state = StatusRunning
	job.started = time.Now()
	tasks := job.tasks
	job.mu.Unlock()

	s.pool.ForCtx(ctx, len(tasks), func(i int) {
		s.runTask(ctx, job, tasks[i])
	})

	state := StatusDone
	job.mu.Lock()
	for _, t := range tasks {
		switch t.Status {
		case StatusPending, StatusRunning:
			t.Status = StatusCancelled
			t.Error = contextReason(ctx)
			state = StatusCancelled
		case StatusCancelled:
			state = StatusCancelled
		case StatusFailed:
			if state != StatusCancelled {
				state = StatusFailed
			}
		}
	}
	job.mu.Unlock()
	s.finishJob(job, state)
}

func contextReason(ctx context.Context) string {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return "job timeout"
	case ctx.Err() != nil:
		return "job cancelled"
	default:
		return ""
	}
}

func (s *Server) finishJob(job *Job, state string) {
	job.mu.Lock()
	alreadyDone := job.state == StatusDone || job.state == StatusFailed || job.state == StatusCancelled
	if !alreadyDone {
		job.state = state
		job.finished = time.Now()
	}
	job.mu.Unlock()
	if alreadyDone {
		return
	}
	job.cancel()
	close(job.done)
	s.mu.Lock()
	switch state {
	case StatusDone:
		s.stats.JobsDone++
	case StatusFailed:
		s.stats.JobsFailed++
	case StatusCancelled:
		s.stats.JobsCancelled++
	}
	s.mu.Unlock()
}

// runTask executes one task: run-store lookup first, then the experiment
// with panic recovery and bounded retries. Task fields are only touched
// under job.mu so HTTP snapshots never race the executor.
func (s *Server) runTask(ctx context.Context, job *Job, t *Task) {
	setTask := func(fn func()) {
		job.mu.Lock()
		fn()
		job.mu.Unlock()
	}
	setTask(func() { t.Status = StatusRunning })

	if data, ok, err := s.opts.Store.GetBytes(t.Key); err == nil && ok {
		setTask(func() {
			t.Cached = true
			t.Result = data
			t.Status = StatusDone
		})
		s.mu.Lock()
		s.stats.TasksCached++
		s.mu.Unlock()
		return
	}

	cfg := harness.Config{Seed: t.Seed, Quick: t.Quick}
	var lastErr error
	for attempt := 1; attempt <= 1+s.opts.Retries; attempt++ {
		if ctx.Err() != nil {
			setTask(func() {
				t.Status = StatusCancelled
				t.Error = contextReason(ctx)
			})
			return
		}
		setTask(func() { t.Attempts = attempt })
		if attempt > 1 {
			s.mu.Lock()
			s.stats.TaskRetries++
			s.mu.Unlock()
		}
		start := time.Now()
		res, err := s.safeRun(t.Experiment, cfg)
		wall := time.Since(start)
		if err == nil {
			data, perr := s.opts.Store.Put(t.Key, res)
			if perr != nil {
				lastErr = perr
				continue
			}
			setTask(func() {
				t.Result = data
				t.WallMS = float64(wall.Microseconds()) / 1000
				t.Status = StatusDone
			})
			s.mu.Lock()
			s.stats.TasksRun++
			s.mu.Unlock()
			return
		}
		lastErr = err
	}
	setTask(func() {
		t.Status = StatusFailed
		if lastErr != nil {
			t.Error = lastErr.Error()
		}
	})
}

// safeRun invokes the runner with panic recovery, converting a panicking
// experiment into an error the retry loop can handle.
func (s *Server) safeRun(id string, cfg harness.Config) (res *result.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.mu.Lock()
			s.stats.TaskPanics++
			s.mu.Unlock()
			err = fmt.Errorf("experiment %s panicked: %v\n%s", id, p, debug.Stack())
		}
	}()
	return s.runner(id, cfg)
}
