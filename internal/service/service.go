// Package service turns the experiment registry into a run service: a job
// queue plus a sweep executor on top of the content-addressed run store.
//
// A job is one request — a set of experiment ids × seeds. The executor fans
// the tasks of a job out over an internal/workpool pool with a per-job
// context timeout, prompt cancellation, panic recovery around experiment
// code, and bounded retries paced by exponential backoff with deterministic
// jitter. Every completed task is stored in internal/runstore keyed by
// (experiment, params, seed, code version), so a repeated request is served
// from cache without re-simulating — the simulations are deterministic,
// which makes them the ideal cacheable workload.
//
// The serve path is engineered to degrade rather than collapse, mirroring
// the paper's bandwidth thesis: a full queue sheds load (typed QueueFullError
// → HTTP 503 + Retry-After) instead of queueing unboundedly, a failing run
// store trips a circuit breaker and jobs complete compute-without-cache
// instead of failing, and Shutdown drains — running jobs finish inside a
// deadline while queued jobs cancel. Chaos tests drive all of it through
// internal/fault plans threaded via Options.Fault and the run store's
// filesystem seam. The HTTP API in http.go exposes the whole thing as
// `bandsim serve`.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"parbw/internal/cluster"
	"parbw/internal/engine"
	"parbw/internal/fault"
	"parbw/internal/harness"
	"parbw/internal/result"
	"parbw/internal/retry"
	"parbw/internal/runstore"
	"parbw/internal/workpool"
)

// Runner executes one experiment run. The default runner dispatches into the
// harness registry; tests substitute flaky runners to exercise retry and
// panic-recovery paths.
type Runner func(id string, cfg harness.Config) (*result.Result, error)

// DefaultRunner runs a registered experiment silently and returns its
// structured result.
func DefaultRunner(id string, cfg harness.Config) (*result.Result, error) {
	e, ok := harness.ByID(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return e.Run(io.Discard, cfg), nil
}

// Injection points the executor fires on the fault plan (Options.Fault).
const (
	// PointRunner fires inside the panic-recovery envelope just before the
	// runner: Error fails the attempt, Panic exercises recovery, Slow
	// stalls the task.
	PointRunner = "service.runner"
	// PointStoreGet fires before the cache lookup; an Error skips the
	// lookup (counted as a store error) and the task recomputes.
	PointStoreGet = "service.store.get"
	// PointStorePut fires before the cache write; an Error counts as a
	// store-write failure against the circuit breaker.
	PointStorePut = "service.store.put"
)

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	Store      *runstore.Store // required
	Workers    int             // sweep fan-out width; <=0 → GOMAXPROCS
	JobTimeout time.Duration   // default per-job timeout; <=0 → 5m
	Retries    int             // extra attempts per failed task; <0 → 0 (default 2)
	QueueDepth int             // pending-job bound; <=0 → 64
	MaxTasks   int             // per-job task bound; <=0 → 4096
	Runner     Runner          // nil → DefaultRunner

	// Retry discipline. Backoff is the pause before the first retry,
	// doubling per attempt with deterministic jitter, capped at BackoffMax.
	Backoff    time.Duration // 0 → 50ms; <0 → no backoff
	BackoffMax time.Duration // 0 → 2s

	// Circuit breaker around run-store writes: BreakerThreshold consecutive
	// write failures open it for BreakerCooldown, during which tasks
	// complete without caching (degraded) instead of retrying the store.
	BreakerThreshold int           // 0 → 3; <0 → breaker disabled
	BreakerCooldown  time.Duration // 0 → 5s

	// Fault is an optional chaos plan; nil injects nothing.
	Fault *fault.Plan

	// Live streaming (GET /v1/runs/{id}/events). SubscriberBuffer bounds each
	// subscriber's pending-event queue — a slower client loses events (with a
	// gap marker) instead of back-pressuring the executor. ReplayEvents bounds
	// the per-job ring that serves Last-Event-ID resume. Heartbeat paces the
	// SSE keepalive comments. StepSample publishes every Nth committed engine
	// superstep of a task as a lossy "step" event while anyone is subscribed.
	SubscriberBuffer int           // <=0 → 4096
	ReplayEvents     int           // <=0 → 4096
	Heartbeat        time.Duration // 0 → 15s; <0 → no heartbeats
	StepSample       int           // 0 → 64; <0 → step events disabled

	// NoUnversionedAliases drops the deprecated pre-v1 alias paths from the
	// handler: only /v1 answers. The default (false) keeps the aliases,
	// matching `serve -compat-unversioned=true`.
	NoUnversionedAliases bool

	// Cluster, when non-nil, turns the server into one node of a sharded
	// cluster: run-store keys are placed on a consistent-hash ring, and a
	// task whose key is owned by a peer is forwarded there (cluster.go).
	// When the peer is down, slow, or partitioned the task degrades to
	// local compute-without-forwarding instead of failing. Nil is
	// single-node mode, byte-identical to the pre-cluster behavior.
	Cluster *cluster.Client
}

// Task and job states.
const (
	StatusQueued    = "queued" // jobs only
	StatusPending   = "pending"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// Task is one (experiment, params, seed) cell of a job's sweep. Params is
// the full resolved assignment — defaults applied, values canonical, sorted
// by name — so the task is self-describing and its Key is reproducible from
// the fields alone.
type Task struct {
	Experiment string         `json:"experiment"`
	Seed       uint64         `json:"seed"`
	Params     []result.Param `json:"params"`
	Key        string         `json:"key"`
	Owner      string         `json:"owner,omitempty"` // cluster node owning this key ("" single-node)
	Status     string         `json:"status"`
	Cached     bool           `json:"cached"`
	Forwarded  bool           `json:"forwarded,omitempty"` // answered by the key's owning peer
	Degraded   bool           `json:"degraded,omitempty"`  // done, but off the normal path: not cached, or computed locally because the owning peer was unreachable
	Attempts   int            `json:"attempts"`
	WallMS     float64        `json:"wall_ms"`
	Error      string         `json:"error,omitempty"`

	// Result is the canonical JSON of the structured result, exactly the
	// bytes held by the run store — byte-identical across repeated requests.
	Result []byte `json:"-"`
}

// Job is one submitted request moving through the queue. job.mu guards
// state, the timestamps, and every field of its tasks; the executor and the
// HTTP snapshotting both take it.
type Job struct {
	id      string
	timeout time.Duration
	runCtx  context.Context

	mu       sync.Mutex
	state    string
	tasks    []*Task
	created  time.Time
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
	done   chan struct{}
	bus    *bus // the job's event stream; closed when the job finishes
}

// Events exposes the job's event bus for in-process subscribers (the SSE
// handler, tests, and the cluster event back-channel).
func (j *Job) Events() *bus { return j.bus }

// TaskView is the JSON shape of a task, including the cached result bytes.
type TaskView struct {
	Experiment string          `json:"experiment"`
	Seed       uint64          `json:"seed"`
	Params     []result.Param  `json:"params"`
	Key        string          `json:"key"`
	Owner      string          `json:"owner,omitempty"`
	Status     string          `json:"status"`
	Cached     bool            `json:"cached"`
	Forwarded  bool            `json:"forwarded,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	Attempts   int             `json:"attempts"`
	WallMS     float64         `json:"wall_ms"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// JobView is the JSON shape of a job.
type JobView struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	TimeoutMS int64      `json:"timeout_ms"`
	Tasks     []TaskView `json:"tasks"`
}

// JobSummary is the HTTP shape of a job since the jobs/results resource
// split: identity, state, and counts — never the task list or result bytes.
// Tasks page through GET /v1/runs/{id}/tasks; stored results live under
// GET /v1/results/{key}.
type JobSummary struct {
	ID          string         `json:"id"`
	State       string         `json:"state"`
	Created     time.Time      `json:"created"`
	Started     *time.Time     `json:"started,omitempty"`
	Finished    *time.Time     `json:"finished,omitempty"`
	TimeoutMS   int64          `json:"timeout_ms"`
	TaskCount   int            `json:"task_count"`
	TaskStates  map[string]int `json:"task_states"`
	Experiments []string       `json:"experiments"`
}

// Summary snapshots the job as its HTTP summary view.
func (j *Job) Summary() JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobSummary{
		ID:         j.id,
		State:      j.state,
		Created:    j.created,
		TimeoutMS:  j.timeout.Milliseconds(),
		TaskCount:  len(j.tasks),
		TaskStates: map[string]int{},
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	seen := map[string]bool{}
	for _, t := range j.tasks {
		v.TaskStates[t.Status]++
		if !seen[t.Experiment] {
			seen[t.Experiment] = true
			v.Experiments = append(v.Experiments, t.Experiment)
		}
	}
	sort.Strings(v.Experiments)
	return v
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Created:   j.created,
		TimeoutMS: j.timeout.Milliseconds(),
		Tasks:     make([]TaskView, len(j.tasks)),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	for i, t := range j.tasks {
		v.Tasks[i] = TaskView{
			Experiment: t.Experiment,
			Seed:       t.Seed,
			Params:     t.Params,
			Key:        t.Key,
			Owner:      t.Owner,
			Status:     t.Status,
			Cached:     t.Cached,
			Forwarded:  t.Forwarded,
			Degraded:   t.Degraded,
			Attempts:   t.Attempts,
			WallMS:     t.WallMS,
			Error:      t.Error,
			Result:     json.RawMessage(t.Result),
		}
	}
	return v
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job finishes (any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation; queued tasks stop dispatching promptly.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job finishes or ctx is done; it returns the job's
// terminal state, or "" if ctx won the race.
func (j *Job) Wait(ctx context.Context) string {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.state
	case <-ctx.Done():
		return ""
	}
}

func terminal(state string) bool {
	return state == StatusDone || state == StatusFailed || state == StatusCancelled
}

// Stats are the server's lifetime counters, served by /statsz.
type Stats struct {
	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsShed      uint64 `json:"jobs_shed"` // rejected: queue full or draining
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	TasksRun      uint64 `json:"tasks_run"`
	TasksCached   uint64 `json:"tasks_cached"`
	TasksDegraded uint64 `json:"tasks_degraded"` // completed without a cache write
	// Cluster-mode counters. The origin node counts a forward, the owner
	// counts the run (or cache hit) it answered with — never both, so summing
	// tasks_run+tasks_cached+tasks_forwarded across nodes counts each task once.
	TasksForwarded  uint64 `json:"tasks_forwarded"`  // tasks answered by their owning peer
	ForwardDegraded uint64 `json:"forward_degraded"` // forwards abandoned; task computed locally
	TaskRetries     uint64 `json:"task_retries"`
	TaskPanics      uint64 `json:"task_panics"`
	StoreErrors     uint64 `json:"store_errors"` // store read/write failures observed
	BreakerOpens    uint64 `json:"breaker_opens"`
	BreakerOpen     bool   `json:"breaker_open"`
	EncodeErrors    uint64 `json:"http_encode_errors"`
	// Live-stream counters (the per-job event buses).
	StreamEventsPublished uint64 `json:"stream_events_published"`
	StreamEventsDropped   uint64 `json:"stream_events_dropped"`
	StreamEventsCoalesced uint64 `json:"stream_events_coalesced"`
	Draining              bool   `json:"draining"`
	QueueLen              int    `json:"queue_len"`
	Workers               int    `json:"workers"`
}

// Server owns the job queue, the executor, and the run store.
type Server struct {
	opts    Options
	pool    *workpool.Pool
	runner  Runner
	fault   *fault.Plan
	breaker *retry.Breaker
	cluster *cluster.Client

	baseCtx        context.Context
	cancel         context.CancelFunc
	queue          chan *Job
	wg             sync.WaitGroup
	drainOnce      sync.Once
	drainCh        chan struct{}
	dispatcherDone chan struct{}

	streamM   busMetrics // server-wide streaming counters (every job bus feeds them)
	removeTap func()     // detaches the engine tagged-observer bridge

	mu       sync.Mutex
	closed   bool
	draining bool
	seq      int
	jobs     map[string]*Job
	order    []string // job ids, oldest first, for pruning
	stats    Stats
	avgJob   time.Duration // EWMA of job wall time; feeds retryAfterHint
}

// maxRetainedJobs bounds the in-memory job index; the oldest finished jobs
// are pruned past it (their results stay in the run store).
const maxRetainedJobs = 512

// New starts a server: the dispatcher goroutine runs until Close/Shutdown.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("service: Options.Store is required")
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 5 * time.Minute
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxTasks <= 0 {
		opts.MaxTasks = 4096
	}
	if opts.Runner == nil {
		opts.Runner = DefaultRunner
	}
	if opts.Backoff == 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 4096
	}
	if opts.ReplayEvents <= 0 {
		opts.ReplayEvents = 4096
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 15 * time.Second
	}
	if opts.StepSample == 0 {
		opts.StepSample = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:           opts,
		pool:           workpool.New(opts.Workers),
		runner:         opts.Runner,
		fault:          opts.Fault,
		breaker:        retry.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		cluster:        opts.Cluster,
		baseCtx:        ctx,
		cancel:         cancel,
		queue:          make(chan *Job, opts.QueueDepth),
		drainCh:        make(chan struct{}),
		dispatcherDone: make(chan struct{}),
		jobs:           map[string]*Job{},
	}
	// The engine→bus bridge: tasks with live subscribers tag their executor
	// goroutine (runTask), and this observer turns the tagged step commits
	// into sampled "step" events on the owning job's bus. With no tags the
	// engine-side cost is two atomic loads per step.
	s.removeTap = engine.AddTaggedObserver(engine.TaggedObserverFunc(s.onTaggedStep))
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// nodeName is this server's cluster identity, or "" on a single-node server.
func (s *Server) nodeName() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self()
}

// stepTag marks an executor goroutine as driving one task of one job. The
// bridge checks srv so that multiple Servers in one process (cluster tests)
// never deliver each other's steps.
type stepTag struct {
	srv  *Server
	emit func(st engine.StepStats)
	n    int // steps seen; only the tagged goroutine touches it
}

func (s *Server) onTaggedStep(tag any, st engine.StepStats) {
	tg, ok := tag.(*stepTag)
	if !ok || tg.srv != s {
		return
	}
	tg.n++
	if sample := s.opts.StepSample; sample > 0 && (tg.n-1)%sample == 0 {
		tg.emit(st)
	}
}

// Close is the hard stop: it cancels every running job, stops the
// dispatcher, and waits for it to drain. Idempotent, and safe after
// Shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	s.removeTap()
}

// Shutdown is the graceful drain: new submissions are rejected, jobs still
// queued are cancelled, and jobs already running are given until ctx's
// deadline to finish before being hard-cancelled. It returns nil on a clean
// drain, or ctx's error if the deadline forced a hard cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	if alreadyClosed {
		s.wg.Wait()
		return nil
	}

	// Queued jobs cancel promptly; the dispatcher skips them when it gets
	// there. Running jobs are left alone.
	for _, j := range jobs {
		j.mu.Lock()
		queued := j.state == StatusQueued
		j.mu.Unlock()
		if queued {
			s.finishJob(j, StatusCancelled)
		}
	}
	s.drainOnce.Do(func() { close(s.drainCh) })

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // deadline passed: hard-cancel what is still running
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.removeTap()
	return err
}

// Ready reports whether the server can usefully accept a job right now:
// the dispatcher is alive, the server is not draining or closed, and the
// run store can persist data (probed with a real write).
func (s *Server) Ready() error {
	s.mu.Lock()
	closed, draining := s.closed, s.draining
	s.mu.Unlock()
	if closed {
		return errors.New("service: server is shut down")
	}
	if draining {
		return ErrDraining
	}
	select {
	case <-s.dispatcherDone:
		return errors.New("service: dispatcher not running")
	default:
	}
	return s.opts.Store.CheckWritable()
}

// Store exposes the underlying run store (for stats and direct key reads).
func (s *Server) Store() *runstore.Store { return s.opts.Store }

// RunRequest is a submitted sweep: the cross product of
// Experiments × parameter grid × Seeds.
type RunRequest struct {
	// Experiments lists harness ids; the single entry "all" expands to every
	// registered experiment.
	Experiments []string `json:"experiments"`
	// Seeds defaults to [1].
	Seeds []uint64 `json:"seeds"`
	// Params sets experiment parameters by name. A scalar (number, bool, or
	// string) fixes the parameter for every task; an array declares a sweep
	// axis, and the job fans out over the cross product of all axes — each
	// cell an independently keyed, independently cached task. Names and
	// values are validated against each experiment's declared schema.
	Params map[string]any `json:"params"`
	// Quick is legacy sugar for Params{"quick": true}; an explicit "quick"
	// entry in Params wins.
	Quick bool `json:"quick"`
	// TimeoutMS overrides the server's default per-job timeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// Wait, when true (the HTTP default), makes POST /runs block until the
	// job reaches a terminal state.
	Wait *bool `json:"wait"`
}

// UnknownExperimentError reports an id that is not in the registry, with
// closest-match suggestions.
type UnknownExperimentError struct {
	ID          string
	Suggestions []string
}

func (e *UnknownExperimentError) Error() string {
	if len(e.Suggestions) == 0 {
		return fmt.Sprintf("unknown experiment %q", e.ID)
	}
	return fmt.Sprintf("unknown experiment %q (closest: %v)", e.ID, e.Suggestions)
}

// QueueFullError is returned by Submit when the pending-job queue is at
// capacity. It is load shedding, not failure: the request was never
// admitted, and RetryAfter tells the client when trying again is sensible.
// The HTTP layer maps it to 503 + Retry-After.
type QueueFullError struct {
	Depth      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: queue full (depth %d), retry after %s", e.Depth, e.RetryAfter)
}

// ErrDraining is returned by Submit once Shutdown has begun.
var ErrDraining = errors.New("service: server draining")

// retryAfterHint derives the Retry-After attached to shed requests from the
// state that caused the shedding: with `backlog` jobs queued and jobs
// draining at one per avgJob, the queue frees a slot in about
// (backlog+1)·avgJob — so that is when retrying stops being futile. A server
// that has finished nothing yet assumes 1s per job. Clamped to [1s, 60s]:
// at least a polite pause, at most a minute so clients re-probe even when
// the queue looks hopeless.
func retryAfterHint(backlog int, avgJob time.Duration) time.Duration {
	if avgJob <= 0 {
		avgJob = time.Second
	}
	hint := time.Duration(backlog+1) * avgJob
	if hint < time.Second {
		return time.Second
	}
	if hint > time.Minute {
		return time.Minute
	}
	return hint
}

// retryAfterNow is retryAfterHint evaluated against the live queue.
func (s *Server) retryAfterNow() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return retryAfterHint(len(s.queue), s.avgJob)
}

// Submit validates req, builds the job, and enqueues it. It returns
// immediately; use Job.Wait or Job.Done for completion. When the queue is
// full the request is shed with a QueueFullError instead of blocking.
func (s *Server) Submit(req RunRequest) (*Job, error) {
	ids, err := expandExperiments(req.Experiments)
	if err != nil {
		return nil, err
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	cells, err := expandParamGrid(req)
	if err != nil {
		return nil, err
	}
	if n := len(ids) * len(cells) * len(seeds); n > s.opts.MaxTasks {
		return nil, fmt.Errorf("service: job would have %d tasks, cap is %d", n, s.opts.MaxTasks)
	}
	timeout := s.opts.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	tasks := make([]*Task, 0, len(ids)*len(cells)*len(seeds))
	for _, id := range ids {
		e, _ := harness.ByID(id) // expandExperiments already vetted the id
		for _, cell := range cells {
			// Resolve per (experiment, cell): validation errors (unknown
			// name, bad value) reject the whole request before anything runs.
			vals, err := e.Resolve(cell)
			if err != nil {
				return nil, err
			}
			params := vals.ResultParams(0).Values
			canon := vals.Canonical()
			for _, seed := range seeds {
				tasks = append(tasks, &Task{
					Experiment: id,
					Seed:       seed,
					Params:     params,
					Key: runstore.Key(runstore.KeySpec{
						Experiment: id,
						Seed:       seed,
						Params:     canon,
						Version:    harness.CodeVersion,
					}),
					Status: StatusPending,
				})
			}
		}
	}

	// Partition the grid at admission: in cluster mode every task records the
	// node owning its store key, and the executor ships it there (cluster.go).
	if s.cluster != nil {
		for _, t := range tasks {
			t.Owner = s.cluster.Owner(t.Key)
		}
	}

	jobCtx, jobCancel := context.WithCancel(s.baseCtx)
	job := &Job{
		timeout: timeout,
		runCtx:  jobCtx,
		state:   StatusQueued,
		tasks:   tasks,
		created: time.Now(),
		cancel:  jobCancel,
		done:    make(chan struct{}),
		bus:     newBus(s.opts.ReplayEvents, s.opts.SubscriberBuffer, &s.streamM),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jobCancel()
		return nil, errors.New("service: server is shut down")
	}
	if s.draining {
		s.stats.JobsShed++
		s.mu.Unlock()
		jobCancel()
		return nil, ErrDraining
	}
	select {
	case s.queue <- job:
	default:
		// Admission control: shed instead of admitting work we cannot
		// start. The job is never registered, so nothing leaks. The hint is
		// computed at the shed moment from the backlog and drain rate.
		s.stats.JobsShed++
		retryAfter := retryAfterHint(len(s.queue), s.avgJob)
		s.mu.Unlock()
		jobCancel()
		return nil, &QueueFullError{Depth: s.opts.QueueDepth, RetryAfter: retryAfter}
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.stats.JobsAccepted++
	s.pruneLocked()
	s.mu.Unlock()
	// Admission events: one per cell, carrying the full resolved identity so
	// a stream consumer needs no side lookups. Subscribers attach later (they
	// need the job id first); the replay ring catches them up.
	job.bus.publish(Event{Type: EventJob, Task: -1, State: StatusQueued})
	for i, t := range tasks {
		job.bus.publish(Event{
			Type: EventAdmitted, Task: i,
			Experiment: t.Experiment, Seed: t.Seed, Params: t.Params,
			Key: t.Key, Node: t.Owner,
		})
	}
	return job, nil
}

func expandExperiments(ids []string) ([]string, error) {
	if len(ids) == 0 {
		return nil, errors.New("service: no experiments requested")
	}
	if len(ids) == 1 && ids[0] == "all" {
		all := harness.All()
		out := make([]string, len(all))
		for i, e := range all {
			out[i] = e.ID
		}
		return out, nil
	}
	seen := map[string]bool{}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, ok := harness.ByID(id); !ok {
			return nil, &UnknownExperimentError{ID: id, Suggestions: harness.Suggest(id)}
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, nil
}

// expandParamGrid turns req.Params into the job's parameter cells: scalars
// fix a parameter for every task, arrays declare sweep axes, and the cells
// are the cross product of the axes in sorted name order (deterministic task
// order for a given request). The legacy Quick flag folds the "quick" preset
// in unless the request names "quick" itself. Values are raw strings here;
// Submit validates each cell against the experiment's schema via Resolve.
func expandParamGrid(req RunRequest) ([]map[string]string, error) {
	fixed := map[string]string{}
	axes := map[string][]string{}
	for name, v := range req.Params {
		if list, ok := v.([]any); ok {
			if len(list) == 0 {
				return nil, fmt.Errorf("service: param %q: sweep list is empty", name)
			}
			vals := make([]string, len(list))
			for i, item := range list {
				s, err := paramString(item)
				if err != nil {
					return nil, fmt.Errorf("service: param %q[%d]: %v", name, i, err)
				}
				vals[i] = s
			}
			axes[name] = vals
			continue
		}
		s, err := paramString(v)
		if err != nil {
			return nil, fmt.Errorf("service: param %q: %v", name, err)
		}
		fixed[name] = s
	}
	if req.Quick {
		if _, ok := fixed["quick"]; !ok {
			if _, ok := axes["quick"]; !ok {
				fixed["quick"] = "true"
			}
		}
	}

	names := make([]string, 0, len(axes))
	for name := range axes {
		names = append(names, name)
	}
	sort.Strings(names)
	cells := []map[string]string{fixed}
	for _, name := range names {
		next := make([]map[string]string, 0, len(cells)*len(axes[name]))
		for _, cell := range cells {
			for _, v := range axes[name] {
				c := make(map[string]string, len(cell)+1)
				for k, cv := range cell {
					c[k] = cv
				}
				c[name] = v
				next = append(next, c)
			}
		}
		cells = next
	}
	return cells, nil
}

// paramString renders one JSON parameter value as the raw string the harness
// validates. JSON numbers arrive as float64; the 'g' encoding keeps integers
// integral ("64", not "64.000000") so they parse under KindInt.
func paramString(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case bool:
		return strconv.FormatBool(x), nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case json.Number:
		return x.String(), nil
	default:
		return "", fmt.Errorf("unsupported value type %T (use a number, bool, string, or a flat array of those)", v)
	}
}

// paramMap rebuilds the raw override map from a task's resolved params; the
// values are already canonical, so re-resolving them is the identity.
func paramMap(ps []result.Param) map[string]string {
	m := make(map[string]string, len(ps))
	for _, p := range ps {
		m[p.Name] = p.Value
	}
	return m
}

// Job lookup by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every retained job, oldest first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Summaries returns the HTTP summary of every retained job, oldest first.
func (s *Server) Summaries() []JobSummary {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobSummary, len(jobs))
	for i, j := range jobs {
		out[i] = j.Summary()
	}
	return out
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueLen = len(s.queue)
	st.Workers = s.pool.Workers()
	st.Draining = s.draining
	st.BreakerOpen = s.breaker.Open(time.Now())
	st.BreakerOpens = s.breaker.Opens()
	st.StreamEventsPublished = s.streamM.published.Load()
	st.StreamEventsDropped = s.streamM.dropped.Load()
	st.StreamEventsCoalesced = s.streamM.coalesced.Load()
	return st
}

// pruneLocked drops the oldest finished jobs past maxRetainedJobs.
func (s *Server) pruneLocked() {
	for len(s.order) > maxRetainedJobs {
		dropped := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
			j.mu.Lock()
			done := terminal(j.state)
			j.mu.Unlock()
			if done {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything retained is still live
		}
	}
}

// dispatch is the queue consumer: jobs execute one at a time in submission
// order; each job's tasks fan out over the workpool. A drain request lets
// the running job finish, then cancels whatever is still queued; a hard
// cancel (Close) additionally cancels the running job via baseCtx.
func (s *Server) dispatch() {
	defer s.wg.Done()
	defer close(s.dispatcherDone)
	drainQueued := func(state string) {
		for {
			select {
			case job := <-s.queue:
				s.finishJob(job, state)
			default:
				return
			}
		}
	}
	for {
		select {
		case <-s.baseCtx.Done():
			drainQueued(StatusCancelled)
			return
		case <-s.drainCh:
			drainQueued(StatusCancelled)
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if terminal(job.state) {
		// Cancelled while queued (drain or DELETE): nothing to run.
		job.mu.Unlock()
		return
	}
	job.state = StatusRunning
	job.started = time.Now()
	tasks := job.tasks
	job.mu.Unlock()
	job.bus.publish(Event{Type: EventJob, Task: -1, State: StatusRunning})

	ctx, cancelTimeout := context.WithTimeout(job.runCtx, job.timeout)
	defer cancelTimeout()

	s.pool.ForCtx(ctx, len(tasks), func(i int) {
		s.runTask(ctx, job, i, tasks[i])
	})

	state := StatusDone
	var swept []int // tasks cancelled here, not by runTask: they still owe a terminal event
	job.mu.Lock()
	for i, t := range tasks {
		switch t.Status {
		case StatusPending, StatusRunning:
			t.Status = StatusCancelled
			t.Error = contextReason(ctx)
			state = StatusCancelled
			swept = append(swept, i)
		case StatusCancelled:
			state = StatusCancelled
		case StatusFailed:
			if state != StatusCancelled {
				state = StatusFailed
			}
		}
	}
	job.mu.Unlock()
	for _, i := range swept {
		job.bus.publish(Event{Type: EventCancelled, Task: i, Key: tasks[i].Key, Error: contextReason(ctx)})
	}
	s.finishJob(job, state)
}

func contextReason(ctx context.Context) string {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return "job timeout"
	case ctx.Err() != nil:
		return "job cancelled"
	default:
		return ""
	}
}

func (s *Server) finishJob(job *Job, state string) {
	job.mu.Lock()
	alreadyDone := terminal(job.state)
	var wall time.Duration
	var neverRan []int // tasks that never dispatched (job cancelled while queued)
	counts := map[string]int{}
	if !alreadyDone {
		job.state = state
		job.finished = time.Now()
		if !job.started.IsZero() {
			wall = job.finished.Sub(job.started)
		}
		for i, t := range job.tasks {
			st := t.Status
			if st == StatusPending || st == StatusRunning {
				neverRan = append(neverRan, i)
				st = StatusCancelled // what the terminal event below reports
			}
			counts[st]++
		}
	}
	job.mu.Unlock()
	if alreadyDone {
		return
	}
	// Close out the stream: terminal events for tasks nothing else will
	// report on, the job's terminal event with the final tally, then the bus
	// seals so every subscriber drains and ends.
	for _, i := range neverRan {
		job.bus.publish(Event{Type: EventCancelled, Task: i, Key: job.tasks[i].Key, Error: "job cancelled"})
	}
	job.bus.publish(Event{Type: EventJob, Task: -1, State: state, Counts: counts})
	job.bus.close()
	job.cancel()
	close(job.done)
	s.mu.Lock()
	switch state {
	case StatusDone:
		s.stats.JobsDone++
	case StatusFailed:
		s.stats.JobsFailed++
	case StatusCancelled:
		s.stats.JobsCancelled++
	}
	// Fold the job's wall time into the drain-rate estimate (EWMA, α=1/8)
	// that retryAfterHint uses. Jobs cancelled before starting carry no
	// signal about drain rate and are skipped.
	if wall > 0 {
		if s.avgJob == 0 {
			s.avgJob = wall
		} else {
			s.avgJob += (wall - s.avgJob) / 8
		}
	}
	s.mu.Unlock()
}

func (s *Server) countStoreError() {
	s.mu.Lock()
	s.stats.StoreErrors++
	s.mu.Unlock()
}

// sleepCtx pauses for d, cut short if ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// runTask executes one task: run-store lookup first, then the experiment
// with panic recovery and bounded retries paced by backoffDelay. Task
// fields are only touched under job.mu so HTTP snapshots never race the
// executor. Store failures degrade (recompute, or complete uncached); they
// never fail a task whose experiment ran successfully.
func (s *Server) runTask(ctx context.Context, job *Job, idx int, t *Task) {
	setTask := func(fn func()) {
		job.mu.Lock()
		fn()
		job.mu.Unlock()
	}
	setTask(func() { t.Status = StatusRunning })
	job.bus.publish(Event{Type: EventStarted, Task: idx, Experiment: t.Experiment, Seed: t.Seed, Key: t.Key, Node: s.nodeName()})

	if ferr := s.fault.Fire(ctx, PointStoreGet); ferr != nil {
		s.countStoreError()
	} else if data, ok, err := s.opts.Store.GetBytes(t.Key); err != nil {
		// A store that cannot read is a cache miss, not a task failure.
		s.countStoreError()
	} else if ok {
		setTask(func() {
			t.Cached = true
			t.Result = data
			t.Status = StatusDone
		})
		s.mu.Lock()
		s.stats.TasksCached++
		s.mu.Unlock()
		job.bus.publish(Event{Type: EventCached, Task: idx, Key: t.Key, Cached: true, Node: s.nodeName()})
		return
	}

	// Cluster mode: a cache miss on a key owned by a peer is forwarded
	// there. Forward failure (peer down, slow, partitioned, torn response,
	// breaker open) is never task failure — the task degrades to local
	// compute, marked Degraded so callers can see it took the fallback path.
	degradeLocal := false
	if s.cluster != nil {
		if owner := t.Owner; owner != "" && owner != s.cluster.Self() {
			job.bus.publish(Event{Type: EventForwarded, Task: idx, Key: t.Key, Node: owner})
			res, err := s.forwardTask(ctx, job, idx, t)
			if err == nil {
				setTask(func() {
					t.Forwarded = true
					t.Cached = res.RemoteCached
					t.Degraded = res.RemoteDegraded
					t.Result = res.Data
					t.Status = StatusDone
				})
				s.mu.Lock()
				s.stats.TasksForwarded++
				s.mu.Unlock()
				// The terminal event is always published origin-side from the
				// forward result — exactly-once regardless of what the lossy
				// owner-side back-channel delivered.
				job.bus.publish(Event{
					Type: EventCompleted, Task: idx, Key: t.Key, Node: owner,
					Forwarded: true, Cached: res.RemoteCached, Degraded: res.RemoteDegraded,
				})
				return
			}
			if ctx.Err() != nil {
				setTask(func() {
					t.Status = StatusCancelled
					t.Error = contextReason(ctx)
				})
				job.bus.publish(Event{Type: EventCancelled, Task: idx, Key: t.Key, Error: contextReason(ctx)})
				return
			}
			degradeLocal = true
			s.mu.Lock()
			s.stats.ForwardDegraded++
			s.mu.Unlock()
			job.bus.publish(Event{Type: EventDegraded, Task: idx, Key: t.Key, Node: s.nodeName()})
		}
	}

	// Local compute: while anyone is watching, tag this goroutine so the
	// engine's tagged observer bridges sampled step commits onto the bus.
	if s.opts.StepSample > 0 && job.bus.HasSubscribers() {
		node := s.nodeName()
		untag := engine.TagGoroutine(&stepTag{srv: s, emit: func(st engine.StepStats) {
			job.bus.publish(Event{Type: EventStep, Task: idx, Machine: st.Machine, Superstep: st.Index, Cost: st.Cost, Node: node})
		}})
		defer untag()
	}

	cfg := harness.Config{Seed: t.Seed, Params: paramMap(t.Params)}
	var lastErr error
	for attempt := 1; attempt <= 1+s.opts.Retries; attempt++ {
		if attempt > 1 {
			s.mu.Lock()
			s.stats.TaskRetries++
			s.mu.Unlock()
			sleepCtx(ctx, retry.BackoffDelay(s.opts.Backoff, s.opts.BackoffMax, t.Key, attempt))
		}
		if ctx.Err() != nil {
			setTask(func() {
				t.Status = StatusCancelled
				t.Error = contextReason(ctx)
			})
			job.bus.publish(Event{Type: EventCancelled, Task: idx, Key: t.Key, Error: contextReason(ctx)})
			return
		}
		setTask(func() { t.Attempts = attempt })
		start := time.Now()
		res, err := s.safeRun(ctx, t.Experiment, cfg)
		wall := time.Since(start)
		if err != nil {
			lastErr = err
			continue
		}
		data, degraded, err := s.storeResult(ctx, t.Key, res)
		if err != nil {
			// Only reachable when the result cannot even be encoded;
			// retrying the run cannot fix that.
			lastErr = err
			break
		}
		setTask(func() {
			t.Result = data
			t.Degraded = degraded || degradeLocal
			t.WallMS = float64(wall.Microseconds()) / 1000
			t.Status = StatusDone
		})
		s.mu.Lock()
		s.stats.TasksRun++
		if degraded {
			s.stats.TasksDegraded++
		}
		s.mu.Unlock()
		job.bus.publish(Event{Type: EventCompleted, Task: idx, Key: t.Key, Degraded: degraded || degradeLocal, Node: s.nodeName()})
		return
	}
	errMsg := ""
	if lastErr != nil {
		errMsg = lastErr.Error()
	}
	setTask(func() {
		t.Status = StatusFailed
		t.Error = errMsg
	})
	job.bus.publish(Event{Type: EventFailed, Task: idx, Key: t.Key, Error: errMsg})
}

// storeResult persists res under key through the circuit breaker. When the
// breaker is open, or the write fails, the task degrades to
// compute-without-cache: the canonical bytes are returned with
// degraded=true and the job carries on. The returned error is non-nil only
// when the result cannot be encoded at all.
func (s *Server) storeResult(ctx context.Context, key string, res *result.Result) (data []byte, degraded bool, err error) {
	if s.breaker.Allow(time.Now()) {
		werr := s.fault.Fire(ctx, PointStorePut)
		if werr == nil {
			data, werr = s.opts.Store.Put(key, res)
		}
		if werr == nil {
			s.breaker.Success()
			return data, false, nil
		}
		s.breaker.Failure(time.Now())
		s.countStoreError()
	}
	data, err = res.CanonicalJSON()
	if err != nil {
		return nil, false, fmt.Errorf("service: encode result: %w", err)
	}
	return data, true, nil
}

// safeRun invokes the runner with panic recovery, converting a panicking
// experiment into an error the retry loop can handle. The PointRunner fault
// fires inside the recovery envelope, so injected panics exercise the same
// path as real ones.
func (s *Server) safeRun(ctx context.Context, id string, cfg harness.Config) (res *result.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.mu.Lock()
			s.stats.TaskPanics++
			s.mu.Unlock()
			err = fmt.Errorf("experiment %s panicked: %v\n%s", id, p, debug.Stack())
		}
	}()
	if ferr := s.fault.Fire(ctx, PointRunner); ferr != nil {
		return nil, ferr
	}
	return s.runner(id, cfg)
}
