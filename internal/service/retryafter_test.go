package service

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"parbw/internal/harness"
	"parbw/internal/result"
)

// Pins the Retry-After computation: (backlog+1) jobs ahead of the retrying
// client, drained at one per avgJob, clamped to [1s, 60s], with a 1s/job
// assumption before any job has finished.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		backlog int
		avgJob  time.Duration
		want    time.Duration
	}{
		{backlog: 0, avgJob: 0, want: time.Second},                      // no history: 1 slot × 1s default
		{backlog: 3, avgJob: 0, want: 4 * time.Second},                  // no history, deep queue
		{backlog: 1, avgJob: 2 * time.Second, want: 4 * time.Second},    // (1+1) × 2s
		{backlog: 0, avgJob: 100 * time.Millisecond, want: time.Second}, // fast jobs clamp up to 1s
		{backlog: 9, avgJob: 500 * time.Millisecond, want: 5 * time.Second},
		{backlog: 500, avgJob: 30 * time.Second, want: time.Minute}, // hopeless queue clamps to 60s
		{backlog: 2, avgJob: -time.Second, want: 3 * time.Second},   // negative EWMA treated as no history
	}
	for _, c := range cases {
		if got := retryAfterHint(c.backlog, c.avgJob); got != c.want {
			t.Errorf("retryAfterHint(%d, %v) = %v, want %v", c.backlog, c.avgJob, got, c.want)
		}
	}
}

// The shed path derives Retry-After from the live backlog and the observed
// drain rate, not a constant: with one job queued and jobs averaging 2s, the
// hint is 4s.
func TestQueueFullRetryAfterFromBacklog(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int32
	block := func(id string, cfg harness.Config) (*result.Result, error) {
		started.Add(1)
		<-release
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: block, Workers: 1, QueueDepth: 1})
	defer close(release)

	s.mu.Lock()
	s.avgJob = 2 * time.Second // pretend history: jobs drain at one per 2s
	s.mu.Unlock()

	// Fill the running slot, then the single queue slot.
	if _, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true}); err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond) // job 1 must be running, not queued
	}
	if _, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true}); err != nil {
		t.Fatal(err)
	}

	var full *QueueFullError
	_, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if !errors.As(err, &full) {
		t.Fatalf("overload error = %v, want QueueFullError", err)
	}
	if want := 4 * time.Second; full.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v ((backlog 1 + 1) × 2s avg)", full.RetryAfter, want)
	}

	// And the EWMA actually moves: a finished job folds its wall time in.
	s.mu.Lock()
	before := s.avgJob
	s.mu.Unlock()
	job := &Job{state: StatusRunning, started: time.Now().Add(-10 * time.Second), done: make(chan struct{}), cancel: func() {}}
	s.finishJob(job, StatusDone)
	s.mu.Lock()
	after := s.avgJob
	s.mu.Unlock()
	if after <= before {
		t.Fatalf("avgJob EWMA did not move: %v -> %v after a 10s job", before, after)
	}
}
