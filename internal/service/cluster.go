package service

// Cluster-mode glue: the origin side (forwardTask ships a cache miss to the
// key's owning peer) and the owner side (handleClusterRun answers a forward
// with verified result bytes). The invariant both sides maintain is that a
// forwarded task produces exactly the bytes a local run of the same task
// would have produced — the experiments are deterministic and the store is
// content-addressed, so cluster placement is an optimization, never a
// semantic change. See internal/cluster for the ring and the failure policy.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"

	"parbw/internal/cluster"
	"parbw/internal/harness"
	"parbw/internal/retry"
	"parbw/internal/runstore"
)

// forwardTask ships one task to its owning peer. Params travel as the
// resolved canonical assignment, so the owner's Resolve is the identity and
// the re-derived key matches unless the nodes disagree on code version.
func (s *Server) forwardTask(ctx context.Context, t *Task) (*cluster.ForwardResult, error) {
	owner := s.cluster.Owner(t.Key)
	return s.cluster.Forward(ctx, owner, cluster.ForwardRequest{
		Experiment: t.Experiment,
		Seed:       t.Seed,
		Params:     paramMap(t.Params),
		Key:        t.Key,
	})
}

// handleClusterRun is the owner side of a forward: POST /v1/cluster/run.
// The owner re-derives the run-store key from its own schema resolution and
// code version and refuses a mismatch with 400 — version skew between nodes
// must surface as an explicit error on the origin (which then degrades to
// local compute), never as two nodes writing different bytes under one key.
func (s *Server) handleClusterRun(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled on this node")
		return
	}
	var req cluster.ForwardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad forward body: %v", err)
		return
	}
	e, ok := harness.ByID(req.Experiment)
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, UnknownExperimentEnvelope(req.Experiment))
		return
	}
	vals, err := e.Resolve(req.Params)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ParamErrorEnvelope(err))
		return
	}
	key := runstore.Key(runstore.KeySpec{
		Experiment: req.Experiment,
		Seed:       req.Seed,
		Params:     vals.Canonical(),
		Version:    harness.CodeVersion,
	})
	if key != req.Key {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			"key mismatch: caller sent %s, owner derives %s (code-version skew between nodes?)", req.Key, key)
		return
	}

	// The owner's store is authoritative for this key: serve a hit directly.
	if data, ok, err := s.opts.Store.GetBytes(key); err != nil {
		s.countStoreError()
	} else if ok {
		s.mu.Lock()
		s.stats.TasksCached++
		s.mu.Unlock()
		s.writeForwardResult(w, data, true, false)
		return
	}

	// Miss: run it here, with the same retry/backoff/degrade discipline as a
	// local task. The origin counted the forward; this node counts the run.
	cfg := harness.Config{Seed: req.Seed, Params: req.Params}
	ctx := r.Context()
	var lastErr error
	for attempt := 1; attempt <= 1+s.opts.Retries; attempt++ {
		if attempt > 1 {
			s.mu.Lock()
			s.stats.TaskRetries++
			s.mu.Unlock()
			sleepCtx(ctx, retry.BackoffDelay(s.opts.Backoff, s.opts.BackoffMax, key, attempt))
		}
		if ctx.Err() != nil {
			// The origin gave up (per-attempt deadline, job cancel); it will
			// degrade to local compute, so just abandon the response.
			s.writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "forward abandoned: %s", contextReason(ctx))
			return
		}
		res, err := s.safeRun(ctx, req.Experiment, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		data, degraded, err := s.storeResult(ctx, key, res)
		if err != nil {
			lastErr = err
			break
		}
		s.mu.Lock()
		s.stats.TasksRun++
		if degraded {
			s.stats.TasksDegraded++
		}
		s.mu.Unlock()
		s.writeForwardResult(w, data, false, degraded)
		return
	}
	s.writeError(w, http.StatusInternalServerError, CodeInternal, "forwarded task failed: %v", lastErr)
}

// writeForwardResult answers a forward with the canonical result bytes plus
// the CRC header the origin verifies — the same integrity discipline the run
// store applies on disk, which is what makes torn forwards detectable.
func (s *Server) writeForwardResult(w http.ResponseWriter, data []byte, cached, degraded bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.HeaderCRC, fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)))
	if cached {
		w.Header().Set(cluster.HeaderCached, "1")
	}
	if degraded {
		w.Header().Set(cluster.HeaderDegraded, "1")
	}
	if _, err := w.Write(data); err != nil {
		s.mu.Lock()
		s.stats.EncodeErrors++
		s.mu.Unlock()
	}
}

// handleClusterRing exposes ring membership and per-peer forwarding health:
// GET /v1/cluster/ring.
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled on this node")
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.Snapshot())
}
