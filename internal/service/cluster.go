package service

// Cluster-mode glue: the origin side (forwardTask ships a cache miss to the
// key's owning peer) and the owner side (handleClusterRun answers a forward
// with verified result bytes). The invariant both sides maintain is that a
// forwarded task produces exactly the bytes a local run of the same task
// would have produced — the experiments are deterministic and the store is
// content-addressed, so cluster placement is an optimization, never a
// semantic change. See internal/cluster for the ring and the failure policy.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"

	"parbw/internal/cluster"
	"parbw/internal/engine"
	"parbw/internal/harness"
	"parbw/internal/retry"
	"parbw/internal/runstore"
)

// forwardTask ships one task to its owning peer. Params travel as the
// resolved canonical assignment, so the owner's Resolve is the identity and
// the re-derived key matches unless the nodes disagree on code version.
// While the job has live stream subscribers (and step events are enabled),
// the request also asks the owner to post progress events back — terminal
// events never travel that way; the origin publishes them from the forward
// result, which is what keeps the stream exactly-once per task.
func (s *Server) forwardTask(ctx context.Context, job *Job, idx int, t *Task) (*cluster.ForwardResult, error) {
	req := cluster.ForwardRequest{
		Experiment: t.Experiment,
		Seed:       t.Seed,
		Params:     paramMap(t.Params),
		Key:        t.Key,
	}
	if s.opts.StepSample > 0 && job.bus.HasSubscribers() {
		req.Origin = s.cluster.Self()
		req.Job = job.id
		req.TaskIndex = idx
		req.WantEvents = true
	}
	return s.cluster.Forward(ctx, t.Owner, req)
}

// remoteEmitter is the owner-side half of the event back-channel: it returns
// a non-blocking emit for progress events of one forwarded task, drained by
// a single sender goroutine that batches them onto the origin's EventPath.
// Overflowing the queue drops events (counted on the peer's stats), so a
// slow or dead origin can never slow the forwarded run. flush closes the
// queue and waits for the sender; call it before the handler returns, while
// ctx is still live.
func (s *Server) remoteEmitter(ctx context.Context, origin, jobID string, task int) (emit func(Event), flush func()) {
	ch := make(chan Event, 256)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			batch := []Event{ev}
		drain:
			for len(batch) < 64 {
				select {
				case more, ok := <-ch:
					if !ok {
						break drain
					}
					batch = append(batch, more)
				default:
					break drain
				}
			}
			raw := make([]json.RawMessage, 0, len(batch))
			for _, b := range batch {
				if data, err := json.Marshal(b); err == nil {
					raw = append(raw, data)
				}
			}
			s.cluster.PostEvents(ctx, origin, cluster.EventBatch{Job: jobID, Events: raw})
		}
	}()
	emit = func(ev Event) {
		ev.Task = task
		select {
		case ch <- ev:
		default:
			s.cluster.NoteEventsDropped(origin, 1)
		}
	}
	flush = func() {
		close(ch)
		<-done
	}
	return emit, flush
}

// handleClusterRun is the owner side of a forward: POST /v1/cluster/run.
// The owner re-derives the run-store key from its own schema resolution and
// code version and refuses a mismatch with 400 — version skew between nodes
// must surface as an explicit error on the origin (which then degrades to
// local compute), never as two nodes writing different bytes under one key.
func (s *Server) handleClusterRun(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled on this node")
		return
	}
	var req cluster.ForwardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad forward body: %v", err)
		return
	}
	e, ok := harness.ByID(req.Experiment)
	if !ok {
		s.writeJSON(w, http.StatusBadRequest, UnknownExperimentEnvelope(req.Experiment))
		return
	}
	vals, err := e.Resolve(req.Params)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ParamErrorEnvelope(err))
		return
	}
	key := runstore.Key(runstore.KeySpec{
		Experiment: req.Experiment,
		Seed:       req.Seed,
		Params:     vals.Canonical(),
		Version:    harness.CodeVersion,
	})
	if key != req.Key {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			"key mismatch: caller sent %s, owner derives %s (code-version skew between nodes?)", req.Key, key)
		return
	}

	// The owner's store is authoritative for this key: serve a hit directly.
	if data, ok, err := s.opts.Store.GetBytes(key); err != nil {
		s.countStoreError()
	} else if ok {
		s.mu.Lock()
		s.stats.TasksCached++
		s.mu.Unlock()
		s.writeForwardResult(w, data, true, false)
		return
	}

	// Miss: run it here, with the same retry/backoff/degrade discipline as a
	// local task. The origin counted the forward; this node counts the run.
	// If the origin asked for progress events, they flow back best-effort:
	// an owner-side "started" plus sampled engine steps, all tagged with the
	// origin's task index and this node's name.
	emit := func(Event) {}
	if req.WantEvents && req.Origin != "" && req.Job != "" {
		var flush func()
		emit, flush = s.remoteEmitter(r.Context(), req.Origin, req.Job, req.TaskIndex)
		defer flush()
	}
	emit(Event{Type: EventStarted, Experiment: req.Experiment, Seed: req.Seed, Key: key, Node: s.cluster.Self()})
	if s.opts.StepSample > 0 {
		untag := engine.TagGoroutine(&stepTag{srv: s, emit: func(st engine.StepStats) {
			emit(Event{Type: EventStep, Machine: st.Machine, Superstep: st.Index, Cost: st.Cost, Node: s.cluster.Self()})
		}})
		defer untag()
	}

	cfg := harness.Config{Seed: req.Seed, Params: req.Params}
	ctx := r.Context()
	var lastErr error
	for attempt := 1; attempt <= 1+s.opts.Retries; attempt++ {
		if attempt > 1 {
			s.mu.Lock()
			s.stats.TaskRetries++
			s.mu.Unlock()
			sleepCtx(ctx, retry.BackoffDelay(s.opts.Backoff, s.opts.BackoffMax, key, attempt))
		}
		if ctx.Err() != nil {
			// The origin gave up (per-attempt deadline, job cancel); it will
			// degrade to local compute, so just abandon the response.
			s.writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "forward abandoned: %s", contextReason(ctx))
			return
		}
		res, err := s.safeRun(ctx, req.Experiment, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		data, degraded, err := s.storeResult(ctx, key, res)
		if err != nil {
			lastErr = err
			break
		}
		s.mu.Lock()
		s.stats.TasksRun++
		if degraded {
			s.stats.TasksDegraded++
		}
		s.mu.Unlock()
		s.writeForwardResult(w, data, false, degraded)
		return
	}
	s.writeError(w, http.StatusInternalServerError, CodeInternal, "forwarded task failed: %v", lastErr)
}

// writeForwardResult answers a forward with the canonical result bytes plus
// the CRC header the origin verifies — the same integrity discipline the run
// store applies on disk, which is what makes torn forwards detectable.
func (s *Server) writeForwardResult(w http.ResponseWriter, data []byte, cached, degraded bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.HeaderCRC, fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)))
	if cached {
		w.Header().Set(cluster.HeaderCached, "1")
	}
	if degraded {
		w.Header().Set(cluster.HeaderDegraded, "1")
	}
	if _, err := w.Write(data); err != nil {
		s.mu.Lock()
		s.stats.EncodeErrors++
		s.mu.Unlock()
	}
}

// handleClusterEvents is the origin side of the event back-channel: POST
// /v1/cluster/events. Each raw event republishes onto the named job's bus,
// where it gets an origin-side id like any local event. Unknown jobs (pruned,
// or never ours) answer 404 so the owner stops posting; a closed bus simply
// swallows the batch — the job already finished, the stream already ended.
func (s *Server) handleClusterEvents(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled on this node")
		return
	}
	var batch cluster.EventBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&batch); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad event batch: %v", err)
		return
	}
	job, ok := s.Job(batch.Job)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", batch.Job)
		return
	}
	accepted := 0
	for _, raw := range batch.Events {
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		ev.ID = 0 // ids are assigned by this bus at publish
		if job.bus.publish(ev) != 0 {
			accepted++
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// handleClusterRing exposes ring membership and per-peer forwarding health:
// GET /v1/cluster/ring.
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled on this node")
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.Snapshot())
}
