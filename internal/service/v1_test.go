package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbw/internal/runstore"
)

// do issues an arbitrary request and returns status, headers and body.
func do(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// Every non-2xx response of the v1 surface must carry the uniform envelope
// {"error":{"code","message",...}} with a stable code and a non-empty
// message — on the /v1/ paths and the deprecated aliases alike.
func TestErrorEnvelopeUniform(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	missingKey := strings.Repeat("ab", 32)
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"bad body", "POST", "/v1/runs", `{not json`, http.StatusBadRequest, CodeBadRequest},
		{"unknown field", "POST", "/v1/runs", `{"bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"unknown experiment", "POST", "/v1/runs", `{"experiments":["table1/brodcast"]}`, http.StatusBadRequest, CodeUnknownExperiment},
		{"empty submission", "POST", "/v1/runs", `{}`, http.StatusBadRequest, CodeBadRequest},
		{"job not found", "GET", "/v1/runs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"key not found", "GET", "/v1/runs/" + missingKey, "", http.StatusNotFound, CodeNotFound},
		{"delete job not found", "DELETE", "/v1/runs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"delete key not found", "DELETE", "/v1/runs/" + missingKey, "", http.StatusNotFound, CodeNotFound},
		{"bad limit", "GET", "/v1/runs?limit=abc", "", http.StatusBadRequest, CodeBadRequest},
		{"zero limit", "GET", "/v1/runs?limit=0", "", http.StatusBadRequest, CodeBadRequest},
		{"negative limit", "GET", "/v1/runs?limit=-3", "", http.StatusBadRequest, CodeBadRequest},
		{"unknown cursor", "GET", "/v1/runs?cursor=job-000099", "", http.StatusBadRequest, CodeBadRequest},
		// The deprecated aliases answer with the same envelope.
		{"legacy job not found", "GET", "/runs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"legacy unknown experiment", "POST", "/runs", `{"experiments":["nope/nope"]}`, http.StatusBadRequest, CodeUnknownExperiment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, hdr, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", status, tc.status, body)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e ErrorEnvelope
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("body is not the error envelope: %v: %s", err, body)
			}
			if e.Error.Code != tc.code {
				t.Fatalf("code %q, want %q (message %q)", e.Error.Code, tc.code, e.Error.Message)
			}
			if e.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// submitJob runs one experiment to completion and returns its JobSummary.
func submitJob(t *testing.T, ts *httptest.Server, experiment string) JobSummary {
	t.Helper()
	code, body := postRuns(t, ts, fmt.Sprintf(`{"experiments":[%q],"quick":true}`, experiment))
	if code != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", experiment, code, body)
	}
	var v JobSummary
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// jobTasks fetches one page of a job's tasks via GET /v1/runs/{id}/tasks.
func jobTasks(t *testing.T, ts *httptest.Server, id string) []TaskView {
	t.Helper()
	var page taskPage
	if code := getJSON(t, ts, "/v1/runs/"+id+"/tasks", &page); code != http.StatusOK {
		t.Fatalf("GET tasks for %s: status %d", id, code)
	}
	return page.Tasks
}

func TestListRunsPagination(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j1 := submitJob(t, ts, "table1/broadcast")
	j2 := submitJob(t, ts, "table1/parity")
	j3 := submitJob(t, ts, "table1/broadcast")

	var page runList
	if code := getJSON(t, ts, "/v1/runs?limit=2", &page); code != http.StatusOK {
		t.Fatalf("limit=2: status %d", code)
	}
	if len(page.Jobs) != 2 || page.Jobs[0].ID != j1.ID || page.Jobs[1].ID != j2.ID {
		t.Fatalf("page 1 = %v", ids(page.Jobs))
	}
	if page.NextCursor != j2.ID {
		t.Fatalf("next_cursor = %q, want %q", page.NextCursor, j2.ID)
	}

	var page2 runList
	if code := getJSON(t, ts, "/v1/runs?limit=2&cursor="+page.NextCursor, &page2); code != http.StatusOK {
		t.Fatalf("page 2: status %d", code)
	}
	if len(page2.Jobs) != 1 || page2.Jobs[0].ID != j3.ID {
		t.Fatalf("page 2 = %v", ids(page2.Jobs))
	}
	if page2.NextCursor != "" {
		t.Fatalf("page 2 next_cursor = %q, want none", page2.NextCursor)
	}

	// A cursor at the very end yields an empty page, not an error.
	var empty runList
	if code := getJSON(t, ts, "/v1/runs?limit=2&cursor="+j3.ID, &empty); code != http.StatusOK {
		t.Fatalf("cursor past end: status %d", code)
	}
	if len(empty.Jobs) != 0 || empty.NextCursor != "" {
		t.Fatalf("cursor past end = %v next=%q, want empty page", ids(empty.Jobs), empty.NextCursor)
	}
	// ... and serializes as [], not null.
	_, _, raw := do(t, "GET", ts.URL+"/v1/runs?limit=2&cursor="+j3.ID, "")
	if !strings.Contains(string(raw), `"jobs":[]`) {
		t.Fatalf("empty page body = %s, want \"jobs\":[]", raw)
	}

	// Experiment filtering, alone and combined with pagination.
	var filtered runList
	if code := getJSON(t, ts, "/v1/runs?experiment=table1/parity", &filtered); code != http.StatusOK {
		t.Fatalf("filter: status %d", code)
	}
	if len(filtered.Jobs) != 1 || filtered.Jobs[0].ID != j2.ID {
		t.Fatalf("filter = %v, want [%s]", ids(filtered.Jobs), j2.ID)
	}
	var fpage runList
	if code := getJSON(t, ts, "/v1/runs?experiment=table1/broadcast&limit=1", &fpage); code != http.StatusOK {
		t.Fatalf("filter+limit: status %d", code)
	}
	if len(fpage.Jobs) != 1 || fpage.Jobs[0].ID != j1.ID || fpage.NextCursor != j1.ID {
		t.Fatalf("filter+limit = %v next=%q", ids(fpage.Jobs), fpage.NextCursor)
	}
	var fpage2 runList
	if code := getJSON(t, ts, "/v1/runs?experiment=table1/broadcast&limit=1&cursor="+fpage.NextCursor, &fpage2); code != http.StatusOK {
		t.Fatalf("filter page 2: status %d", code)
	}
	if len(fpage2.Jobs) != 1 || fpage2.Jobs[0].ID != j3.ID || fpage2.NextCursor != "" {
		t.Fatalf("filter page 2 = %v next=%q", ids(fpage2.Jobs), fpage2.NextCursor)
	}

	// No limit keeps the legacy whole-listing shape with no cursor.
	var all runList
	if code := getJSON(t, ts, "/v1/runs", &all); code != http.StatusOK {
		t.Fatalf("unpaged: status %d", code)
	}
	if len(all.Jobs) != 3 || all.NextCursor != "" {
		t.Fatalf("unpaged = %v next=%q", ids(all.Jobs), all.NextCursor)
	}
}

func ids(jobs []JobSummary) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// The unversioned paths must answer exactly like /v1/, flagged with
// Deprecation and Sunset headers — and disappear entirely when the server is
// built with NoUnversionedAliases.
func TestDeprecatedAliases(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/experiments", "/runs", "/healthz", "/readyz", "/statsz"} {
		status, hdr, _ := do(t, "GET", ts.URL+path, "")
		if status != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, status)
		}
		if hdr.Get("Deprecation") == "" {
			t.Fatalf("GET %s: missing Deprecation header", path)
		}
		if hdr.Get("Sunset") != sunsetDate {
			t.Fatalf("GET %s: Sunset = %q, want %q", path, hdr.Get("Sunset"), sunsetDate)
		}
	}
	status, hdr, _ := do(t, "GET", ts.URL+"/v1/experiments", "")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/experiments = %d", status)
	}
	if hdr.Get("Deprecation") != "" {
		t.Fatal("/v1/ path carries a Deprecation header")
	}
	if hdr.Get("Sunset") != "" {
		t.Fatal("/v1/ path carries a Sunset header")
	}
}

// NoUnversionedAliases removes the legacy aliases from the mux: unversioned
// paths 404 while the /v1/ surface keeps working.
func TestCompatUnversionedOff(t *testing.T) {
	s := newTestServer(t, Options{NoUnversionedAliases: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/experiments", "/runs", "/healthz", "/readyz", "/statsz"} {
		status, _, _ := do(t, "GET", ts.URL+path, "")
		if status != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404 with aliases off", path, status)
		}
	}
	for _, path := range []string{"/v1/experiments", "/v1/runs", "/v1/healthz"} {
		status, _, _ := do(t, "GET", ts.URL+path, "")
		if status != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, status)
		}
	}
}

// DELETE /v1/results/{key} removes a stored result; a second delete (or a
// delete of a never-stored key) is a 404 with the envelope. The old key-on-runs
// spelling still answers, flagged Deprecation + Sunset.
func TestDeleteStoredRun(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitJob(t, ts, "table1/broadcast")
	tasks := jobTasks(t, ts, v.ID)
	if len(tasks) == 0 {
		t.Fatal("job has no tasks")
	}
	key := tasks[0].Key
	if status, _, _ := do(t, "GET", ts.URL+"/v1/results/"+key, ""); status != http.StatusOK {
		t.Fatalf("stored result fetch = %d, want 200", status)
	}
	// The deprecated key-on-runs path still serves the same bytes, flagged.
	status, hdr, _ := do(t, "GET", ts.URL+"/v1/runs/"+key, "")
	if status != http.StatusOK {
		t.Fatalf("key-on-runs fetch = %d, want 200", status)
	}
	if hdr.Get("Deprecation") == "" || hdr.Get("Sunset") != sunsetDate {
		t.Fatalf("key-on-runs fetch: Deprecation=%q Sunset=%q, want both set", hdr.Get("Deprecation"), hdr.Get("Sunset"))
	}

	status, _, body := do(t, "DELETE", ts.URL+"/v1/results/"+key, "")
	if status != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", status, body)
	}
	var out map[string]string
	if err := json.Unmarshal(body, &out); err != nil || out["deleted"] != key {
		t.Fatalf("DELETE body = %s", body)
	}

	if status, _, _ := do(t, "GET", ts.URL+"/v1/results/"+key, ""); status != http.StatusNotFound {
		t.Fatalf("fetch after delete = %d, want 404", status)
	}
	status, _, body = do(t, "DELETE", ts.URL+"/v1/results/"+key, "")
	if status != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", status)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeNotFound {
		t.Fatalf("second DELETE body = %s", body)
	}
	// A malformed key on the results resource is a 400, not a 404.
	status, _, body = do(t, "GET", ts.URL+"/v1/results/not-a-key", "")
	if status != http.StatusBadRequest {
		t.Fatalf("bad key fetch = %d (%s), want 400", status, body)
	}
}

// GET /v1/runs/{id}/tasks pages through a job's task grid; the entries carry
// keys and states but never inline result payloads.
func TestRunTasksPagination(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postRuns(t, ts, `{"experiments":["table1/broadcast"],"seeds":[1,2,3,4,5],"quick":true}`)
	if code != http.StatusOK {
		t.Fatalf("POST: status %d: %s", code, body)
	}
	var v JobSummary
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.TaskCount != 5 || v.TaskStates[StatusDone] != 5 {
		t.Fatalf("summary = %+v, want 5 done tasks", v)
	}

	var p1 taskPage
	if code := getJSON(t, ts, "/v1/runs/"+v.ID+"/tasks?limit=3", &p1); code != http.StatusOK {
		t.Fatalf("page 1 status %d", code)
	}
	if len(p1.Tasks) != 3 || p1.Total != 5 || p1.NextCursor == "" {
		t.Fatalf("page 1 = %d tasks total=%d next=%q", len(p1.Tasks), p1.Total, p1.NextCursor)
	}
	for _, tv := range p1.Tasks {
		if len(tv.Result) != 0 {
			t.Fatalf("task %d inlines result bytes on the tasks page", tv.Seed)
		}
		if tv.Key == "" {
			t.Fatalf("task %d has no key", tv.Seed)
		}
	}
	var p2 taskPage
	if code := getJSON(t, ts, "/v1/runs/"+v.ID+"/tasks?limit=3&cursor="+p1.NextCursor, &p2); code != http.StatusOK {
		t.Fatalf("page 2 status %d", code)
	}
	if len(p2.Tasks) != 2 || p2.NextCursor != "" {
		t.Fatalf("page 2 = %d tasks next=%q, want final 2", len(p2.Tasks), p2.NextCursor)
	}
	if p1.Tasks[0].Seed == p2.Tasks[0].Seed {
		t.Fatal("pages overlap")
	}
	// Bad cursor and bad limit answer 400 with the envelope.
	for _, path := range []string{
		"/v1/runs/" + v.ID + "/tasks?cursor=zebra",
		"/v1/runs/" + v.ID + "/tasks?cursor=99",
		"/v1/runs/" + v.ID + "/tasks?limit=0",
	} {
		status, _, body := do(t, "GET", ts.URL+path, "")
		if status != http.StatusBadRequest {
			t.Fatalf("GET %s = %d (%s), want 400", path, status, body)
		}
	}
	// Unknown job is a 404.
	if status, _, _ := do(t, "GET", ts.URL+"/v1/runs/job-999999/tasks", ""); status != http.StatusNotFound {
		t.Fatalf("unknown job tasks = %d, want 404", status)
	}
}

// The bug this release fixes: DELETE on a store key whose on-disk entry is
// corrupt must quarantine the entry and answer 404 with the envelope — not
// surface a 500 for a result the client could never have fetched.
func TestDeleteQuarantinedRunIs404(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	key := strings.Repeat("cd", 32)
	if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), []byte("corrupt entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	status, _, body := do(t, "DELETE", ts.URL+"/v1/runs/"+key, "")
	if status != http.StatusNotFound {
		t.Fatalf("DELETE corrupt entry = %d (%s), want 404", status, body)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeNotFound {
		t.Fatalf("DELETE corrupt entry body = %s", body)
	}
	if q := st.Stats().Quarantined; q != 1 {
		t.Fatalf("quarantined = %d, want 1", q)
	}
}
