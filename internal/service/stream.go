package service

// GET /v1/runs/{id}/events — the SSE surface of the per-job event bus
// (bus.go). Frames follow the text/event-stream format:
//
//	id: 42
//	event: completed
//	data: {"id":42,"type":"completed","task":3,...}
//
// Every event carries a monotonically increasing id (also inside the JSON,
// so the data line is self-contained). A client that reconnects with a
// Last-Event-ID header receives exactly the missed suffix still held by the
// job's replay ring, preceded by a "gap" event when part of that suffix was
// already evicted. Heartbeats are SSE comments (": hb") — they carry no id
// and never perturb the event numbering, which is what keeps fixed-seed
// streams byte-stable. The stream ends when the job reaches a terminal
// state and the subscriber has drained its tail.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parbw/internal/fault"
)

// PointSSEWrite fires on every SSE frame written to a subscriber; a chaos
// plan can slow the write (stalled client), fail it (client hung up), or
// tear it mid-frame (PartialWrite), all through fault.InjectWriter.
const PointSSEWrite = "service.sse.write"

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	var lastID uint64
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad Last-Event-ID %q", raw)
			return
		}
		lastID = n
	}

	sub := job.bus.subscribe(lastID)
	defer job.bus.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	out := fault.InjectWriter(w, s.fault, PointSSEWrite, r.Context())
	var hb <-chan time.Time
	if s.opts.Heartbeat > 0 {
		t := time.NewTicker(s.opts.Heartbeat)
		defer t.Stop()
		hb = t.C
	}
	for {
		evs, closed := sub.take()
		for _, ev := range evs {
			if err := writeSSE(out, ev); err != nil {
				return // subscriber gone; its buffered events die with it
			}
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-sub.notify:
		case <-hb:
			if _, err := io.WriteString(out, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event as an SSE frame. Gap events synthesized for a
// subscriber reuse the id of the last event they replace, so the client's
// Last-Event-ID stays monotone through a lossy stretch.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
	return err
}

// WatchEvents subscribes to a job's bus in-process and invokes fn for every
// delivered event until the stream ends or ctx is cancelled. It is the Go
// mirror of the SSE endpoint (used by tests and tooling embedding the
// service), with the same loss semantics: bounded buffer, coalesced steps,
// gap markers.
func (j *Job) WatchEvents(ctx context.Context, lastID uint64, fn func(Event)) {
	sub := j.bus.subscribe(lastID)
	defer j.bus.unsubscribe(sub)
	for {
		evs, closed := sub.take()
		for _, ev := range evs {
			fn(ev)
		}
		if closed {
			return
		}
		select {
		case <-sub.notify:
		case <-ctx.Done():
			return
		}
	}
}
