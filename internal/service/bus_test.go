package service

import (
	"fmt"
	"sync"
	"testing"
)

func lifecycle(task int) Event { return Event{Type: EventStarted, Task: task} }

func collect(sub *subscriber) []Event {
	evs, _ := sub.take()
	out := make([]Event, len(evs))
	copy(out, evs) // take reuses buffers; keep a stable copy
	return out
}

func TestBusAssignsMonotonicIDs(t *testing.T) {
	b := newBus(8, 8, &busMetrics{})
	sub := b.subscribe(0)
	for i := 0; i < 5; i++ {
		b.publish(lifecycle(i))
	}
	evs := collect(sub)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(i+1) {
			t.Fatalf("event %d has id %d, want %d", i, ev.ID, i+1)
		}
	}
}

func TestBusResumeReplaysExactSuffix(t *testing.T) {
	b := newBus(16, 16, &busMetrics{})
	for i := 0; i < 10; i++ {
		b.publish(lifecycle(i))
	}
	sub := b.subscribe(6)
	evs := collect(sub)
	if len(evs) != 4 {
		t.Fatalf("resume from 6 replayed %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(7+i) {
			t.Fatalf("replayed id %d at %d, want %d", ev.ID, i, 7+i)
		}
	}
}

func TestBusResumePastEvictionEmitsGap(t *testing.T) {
	b := newBus(4, 16, &busMetrics{})
	for i := 0; i < 10; i++ { // ring keeps ids 7..10; 1..6 evicted
		b.publish(lifecycle(i))
	}
	sub := b.subscribe(2)
	evs := collect(sub)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want gap + 4 retained", len(evs))
	}
	// The gap marker leads so the partial replay is explicit and the
	// client's Last-Event-ID stays monotone.
	if gap := evs[0]; gap.Type != EventGap || gap.From != 3 || gap.To != 6 || gap.ID != 6 {
		t.Fatalf("gap marker = %+v, want from 3 to 6 with id 6", gap)
	}
	for i, ev := range evs[1:] {
		if ev.ID != uint64(7+i) {
			t.Fatalf("retained id %d at %d, want %d", ev.ID, i, 7+i)
		}
	}
}

func TestBusStepCoalescing(t *testing.T) {
	m := &busMetrics{}
	b := newBus(8, 8, m)
	sub := b.subscribe(0)
	for i := 0; i < 5; i++ {
		b.publish(Event{Type: EventStep, Task: 3, Superstep: i})
	}
	evs := collect(sub)
	if len(evs) != 1 {
		t.Fatalf("got %d step events, want 1 coalesced", len(evs))
	}
	if evs[0].Superstep != 4 {
		t.Fatalf("coalesced step kept superstep %d, want the newest (4)", evs[0].Superstep)
	}
	if m.coalesced.Load() != 4 {
		t.Fatalf("coalesced counter = %d, want 4", m.coalesced.Load())
	}
	// Steps for different tasks do not coalesce with each other.
	b.publish(Event{Type: EventStep, Task: 1})
	b.publish(Event{Type: EventStep, Task: 2})
	if evs := collect(sub); len(evs) != 2 {
		t.Fatalf("distinct-task steps coalesced: got %d, want 2", len(evs))
	}
}

func TestBusSlowSubscriberDropsWithGapMarker(t *testing.T) {
	m := &busMetrics{}
	b := newBus(64, 2, m) // tiny subscriber buffer
	sub := b.subscribe(0)
	for i := 0; i < 6; i++ {
		b.publish(lifecycle(i))
	}
	evs := collect(sub)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 2 buffered + gap", len(evs))
	}
	gap := evs[2]
	if gap.Type != EventGap || gap.From != 3 || gap.To != 6 {
		t.Fatalf("gap = %+v, want from 3 to 6", gap)
	}
	if m.dropped.Load() != 4 {
		t.Fatalf("dropped counter = %d, want 4", m.dropped.Load())
	}
	// After draining, delivery resumes cleanly.
	b.publish(lifecycle(9))
	evs = collect(sub)
	if len(evs) != 1 || evs[0].ID != 7 {
		t.Fatalf("post-drain delivery = %+v, want single event id 7", evs)
	}
}

func TestBusPublishNeverBlocksOnStalledSubscriber(t *testing.T) {
	b := newBus(4, 2, &busMetrics{})
	b.subscribe(0) // never reads
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			b.publish(lifecycle(i))
		}
		close(done)
	}()
	<-done // the test itself hangs (and times out) if publish can block
}

func TestBusCloseEndsStreamsAfterDrain(t *testing.T) {
	b := newBus(8, 8, &busMetrics{})
	sub := b.subscribe(0)
	b.publish(lifecycle(0))
	b.close()
	// The tail batch arrives together with the closed flag: consumers process
	// the events, then end the stream — no extra wake is owed after close.
	evs, closed := sub.take()
	if len(evs) != 1 || !closed {
		t.Fatalf("first take = (%d events, closed=%v), want tail with closed", len(evs), closed)
	}
	if evs, closed := sub.take(); len(evs) != 0 || !closed {
		t.Fatalf("second take = (%d events, closed=%v), want closed drain", len(evs), closed)
	}
	if id := b.publish(lifecycle(1)); id != 0 {
		t.Fatalf("publish on closed bus assigned id %d, want 0", id)
	}
}

func TestBusSubscribeAfterCloseReplaysTail(t *testing.T) {
	b := newBus(8, 8, &busMetrics{})
	for i := 0; i < 3; i++ {
		b.publish(lifecycle(i))
	}
	b.close()
	sub := b.subscribe(1)
	evs, _ := sub.take()
	if len(evs) != 2 || evs[0].ID != 2 || evs[1].ID != 3 {
		t.Fatalf("post-close resume = %+v, want ids 2,3", evs)
	}
	if _, closed := sub.take(); !closed {
		t.Fatal("drained post-close subscriber should see closed")
	}
}

func TestBusConcurrentPublishersAndSubscribers(t *testing.T) {
	b := newBus(128, 256, &busMetrics{})
	const pubs, events = 4, 200
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, 3)
	for s := 0; s < 3; s++ {
		sub := b.subscribe(0)
		seen[s] = map[uint64]bool{}
		wg.Add(1)
		go func(sub *subscriber, got map[uint64]bool) {
			defer wg.Done()
			for {
				evs, closed := sub.take()
				for _, ev := range evs {
					if ev.Type == EventGap {
						// Ids inside a gap are accounted for: the
						// subscriber was told exactly what it lost.
						for id := ev.From; id <= ev.To; id++ {
							got[id] = true
						}
						continue
					}
					if got[ev.ID] {
						panic(fmt.Sprintf("duplicate event id %d", ev.ID))
					}
					got[ev.ID] = true
				}
				if closed {
					return
				}
				<-sub.notify
			}
		}(sub, seen[s])
	}
	var pw sync.WaitGroup
	for p := 0; p < pubs; p++ {
		pw.Add(1)
		go func() {
			defer pw.Done()
			for i := 0; i < events; i++ {
				b.publish(lifecycle(i))
			}
		}()
	}
	pw.Wait()
	b.close()
	wg.Wait()
	for s, got := range seen {
		if len(got) != pubs*events {
			t.Fatalf("subscriber %d saw %d distinct events, want %d", s, len(got), pubs*events)
		}
	}
}
