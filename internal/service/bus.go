package service

// The per-job event bus: the streaming layer between the sweep executor and
// any number of SSE subscribers watching GET /v1/runs/{id}/events.
//
// Contract, in order of importance:
//
//  1. Publishing never blocks. The executor appends under a mutex and pokes
//     a non-blocking notify channel; a subscriber that stopped reading can
//     only fill its own bounded buffer, never stall runTask.
//  2. Every event gets a monotonically increasing id, assigned at publish.
//     Lifecycle events (admitted/started/cached/…/failed) additionally land
//     in a bounded replay ring so a client reconnecting with Last-Event-ID
//     receives exactly the missed suffix still retained — and an explicit
//     gap marker for anything evicted before it reconnected.
//  3. Progress events ("step" samples) are lossy by contract: they coalesce
//     against the newest pending step of the same task, are dropped first
//     under pressure, and are never replayed on resume.
//  4. A subscriber whose buffer overflows loses lifecycle events too —
//     pathologically slow clients get a "gap" event naming the dropped id
//     range instead of back-pressure, and can re-fetch job state to catch
//     up.
//
// The bus closes when its job reaches a terminal state; subscribers drain
// whatever is pending and their streams end.

import (
	"sync"
	"sync/atomic"

	"parbw/internal/result"
)

// Event types published on a job's bus. Exactly one terminal event is
// published per task — "cached", "completed", "failed", or "cancelled" —
// which is what lets a stream consumer count cells without reconciling
// against the job view.
const (
	EventAdmitted  = "admitted"  // task admitted at submission (one per cell)
	EventStarted   = "started"   // task began executing (per attempt node)
	EventCached    = "cached"    // terminal: served from the run store
	EventForwarded = "forwarded" // task shipped to its owning peer
	EventDegraded  = "degraded"  // forward abandoned; falling back to local compute
	EventCompleted = "completed" // terminal: computed (flags carry cached/forwarded/degraded)
	EventFailed    = "failed"    // terminal: every attempt failed
	EventCancelled = "cancelled" // terminal: job timeout or cancellation
	EventStep      = "step"      // sampled engine StepStats progress (lossy)
	EventGap       = "gap"       // subscriber-local marker: ids From..To were dropped
	EventJob       = "job"       // job-level state change, with counts by task state
)

// TerminalEvent reports whether t is one of the per-task terminal event
// types (exactly one is published per task).
func TerminalEvent(t string) bool {
	switch t {
	case EventCached, EventCompleted, EventFailed, EventCancelled:
		return true
	}
	return false
}

// Event is one entry of a job's event stream. Task is the task index within
// the job (-1 for job-level events). Events deliberately carry no wall-clock
// fields, so a fixed-seed run streams byte-identical event payloads.
type Event struct {
	ID   uint64 `json:"id"`
	Type string `json:"type"`
	Task int    `json:"task"`

	Experiment string         `json:"experiment,omitempty"`
	Seed       uint64         `json:"seed,omitempty"`
	Params     []result.Param `json:"params,omitempty"`
	Key        string         `json:"key,omitempty"`
	Node       string         `json:"node,omitempty"` // cluster node that produced the event

	Cached    bool   `json:"cached,omitempty"`
	Forwarded bool   `json:"forwarded,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`

	State  string         `json:"state,omitempty"`  // job events: the job state entered
	Counts map[string]int `json:"counts,omitempty"` // job events: tasks by state

	Machine   string  `json:"machine,omitempty"`   // step events: machine family
	Superstep int     `json:"superstep,omitempty"` // step events: 0-based index
	Cost      float64 `json:"cost,omitempty"`      // step events: simulated time of the step

	From uint64 `json:"from,omitempty"` // gap events: first dropped id
	To   uint64 `json:"to,omitempty"`   // gap events: last dropped id
}

// busMetrics are the server-wide streaming counters every bus feeds.
type busMetrics struct {
	published atomic.Uint64 // events published across all jobs
	dropped   atomic.Uint64 // events dropped on full subscriber buffers
	coalesced atomic.Uint64 // step events merged into a pending one
}

// subscriber is one attached event consumer. All fields are guarded by the
// owning bus's mutex except the notify channel.
type subscriber struct {
	bus     *bus
	notify  chan struct{} // cap 1; non-blocking poke on new pending work
	max     int
	pending []Event
	spare   []Event // take() swaps buffers to avoid re-allocating
	// Drop accounting: ids dropFrom..dropTo were discarded because the
	// buffer was full; a gap event is synthesized at the next take.
	dropFrom, dropTo uint64
}

// bus is one job's event fan-out. The zero value is not usable; newBus.
type bus struct {
	metrics *busMetrics
	ringCap int
	subMax  int

	nSubs atomic.Int32 // fast HasSubscribers gate for publishers

	mu     sync.Mutex
	nextID uint64
	// Replay ring of lifecycle events: a circular buffer of the most recent
	// ringCap non-step events. evictedThrough is the highest id ever pushed
	// out (or skipped as a step event never enters the ring — those don't
	// count as evicted; resume never replays steps).
	ring           []Event
	ringStart      int
	ringLen        int
	evictedThrough uint64
	subs           map[*subscriber]struct{}
	closed         bool
}

func newBus(ringCap, subMax int, m *busMetrics) *bus {
	return &bus{
		metrics: m,
		ringCap: ringCap,
		subMax:  subMax,
		ring:    make([]Event, ringCap),
		subs:    map[*subscriber]struct{}{},
	}
}

// HasSubscribers reports whether anyone is listening — the cheap gate the
// executor checks before doing per-event work (engine tagging, remote event
// emission).
func (b *bus) HasSubscribers() bool { return b != nil && b.nSubs.Load() > 0 }

// publish assigns the next id and fans ev out: lifecycle events into the
// replay ring and every subscriber's buffer, step events into buffers only.
// It never blocks and is safe from any goroutine. Returns the assigned id
// (0 if the bus is closed). A nil bus (a Job built outside Submit, as some
// tests do) swallows everything.
func (b *bus) publish(ev Event) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.nextID++
	ev.ID = b.nextID
	b.metrics.published.Add(1)
	if ev.Type != EventStep {
		if b.ringLen == b.ringCap {
			b.evictedThrough = b.ring[b.ringStart].ID
			b.ringStart = (b.ringStart + 1) % b.ringCap
			b.ringLen--
		}
		b.ring[(b.ringStart+b.ringLen)%b.ringCap] = ev
		b.ringLen++
	}
	var woken []*subscriber
	for sub := range b.subs {
		if sub.offer(ev) {
			woken = append(woken, sub)
		}
	}
	b.mu.Unlock()
	for _, sub := range woken {
		sub.wake()
	}
	return ev.ID
}

// offer appends ev to the subscriber's pending buffer, coalescing step
// events and recording drops when full. Called with bus.mu held; reports
// whether the subscriber should be woken.
func (s *subscriber) offer(ev Event) bool {
	if ev.Type == EventStep {
		// Coalesce against the newest pending step of the same task: a
		// subscriber draining slower than the engine commits sees the
		// latest progress, not a backlog of stale samples.
		if n := len(s.pending); n > 0 {
			if last := &s.pending[n-1]; last.Type == EventStep && last.Task == ev.Task && last.Node == ev.Node {
				*last = ev
				s.bus.metrics.coalesced.Add(1)
				return true
			}
		}
		if len(s.pending) >= s.max {
			// Steps are lossy by contract: drop without a gap marker.
			s.bus.metrics.dropped.Add(1)
			return false
		}
		s.pending = append(s.pending, ev)
		return true
	}
	if len(s.pending) >= s.max {
		// A lifecycle event a full subscriber will never see: record the
		// dropped range so the next take() emits a gap marker instead of
		// silently losing it.
		if s.dropFrom == 0 {
			s.dropFrom = ev.ID
		}
		s.dropTo = ev.ID
		s.bus.metrics.dropped.Add(1)
		return true // wake it: draining is the only way out
	}
	s.pending = append(s.pending, ev)
	return true
}

// wake pokes the subscriber's notify channel without blocking.
func (s *subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// take removes and returns everything pending, appending a synthesized gap
// event if lifecycle events were dropped since the last take. closed
// reports that the bus is closed AND nothing is left — the stream is over.
func (s *subscriber) take() (evs []Event, closed bool) {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	evs, s.pending = s.pending, s.spare[:0]
	s.spare = evs[:0] // the buffers swap roles next take
	if s.dropFrom != 0 {
		evs = append(evs, Event{ID: s.dropTo, Type: EventGap, Task: -1, From: s.dropFrom, To: s.dropTo})
		s.dropFrom, s.dropTo = 0, 0
	}
	// Once the bus is closed nothing can refill pending, so this batch is the
	// stream's tail: report closed alongside it. Reporting closed only on an
	// empty take would lose the close wake when it coalesced (notify holds one
	// token) with a publish the consumer was still writing out — the consumer
	// would drain, then block on notify forever.
	return evs, b.closed
}

// subscribe attaches a new consumer. Events with id > lastID still in the
// replay ring are preloaded into its buffer (with a leading gap event when
// the ring has already evicted part of the requested suffix). Subscribing
// to a closed bus is how a client replays a finished job's tail: the
// preloaded events drain and the stream ends.
func (b *bus) subscribe(lastID uint64) *subscriber {
	sub := &subscriber{bus: b, notify: make(chan struct{}, 1), max: b.subMax}
	b.mu.Lock()
	if lastID < b.evictedThrough {
		// The requested suffix starts before the ring's oldest retained
		// event: lead with a gap marker so the replay that follows is
		// explicitly partial. Its id is the gap's end, keeping the client's
		// Last-Event-ID monotone.
		sub.pending = append(sub.pending, Event{ID: b.evictedThrough, Type: EventGap, Task: -1, From: lastID + 1, To: b.evictedThrough})
	}
	for i := 0; i < b.ringLen; i++ {
		ev := b.ring[(b.ringStart+i)%b.ringCap]
		if ev.ID > lastID {
			sub.offer(ev)
		}
	}
	b.subs[sub] = struct{}{}
	b.nSubs.Add(1)
	b.mu.Unlock()
	sub.wake() // there may be preloaded events (or an immediate close) to see
	return sub
}

// unsubscribe detaches sub; its buffered events are discarded.
func (b *bus) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		b.nSubs.Add(-1)
	}
	b.mu.Unlock()
}

// close seals the bus — no more publishes — and wakes every subscriber so
// each drains its tail and ends its stream. A nil bus is a no-op.
func (b *bus) close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*subscriber, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	b.mu.Unlock()
	for _, sub := range subs {
		sub.wake()
	}
}
