package service

import (
	"hash/fnv"
	"sync"
	"time"

	"parbw/internal/xrand"
)

// This file holds the retry-discipline pieces of the hardened executor: the
// circuit breaker that guards run-store writes, and the deterministic
// exponential backoff between task attempts. Both echo the paper's thesis —
// pace injections instead of hammering a collapsing resource (the f_m^u
// penalty regime): a store that just failed is "overloaded", so the
// executor backs off or routes around it rather than piling on.

// breaker is a consecutive-failure circuit breaker. Closed: writes flow,
// and threshold consecutive failures open it. Open: writes are skipped for
// cooldown. Half-open: after the cooldown one probe write is allowed
// through at a time — success closes the breaker, failure re-opens it.
// A threshold <= 0 disables the breaker entirely.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
	opens     uint64
}

// allow reports whether a write should be attempted now. A true return in
// the half-open state claims the probe slot; the caller must follow up
// with success or failure.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.fails >= b.threshold {
		if !now.Before(b.openUntil) {
			b.opens++ // closed (or half-open) → open transition
		}
		b.openUntil = now.Add(b.cooldown)
	}
}

// isOpen reports whether writes are currently being skipped.
func (b *breaker) isOpen(now time.Time) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil)
}

func (b *breaker) openCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// backoffSeed fixes the jitter stream. Jitter must be deterministic (chaos
// runs replay bit-identically) yet decorrelated across tasks and attempts,
// so the stream is split by task key and attempt rather than seeded per
// server.
const backoffSeed = 0x9e3779b97f4a7c15

// backoffDelay returns the pause before retry `attempt` (attempts are
// 1-based; the first retry is attempt 2): base·2^(attempt−2) scaled by a
// deterministic jitter factor in [0.5, 1.5) drawn from (key, attempt), and
// capped at max. Jitter prevents a failed sweep's tasks from re-hammering
// a struggling dependency in lockstep — the same collision-collapse the
// paper's schedulers exist to avoid.
func backoffDelay(base, max time.Duration, key string, attempt int) time.Duration {
	if base <= 0 || attempt < 2 {
		return 0
	}
	d := base
	for i := 2; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	src := xrand.New(backoffSeed).Split(h.Sum64()).Split(uint64(attempt))
	d = time.Duration(float64(d) * (0.5 + src.Float64()))
	if d > max {
		d = max
	}
	return d
}
