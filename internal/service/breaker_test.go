package service

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := breaker{threshold: 2, cooldown: time.Minute}
	t0 := time.Unix(1000, 0)

	if !b.allow(t0) {
		t.Fatal("fresh breaker not closed")
	}
	b.failure(t0)
	if !b.allow(t0) || b.isOpen(t0) {
		t.Fatal("one failure below threshold opened the breaker")
	}
	b.failure(t0)
	if b.allow(t0) || !b.isOpen(t0) {
		t.Fatal("threshold failures did not open the breaker")
	}
	if b.openCount() != 1 {
		t.Fatalf("opens = %d, want 1", b.openCount())
	}

	// Half-open after the cooldown: exactly one probe is allowed.
	t1 := t0.Add(2 * time.Minute)
	if !b.allow(t1) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow(t1) {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe failure re-opens (a second distinct open).
	b.failure(t1)
	if b.allow(t1.Add(time.Second)) {
		t.Fatal("failed probe did not re-open")
	}
	if b.openCount() != 2 {
		t.Fatalf("opens = %d, want 2", b.openCount())
	}
	// Probe success closes fully.
	t2 := t1.Add(2 * time.Minute)
	if !b.allow(t2) {
		t.Fatal("probe refused after second cooldown")
	}
	b.success()
	if !b.allow(t2) || b.isOpen(t2) {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := breaker{threshold: -1, cooldown: time.Minute}
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		b.failure(now)
	}
	if !b.allow(now) || b.isOpen(now) || b.openCount() != 0 {
		t.Fatal("disabled breaker tripped")
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	key := "deadbeef"
	for attempt := 2; attempt <= 8; attempt++ {
		d1 := backoffDelay(base, max, key, attempt)
		d2 := backoffDelay(base, max, key, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %s vs %s", attempt, d1, d2)
		}
		raw := base << (attempt - 2)
		if raw > max {
			raw = max
		}
		if d1 < raw/2 || d1 > max {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d1, raw/2, max)
		}
	}
	// Exponential shape: the un-capped raw window doubles per attempt, so
	// the jittered delay at attempt 5 must exceed attempt 2's window.
	if d := backoffDelay(base, max, key, 5); d <= base+base/2 {
		t.Fatalf("attempt 5 delay %s not exponentially larger than base", d)
	}
	// Distinct keys de-correlate.
	if backoffDelay(base, max, "aaaa", 3) == backoffDelay(base, max, "bbbb", 3) &&
		backoffDelay(base, max, "aaaa", 4) == backoffDelay(base, max, "bbbb", 4) {
		t.Fatal("jitter identical across keys at two attempts")
	}
	// No backoff before the first retry, or when disabled.
	if backoffDelay(base, max, key, 1) != 0 || backoffDelay(-1, max, key, 3) != 0 {
		t.Fatal("expected zero delay")
	}
}
