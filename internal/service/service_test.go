package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parbw/internal/harness"
	"parbw/internal/result"
	"parbw/internal/runstore"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Store == nil {
		st, err := runstore.Open(t.TempDir(), 32)
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = st
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postRuns(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func TestExperimentsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	if code := getJSON(t, ts, "/experiments", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Experiments) != len(harness.All()) {
		t.Fatalf("%d experiments listed, registry has %d", len(out.Experiments), len(harness.All()))
	}
	found := false
	for _, e := range out.Experiments {
		if e.ID == "table1/broadcast" && e.Title != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("table1/broadcast missing from listing")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var out map[string]string
	if code := getJSON(t, ts, "/healthz", &out); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, out)
	}
}

// The acceptance path: POST /runs twice with identical id/params/seed. The
// second request must be served from the run store (visible in /statsz) and
// carry byte-identical result JSON.
func TestRepeatedRunServedFromStore(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"experiments":["table1/broadcast","sched/static"],"seeds":[1],"quick":true}`

	resultBytes := func(key string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/results/" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/results/%s: status %d: %s", key, resp.StatusCode, raw)
		}
		return raw
	}

	code, first := postRuns(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("first POST: status %d: %s", code, first)
	}
	var j1 JobSummary
	if err := json.Unmarshal(first, &j1); err != nil {
		t.Fatal(err)
	}
	if j1.State != StatusDone || j1.TaskCount != 2 {
		t.Fatalf("first job: state=%s tasks=%d", j1.State, j1.TaskCount)
	}
	tasks1 := jobTasks(t, ts, j1.ID)
	if len(tasks1) != 2 {
		t.Fatalf("tasks page has %d entries, want 2", len(tasks1))
	}
	raw1 := make([][]byte, len(tasks1))
	for i, task := range tasks1 {
		if task.Cached {
			t.Fatalf("first run of %s reported cached", task.Experiment)
		}
		if len(task.Result) != 0 {
			t.Fatalf("tasks page for %s inlines the result payload; results live at /v1/results", task.Experiment)
		}
		raw1[i] = resultBytes(task.Key)
		if len(raw1[i]) == 0 {
			t.Fatalf("task %s has no stored result", task.Experiment)
		}
	}

	var st1 statsView
	getJSON(t, ts, "/statsz", &st1)

	code, second := postRuns(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d", code)
	}
	var j2 JobSummary
	if err := json.Unmarshal(second, &j2); err != nil {
		t.Fatal(err)
	}
	for i, task := range jobTasks(t, ts, j2.ID) {
		if !task.Cached {
			t.Fatalf("second run of %s not served from store", task.Experiment)
		}
		if !bytes.Equal(resultBytes(task.Key), raw1[i]) {
			t.Fatalf("%s: repeated run JSON not byte-identical", task.Experiment)
		}
	}

	var st2 statsView
	getJSON(t, ts, "/statsz", &st2)
	if st2.Store.Hits < st1.Store.Hits+2 {
		t.Fatalf("store hits went %d -> %d, want +2", st1.Store.Hits, st2.Store.Hits)
	}
	if st2.Executor.TasksCached < 2 {
		t.Fatalf("executor cached-task counter = %d, want >= 2", st2.Executor.TasksCached)
	}

	// The first job drove real machines, so the process-wide engine counters
	// must be visible on /statsz; the second job was served from the store
	// and must not have advanced them.
	if st1.Engine.Supersteps == 0 || st1.Engine.Messages == 0 {
		t.Fatalf("engine counters not reported after a real run: %+v", st1.Engine)
	}
	if st2.Engine.Supersteps != st1.Engine.Supersteps {
		t.Fatalf("cached job advanced engine supersteps: %d -> %d",
			st1.Engine.Supersteps, st2.Engine.Supersteps)
	}

	// The stored result is also still addressable on the legacy key-on-runs
	// alias, byte-for-byte the same as the results resource.
	key := tasks1[0].Key
	resp, err := http.Get(ts.URL + "/runs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s: status %d", key, resp.StatusCode)
	}
	if !bytes.Equal(raw, raw1[0]) {
		t.Fatal("key fetch differs from results-resource bytes")
	}
	res, err := result.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != tasks1[0].Experiment {
		t.Fatalf("stored result names %q", res.Experiment)
	}
}

func TestUnknownExperimentSuggestions(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postRuns(t, ts, `{"experiments":["table1/brodcast"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeUnknownExperiment {
		t.Fatalf("error code %q, want %q", e.Error.Code, CodeUnknownExperiment)
	}
	ok := false
	for _, sug := range e.Error.Suggestions {
		if sug == "table1/broadcast" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("suggestions %v missing table1/broadcast", e.Error.Suggestions)
	}
}

func TestGetRunNotFound(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := getJSON(t, ts, "/runs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("job fetch: status %d, want 404", code)
	}
	missingKey := strings.Repeat("ab", 32)
	if code := getJSON(t, ts, "/runs/"+missingKey, nil); code != http.StatusNotFound {
		t.Fatalf("key fetch: status %d, want 404", code)
	}
}

// A runner that fails deterministically for the first attempts exercises the
// bounded-retry path.
func TestExecutorRetries(t *testing.T) {
	var calls atomic.Int32
	flaky := func(id string, cfg harness.Config) (*result.Result, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient failure")
		}
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: flaky, Retries: 2})
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if state := job.Wait(context.Background()); state != StatusDone {
		t.Fatalf("job state %q, want done", state)
	}
	v := job.View()
	if v.Tasks[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", v.Tasks[0].Attempts)
	}
	if s.Stats().TaskRetries != 2 {
		t.Fatalf("retry counter = %d, want 2", s.Stats().TaskRetries)
	}
}

func TestExecutorGivesUpAfterBoundedRetries(t *testing.T) {
	always := func(id string, cfg harness.Config) (*result.Result, error) {
		return nil, errors.New("permanent failure")
	}
	s := newTestServer(t, Options{Runner: always, Retries: 1})
	job, _ := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if state := job.Wait(context.Background()); state != StatusFailed {
		t.Fatalf("job state %q, want failed", state)
	}
	v := job.View()
	if v.Tasks[0].Attempts != 2 || v.Tasks[0].Error == "" {
		t.Fatalf("task = %+v, want 2 attempts and an error", v.Tasks[0])
	}
}

func TestExecutorRecoversPanics(t *testing.T) {
	boom := func(id string, cfg harness.Config) (*result.Result, error) {
		panic("kaboom")
	}
	s := newTestServer(t, Options{Runner: boom, Retries: 1})
	job, _ := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if state := job.Wait(context.Background()); state != StatusFailed {
		t.Fatalf("job state %q, want failed", state)
	}
	if !strings.Contains(job.View().Tasks[0].Error, "kaboom") {
		t.Fatalf("panic not surfaced: %+v", job.View().Tasks[0])
	}
	if s.Stats().TaskPanics != 2 {
		t.Fatalf("panic counter = %d, want 2", s.Stats().TaskPanics)
	}
}

func TestJobCancellation(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int32
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		started.Add(1)
		<-release
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 2})

	job, err := s.Submit(RunRequest{Experiments: []string{"all"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	job.Cancel()
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != StatusCancelled {
		t.Fatalf("job state %q, want cancelled", state)
	}
	v := job.View()
	cancelled := 0
	for _, task := range v.Tasks {
		if task.Status == StatusCancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no task recorded as cancelled")
	}
}

func TestJobTimeout(t *testing.T) {
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		time.Sleep(50 * time.Millisecond)
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 1})
	job, err := s.Submit(RunRequest{
		Experiments: []string{"table1/broadcast", "table1/parity", "sched/static"},
		Quick:       true,
		TimeoutMS:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != StatusCancelled {
		t.Fatalf("job state %q, want cancelled (timeout)", state)
	}
	sawTimeout := false
	for _, task := range job.View().Tasks {
		if task.Error == "job timeout" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatalf("no task blamed the timeout: %+v", job.View().Tasks)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxTasks: 4})
	if _, err := s.Submit(RunRequest{}); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := s.Submit(RunRequest{Experiments: []string{"nope"}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	_, err := s.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"},
		Seeds:       []uint64{1, 2, 3, 4, 5},
		Quick:       true,
	})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("task cap not enforced: %v", err)
	}
}

func TestSweepFansOutAllExperiments(t *testing.T) {
	s := newTestServer(t, Options{})
	job, err := s.Submit(RunRequest{Experiments: []string{"all"}, Quick: true, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if state := job.Wait(ctx); state != StatusDone {
		t.Fatalf("sweep state %q, want done", state)
	}
	v := job.View()
	if len(v.Tasks) != len(harness.All()) {
		t.Fatalf("sweep ran %d tasks, registry has %d", len(v.Tasks), len(harness.All()))
	}
	for _, task := range v.Tasks {
		if task.Status != StatusDone {
			t.Fatalf("task %s: %s (%s)", task.Experiment, task.Status, task.Error)
		}
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postRuns(t, ts, `{"experiments":["table1/broadcast"],"quick":true,"wait":false}`)
	if code != http.StatusAccepted {
		t.Fatalf("async POST: status %d: %s", code, body)
	}
	var v JobSummary
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got JobSummary
		if code := getJSON(t, ts, "/runs/"+v.ID, &got); code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if got.State == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var list struct {
		Jobs []JobSummary `json:"jobs"`
	}
	getJSON(t, ts, "/runs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("job listing = %+v", list.Jobs)
	}
}

func TestDeleteCancelsJob(t *testing.T) {
	release := make(chan struct{}, 1)
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		<-release
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postRuns(t, ts, `{"experiments":["table1/broadcast"],"quick":true,"wait":false}`)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	var v JobSummary
	json.Unmarshal(body, &v)

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%s", ts.URL, v.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	release <- struct{}{}

	job, _ := s.Job(v.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != StatusCancelled && state != StatusDone {
		t.Fatalf("state after DELETE = %q", state)
	}
}
