package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parbw/internal/fault"
	"parbw/internal/harness"
	"parbw/internal/result"
	"parbw/internal/runstore"
)

// The chaos suite: every test drives the service through a seeded
// internal/fault plan — injected disk errors, partial writes, panics, slow
// runners, overload, shutdown — and asserts the service degrades (sheds,
// retries, quarantines, drains) instead of wedging or corrupting state.
// Plans use fixed seeds, so a failure here replays bit-identically.

// chaosSeed fixes every plan in this file; change it and the suite must
// still pass (the assertions are behavioral), but any single run is
// reproducible.
const chaosSeed = 0xC0FFEE

// assertStoreClean runs a full scrub and fails the test if any corrupt or
// half-written entry survived the chaos.
func assertStoreClean(t *testing.T, s *runstore.Store) {
	t.Helper()
	rep, err := s.Scrub()
	if err != nil {
		t.Fatalf("final scrub: %v", err)
	}
	if rep.Quarantined != 0 || rep.TmpSwept != 0 {
		t.Fatalf("store not clean after chaos: %+v", rep)
	}
}

// waitState waits for the job to reach a terminal state.
func waitState(t *testing.T, job *Job) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	state := job.Wait(ctx)
	if state == "" {
		t.Fatal("job did not reach a terminal state: service wedged")
	}
	return state
}

func TestChaosInjectedPanicsAreRetriedWithBackoff(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointRunner, Kind: fault.Panic, Count: 2})
	s := newTestServer(t, Options{Retries: 2, Workers: 1, Backoff: time.Millisecond, Fault: plan})

	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("state %q, want done (panics exhausted before retries)", state)
	}
	v := job.View()
	if v.Tasks[0].Attempts != 3 || v.Tasks[0].Cached {
		t.Fatalf("task = %+v, want 3 attempts", v.Tasks[0])
	}
	st := s.Stats()
	if st.TaskPanics != 2 || st.TaskRetries != 2 {
		t.Fatalf("stats = %+v, want 2 panics / 2 retries", st)
	}
	if plan.Fired(PointRunner) != 2 {
		t.Fatalf("plan fired %d times, want 2", plan.Fired(PointRunner))
	}
	assertStoreClean(t, s.Store())
}

func TestChaosPersistentErrorsFailWithoutWedging(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointRunner, Kind: fault.Error})
	s := newTestServer(t, Options{Retries: 1, Workers: 1, Backoff: time.Millisecond, Fault: plan})
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusFailed {
		t.Fatalf("state %q, want failed", state)
	}
	v := job.View()
	if v.Tasks[0].Attempts != 2 || !strings.Contains(v.Tasks[0].Error, "injected") {
		t.Fatalf("task = %+v", v.Tasks[0])
	}
	assertStoreClean(t, s.Store())
}

func TestChaosSlowRunnerHitsJobTimeoutCleanly(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointRunner, Kind: fault.Slow, Delay: time.Minute})
	s := newTestServer(t, Options{Workers: 1, Fault: plan})
	job, err := s.Submit(RunRequest{
		Experiments: []string{"table1/broadcast", "table1/parity", "sched/static"},
		Quick:       true,
		TimeoutMS:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if state := waitState(t, job); state != StatusCancelled {
		t.Fatalf("state %q, want cancelled (timeout)", state)
	}
	// The injected minute-long stall must not hold the job past its
	// deadline: Slow faults respect the task context.
	if time.Since(start) > 10*time.Second {
		t.Fatal("timeout did not cut the injected stall short")
	}
	sawTimeout := false
	for _, task := range job.View().Tasks {
		if task.Error == "job timeout" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatalf("no task blamed the timeout: %+v", job.View().Tasks)
	}
	assertStoreClean(t, s.Store())
}

// Store writes fail persistently: the breaker opens after the threshold and
// every task still completes, degraded to compute-without-cache.
func TestChaosStoreWriteFailuresOpenBreakerAndDegrade(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointStorePut, Kind: fault.Error})
	s := newTestServer(t, Options{
		Workers:          1,
		Backoff:          time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Fault:            plan,
	})
	job, err := s.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"},
		Seeds:       []uint64{1, 2, 3, 4, 5},
		Quick:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("state %q, want done — store failure must not fail jobs", state)
	}
	for _, task := range job.View().Tasks {
		if task.Status != StatusDone || !task.Degraded || len(task.Result) == 0 {
			t.Fatalf("task = %+v, want done+degraded with payload", task)
		}
	}
	st := s.Stats()
	if st.TasksDegraded != 5 || st.StoreErrors != 2 || st.BreakerOpens != 1 || !st.BreakerOpen {
		t.Fatalf("stats = %+v, want 5 degraded, 2 store errors, breaker open", st)
	}
	// Once open, the breaker stops even *attempting* writes: the injection
	// point was only reached threshold-many times.
	if plan.Fired(PointStorePut) != 2 {
		t.Fatalf("store.put fired %d times, want 2 (breaker short-circuit)", plan.Fired(PointStorePut))
	}
	// Nothing was cached, and nothing was corrupted.
	if keys, err := s.Store().DiskKeys(); err != nil || len(keys) != 0 {
		t.Fatalf("degraded run left entries: %v, %v", keys, err)
	}
	assertStoreClean(t, s.Store())
}

// Torn disk writes (injected at the filesystem seam) leave no visible
// entry, no orphaned temp file, and the task degrades instead of failing.
func TestChaosPartialWritesLeaveNoTornState(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: "store.fs.write", Kind: fault.PartialWrite})
	store, err := runstore.OpenFS(t.TempDir(), 8, fault.InjectFS(fault.OS, plan, "store.fs."))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Store: store, Workers: 1, Backoff: time.Millisecond, BreakerThreshold: 1, BreakerCooldown: time.Hour})

	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Seeds: []uint64{1, 2}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("state %q, want done", state)
	}
	for _, task := range job.View().Tasks {
		if task.Status != StatusDone || !task.Degraded {
			t.Fatalf("task = %+v, want done+degraded", task)
		}
	}
	if keys, err := store.DiskKeys(); err != nil || len(keys) != 0 {
		t.Fatalf("torn writes left entries: %v, %v", keys, err)
	}
	// No half-written file anywhere: temp removed at write time, nothing to
	// sweep or quarantine.
	assertStoreClean(t, store)
}

// A corrupt entry on disk is quarantined on first touch, recomputed, and
// healed by the recompute's write — the "500s forever" mode is gone.
func TestChaosCorruptEntryQuarantinedRecomputedAndHealed(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Store: store, Workers: 1})

	// Seed the store with a corrupt file at exactly the key the task will
	// look up.
	e, _ := harness.ByID("table1/broadcast")
	vals, err := e.Resolve(harness.QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	key := runstore.Key(runstore.KeySpec{
		Experiment: "table1/broadcast", Seed: 1, Params: vals.Canonical(), Version: harness.CodeVersion,
	})
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"experiment":"table1/broadcast",`), 0o644); err != nil {
		t.Fatal(err)
	}

	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("state %q, want done", state)
	}
	task := job.View().Tasks[0]
	if task.Cached || task.Degraded {
		t.Fatalf("task = %+v, want a clean recompute", task)
	}
	if st := store.Stats(); st.Quarantined != 1 {
		t.Fatalf("store stats = %+v, want 1 quarantined", st)
	}
	// The corrupt bytes moved aside for post-mortem; the slot healed.
	if _, err := os.Stat(filepath.Join(dir, runstore.QuarantineDir, key+".json")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	data, ok, err := store.GetBytes(key)
	if err != nil || !ok {
		t.Fatalf("healed entry unreadable: ok=%v err=%v", ok, err)
	}
	if string(data) != string(task.Result) {
		t.Fatal("healed entry differs from the task result")
	}
	assertStoreClean(t, store)
}

// Injected read faults at the store seam surface as cache misses plus a
// recompute, never as task failures.
func TestChaosReadFaultsRecompute(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointStoreGet, Kind: fault.Error})
	s := newTestServer(t, Options{Workers: 1, Fault: plan})

	// First job populates the store (reads faulted, writes fine), second
	// job would be cache-served but its read also faults → recompute again.
	for i := 0; i < 2; i++ {
		job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if state := waitState(t, job); state != StatusDone {
			t.Fatalf("job %d: state %q", i, state)
		}
		if task := job.View().Tasks[0]; task.Cached {
			t.Fatalf("job %d served from cache through a read fault", i)
		}
	}
	st := s.Stats()
	if st.StoreErrors != 2 || st.TasksRun != 2 || st.TasksCached != 0 {
		t.Fatalf("stats = %+v, want 2 store errors, 2 recomputes", st)
	}
	assertStoreClean(t, s.Store())
}

// Overload: a full queue sheds with a typed error and HTTP 503 +
// Retry-After instead of admitting work it cannot start.
func TestChaosQueueFullSheds503(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int32
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		started.Add(1)
		<-release
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	body := `{"experiments":["table1/broadcast"],"quick":true,"wait":false}`
	job1, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond) // job1 must be running, not queued
	}
	if _, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true}); err != nil {
		t.Fatalf("queue slot free, submit failed: %v", err)
	}

	var full *QueueFullError
	_, err = s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if !errors.As(err, &full) {
		t.Fatalf("overload error = %v, want QueueFullError", err)
	}
	if full.Depth != 1 || full.RetryAfter <= 0 {
		t.Fatalf("shed error = %+v", full)
	}

	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := s.Stats(); st.JobsShed != 2 {
		t.Fatalf("stats = %+v, want 2 shed", st)
	}
	_ = job1
}

// Graceful drain: running jobs finish, queued jobs cancel, new submissions
// shed, readiness goes false — and the drain completes cleanly.
func TestChaosShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int32
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		started.Add(1)
		<-release
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.Ready(); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	running, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Seeds: []uint64{99}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	// Draining is visible immediately; submissions shed; readiness false.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"experiments":["table1/broadcast"],"quick":true,"wait":false}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("drain POST = %d (Retry-After %q), want 503 + hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := getJSON(t, ts, "/healthz?ready=1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz?ready=1 during drain = %d, want 503", code)
	}
	// Liveness stays green while draining.
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}

	// The queued job cancels promptly, before the running one finishes.
	if state := queued.Wait(ctx); state != StatusCancelled {
		t.Fatalf("queued job state %q, want cancelled", state)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
	if state := running.Wait(ctx); state != StatusDone {
		t.Fatalf("running job state %q, want done (drain lets it finish)", state)
	}
	assertStoreClean(t, s.Store())
}

// A drain whose deadline expires hard-cancels instead of hanging.
func TestChaosShutdownDeadlineForcesHardCancel(t *testing.T) {
	var started atomic.Int32
	slow := func(id string, cfg harness.Config) (*result.Result, error) {
		started.Add(1)
		time.Sleep(300 * time.Millisecond) // deliberately ignores the drain
		return DefaultRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: slow, Workers: 1})
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond) // drain must catch the job mid-run
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
	// The job reached a terminal state and the server is fully closed.
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if state := job.Wait(wctx); state == "" || state == StatusRunning {
		t.Fatalf("job state %q after hard cancel", state)
	}
	if err := s.Ready(); err == nil {
		t.Fatal("closed server reports ready")
	}
}

// Readiness actually probes the store: a store that cannot persist flips
// /readyz to 503 while /healthz stays 200.
func TestChaosReadinessProbesStoreWritability(t *testing.T) {
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: "store.fs.create", Kind: fault.Error})
	store, err := runstore.OpenFS(t.TempDir(), 8, fault.InjectFS(fault.OS, plan, "store.fs."))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with dead store = %d, want 503", code)
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz with dead store = %d, want 200 (still live)", code)
	}
}

// The acceptance property in one shot: the same seed replays the same
// chaos. Two servers, identical plans mixing probabilistic runner errors
// and store-write faults, single-worker execution: the fault event logs and
// the final task states must match exactly.
func TestChaosDeterministicReplay(t *testing.T) {
	runOnce := func() ([]fault.Event, []string, Stats) {
		plan := fault.NewPlan(chaosSeed,
			fault.Rule{Point: PointRunner, Kind: fault.Error, Prob: 0.4},
			fault.Rule{Point: PointStorePut, Kind: fault.Error, Prob: 0.5},
		)
		s := newTestServer(t, Options{
			Workers: 1, Retries: 2, Backoff: time.Millisecond,
			BreakerThreshold: -1, // keep every put attempt observable
			Fault:            plan,
		})
		job, err := s.Submit(RunRequest{
			Experiments: []string{"table1/broadcast"},
			Seeds:       []uint64{1, 2, 3, 4, 5, 6},
			Quick:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, job)
		assertStoreClean(t, s.Store())
		var states []string
		for _, task := range job.View().Tasks {
			states = append(states, task.Status)
		}
		return plan.Events(), states, s.Stats()
	}

	ev1, st1, stats1 := runOnce()
	ev2, st2, stats2 := runOnce()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("fault logs diverged:\n%+v\n---\n%+v", ev1, ev2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("task states diverged: %v vs %v", st1, st2)
	}
	if len(ev1) == 0 {
		t.Fatal("plan injected nothing; the replay test is vacuous")
	}
	if stats1.TaskRetries != stats2.TaskRetries || stats1.StoreErrors != stats2.StoreErrors ||
		stats1.TasksDegraded != stats2.TasksDegraded {
		t.Fatalf("counters diverged: %+v vs %+v", stats1, stats2)
	}
}

// The writeJSON satellite: encode failures are counted, not dropped.
func TestEncodeErrorsCounted(t *testing.T) {
	s := newTestServer(t, Options{})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if st := s.Stats(); st.EncodeErrors != 1 {
		t.Fatalf("stats = %+v, want 1 encode error", st)
	}
}
