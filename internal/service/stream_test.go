package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"parbw/internal/fault"
	"parbw/internal/harness"
	"parbw/internal/result"
)

// The SSE contract suite: the live event stream of GET /v1/runs/{id}/events
// must deliver every terminal per-task event exactly once (resume after a
// disconnect included), must mark loss explicitly with gap events instead of
// silently skipping, and — the core invariant — must never let a slow or
// stalled subscriber slow the executor.

// sseFrame is one parsed frame of a test stream.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// readFrames parses frames off r, calling fn per frame until the stream ends
// or fn returns false. Comments (heartbeats) are skipped.
func readFrames(r io.Reader, fn func(sseFrame) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if f.event != "" || f.data != "" {
				if !fn(f) {
					return nil
				}
			}
			f = sseFrame{}
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "id:"):
			f.id, _ = strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
		case strings.HasPrefix(line, "event:"):
			f.event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			f.data = strings.TrimSpace(line[5:])
		}
	}
	return sc.Err()
}

// openStream issues the SSE request, optionally resuming from lastID.
func openStream(t *testing.T, ctx context.Context, base, jobID string, lastID uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/runs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	return resp
}

// collectAll drains a finished job's stream (subscribe-on-closed-bus replay).
func collectAll(t *testing.T, base, jobID string, lastID uint64) []sseFrame {
	t.Helper()
	resp := openStream(t, context.Background(), base, jobID, lastID)
	defer resp.Body.Close()
	var frames []sseFrame
	if err := readFrames(resp.Body, func(f sseFrame) bool {
		frames = append(frames, f)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return frames
}

// stubRunner returns a cheap deterministic result without driving machines —
// the 10k-cell tests need task volume, not simulation fidelity.
func stubRunner(id string, cfg harness.Config) (*result.Result, error) {
	return result.New(id, "stub", "stub", result.Params{}), nil
}

func TestSSEStreamLifecycle(t *testing.T) {
	s := newTestServer(t, Options{Heartbeat: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitJob(t, ts, "table1/broadcast")
	frames := collectAll(t, ts.URL, v.ID, 0)
	if len(frames) < 4 {
		t.Fatalf("stream has %d frames, want at least job/admitted/started/terminal: %+v", len(frames), frames)
	}
	// Monotone ids and self-contained data payloads.
	var last uint64
	types := make([]string, len(frames))
	for i, f := range frames {
		if f.id <= last {
			t.Fatalf("frame %d id %d not monotone after %d", i, f.id, last)
		}
		last = f.id
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data is not event JSON: %v: %s", i, err, f.data)
		}
		if ev.ID != f.id || ev.Type != f.event {
			t.Fatalf("frame %d: SSE fields (id %d, %s) disagree with payload (%d, %s)", i, f.id, f.event, ev.ID, ev.Type)
		}
		types[i] = f.event
	}
	want := []string{EventJob, EventAdmitted, EventJob, EventStarted, EventCompleted, EventJob}
	if got := strings.Join(types, ","); got != strings.Join(want, ",") {
		t.Fatalf("lifecycle = %s, want %s", got, strings.Join(want, ","))
	}
	// The final job event carries the tally.
	var final Event
	json.Unmarshal([]byte(frames[len(frames)-1].data), &final)
	if final.State != StatusDone || final.Counts[StatusDone] != 1 {
		t.Fatalf("final job event = %+v, want done with counts", final)
	}
}

// A client that reconnects with Last-Event-ID receives exactly the missed
// suffix: same ids, same bytes.
func TestSSEResumeReplaysExactSuffix(t *testing.T) {
	s := newTestServer(t, Options{Heartbeat: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v := submitJob(t, ts, "table1/broadcast")
	full := collectAll(t, ts.URL, v.ID, 0)
	if len(full) < 4 {
		t.Fatalf("short stream: %+v", full)
	}
	cut := len(full) / 2
	resumed := collectAll(t, ts.URL, v.ID, full[cut-1].id)
	want := full[cut:]
	if len(resumed) != len(want) {
		t.Fatalf("resume returned %d frames, want %d", len(resumed), len(want))
	}
	for i := range want {
		if resumed[i] != want[i] {
			t.Fatalf("resumed frame %d = %+v, want %+v", i, resumed[i], want[i])
		}
	}
	// Resuming past the newest event yields an immediately-ending empty
	// stream, not an error.
	if tail := collectAll(t, ts.URL, v.ID, full[len(full)-1].id); len(tail) != 0 {
		t.Fatalf("resume at tip returned %d frames, want 0", len(tail))
	}
	// A malformed Last-Event-ID is a 400 with the envelope.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID status %d, want 400", resp.StatusCode)
	}
}

// The acceptance sweep: 10k cells, one live subscriber that disconnects
// mid-sweep and resumes — every cell's terminal event arrives exactly once.
func TestSSETenThousandCellSweepExactlyOnce(t *testing.T) {
	const cells = 10000
	s := newTestServer(t, Options{
		Runner:           stubRunner,
		MaxTasks:         cells,
		ReplayEvents:     65536,
		SubscriberBuffer: 65536,
		StepSample:       -1,
		Heartbeat:        -1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seeds := make([]uint64, cells)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Seeds: seeds, Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	terminal := make(map[int]int) // task index -> terminal event count
	record := func(f sseFrame) {
		if !TerminalEvent(f.event) {
			return
		}
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Errorf("bad event payload: %v", err)
			return
		}
		terminal[ev.Task]++
	}

	// First connection: read roughly half the expected frames, then drop.
	ctx, cancel := context.WithCancel(context.Background())
	resp := openStream(t, ctx, ts.URL, job.View().ID, 0)
	var lastID uint64
	n := 0
	readFrames(resp.Body, func(f sseFrame) bool {
		record(f)
		lastID = f.id
		n++
		return n < 3*cells/2
	})
	cancel()
	resp.Body.Close()
	if lastID == 0 {
		t.Fatal("first connection saw no frames")
	}

	// Resume: the replay ring covers the missed stretch; read to the end.
	for _, f := range collectAll(t, ts.URL, job.View().ID, lastID) {
		if f.event == EventGap {
			t.Fatalf("gap event on resume: the replay ring should cover the whole sweep (%s)", f.data)
		}
		record(f)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	if state := job.Wait(wctx); state != StatusDone {
		t.Fatalf("sweep state %q, want done", state)
	}
	if len(terminal) != cells {
		t.Fatalf("terminal events cover %d cells, want %d", len(terminal), cells)
	}
	for idx, count := range terminal {
		if count != 1 {
			t.Fatalf("task %d got %d terminal events, want exactly 1", idx, count)
		}
	}
}

// The never-blocks invariant over HTTP: a subscriber whose writes are
// chaos-slowed cannot slow the executor. The job must finish at executor
// speed; the stream marks its loss with a gap event.
func TestSSESlowClientNeverBlocksExecutor(t *testing.T) {
	const cells = 200
	plan := fault.NewPlan(chaosSeed, fault.Rule{Point: PointSSEWrite, Kind: fault.Slow, Delay: 25 * time.Millisecond})
	ready := make(chan struct{})
	var once sync.Once
	gated := func(id string, cfg harness.Config) (*result.Result, error) {
		once.Do(func() { <-ready }) // hold the sweep until the stream is attached
		time.Sleep(time.Millisecond)
		return stubRunner(id, cfg)
	}
	s := newTestServer(t, Options{
		Runner:           gated,
		Workers:          1,
		MaxTasks:         cells,
		SubscriberBuffer: 8,
		StepSample:       -1,
		Heartbeat:        -1,
		Fault:            plan,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seeds := make([]uint64, cells)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Seeds: seeds, Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var frames []sseFrame
	resp := openStream(t, context.Background(), ts.URL, job.View().ID, 0)
	defer resp.Body.Close()
	streamDone := make(chan error, 1)
	go func() {
		first := true
		streamDone <- readFrames(resp.Body, func(f sseFrame) bool {
			mu.Lock()
			frames = append(frames, f)
			mu.Unlock()
			if first {
				first = false
				close(ready)
			}
			return true
		})
	}()

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != StatusDone {
		t.Fatalf("sweep state %q, want done", state)
	}
	// cells × 1ms of runner work on one worker: anywhere near the consumer's
	// ~40 frames/s means the stalled subscriber backpressured the executor.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep took %v with a stalled subscriber attached; executor was slowed", elapsed)
	}

	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not end after the job finished")
	}
	mu.Lock()
	defer mu.Unlock()
	sawGap := false
	for _, f := range frames {
		if f.event == EventGap {
			sawGap = true
			var ev Event
			if err := json.Unmarshal([]byte(f.data), &ev); err != nil || ev.From == 0 || ev.To < ev.From {
				t.Fatalf("gap event malformed: %s", f.data)
			}
		}
	}
	if !sawGap {
		t.Fatal("slow subscriber lost events without a gap marker")
	}
	if st := s.Stats(); st.StreamEventsDropped == 0 {
		t.Fatalf("stats = %+v, want dropped stream events accounted", st)
	}
	if len(frames) >= 2+3*cells {
		t.Fatalf("slow subscriber received all %d frames; drop path untested", len(frames))
	}
}

// Heartbeats keep an idle stream alive as comments — no ids, no events, so
// resume arithmetic is untouched by them.
func TestSSEHeartbeatsAreIdlessComments(t *testing.T) {
	release := make(chan struct{})
	gated := func(id string, cfg harness.Config) (*result.Result, error) {
		<-release
		return stubRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: gated, Heartbeat: 20 * time.Millisecond, StepSample: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	resp := openStream(t, context.Background(), ts.URL, job.View().ID, 0)
	defer resp.Body.Close()

	// Read raw lines long enough to cross several heartbeat intervals.
	raw := make([]byte, 0, 4096)
	buf := make([]byte, 512)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) && len(raw) < 2048 {
		n, err := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job.Wait(ctx)

	if !strings.Contains(string(raw), ": hb\n\n") {
		t.Fatalf("no heartbeat comment in %q", raw)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "id:") {
			if _, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64); err != nil {
				t.Fatalf("non-numeric id line %q", line)
			}
		}
	}
}

// Exactly-once under cancellation: every admitted cell gets one terminal
// event even when the job is cancelled mid-sweep — cancelled counts.
func TestSSECancelledSweepStillTerminatesEveryCell(t *testing.T) {
	const cells = 50
	started := make(chan struct{}, cells)
	block := make(chan struct{})
	gated := func(id string, cfg harness.Config) (*result.Result, error) {
		started <- struct{}{}
		<-block
		return stubRunner(id, cfg)
	}
	s := newTestServer(t, Options{Runner: gated, Workers: 1, MaxTasks: cells, StepSample: -1, Heartbeat: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seeds := make([]uint64, cells)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	job, err := s.Submit(RunRequest{Experiments: []string{"table1/broadcast"}, Seeds: seeds, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // first task is in the runner; the rest are pending
	job.Cancel()
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if state := job.Wait(ctx); state != StatusCancelled {
		t.Fatalf("state %q, want cancelled", state)
	}

	terminal := map[int]int{}
	for _, f := range collectAll(t, ts.URL, job.View().ID, 0) {
		if TerminalEvent(f.event) {
			var ev Event
			json.Unmarshal([]byte(f.data), &ev)
			terminal[ev.Task]++
		}
	}
	if len(terminal) != cells {
		t.Fatalf("terminal events cover %d cells, want %d", len(terminal), cells)
	}
	for idx, n := range terminal {
		if n != 1 {
			t.Fatalf("task %d got %d terminal events, want 1", idx, n)
		}
	}
}
