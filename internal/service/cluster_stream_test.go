package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parbw/internal/cluster"
	"parbw/internal/fault"
	"parbw/internal/harness"
	"parbw/internal/result"
)

// Cluster streaming: execution partitioned across the ring by store-key
// ownership, with the origin's single event stream reporting every cell —
// terminal events exactly once (published origin-side from forward results),
// owner-side progress riding a lossy best-effort back-channel.

// spreadSeeds builds a seed list with `per` table1/broadcast quick-keys owned
// by each ring member, so a sweep provably exercises every node.
func spreadSeeds(t *testing.T, cl *cluster.Client, members []string, per int) []uint64 {
	t.Helper()
	var seeds []uint64
	var last uint64
	for _, m := range members {
		after := last
		for i := 0; i < per; i++ {
			s := seedOwnedBy(t, cl, m, after)
			seeds = append(seeds, s)
			after = s
			if s > last {
				last = s
			}
		}
	}
	return seeds
}

// A uniform grid on a healthy 3-node ring: ownership partitions the work
// (every node runs its share), and the origin's stream reports each cell's
// terminal event exactly once, naming the node that ran it.
func TestClusterPartitionedExecutionStreamsAllCells(t *testing.T) {
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		so.StepSample = -1
		so.Heartbeat = -1
	})
	members := []string{"node-0", "node-1", "node-2"}
	seeds := spreadSeeds(t, nodes[0].client, members, 2)

	job, err := nodes[0].srv.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"}, Seeds: seeds, Quick: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("sweep state %q, want done", state)
	}

	// Every node ran its owned share — distribution, not just placement.
	for _, n := range nodes {
		if runs := n.srv.Stats().TasksRun; runs == 0 {
			t.Fatalf("%s ran no tasks; execution was not partitioned", n.name)
		}
	}

	// Admission recorded each task's owner; the stream's terminal events name
	// the node that ran each cell, exactly once per cell.
	ts := httptest.NewServer(nodes[0].srv.Handler())
	defer ts.Close()
	view := job.View()
	byTask := map[int][]Event{}
	job.WatchEvents(context.Background(), 0, func(ev Event) {
		if TerminalEvent(ev.Type) {
			byTask[ev.Task] = append(byTask[ev.Task], ev)
		}
	})
	if len(byTask) != len(seeds) {
		t.Fatalf("terminal events cover %d cells, want %d", len(byTask), len(seeds))
	}
	for idx, evs := range byTask {
		if len(evs) != 1 {
			t.Fatalf("task %d got %d terminal events, want 1", idx, len(evs))
		}
		ev := evs[0]
		owner := view.Tasks[idx].Owner
		if owner == "" {
			t.Fatalf("task %d has no recorded owner", idx)
		}
		if ev.Type != EventCompleted {
			t.Fatalf("task %d terminal = %q, want completed", idx, ev.Type)
		}
		if ev.Node != owner {
			t.Fatalf("task %d completed on %q, owner is %q", idx, ev.Node, owner)
		}
		if wantFwd := owner != "node-0"; ev.Forwarded != wantFwd {
			t.Fatalf("task %d forwarded=%v, owner %s", idx, ev.Forwarded, owner)
		}
	}
	// The owner shows up on the tasks resource too.
	var page taskPage
	if code := getJSON(t, ts, "/v1/runs/"+view.ID+"/tasks", &page); code != http.StatusOK {
		t.Fatalf("tasks page status %d", code)
	}
	for i, tv := range page.Tasks {
		if tv.Owner != view.Tasks[i].Owner {
			t.Fatalf("task %d owner %q over HTTP, %q internally", i, tv.Owner, view.Tasks[i].Owner)
		}
	}
}

// streamChaosCluster builds one 3-node cluster whose origin suffers the given
// deterministic peer faults, runs the fixed sweep, and returns the origin's
// raw replayed SSE bytes.
func streamChaosCluster(t *testing.T, seeds []uint64) (string, []*clusterNode) {
	t.Helper()
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTSend), Kind: fault.Error},
		fault.Rule{Point: peerPoint("node-2", fault.RTSend), Kind: fault.Error},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		so.Workers = 1 // deterministic task order → deterministic event order
		so.StepSample = -1
		so.Heartbeat = -1
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.BreakerThreshold = -1
		}
	})
	job, err := nodes[0].srv.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"}, Seeds: seeds, Quick: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("chaos sweep state %q, want done (degrade, never fail)", state)
	}

	ts := httptest.NewServer(nodes[0].srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/runs/" + job.View().ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), nodes
}

// Fixed-seed chaos: two independent clusters driven through the same seeded
// peer-failure plan produce byte-identical origin streams — events carry no
// wall-clock fields, ids are deterministic, heartbeats are off — and the
// stream shows degrade, never failure.
func TestClusterChaosStreamByteStable(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	a, nodesA := streamChaosCluster(t, seeds)
	b, _ := streamChaosCluster(t, seeds)
	if a != b {
		t.Fatalf("fixed-seed chaos streams diverge:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if !strings.Contains(a, "event: degraded\n") {
		t.Fatalf("chaos stream shows no degrade events:\n%s", a)
	}
	if strings.Contains(a, "event: failed\n") || strings.Contains(a, "event: cancelled\n") {
		t.Fatalf("chaos stream shows failure — peers down must degrade, never fail:\n%s", a)
	}
	if st := nodesA[0].srv.Stats(); st.ForwardDegraded == 0 {
		t.Fatalf("stats = %+v, want degraded forwards (else the chaos never bit)", st)
	}
}

// The event back-channel: while the origin's job has a live subscriber and
// step events are on, a forwarded task's owner posts progress (its started
// event plus sampled engine steps) back onto the origin's bus — best-effort,
// while terminal events still arrive exactly once from the forward result.
func TestClusterEventBackChannel(t *testing.T) {
	gate := make(chan struct{})
	nodes := newTestCluster(t, 2, func(i int, so *Options, co *cluster.Options) {
		so.StepSample = 1
		so.Heartbeat = -1
		if i == 0 {
			so.Workers = 1
			base := so.Runner
			if base == nil {
				base = DefaultRunner
			}
			so.Runner = func(id string, cfg harness.Config) (*result.Result, error) {
				<-gate // each local task waits for the test's go-ahead
				return base(id, cfg)
			}
		}
	})
	local1 := seedOwnedBy(t, nodes[0].client, "node-0", 0)
	remote := seedOwnedBy(t, nodes[0].client, "node-1", 0)
	local2 := seedOwnedBy(t, nodes[0].client, "node-0", local1)

	job, err := nodes[0].srv.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"},
		Seeds:       []uint64{local1, remote, local2}, // local, forwarded, local
		Quick:       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []Event
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		job.WatchEvents(ctx, 0, func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
	}()

	// The forward only requests progress events while someone is subscribed —
	// wait for the watcher's subscription before releasing the first task.
	for !job.Events().HasSubscribers() {
		if ctx.Err() != nil {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	gate <- struct{}{} // release task 0; task 1 then forwards with WantEvents
	sawOwnerProgress := func() (started, step bool) {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range events {
			if ev.Node != "node-1" {
				continue
			}
			switch ev.Type {
			case EventStarted:
				started = true
			case EventStep:
				step = true
			}
		}
		return
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if started, step := sawOwnerProgress(); started && step {
			break
		}
		if time.Now().After(deadline) {
			started, step := sawOwnerProgress()
			t.Fatalf("owner progress never arrived (started=%v step=%v); back-channel dead", started, step)
		}
		time.Sleep(5 * time.Millisecond)
	}

	gate <- struct{}{} // release task 2; the job can finish
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("state %q, want done", state)
	}
	<-watchDone

	// Terminal exactly-once survives the lossy back-channel: the owner's
	// events are progress only, the forwarded task's single terminal event is
	// origin-published with the owner's name.
	mu.Lock()
	defer mu.Unlock()
	terminal := map[int]int{}
	for _, ev := range events {
		if TerminalEvent(ev.Type) {
			terminal[ev.Task]++
		}
	}
	for idx := 0; idx < 3; idx++ {
		if terminal[idx] != 1 {
			t.Fatalf("task %d got %d terminal events, want 1 (%+v)", idx, terminal[idx], terminal)
		}
	}
	for _, ev := range events {
		if TerminalEvent(ev.Type) && ev.Task == 1 {
			if ev.Node != "node-1" || !ev.Forwarded {
				t.Fatalf("forwarded task terminal = %+v, want completed on node-1", ev)
			}
		}
	}
	// The owner's client counted the posts.
	snap := nodes[1].client.Snapshot()
	if ps := snap.Peers["node-0"]; ps.EventsPosted == 0 {
		t.Fatalf("node-1 peer stats = %+v, want progress events posted to node-0", ps)
	}
}
