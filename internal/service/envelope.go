package service

import (
	"errors"
	"fmt"

	"parbw/internal/harness"
)

// Stable error codes of the v1 envelope. The CLI's -json error output
// reuses them verbatim, so a client that parses one surface parses both.
const (
	CodeBadRequest        = "bad_request"
	CodeUnknownExperiment = "unknown_experiment"
	CodeUnknownParam      = "unknown_param"
	CodeNotFound          = "not_found"
	CodeUnavailable       = "unavailable"
	CodeNotReady          = "not_ready"
	CodeInternal          = "internal"
)

// ErrorBody is the inner object of the uniform error envelope.
type ErrorBody struct {
	Code        string   `json:"code"`
	Message     string   `json:"message"`
	RetryAfter  int      `json:"retry_after,omitempty"` // seconds; shedding only
	Suggestions []string `json:"suggestions,omitempty"`
}

// ErrorEnvelope is the {"error": {...}} wrapper every non-2xx HTTP
// response carries, and the shape `bandsim run -json` prints for unknown
// experiments and parameters.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// UnknownExperimentEnvelope builds the unknown_experiment envelope for a
// mistyped id, with the registry's did-you-mean suggestions. Both the HTTP
// submit path and the CLI build their response through here, which is what
// keeps the two surfaces' suggestion payloads identical.
func UnknownExperimentEnvelope(id string) ErrorEnvelope {
	return ErrorEnvelope{Error: ErrorBody{
		Code:        CodeUnknownExperiment,
		Message:     fmt.Sprintf("unknown experiment %q", id),
		Suggestions: harness.Suggest(id),
	}}
}

// ParamErrorEnvelope maps a parameter-resolution error to the envelope:
// unknown_param with suggestions for a harness.UnknownParamError, plain
// bad_request for anything else (an out-of-range value, a bad literal).
func ParamErrorEnvelope(err error) ErrorEnvelope {
	var unk *harness.UnknownParamError
	if errors.As(err, &unk) {
		return ErrorEnvelope{Error: ErrorBody{
			Code:        CodeUnknownParam,
			Message:     fmt.Sprintf("experiment %q has no parameter %q", unk.Experiment, unk.Name),
			Suggestions: unk.Suggestions,
		}}
	}
	return ErrorEnvelope{Error: ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
}
