package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parbw/internal/cluster"
	"parbw/internal/fault"
	"parbw/internal/harness"
	"parbw/internal/runstore"
)

// The cluster chaos suite: a 3-node in-process cluster is driven through
// seeded peer-failure plans — node down, slow peer, partitioned store, torn
// forwards, breaker trips — and must degrade to local compute instead of
// failing: every admitted sweep completes (possibly degraded, never failed),
// the results are byte-identical to a single-node run of the same seeds, and
// a post-chaos scrub of every node's store finds nothing torn. Fault
// decisions are pure in (chaosSeed, point, hit), so any failure here replays
// bit-identically.

// delegatingHandler breaks the construction cycle of an in-process cluster:
// every node needs its peers' URLs before its own Server exists, so the
// httptest listeners come up first around a handler swapped in later.
type delegatingHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (d *delegatingHandler) set(h http.Handler) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

func (d *delegatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	h := d.h
	d.mu.Unlock()
	if h == nil {
		http.Error(w, "node not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type clusterNode struct {
	name   string
	srv    *Server
	client *cluster.Client
}

// peerPoint names the injection point for one direction of traffic to one
// peer, e.g. "cluster.peer.node-1.send".
func peerPoint(peer, dir string) string {
	return "cluster.peer." + peer + "." + dir
}

// newTestCluster boots n in-process nodes that all share one membership
// list. mut tweaks each node's service and cluster options before
// construction — chaos tests use it to wrap per-peer transports in
// fault.InjectTransport.
func newTestCluster(t *testing.T, n int, mut func(node int, so *Options, co *cluster.Options)) []*clusterNode {
	t.Helper()
	delegates := make([]*delegatingHandler, n)
	urls := map[string]string{}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = nodeName(i)
		delegates[i] = &delegatingHandler{}
		ts := httptest.NewServer(delegates[i])
		t.Cleanup(ts.Close)
		urls[names[i]] = ts.URL
	}
	nodes := make([]*clusterNode, n)
	for i := 0; i < n; i++ {
		peers := make(map[string]string, n)
		for name, url := range urls {
			peers[name] = url // cluster.New ignores the self entry
		}
		co := cluster.Options{
			Self:    names[i],
			Peers:   peers,
			Retries: -1, // chaos tests opt into retries explicitly
			Backoff: time.Millisecond,
		}
		so := Options{Workers: 2, Backoff: time.Millisecond}
		if mut != nil {
			mut(i, &so, &co)
		}
		cl, err := cluster.New(co)
		if err != nil {
			t.Fatal(err)
		}
		so.Cluster = cl
		srv := newTestServer(t, so)
		delegates[i].set(srv.Handler())
		nodes[i] = &clusterNode{name: names[i], srv: srv, client: cl}
	}
	return nodes
}

func nodeName(i int) string {
	return "node-" + string(rune('0'+i))
}

// chaosSweep is the fixed workload every cluster chaos test runs: three
// experiments × two seeds, quick presets — six deterministic tasks whose
// keys spread across the ring.
func chaosSweep() RunRequest {
	return RunRequest{
		Experiments: []string{"table1/broadcast", "table1/parity", "sched/static"},
		Seeds:       []uint64{1, 2},
		Quick:       true,
	}
}

// runSweep submits req on node, requires it to finish done with every task
// done, and returns result bytes by key.
func runSweep(t *testing.T, s *Server, req RunRequest) map[string]string {
	t.Helper()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if state := waitState(t, job); state != StatusDone {
		t.Fatalf("sweep state %q, want done: %+v", state, job.View().Tasks)
	}
	out := map[string]string{}
	for _, tv := range job.View().Tasks {
		if tv.Status != StatusDone {
			t.Fatalf("task %s/%d status %q, want done (err %q)", tv.Experiment, tv.Seed, tv.Status, tv.Error)
		}
		if len(tv.Result) == 0 {
			t.Fatalf("task %s/%d finished without result bytes", tv.Experiment, tv.Seed)
		}
		out[tv.Key] = string(tv.Result)
	}
	return out
}

// singleNodeBaseline runs req on a fresh non-clustered server: the
// byte-identity oracle for every cluster run.
func singleNodeBaseline(t *testing.T, req RunRequest) map[string]string {
	t.Helper()
	return runSweep(t, newTestServer(t, Options{Workers: 2}), req)
}

func assertSameResults(t *testing.T, got, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result sets differ in size: %d vs %d keys", len(got), len(want))
	}
	for key, data := range want {
		if got[key] != data {
			t.Fatalf("key %s: cluster result bytes differ from single-node run", key[:8])
		}
	}
}

func assertAllStoresClean(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	for _, n := range nodes {
		rep, err := n.srv.Store().Scrub()
		if err != nil {
			t.Fatalf("%s: final scrub: %v", n.name, err)
		}
		if rep.Quarantined != 0 || rep.TmpSwept != 0 {
			t.Fatalf("%s: store not clean after chaos: %+v", n.name, rep)
		}
	}
}

// seedOwnedBy finds a seed whose table1/broadcast quick-run key lands on the
// given ring member, so tests can aim tasks at a specific peer without
// hard-coding hashes that would rot when the code version changes.
func seedOwnedBy(t *testing.T, cl *cluster.Client, owner string, after uint64) uint64 {
	t.Helper()
	e, ok := harness.ByID("table1/broadcast")
	if !ok {
		t.Fatal("table1/broadcast not registered")
	}
	vals, err := e.Resolve(map[string]string{"quick": "true"})
	if err != nil {
		t.Fatal(err)
	}
	canon := vals.Canonical()
	for seed := after + 1; seed < after+1000; seed++ {
		key := runstore.Key(runstore.KeySpec{
			Experiment: "table1/broadcast",
			Seed:       seed,
			Params:     canon,
			Version:    harness.CodeVersion,
		})
		if cl.Owner(key) == owner {
			return seed
		}
	}
	t.Fatalf("no seed in (%d, %d] owned by %s", after, after+1000, owner)
	return 0
}

// Healthy cluster: cache misses on peer-owned keys are forwarded, the
// owner's store holds the bytes, and the merged results are byte-identical
// to a single-node run of the same sweep. Placement is verified against the
// ring on every node (all nodes agree without coordination).
func TestClusterChaosForwardingMatchesSingleNode(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	req := chaosSweep()
	got := runSweep(t, nodes[0].srv, req)
	assertSameResults(t, got, singleNodeBaseline(t, req))

	// Counting discipline: the origin counted exactly the peer-owned keys as
	// forwards; local keys ran locally.
	wantForwards := 0
	for key := range got {
		owner := nodes[0].client.Owner(key)
		for _, n := range nodes[1:] {
			if n.client.Owner(key) != owner {
				t.Fatalf("ring disagreement on %s: %s vs %s", key[:8], owner, n.client.Owner(key))
			}
		}
		if owner != nodes[0].name {
			wantForwards++
			// The owner's store is now authoritative for the key.
			idx := int(owner[len(owner)-1] - '0')
			if _, ok, err := nodes[idx].srv.Store().GetBytes(key); err != nil || !ok {
				t.Fatalf("owner %s does not hold forwarded key %s (ok=%v err=%v)", owner, key[:8], ok, err)
			}
		}
	}
	st := nodes[0].srv.Stats()
	if st.TasksForwarded != uint64(wantForwards) || st.ForwardDegraded != 0 {
		t.Fatalf("origin stats = %+v, want %d forwards and 0 degrades", st, wantForwards)
	}
	if wantForwards == 0 {
		t.Fatal("every key landed on the origin node; forwarding untested (ring imbalance?)")
	}
	// A re-run of the same sweep is served from caches: local hits locally,
	// peer-owned keys as remote hits.
	rerun := runSweep(t, nodes[0].srv, req)
	assertSameResults(t, rerun, got)
	snap := nodes[0].client.Snapshot()
	remoteHits := uint64(0)
	for _, ps := range snap.Peers {
		remoteHits += ps.RemoteHits
	}
	if remoteHits != uint64(wantForwards) {
		t.Fatalf("remote cache hits = %d, want %d", remoteHits, wantForwards)
	}
	assertAllStoresClean(t, nodes)
}

// Both peers down (connections refused at the transport): every forward
// fails fast, every peer-owned task degrades to local compute, nothing
// fails, and the bytes still match the single-node oracle.
func TestClusterChaosNodeDownDegradesToLocal(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTSend), Kind: fault.Error},
		fault.Rule{Point: peerPoint("node-2", fault.RTSend), Kind: fault.Error},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.BreakerThreshold = -1 // isolate the degrade path from the breaker
		}
	})
	req := chaosSweep()
	got := runSweep(t, nodes[0].srv, req)
	assertSameResults(t, got, singleNodeBaseline(t, req))

	degraded := 0
	for key := range got {
		if nodes[0].client.Owner(key) != nodes[0].name {
			degraded++
			// Degrade-to-local stores locally, so the origin can serve the
			// key next time without the dead peer.
			if _, ok, err := nodes[0].srv.Store().GetBytes(key); err != nil || !ok {
				t.Fatalf("degraded key %s not in origin store (ok=%v err=%v)", key[:8], ok, err)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("every key landed on the origin node; degrade path untested")
	}
	st := nodes[0].srv.Stats()
	if st.ForwardDegraded != uint64(degraded) || st.TasksForwarded != 0 {
		t.Fatalf("stats = %+v, want %d forward degrades and 0 forwards", st, degraded)
	}
	// The degraded tasks are marked, never failed.
	views := nodes[0].srv.Jobs()
	for _, tv := range views[len(views)-1].Tasks {
		owned := nodes[0].client.Owner(tv.Key) == nodes[0].name
		if !owned && !tv.Degraded {
			t.Fatalf("peer-owned task %s/%d completed undegraded with both peers down", tv.Experiment, tv.Seed)
		}
		if tv.Forwarded {
			t.Fatalf("task %s/%d claims a forward while peers are down", tv.Experiment, tv.Seed)
		}
	}
	assertAllStoresClean(t, nodes)
}

// A peer that accepts connections but stalls for a minute: the per-attempt
// deadline bounds each forward, the sweep finishes promptly (degraded), and
// the stalled node's own serving is untouched.
func TestClusterChaosSlowPeerBoundedByAttemptDeadline(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTSend), Kind: fault.Slow, Delay: time.Minute},
		fault.Rule{Point: peerPoint("node-2", fault.RTSend), Kind: fault.Slow, Delay: time.Minute},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.AttemptTimeout = 50 * time.Millisecond
			co.BreakerThreshold = -1
		}
	})
	req := chaosSweep()
	start := time.Now()
	got := runSweep(t, nodes[0].srv, req)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("sweep took %v; the attempt deadline did not cut the stalled forwards short", elapsed)
	}
	assertSameResults(t, got, singleNodeBaseline(t, req))
	if st := nodes[0].srv.Stats(); st.ForwardDegraded == 0 {
		t.Fatalf("stats = %+v, want stalled forwards degraded to local", st)
	}
	assertAllStoresClean(t, nodes)
}

// Partition after the work: the peer runs the task and stores the result,
// but the response is lost on the way back. The origin degrades to local
// compute — and because the experiments are deterministic, both nodes' stores
// now hold byte-identical entries under the same key.
func TestClusterChaosPartitionAfterWorkStaysConsistent(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTRecv), Kind: fault.Error},
		fault.Rule{Point: peerPoint("node-2", fault.RTRecv), Kind: fault.Error},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.BreakerThreshold = -1
		}
	})
	req := chaosSweep()
	got := runSweep(t, nodes[0].srv, req)
	assertSameResults(t, got, singleNodeBaseline(t, req))

	checked := 0
	for key := range got {
		owner := nodes[0].client.Owner(key)
		if owner == nodes[0].name {
			continue
		}
		checked++
		idx := int(owner[len(owner)-1] - '0')
		remote, ok, err := nodes[idx].srv.Store().GetBytes(key)
		if err != nil || !ok {
			t.Fatalf("partitioned owner %s never stored %s (ok=%v err=%v): response was lost, work must not be", owner, key[:8], ok, err)
		}
		local, ok, err := nodes[0].srv.Store().GetBytes(key)
		if err != nil || !ok {
			t.Fatalf("origin missing degraded key %s (ok=%v err=%v)", key[:8], ok, err)
		}
		if string(remote) != string(local) {
			t.Fatalf("key %s: partitioned replicas diverge", key[:8])
		}
	}
	if checked == 0 {
		t.Fatal("every key landed on the origin node; partition path untested")
	}
	assertAllStoresClean(t, nodes)
}

// Torn forward: the response body arrives truncated. The CRC check catches
// it, a retry fetches clean bytes, and the task still reports a successful
// forward — integrity failures are retried like any other peer failure.
func TestClusterChaosTornForwardCaughtByCRCAndRetried(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTRecv), Kind: fault.PartialWrite, Count: 1},
		fault.Rule{Point: peerPoint("node-2", fault.RTRecv), Kind: fault.PartialWrite, Count: 1},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.Retries = 2
		}
	})
	req := chaosSweep()
	got := runSweep(t, nodes[0].srv, req)
	assertSameResults(t, got, singleNodeBaseline(t, req))

	st := nodes[0].srv.Stats()
	if st.ForwardDegraded != 0 {
		t.Fatalf("stats = %+v: torn forwards must be retried, not degraded", st)
	}
	snap := nodes[0].client.Snapshot()
	retries, failures := uint64(0), uint64(0)
	for _, ps := range snap.Peers {
		retries += ps.Retries
		failures += ps.Failures
	}
	if failures == 0 || retries == 0 {
		t.Fatalf("cluster snapshot %+v: expected torn first attempts and retried forwards", snap.Peers)
	}
	assertAllStoresClean(t, nodes)
}

// Breaker lifecycle across the wire: repeated failures against one peer open
// its breaker (observable on /v1/cluster/ring and /v1/statsz), an open
// breaker short-circuits forwards to local compute, and after the cooldown a
// healthy probe closes it again — the ring heals and traffic re-routes.
func TestClusterChaosBreakerOpensThenRingHeals(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTSend), Kind: fault.Error, Count: 2},
	)
	// Long enough that the breaker cannot slip into half-open between the
	// tripping sweep and the open-breaker assertion below.
	const cooldown = 2 * time.Second
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		so.Workers = 1 // deterministic forward order
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
			}
			co.BreakerThreshold = 2
			co.BreakerCooldown = cooldown
		}
	})

	s1 := seedOwnedBy(t, nodes[0].client, "node-1", 0)
	s2 := seedOwnedBy(t, nodes[0].client, "node-1", s1)
	s3 := seedOwnedBy(t, nodes[0].client, "node-1", s2)

	// Two failing forwards trip the threshold; both tasks degrade to local.
	runSweep(t, nodes[0].srv, RunRequest{
		Experiments: []string{"table1/broadcast"}, Seeds: []uint64{s1, s2}, Quick: true,
	})
	snap := nodes[0].client.Snapshot()
	if ps := snap.Peers["node-1"]; ps.State != "open" || ps.BreakerOpens != 1 || ps.Degraded != 2 {
		t.Fatalf("after 2 failures, node-1 stats = %+v, want open breaker", ps)
	}
	if st := nodes[0].srv.Stats(); st.ForwardDegraded != 2 {
		t.Fatalf("stats = %+v, want 2 forward degrades", st)
	}

	// While open: a third task is refused without touching the wire (the
	// fault rule is exhausted, so a wire attempt would have succeeded).
	runSweep(t, nodes[0].srv, RunRequest{
		Experiments: []string{"table1/broadcast"}, Seeds: []uint64{s3}, Quick: true,
	})
	snap = nodes[0].client.Snapshot()
	if ps := snap.Peers["node-1"]; ps.Forwards != 0 || ps.Degraded != 3 {
		t.Fatalf("open-breaker stats = %+v, want refusal without forwards", ps)
	}

	// After the cooldown the probe goes through, the breaker closes, and the
	// same key now forwards: node-1 serves it from the store it never got to
	// populate — so it runs it, and the ring is healed.
	time.Sleep(cooldown + 200*time.Millisecond)
	s4 := seedOwnedBy(t, nodes[0].client, "node-1", s3)
	runSweep(t, nodes[0].srv, RunRequest{
		Experiments: []string{"table1/broadcast"}, Seeds: []uint64{s4}, Quick: true,
	})
	snap = nodes[0].client.Snapshot()
	if ps := snap.Peers["node-1"]; ps.State != "closed" || ps.Forwards != 1 {
		t.Fatalf("post-heal stats = %+v, want closed breaker and 1 forward", ps)
	}
	assertAllStoresClean(t, nodes)
}

// Mixed probabilistic chaos on every peer link, plus the observability
// surface: sweeps keep completing with byte-identical results, and the
// cluster's state is visible on /v1/statsz, /v1/readyz, and
// /v1/cluster/ring.
func TestClusterChaosMixedFaultsAndObservability(t *testing.T) {
	plan := fault.NewPlan(chaosSeed,
		fault.Rule{Point: peerPoint("node-1", fault.RTSend), Kind: fault.Error, Prob: 0.3},
		fault.Rule{Point: peerPoint("node-1", fault.RTRecv), Kind: fault.PartialWrite, Prob: 0.3},
		fault.Rule{Point: peerPoint("node-2", fault.RTSend), Kind: fault.Slow, Prob: 0.3, Delay: time.Minute},
		fault.Rule{Point: peerPoint("node-2", fault.RTRecv), Kind: fault.Error, Prob: 0.3},
	)
	nodes := newTestCluster(t, 3, func(i int, so *Options, co *cluster.Options) {
		if i == 0 {
			co.PeerTransports = map[string]http.RoundTripper{
				"node-1": fault.InjectTransport(nil, plan, peerPoint("node-1", "")),
				"node-2": fault.InjectTransport(nil, plan, peerPoint("node-2", "")),
			}
			co.AttemptTimeout = 50 * time.Millisecond
			co.Retries = 1
			co.BreakerThreshold = 3
			co.BreakerCooldown = 50 * time.Millisecond
		}
	})
	req := chaosSweep()
	baseline := singleNodeBaseline(t, req)
	for round := 0; round < 3; round++ {
		assertSameResults(t, runSweep(t, nodes[0].srv, req), baseline)
	}

	// Observability: statsz carries the cluster section…
	origin := httptest.NewServer(nodes[0].srv.Handler())
	defer origin.Close()
	var stats struct {
		Cluster *cluster.Stats `json:"cluster"`
	}
	if code := getJSON(t, origin, "/v1/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	if stats.Cluster == nil || stats.Cluster.Self != "node-0" || len(stats.Cluster.Members) != 3 {
		t.Fatalf("statsz cluster section = %+v", stats.Cluster)
	}
	if len(stats.Cluster.Peers) != 2 {
		t.Fatalf("statsz peers = %+v, want node-1 and node-2", stats.Cluster.Peers)
	}
	// …the ring endpoint serves the same snapshot…
	var ring cluster.Stats
	if code := getJSON(t, origin, "/v1/cluster/ring", &ring); code != http.StatusOK {
		t.Fatalf("cluster/ring status %d", code)
	}
	if len(ring.Members) != 3 || ring.Self != "node-0" {
		t.Fatalf("ring = %+v", ring)
	}
	// …and readyz reports per-peer reachability without failing readiness.
	var ready struct {
		Status string            `json:"status"`
		Peers  map[string]string `json:"peers"`
	}
	if code := getJSON(t, origin, "/v1/readyz", &ready); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if ready.Status != "ready" || len(ready.Peers) != 2 {
		t.Fatalf("readyz = %+v, want ready with 2 peer probes", ready)
	}

	// On a node without cluster mode the peer endpoints answer 404.
	solo := httptest.NewServer(newTestServer(t, Options{}).Handler())
	defer solo.Close()
	resp, err := http.Post(solo.URL+cluster.ForwardPath, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-node cluster/run status %d, want 404", resp.StatusCode)
	}
	assertAllStoresClean(t, nodes)
}

// Version-skew guard: an owner whose key derivation disagrees with the
// caller's refuses the forward with 400 instead of storing under a key it
// cannot reproduce.
func TestClusterForwardRefusesKeyMismatch(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	ts := httptest.NewServer(nodes[1].srv.Handler())
	defer ts.Close()

	body := `{"experiment":"table1/broadcast","seed":1,"params":{"quick":"true"},` +
		`"key":"00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"}`
	resp, err := http.Post(ts.URL+cluster.ForwardPath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched key status %d, want 400", resp.StatusCode)
	}
}
