package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parbw/internal/harness"
	"parbw/internal/runstore"
)

func waitDone(t *testing.T, job *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if state := job.Wait(ctx); state != StatusDone {
		t.Fatalf("job state %q, want done", state)
	}
}

// GET /v1/experiments exposes each experiment's declared parameter schema:
// names, kinds, canonical defaults, bounds, and docs.
func TestExperimentsEndpointListsSchemas(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	if code := getJSON(t, ts, "/v1/experiments", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, e := range out.Experiments {
		if len(e.Params) == 0 {
			t.Fatalf("%s: no parameter schema in listing", e.ID)
		}
		if e.Params[0].Name != "quick" || e.Params[0].Kind != "bool" || e.Params[0].Default != "false" {
			t.Fatalf("%s: schema does not lead with the built-in quick bool: %+v", e.ID, e.Params[0])
		}
		if e.ID != "table1/broadcast" {
			continue
		}
		byName := map[string]paramInfo{}
		for _, p := range e.Params {
			byName[p.Name] = p
		}
		g, ok := byName["g"]
		if !ok || g.Kind != "int" || g.Default != "8" {
			t.Fatalf("table1/broadcast g schema = %+v", g)
		}
		if g.Min == nil || *g.Min != 1 || g.Max == nil {
			t.Fatalf("table1/broadcast g bounds = %+v", g)
		}
		p := byName["p"]
		if !strings.HasPrefix(p.Doc, "0 = ") {
			t.Fatalf("table1/broadcast p doc %q does not document the sentinel", p.Doc)
		}
	}
}

// A grid sweep — two param axes × two seeds — fans out into one task per
// cell, each independently keyed on its resolved params and independently
// cached: resubmitting the identical grid is served entirely from the store.
func TestGridSweepPerCellKeysAndCaching(t *testing.T) {
	s := newTestServer(t, Options{})

	req := RunRequest{
		Experiments: []string{"table1/broadcast"},
		Seeds:       []uint64{1, 2},
		Params: map[string]any{
			"p": []any{float64(32), float64(64)},
			"g": []any{float64(4), float64(8)},
		},
	}
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	view := job.View()
	if len(view.Tasks) != 8 {
		t.Fatalf("%d tasks, want 2 p × 2 g × 2 seeds = 8", len(view.Tasks))
	}
	keys := map[string]bool{}
	cells := map[string]bool{}
	for _, task := range view.Tasks {
		if task.Cached {
			t.Fatalf("first submission served from cache: %+v", task)
		}
		if keys[task.Key] {
			t.Fatalf("duplicate task key %s", task.Key)
		}
		keys[task.Key] = true
		got := map[string]string{}
		for _, p := range task.Params {
			got[p.Name] = p.Value
		}
		cells[got["p"]+"/"+got["g"]] = true
		// The task is self-describing: its key must be reproducible from its
		// own experiment/seed/params fields.
		e, _ := harness.ByID(task.Experiment)
		vals, err := e.Resolve(got)
		if err != nil {
			t.Fatal(err)
		}
		want := runstore.Key(runstore.KeySpec{
			Experiment: task.Experiment, Seed: task.Seed,
			Params: vals.Canonical(), Version: harness.CodeVersion,
		})
		if task.Key != want {
			t.Fatalf("task key %s not derivable from its params (want %s)", task.Key, want)
		}
	}
	for _, cell := range []string{"32/4", "32/8", "64/4", "64/8"} {
		if !cells[cell] {
			t.Fatalf("grid cell p/g=%s missing; have %v", cell, cells)
		}
	}

	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again)
	for _, task := range again.View().Tasks {
		if !task.Cached {
			t.Fatalf("resubmitted cell not served from store: %+v", task)
		}
	}
	if st := s.Stats(); st.TasksCached != 8 {
		t.Fatalf("stats = %+v, want 8 cached tasks", st)
	}
}

// The legacy quick boolean is sugar for the quick preset: it lands in every
// task's params and produces the same cache key as the explicit form, and an
// explicit "quick" entry wins over it.
func TestQuickLegacySugar(t *testing.T) {
	s := newTestServer(t, Options{})
	legacy, err := s.Submit(RunRequest{Experiments: []string{"table1/parity"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := s.Submit(RunRequest{
		Experiments: []string{"table1/parity"},
		Params:      map[string]any{"quick": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, legacy)
	waitDone(t, explicit)
	lk, ek := legacy.View().Tasks[0].Key, explicit.View().Tasks[0].Key
	if lk != ek {
		t.Fatalf("legacy quick key %s != explicit params key %s", lk, ek)
	}

	overridden, err := s.Submit(RunRequest{
		Experiments: []string{"table1/parity"},
		Quick:       true,
		Params:      map[string]any{"quick": false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if overridden.View().Tasks[0].Key == lk {
		t.Fatal("explicit quick=false did not win over the legacy flag")
	}
	overridden.Cancel()
}

// A mistyped parameter name is rejected before anything runs, and the HTTP
// envelope carries the stable unknown_param code plus did-you-mean
// suggestions from the experiment's declared schema.
func TestUnknownParamEnvelope(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postRuns(t, ts,
		`{"experiments":["sched/static"],"params":{"epz":0.5}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", code, body)
	}
	var env struct {
		Error struct {
			Code        string   `json:"code"`
			Message     string   `json:"message"`
			Suggestions []string `json:"suggestions"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", body, err)
	}
	if env.Error.Code != CodeUnknownParam {
		t.Fatalf("code %q, want %q (body %s)", env.Error.Code, CodeUnknownParam, body)
	}
	if len(env.Error.Suggestions) == 0 || env.Error.Suggestions[0] != "eps" {
		t.Fatalf("suggestions = %v, want [eps ...]", env.Error.Suggestions)
	}
}

// Malformed parameter values — unparseable, out of range, or structurally
// unsupported — reject the whole request with a validation error.
func TestParamValueValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := map[string]RunRequest{
		"bad-value": {Experiments: []string{"table1/broadcast"},
			Params: map[string]any{"p": "lots"}},
		"out-of-range": {Experiments: []string{"table1/broadcast"},
			Params: map[string]any{"g": float64(-3)}},
		"nested-array": {Experiments: []string{"table1/broadcast"},
			Params: map[string]any{"p": []any{[]any{float64(1)}}}},
		"empty-sweep": {Experiments: []string{"table1/broadcast"},
			Params: map[string]any{"p": []any{}}},
	}
	for name, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	// A param grid counts against MaxTasks like seeds do.
	tiny := newTestServer(t, Options{MaxTasks: 3})
	_, err := tiny.Submit(RunRequest{
		Experiments: []string{"table1/broadcast"},
		Params:      map[string]any{"p": []any{float64(32), float64(64)}},
		Seeds:       []uint64{1, 2},
	})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("grid not counted against the task cap: %v", err)
	}
}
