package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parbw/internal/engine"
	"parbw/internal/harness"
	"parbw/internal/runstore"
)

// API is the HTTP surface of the run service, served by `bandsim serve`:
//
//	GET  /experiments   registry listing (id, title, source)
//	POST /runs          submit a sweep; waits for completion unless "wait": false
//	GET  /runs          snapshots of every retained job
//	GET  /runs/{id}     a job by id ("job-000001"), or — when {id} is a
//	                    64-hex run-store key — the stored canonical result JSON
//	DELETE /runs/{id}   cancel a job
//	GET  /healthz       liveness
//	GET  /statsz        run-store hit/miss counters + executor counters +
//	                    aggregate engine counters (supersteps simulated,
//	                    traffic units routed, max slot load, overloads)
//
// All responses are JSON. A stored result served by key is returned byte-
// for-byte as stored, so repeated fetches are binary-identical.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /runs", s.handleCreateRun)
	mux.HandleFunc("GET /runs", s.handleListRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type apiError struct {
	Error       string   `json:"error"`
	Suggestions []string `json:"suggestions,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

type experimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Source string `json:"source"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := harness.All()
	out := make([]experimentInfo, len(all))
	for i, e := range all {
		out[i] = experimentInfo{ID: e.ID, Title: e.Title, Source: e.Source}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var unknown *UnknownExperimentError
		switch {
		case errors.As(err, &unknown):
			writeJSON(w, http.StatusBadRequest, apiError{
				Error:       fmt.Sprintf("unknown experiment %q", unknown.ID),
				Suggestions: unknown.Suggestions,
			})
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if req.Wait != nil && !*req.Wait {
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	if state := job.Wait(r.Context()); state == "" {
		// Client went away; the job keeps running and stays fetchable.
		writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if runstore.ValidKey(id) {
		data, ok, err := s.opts.Store.GetBytes(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "no stored run with key %s", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsView struct {
	Store    runstore.Stats  `json:"store"`
	Executor Stats           `json:"executor"`
	Engine   engine.Counters `json:"engine"`
	Time     time.Time       `json:"time"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsView{
		Store:    s.opts.Store.Stats(),
		Executor: s.Stats(),
		Engine:   engine.GlobalCounters(),
		Time:     time.Now().UTC(),
	})
}
