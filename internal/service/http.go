package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"parbw/internal/cluster"
	"parbw/internal/engine"
	"parbw/internal/harness"
	"parbw/internal/runstore"
)

// API is the HTTP surface of the run service, served by `bandsim serve`.
// The v1 surface lives under /v1/; the original unversioned paths remain as
// deprecated aliases with identical behavior (each logs a deprecation
// notice once per process and answers with a Deprecation header).
//
//	GET  /v1/experiments   registry listing (id, title, source, params schema)
//	POST /v1/runs          submit a sweep; waits for completion unless "wait": false.
//	                       "params" fixes parameters (scalars) and declares sweep
//	                       axes (arrays); the job is the cross product
//	                       experiments × param grid × seeds, one cached task per cell.
//	                       Responses are job summaries (counts by task state) —
//	                       tasks page through /tasks, result bytes live in /v1/results
//	GET  /v1/runs          job summary listing; supports ?limit= and ?cursor=
//	                       pagination plus ?experiment= filtering (see handleListRuns)
//	GET  /v1/runs/{id}     one job summary by id ("job-000001")
//	GET  /v1/runs/{id}/tasks
//	                       the job's tasks — state, resolved params, result key,
//	                       owner node — paginated with ?limit= and ?cursor=
//	GET  /v1/runs/{id}/events
//	                       live Server-Sent Events stream of the job (stream.go):
//	                       task lifecycle + sampled engine steps, Last-Event-ID
//	                       resume, heartbeat comments
//	DELETE /v1/runs/{id}   cancel a job
//	GET  /v1/results/{key} the stored canonical result JSON, byte-for-byte
//	DELETE /v1/results/{key}
//	                       delete a stored result
//	GET  /v1/healthz       liveness; add ?ready=1 for the readiness check
//	GET  /v1/readyz        readiness: store writability + dispatcher liveness;
//	                       in cluster mode the body also carries advisory
//	                       per-peer reachability (an unreachable peer does not
//	                       fail readiness — forwards to it degrade to local)
//	GET  /v1/statsz        run-store hit/miss/quarantine counters + executor
//	                       counters (shed/degraded/breaker) + aggregate engine
//	                       counters (supersteps simulated, traffic units routed,
//	                       max slot load, overloads) + in cluster mode the ring
//	                       membership and per-peer forward/breaker counters
//
// Cluster mode adds two peer-facing endpoints (v1-only, no unversioned
// aliases; both answer 404 on a single-node server):
//
//	POST /v1/cluster/run   run (or cache-serve) one forwarded task and answer
//	                       its canonical result bytes with an X-Parbw-Crc32
//	                       integrity header (see internal/cluster)
//	GET  /v1/cluster/ring  ring membership + per-peer forwarding health
//
// Every non-2xx response carries the uniform error envelope
//
//	{"error": {"code": "...", "message": "...", "retry_after": N?, "suggestions": [...]?}}
//
// where code is a stable machine-readable token (bad_request,
// unknown_experiment, unknown_param, not_found, unavailable, not_ready,
// internal), suggestions carries did-you-mean candidates on the unknown_*
// codes, and
// retry_after (seconds, mirrored in the Retry-After header) appears only on
// shedding responses. 400 means the request itself is malformed — do not
// retry unchanged. 503 means the service is shedding load (queue full) or
// draining for shutdown — retry after the hinted delay. A stored result
// served by key is returned byte-for-byte as stored, so repeated fetches
// are binary-identical.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"GET", "/experiments", s.handleExperiments},
		{"POST", "/runs", s.handleCreateRun},
		{"GET", "/runs", s.handleListRuns},
		{"GET", "/runs/{id}", s.handleGetRun},
		{"DELETE", "/runs/{id}", s.handleCancelRun},
		{"GET", "/healthz", s.handleHealthz},
		{"GET", "/readyz", s.handleReadyz},
		{"GET", "/statsz", s.handleStatsz},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.path, rt.h)
		if !s.opts.NoUnversionedAliases {
			mux.HandleFunc(rt.method+" "+rt.path, deprecatedAlias(rt.method, rt.path, rt.h))
		}
	}
	// Resources new in v1 — the jobs/results split, task pagination, and the
	// live event stream — never get unversioned aliases.
	mux.HandleFunc("GET /v1/runs/{id}/tasks", s.handleRunTasks)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("DELETE /v1/results/{key}", s.handleDeleteResult)
	// Cluster endpoints are new in v1 and peer-facing; they get no
	// unversioned aliases. ForwardPath/EventPath are the constants the
	// forwarding client uses, so the two sides cannot drift apart.
	mux.HandleFunc("POST "+cluster.ForwardPath, s.handleClusterRun)
	mux.HandleFunc("POST "+cluster.EventPath, s.handleClusterEvents)
	mux.HandleFunc("GET /v1/cluster/ring", s.handleClusterRing)
	return mux
}

// sunsetDate is the RFC 8594 Sunset announced on every deprecated surface:
// the date after which the unversioned aliases and the key-on-runs paths may
// be removed.
const sunsetDate = "Fri, 01 Jan 2027 00:00:00 GMT"

// deprecatedAlias keeps an unversioned path answering exactly like its /v1
// twin while logging a deprecation notice the first time it is hit and
// marking every response with Deprecation (RFC 9745) and Sunset (RFC 8594)
// headers.
func deprecatedAlias(method, path string, h http.HandlerFunc) http.HandlerFunc {
	var once sync.Once
	return func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() {
			log.Printf("service: deprecated unversioned path %s %s — use %s /v1%s", method, path, method, path)
		})
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", sunsetDate)
		h(w, r)
	}
}

// markKeyOnRunsDeprecated flags a response served through the legacy
// key-on-runs overload (/v1/runs/{key} for a stored result) — same
// once-logging and headers as the unversioned aliases. The replacement is
// /v1/results/{key}.
var keyOnRunsOnce sync.Once

func markKeyOnRunsDeprecated(w http.ResponseWriter, method string) {
	keyOnRunsOnce.Do(func() {
		log.Printf("service: deprecated key-on-runs path %s /v1/runs/{key} — use %s /v1/results/{key}", method, method)
	})
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Sunset", sunsetDate)
}

// writeJSON encodes v to w. Encode errors (a client that hung up mid-body,
// an unencodable value) cannot be reported to the client — the status line
// is already gone — so they are logged and counted on /statsz instead of
// being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("service: encode response: %v", err)
		s.mu.Lock()
		s.stats.EncodeErrors++
		s.mu.Unlock()
	}
}

// The stable error codes and the ErrorBody/ErrorEnvelope types live in
// envelope.go; they are exported because the bandsim CLI's -json error
// output shares them.

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeUnavailable sheds a request: 503 plus a Retry-After hint, in both
// the header and the envelope.
func (s *Server) writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorEnvelope{Error: ErrorBody{
		Code:       CodeUnavailable,
		Message:    fmt.Sprintf(format, args...),
		RetryAfter: secs,
	}})
}

type experimentInfo struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Source string      `json:"source"`
	Params []paramInfo `json:"params"`
}

// paramInfo is the JSON shape of one declared parameter. Min and Max are
// omitted when the parameter is unbounded on that side.
type paramInfo struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "int", "float", "bool"
	Default string   `json:"default"`
	Min     *float64 `json:"min,omitempty"`
	Max     *float64 `json:"max,omitempty"`
	Doc     string   `json:"doc,omitempty"`
}

func paramSchema(specs []harness.ParamSpec) []paramInfo {
	out := make([]paramInfo, len(specs))
	for i, p := range specs {
		info := paramInfo{Name: p.Name, Kind: p.Kind.String(), Default: p.Default, Doc: p.Doc}
		if !math.IsInf(p.Min, -1) {
			v := p.Min
			info.Min = &v
		}
		if !math.IsInf(p.Max, 1) {
			v := p.Max
			info.Max = &v
		}
		out[i] = info
	}
	return out
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := harness.All()
	out := make([]experimentInfo, len(all))
	for i, e := range all {
		out[i] = experimentInfo{ID: e.ID, Title: e.Title, Source: e.Source, Params: paramSchema(e.Params)}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var unknown *UnknownExperimentError
		var unkParam *harness.UnknownParamError
		var full *QueueFullError
		switch {
		case errors.As(err, &unknown):
			// Built by the same constructor the CLI's -json path uses, so
			// the two surfaces cannot drift apart.
			s.writeJSON(w, http.StatusBadRequest, UnknownExperimentEnvelope(unknown.ID))
		case errors.As(err, &unkParam):
			s.writeJSON(w, http.StatusBadRequest, ParamErrorEnvelope(err))
		case errors.As(err, &full):
			// Load shedding is not a client error: 503 + Retry-After.
			s.writeUnavailable(w, full.RetryAfter, "%v", err)
		case errors.Is(err, ErrDraining):
			s.writeUnavailable(w, s.retryAfterNow(), "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	if req.Wait != nil && !*req.Wait {
		s.writeJSON(w, http.StatusAccepted, job.Summary())
		return
	}
	if state := job.Wait(r.Context()); state == "" {
		// Client went away; the job keeps running and stays fetchable.
		s.writeJSON(w, http.StatusAccepted, job.Summary())
		return
	}
	s.writeJSON(w, http.StatusOK, job.Summary())
}

// maxListLimit caps one page of GET /v1/runs.
const maxListLimit = 500

// runList is the response of GET /v1/runs. NextCursor is present only when
// a limit was given and more jobs remain; passing it back as ?cursor=
// resumes the listing after the last job of this page.
type runList struct {
	Jobs       []JobSummary `json:"jobs"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// handleListRuns lists retained jobs, oldest first. Query parameters:
//
//	limit=N         return at most N jobs (1..500) and a next_cursor when
//	                more remain; omitted = the whole listing (legacy shape)
//	cursor=ID       resume after job ID (as returned in next_cursor)
//	experiment=EID  only jobs with at least one task running experiment EID
//
// An unparseable limit or a cursor naming no retained job is a 400; a
// cursor is position-stable because job ids are monotone and the listing is
// oldest-first, so a pruned cursor job cannot silently skip survivors.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer, got %q", raw)
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	jobs := s.Summaries()

	if cursor := q.Get("cursor"); cursor != "" {
		start := -1
		for i, v := range jobs {
			if v.ID == cursor {
				start = i + 1
				break
			}
		}
		if start < 0 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "unknown cursor %q", cursor)
			return
		}
		jobs = jobs[start:]
	}

	if exp := q.Get("experiment"); exp != "" {
		kept := jobs[:0:len(jobs)]
		for _, v := range jobs {
			for _, e := range v.Experiments {
				if e == exp {
					kept = append(kept, v)
					break
				}
			}
		}
		jobs = kept
	}

	out := runList{Jobs: jobs}
	if limit > 0 && len(jobs) > limit {
		out.Jobs = jobs[:limit]
		out.NextCursor = jobs[limit-1].ID
	}
	if out.Jobs == nil {
		out.Jobs = []JobSummary{} // an empty page is [], not null
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if runstore.ValidKey(id) {
		// Legacy overload: a stored result fetched through the runs
		// resource. Still answered, marked deprecated; /v1/results/{key} is
		// the home of stored bytes since the resource split.
		markKeyOnRunsDeprecated(w, "GET")
		s.serveStoredResult(w, id)
		return
	}
	job, ok := s.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, job.Summary())
}

// serveStoredResult answers a stored result's canonical bytes, byte-for-byte.
func (s *Server) serveStoredResult(w http.ResponseWriter, key string) {
	data, ok, err := s.opts.Store.GetBytes(key)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no stored run with key %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// deleteStoredResult deletes a stored result by key. It reads before
// deleting so that a corrupt entry is quarantined and answered as a 404 miss
// (the delete of a just-quarantined key is then a harmless no-op) instead of
// surfacing a 500 for a result the client could never have fetched anyway.
func (s *Server) deleteStoredResult(w http.ResponseWriter, key string) {
	_, ok, err := s.opts.Store.GetBytes(key)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no stored run with key %s", key)
		return
	}
	if err := s.opts.Store.Delete(key); err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"deleted": key})
}

// handleGetResult serves GET /v1/results/{key}: the stored canonical result
// JSON, exactly as stored.
func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !runstore.ValidKey(key) {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "%q is not a run-store key (64 hex chars)", key)
		return
	}
	s.serveStoredResult(w, key)
}

// handleDeleteResult serves DELETE /v1/results/{key}.
func (s *Server) handleDeleteResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !runstore.ValidKey(key) {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, "%q is not a run-store key (64 hex chars)", key)
		return
	}
	s.deleteStoredResult(w, key)
}

// handleCancelRun cancels a job by id. The legacy overload — DELETE with a
// run-store key — still deletes the stored result, marked deprecated in
// favor of DELETE /v1/results/{key}.
func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if runstore.ValidKey(id) {
		markKeyOnRunsDeprecated(w, "DELETE")
		s.deleteStoredResult(w, id)
		return
	}
	job, ok := s.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", id)
		return
	}
	job.Cancel()
	s.writeJSON(w, http.StatusOK, job.Summary())
}

// taskPage is the response of GET /v1/runs/{id}/tasks: a window of the
// job's tasks in submission order. Task entries carry state, resolved
// params, the result key, and (in cluster mode) the owning node — result
// bytes live under /v1/results/{key}. NextCursor appears when more tasks
// remain; pass it back as ?cursor= to resume.
type taskPage struct {
	Tasks      []TaskView `json:"tasks"`
	Total      int        `json:"total"`
	NextCursor string     `json:"next_cursor,omitempty"`
}

// handleRunTasks pages through a job's tasks. ?limit= (1..500, default the
// whole list) bounds the page; ?cursor= is the opaque value of the previous
// page's next_cursor (a task index — stable because a job's task list is
// immutable after admission).
func (s *Server) handleRunTasks(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", r.PathValue("id"))
		return
	}
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer, got %q", raw)
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	tasks := job.View().Tasks
	start := 0
	if raw := q.Get("cursor"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 || n > len(tasks) {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, "unknown cursor %q", raw)
			return
		}
		start = n
	}
	page := taskPage{Total: len(tasks)}
	window := tasks[start:]
	if limit > 0 && len(window) > limit {
		window = window[:limit]
		page.NextCursor = strconv.Itoa(start + limit)
	}
	page.Tasks = make([]TaskView, len(window))
	for i, t := range window {
		t.Result = nil // bytes live under /v1/results/{key}
		page.Tasks[i] = t
	}
	s.writeJSON(w, http.StatusOK, page)
}

// handleHealthz is pure liveness — the process is up and serving — unless
// ?ready=1 asks for the readiness semantics of /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("ready") == "1" {
		s.handleReadyz(w, r)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether a job submitted now would be admitted and
// cacheable: dispatcher alive, not draining, store writable (probed with a
// real write). Load balancers should route on this, not /healthz. In cluster
// mode the body carries per-peer reachability, but only as advisory detail:
// a node with dead peers is still ready, because forwards to them degrade to
// local compute rather than failing.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.Ready(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, CodeNotReady, "%v", err)
		return
	}
	body := map[string]any{"status": "ready"}
	if s.cluster != nil {
		body["peers"] = s.cluster.PeerHealth(r.Context())
	}
	s.writeJSON(w, http.StatusOK, body)
}

type statsView struct {
	Store    runstore.Stats  `json:"store"`
	Executor Stats           `json:"executor"`
	Engine   engine.Counters `json:"engine"`
	Cluster  *cluster.Stats  `json:"cluster,omitempty"` // nil on a single-node server
	Time     time.Time       `json:"time"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	view := statsView{
		Store:    s.opts.Store.Stats(),
		Executor: s.Stats(),
		Engine:   engine.GlobalCounters(),
		Time:     time.Now().UTC(),
	}
	if s.cluster != nil {
		snap := s.cluster.Snapshot()
		view.Cluster = &snap
	}
	s.writeJSON(w, http.StatusOK, view)
}
