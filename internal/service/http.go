package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"parbw/internal/engine"
	"parbw/internal/harness"
	"parbw/internal/runstore"
)

// API is the HTTP surface of the run service, served by `bandsim serve`:
//
//	GET  /experiments   registry listing (id, title, source)
//	POST /runs          submit a sweep; waits for completion unless "wait": false
//	GET  /runs          snapshots of every retained job
//	GET  /runs/{id}     a job by id ("job-000001"), or — when {id} is a
//	                    64-hex run-store key — the stored canonical result JSON
//	DELETE /runs/{id}   cancel a job
//	GET  /healthz       liveness; add ?ready=1 for the readiness check
//	GET  /readyz        readiness: store writability + dispatcher liveness
//	GET  /statsz        run-store hit/miss/quarantine counters + executor
//	                    counters (shed/degraded/breaker) + aggregate engine
//	                    counters (supersteps simulated, traffic units routed,
//	                    max slot load, overloads)
//
// Failure semantics: 400 means the request itself is malformed (bad JSON,
// unknown experiment, over the task cap) — do not retry unchanged. 503 with
// a Retry-After header means the service is shedding load (queue full) or
// draining for shutdown — retry after the hinted delay. A stored result
// served by key is returned byte-for-byte as stored, so repeated fetches
// are binary-identical.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /runs", s.handleCreateRun)
	mux.HandleFunc("GET /runs", s.handleListRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleGetRun)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancelRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// writeJSON encodes v to w. Encode errors (a client that hung up mid-body,
// an unencodable value) cannot be reported to the client — the status line
// is already gone — so they are logged and counted on /statsz instead of
// being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("service: encode response: %v", err)
		s.mu.Lock()
		s.stats.EncodeErrors++
		s.mu.Unlock()
	}
}

type apiError struct {
	Error       string   `json:"error"`
	Suggestions []string `json:"suggestions,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeUnavailable sheds a request: 503 plus a Retry-After hint.
func (s *Server) writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeError(w, http.StatusServiceUnavailable, format, args...)
}

type experimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Source string `json:"source"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	all := harness.All()
	out := make([]experimentInfo, len(all))
	for i, e := range all {
		out[i] = experimentInfo{ID: e.ID, Title: e.Title, Source: e.Source}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		var unknown *UnknownExperimentError
		var full *QueueFullError
		switch {
		case errors.As(err, &unknown):
			s.writeJSON(w, http.StatusBadRequest, apiError{
				Error:       fmt.Sprintf("unknown experiment %q", unknown.ID),
				Suggestions: unknown.Suggestions,
			})
		case errors.As(err, &full):
			// Load shedding is not a client error: 503 + Retry-After.
			s.writeUnavailable(w, full.RetryAfter, "%v", err)
		case errors.Is(err, ErrDraining):
			s.writeUnavailable(w, shedRetryAfter, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if req.Wait != nil && !*req.Wait {
		s.writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	if state := job.Wait(r.Context()); state == "" {
		// Client went away; the job keeps running and stays fetchable.
		s.writeJSON(w, http.StatusAccepted, job.View())
		return
	}
	s.writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if runstore.ValidKey(id) {
		data, ok, err := s.opts.Store.GetBytes(id)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			s.writeError(w, http.StatusNotFound, "no stored run with key %s", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	job, ok := s.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	job.Cancel()
	s.writeJSON(w, http.StatusOK, job.View())
}

// handleHealthz is pure liveness — the process is up and serving — unless
// ?ready=1 asks for the readiness semantics of /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("ready") == "1" {
		s.handleReadyz(w, r)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether a job submitted now would be admitted and
// cacheable: dispatcher alive, not draining, store writable (probed with a
// real write). Load balancers should route on this, not /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.Ready(); err != nil {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "not ready",
			"error":  err.Error(),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

type statsView struct {
	Store    runstore.Stats  `json:"store"`
	Executor Stats           `json:"executor"`
	Engine   engine.Counters `json:"engine"`
	Time     time.Time       `json:"time"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, statsView{
		Store:    s.opts.Store.Stats(),
		Executor: s.Stats(),
		Engine:   engine.GlobalCounters(),
		Time:     time.Now().UTC(),
	})
}
