// Package pram simulates classical PRAM variants — EREW, QRQW, and CRCW with
// the Common, Arbitrary, and Priority write-resolution rules — together with
// the limited-bandwidth PRAM(m) of Mansour, Nisan & Vishkin, in which p
// processors communicate through only m shared-memory cells and read the
// problem input from a separate, concurrently-readable Read-Only Memory at
// no bandwidth charge.
//
// Execution is lock-step: each Step runs every processor's program, in which
// a processor may issue at most one shared-memory read and one shared-memory
// write (reads observe the memory as of the start of the step; writes apply
// at the end). A step costs one time unit on EREW and CRCW machines and
// max(1, κ) on QRQW machines, where κ is the maximum per-cell queue. EREW
// machines panic on any concurrent access, which is how the engine surfaces
// algorithmic model violations.
package pram

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/workpool"
	"parbw/internal/xrand"
)

// Mode selects the concurrency discipline of the shared memory.
type Mode int

const (
	// EREW permits at most one access (read or write) per cell per step.
	EREW Mode = iota
	// QRQW queues concurrent accesses: a step costs the maximum queue length.
	QRQW
	// CRCWCommon permits concurrent access; concurrent writers must agree.
	CRCWCommon
	// CRCWArbitrary permits concurrent access; one writer arbitrarily wins
	// (deterministically the highest-numbered processor in this engine).
	CRCWArbitrary
	// CRCWPriority permits concurrent access; the lowest-numbered writer wins.
	CRCWPriority
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case EREW:
		return "EREW"
	case QRQW:
		return "QRQW"
	case CRCWCommon:
		return "CRCW-Common"
	case CRCWArbitrary:
		return "CRCW-Arbitrary"
	case CRCWPriority:
		return "CRCW-Priority"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Concurrent reports whether the mode allows concurrent access to a cell.
func (m Mode) Concurrent() bool { return m != EREW }

// Config configures a Machine.
type Config struct {
	P    int  // processors
	Mem  int  // shared-memory cells; for PRAM(m) this is m
	Mode Mode // memory discipline
	// ROM, if non-nil, is the concurrently-readable read-only input memory
	// of the PRAM(m) model. ROM reads are free of time and bandwidth charge.
	ROM []int64
	// CellBits is the word width w of a shared-memory cell, used by the
	// bandwidth accounting of Section 5 (Theorem 5.2). Zero means 64.
	CellBits int
	Seed     uint64
	Workers  int
}

// Stats describes one executed step.
type Stats struct {
	Reads  int        // total shared-memory reads
	Writes int        // total shared-memory writes
	Kappa  int        // maximum per-cell contention (reads or writes)
	Active int        // processors that issued at least one access
	Cost   model.Time // time charged: 1, or max(1, κ) on QRQW
	Bits   int        // shared-memory bits moved: (Reads+Writes)·CellBits
}

// Machine is a lock-step PRAM. Methods must be called from a single driver
// goroutine.
type Machine struct {
	p        int
	mem      []int64
	rom      []int64
	mode     Mode
	cellBits int
	pool     *workpool.Pool
	ctxs     []Ctx

	time    model.Time
	steps   int
	romRead int
	bits    int
	last    Stats
}

// New constructs a Machine; it panics on invalid configuration.
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("pram: P must be >= 1")
	}
	if cfg.Mem < 1 {
		panic("pram: Mem must be >= 1")
	}
	bits := cfg.CellBits
	if bits == 0 {
		bits = 64
	}
	if bits < 1 {
		panic("pram: CellBits must be >= 1")
	}
	m := &Machine{
		p:        cfg.P,
		mem:      make([]int64, cfg.Mem),
		rom:      cfg.ROM,
		mode:     cfg.Mode,
		cellBits: bits,
		pool:     workpool.New(cfg.Workers),
		ctxs:     make([]Ctx, cfg.P),
	}
	root := xrand.New(cfg.Seed)
	for i := range m.ctxs {
		m.ctxs[i] = Ctx{id: i, m: m, rng: root.Split(uint64(i))}
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Mem returns the number of shared cells.
func (m *Machine) Mem() int { return len(m.mem) }

// Mode returns the machine's memory discipline.
func (m *Machine) Mode() Mode { return m.mode }

// CellBits returns the shared-cell width in bits.
func (m *Machine) CellBits() int { return m.cellBits }

// Time returns accumulated simulated time.
func (m *Machine) Time() model.Time { return m.time }

// Steps returns the number of steps executed.
func (m *Machine) Steps() int { return m.steps }

// BitsMoved returns the total shared-memory bits read or written so far,
// the quantity bounded below by Lemma 5.3's information argument.
func (m *Machine) BitsMoved() int { return m.bits }

// ROMReads returns the total number of ROM reads issued (uncharged).
func (m *Machine) ROMReads() int { return m.romRead }

// Last returns the Stats of the most recent step.
func (m *Machine) Last() Stats { return m.last }

// Load reads shared memory directly, free of charge (tests and drivers).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes shared memory directly, free of charge (setup only).
func (m *Machine) Store(addr int, val int64) { m.mem[addr] = val }

// access is one buffered shared-memory operation.
type access struct {
	addr  int
	val   int64
	write bool
	proc  int
}

// Ctx is the per-processor view of the current step.
type Ctx struct {
	id  int
	m   *Machine
	rng *xrand.Source

	rd, wr  access
	hasRd   bool
	hasWr   bool
	romHits int
}

// ID returns this processor's index.
func (c *Ctx) ID() int { return c.id }

// P returns the machine's processor count.
func (c *Ctx) P() int { return c.m.p }

// RNG returns this processor's private deterministic random source.
func (c *Ctx) RNG() *xrand.Source { return c.rng }

// Read returns the value addr held at the start of the step. At most one
// shared-memory read per processor per step.
func (c *Ctx) Read(addr int) int64 {
	if c.hasRd {
		panic(fmt.Sprintf("pram: proc %d issues two reads in one step", c.id))
	}
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: proc %d reads invalid cell %d (mem=%d)", c.id, addr, len(c.m.mem)))
	}
	c.hasRd = true
	c.rd = access{addr: addr, proc: c.id}
	return c.m.mem[addr]
}

// Write schedules a write of val to addr, applied at the end of the step.
// At most one shared-memory write per processor per step.
func (c *Ctx) Write(addr int, val int64) {
	if c.hasWr {
		panic(fmt.Sprintf("pram: proc %d issues two writes in one step", c.id))
	}
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: proc %d writes invalid cell %d (mem=%d)", c.id, addr, len(c.m.mem)))
	}
	c.hasWr = true
	c.wr = access{addr: addr, val: val, write: true, proc: c.id}
}

// ReadROM returns ROM[addr]. ROM reads are concurrent and free: the PRAM(m)
// model charges nothing for input distribution. It panics if the machine has
// no ROM.
func (c *Ctx) ReadROM(addr int) int64 {
	if c.m.rom == nil {
		panic("pram: machine has no ROM")
	}
	c.romHits++
	return c.m.rom[addr]
}

// Step executes fn for every processor and then commits the step: reads are
// validated against the mode, writes are resolved and applied, and the clock
// advances. It returns the step's Stats.
func (m *Machine) Step(fn func(c *Ctx)) Stats {
	m.pool.For(m.p, func(i int) {
		c := &m.ctxs[i]
		c.hasRd, c.hasWr = false, false
		c.romHits = 0
		fn(c)
	})
	st := m.commit()
	m.time += st.Cost
	m.steps++
	m.bits += st.Bits
	m.last = st
	return st
}

func (m *Machine) commit() Stats {
	var st Stats
	// Gather accesses in processor order (determinism).
	var acc []access
	for i := range m.ctxs {
		c := &m.ctxs[i]
		if c.hasRd {
			acc = append(acc, c.rd)
			st.Reads++
		}
		if c.hasWr {
			acc = append(acc, c.wr)
			st.Writes++
		}
		if c.hasRd || c.hasWr {
			st.Active++
		}
		m.romRead += c.romHits
	}
	// Contention per cell, separately for reads and writes (a cell that is
	// both read and written in one step is CR+CW territory: permitted on
	// CRCW — the read sees the old value — but an EREW violation).
	rd := map[int]int{}
	wr := map[int]int{}
	for _, a := range acc {
		if a.write {
			wr[a.addr]++
		} else {
			rd[a.addr]++
		}
	}
	for addr, n := range rd {
		k := n
		if wr[addr] > 0 && m.mode == EREW {
			panic(fmt.Sprintf("pram: EREW cell %d read and written in one step", addr))
		}
		if k > st.Kappa {
			st.Kappa = k
		}
	}
	for _, n := range wr {
		if n > st.Kappa {
			st.Kappa = n
		}
	}
	if m.mode == EREW && st.Kappa > 1 {
		panic(fmt.Sprintf("pram: EREW contention %d", st.Kappa))
	}

	// Resolve writes.
	switch m.mode {
	case CRCWCommon:
		seen := map[int]int64{}
		for _, a := range acc {
			if !a.write {
				continue
			}
			if v, ok := seen[a.addr]; ok && v != a.val {
				panic(fmt.Sprintf("pram: Common-CRCW writers disagree at cell %d (%d vs %d)", a.addr, v, a.val))
			}
			seen[a.addr] = a.val
			m.mem[a.addr] = a.val
		}
	case CRCWPriority:
		won := map[int]int{}
		for _, a := range acc {
			if !a.write {
				continue
			}
			if w, ok := won[a.addr]; !ok || a.proc < w {
				won[a.addr] = a.proc
				m.mem[a.addr] = a.val
			}
		}
	default: // EREW, QRQW, CRCWArbitrary: processor-order application;
		// the highest-numbered writer wins (Arbitrary rule).
		for _, a := range acc {
			if a.write {
				m.mem[a.addr] = a.val
			}
		}
	}

	st.Cost = 1
	if m.mode == QRQW && st.Kappa > 1 {
		st.Cost = model.Time(st.Kappa)
	}
	st.Bits = (st.Reads + st.Writes) * m.cellBits
	return st
}

// Run executes fn for steps consecutive steps, passing the step index.
func (m *Machine) Run(steps int, fn func(step int, c *Ctx)) {
	for s := 0; s < steps; s++ {
		m.Step(func(c *Ctx) { fn(s, c) })
	}
}

// Reset zeroes shared memory and clears time, preserving RNG state and ROM.
func (m *Machine) Reset() {
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.time = 0
	m.steps = 0
	m.bits = 0
	m.romRead = 0
	m.last = Stats{}
}
