// Package pram simulates classical PRAM variants — EREW, QRQW, and CRCW with
// the Common, Arbitrary, and Priority write-resolution rules — together with
// the limited-bandwidth PRAM(m) of Mansour, Nisan & Vishkin, in which p
// processors communicate through only m shared-memory cells and read the
// problem input from a separate, concurrently-readable Read-Only Memory at
// no bandwidth charge.
//
// Execution is lock-step: each Step runs every processor's program, in which
// a processor may issue at most one shared-memory read and one shared-memory
// write (reads observe the memory as of the start of the step; writes apply
// at the end). A step costs one time unit on EREW and CRCW machines and
// max(1, κ) on QRQW machines, where κ is the maximum per-cell queue. EREW
// machines panic on any concurrent access, which is how the engine surfaces
// algorithmic model violations.
//
// The lock-step loop itself — context lifecycle, worker-pool fan-out, clock
// commit, observer fan-out — lives in internal/engine; this package
// contributes the PRAM-specific commit strategy (contention accounting,
// write resolution, bit accounting).
package pram

import (
	"fmt"

	"parbw/internal/engine"
	"parbw/internal/model"
	"parbw/internal/xrand"
)

// Mode selects the concurrency discipline of the shared memory.
type Mode int

const (
	// EREW permits at most one access (read or write) per cell per step.
	EREW Mode = iota
	// QRQW queues concurrent accesses: a step costs the maximum queue length.
	QRQW
	// CRCWCommon permits concurrent access; concurrent writers must agree.
	CRCWCommon
	// CRCWArbitrary permits concurrent access; one writer arbitrarily wins
	// (deterministically the highest-numbered processor in this engine).
	CRCWArbitrary
	// CRCWPriority permits concurrent access; the lowest-numbered writer wins.
	CRCWPriority
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case EREW:
		return "EREW"
	case QRQW:
		return "QRQW"
	case CRCWCommon:
		return "CRCW-Common"
	case CRCWArbitrary:
		return "CRCW-Arbitrary"
	case CRCWPriority:
		return "CRCW-Priority"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Concurrent reports whether the mode allows concurrent access to a cell.
func (m Mode) Concurrent() bool { return m != EREW }

// Config configures a Machine. It is the low-level construction surface;
// most callers should build machines from the cross-machine engine.Options
// instead (see New). Config remains for the PRAM(m)-specific knobs Options
// omits (ROM, CellBits).
type Config struct {
	P    int  // processors
	Mem  int  // shared-memory cells; for PRAM(m) this is m
	Mode Mode // memory discipline
	// ROM, if non-nil, is the concurrently-readable read-only input memory
	// of the PRAM(m) model. ROM reads are free of time and bandwidth charge.
	ROM []int64
	// CellBits is the word width w of a shared-memory cell, used by the
	// bandwidth accounting of Section 5 (Theorem 5.2). Zero means 64.
	CellBits int
	Seed     uint64
	Workers  int
	// Observer, if non-nil, receives a normalized engine.StepStats callback
	// after every step (Machine.Attach adds more).
	Observer engine.Observer
}

// Stats describes one executed step.
type Stats struct {
	Reads  int        // total shared-memory reads
	Writes int        // total shared-memory writes
	Kappa  int        // maximum per-cell contention (reads or writes)
	Active int        // processors that issued at least one access
	Cost   model.Time // time charged: 1, or max(1, κ) on QRQW
	Bits   int        // shared-memory bits moved: (Reads+Writes)·CellBits
}

// Machine is a lock-step PRAM. Methods must be called from a single driver
// goroutine.
//
// Per-processor state is columnar: counters live in flat engine.Cols arrays
// indexed by processor id, and buffered accesses live in O(cores)
// chunk-local arenas addressed by the Off/Cnt columns, so machine memory is
// O(p) flat words plus O(cores) objects — never O(p) objects.
type Machine struct {
	p        int
	mem      []int64
	rom      []int64
	mode     Mode
	cellBits int
	core     *engine.Core[Stats]
	cols     *engine.Cols

	// shards are the chunk-local access arenas: chunk r of the fan-out (the
	// contiguous processors [r·width, (r+1)·width)) appends its accesses to
	// shards[r].buf, recycled across steps. Concatenating the shard arenas in
	// shard order yields every access in ascending processor order, which is
	// what the write-resolution rules iterate.
	width  int
	shards []shard

	romRead int
	bits    int

	// scratch buffers recycled across steps: the per-cell contention counters
	// (with the touched-cell list that resets them) and the write-resolution
	// state for the Common/Priority rules.
	rdCount, wrCount []int
	touched          []int
	sawWrite         []bool
	lastVal          []int64 // Common rule: previous writer's value per cell
	winner           []int   // Priority rule: lowest writer id per cell

	// fn is the program of the step in flight; body and commitFn are the
	// closures handed to the engine core, built once so that Step itself is
	// allocation-free.
	fn       func(c *Ctx)
	body     func(lo, hi int)
	commitFn func() (Stats, engine.StepStats)
}

// shard is one chunk's recycled access arena plus the Ctx view its programs
// run under and its ROM-read tally. Chunks are disjoint contiguous processor
// ranges, so a shard is only ever touched by the one goroutine running its
// chunk.
type shard struct {
	buf     []access
	romHits int
	ctx     Ctx
}

// New constructs a Machine from either the package-native Config or the
// cross-machine engine.Options surface (Options.Variant names the memory
// discipline; Config remains the escape hatch for ROM and CellBits). It
// panics on invalid configuration.
func New[C Config | engine.Options](cfg C) *Machine {
	if o, ok := any(cfg).(engine.Options); ok {
		return newMachine(Config{
			P:        o.Procs,
			Mem:      o.Mem,
			Mode:     modeFromName(o.Variant),
			Seed:     o.Seed,
			Workers:  o.Workers,
			Observer: o.Observer,
		})
	}
	return newMachine(any(cfg).(Config))
}

// modeFromName parses an engine.Options.Variant (the Mode.String names,
// case-sensitive); empty selects EREW, anything else panics.
func modeFromName(name string) Mode {
	switch name {
	case "", "EREW":
		return EREW
	case "QRQW":
		return QRQW
	case "CRCW-Common":
		return CRCWCommon
	case "CRCW-Arbitrary":
		return CRCWArbitrary
	case "CRCW-Priority":
		return CRCWPriority
	}
	panic(fmt.Sprintf("pram: unknown variant %q", name))
}

func newMachine(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("pram: P must be >= 1")
	}
	if cfg.Mem < 1 {
		panic("pram: Mem must be >= 1")
	}
	bits := cfg.CellBits
	if bits == 0 {
		bits = 64
	}
	if bits < 1 {
		panic("pram: CellBits must be >= 1")
	}
	m := &Machine{
		p:        cfg.P,
		mem:      make([]int64, cfg.Mem),
		rom:      cfg.ROM,
		mode:     cfg.Mode,
		cellBits: bits,
		core:     engine.NewCore[Stats]("pram", cfg.P, cfg.Workers, false),
		cols:     engine.NewCols(cfg.P, cfg.Seed),
		rdCount:  make([]int, cfg.Mem),
		wrCount:  make([]int, cfg.Mem),
		sawWrite: make([]bool, cfg.Mem),
		lastVal:  make([]int64, cfg.Mem),
		winner:   make([]int, cfg.Mem),
	}
	m.core.Attach(cfg.Observer)
	width, chunks := m.core.ChunkPlan(cfg.P)
	m.width = width
	m.shards = make([]shard, chunks)
	for r := range m.shards {
		m.shards[r].ctx = Ctx{m: m, sh: &m.shards[r]}
	}
	m.body = func(lo, hi int) {
		sh := &m.shards[lo/m.width]
		sh.buf = sh.buf[:0]
		sh.romHits = 0
		c := &sh.ctx
		cols := m.cols
		for i := lo; i < hi; i++ {
			cols.ResetProc(i)
			cols.Off[i] = int32(len(sh.buf))
			cols.Cnt[i] = 0
			c.id = i
			m.fn(c)
		}
	}
	m.commitFn = m.commit
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Mem returns the number of shared cells.
func (m *Machine) Mem() int { return len(m.mem) }

// Mode returns the machine's memory discipline.
func (m *Machine) Mode() Mode { return m.mode }

// CellBits returns the shared-cell width in bits.
func (m *Machine) CellBits() int { return m.cellBits }

// Time returns accumulated simulated time.
func (m *Machine) Time() model.Time { return m.core.Time() }

// Steps returns the number of steps executed.
func (m *Machine) Steps() int { return m.core.Steps() }

// BitsMoved returns the total shared-memory bits read or written so far,
// the quantity bounded below by Lemma 5.3's information argument.
func (m *Machine) BitsMoved() int { return m.bits }

// ROMReads returns the total number of ROM reads issued (uncharged).
func (m *Machine) ROMReads() int { return m.romRead }

// Last returns the Stats of the most recent step.
func (m *Machine) Last() Stats { return m.core.Last() }

// Attach registers an observer for this machine's steps.
func (m *Machine) Attach(obs engine.Observer) { m.core.Attach(obs) }

// Load reads shared memory directly, free of charge (tests and drivers).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes shared memory directly, free of charge (setup only).
func (m *Machine) Store(addr int, val int64) { m.mem[addr] = val }

// access is one buffered shared-memory operation.
type access struct {
	addr  int
	val   int64
	write bool
	proc  int
}

// Ctx is the per-processor view of the current step. It is a thin
// index-plus-pointer view: the state it reads and writes lives in the
// machine's columnar arrays and its chunk's access arena.
type Ctx struct {
	id int
	m  *Machine
	sh *shard
}

// ID returns this processor's index.
func (c *Ctx) ID() int { return c.id }

// P returns the machine's processor count.
func (c *Ctx) P() int { return c.m.p }

// RNG returns this processor's private deterministic random source. The
// source persists across steps (it is derived lazily on first use,
// byte-for-byte identical to an eager per-processor split of the seed).
func (c *Ctx) RNG() *xrand.Source { return c.m.cols.RNG(c.id) }

// run returns this processor's accesses buffered so far this step — its run
// is the tail of the chunk arena, at most two entries.
func (c *Ctx) run() []access {
	return c.sh.buf[c.m.cols.Off[c.id]:]
}

// addAccess appends a to this processor's run in the chunk arena.
func (c *Ctx) addAccess(a access) {
	c.sh.buf = append(c.sh.buf, a)
	c.m.cols.Cnt[c.id]++
}

// Read returns the value addr held at the start of the step. At most one
// shared-memory read per processor per step.
func (c *Ctx) Read(addr int) int64 {
	for _, a := range c.run() {
		if !a.write {
			panic(fmt.Sprintf("pram: proc %d issues two reads in one step", c.id))
		}
	}
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: proc %d reads invalid cell %d (mem=%d)", c.id, addr, len(c.m.mem)))
	}
	c.addAccess(access{addr: addr, proc: c.id})
	return c.m.mem[addr]
}

// Write schedules a write of val to addr, applied at the end of the step.
// At most one shared-memory write per processor per step.
func (c *Ctx) Write(addr int, val int64) {
	for _, a := range c.run() {
		if a.write {
			panic(fmt.Sprintf("pram: proc %d issues two writes in one step", c.id))
		}
	}
	if addr < 0 || addr >= len(c.m.mem) {
		panic(fmt.Sprintf("pram: proc %d writes invalid cell %d (mem=%d)", c.id, addr, len(c.m.mem)))
	}
	c.addAccess(access{addr: addr, val: val, write: true, proc: c.id})
}

// ReadROM returns ROM[addr]. ROM reads are concurrent and free: the PRAM(m)
// model charges nothing for input distribution. It panics if the machine has
// no ROM.
func (c *Ctx) ReadROM(addr int) int64 {
	if c.m.rom == nil {
		panic("pram: machine has no ROM")
	}
	c.sh.romHits++
	return c.m.rom[addr]
}

// Step executes fn for every processor and then commits the step: reads are
// validated against the mode, writes are resolved and applied, and the clock
// advances. It returns the step's Stats.
func (m *Machine) Step(fn func(c *Ctx)) Stats {
	m.fn = fn
	st := m.core.Step(m.body, m.commitFn)
	m.fn = nil
	m.bits += st.Bits
	return st
}

// commit is the PRAM merge strategy: walk the accesses in processor order
// (the shard arenas concatenated in shard order), compute per-cell
// contention, enforce the mode's rules, resolve writes, and price the step.
// Write resolution depends only on processor order, never on worker
// scheduling, so the memory image is identical for any worker count.
func (m *Machine) commit() (Stats, engine.StepStats) {
	var st Stats
	for r := range m.shards {
		sh := &m.shards[r]
		m.romRead += sh.romHits
		for k := range sh.buf {
			if sh.buf[k].write {
				st.Writes++
			} else {
				st.Reads++
			}
		}
	}
	for i := 0; i < m.p; i++ {
		if m.cols.Cnt[i] > 0 {
			st.Active++
		}
	}

	// Contention per cell, separately for reads and writes (a cell that is
	// both read and written in one step is CR+CW territory: permitted on
	// CRCW — the read sees the old value — but an EREW violation). The
	// counters are recycled: only touched cells are non-zero, and they are
	// reset below once the step is resolved.
	m.touched = m.touched[:0]
	for r := range m.shards {
		for _, a := range m.shards[r].buf {
			if m.rdCount[a.addr] == 0 && m.wrCount[a.addr] == 0 {
				m.touched = append(m.touched, a.addr)
			}
			if a.write {
				m.wrCount[a.addr]++
			} else {
				m.rdCount[a.addr]++
			}
		}
	}
	for _, addr := range m.touched {
		rd, wr := m.rdCount[addr], m.wrCount[addr]
		if rd > 0 && wr > 0 && m.mode == EREW {
			panic(fmt.Sprintf("pram: EREW cell %d read and written in one step", addr))
		}
		if rd > st.Kappa {
			st.Kappa = rd
		}
		if wr > st.Kappa {
			st.Kappa = wr
		}
	}
	if m.mode == EREW && st.Kappa > 1 {
		panic(fmt.Sprintf("pram: EREW contention %d", st.Kappa))
	}

	// Resolve writes.
	switch m.mode {
	case CRCWCommon:
		for r := range m.shards {
			for _, a := range m.shards[r].buf {
				if !a.write {
					continue
				}
				if m.sawWrite[a.addr] && m.lastVal[a.addr] != a.val {
					panic(fmt.Sprintf("pram: Common-CRCW writers disagree at cell %d (%d vs %d)", a.addr, m.lastVal[a.addr], a.val))
				}
				m.sawWrite[a.addr] = true
				m.lastVal[a.addr] = a.val
				m.mem[a.addr] = a.val
			}
		}
	case CRCWPriority:
		for r := range m.shards {
			for _, a := range m.shards[r].buf {
				if !a.write {
					continue
				}
				if !m.sawWrite[a.addr] || a.proc < m.winner[a.addr] {
					m.sawWrite[a.addr] = true
					m.winner[a.addr] = a.proc
					m.mem[a.addr] = a.val
				}
			}
		}
	default: // EREW, QRQW, CRCWArbitrary: processor-order application;
		// the highest-numbered writer wins (Arbitrary rule).
		for r := range m.shards {
			for _, a := range m.shards[r].buf {
				if a.write {
					m.mem[a.addr] = a.val
				}
			}
		}
	}

	// Reset the recycled per-cell scratch for the next step.
	for _, addr := range m.touched {
		m.rdCount[addr], m.wrCount[addr] = 0, 0
		m.sawWrite[addr] = false
	}

	st.Cost = 1
	if m.mode == QRQW && st.Kappa > 1 {
		st.Cost = model.Time(st.Kappa)
	}
	st.Bits = (st.Reads + st.Writes) * m.cellBits
	return st, engine.StepStats{
		H: st.Kappa, N: st.Reads + st.Writes,
		Steps: 1, MaxSlot: st.Kappa, Cost: st.Cost,
	}
}

// Run executes fn for steps consecutive steps, passing the step index.
func (m *Machine) Run(steps int, fn func(step int, c *Ctx)) {
	for s := 0; s < steps; s++ {
		m.Step(func(c *Ctx) { fn(s, c) })
	}
}

// Reset zeroes shared memory and clears time, preserving RNG state and ROM.
func (m *Machine) Reset() {
	for i := range m.mem {
		m.mem[i] = 0
	}
	m.bits = 0
	m.romRead = 0
	m.core.ResetClock()
}
