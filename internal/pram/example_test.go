package pram_test

import (
	"fmt"

	"parbw/internal/pram"
)

// Example shows the PRAM(m) of Mansour, Nisan & Vishkin: p processors, m
// shared cells, and a concurrently-readable ROM holding the input that
// costs nothing to read — the feature that makes input distribution free in
// that model (Section 5 of the paper).
func Example() {
	rom := []int64{0, 0, 0, 1, 0} // leader at index 3
	m := pram.New(pram.Config{P: 5, Mem: 2, Mode: pram.CRCWArbitrary, ROM: rom, Seed: 1})
	m.Step(func(c *pram.Ctx) {
		if c.ReadROM(c.ID()) == 1 {
			c.Write(0, int64(c.ID()))
		}
	})
	var learned int64
	m.Step(func(c *pram.Ctx) {
		v := c.Read(0) // concurrent read: every processor may look
		if c.ID() == 0 {
			learned = v
		}
	})
	fmt.Printf("leader %d found in %v steps\n", learned, m.Time())
	// Output: leader 3 found in 2 steps
}
