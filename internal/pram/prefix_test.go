package pram

import (
	"testing"
	"testing/quick"

	"parbw/internal/xrand"
)

func TestPrefixSums(t *testing.T) {
	for _, mode := range []Mode{EREW, QRQW, CRCWArbitrary} {
		for _, n := range []int{1, 2, 7, 16, 33} {
			m := New(Config{P: n, Mem: 2*n + 4, Mode: mode, Seed: 1})
			want := make([]int64, n)
			var acc, tot int64
			rng := xrand.New(uint64(n))
			for i := 0; i < n; i++ {
				v := int64(rng.Intn(20))
				m.Store(i, v)
				want[i] = acc
				acc += v
			}
			tot = acc
			got := PrefixSums(m, 0, n, n)
			if got != tot {
				t.Fatalf("mode %v n=%d: total %d, want %d", mode, n, got, tot)
			}
			for i := 0; i < n; i++ {
				if m.Load(i) != want[i] {
					t.Fatalf("mode %v n=%d: prefix[%d] = %d, want %d", mode, n, i, m.Load(i), want[i])
				}
			}
		}
	}
}

func TestPrefixSumsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%50)
		m := New(Config{P: n, Mem: 2 * n, Mode: EREW, Seed: seed})
		var acc int64
		want := make([]int64, n)
		for i := 0; i < n; i++ {
			v := int64((seed >> (i % 48)) & 0x7)
			m.Store(i, v)
			want[i] = acc
			acc += v
		}
		if PrefixSums(m, 0, n, n) != acc {
			return false
		}
		for i := 0; i < n; i++ {
			if m.Load(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumsCostLogarithmic(t *testing.T) {
	n := 256
	m := New(Config{P: n, Mem: 2 * n, Mode: EREW, Seed: 1})
	for i := 0; i < n; i++ {
		m.Store(i, 1)
	}
	PrefixSums(m, 0, n, n)
	// 3 steps per doubling round (8 rounds) + 2 shift steps.
	if m.Time() > 3*8+2 {
		t.Fatalf("prefix sums cost %v steps, want <= 26", m.Time())
	}
}

func TestPrefixSumsValidation(t *testing.T) {
	m := New(Config{P: 4, Mem: 8, Mode: EREW, Seed: 1})
	if PrefixSums(m, 0, 4, 0) != 0 {
		t.Fatal("n=0 should be a no-op returning 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range buffer accepted")
		}
	}()
	PrefixSums(m, 6, 0, 4)
}
