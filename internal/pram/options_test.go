package pram

import (
	"testing"

	"parbw/internal/engine"
)

// A machine built from engine.Options must behave identically to one built
// from the equivalent Config; Variant names map onto the Mode constants.
func TestNewFromOptionsEquivalent(t *testing.T) {
	cases := []struct {
		variant string
		mode    Mode
	}{
		{"", EREW},
		{"EREW", EREW},
		{"QRQW", QRQW},
		{"CRCW-Common", CRCWCommon},
		{"CRCW-Arbitrary", CRCWArbitrary},
		{"CRCW-Priority", CRCWPriority},
	}
	for _, tc := range cases {
		m := New(engine.Options{Procs: 8, Mem: 16, Variant: tc.variant, Seed: 3})
		if m.Mode() != tc.mode {
			t.Fatalf("variant %q: mode %v, want %v", tc.variant, m.Mode(), tc.mode)
		}
	}

	a := New(Config{P: 8, Mem: 16, Mode: QRQW, Seed: 3})
	b := New(engine.Options{Procs: 8, Mem: 16, Variant: "QRQW", Seed: 3})
	for s := 0; s < 3; s++ {
		body := func(c *Ctx) {
			v := c.Read(c.RNG().Intn(8))
			c.Write(8+c.ID(), v+1)
		}
		a.Step(body)
		b.Step(body)
	}
	if a.Time() != b.Time() || a.Last() != b.Last() {
		t.Fatalf("Config vs Options diverge: time %g/%g stats %+v/%+v", a.Time(), b.Time(), a.Last(), b.Last())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unknown variant did not panic")
		}
	}()
	New(engine.Options{Procs: 2, Mem: 2, Variant: "CREW"})
}
