package pram

import (
	"testing"
	"testing/quick"
)

// Metamorphic properties of the PRAM engines.

// QRQW cost equals CRCW cost when there is no contention, and exceeds it
// exactly by the queue factor otherwise.
func TestQRQWvsCRCWCost(t *testing.T) {
	f := func(seed uint64) bool {
		p := 8
		target := int(seed % 4) // 0..3 cells contended
		run := func(mode Mode) float64 {
			m := New(Config{P: p, Mem: 8, Mode: mode, Seed: seed})
			m.Step(func(c *Ctx) {
				if target == 0 {
					c.Read(c.ID()) // contention-free
				} else {
					c.Read(c.ID() % target)
				}
			})
			return m.Time()
		}
		qr, cr := run(QRQW), run(CRCWArbitrary)
		if target == 0 || target == p {
			return qr == cr
		}
		return qr >= cr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Writer resolution: Priority and Arbitrary agree when there is a single
// writer per cell.
func TestResolutionAgreesWithoutContention(t *testing.T) {
	f := func(seed uint64) bool {
		p := 8
		run := func(mode Mode) []int64 {
			m := New(Config{P: p, Mem: p, Mode: mode, Seed: seed})
			m.Step(func(c *Ctx) {
				c.Write(c.ID(), int64(c.ID())*7)
			})
			out := make([]int64, p)
			for a := range out {
				out[a] = m.Load(a)
			}
			return out
		}
		a, b := run(CRCWArbitrary), run(CRCWPriority)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Priority winner is always <= Arbitrary winner's processor id under our
// deterministic rules (lowest vs highest).
func TestWinnerOrdering(t *testing.T) {
	p := 6
	arb := New(Config{P: p, Mem: 1, Mode: CRCWArbitrary, Seed: 1})
	arb.Step(func(c *Ctx) { c.Write(0, int64(c.ID())) })
	pri := New(Config{P: p, Mem: 1, Mode: CRCWPriority, Seed: 1})
	pri.Step(func(c *Ctx) { c.Write(0, int64(c.ID())) })
	if !(pri.Load(0) <= arb.Load(0)) {
		t.Fatalf("priority winner %d > arbitrary winner %d", pri.Load(0), arb.Load(0))
	}
}

// Steps are compositional: running k idle steps costs exactly k.
func TestIdleStepsLinear(t *testing.T) {
	m := New(Config{P: 4, Mem: 4, Mode: EREW, Seed: 1})
	m.Run(13, func(step int, c *Ctx) {})
	if m.Time() != 13 {
		t.Fatalf("13 idle steps cost %v", m.Time())
	}
}

// Worker-count invariance for the PRAM engine.
func TestPRAMWorkerInvariance(t *testing.T) {
	run := func(workers int) (int64, float64) {
		m := New(Config{P: 64, Mem: 64, Mode: CRCWArbitrary, Seed: 2, Workers: workers})
		m.Step(func(c *Ctx) {
			c.Write(c.ID()%16, int64(c.RNG().Intn(50)))
		})
		var sum int64
		for a := 0; a < 64; a++ {
			sum += m.Load(a)
		}
		return sum, m.Time()
	}
	s1, t1 := run(1)
	s8, t8 := run(8)
	if s1 != s8 || t1 != t8 {
		t.Fatalf("worker count changed PRAM outcome: (%d,%v) vs (%d,%v)", s1, t1, s8, t8)
	}
}

// ROM reads never change cost or shared state.
func TestROMReadsFree(t *testing.T) {
	rom := make([]int64, 16)
	m := New(Config{P: 16, Mem: 4, Mode: CRCWArbitrary, ROM: rom, Seed: 1})
	m.Step(func(c *Ctx) {
		for j := 0; j < 5; j++ {
			c.ReadROM(c.ID())
		}
	})
	if m.Time() != 1 || m.BitsMoved() != 0 {
		t.Fatalf("ROM reads charged: time %v bits %d", m.Time(), m.BitsMoved())
	}
	if m.ROMReads() != 80 {
		t.Fatalf("ROMReads = %d, want 80", m.ROMReads())
	}
}
