package pram

// PrefixSums computes, in place, the exclusive prefix sums of cells
// [base, base+n) using cells [scratch, scratch+n) as a double buffer, by
// the standard ⌈lg n⌉-round doubling network. It needs a machine with at
// least n processors and a concurrent- or exclusive-read mode (the access
// pattern is exclusive, so every mode works). Returns the total.
//
// Cost: 3·⌈lg n⌉ + 2 steps (each round: two reads and a write per active
// processor, pipelined over three steps). This is the building block the
// Section 4.1 lower-bound conversions take for granted on the CRCW PRAM.
func PrefixSums(m *Machine, base, scratch, n int) int64 {
	if n <= 0 {
		return 0
	}
	if m.P() < n {
		panic("pram: PrefixSums needs at least n processors")
	}
	if base+n > m.Mem() || scratch+n > m.Mem() {
		panic("pram: PrefixSums buffers out of range")
	}
	// Inclusive doubling into alternating buffers.
	cur, nxt := base, scratch
	a := make([]int64, n)
	b := make([]int64, n)
	for k := 1; k < n; k *= 2 {
		kk := k
		cc, nn := cur, nxt
		m.Step(func(c *Ctx) {
			v := c.ID()
			if v < n {
				a[v] = c.Read(cc + v)
			}
		})
		m.Step(func(c *Ctx) {
			v := c.ID()
			if v >= kk && v < n {
				b[v] = c.Read(cc + v - kk)
			} else {
				b[v] = 0
			}
		})
		m.Step(func(c *Ctx) {
			v := c.ID()
			if v < n {
				c.Write(nn+v, a[v]+b[v])
			}
		})
		cur, nxt = nxt, cur
	}
	// Shift inclusive → exclusive back into [base, base+n); the last
	// inclusive value is the total.
	m.Step(func(c *Ctx) {
		v := c.ID()
		if v < n {
			a[v] = c.Read(cur + v)
		}
	})
	m.Step(func(c *Ctx) {
		v := c.ID()
		if v < n {
			if v == 0 {
				c.Write(base, 0)
			} else {
				c.Write(base+v, a[v-1])
			}
		}
	})
	return a[n-1]
}
