package pram

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{P: 4, Mem: 8, Mode: EREW, Seed: 1})
	m.Step(func(c *Ctx) {
		c.Write(c.ID(), int64(c.ID()*10))
	})
	vals := make([]int64, 4)
	m.Step(func(c *Ctx) {
		vals[c.ID()] = c.Read(c.ID())
	})
	for i, v := range vals {
		if v != int64(i*10) {
			t.Fatalf("proc %d read %d, want %d", i, v, i*10)
		}
	}
	if m.Time() != 2 {
		t.Fatalf("Time = %v, want 2", m.Time())
	}
}

func TestReadSeesStepStartValue(t *testing.T) {
	m := New(Config{P: 2, Mem: 2, Mode: CRCWArbitrary, Seed: 1})
	m.Store(0, 5)
	var seen int64
	m.Step(func(c *Ctx) {
		if c.ID() == 0 {
			c.Write(0, 9)
		} else {
			seen = c.Read(0)
		}
	})
	if seen != 5 {
		t.Fatalf("read %d, want step-start value 5", seen)
	}
	if m.Load(0) != 9 {
		t.Fatalf("cell = %d after commit, want 9", m.Load(0))
	}
}

func TestEREWConcurrentReadPanics(t *testing.T) {
	m := New(Config{P: 2, Mem: 2, Mode: EREW, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("EREW concurrent read did not panic")
		}
	}()
	m.Step(func(c *Ctx) { c.Read(0) })
}

func TestEREWReadWriteSameCellPanics(t *testing.T) {
	m := New(Config{P: 2, Mem: 2, Mode: EREW, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("EREW read+write same cell did not panic")
		}
	}()
	m.Step(func(c *Ctx) {
		if c.ID() == 0 {
			c.Read(0)
		} else {
			c.Write(0, 1)
		}
	})
}

func TestQRQWCostIsMaxQueue(t *testing.T) {
	m := New(Config{P: 6, Mem: 4, Mode: QRQW, Seed: 1})
	st := m.Step(func(c *Ctx) {
		c.Read(c.ID() % 2) // cells 0 and 1 each read by 3 procs
	})
	if st.Kappa != 3 || st.Cost != 3 {
		t.Fatalf("stats = %+v, want Kappa=3 Cost=3", st)
	}
}

func TestQRQWUnitCostWithoutContention(t *testing.T) {
	m := New(Config{P: 4, Mem: 8, Mode: QRQW, Seed: 1})
	st := m.Step(func(c *Ctx) { c.Read(c.ID()) })
	if st.Cost != 1 {
		t.Fatalf("cost = %v, want 1", st.Cost)
	}
}

func TestCRCWArbitraryHighestWins(t *testing.T) {
	m := New(Config{P: 5, Mem: 1, Mode: CRCWArbitrary, Seed: 1})
	m.Step(func(c *Ctx) { c.Write(0, int64(c.ID())) })
	if m.Load(0) != 4 {
		t.Fatalf("winner = %d, want 4", m.Load(0))
	}
}

func TestCRCWPriorityLowestWins(t *testing.T) {
	m := New(Config{P: 5, Mem: 1, Mode: CRCWPriority, Seed: 1})
	m.Step(func(c *Ctx) { c.Write(0, int64(c.ID()+100)) })
	if m.Load(0) != 100 {
		t.Fatalf("winner = %d, want 100", m.Load(0))
	}
}

func TestCRCWCommonAgreeingWritersOK(t *testing.T) {
	m := New(Config{P: 4, Mem: 1, Mode: CRCWCommon, Seed: 1})
	m.Step(func(c *Ctx) { c.Write(0, 42) })
	if m.Load(0) != 42 {
		t.Fatal("common write lost")
	}
}

func TestCRCWCommonDisagreementPanics(t *testing.T) {
	m := New(Config{P: 2, Mem: 1, Mode: CRCWCommon, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("disagreeing Common writers did not panic")
		}
	}()
	m.Step(func(c *Ctx) { c.Write(0, int64(c.ID())) })
}

func TestTwoReadsOneStepPanics(t *testing.T) {
	m := New(Config{P: 1, Mem: 4, Mode: CRCWArbitrary, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("two reads in one step did not panic")
		}
	}()
	m.Step(func(c *Ctx) { c.Read(0); c.Read(1) })
}

func TestROM(t *testing.T) {
	rom := []int64{7, 8, 9}
	m := New(Config{P: 3, Mem: 1, Mode: CRCWArbitrary, ROM: rom, Seed: 1})
	vals := make([]int64, 3)
	st := m.Step(func(c *Ctx) {
		vals[c.ID()] = c.ReadROM(c.ID())
	})
	for i, v := range vals {
		if v != rom[i] {
			t.Fatalf("ROM read %d = %d", i, v)
		}
	}
	// ROM reads are free: no shared accesses, cost 1 (the step itself).
	if st.Reads != 0 || st.Bits != 0 {
		t.Fatalf("ROM reads were charged: %+v", st)
	}
	if m.ROMReads() != 3 {
		t.Fatalf("ROMReads = %d, want 3", m.ROMReads())
	}
}

func TestROMAbsentPanics(t *testing.T) {
	m := New(Config{P: 1, Mem: 1, Mode: EREW, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("ReadROM without ROM did not panic")
		}
	}()
	m.Step(func(c *Ctx) { c.ReadROM(0) })
}

func TestBitsAccounting(t *testing.T) {
	m := New(Config{P: 4, Mem: 8, Mode: CRCWArbitrary, CellBits: 8, Seed: 1})
	m.Step(func(c *Ctx) {
		c.Read(c.ID())
		c.Write(c.ID()+4, 1)
	})
	// 4 reads + 4 writes at 8 bits each.
	if m.BitsMoved() != 64 {
		t.Fatalf("BitsMoved = %d, want 64", m.BitsMoved())
	}
}

func TestRunStepIndices(t *testing.T) {
	m := New(Config{P: 2, Mem: 4, Mode: EREW, Seed: 1})
	var steps []int
	m.Run(3, func(step int, c *Ctx) {
		if c.ID() == 0 {
			steps = append(steps, step)
		}
	})
	if len(steps) != 3 || steps[0] != 0 || steps[2] != 2 {
		t.Fatalf("steps = %v", steps)
	}
}

func TestReset(t *testing.T) {
	m := New(Config{P: 2, Mem: 2, Mode: CRCWArbitrary, Seed: 1})
	m.Step(func(c *Ctx) { c.Write(0, 1) })
	m.Reset()
	if m.Load(0) != 0 || m.Time() != 0 || m.Steps() != 0 || m.BitsMoved() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		EREW: "EREW", QRQW: "QRQW", CRCWCommon: "CRCW-Common",
		CRCWArbitrary: "CRCW-Arbitrary", CRCWPriority: "CRCW-Priority",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if EREW.Concurrent() || !QRQW.Concurrent() {
		t.Fatal("Concurrent() wrong")
	}
}

// Property: a parallel prefix-style doubling computation on EREW produces
// the same result as a sequential scan — exercises multi-step correctness
// of snapshot reads and write commits.
func TestEREWPointerDoublingSum(t *testing.T) {
	f := func(seed uint64) bool {
		n := 8
		m := New(Config{P: n, Mem: 2 * n, Mode: EREW, Seed: seed})
		vals := make([]int64, n)
		s := int64(0)
		for i := range vals {
			vals[i] = int64((seed>>uint(i))&0xf) + 1
			s += vals[i]
			m.Store(i, vals[i])
		}
		// log n rounds of a[i] += a[i - 2^k] using the spare half as a
		// double buffer each round (EREW-safe: disjoint reads and writes).
		cur, nxt := 0, n
		for k := 1; k < n; k *= 2 {
			kk := k
			cc, nn := cur, nxt
			// Read step: everyone copies its operand pair into private vars
			// via two EREW steps (one read per step).
			a := make([]int64, n)
			b := make([]int64, n)
			m.Step(func(c *Ctx) { a[c.ID()] = c.Read(cc + c.ID()) })
			m.Step(func(c *Ctx) {
				if c.ID() >= kk {
					b[c.ID()] = c.Read(cc + c.ID() - kk)
				}
			})
			m.Step(func(c *Ctx) { c.Write(nn+c.ID(), a[c.ID()]+b[c.ID()]) })
			cur, nxt = nxt, cur
		}
		return m.Load(cur+n-1) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
