package pram

import "testing"

// benchMachine builds a single-worker machine plus a representative
// lock-step program (every processor reads one cell and writes a private
// cell). The program closure is hoisted so that per-call closure allocation
// does not mask the machine's own allocation behavior.
func benchMachine(p int) (*Machine, func()) {
	m := New(Config{P: p, Mem: 2 * p, Mode: QRQW, Seed: 1, Workers: 1})
	body := func(c *Ctx) {
		v := c.Read((c.ID() + 1) % p)
		c.Write(p+c.ID(), v+1)
	}
	return m, func() { m.Step(body) }
}

func BenchmarkSuperstepMerge(b *testing.B) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// The commit path recycles its access list and per-cell scratch; after
// warmup a step must not allocate at all.
const stepAllocBudget = 0

func TestSuperstepMergeAllocs(t *testing.T) {
	_, step := benchMachine(256)
	step() // warm the recycled buffers
	avg := testing.AllocsPerRun(50, step)
	if avg > stepAllocBudget {
		t.Errorf("step allocates %.1f objects/op, budget %d", avg, stepAllocBudget)
	}
}
