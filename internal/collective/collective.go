// Package collective implements the communication primitives that the
// paper's algorithms are built from — broadcast, reduction, prefix sums and
// one-to-all personalized communication — on all four machine models:
// BSP(g), BSP(m), QSM(g) and QSM(m).
//
// Each primitive picks the algorithm appropriate to the machine's cost
// model:
//
//   - BSP(g): degree-⌈L/g⌉ message trees, cost Θ(L·lg p / lg(L/g)) for
//     broadcast and reduction.
//   - BSP(m): an L-ary tree over the first min(m, p) processors followed by
//     an m-wide fan-out/fan-in stage, giving the paper's
//     O(L·lg m/lg L + p/m + L) bound; all sends are slot-scheduled so at
//     most m messages are injected per step.
//   - QSM(g): degree-g concurrent-read trees, cost Θ(g·lg p / lg g).
//   - QSM(m): doubling through shared memory with requests spread over
//     ⌈k/m⌉ steps, cost Θ(lg m + p/m).
//
// The package also provides the ternary broadcast of Section 4.2, which
// exploits non-receipt of messages to broadcast one bit on the BSP(g) in
// g·⌈log₃ p⌉ time when L <= g.
//
// All functions are drivers: they issue supersteps/phases on the machine and
// advance its simulated clock. QSM primitives require machine memory of at
// least 2p words and use it as scratch (contents are overwritten).
package collective

// Op is an associative binary reduction operator.
type Op func(a, b int64) int64

// Sum is addition.
func Sum(a, b int64) int64 { return a + b }

// Xor is bitwise exclusive-or (parity when values are bits).
func Xor(a, b int64) int64 { return a ^ b }

// Max returns the larger operand.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// treeDegree returns the fan-out used by local-model trees: ⌈L/g⌉ for the
// BSP(g) (so that a superstep's g·d send cost stays within the latency
// floor L), never below 2.
func treeDegree(l, g int) int {
	d := l / g
	if d < 2 {
		d = 2
	}
	return d
}
