package collective

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
)

// BroadcastBSP broadcasts val from processor root to all processors and
// returns out with out[i] holding the value processor i obtained through
// actual message traffic (out[root] = val). The algorithm is chosen by the
// machine's cost model.
func BroadcastBSP(m *bsp.Machine, root int, val int64) []int64 {
	p := m.P()
	out := make([]int64, p)
	have := make([]bool, p)
	out[root], have[root] = val, true
	if p == 1 {
		return out
	}
	// Work in a rotated index space where the root is virtual processor 0.
	vid := func(i int) int { return (i - root + p) % p }
	rid := func(v int) int { return (v + root) % p }

	collect := func() {
		for i := 0; i < p; i++ {
			if msgs := m.Inbox(i); len(msgs) > 0 && !have[i] {
				out[i], have[i] = msgs[0].A, true
			}
		}
	}

	cost := m.Cost()
	switch cost.Kind {
	case model.KindBSPg:
		d := treeDegree(cost.L, cost.G)
		for k := 1; k < p; k = k * (d + 1) {
			kk := k
			m.Superstep(func(c *bsp.Ctx) {
				v := vid(c.ID())
				if v >= kk {
					return
				}
				for j := 0; j < d; j++ {
					t := kk + v*d + j
					if t < p {
						c.SendAt(j, rid(t), bsp.Msg{A: out[c.ID()]})
					}
				}
			})
			collect()
		}

	case model.KindBSPm, model.KindBSPSelfSched:
		mm := cost.M
		if mm > p {
			mm = p
		}
		d := cost.L
		if d < 2 {
			d = 2
		}
		// Stage 1: degree-L tree over the first mm virtual processors.
		// In each superstep the k informed processors inject at most one
		// flit per step, so every step carries at most k <= mm <= m
		// messages: no overload.
		for k := 1; k < mm; k = k * (d + 1) {
			kk := k
			m.Superstep(func(c *bsp.Ctx) {
				v := vid(c.ID())
				if v >= kk {
					return
				}
				for j := 0; j < d; j++ {
					t := kk + v*d + j
					if t < mm {
						c.SendAt(j, rid(t), bsp.Msg{A: out[c.ID()]})
					}
				}
			})
			collect()
		}
		// Stage 2: the mm informed processors fan out to the rest, m
		// messages per step: virtual processor v informs mm+v, 2mm+v, ...
		if mm < p {
			m.Superstep(func(c *bsp.Ctx) {
				v := vid(c.ID())
				if v >= mm {
					return
				}
				for r := 0; ; r++ {
					t := mm + r*mm + v
					if t >= p {
						break
					}
					c.SendAt(r, rid(t), bsp.Msg{A: out[c.ID()]})
				}
			})
			collect()
		}

	default:
		panic(fmt.Sprintf("collective: BroadcastBSP on %v", cost.Kind))
	}
	return out
}

// BroadcastTernaryBSPg broadcasts one bit from processor 0 on a BSP(g)
// machine using the non-receipt algorithm of Section 4.2: at step i each
// informed processor j <= 3^{i-1} sends to j + 3^{i-1} if the bit is 0 and
// to j + 2·3^{i-1} if the bit is 1, so the third of each triple learns the
// bit from silence. It completes in ⌈log₃ p⌉ supersteps, each sending at
// most one message per processor, and returns the bit each processor
// decoded (-1 if undecided, which indicates a bug).
//
// The machine must use the BSP(g) cost model; the algorithm's time is
// g·⌈log₃ p⌉ when L <= g.
func BroadcastTernaryBSPg(m *bsp.Machine, bit int64) []int64 {
	if m.Cost().Kind != model.KindBSPg {
		panic("collective: BroadcastTernaryBSPg requires a BSP(g) machine")
	}
	if bit != 0 && bit != 1 {
		panic("collective: BroadcastTernaryBSPg broadcasts a single bit")
	}
	p := m.P()
	decoded := make([]int64, p)
	for i := range decoded {
		decoded[i] = -1
	}
	decoded[0] = bit
	for k := 1; k < p; k = k * 3 {
		kk := k
		m.Superstep(func(c *bsp.Ctx) {
			j := c.ID()
			if j >= kk || decoded[j] < 0 {
				return
			}
			// Send to exactly one of the two candidate targets; the other
			// learns the bit from non-receipt.
			var t int
			if decoded[j] == 0 {
				t = j + kk
			} else {
				t = j + 2*kk
			}
			if t < p {
				c.Send(t, 0, decoded[j])
			}
		})
		// Decode: a processor in [k, 3k) that received a message knows the
		// bit directly; one that did not, but was a candidate target this
		// round, infers the complementary bit from silence.
		for i := kk; i < 3*kk && i < p; i++ {
			if decoded[i] >= 0 {
				continue
			}
			if len(m.Inbox(i)) > 0 {
				decoded[i] = m.Inbox(i)[0].A
			} else if i < 2*kk {
				// Candidate "bit==0" target got nothing: sender exists
				// (i-k is informed) iff i-k < k, which holds here; silence
				// means the bit is 1.
				if i-kk < kk && decoded[i-kk] >= 0 {
					decoded[i] = 1
				}
			} else {
				// Candidate "bit==1" target got nothing: silence means 0.
				if i-2*kk < kk && decoded[i-2*kk] >= 0 {
					decoded[i] = 0
				}
			}
		}
	}
	return decoded
}

// OneToAllBSP performs one-to-all personalized communication: root sends
// vals[i] to each processor i != root in a single superstep (the intro's
// motivating example). It returns the value received by each processor
// (out[root] = vals[root] locally). Cost: g·(p−1) + L on the BSP(g) versus
// p−1 + L on the BSP(m) — the Θ(g) separation of Table 1 row 1.
func OneToAllBSP(m *bsp.Machine, root int, vals []int64) []int64 {
	p := m.P()
	if len(vals) != p {
		panic("collective: OneToAllBSP needs one value per processor")
	}
	out := make([]int64, p)
	out[root] = vals[root]
	m.Superstep(func(c *bsp.Ctx) {
		if c.ID() != root {
			return
		}
		slot := 0
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			// One flit per step: the root pipelines p−1 sends. With an
			// aggregate limit this never exceeds m >= 1 per step; with a
			// local limit the g·h term charges g(p−1).
			c.SendAt(slot, i, bsp.Msg{A: vals[i]})
			slot++
		}
	})
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		if msgs := m.Inbox(i); len(msgs) > 0 {
			out[i] = msgs[0].A
		}
	}
	return out
}
