package collective

import (
	"parbw/internal/qsm"
)

// GatherQSM collects one value from every processor at root through shared
// memory: writers publish into their own cells (requests spread m per step
// on the QSM(m)), then the root reads all p cells — h = p at the root, so
// Θ(g·p) on the QSM(g) versus Θ(p) on the QSM(m).
func GatherQSM(m *qsm.Machine, root int, vals []int64) []int64 {
	qsmScratch(m)
	p := m.P()
	if len(vals) != p {
		panic("collective: GatherQSM needs one value per processor")
	}
	bw := qsmBW(m)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if i == root {
			return
		}
		c.WriteAt(i/bw, i, vals[i])
	})
	out := make([]int64, p)
	out[root] = vals[root]
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() != root {
			return
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			slot := i
			if i > root {
				slot = i - 1
			}
			out[i] = c.ReadAt(slot, i)
		}
	})
	return out
}

// ScatterQSM distributes vals[i] from root to each processor i (the shared
// memory one-to-all; kept for API symmetry).
func ScatterQSM(m *qsm.Machine, root int, vals []int64) []int64 {
	return OneToAllQSM(m, root, vals)
}

// BroadcastVecQSM broadcasts a k-item vector from root through shared
// memory with a pipelined binary doubling of readers per item: item j's
// copies double one phase behind item j−1's, so the total is
// O((k + lg p)·phase) instead of k·lg p phases. Returns the vector read by
// the last processor.
func BroadcastVecQSM(m *qsm.Machine, root int, vec []int64) []int64 {
	qsmScratch(m)
	p := m.P()
	k := len(vec)
	if k == 0 {
		return nil
	}
	if p == 1 {
		return append([]int64(nil), vec...)
	}
	// Simple pipelined structure on the item axis: one BroadcastQSM per
	// item would pay lg p phases each. Instead lay the vector into k cells
	// by the root (spread), then run ONE doubling broadcast of a "ready"
	// token; after processor i learns the token it reads the k cells
	// directly, spread m per step — total O(lg p + k·p/m) on the QSM(m)
	// versus k·g·... on the QSM(g). Cells [p, p+k) hold the vector.
	if m.Mem() < p+k {
		panic("collective: BroadcastVecQSM needs Mem >= p + k")
	}
	bw := qsmBW(m)
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() != root {
			return
		}
		for j, v := range vec {
			c.WriteAt(j, p+j, v)
		}
	})
	BroadcastQSM(m, root, 1) // the ready token
	got := make([][]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if i == root {
			got[i] = append([]int64(nil), vec...)
			return
		}
		vals := make([]int64, k)
		for j := 0; j < k; j++ {
			// Spread: processor i's j-th read at a step staggered by both
			// i and j so each step carries at most bw requests.
			slot := j*((p+bw-1)/bw) + i/bw
			vals[j] = c.ReadAt(slot, p+j)
		}
		got[i] = vals
	})
	far := (root + p - 1) % p
	return got[far]
}
