package collective

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/qsm"
)

// qsmScratch panics unless the machine has the 2p words of scratch memory
// the collective primitives use (cells [0, p) for value copies and
// [p, 2p) for secondary layouts).
func qsmScratch(m *qsm.Machine) {
	if m.Mem() < 2*m.P() {
		panic(fmt.Sprintf("collective: QSM primitives need Mem >= 2p (have %d, p=%d)", m.Mem(), m.P()))
	}
}

// BroadcastQSM broadcasts val from processor root to all processors through
// shared memory and returns the value each processor read. On the QSM(g) it
// uses a degree-g concurrent-read tree (Θ(g·lg p/lg g)); on the QSM(m) it
// doubles the number of copies each round, spreading the k-th round's k
// requests over ⌈k/m⌉ steps (Θ(lg m + p/m)).
func BroadcastQSM(m *qsm.Machine, root int, val int64) []int64 {
	qsmScratch(m)
	p := m.P()
	out := make([]int64, p)
	have := make([]bool, p)
	out[root], have[root] = val, true
	if p == 1 {
		return out
	}
	vid := func(i int) int { return (i - root + p) % p }

	// Seed: the root writes its value into copy cell 0.
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() == root {
			c.Write(0, val)
		}
	})

	cost := m.Cost()
	switch cost.Kind {
	case model.KindQSMg:
		d := cost.G
		if d < 2 {
			d = 2
		}
		// Invariant: copy cells [0, k) hold val; virtual processors [0, k)
		// are informed. Each round, targets [k, k + k·d) read cell
		// (t-k)/d — at most d concurrent readers per cell, so the phase
		// costs max(g·1, κ=d) = max(g, d). A second phase writes the new
		// copies (the value read in a phase is usable only in the next).
		for k := 1; k < p; k = k + k*d {
			kk := k
			m.Phase(func(c *qsm.Ctx) {
				v := vid(c.ID())
				if v < kk || v >= kk+kk*d || v >= p {
					return
				}
				got := c.Read((v - kk) / d)
				out[c.ID()], have[c.ID()] = got, true
			})
			m.Phase(func(c *qsm.Ctx) {
				v := vid(c.ID())
				if v < kk || v >= kk+kk*d || v >= p {
					return
				}
				c.Write(v, out[c.ID()])
			})
		}

	case model.KindQSMm:
		mm := cost.M
		// Doubling: round k has k new readers of k distinct cells
		// (κ = 1), spread over ⌈k/m⌉ request steps.
		for k := 1; k < p; k = 2 * k {
			kk := k
			m.Phase(func(c *qsm.Ctx) {
				v := vid(c.ID())
				if v < kk || v >= 2*kk || v >= p {
					return
				}
				slot := (v - kk) / mm
				got := c.ReadAt(slot, v-kk)
				out[c.ID()], have[c.ID()] = got, true
			})
			m.Phase(func(c *qsm.Ctx) {
				v := vid(c.ID())
				if v < kk || v >= 2*kk || v >= p {
					return
				}
				c.WriteAt((v-kk)/mm, v, out[c.ID()])
			})
		}

	default:
		panic(fmt.Sprintf("collective: BroadcastQSM on %v", cost.Kind))
	}
	return out
}

// OneToAllQSM performs one-to-all personalized communication through shared
// memory: root writes vals[i] into cell i for every i, then every processor
// reads its own cell. Cost: Θ(g·p) on the QSM(g) (the root's p−1 writes pay
// g each) versus Θ(p) on the QSM(m) — Table 1 row 1.
func OneToAllQSM(m *qsm.Machine, root int, vals []int64) []int64 {
	qsmScratch(m)
	p := m.P()
	if len(vals) != p {
		panic("collective: OneToAllQSM needs one value per processor")
	}
	out := make([]int64, p)
	out[root] = vals[root]
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() != root {
			return
		}
		slot := 0
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			c.WriteAt(slot, i, vals[i])
			slot++
		}
	})
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = p // no aggregate limit: all reads in one step
	}
	m.Phase(func(c *qsm.Ctx) {
		if c.ID() == root {
			return
		}
		v := (c.ID() - root + p) % p
		out[c.ID()] = c.ReadAt((v-1)/mm, c.ID())
	})
	return out
}
