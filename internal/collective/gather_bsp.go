package collective

import (
	"parbw/internal/bsp"
)

// GatherBSP collects one value from every processor at root and returns the
// gathered slice (indexed by source processor). Cost: the root receives
// p−1 messages — h = p−1 — so Θ(g·p) on the BSP(g) versus Θ(p) on the
// BSP(m): the receive-side mirror of one-to-all.
func GatherBSP(m *bsp.Machine, root int, vals []int64) []int64 {
	p := m.P()
	if len(vals) != p {
		panic("collective: GatherBSP needs one value per processor")
	}
	out := make([]int64, p)
	out[root] = vals[root]
	m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		if i == root {
			return
		}
		// One message per sender; the per-step aggregate is p−1 only in
		// step 0 if unscheduled, so stagger by sender index.
		slot := i
		if i > root {
			slot = i - 1
		}
		if m.Cost().Global() {
			mm := m.Cost().M
			c.SendAt(slot%maxIntc((p+mm-1)/mm*2, 1), root, bsp.Msg{A: vals[i], B: int64(i)})
		} else {
			c.SendAt(0, root, bsp.Msg{A: vals[i], B: int64(i)})
		}
	})
	for _, msg := range m.Inbox(root) {
		out[msg.B] = msg.A
	}
	return out
}

// ScatterBSP distributes vals[i] from root to each processor i (one-to-all
// personalized communication by another name; kept for API symmetry).
func ScatterBSP(m *bsp.Machine, root int, vals []int64) []int64 {
	return OneToAllBSP(m, root, vals)
}

// AllGatherBSP makes every processor know every processor's value:
// a gather at processor 0 followed by a pipelined broadcast of the p
// values. Returns the full vector (identical at each processor; the driver
// returns one copy). Cost Θ(p + stuff) on the BSP(m) versus Θ(g·p) on the
// BSP(g).
func AllGatherBSP(m *bsp.Machine, vals []int64) []int64 {
	g := GatherBSP(m, 0, vals)
	return BroadcastVecBSP(m, 0, g)
}

// BroadcastVecBSP broadcasts a k-item vector from root to every processor
// using a pipelined binary tree: item j follows item j−1 down the tree one
// superstep behind, so the total is O((k + depth)·stage) rather than
// k·depth·stage — the standard pipelining win that both models enjoy, with
// the BSP(m) paying max(h, c_m, L) and the BSP(g) paying max(g·h, L) per
// stage. Returns the vector received by the last processor (all receive the
// same; asserted by tests).
func BroadcastVecBSP(m *bsp.Machine, root int, vec []int64) []int64 {
	p := m.P()
	k := len(vec)
	if k == 0 {
		return nil
	}
	if p == 1 {
		return append([]int64(nil), vec...)
	}
	// Binary tree over virtual ids (root = 0).
	vid := func(i int) int { return (i - root + p) % p }
	rid := func(v int) int { return (v + root) % p }
	depth := 0
	for 1<<depth < p {
		depth++
	}
	got := make([][]int64, p)
	for i := range got {
		got[i] = make([]int64, 0, k)
	}
	got[root] = append(got[root], vec...)

	mm := p
	if m.Cost().Global() {
		mm = m.Cost().M
	}
	// Stagger senders so that each injection step carries at most m
	// messages: nodes are striped into K = ⌈p/m⌉ groups by virtual id and
	// group q uses steps 2q and 2q+1 for its two child messages.
	stripes := (p + mm - 1) / mm
	// Each superstep, every node forwards its oldest unforwarded item to
	// both children (items pipeline down the tree one level per superstep).
	fwd := make([]int, p) // next item index to forward, per node
	total := k + depth + 2
	for t := 0; t < total; t++ {
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			v := vid(i)
			j := fwd[i]
			if j >= len(got[i]) {
				return
			}
			slot := 2 * (v % stripes)
			for _, child := range []int{2*v + 1, 2*v + 2} {
				if child < p {
					c.SendAt(slot, rid(child), bsp.Msg{A: got[i][j], B: int64(j)})
					slot++
				}
			}
			fwd[i] = j + 1
		})
		for i := 0; i < p; i++ {
			for _, msg := range m.Inbox(i) {
				// Items arrive in order along the pipeline.
				if int(msg.B) == len(got[i]) {
					got[i] = append(got[i], msg.A)
				}
			}
		}
	}
	// All processors now hold the vector; return the farthest one's copy.
	far := rid(p - 1)
	if len(got[far]) != k {
		panic("collective: pipelined broadcast incomplete")
	}
	return got[far]
}

func maxIntc(a, b int) int {
	if a > b {
		return a
	}
	return b
}
