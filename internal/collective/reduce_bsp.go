package collective

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
)

// bspReduceParams returns the group size and tree fan-in used by the BSP
// reduction/prefix algorithms under the machine's cost model.
//
// BSP(g) uses no grouping (gsz = 1) and a degree-⌈L/g⌉ tree. BSP(m) first
// gathers groups of ⌈p/m⌉ processors at m leaders (cost ~p/m, exactly m
// messages per step), then runs an L-ary tree over the leaders (depth
// lg m / lg L, cost L per superstep) — the paper's
// O(p/m + L + L·lg m / lg L) combine.
func bspReduceParams(cost model.Cost, p int) (gsz, d int) {
	switch cost.Kind {
	case model.KindBSPg:
		return 1, treeDegree(cost.L, cost.G)
	case model.KindBSPm, model.KindBSPSelfSched:
		mm := cost.M
		if mm > p {
			mm = p
		}
		gsz = (p + mm - 1) / mm
		d = cost.L
		if d < 2 {
			d = 2
		}
		return gsz, d
	default:
		panic(fmt.Sprintf("collective: BSP reduction on %v", cost.Kind))
	}
}

// bspTree holds the intermediate state of a grouped tree reduction so that
// the down-sweep of a prefix computation can reuse the up-sweep's partials.
type bspTree struct {
	gsz, d  int
	q       int       // number of leaders
	partial []int64   // per-leader running partial (subtree sums after up-sweep)
	snaps   [][]int64 // partial snapshot taken at the start of each round
	members [][]int64 // per-leader member values collected during gather
}

// leaderOf returns the leader processor of proc i.
func (t *bspTree) leaderOf(i int) int { return (i / t.gsz) * t.gsz }

// upsweep gathers group values at leaders and reduces leader partials up a
// d-ary tree, leaving the total at processor 0. vals[i] is processor i's
// contribution.
func bspUpsweep(m *bsp.Machine, vals []int64, op Op) *bspTree {
	gsz, d := bspReduceParams(m.Cost(), m.P())
	return bspUpsweepDeg(m, vals, op, gsz, d)
}

// bspUpsweepDeg is bspUpsweep with explicit group size and tree fan-in,
// used by the combine-tree ablation.
func bspUpsweepDeg(m *bsp.Machine, vals []int64, op Op, gsz, d int) *bspTree {
	p := m.P()
	q := (p + gsz - 1) / gsz
	t := &bspTree{gsz: gsz, d: d, q: q,
		partial: make([]int64, p),
		members: make([][]int64, p),
	}
	for i := 0; i < p; i++ {
		t.partial[i] = vals[i]
	}

	// Gather: group member rank r (1 <= r < gsz) sends its value to the
	// group leader in step r-1; every step carries at most q <= m messages.
	if gsz > 1 {
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			r := i % gsz
			if r == 0 {
				return
			}
			c.SendAt(r-1, t.leaderOf(i), bsp.Msg{A: vals[i], B: int64(r)})
		})
		for l := 0; l < p; l += gsz {
			mem := make([]int64, gsz)
			mem[0] = vals[l]
			for _, msg := range m.Inbox(l) {
				mem[msg.B] = msg.A
			}
			t.members[l] = mem
			acc := mem[0]
			for r := 1; r < gsz && l+r < p; r++ {
				acc = op(acc, mem[r])
			}
			t.partial[l] = acc
		}
	}

	// Tree over leaders: in the round with stride s, leader index i (in
	// leader space) with i%(s*d) != 0 sends its partial to its base. The
	// base folds children in child order so non-commutative ops would still
	// see left-to-right order.
	for s := 1; s < q; s *= d {
		t.snaps = append(t.snaps, append([]int64(nil), t.partial...))
		ss := s
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz // leader index
			if li%ss != 0 || li%(ss*d) == 0 {
				return
			}
			base := (li / (ss * d)) * (ss * d) * gsz
			c.Charge(1)
			c.SendAt(0, base, bsp.Msg{A: t.partial[i], B: int64(li)})
		})
		for l := 0; l < p; l += gsz {
			li := l / gsz
			if li%(ss*d) != 0 {
				continue
			}
			// Fold children in increasing child rank.
			in := m.Inbox(l)
			for j := 1; j < d; j++ {
				want := int64(li + j*ss)
				for _, msg := range in {
					if msg.B == want {
						t.partial[l] = op(t.partial[l], msg.A)
					}
				}
			}
		}
	}
	return t
}

// ReduceBSP reduces the per-processor values with op, leaving the result at
// processor 0 and returning it. op must be associative.
func ReduceBSP(m *bsp.Machine, vals []int64, op Op) int64 {
	if len(vals) != m.P() {
		panic("collective: ReduceBSP needs one value per processor")
	}
	t := bspUpsweep(m, vals, op)
	return t.partial[0]
}

// SumAllBSP reduces with op and broadcasts the result, so that every
// processor knows it; it returns the total. This is the "prefix sum and a
// broadcast to inform every processor of the value n" step of the Section 6
// schedulers, with cost τ = O(p/m + L + L·lg m / lg L) on the BSP(m).
func SumAllBSP(m *bsp.Machine, vals []int64, op Op) int64 {
	total := ReduceBSP(m, vals, op)
	BroadcastBSP(m, 0, total)
	return total
}

// PrefixSumBSP computes the exclusive prefix reduction of the
// per-processor values under op (identity id): out[i] = op-fold of
// vals[0..i). It also returns the total, known to every processor via a
// final broadcast.
func PrefixSumBSP(m *bsp.Machine, vals []int64, op Op, id int64) ([]int64, int64) {
	p := m.P()
	if len(vals) != p {
		panic("collective: PrefixSumBSP needs one value per processor")
	}
	t := bspUpsweep(m, vals, op)
	total := t.partial[0]
	gsz, d, q := t.gsz, t.d, t.q

	// Down-sweep: offsets flow from the root down the same tree, using the
	// up-sweep's snapshot partials as child subtree sums.
	offset := make([]int64, p)
	offset[0] = id
	for r := len(t.snaps) - 1; r >= 0; r-- {
		s := 1
		for i := 0; i < r; i++ {
			s *= d
		}
		snap := t.snaps[r]
		ss := s
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz
			if li%(ss*d) != 0 {
				return
			}
			// Send each child its offset: base's offset plus the subtree
			// sums of earlier siblings (base's own subtree at this level
			// comes first).
			acc := offset[i]
			acc = op(acc, snap[i])
			slot := 0
			for j := 1; j < d; j++ {
				child := li + j*ss
				if child >= q {
					break
				}
				c.Charge(1)
				c.SendAt(slot, child*gsz, bsp.Msg{A: acc})
				slot++
				acc = op(acc, snap[child*gsz])
			}
		})
		for l := 0; l < p; l += gsz {
			li := l / gsz
			if li%ss == 0 && li%(ss*d) != 0 {
				if in := m.Inbox(l); len(in) > 0 {
					offset[l] = in[0].A
				}
			}
		}
	}

	// Leaders hand each member its offset within the group.
	if gsz > 1 {
		m.Superstep(func(c *bsp.Ctx) {
			l := c.ID()
			if l%gsz != 0 {
				return
			}
			acc := op(offset[l], t.members[l][0])
			for r := 1; r < gsz && l+r < p; r++ {
				c.Charge(1)
				c.SendAt(r-1, l+r, bsp.Msg{A: acc})
				acc = op(acc, t.members[l][r])
			}
		})
		for i := 0; i < p; i++ {
			if i%gsz != 0 {
				if in := m.Inbox(i); len(in) > 0 {
					offset[i] = in[0].A
				}
			}
		}
	}

	BroadcastBSP(m, 0, total)
	return offset, total
}

// ReduceBSPDegree reduces with an explicit tree fan-in (group size still
// chosen by the model), for the DESIGN.md combine-tree ablation: the τ term
// is L·log_d(m), minimized at d = L; smaller fan-ins pay more rounds.
func ReduceBSPDegree(m *bsp.Machine, vals []int64, op Op, degree int) int64 {
	if len(vals) != m.P() {
		panic("collective: ReduceBSPDegree needs one value per processor")
	}
	if degree < 2 {
		panic("collective: fan-in must be >= 2")
	}
	gsz, _ := bspReduceParams(m.Cost(), m.P())
	return bspUpsweepDeg(m, vals, op, gsz, degree).partial[0]
}
