package collective

import (
	"testing"
	"testing/quick"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/qsm"
)

func bspMachine(p int, cost model.Cost) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: cost, Seed: 7})
}

func qsmMachine(p int, cost model.Cost) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: 2 * p, Cost: cost, Seed: 7})
}

func qsmmLin(m int) model.Cost {
	c := model.QSMm(m)
	c.Penalty = model.LinearPenalty
	return c
}

var bspCosts = []model.Cost{
	model.BSPg(4, 8),
	model.BSPg(1, 1),
	model.BSPmLinear(4, 4),
	model.BSPmLinear(1, 2),
	model.BSPSelfSched(4, 4),
}

var qsmCosts = []model.Cost{
	model.QSMg(4),
	model.QSMg(1),
	qsmmLin(4),
	qsmmLin(1),
}

func TestBroadcastBSPAllModels(t *testing.T) {
	for _, cost := range bspCosts {
		for _, p := range []int{1, 2, 3, 16, 33, 64} {
			for _, root := range []int{0, p / 2, p - 1} {
				m := bspMachine(p, cost)
				out := BroadcastBSP(m, root, 42)
				for i, v := range out {
					if v != 42 {
						t.Fatalf("%v p=%d root=%d: proc %d got %d", cost.Kind, p, root, i, v)
					}
				}
				if cost.Global() && m.Last().Overload > 0 {
					t.Fatalf("%v p=%d: broadcast overloaded the network", cost.Kind, p)
				}
			}
		}
	}
}

func TestBroadcastBSPNoOverloadEver(t *testing.T) {
	// Under the exponential penalty, a correct BSP(m) broadcast must never
	// exceed m injections in a step, or time explodes.
	cost := model.BSPm(4, 4)
	m := bsp.New(bsp.Config{P: 128, Cost: cost, Seed: 3, Trace: true})
	BroadcastBSP(m, 5, 9)
	for i, st := range m.Trace() {
		if st.Overload != 0 {
			t.Fatalf("superstep %d overloaded: %+v", i, st)
		}
	}
}

func TestBroadcastBSPSeparation(t *testing.T) {
	// Matched aggregate bandwidth: BSP(m) broadcast should be faster than
	// BSP(g) broadcast for large g (Table 1 row 2 shape).
	p, g, l := 1024, 32, 32
	lm := bspMachine(p, model.BSPg(g, l))
	gm := bspMachine(p, model.BSPmLinear(p/g, l))
	BroadcastBSP(lm, 0, 1)
	BroadcastBSP(gm, 0, 1)
	if gm.Time() >= lm.Time() {
		t.Fatalf("BSP(m) broadcast (%v) not faster than BSP(g) (%v)", gm.Time(), lm.Time())
	}
}

func TestBroadcastTernary(t *testing.T) {
	for _, p := range []int{2, 3, 9, 27, 40, 81} {
		for _, bit := range []int64{0, 1} {
			m := bspMachine(p, model.BSPg(8, 4))
			out := BroadcastTernaryBSPg(m, bit)
			for i, v := range out {
				if v != bit {
					t.Fatalf("p=%d bit=%d: proc %d decoded %d", p, bit, i, v)
				}
			}
		}
	}
}

func TestBroadcastTernaryCost(t *testing.T) {
	// Time should be g·⌈log₃ p⌉ when L <= g: each superstep costs g
	// (h = 1) and there are ⌈log₃ p⌉ supersteps.
	p, g, l := 81, 8, 8
	m := bspMachine(p, model.BSPg(g, l))
	BroadcastTernaryBSPg(m, 1)
	want := float64(g * 4) // log₃ 81 = 4
	if m.Time() != want {
		t.Fatalf("ternary broadcast time = %v, want %v", m.Time(), want)
	}
}

func TestBroadcastTernaryRejectsNonBit(t *testing.T) {
	m := bspMachine(4, model.BSPg(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("non-bit value accepted")
		}
	}()
	BroadcastTernaryBSPg(m, 2)
}

func TestOneToAllBSP(t *testing.T) {
	for _, cost := range bspCosts {
		p := 16
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(i * 11)
		}
		m := bspMachine(p, cost)
		out := OneToAllBSP(m, 3, vals)
		for i, v := range out {
			if v != vals[i] {
				t.Fatalf("%v: proc %d got %d, want %d", cost.Kind, i, v, vals[i])
			}
		}
	}
}

func TestOneToAllSeparationTheta_g(t *testing.T) {
	// Table 1 row 1: BSP(g) pays g(p−1), BSP(m) pays p−1 (both plus L).
	p, g, l := 256, 16, 4
	vals := make([]int64, p)
	lm := bspMachine(p, model.BSPg(g, l))
	gm := bspMachine(p, model.BSPmLinear(p/g, l))
	OneToAllBSP(lm, 0, vals)
	OneToAllBSP(gm, 0, vals)
	if lm.Time() != float64(g*(p-1)) {
		t.Fatalf("BSP(g) one-to-all = %v, want %d", lm.Time(), g*(p-1))
	}
	if gm.Time() != float64(p-1) {
		t.Fatalf("BSP(m) one-to-all = %v, want %d", gm.Time(), p-1)
	}
}

func TestReduceAndSumAllBSP(t *testing.T) {
	for _, cost := range bspCosts {
		for _, p := range []int{1, 2, 5, 16, 33} {
			vals := make([]int64, p)
			var want int64
			for i := range vals {
				vals[i] = int64(i*i + 1)
				want += vals[i]
			}
			m := bspMachine(p, cost)
			if got := SumAllBSP(m, vals, Sum); got != want {
				t.Fatalf("%v p=%d: sum = %d, want %d", cost.Kind, p, got, want)
			}
		}
	}
}

func TestReduceBSPXor(t *testing.T) {
	p := 32
	vals := make([]int64, p)
	var want int64
	for i := range vals {
		vals[i] = int64(i % 2)
		want ^= vals[i]
	}
	m := bspMachine(p, model.BSPmLinear(8, 4))
	if got := ReduceBSP(m, vals, Xor); got != want {
		t.Fatalf("parity = %d, want %d", got, want)
	}
}

func TestPrefixSumBSP(t *testing.T) {
	for _, cost := range bspCosts {
		for _, p := range []int{1, 2, 7, 16, 33, 64} {
			vals := make([]int64, p)
			for i := range vals {
				vals[i] = int64(i + 1)
			}
			m := bspMachine(p, cost)
			pre, total := PrefixSumBSP(m, vals, Sum, 0)
			var acc int64
			for i := 0; i < p; i++ {
				if pre[i] != acc {
					t.Fatalf("%v p=%d: prefix[%d] = %d, want %d", cost.Kind, p, i, pre[i], acc)
				}
				acc += vals[i]
			}
			if total != acc {
				t.Fatalf("%v p=%d: total = %d, want %d", cost.Kind, p, total, acc)
			}
		}
	}
}

func TestPrefixSumBSPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := int(seed%60) + 1
		m := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(4, 2), Seed: seed})
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64((seed >> (i % 32)) & 0xff)
		}
		pre, total := PrefixSumBSP(m, vals, Sum, 0)
		var acc int64
		for i := range vals {
			if pre[i] != acc {
				return false
			}
			acc += vals[i]
		}
		return total == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixNoOverload(t *testing.T) {
	m := bsp.New(bsp.Config{P: 200, Cost: model.BSPm(8, 4), Seed: 1, Trace: true})
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = 1
	}
	PrefixSumBSP(m, vals, Sum, 0)
	for i, st := range m.Trace() {
		if st.Overload != 0 {
			t.Fatalf("superstep %d overloaded: %+v", i, st)
		}
	}
}

func TestBroadcastQSMAllModels(t *testing.T) {
	for _, cost := range qsmCosts {
		for _, p := range []int{1, 2, 3, 16, 33, 64} {
			for _, root := range []int{0, p - 1} {
				m := qsmMachine(p, cost)
				out := BroadcastQSM(m, root, 13)
				for i, v := range out {
					if v != 13 {
						t.Fatalf("%v p=%d root=%d: proc %d got %d", cost.Kind, p, root, i, v)
					}
				}
			}
		}
	}
}

func TestBroadcastQSMNoOverload(t *testing.T) {
	m := qsm.New(qsm.Config{P: 100, Mem: 200, Cost: model.QSMm(4), Seed: 2, Trace: true})
	BroadcastQSM(m, 0, 5)
	for i, st := range m.Trace() {
		if st.Overload != 0 {
			t.Fatalf("phase %d overloaded: %+v", i, st)
		}
	}
}

func TestBroadcastQSMSeparation(t *testing.T) {
	// Table 1 row 2: QSM(m) Θ(lg m + p/m) beats QSM(g) Θ(g·lg p/lg g).
	p, g := 1024, 32
	lm := qsmMachine(p, model.QSMg(g))
	gm := qsmMachine(p, qsmmLin(p/g))
	BroadcastQSM(lm, 0, 1)
	BroadcastQSM(gm, 0, 1)
	if gm.Time() >= lm.Time() {
		t.Fatalf("QSM(m) broadcast (%v) not faster than QSM(g) (%v)", gm.Time(), lm.Time())
	}
}

func TestOneToAllQSM(t *testing.T) {
	for _, cost := range qsmCosts {
		p := 16
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(100 - i)
		}
		m := qsmMachine(p, cost)
		out := OneToAllQSM(m, 2, vals)
		for i, v := range out {
			if v != vals[i] {
				t.Fatalf("%v: proc %d got %d, want %d", cost.Kind, i, v, vals[i])
			}
		}
	}
}

func TestSumAllQSM(t *testing.T) {
	for _, cost := range qsmCosts {
		for _, p := range []int{1, 2, 5, 16, 33} {
			vals := make([]int64, p)
			var want int64
			for i := range vals {
				vals[i] = int64(3*i + 2)
				want += vals[i]
			}
			m := qsmMachine(p, cost)
			if got := SumAllQSM(m, vals, Sum); got != want {
				t.Fatalf("%v p=%d: sum = %d, want %d", cost.Kind, p, got, want)
			}
		}
	}
}

func TestPrefixSumQSM(t *testing.T) {
	for _, cost := range qsmCosts {
		for _, p := range []int{1, 2, 7, 16, 33, 64} {
			vals := make([]int64, p)
			for i := range vals {
				vals[i] = int64(2*i + 1)
			}
			m := qsmMachine(p, cost)
			pre, total := PrefixSumQSM(m, vals, Sum, 0)
			var acc int64
			for i := 0; i < p; i++ {
				if pre[i] != acc {
					t.Fatalf("%v p=%d: prefix[%d] = %d, want %d", cost.Kind, p, i, pre[i], acc)
				}
				acc += vals[i]
			}
			if total != acc {
				t.Fatalf("%v p=%d: total = %d, want %d", cost.Kind, p, total, acc)
			}
		}
	}
}

func TestSummationSeparationQSM(t *testing.T) {
	// Table 1 row 3 shape: QSM(m) summation Θ(lg m + n/m) beats QSM(g).
	p, g := 1024, 64
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = 1
	}
	lm := qsmMachine(p, model.QSMg(g))
	gm := qsmMachine(p, qsmmLin(p/g))
	ReduceQSM(lm, vals, Sum)
	ReduceQSM(gm, vals, Sum)
	if gm.Time() >= lm.Time() {
		t.Fatalf("QSM(m) summation (%v) not faster than QSM(g) (%v)", gm.Time(), lm.Time())
	}
}

func TestOps(t *testing.T) {
	if Sum(2, 3) != 5 || Xor(5, 3) != 6 || Max(2, 7) != 7 || Max(9, 1) != 9 {
		t.Fatal("ops wrong")
	}
}

func TestTreeDegree(t *testing.T) {
	if treeDegree(16, 4) != 4 || treeDegree(4, 4) != 2 || treeDegree(1, 8) != 2 {
		t.Fatal("treeDegree wrong")
	}
}

func TestGatherQSM(t *testing.T) {
	for _, cost := range qsmCosts {
		p := 24
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(i * 3)
		}
		for _, root := range []int{0, 5, p - 1} {
			m := qsmMachine(p, cost)
			out := GatherQSM(m, root, vals)
			for i, v := range out {
				if v != vals[i] {
					t.Fatalf("%v root=%d: out[%d] = %d, want %d", cost.Kind, root, i, v, vals[i])
				}
			}
		}
	}
}

func TestScatterQSM(t *testing.T) {
	p := 12
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = int64(50 - i)
	}
	m := qsmMachine(p, qsmmLin(4))
	out := ScatterQSM(m, 3, vals)
	for i, v := range out {
		if v != vals[i] {
			t.Fatalf("scatter out[%d] = %d", i, v)
		}
	}
}

func TestBroadcastVecQSM(t *testing.T) {
	for _, cost := range qsmCosts {
		for _, p := range []int{1, 2, 8, 17} {
			for _, k := range []int{1, 4, 9} {
				vec := make([]int64, k)
				for j := range vec {
					vec[j] = int64(j*j + 1)
				}
				m := qsm.New(qsm.Config{P: p, Mem: 2*p + k, Cost: cost, Seed: 7})
				out := BroadcastVecQSM(m, p/3, vec)
				if len(out) != k {
					t.Fatalf("%v p=%d k=%d: got %d items", cost.Kind, p, k, len(out))
				}
				for j, v := range out {
					if v != vec[j] {
						t.Fatalf("%v p=%d: out[%d] = %d, want %d", cost.Kind, p, j, v, vec[j])
					}
				}
			}
		}
	}
}

func TestBroadcastVecQSMEmpty(t *testing.T) {
	m := qsmMachine(4, qsmmLin(2))
	if out := BroadcastVecQSM(m, 0, nil); out != nil {
		t.Fatal("empty vector returned items")
	}
}

func TestGatherQSMSeparation(t *testing.T) {
	p, g := 256, 16
	vals := make([]int64, p)
	lm := qsmMachine(p, model.QSMg(g))
	GatherQSM(lm, 0, vals)
	gm := qsmMachine(p, qsmmLin(p/g))
	GatherQSM(gm, 0, vals)
	if gm.Time() >= lm.Time() {
		t.Fatalf("QSM(m) gather (%v) not faster than QSM(g) (%v)", gm.Time(), lm.Time())
	}
}

func TestGatherBSP(t *testing.T) {
	for _, cost := range bspCosts {
		p := 32
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(i * 5)
		}
		for _, root := range []int{0, 7, p - 1} {
			m := bspMachine(p, cost)
			out := GatherBSP(m, root, vals)
			for i, v := range out {
				if v != vals[i] {
					t.Fatalf("%v root=%d: out[%d] = %d, want %d", cost.Kind, root, i, v, vals[i])
				}
			}
		}
	}
}

func TestGatherBSPSeparation(t *testing.T) {
	p, g, l := 256, 16, 4
	vals := make([]int64, p)
	lm := bspMachine(p, model.BSPg(g, l))
	GatherBSP(lm, 0, vals)
	gm := bspMachine(p, model.BSPmLinear(p/g, l))
	GatherBSP(gm, 0, vals)
	if gm.Time() >= lm.Time() {
		t.Fatalf("BSP(m) gather (%v) not faster than BSP(g) (%v)", gm.Time(), lm.Time())
	}
}

func TestScatterBSP(t *testing.T) {
	p := 16
	vals := make([]int64, p)
	for i := range vals {
		vals[i] = int64(i + 100)
	}
	m := bspMachine(p, model.BSPmLinear(4, 2))
	out := ScatterBSP(m, 2, vals)
	for i, v := range out {
		if v != vals[i] {
			t.Fatalf("scatter out[%d] = %d", i, v)
		}
	}
}

func TestAllGatherBSP(t *testing.T) {
	for _, cost := range bspCosts {
		p := 16
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(i*i + 1)
		}
		m := bspMachine(p, cost)
		out := AllGatherBSP(m, vals)
		if len(out) != p {
			t.Fatalf("%v: allgather returned %d items", cost.Kind, len(out))
		}
		for i, v := range out {
			if v != vals[i] {
				t.Fatalf("%v: out[%d] = %d, want %d", cost.Kind, i, v, vals[i])
			}
		}
	}
}

func TestBroadcastVecBSP(t *testing.T) {
	for _, cost := range bspCosts {
		for _, p := range []int{1, 2, 9, 32} {
			for _, k := range []int{1, 3, 17} {
				vec := make([]int64, k)
				for j := range vec {
					vec[j] = int64(j * 7)
				}
				m := bspMachine(p, cost)
				out := BroadcastVecBSP(m, p/2, vec)
				if len(out) != k {
					t.Fatalf("%v p=%d k=%d: got %d items", cost.Kind, p, k, len(out))
				}
				for j, v := range out {
					if v != vec[j] {
						t.Fatalf("%v p=%d: out[%d] = %d, want %d", cost.Kind, p, j, v, vec[j])
					}
				}
			}
		}
	}
}

func TestBroadcastVecPipelines(t *testing.T) {
	p, k := 64, 32
	cost := model.BSPmLinear(16, 4)
	vec := make([]int64, k)
	pipe := bspMachine(p, cost)
	BroadcastVecBSP(pipe, 0, vec)
	seq := bspMachine(p, cost)
	for j := 0; j < k; j++ {
		BroadcastBSP(seq, 0, int64(j))
	}
	if pipe.Time() >= seq.Time() {
		t.Fatalf("pipelined (%v) not faster than sequential (%v)", pipe.Time(), seq.Time())
	}
}

func TestBroadcastVecNoOverload(t *testing.T) {
	p, k := 128, 16
	m := bsp.New(bsp.Config{P: p, Cost: model.BSPm(8, 4), Seed: 1, Trace: true})
	BroadcastVecBSP(m, 0, make([]int64, k))
	for i, st := range m.Trace() {
		if st.Overload != 0 {
			t.Fatalf("superstep %d overloaded: %+v", i, st)
		}
	}
}

func TestBroadcastVecEmpty(t *testing.T) {
	m := bspMachine(4, model.BSPg(1, 1))
	if out := BroadcastVecBSP(m, 0, nil); out != nil {
		t.Fatal("empty vector broadcast returned items")
	}
}

func TestReduceBSPDegree(t *testing.T) {
	p := 64
	vals := make([]int64, p)
	var want int64
	for i := range vals {
		vals[i] = int64(i)
		want += vals[i]
	}
	for _, d := range []int{2, 3, 4, 8} {
		m := bspMachine(p, model.BSPmLinear(8, 8))
		if got := ReduceBSPDegree(m, vals, Sum, d); got != want {
			t.Fatalf("d=%d: sum = %d, want %d", d, got, want)
		}
	}
	// Larger fan-in (up to L) is never slower at these parameters.
	m2 := bspMachine(p, model.BSPmLinear(8, 8))
	ReduceBSPDegree(m2, vals, Sum, 2)
	m8 := bspMachine(p, model.BSPmLinear(8, 8))
	ReduceBSPDegree(m8, vals, Sum, 8)
	if m8.Time() > m2.Time() {
		t.Fatalf("L-ary (%v) slower than binary (%v)", m8.Time(), m2.Time())
	}
}

func TestReduceBSPDegreeValidation(t *testing.T) {
	m := bspMachine(4, model.BSPmLinear(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("fan-in 1 accepted")
		}
	}()
	ReduceBSPDegree(m, make([]int64, 4), Sum, 1)
}

func TestQSMScratchPanics(t *testing.T) {
	m := qsm.New(qsm.Config{P: 8, Mem: 4, Cost: model.QSMg(1), Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("undersized QSM memory accepted")
		}
	}()
	BroadcastQSM(m, 0, 1)
}
