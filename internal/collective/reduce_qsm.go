package collective

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/qsm"
)

// qsmReduceParams returns the group size and tree fan-in for QSM reductions.
// QSM(g) uses no grouping and a binary tree (Θ(g·lg p)); QSM(m) gathers
// groups of ⌈p/m⌉ at m leaders and runs a binary tree over the leaders, for
// the paper's Θ(lg m + n/m) summation bound.
func qsmReduceParams(cost model.Cost, p int) (gsz, d int) {
	switch cost.Kind {
	case model.KindQSMg:
		return 1, 2
	case model.KindQSMm:
		mm := cost.M
		if mm > p {
			mm = p
		}
		return (p + mm - 1) / mm, 2
	default:
		panic(fmt.Sprintf("collective: QSM reduction on %v", cost.Kind))
	}
}

// qsmBW returns the per-step request budget used to spread QSM(m) requests
// (p, i.e. unbounded, on the QSM(g)).
func qsmBW(m *qsm.Machine) int {
	if m.Cost().Kind == model.KindQSMm {
		return m.Cost().M
	}
	return m.P()
}

// qsmTree mirrors bspTree for the shared-memory machines.
type qsmTree struct {
	gsz, d  int
	q       int
	partial []int64
	snaps   [][]int64
	members [][]int64
}

func qsmUpsweep(m *qsm.Machine, vals []int64, op Op) *qsmTree {
	qsmScratch(m)
	p := m.P()
	gsz, d := qsmReduceParams(m.Cost(), p)
	q := (p + gsz - 1) / gsz
	t := &qsmTree{gsz: gsz, d: d, q: q,
		partial: make([]int64, p),
		members: make([][]int64, p),
	}
	for i := range t.partial {
		t.partial[i] = vals[i]
	}
	bw := qsmBW(m)

	// Gather: every member publishes its value in its own cell (requests
	// spread bw per step), then each leader reads its members' cells.
	if gsz > 1 {
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if i%gsz == 0 {
				return
			}
			c.WriteAt(i/bw, i, vals[i])
		})
		m.Phase(func(c *qsm.Ctx) {
			l := c.ID()
			if l%gsz != 0 {
				return
			}
			mem := make([]int64, gsz)
			mem[0] = vals[l]
			for r := 1; r < gsz && l+r < p; r++ {
				c.Charge(1)
				mem[r] = c.ReadAt(r-1, l+r)
			}
			t.members[l] = mem
			acc := mem[0]
			for r := 1; r < gsz && l+r < p; r++ {
				acc = op(acc, mem[r])
			}
			t.partial[l] = acc
		})
	}

	// Binary tree over leaders: children publish partials, bases read.
	for s := 1; s < q; s *= d {
		t.snaps = append(t.snaps, append([]int64(nil), t.partial...))
		ss := s
		m.Phase(func(c *qsm.Ctx) { // children publish
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz
			if li%ss != 0 || li%(ss*d) == 0 {
				return
			}
			c.WriteAt(li/bw, i, t.partial[i])
		})
		m.Phase(func(c *qsm.Ctx) { // bases read and fold
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz
			if li%(ss*d) != 0 {
				return
			}
			for j := 1; j < d; j++ {
				child := li + j*ss
				if child >= t.q {
					break
				}
				c.Charge(1)
				t.partial[i] = op(t.partial[i], c.ReadAt(j-1, child*gsz))
			}
		})
	}
	return t
}

// ReduceQSM reduces the per-processor values with op, leaving the result at
// processor 0 and returning it.
func ReduceQSM(m *qsm.Machine, vals []int64, op Op) int64 {
	if len(vals) != m.P() {
		panic("collective: ReduceQSM needs one value per processor")
	}
	return qsmUpsweep(m, vals, op).partial[0]
}

// SumAllQSM reduces with op and broadcasts the result to every processor,
// returning the total.
func SumAllQSM(m *qsm.Machine, vals []int64, op Op) int64 {
	total := ReduceQSM(m, vals, op)
	BroadcastQSM(m, 0, total)
	return total
}

// PrefixSumQSM computes the exclusive prefix reduction out[i] = op-fold of
// vals[0..i) with identity id, and returns it with the total (broadcast to
// all processors).
func PrefixSumQSM(m *qsm.Machine, vals []int64, op Op, id int64) ([]int64, int64) {
	p := m.P()
	if len(vals) != p {
		panic("collective: PrefixSumQSM needs one value per processor")
	}
	t := qsmUpsweep(m, vals, op)
	total := t.partial[0]
	gsz, d, q := t.gsz, t.d, t.q
	bw := qsmBW(m)

	offset := make([]int64, p)
	offset[0] = id
	// Down-sweep through scratch cells [p, 2p).
	for r := len(t.snaps) - 1; r >= 0; r-- {
		s := 1
		for i := 0; i < r; i++ {
			s *= d
		}
		snap := t.snaps[r]
		ss := s
		m.Phase(func(c *qsm.Ctx) { // bases publish child offsets
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz
			if li%(ss*d) != 0 {
				return
			}
			acc := op(offset[i], snap[i])
			for j := 1; j < d; j++ {
				child := li + j*ss
				if child >= q {
					break
				}
				c.Charge(1)
				c.WriteAt(j-1, p+child*gsz, acc)
				acc = op(acc, snap[child*gsz])
			}
		})
		m.Phase(func(c *qsm.Ctx) { // children read their offsets
			i := c.ID()
			if i%gsz != 0 {
				return
			}
			li := i / gsz
			if li%ss == 0 && li%(ss*d) != 0 {
				offset[i] = c.ReadAt(li/bw, p+i)
			}
		})
	}

	// Leaders hand member offsets through scratch cells.
	if gsz > 1 {
		m.Phase(func(c *qsm.Ctx) {
			l := c.ID()
			if l%gsz != 0 {
				return
			}
			acc := op(offset[l], t.members[l][0])
			for r := 1; r < gsz && l+r < p; r++ {
				c.Charge(1)
				c.WriteAt(r-1, p+l+r, acc)
				acc = op(acc, t.members[l][r])
			}
		})
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if i%gsz == 0 {
				return
			}
			offset[i] = c.ReadAt(i/bw, p+i)
		})
	}

	BroadcastQSM(m, 0, total)
	return offset, total
}
