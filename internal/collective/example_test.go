package collective_test

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/qsm"
)

// ExampleBroadcastBSP compares the same broadcast on the two cost
// disciplines with equal aggregate bandwidth: the globally-limited machine
// finishes first.
func ExampleBroadcastBSP() {
	const p, g, l = 256, 16, 8
	local := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: 1})
	collective.BroadcastBSP(local, 0, 42)
	global := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(p/g, l), Seed: 1})
	out := collective.BroadcastBSP(global, 0, 42)
	fmt.Printf("everyone got %d; BSP(m) faster: %v\n", out[p-1], global.Time() < local.Time())
	// Output: everyone got 42; BSP(m) faster: true
}

// ExamplePrefixSumBSP shows the combine tree that prices the schedulers'
// τ term: exclusive prefixes plus the broadcast total.
func ExamplePrefixSumBSP() {
	m := bsp.New(bsp.Config{P: 4, Cost: model.BSPmLinear(2, 2), Seed: 1})
	pre, total := collective.PrefixSumBSP(m, []int64{3, 1, 4, 1}, collective.Sum, 0)
	fmt.Println(pre, total)
	// Output: [0 3 4 8] 9
}

// ExampleBroadcastQSM broadcasts through shared memory with doubling.
func ExampleBroadcastQSM() {
	m := qsm.New(qsm.Config{P: 8, Mem: 16, Cost: model.QSMm(2), Seed: 1})
	out := collective.BroadcastQSM(m, 3, 7)
	fmt.Println(out[0], out[7])
	// Output: 7 7
}
