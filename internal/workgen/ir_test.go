package workgen

import (
	"strings"
	"testing"
)

// Generate is defined as FromIR(GenerateIR(cfg)); the IR and corpus forms
// of every family must therefore agree field for field, and the converters
// must be lossless both ways.
func TestGenerateMatchesGenerateIR(t *testing.T) {
	for _, fam := range Families() {
		for seed := uint64(0); seed < 50; seed++ {
			cfg := GenConfig{Family: fam, Seed: seed}
			w := Generate(cfg)
			ir := GenerateIR(cfg)
			if err := ir.Validate(); err != nil {
				t.Fatalf("%s seed %d: GenerateIR invalid: %v", fam, seed, err)
			}
			w2 := FromIR(ir)
			b1, err := w.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := w2.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("%s seed %d: Generate != FromIR(GenerateIR):\n%s%s", fam, seed, b1, b2)
			}
		}
	}
}

func TestWorkloadIRRoundTripLossless(t *testing.T) {
	for _, fam := range Families() {
		for seed := uint64(0); seed < 50; seed++ {
			w := Generate(GenConfig{Family: fam, Seed: seed})
			back := FromIR(w.IR())
			b1, err := w.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := back.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("%s seed %d: Workload -> IR -> Workload changed bytes:\n%s%s", fam, seed, b1, b2)
			}
		}
	}
}

func TestRoundTripPreservesLyingTotals(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyBalls, Seed: 4})
	w.TotalFlits += 7
	w.TotalSends -= 2
	back := FromIR(w.IR())
	if back.TotalFlits != w.TotalFlits || back.TotalSends != w.TotalSends {
		t.Fatalf("declared totals not carried verbatim: %d/%d != %d/%d",
			back.TotalSends, back.TotalFlits, w.TotalSends, w.TotalFlits)
	}
}

func TestDAGFamilyCarriesPrecedence(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		w := Generate(GenConfig{Family: FamilyDAG, Seed: seed})
		if w.Prec == nil {
			t.Fatalf("seed %d: dag workload has no precedence layer", seed)
		}
		if w.Prec.Nodes() == 0 || len(w.Prec.Edges) == 0 {
			t.Fatalf("seed %d: degenerate precedence layer: %d nodes, %d edges",
				seed, w.Prec.Nodes(), len(w.Prec.Edges))
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The layer survives the corpus encoding.
		b, err := w.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Prec == nil || got.Prec.Nodes() != w.Prec.Nodes() {
			t.Fatalf("seed %d: precedence layer lost in encode/decode", seed)
		}
	}
}

func TestValidateRejectsBadPrec(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyDAG, Seed: 1})
	if w.Prec == nil {
		t.Skip("seed produced no prec")
	}
	w.Prec.Step[0] = len(w.Steps) + 5
	if err := w.Validate(); err == nil {
		t.Fatal("out-of-range prec step accepted")
	}
}

func TestHRelAndBallsCarryNoPrec(t *testing.T) {
	for _, fam := range []Family{FamilyHRel, FamilyBalls} {
		w := Generate(GenConfig{Family: fam, Seed: 3})
		if w.Prec != nil {
			t.Fatalf("%s: unexpected precedence layer", fam)
		}
		b, err := w.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) == "" || strings.Contains(string(b), `"prec"`) {
			t.Fatalf("%s: prec field leaked into encoding", fam)
		}
	}
}
