package workgen

import (
	"bytes"
	"strings"
	"testing"

	"parbw/internal/sched"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range Families() {
		for seed := uint64(0); seed < 50; seed++ {
			a, err := Generate(GenConfig{Family: fam, Seed: seed}).Encode()
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(GenConfig{Family: fam, Seed: seed}).Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%s seed %d: two generations differ:\n%s\n%s", fam, seed, a, b)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(GenConfig{Family: FamilyHRel, Seed: 1}).Encode()
	b, _ := Generate(GenConfig{Family: FamilyHRel, Seed: 2}).Encode()
	if bytes.Equal(a, b) {
		t.Fatal("distinct seeds produced identical workloads")
	}
}

// Golden bytes pin the cross-platform encoding of one small workload. If
// this test breaks, every checked-in corpus entry is invalidated — bump
// Version instead of re-capturing.
func TestGenerateByteStability(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyBalls, Seed: 7, P: 4, M: 2, L: 1, Steps: 1, Load: 1})
	got, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"version":1,"family":"balls","seed":7,"p":4,"m":2,"l":1,"steps":[{"sends":[{"proc":1,"slot":0,"dst":2,"len":1},{"proc":2,"slot":1,"dst":2,"len":1},{"proc":2,"slot":2,"dst":2,"len":1},{"proc":3,"slot":2,"dst":2,"len":1}]}],"total_sends":4,"total_flits":4}` + "\n"
	if string(got) != want {
		t.Fatalf("encoding drifted:\n got %s\nwant %s", got, want)
	}
}

func TestGeneratedWorkloadsValidate(t *testing.T) {
	for _, fam := range Families() {
		for seed := uint64(0); seed < 200; seed++ {
			w := Generate(GenConfig{Family: fam, Seed: seed})
			if err := w.Validate(); err != nil {
				t.Fatalf("%s seed %d: generated workload invalid: %v", fam, seed, err)
			}
			sends, flits := w.CountSends()
			if sends != w.TotalSends || flits != w.TotalFlits {
				t.Fatalf("%s seed %d: declared totals (%d, %d) != actual (%d, %d)",
					fam, seed, w.TotalSends, w.TotalFlits, sends, flits)
			}
		}
	}
}

func TestPinnedConfigRespected(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyHRel, Seed: 3, P: 8, M: 4, L: 2, Steps: 3, MaxLen: 1})
	if w.P != 8 || w.M != 4 || w.L != 2 || len(w.Steps) != 3 {
		t.Fatalf("pins ignored: p=%d m=%d l=%d steps=%d", w.P, w.M, w.L, len(w.Steps))
	}
	for _, step := range w.Steps {
		for _, s := range step.Sends {
			if s.Len != 1 {
				t.Fatalf("MaxLen=1 pin ignored: len %d", s.Len)
			}
		}
	}
}

func TestAdversarialRejected(t *testing.T) {
	// Every adversarial workload must be caught by Validate or by the
	// declared-totals cross-check — cleanly, without panicking.
	caught := 0
	for _, fam := range Families() {
		for seed := uint64(0); seed < 100; seed++ {
			w := Generate(GenConfig{Family: fam, Seed: seed, Adversarial: true})
			err := w.Validate()
			sends, flits := w.CountSends()
			lying := sends != w.TotalSends || flits != w.TotalFlits
			if err == nil && !lying {
				t.Fatalf("%s seed %d: adversarial workload passed all checks", fam, seed)
			}
			if err != nil {
				caught++
			}
		}
	}
	if caught == 0 {
		t.Fatal("no adversarial workload failed Validate — corruptor too weak")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyDAG, Seed: 11})
	enc, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", enc, enc2)
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode([]byte(`{"version":99,"family":"hrel"}`)); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Fatalf("unknown version accepted: %v", err)
	}
}

func TestValidateRejectsTable(t *testing.T) {
	base := func() *Workload {
		return Generate(GenConfig{Family: FamilyHRel, Seed: 5, P: 4, M: 2, Steps: 1})
	}
	cases := []struct {
		name    string
		mutate  func(*Workload)
		wantErr string
	}{
		{"bad family", func(w *Workload) { w.Family = "nope" }, "unknown family"},
		{"p zero", func(w *Workload) { w.P = 0 }, "p=0 out of range"},
		{"p over cap", func(w *Workload) { w.P = MaxP + 1 }, "out of range"},
		{"m over p", func(w *Workload) { w.M = w.P + 1 }, "m=5 out of range"},
		{"negative l", func(w *Workload) { w.L = -1 }, "l=-1 out of range"},
		{"too many steps", func(w *Workload) { w.Steps = make([]Superstep, MaxSteps+1) }, "exceeds cap"},
		{"slot over cap", func(w *Workload) { w.Steps[0].Sends[0].Slot = MaxSlot + 1 }, "exceeds cap"},
		{"len over cap", func(w *Workload) { w.Steps[0].Sends[0].Len = MaxMsgLen + 1 }, "exceeds cap"},
		{"negative slot", func(w *Workload) { w.Steps[0].Sends[0].Slot = -2 }, "negative slot"},
		{"bad dst", func(w *Workload) { w.Steps[0].Sends[0].Dst = 9 }, "invalid dst"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := base()
			if len(w.Steps[0].Sends) == 0 {
				t.Fatal("fixture workload has no sends")
			}
			c.mutate(w)
			err := w.Validate()
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestPlanAndHist(t *testing.T) {
	w := Generate(GenConfig{Family: FamilyHRel, Seed: 9, P: 6, M: 3, Steps: 2})
	for step := range w.Steps {
		plan := w.Plan(step)
		if err := sched.CheckPlan(w.P, plan); err != nil {
			t.Fatalf("step %d: Plan invalid: %v", step, err)
		}
		_, n, _ := plan.Flits(w.P)
		hist := w.Hist(step)
		histTotal := 0
		for _, c := range hist {
			histTotal += c
		}
		if histTotal != n {
			t.Fatalf("step %d: hist total %d != plan flits %d", step, histTotal, n)
		}
	}
}

func TestParseFamily(t *testing.T) {
	for _, fam := range Families() {
		if got, err := ParseFamily(string(fam)); err != nil || got != fam {
			t.Fatalf("ParseFamily(%q) = %v, %v", fam, got, err)
		}
	}
	if _, err := ParseFamily("zebra"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestDAGRespectsLayers(t *testing.T) {
	// Every DAG family workload must send only along layer-consecutive
	// edges; indirectly verified by determinism plus the fact that each
	// superstep validates. Here: at least one seed produces actual traffic.
	traffic := 0
	for seed := uint64(0); seed < 20; seed++ {
		w := Generate(GenConfig{Family: FamilyDAG, Seed: seed})
		traffic += w.TotalSends
	}
	if traffic == 0 {
		t.Fatal("20 DAG seeds produced zero sends")
	}
}
