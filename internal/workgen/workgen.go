// Package workgen generates random-but-reproducible workloads for the
// fuzzing subsystem. A workload is an explicit slot-scheduled communication
// pattern — which processor injects which message at which slot in which
// superstep — that the invariant oracles (internal/oracle) can drive through
// the BSP(m)/QSM(m)/PRAM(m) engines and price against the cost models.
//
// Determinism is the load-bearing property: the same (family, seed, config)
// yields a byte-identical workload on every platform and Go version, so a
// failing seed reported by CI reproduces locally and a shrunk counterexample
// checked into testdata/corpus/ replays forever. Following wazero's modgen,
// one seed fans out into independent xrand sub-streams via xrand.Derive —
// one stream per decision axis (shape, slot schedule, injection rates, DAG
// edges) — so that tweaking how one axis consumes randomness does not
// reshuffle every other axis's draws.
package workgen

import (
	"encoding/json"
	"fmt"
	"sort"

	"parbw/internal/bsp"
	"parbw/internal/sched"
	"parbw/internal/work"
	"parbw/internal/work/dagsched"
	"parbw/internal/xrand"
)

// Version is the corpus format version stamped into every workload. Bump it
// when the encoding changes incompatibly; Decode rejects unknown versions.
const Version = 1

// Family names a workload generator family.
type Family string

const (
	// FamilyHRel emits slot-scheduled h-relations: every processor sends a
	// bounded number of messages with uniform destinations, slots packed
	// per-processor with random gaps — the paper's basic routing workload.
	FamilyHRel Family = "hrel"
	// FamilyDAG emits a scheduled computational DAG in the style of BSP DAG
	// scheduling: a random layered DAG of work-carrying nodes is placed onto
	// the processors and lowered to supersteps by work/dagsched, so every
	// message realizes a cross-processor dependency edge and the workload
	// carries the full precedence layer for the oracle to replay.
	FamilyDAG Family = "dag"
	// FamilyBalls emits randomized balls-into-bins injection à la
	// Lenzen–Wattenhofer: senders are uniform, destinations are drawn from a
	// Zipf-skewed bin distribution, modeling contended random allocation.
	FamilyBalls Family = "balls"
)

// Families lists the supported families in stable order.
func Families() []Family { return []Family{FamilyHRel, FamilyDAG, FamilyBalls} }

// ParseFamily validates a family name from a CLI flag or corpus file.
func ParseFamily(s string) (Family, error) {
	f := Family(s)
	for _, known := range Families() {
		if f == known {
			return f, nil
		}
	}
	return "", fmt.Errorf("workgen: unknown family %q (want hrel, dag, or balls)", s)
}

// Hard resource caps enforced by Validate so that adversarial or corrupted
// corpus input cannot allocate an unbounded machine. They alias the work
// IR's caps — the corpus format is a projection of the IR, so the two
// formats bound the same machine sizes.
const (
	MaxP          = work.MaxP
	MaxSteps      = work.MaxSteps
	MaxSendsTotal = work.MaxSendsTotal
	MaxSlot       = work.MaxSlot
	MaxMsgLen     = work.MaxMsgLen
)

// GenConfig sizes a generated workload. The zero value of every field means
// "draw from the shape stream"; pinning a field narrows the family without
// breaking determinism of the remaining axes.
type GenConfig struct {
	Family Family
	Seed   uint64
	P      int     // processors; 0 = draw from [2, 64]
	M      int     // machine bandwidth limit; 0 = draw from [1, P]
	L      int     // latency/periodicity; 0 = draw from [1, 8]
	Steps  int     // supersteps; 0 = draw from [1, 6]
	MaxLen int     // max message flits; 0 = draw from [1, 4]
	Load   float64 // mean sends per processor per superstep; 0 = draw from [0.25, 4]
	Skew   float64 // Zipf exponent for balls destinations; 0 = draw from [0, 2]

	// Adversarial makes the generator corrupt the finished workload in one
	// seed-determined way (negative slot, out-of-range destination,
	// duplicate (slot, proc) entry, negative length, or a lying total), for
	// exercising rejection paths. Corrupted workloads must be rejected by
	// Validate / sched.CheckSlotSchedule with a clean error, never a panic.
	Adversarial bool
}

// Superstep is one communication phase of a workload.
type Superstep struct {
	Sends []sched.SlotSend `json:"sends"`
}

// Workload is a generated, explicitly slot-scheduled communication pattern
// plus the machine shape it targets. Fields are exported and JSON-tagged in
// declaration order; encoding/json preserves that order, making Encode
// byte-stable.
type Workload struct {
	Version int         `json:"version"`
	Family  Family      `json:"family"`
	Seed    uint64      `json:"seed"`
	P       int         `json:"p"`
	M       int         `json:"m"`
	L       int         `json:"l"`
	Steps   []Superstep `json:"steps"`

	// Prec, when present, is the precedence layer of a scheduled DAG
	// workload — the computational DAG the supersteps were lowered from,
	// in the work IR's representation. The oracle's precedence invariant
	// replays it against the sends. omitempty keeps prec-free workloads
	// (hrel, balls, all pre-IR corpus entries) byte-identical.
	Prec *work.Prec `json:"prec,omitempty"`

	// Declared totals, written by the generator. The oracles recompute both
	// from the sends and flag any disagreement, so corruption anywhere in
	// the pipeline (generator bug, shrink bug, corpus rot) is detectable;
	// Validate deliberately does not cross-check them.
	TotalSends int `json:"total_sends"`
	TotalFlits int `json:"total_flits"`
}

// Encode returns the canonical byte encoding of w: compact JSON in struct
// declaration order, terminated by a newline. Identical workloads encode to
// identical bytes.
func (w *Workload) Encode() ([]byte, error) {
	b, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("workgen: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses an encoded workload. It validates only JSON well-formedness
// and the format version; run Validate before driving the workload through
// a machine.
func Decode(data []byte) (*Workload, error) {
	var w Workload
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("workgen: decode: %w", err)
	}
	if w.Version != Version {
		return nil, fmt.Errorf("workgen: unsupported corpus version %d (have %d)", w.Version, Version)
	}
	return &w, nil
}

// Validate checks that the workload is structurally sound and small enough
// to simulate: machine shape in range, step and send counts under the
// resource caps, and every superstep a valid slot schedule per
// sched.CheckSlotSchedule. It never panics, whatever the input.
func (w *Workload) Validate() error {
	if w.Version != Version {
		return fmt.Errorf("workgen: unsupported corpus version %d", w.Version)
	}
	if _, err := ParseFamily(string(w.Family)); err != nil {
		return err
	}
	if w.P < 1 || w.P > MaxP {
		return fmt.Errorf("workgen: p=%d out of range [1, %d]", w.P, MaxP)
	}
	if w.M < 1 || w.M > w.P {
		return fmt.Errorf("workgen: m=%d out of range [1, p=%d]", w.M, w.P)
	}
	// The BSP cost models require L >= 1, so workloads declare at least that.
	if w.L < 1 || w.L > MaxSlot {
		return fmt.Errorf("workgen: l=%d out of range [1, %d]", w.L, MaxSlot)
	}
	if len(w.Steps) > MaxSteps {
		return fmt.Errorf("workgen: %d supersteps exceeds cap %d", len(w.Steps), MaxSteps)
	}
	total := 0
	for si, step := range w.Steps {
		total += len(step.Sends)
		if total > MaxSendsTotal {
			return fmt.Errorf("workgen: more than %d sends total", MaxSendsTotal)
		}
		for _, s := range step.Sends {
			if s.Slot > MaxSlot {
				return fmt.Errorf("workgen: superstep %d: slot %d exceeds cap %d", si, s.Slot, MaxSlot)
			}
			if s.Len > MaxMsgLen {
				return fmt.Errorf("workgen: superstep %d: len %d exceeds cap %d", si, s.Len, MaxMsgLen)
			}
		}
		if err := sched.CheckSlotSchedule(w.P, step.Sends); err != nil {
			return fmt.Errorf("workgen: superstep %d: %w", si, err)
		}
	}
	if err := work.CheckPrec(w.P, len(w.Steps), w.Prec); err != nil {
		return fmt.Errorf("workgen: %w", err)
	}
	return nil
}

// IR lifts the workload into the canonical work IR. The conversion is
// lossless — every send field, the precedence layer, and the declared
// totals (verbatim, even when they lie) carry over — so FromIR(w.IR())
// re-encodes byte-identically to w.
func (w *Workload) IR() *work.IR {
	ir := &work.IR{
		Version: work.Version,
		Family:  string(w.Family),
		Seed:    w.Seed,
		P:       w.P, M: w.M, L: w.L,
		Steps:      make([]work.Step, len(w.Steps)),
		Prec:       w.Prec.Clone(),
		TotalSends: w.TotalSends,
		TotalFlits: w.TotalFlits,
	}
	for si, step := range w.Steps {
		sends := make([]work.Send, len(step.Sends))
		for i, s := range step.Sends {
			sends[i] = work.Send{Proc: s.Proc, Slot: s.Slot, Dst: s.Dst, Len: s.Len}
		}
		ir.Steps[si].Sends = sends
	}
	return ir
}

// FromIR projects an IR into the corpus Workload format. Compute-work
// vectors and message payloads (Tag/A/B/C) do not exist in the corpus
// format and are dropped; sends, precedence layer, and declared totals
// carry over verbatim, so an IR that came from a Workload round-trips
// byte-identically.
func FromIR(ir *work.IR) *Workload {
	w := &Workload{
		Version: Version,
		Family:  Family(ir.Family),
		Seed:    ir.Seed,
		P:       ir.P, M: ir.M, L: ir.L,
		Steps:      make([]Superstep, len(ir.Steps)),
		Prec:       ir.Prec.Clone(),
		TotalSends: ir.TotalSends,
		TotalFlits: ir.TotalFlits,
	}
	for si := range ir.Steps {
		sends := make([]sched.SlotSend, len(ir.Steps[si].Sends))
		for i, s := range ir.Steps[si].Sends {
			sends[i] = sched.SlotSend{Proc: s.Proc, Slot: s.Slot, Dst: s.Dst, Len: s.Len}
		}
		w.Steps[si].Sends = sends
	}
	return w
}

// CountSends returns the actual (sends, flits) totals recomputed from the
// step data, ignoring the declared TotalSends/TotalFlits.
func (w *Workload) CountSends() (sends, flits int) {
	for _, step := range w.Steps {
		sends += len(step.Sends)
		for _, s := range step.Sends {
			flits += s.Flits()
		}
	}
	return sends, flits
}

// Plan converts one superstep into a sched.Plan (rows by processor, slots
// dropped) for the randomized schedulers, which choose their own slots.
func (w *Workload) Plan(step int) sched.Plan {
	plan := make(sched.Plan, w.P)
	for _, s := range w.Steps[step].Sends {
		plan[s.Proc] = append(plan[s.Proc], bsp.Msg{Dst: int32(s.Dst), Len: int32(s.Len)})
	}
	return plan
}

// Hist returns the per-slot injection histogram of one superstep: hist[t] is
// the number of flits entering the network at slot t, the m_t the cost
// models price.
func (w *Workload) Hist(step int) []int {
	maxEnd := 0
	for _, s := range w.Steps[step].Sends {
		if end := s.Slot + s.Flits(); end > maxEnd {
			maxEnd = end
		}
	}
	hist := make([]int, maxEnd)
	for _, s := range w.Steps[step].Sends {
		for f := 0; f < s.Flits(); f++ {
			hist[s.Slot+f]++
		}
	}
	return hist
}

// streams bundles the per-axis random sub-streams. One seed fans out into
// one independent stream per decision axis, so axes never steal each
// other's draws.
type streams struct {
	shape  *xrand.Source // machine and workload dimensions
	slots  *xrand.Source // slot gaps within a processor's schedule
	inject *xrand.Source // who sends how much, message lengths
	edges  *xrand.Source // DAG edges / destination draws
}

func deriveStreams(family Family, seed uint64) streams {
	prefix := "workgen/" + string(family) + "/"
	return streams{
		shape:  xrand.Derive(seed, prefix+"shape"),
		slots:  xrand.Derive(seed, prefix+"slots"),
		inject: xrand.Derive(seed, prefix+"inject"),
		edges:  xrand.Derive(seed, prefix+"edges"),
	}
}

// orDraw returns pinned if positive, otherwise lo + shape draw in [0, hi-lo].
func orDraw(pinned int, rng *xrand.Source, lo, hi int) int {
	if pinned > 0 {
		return pinned
	}
	return lo + rng.Intn(hi-lo+1)
}

// GenerateIR emits the canonical-IR form of the workload for cfg — the
// family frontends build IR directly; the corpus Workload is a projection
// of it (see Generate). Deterministic in (cfg.Family, cfg.Seed, pinned
// fields). Panics only on an invalid GenConfig (unknown family, negative
// pins); everything drawn is in range by construction, and the returned IR
// passes work.IR.Validate.
func GenerateIR(cfg GenConfig) *work.IR {
	if _, err := ParseFamily(string(cfg.Family)); err != nil {
		panic(err)
	}
	if cfg.P < 0 || cfg.P > MaxP || cfg.M < 0 || cfg.L < 0 || cfg.Steps < 0 ||
		cfg.Steps > MaxSteps || cfg.MaxLen < 0 || cfg.MaxLen > MaxMsgLen ||
		cfg.Load < 0 || cfg.Skew < 0 {
		panic(fmt.Sprintf("workgen: invalid GenConfig %+v", cfg))
	}
	st := deriveStreams(cfg.Family, cfg.Seed)

	ir := &work.IR{Version: work.Version, Family: string(cfg.Family), Seed: cfg.Seed}
	ir.P = orDraw(cfg.P, st.shape, 2, 64)
	ir.M = orDraw(cfg.M, st.shape, 1, ir.P)
	if ir.M > ir.P {
		ir.M = ir.P
	}
	ir.L = orDraw(cfg.L, st.shape, 1, 8)
	steps := orDraw(cfg.Steps, st.shape, 1, 6)
	maxLen := orDraw(cfg.MaxLen, st.shape, 1, 4)
	load := cfg.Load
	if load == 0 {
		load = 0.25 + st.shape.Float64()*3.75
	}
	skew := cfg.Skew
	if skew == 0 {
		skew = st.shape.Float64() * 2
	}

	switch cfg.Family {
	case FamilyHRel:
		genHRel(ir, st, steps, maxLen, load)
	case FamilyDAG:
		genDAG(ir, st, steps, maxLen)
	case FamilyBalls:
		genBalls(ir, st, steps, load, skew)
	}

	ir.SealTotals()
	return ir
}

// Generate emits the corpus-format workload for cfg: GenerateIR projected
// through FromIR. The result is deterministic in (cfg.Family, cfg.Seed,
// pinned fields): same inputs, same bytes from Encode. The returned
// workload passes Validate unless cfg.Adversarial is set, in which case it
// is corrupted in one seed-determined way.
func Generate(cfg GenConfig) *Workload {
	w := FromIR(GenerateIR(cfg))
	if cfg.Adversarial {
		corrupt(w, xrand.Derive(cfg.Seed, "workgen/"+string(cfg.Family)+"/corrupt"))
	}
	return w
}

// slotPacker assigns non-overlapping slots within one processor's schedule
// for one superstep: each send starts at the processor's next free slot
// plus a small random gap.
type slotPacker struct {
	next []int
	rng  *xrand.Source
}

func newPacker(p int, rng *xrand.Source) *slotPacker {
	return &slotPacker{next: make([]int, p), rng: rng}
}

func (sp *slotPacker) place(proc, flits int) int {
	slot := sp.next[proc] + sp.rng.Intn(3)
	sp.next[proc] = slot + flits
	return slot
}

func (sp *slotPacker) reset() {
	for i := range sp.next {
		sp.next[i] = 0
	}
}

// capSends keeps the generator under the global send cap however extreme
// the drawn shape is.
func perStepBudget(steps int) int { return MaxSendsTotal / steps }

func genHRel(ir *work.IR, st streams, steps, maxLen int, load float64) {
	pack := newPacker(ir.P, st.slots)
	budget := perStepBudget(steps)
	for t := 0; t < steps; t++ {
		pack.reset()
		var sends []work.Send
		for i := 0; i < ir.P && len(sends) < budget; i++ {
			// Per-processor send count: geometric-ish around the load.
			k := int(load)
			if st.inject.Float64() < load-float64(k) {
				k++
			}
			for j := 0; j < k && len(sends) < budget; j++ {
				l := 1 + st.inject.Intn(maxLen)
				s := work.Send{
					Proc: i,
					Dst:  st.edges.Intn(ir.P),
					Len:  l,
				}
				s.Slot = pack.place(i, s.Flits())
				sends = append(sends, s)
			}
		}
		ir.Steps = append(ir.Steps, work.Step{Sends: sends})
	}
}

func genDAG(ir *work.IR, st streams, steps, maxLen int) {
	// A real layered computational DAG, scheduled: steps+1 levels of drawn
	// width (nodes are units of work, not processors), each non-source node
	// depending on 1..3 uniform predecessors in the previous level with a
	// drawn edge payload. The DAG is placed by dagsched's greedy level
	// scheduler and lowered to supersteps, so every message realizes a
	// cross-processor dependency edge and the precedence layer rides along
	// for the oracle to replay. Widths come from the shape stream, node
	// work and edge lengths from the inject stream, dependency draws from
	// the edges stream — the per-axis stream discipline of the package.
	nLevels := steps + 1
	if nLevels > MaxSteps {
		nLevels = MaxSteps
	}
	d := &dagsched.DAG{}
	levelNodes := make([][]int, nLevels)
	for lv := 0; lv < nLevels && len(d.Nodes) < MaxSendsTotal; lv++ {
		width := 1 + st.shape.Intn(ir.P)
		for k := 0; k < width && len(d.Nodes) < MaxSendsTotal; k++ {
			levelNodes[lv] = append(levelNodes[lv], len(d.Nodes))
			d.Nodes = append(d.Nodes, dagsched.Node{Work: int64(1 + st.inject.Intn(4))})
		}
	}
	for lv := 1; lv < nLevels; lv++ {
		prev := levelNodes[lv-1]
		for _, v := range levelNodes[lv] {
			deps := 1 + st.edges.Intn(3)
			for dd := 0; dd < deps && len(d.Edges) < MaxSendsTotal-1; dd++ {
				u := prev[st.edges.Intn(len(prev))]
				d.Edges = append(d.Edges, dagsched.Edge{U: u, V: v, Len: 1 + st.inject.Intn(maxLen)})
			}
		}
	}
	levels, err := d.Levels()
	if err != nil {
		panic(fmt.Sprintf("workgen: generated DAG not acyclic: %v", err))
	}
	place := dagsched.LevelSchedule(d, levels, ir.P)
	lowered, err := dagsched.Lower(d, levels, place, ir.P, ir.M, ir.L, dagsched.Options{})
	if err != nil {
		panic(fmt.Sprintf("workgen: DAG lowering failed: %v", err))
	}
	ir.Steps = lowered.Steps
	ir.Prec = lowered.Prec
}

func genBalls(ir *work.IR, st streams, steps int, load, skew float64) {
	// n balls per superstep, Zipf-skewed bins as destinations; each ball is
	// a unit message from a uniform sender. A permutation decouples bin
	// rank from processor id so bin 0 is not always processor 0.
	n := int(load * float64(ir.P))
	if n < 1 {
		n = 1
	}
	if b := perStepBudget(steps); n > b {
		n = b
	}
	z := xrand.NewZipf(st.edges, ir.P, skew)
	binOf := st.shape.Perm(ir.P)
	pack := newPacker(ir.P, st.slots)
	for t := 0; t < steps; t++ {
		pack.reset()
		sends := make([]work.Send, 0, n)
		for k := 0; k < n; k++ {
			src := st.inject.Intn(ir.P)
			s := work.Send{
				Proc: src,
				Dst:  binOf[z.Draw()],
				Len:  1,
			}
			s.Slot = pack.place(src, 1)
			sends = append(sends, s)
		}
		sort.Slice(sends, func(a, b int) bool {
			if sends[a].Proc != sends[b].Proc {
				return sends[a].Proc < sends[b].Proc
			}
			return sends[a].Slot < sends[b].Slot
		})
		ir.Steps = append(ir.Steps, work.Step{Sends: sends})
	}
}

// corrupt applies one seed-determined malformation so rejection paths can
// be exercised deterministically. If the workload has no sends it falls
// back to lying about the totals, which is always possible.
func corrupt(w *Workload, rng *xrand.Source) {
	type mutation func() bool // returns false if inapplicable
	pick := func() (int, int, *sched.SlotSend) {
		for si, step := range w.Steps {
			if len(step.Sends) > 0 {
				k := rng.Intn(len(step.Sends))
				return si, k, &w.Steps[si].Sends[k]
			}
		}
		return -1, -1, nil
	}
	muts := []mutation{
		func() bool { // negative slot
			_, _, s := pick()
			if s == nil {
				return false
			}
			s.Slot = -1 - rng.Intn(4)
			return true
		},
		func() bool { // out-of-range destination
			_, _, s := pick()
			if s == nil {
				return false
			}
			s.Dst = w.P + rng.Intn(4)
			return true
		},
		func() bool { // duplicate (slot, proc) entry
			si, _, s := pick()
			if s == nil {
				return false
			}
			w.Steps[si].Sends = append(w.Steps[si].Sends, *s)
			return true
		},
		func() bool { // negative length
			_, _, s := pick()
			if s == nil {
				return false
			}
			s.Len = -1 - rng.Intn(4)
			return true
		},
		func() bool { // lying declared totals
			w.TotalFlits += 1 + rng.Intn(100)
			return true
		},
	}
	i := rng.Intn(len(muts))
	for !muts[i]() {
		i = (i + 1) % len(muts)
	}
}
