package oracle

import (
	"encoding/json"
	"fmt"

	"parbw/internal/workgen"
)

// Entry is one corpus case: a (usually shrunk) workload plus the invariant
// names it is expected to violate when replayed. An empty Violations list
// records a workload that must stay clean forever — the regression shape
// for fixed bugs. Entries are checked into testdata/corpus/ and replayed by
// go test; see Replay.
type Entry struct {
	Note       string            `json:"note,omitempty"`
	Violations []string          `json:"violations"`
	Workload   *workgen.Workload `json:"workload"`
}

// Encode returns the canonical byte encoding of the entry (compact JSON in
// declaration order, newline-terminated), byte-stable like
// workgen.Workload.Encode.
func (e *Entry) Encode() ([]byte, error) {
	if e.Violations == nil {
		e.Violations = []string{}
	}
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("oracle: encode entry: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeEntry parses a corpus entry.
func DecodeEntry(data []byte) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("oracle: decode entry: %w", err)
	}
	if e.Workload == nil {
		return nil, fmt.Errorf("oracle: corpus entry has no workload")
	}
	if e.Workload.Version != workgen.Version {
		return nil, fmt.Errorf("oracle: corpus entry has unsupported workload version %d", e.Workload.Version)
	}
	return &e, nil
}

// Names extracts the unique invariant names from a violation list,
// preserving first-seen order — the form recorded in corpus entries.
func Names(vs []Violation) []string {
	names := []string{}
	seen := map[string]bool{}
	for _, v := range vs {
		if !seen[v.Invariant] {
			seen[v.Invariant] = true
			names = append(names, v.Invariant)
		}
	}
	return names
}

// Replay re-runs the oracles on the entry's workload and returns an error
// if the observed violation set differs from the recorded one — either a
// regression (new violations) or a stale entry (recorded violations no
// longer reproduced).
func Replay(e *Entry) error {
	got := Names(Check(e.Workload))
	want := e.Violations
	if want == nil {
		want = []string{}
	}
	if len(got) != len(want) {
		return fmt.Errorf("oracle: replay: violations %v, entry records %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("oracle: replay: violations %v, entry records %v", got, want)
		}
	}
	return nil
}
