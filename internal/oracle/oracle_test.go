package oracle

import (
	"strings"
	"testing"

	"parbw/internal/work"
	"parbw/internal/work/dagsched"
	"parbw/internal/workgen"
)

func TestGeneratedWorkloadsSatisfyInvariants(t *testing.T) {
	for _, fam := range workgen.Families() {
		for seed := uint64(0); seed < 100; seed++ {
			w := workgen.Generate(workgen.GenConfig{Family: fam, Seed: seed})
			if vs := Check(w); len(vs) != 0 {
				t.Fatalf("%s seed %d: unexpected violations: %+v", fam, seed, vs)
			}
		}
	}
}

func TestCheckDeterministic(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 17})
	a := Check(w)
	b := Check(w)
	if len(a) != len(b) {
		t.Fatalf("violation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInvalidWorkloadReportsValidateOnly(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 3, P: 4})
	w.Steps[0].Sends[0].Dst = 99
	vs := Check(w)
	if len(vs) != 1 || vs[0].Invariant != "workload/validate" {
		t.Fatalf("violations = %+v, want exactly workload/validate", vs)
	}
	if !strings.Contains(vs[0].Detail, "invalid dst") {
		t.Fatalf("detail %q does not name the bad destination", vs[0].Detail)
	}
}

func TestLyingTotalsCaught(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyBalls, Seed: 8})
	w.TotalFlits += 5
	vs := Check(w)
	found := false
	for _, v := range vs {
		if v.Invariant == "workload/conserve" {
			found = true
		}
		if v.Invariant == "sched/conserve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lying totals not caught: %+v", vs)
	}
}

func TestAdversarialWorkloadsNeverPanic(t *testing.T) {
	for _, fam := range workgen.Families() {
		for seed := uint64(0); seed < 100; seed++ {
			w := workgen.Generate(workgen.GenConfig{Family: fam, Seed: seed, Adversarial: true})
			vs := Check(w) // must not panic
			if len(vs) == 0 {
				t.Fatalf("%s seed %d: adversarial workload produced no violation", fam, seed)
			}
			for _, v := range vs {
				if strings.HasPrefix(v.Detail, "panic:") {
					t.Fatalf("%s seed %d: invariant %s panicked: %s", fam, seed, v.Invariant, v.Detail)
				}
			}
		}
	}
}

func TestBreakForTestHook(t *testing.T) {
	BreakForTest = "workload/conserve"
	defer func() { BreakForTest = "" }()
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 1})
	if w.TotalFlits == 0 {
		t.Skip("seed produced an empty workload")
	}
	vs := Check(w)
	names := Names(vs)
	if len(names) != 1 || names[0] != "workload/conserve" {
		t.Fatalf("broken oracle reported %v, want exactly workload/conserve", names)
	}
}

// dagWorkload generates a dag-family workload that actually carries a
// precedence layer and at least one cross-processor send.
func dagWorkload(t *testing.T) *workgen.Workload {
	t.Helper()
	for seed := uint64(0); seed < 50; seed++ {
		w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyDAG, Seed: seed, P: 4, Steps: 3})
		if w.Prec != nil && w.TotalSends > 0 {
			return w
		}
	}
	t.Fatal("no dag seed under 50 produced cross-processor traffic")
	return nil
}

func TestPrecedenceInvariantPassesOnLoweredDAGs(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyDAG, Seed: seed})
		if w.Prec == nil {
			t.Fatalf("seed %d: dag workload carries no precedence layer", seed)
		}
		if vs := Check(w); len(vs) != 0 {
			t.Fatalf("seed %d: violations on lowered DAG: %+v", seed, vs)
		}
	}
}

func TestPrecedenceInvariantCatchesDroppedSend(t *testing.T) {
	w := dagWorkload(t)
	// Drop every send of the first superstep that carries one: some
	// dependency edge loses its message.
	for si := range w.Steps {
		if len(w.Steps[si].Sends) > 0 {
			w.Steps[si].Sends = nil
			break
		}
	}
	w.TotalSends, w.TotalFlits = w.CountSends() // keep conserve quiet
	names := Names(Check(w))
	found := false
	for _, n := range names {
		if n == "workload/precedence" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped dependency message not caught: %v", names)
	}
}

func TestPrecedenceInvariantCatchesMisphasedSend(t *testing.T) {
	// A two-node chain across processors where the message is sent in the
	// superstep AFTER the consumer computes — wrong phase, must be flagged.
	ir := &work.IR{Version: work.Version, Family: "dag", P: 2, M: 1, L: 1,
		Steps: []work.Step{
			{}, // the edge's window [0, 1) — empty
			{Sends: []work.Send{{Proc: 0, Slot: 0, Dst: 1}}}, // too late
		},
		Prec: &work.Prec{Proc: []int{0, 1}, Step: []int{0, 1}, Edges: [][2]int{{0, 1}}},
	}
	ir.SealTotals()
	names := Names(CheckIR(ir))
	if len(names) != 1 || names[0] != "workload/precedence" {
		t.Fatalf("mis-phased dependency message reported %v, want exactly workload/precedence", names)
	}
}

func TestCheckIRAcceptsDagschedLowerings(t *testing.T) {
	// Both placement policies, batched and not, must satisfy every
	// invariant — Lower's conformance contract.
	d := &dagsched.DAG{
		Nodes: make([]dagsched.Node, 12),
		Edges: []dagsched.Edge{
			{U: 0, V: 4, Len: 2}, {U: 1, V: 4}, {U: 1, V: 5}, {U: 2, V: 6, Len: 3},
			{U: 3, V: 7}, {U: 4, V: 8, Len: 2}, {U: 5, V: 9}, {U: 6, V: 10},
			{U: 7, V: 11}, {U: 4, V: 9}, {U: 5, V: 8},
		},
	}
	for i := range d.Nodes {
		d.Nodes[i].Work = int64(1 + i%3)
	}
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		place dagsched.Placement
		batch bool
	}{
		{"greedy", dagsched.LevelSchedule(d, levels, 4), false},
		{"greedy-batched", dagsched.LevelSchedule(d, levels, 4), true},
		{"comm-aware", dagsched.CommAwareSchedule(d, levels, 4, 2), false},
		{"comm-aware-batched", dagsched.CommAwareSchedule(d, levels, 4, 2), true},
	} {
		ir, err := dagsched.Lower(d, levels, tc.place, 4, 2, 1, dagsched.Options{Batch: tc.batch})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if vs := CheckIR(ir); len(vs) != 0 {
			t.Fatalf("%s: violations: %+v", tc.name, vs)
		}
	}
}

func TestInvariantsListMatchesCheck(t *testing.T) {
	// Every name Check can emit is in Invariants(); spot-check via the
	// validate and conserve paths.
	listed := map[string]bool{}
	for _, n := range Invariants() {
		listed[n] = true
	}
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 3, P: 4})
	w.Steps[0].Sends[0].Dst = 99
	for _, v := range Check(w) {
		if !listed[v.Invariant] {
			t.Fatalf("Check emitted unlisted invariant %q", v.Invariant)
		}
	}
}

func TestCorpusEntryRoundTrip(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyDAG, Seed: 5})
	e := &Entry{Note: "clean dag workload", Violations: []string{}, Workload: w}
	enc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", enc, enc2)
	}
	if err := Replay(back); err != nil {
		t.Fatalf("clean entry failed replay: %v", err)
	}
}

func TestReplayDetectsDrift(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 2})
	e := &Entry{Violations: []string{"workload/conserve"}, Workload: w}
	if err := Replay(e); err == nil {
		t.Fatal("stale entry (recorded violation no longer reproduced) passed replay")
	}
	w.TotalFlits++
	clean := &Entry{Violations: []string{}, Workload: w}
	if err := Replay(clean); err == nil {
		t.Fatal("regressed entry (new violation) passed replay")
	}
}

func TestDecodeEntryRejects(t *testing.T) {
	if _, err := DecodeEntry([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeEntry([]byte(`{"violations":[]}`)); err == nil {
		t.Fatal("entry without workload accepted")
	}
}
