package oracle

import (
	"strings"
	"testing"

	"parbw/internal/workgen"
)

func TestGeneratedWorkloadsSatisfyInvariants(t *testing.T) {
	for _, fam := range workgen.Families() {
		for seed := uint64(0); seed < 100; seed++ {
			w := workgen.Generate(workgen.GenConfig{Family: fam, Seed: seed})
			if vs := Check(w); len(vs) != 0 {
				t.Fatalf("%s seed %d: unexpected violations: %+v", fam, seed, vs)
			}
		}
	}
}

func TestCheckDeterministic(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 17})
	a := Check(w)
	b := Check(w)
	if len(a) != len(b) {
		t.Fatalf("violation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInvalidWorkloadReportsValidateOnly(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 3, P: 4})
	w.Steps[0].Sends[0].Dst = 99
	vs := Check(w)
	if len(vs) != 1 || vs[0].Invariant != "workload/validate" {
		t.Fatalf("violations = %+v, want exactly workload/validate", vs)
	}
	if !strings.Contains(vs[0].Detail, "invalid dst") {
		t.Fatalf("detail %q does not name the bad destination", vs[0].Detail)
	}
}

func TestLyingTotalsCaught(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyBalls, Seed: 8})
	w.TotalFlits += 5
	vs := Check(w)
	found := false
	for _, v := range vs {
		if v.Invariant == "workload/conserve" {
			found = true
		}
		if v.Invariant == "sched/conserve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lying totals not caught: %+v", vs)
	}
}

func TestAdversarialWorkloadsNeverPanic(t *testing.T) {
	for _, fam := range workgen.Families() {
		for seed := uint64(0); seed < 100; seed++ {
			w := workgen.Generate(workgen.GenConfig{Family: fam, Seed: seed, Adversarial: true})
			vs := Check(w) // must not panic
			if len(vs) == 0 {
				t.Fatalf("%s seed %d: adversarial workload produced no violation", fam, seed)
			}
			for _, v := range vs {
				if strings.HasPrefix(v.Detail, "panic:") {
					t.Fatalf("%s seed %d: invariant %s panicked: %s", fam, seed, v.Invariant, v.Detail)
				}
			}
		}
	}
}

func TestBreakForTestHook(t *testing.T) {
	BreakForTest = "workload/conserve"
	defer func() { BreakForTest = "" }()
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 1})
	if w.TotalFlits == 0 {
		t.Skip("seed produced an empty workload")
	}
	vs := Check(w)
	names := Names(vs)
	if len(names) != 1 || names[0] != "workload/conserve" {
		t.Fatalf("broken oracle reported %v, want exactly workload/conserve", names)
	}
}

func TestInvariantsListMatchesCheck(t *testing.T) {
	// Every name Check can emit is in Invariants(); spot-check via the
	// validate and conserve paths.
	listed := map[string]bool{}
	for _, n := range Invariants() {
		listed[n] = true
	}
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 3, P: 4})
	w.Steps[0].Sends[0].Dst = 99
	for _, v := range Check(w) {
		if !listed[v.Invariant] {
			t.Fatalf("Check emitted unlisted invariant %q", v.Invariant)
		}
	}
}

func TestCorpusEntryRoundTrip(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyDAG, Seed: 5})
	e := &Entry{Note: "clean dag workload", Violations: []string{}, Workload: w}
	enc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", enc, enc2)
	}
	if err := Replay(back); err != nil {
		t.Fatalf("clean entry failed replay: %v", err)
	}
}

func TestReplayDetectsDrift(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 2})
	e := &Entry{Violations: []string{"workload/conserve"}, Workload: w}
	if err := Replay(e); err == nil {
		t.Fatal("stale entry (recorded violation no longer reproduced) passed replay")
	}
	w.TotalFlits++
	clean := &Entry{Violations: []string{}, Workload: w}
	if err := Replay(clean); err == nil {
		t.Fatal("regressed entry (new violation) passed replay")
	}
}

func TestDecodeEntryRejects(t *testing.T) {
	if _, err := DecodeEntry([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeEntry([]byte(`{"violations":[]}`)); err == nil {
		t.Fatal("entry without workload accepted")
	}
}
