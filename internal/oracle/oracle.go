// Package oracle states the cost-model invariants the paper implies as
// machine-checkable predicates over generated workloads (internal/workgen).
// Each invariant drives the workload through real machines or prices it with
// the real cost models and reports a Violation when the property fails; a
// fuzzing run is simply Check over many seeds.
//
// The invariants are deterministic: they use fixed-seed machines with one
// worker, so a violation found on any host reproduces bit-identically on
// every other. Probabilistic claims from the paper (the w.h.p. (1+ε) bound
// of Theorem 6.2) are encoded as their deterministic surrogates — bounds
// that hold for every random phase choice, derived in the sched/* checks
// below — so a single failing seed is always a true counterexample, never
// bad luck.
package oracle

import (
	"fmt"
	"math"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/qsm"
	"parbw/internal/sched"
	"parbw/internal/workgen"
)

// Violation is one failed invariant. Detail is deterministic — derived only
// from the workload and the machines' accounting — so fuzzing output is
// byte-stable across runs.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// BreakForTest, when set to an invariant name, deliberately corrupts that
// invariant's comparison so the fuzz → shrink → corpus pipeline can be
// exercised end to end against a known-bad oracle. Only
// "workload/conserve" is supported: the check then fails for every workload
// that carries at least one flit, which ddmin must shrink to a single
// one-send superstep. Never set outside tests.
var BreakForTest string

// Invariants lists every invariant name Check can emit, in check order.
func Invariants() []string {
	return []string{
		"workload/validate",
		"workload/conserve",
		"conformance/ground-truth",
		"pricing/bsp-qsm",
		"pricing/monotone-overload",
		"pricing/monotone-m",
		"sched/conserve",
		"sched/period",
		"sched/offline",
		"sched/bounded-cost",
	}
}

// Check runs every invariant against w and returns the violations in check
// order (nil if the workload satisfies all of them). Structurally invalid
// workloads report only workload/validate: the remaining invariants assume
// a well-formed workload and are skipped rather than run into engine
// panics. Check itself never panics — a panicking invariant is converted
// into a violation recording the panic value.
func Check(w *workgen.Workload) []Violation {
	var out []Violation
	report := func(invariant, format string, args ...any) {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	if err := w.Validate(); err != nil {
		report("workload/validate", "%v", err)
		return out
	}
	checks := []struct {
		name string
		fn   func(*workgen.Workload, func(string, ...any))
	}{
		{"workload/conserve", checkConserve},
		{"conformance/ground-truth", checkGroundTruth},
		{"pricing/bsp-qsm", checkBSPQSMPricing},
		{"pricing/monotone-overload", checkMonotoneOverload},
		{"pricing/monotone-m", checkMonotoneM},
		{"sched/conserve", checkSchedConserve},
		{"sched/period", checkSchedPeriod},
		{"sched/offline", checkSchedOffline},
		{"sched/bounded-cost", checkSchedBoundedCost},
	}
	for _, c := range checks {
		func() {
			defer func() {
				if r := recover(); r != nil {
					report(c.name, "panic: %v", r)
				}
			}()
			c.fn(w, func(format string, args ...any) { report(c.name, format, args...) })
		}()
	}
	return out
}

// checkConserve: the declared totals equal the totals recomputed from the
// step data. Any stage that rewrites a workload (generator, shrinker,
// corpus round trip) must preserve this.
func checkConserve(w *workgen.Workload, fail func(string, ...any)) {
	sends, flits := w.CountSends()
	if BreakForTest == "workload/conserve" && flits > 0 {
		flits++ // deliberate corruption; see BreakForTest
	}
	if sends != w.TotalSends || flits != w.TotalFlits {
		fail("declared totals (sends=%d, flits=%d) != actual (sends=%d, flits=%d)",
			w.TotalSends, w.TotalFlits, sends, flits)
	}
}

// expected computes one superstep's ground-truth accounting directly from
// the sends: total flits, steps spanned, and the per-slot histogram.
func expected(w *workgen.Workload, step int) (n, steps, maxSlot int, hist []int) {
	hist = w.Hist(step)
	steps = len(hist)
	for _, mt := range hist {
		n += mt
		if mt > maxSlot {
			maxSlot = mt
		}
	}
	return n, steps, maxSlot, hist
}

// driveBSP replays one superstep of the workload on a fresh BSP(m) machine
// under the given cost model and returns the superstep stats.
func driveBSP(w *workgen.Workload, step int, cost model.Cost) bsp.Stats {
	m := bsp.New(bsp.Config{P: w.P, Cost: cost, Seed: w.Seed, Workers: 1})
	return m.Superstep(func(c *bsp.Ctx) {
		for _, s := range w.Steps[step].Sends {
			if s.Proc != c.ID() {
				continue
			}
			c.SendAt(s.Slot, s.Dst, bsp.Msg{Dst: int32(s.Dst), Len: int32(s.Len)})
		}
	})
}

// checkGroundTruth: the BSP engine's accounting of every superstep matches
// the ground truth computed directly from the sends (N = Σ flits,
// Steps = max slot end, MaxSlot = histogram peak), and the PRAM machine
// replaying slot t as lock-step step t reproduces the histogram per step.
func checkGroundTruth(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		wantN, wantSteps, wantMaxSlot, hist := expected(w, step)
		st := driveBSP(w, step, model.BSPm(w.M, w.L))
		if st.N != wantN {
			fail("superstep %d: bsp N = %d, want Σ flits = %d", step, st.N, wantN)
		}
		if st.Steps != wantSteps {
			fail("superstep %d: bsp Steps = %d, want max slot end = %d", step, st.Steps, wantSteps)
		}
		if st.MaxSlot != wantMaxSlot {
			fail("superstep %d: bsp MaxSlot = %d, want hist peak = %d", step, st.MaxSlot, wantMaxSlot)
		}

		pm := pram.New(pram.Config{P: w.P, Mem: w.P, Mode: pram.CRCWArbitrary, Seed: w.Seed})
		total := 0
		for t := 0; t < wantSteps; t++ {
			pst := pm.Step(func(c *pram.Ctx) {
				for _, s := range w.Steps[step].Sends {
					if s.Proc != c.ID() {
						continue
					}
					for f := 0; f < s.Flits(); f++ {
						if s.Slot+f == t {
							c.Write(s.Dst, int64(s.Proc))
						}
					}
				}
			})
			if pst.Writes != hist[t] {
				fail("superstep %d: pram step %d writes = %d, want hist %d", step, t, pst.Writes, hist[t])
			}
			total += pst.Writes
		}
		if total != wantN {
			fail("superstep %d: pram total writes = %d, want %d", step, total, wantN)
		}
	}
}

// checkBSPQSMPricing: BSP(m) and QSM(m) price identical slot histograms
// identically — same c_m, same overload count — when each flit of the
// message workload is replayed as a unit shared-memory request in the same
// slot. This is the paper's BSP ≡ QSM pricing equivalence.
func checkBSPQSMPricing(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		wantN, _, _, _ := expected(w, step)
		bst := driveBSP(w, step, model.BSPm(w.M, w.L))
		qm := qsm.New(qsm.Config{P: w.P, Mem: w.P, Cost: model.QSMm(w.M), Seed: w.Seed, Workers: 1})
		qst := qm.Phase(func(c *qsm.Ctx) {
			for _, s := range w.Steps[step].Sends {
				if s.Proc != c.ID() {
					continue
				}
				for f := 0; f < s.Flits(); f++ {
					c.WriteAt(s.Slot+f, s.Dst, int64(s.Proc))
				}
			}
		})
		if got := qst.Reads + qst.Writes; got != wantN {
			fail("superstep %d: qsm requests = %d, want %d", step, got, wantN)
		}
		if bst.CM != qst.CM {
			fail("superstep %d: c_m diverges: bsp %v vs qsm %v", step, bst.CM, qst.CM)
		}
		if bst.Overload != qst.Overload {
			fail("superstep %d: overload diverges: bsp %d vs qsm %d", step, bst.Overload, qst.Overload)
		}
		if bst.Steps != qst.Steps || bst.MaxSlot != qst.MaxSlot {
			fail("superstep %d: slot accounting diverges: bsp (%d, %d) vs qsm (%d, %d)",
				step, bst.Steps, bst.MaxSlot, qst.Steps, qst.MaxSlot)
		}
	}
}

// checkMonotoneOverload: c_m never decreases when one more flit is injected
// into an already-busiest slot, under both the linear and the exponential
// penalty. Overloading a step can only cost more.
func checkMonotoneOverload(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		_, _, _, hist := expected(w, step)
		if len(hist) == 0 {
			continue
		}
		busiest := 0
		for t, mt := range hist {
			if mt > hist[busiest] {
				busiest = t
			}
		}
		worse := append([]int(nil), hist...)
		worse[busiest]++
		for _, pen := range []struct {
			name string
			f    model.Penalty
		}{{"linear", model.LinearPenalty}, {"exp", model.ExpPenalty}} {
			c := model.Cost{Kind: model.KindBSPm, M: w.M, L: w.L, Penalty: pen.f}
			before, after := c.CM(hist), c.CM(worse)
			if after < before {
				fail("superstep %d: %s c_m decreased under extra load: %v -> %v",
					step, pen.name, before, after)
			}
		}
	}
}

// checkMonotoneM: c_m never increases when the aggregate bandwidth m grows
// — a better network cannot price the same histogram higher. This is the
// monotonicity-in-machine-size half of the paper's separation arguments.
func checkMonotoneM(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		_, _, _, hist := expected(w, step)
		for _, pen := range []struct {
			name string
			f    model.Penalty
		}{{"linear", model.LinearPenalty}, {"exp", model.ExpPenalty}} {
			small := model.Cost{Kind: model.KindBSPm, M: w.M, L: w.L, Penalty: pen.f}
			big := model.Cost{Kind: model.KindBSPm, M: w.M + 1, L: w.L, Penalty: pen.f}
			cs, cb := small.CM(hist), big.CM(hist)
			if cb > cs {
				fail("superstep %d: %s c_m increased with bandwidth: m=%d cost %v < m=%d cost %v",
					step, pen.name, w.M, cs, w.M+1, cb)
			}
		}
	}
}

// planFor compiles one superstep into a validated scheduler plan, its flit
// totals, and ℓ̂. ok is false for a superstep with no flits, which the
// sched/* invariants skip (the schedulers would run the learn-n collective
// and the bounds below assume KnownN).
func planFor(w *workgen.Workload, step int) (plan sched.Plan, flits, xbar, lhat int, ok bool) {
	plan = w.Plan(step)
	if err := sched.CheckPlan(w.P, plan); err != nil {
		panic(err) // unreachable after Validate; surfaced as a panic violation
	}
	x, n, _ := plan.Flits(w.P)
	for _, xi := range x {
		if xi > xbar {
			xbar = xi
		}
	}
	return plan, n, xbar, plan.MaxLen(), n > 0
}

// checkSchedConserve: the compiled scheduler plan conserves flits — the
// sending superstep injects exactly the flits the workload declares, no
// duplication, no loss — and the per-step totals sum to the declared
// workload total.
func checkSchedConserve(w *workgen.Workload, fail func(string, ...any)) {
	sum := 0
	for step := range w.Steps {
		plan, flits, _, _, ok := planFor(w, step)
		sum += flits
		if !ok {
			continue
		}
		m := bsp.New(bsp.Config{P: w.P, Cost: model.BSPm(w.M, w.L), Seed: w.Seed, Workers: 1})
		r := sched.UnbalancedSend(m, plan, sched.Options{KnownN: flits})
		if r.N != flits {
			fail("superstep %d: scheduler sent %d flits, plan declares %d", step, r.N, flits)
		}
		if r.Send.N != flits {
			fail("superstep %d: engine counted %d flits, plan declares %d", step, r.Send.N, flits)
		}
	}
	if sum != w.TotalFlits {
		fail("per-step plan flits sum to %d, workload declares %d", sum, w.TotalFlits)
	}
}

// checkSchedPeriod: Unbalanced-Send's sending superstep spans at most
// max(T + ℓ̂ - 1, x̄) injection steps, for every random phase choice: a
// non-overloaded processor starts each message at (j + off) mod T ≤ T-1 and
// a message runs at most ℓ̂ slots past its start; an overloaded processor
// (x_i > T) sends consecutively from slot 0 and finishes by x̄. This is the
// deterministic core of Theorem 6.2's completion bound.
func checkSchedPeriod(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		plan, flits, xbar, lhat, ok := planFor(w, step)
		if !ok {
			continue
		}
		m := bsp.New(bsp.Config{P: w.P, Cost: model.BSPm(w.M, w.L), Seed: w.Seed, Workers: 1})
		r := sched.UnbalancedSend(m, plan, sched.Options{KnownN: flits})
		bound := r.Period + lhat - 1
		if xbar > bound {
			bound = xbar
		}
		if r.Send.Steps > bound {
			fail("superstep %d: scheduler spans %d steps > bound max(T+ℓ̂-1, x̄) = %d (T=%d, ℓ̂=%d, x̄=%d)",
				step, r.Send.Steps, bound, r.Period, lhat, xbar)
		}
	}
}

// checkSchedOffline: for unit-length workloads the offline schedule is
// perfect — rank k goes to slot k mod T with T = max(⌈n/m⌉, x̄), so no slot
// carries more than ⌈n/T⌉ ≤ m flits and no step is overloaded. Multi-flit
// messages are skipped: straight-through long messages may legitimately
// collide.
func checkSchedOffline(w *workgen.Workload, fail func(string, ...any)) {
	for step := range w.Steps {
		unit := true
		for _, s := range w.Steps[step].Sends {
			if s.Flits() > 1 {
				unit = false
				break
			}
		}
		if !unit {
			continue
		}
		plan, flits, _, _, ok := planFor(w, step)
		if !ok {
			continue
		}
		m := bsp.New(bsp.Config{P: w.P, Cost: model.BSPm(w.M, w.L), Seed: w.Seed, Workers: 1})
		r := sched.OfflineSend(m, plan)
		_ = flits
		if r.Send.Overload != 0 {
			fail("superstep %d: offline schedule overloaded %d steps", step, r.Send.Overload)
		}
		if r.Send.MaxSlot > w.M {
			fail("superstep %d: offline schedule peak %d exceeds m=%d", step, r.Send.MaxSlot, w.M)
		}
	}
}

// checkSchedBoundedCost: under the linear penalty with n known, the
// scheduled superstep's cost is deterministically bounded — the surrogate
// for Theorem 6.2's "(1+ε) of optimal w.h.p." claim that holds for every
// phase choice. Cost = max(h, c_m, L); h ≤ max(x̄, ȳ) and linear c_m charges
// at most 1 + m_t/m per busy step, so
//
//	Cost ≤ max(x̄, ȳ, L, Steps + n/m) ≤ (2+ε)·Opt + ℓ̂ + 1
//
// with Opt = max(⌈n/m⌉, x̄, ȳ, L) the offline bound, since
// Steps ≤ max(T+ℓ̂-1, x̄) and T ≤ (1+ε)n/m + 1. Both inequalities are
// checked.
func checkSchedBoundedCost(w *workgen.Workload, fail func(string, ...any)) {
	const eps = 0.25
	for step := range w.Steps {
		plan, flits, xbar, lhat, ok := planFor(w, step)
		if !ok {
			continue
		}
		m := bsp.New(bsp.Config{P: w.P, Cost: model.BSPmLinear(w.M, w.L), Seed: w.Seed, Workers: 1})
		r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps, KnownN: flits})
		_, _, y := plan.Flits(w.P)
		ybar := 0
		for _, yi := range y {
			if yi > ybar {
				ybar = yi
			}
		}
		tight := math.Max(math.Max(float64(xbar), float64(ybar)),
			math.Max(float64(w.L), float64(r.Send.Steps)+float64(flits)/float64(w.M)))
		if r.Send.Cost > tight+1e-9 {
			fail("superstep %d: scheduled cost %v exceeds max(x̄, ȳ, L, Steps+n/m) = %v",
				step, r.Send.Cost, tight)
		}
		opt := r.OptimalOffline(w.M, w.L)
		loose := (2+eps)*opt + float64(lhat) + 1
		if r.Send.Cost > loose+1e-9 {
			fail("superstep %d: scheduled cost %v exceeds (2+ε)·Opt + ℓ̂ + 1 = %v (Opt=%v)",
				step, r.Send.Cost, loose, opt)
		}
	}
}
