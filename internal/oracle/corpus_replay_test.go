package oracle

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parbw/internal/sched"
	"parbw/internal/shrink"
	"parbw/internal/work"
	"parbw/internal/workgen"
)

// corpusDir is the checked-in corpus replayed on every go test run.
const corpusDir = "testdata/corpus"

// corpusEntries builds the canonical corpus: small clean workloads from
// every generator family (regression shape — these must stay clean
// forever) plus failing counterexamples with their recorded violation
// sets, including one produced by actually running the ddmin shrinker.
// Regenerate the files with:
//
//	REGEN_CORPUS=1 go test -run TestRegenCorpus ./internal/oracle
func corpusEntries() map[string]*Entry {
	entries := map[string]*Entry{}
	pins := workgen.GenConfig{P: 4, M: 2, L: 1, Steps: 2}
	for _, fam := range workgen.Families() {
		cfg := pins
		cfg.Family = fam
		cfg.Seed = 7
		w := workgen.Generate(cfg)
		entries["clean-"+string(fam)+".json"] = &Entry{
			Note:       "generated " + string(fam) + " workload, all oracles clean",
			Violations: Names(Check(w)),
			Workload:   w,
		}
	}

	// A lying-totals workload run through the real shrinker: the minimal
	// counterexample is the empty workload whose declared totals are off.
	lying := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyBalls, Seed: 4})
	lying.TotalFlits += 7
	want := Names(Check(lying))
	res := shrink.Minimize(lying, func(c *workgen.Workload) bool {
		got := Names(Check(c))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, shrink.Options{})
	entries["shrunk-lying-totals.json"] = &Entry{
		Note:       "ddmin-shrunk counterexample: declared totals disagree with the (empty) schedule",
		Violations: want,
		Workload:   res.Workload,
	}

	// A structurally invalid workload: destination outside the machine.
	bad := &workgen.Workload{
		Version: workgen.Version, Family: workgen.FamilyHRel, Seed: 0,
		P: 1, M: 1, L: 1,
		Steps:      []workgen.Superstep{{Sends: []sched.SlotSend{{Proc: 0, Slot: 0, Dst: 2}}}},
		TotalSends: 1, TotalFlits: 1,
	}
	entries["invalid-dst.json"] = &Entry{
		Note:       "send to a destination outside the machine",
		Violations: Names(Check(bad)),
		Workload:   bad,
	}

	// A scheduled DAG workload whose lowering dropped a dependency message:
	// the precedence layer demands a send 0 → 1 in superstep 0, but the
	// schedule carries none — the workload/precedence invariant's shape.
	missed := &workgen.Workload{
		Version: workgen.Version, Family: workgen.FamilyDAG, Seed: 0,
		P: 2, M: 1, L: 1,
		Steps: []workgen.Superstep{{Sends: []sched.SlotSend{}}},
		Prec:  &work.Prec{Proc: []int{0, 1}, Step: []int{0, 1}, Edges: [][2]int{{0, 1}}},
	}
	entries["missed-dependency.json"] = &Entry{
		Note:       "lowered DAG schedule missing a cross-processor dependency message",
		Violations: Names(Check(missed)),
		Workload:   missed,
	}
	return entries
}

// TestRegenCorpus rewrites testdata/corpus when REGEN_CORPUS=1 is set; by
// default it only asserts the checked-in files match what the current code
// would generate, so corpus drift is caught rather than silently shipped.
func TestRegenCorpus(t *testing.T) {
	for name, e := range corpusEntries() {
		data, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(corpusDir, name)
		if os.Getenv("REGEN_CORPUS") == "1" {
			if err := os.MkdirAll(corpusDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (REGEN_CORPUS=1 go test -run TestRegenCorpus ./internal/oracle to regenerate)", name, err)
		}
		if string(got) != string(data) {
			t.Errorf("%s: checked-in entry differs from regenerated entry", name)
		}
	}
}

// TestCorpusReplay replays every checked-in corpus entry: the oracles must
// reproduce exactly the recorded violation set, and every entry must
// round-trip byte-identically through decode/encode.
func TestCorpusReplay(t *testing.T) {
	files, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, fi := range files {
		if !strings.HasSuffix(fi.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(corpusDir, fi.Name()))
		if err != nil {
			t.Fatal(err)
		}
		e, err := DecodeEntry(data)
		if err != nil {
			t.Fatalf("%s: %v", fi.Name(), err)
		}
		enc, err := e.Encode()
		if err != nil {
			t.Fatalf("%s: %v", fi.Name(), err)
		}
		if string(enc) != string(data) {
			t.Errorf("%s: decode/encode round trip changed bytes", fi.Name())
		}
		if err := Replay(e); err != nil {
			t.Errorf("%s: %v", fi.Name(), err)
		}

		// The IR converters must be lossless on every corpus entry —
		// including invalid and lying-totals ones: Workload → IR → Workload
		// re-encodes byte-identically, and the oracle reaches the same
		// verdict through either representation.
		back := workgen.FromIR(e.Workload.IR())
		b1, err := e.Workload.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s: Workload -> IR -> Workload changed bytes:\n%s%s", fi.Name(), b1, b2)
		}
		irNames := Names(CheckIR(e.Workload.IR()))
		wNames := Names(Check(e.Workload))
		if len(irNames) != len(wNames) {
			t.Errorf("%s: CheckIR names %v != Check names %v", fi.Name(), irNames, wNames)
		} else {
			for i := range wNames {
				if irNames[i] != wNames[i] {
					t.Errorf("%s: CheckIR names %v != Check names %v", fi.Name(), irNames, wNames)
					break
				}
			}
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("corpus is empty")
	}
}
