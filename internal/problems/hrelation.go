package problems

import (
	"fmt"

	"parbw/internal/pram"
)

// HRelation realization on a CRCW PRAM in O(h) time (Section 4.1).
//
// The paper's lower-bound conversion from the CRCW PRAM to the BSP(g) rests
// on the fact that an h-relation (every processor sends and receives at most
// h messages) can be realized on an Arbitrary-CRCW PRAM in O(h) steps. This
// file implements the contention-resolution variant of the Section 4.1
// construction: in each round every processor with a pending message writes
// it (concurrently, Arbitrary winner) to its destination's slot cell; the
// destination reads the winning message and acknowledges the winner, which
// advances to its next message; the losers simply retry. Every contended
// destination absorbs one message per round, so the number of rounds is at
// most x̄ + ȳ <= 2h, and each round is three PRAM steps.

// HRelationMsg is one message of an h-relation instance.
type HRelationMsg struct {
	Dst int
	Val int64
}

// packHR packs (src, val) into one cell; val must fit 40 bits.
func packHR(src int, val int64) int64 {
	return int64(src)<<40 | (val & ((1 << 40) - 1))
}

func unpackHR(v int64) (src int, val int64) {
	return int(v >> 40), v & ((1 << 40) - 1)
}

// HRelationCRCW delivers the given messages on an Arbitrary-CRCW machine
// with at least 2p shared cells, returning the messages received by each
// processor (in arrival order) and the number of contention rounds used.
// Values must be non-negative and fit in 40 bits; processor indices in 23.
func HRelationCRCW(m *pram.Machine, plan [][]HRelationMsg) ([][]HRelationMsg, int) {
	if m.Mode() != pram.CRCWArbitrary {
		panic("problems: HRelationCRCW needs an Arbitrary-CRCW machine")
	}
	p := m.P()
	if len(plan) != p {
		panic("problems: plan size mismatch")
	}
	if m.Mem() < 2*p {
		panic("problems: HRelationCRCW needs Mem >= 2p")
	}
	pending := 0
	for i, msgs := range plan {
		for _, msg := range msgs {
			if msg.Dst < 0 || msg.Dst >= p {
				panic(fmt.Sprintf("problems: proc %d message to invalid dst %d", i, msg.Dst))
			}
			if msg.Val < 0 || msg.Val >= 1<<40 {
				panic("problems: value out of 40-bit range")
			}
			pending++
		}
	}
	// Cell layout: slot cell of dst d at 2d (pending message), ack cell at
	// 2d+1 (src of the last absorbed message, +1 so 0 means none).
	next := make([]int, p) // index of each sender's next unsent message
	out := make([][]HRelationMsg, p)
	lastSeen := make([]int64, p) // last slot value absorbed by each dst
	rounds := 0
	total := pending
	for pending > 0 {
		rounds++
		if rounds > 2*total+5 {
			panic("problems: h-relation failed to converge")
		}
		// Step 1: contenders write their current message to the slot cell.
		m.Step(func(c *pram.Ctx) {
			i := c.ID()
			if next[i] < len(plan[i]) {
				msg := plan[i][next[i]]
				c.Write(2*msg.Dst, packHR(i, msg.Val)+1) // +1 so 0 = empty
			}
		})
		// Step 2: destinations read their slot and publish the winner.
		m.Step(func(c *pram.Ctx) {
			d := c.ID()
			v := c.Read(2 * d)
			if v != 0 {
				lastSeen[d] = v
				src, _ := unpackHR(v - 1)
				c.Write(2*d+1, int64(src)+1)
			}
		})
		// Step 3: contenders read the ack; the winner advances.
		won := make([]bool, p)
		m.Step(func(c *pram.Ctx) {
			i := c.ID()
			if next[i] < len(plan[i]) {
				msg := plan[i][next[i]]
				if c.Read(2*msg.Dst+1) == int64(i)+1 {
					won[i] = true
				}
			}
		})
		// Commit the round (driver bookkeeping of delivered messages).
		for d := 0; d < p; d++ {
			if lastSeen[d] != 0 {
				_, val := unpackHR(lastSeen[d] - 1)
				out[d] = append(out[d], HRelationMsg{Dst: d, Val: val})
				lastSeen[d] = 0
			}
		}
		for i := 0; i < p; i++ {
			if won[i] {
				next[i]++
				pending--
			}
		}
		// Clear slot and ack cells for the next round (one step: each
		// destination resets its own two cells — two writes would exceed
		// the one-write rule, so use two steps).
		m.Step(func(c *pram.Ctx) { c.Write(2*c.ID(), 0) })
		m.Step(func(c *pram.Ctx) { c.Write(2*c.ID()+1, 0) })
	}
	return out, rounds
}

// HRelationDegree returns h = max(x̄, ȳ) of a plan: the maximum number of
// messages sent or received by any one processor.
func HRelationDegree(plan [][]HRelationMsg) int {
	recv := map[int]int{}
	h := 0
	for _, msgs := range plan {
		if len(msgs) > h {
			h = len(msgs)
		}
		for _, msg := range msgs {
			recv[msg.Dst]++
		}
	}
	for _, r := range recv {
		if r > h {
			h = r
		}
	}
	return h
}
