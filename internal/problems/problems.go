// Package problems implements the basic problems of the paper's Table 1 —
// parity, summation, list ranking, sorting, leader recognition — together
// with the Section 4.1 h-relation realization on the CRCW PRAM, on each of
// the machine models where the paper states a bound.
//
// Algorithms take a machine and a distributed input and return the computed
// answer; all communication flows through the machine so its simulated
// clock measures the algorithm's model time. Globally-limited machines get
// slot-scheduled injections: when a superstep or phase sends k messages,
// they are spread over a period of ⌈(1+ε)·k/m⌉ steps with random offsets
// (the per-superstep application of the paper's self-scheduling
// transformation, Section 2 + Theorem 6.2).
package problems

import (
	"sort"

	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

// schedEps is the ε used by the per-superstep slot spreading.
const schedEps = 0.5

// periodFor returns the slot period for spreading k messages on a machine
// with aggregate bandwidth m (1 when the model is locally limited, i.e.
// spreading is irrelevant).
func periodFor(cost model.Cost, k int) int {
	if !cost.Global() || k <= 0 {
		return 1
	}
	t := int((1 + schedEps) * float64(k) / float64(cost.M))
	if t < 1 {
		t = 1
	}
	return t
}

// slotIn draws a random slot in [0, period).
func slotIn(rng *xrand.Source, period int) int {
	if period <= 1 {
		return 0
	}
	return rng.Intn(period)
}

// blockOf returns processor i's block [lo, hi) of an n-element input
// distributed blockwise over p processors.
func blockOf(i, p, n int) (lo, hi int) {
	per := (n + p - 1) / p
	lo = i * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// foldLocalBSP folds each processor's input block locally (charging the
// work) and reduces the per-processor partials with the collective tree,
// returning the total.
func foldLocalBSP(m *bsp.Machine, input []int64, op collective.Op, id int64) int64 {
	p := m.P()
	locals := make([]int64, p)
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := blockOf(c.ID(), p, len(input))
		acc := id
		for _, v := range input[lo:hi] {
			acc = op(acc, v)
		}
		c.Charge(hi - lo)
		locals[c.ID()] = acc
	})
	return collective.ReduceBSP(m, locals, op)
}

func foldLocalQSM(m *qsm.Machine, input []int64, op collective.Op, id int64) int64 {
	p := m.P()
	locals := make([]int64, p)
	m.Phase(func(c *qsm.Ctx) {
		lo, hi := blockOf(c.ID(), p, len(input))
		acc := id
		for _, v := range input[lo:hi] {
			acc = op(acc, v)
		}
		c.Charge(hi - lo)
		locals[c.ID()] = acc
	})
	return collective.ReduceQSM(m, locals, op)
}

// SummationBSP sums n input values (distributed blockwise over the
// processors) on a BSP machine, returning the total (held at processor 0).
// Table 1 row 3: Θ(L·lg n/lg(L/g)) on the BSP(g) versus
// O(L·lg m/lg L + n/m + L) on the BSP(m).
func SummationBSP(m *bsp.Machine, input []int64) int64 {
	return foldLocalBSP(m, input, collective.Sum, 0)
}

// ParityBSP computes the parity of n input bits on a BSP machine.
func ParityBSP(m *bsp.Machine, input []int64) int64 {
	return foldLocalBSP(m, input, collective.Xor, 0) & 1
}

// SummationQSM sums n input values on a QSM machine. Table 1 row 3:
// Θ(lg m + n/m) on the QSM(m) versus Ω(g·lg n/lg lg n) on the QSM(g).
func SummationQSM(m *qsm.Machine, input []int64) int64 {
	return foldLocalQSM(m, input, collective.Sum, 0)
}

// ParityQSM computes the parity of n input bits on a QSM machine.
func ParityQSM(m *qsm.Machine, input []int64) int64 {
	return foldLocalQSM(m, input, collective.Xor, 0) & 1
}

// sortInt64s sorts in place (local computation inside algorithms).
func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
