package problems

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

// List is a linked-list instance for list ranking: Succ[i] is the successor
// of node i, or -1 if node i is the tail. One node lives on each processor
// (n = p, the Table 1 setting).
type List struct {
	Succ []int
}

// RandomList builds a list visiting the n nodes in a random order.
func RandomList(rng *xrand.Source, n int) List {
	perm := rng.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[perm[k]] = perm[k+1]
	}
	succ[perm[n-1]] = -1
	return List{Succ: succ}
}

// NearlyOrderedList builds the list 0→1→…→n−1 with a few random
// transpositions — the "nearly-ordered" skew case the paper's Section 6
// intro mentions.
func NearlyOrderedList(rng *xrand.Source, n, swaps int) List {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for s := 0; s < swaps; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		order[i], order[j] = order[j], order[i]
	}
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = order[k+1]
	}
	succ[order[n-1]] = -1
	return List{Succ: succ}
}

// SequentialRanks computes the reference answer: rank[i] is the number of
// links from node i to the tail (rank[tail] = 0).
func (l List) SequentialRanks() []int64 {
	n := len(l.Succ)
	rank := make([]int64, n)
	// Find the tail, then walk backwards using an inverted index.
	pred := make([]int, n)
	for i := range pred {
		pred[i] = -1
	}
	tail := -1
	for i, s := range l.Succ {
		if s == -1 {
			tail = i
		} else {
			pred[s] = i
		}
	}
	if tail == -1 {
		panic("problems: list has no tail")
	}
	r := int64(0)
	for i := tail; i != -1; i = pred[i] {
		rank[i] = r
		r++
	}
	return rank
}

// message tags for the list-ranking protocols.
const (
	tagReq uint8 = iota + 1
	tagReply
	tagNo
)

// ListRankJumpBSP ranks the list by pointer jumping: ⌈lg n⌉ rounds, each
// updating every unfinished node's (rank, succ) to (rank + rank[succ],
// succ[succ]) via a request/reply message pair. Every round moves Θ(n)
// messages, so on the BSP(m) the cost is Θ((n/m + L)·lg n) — the
// work-suboptimal baseline that ListRankContractBSP improves on.
func ListRankJumpBSP(m *bsp.Machine, list List) []int64 {
	n := m.P()
	if len(list.Succ) != n {
		panic("problems: list size must equal processor count")
	}
	cost := m.Cost()
	succ := append([]int(nil), list.Succ...)
	rank := make([]int64, n)
	for i, s := range succ {
		if s != -1 {
			rank[i] = 1
		}
	}
	active := 0
	for _, s := range succ {
		if s != -1 {
			active++
		}
	}
	for active > 0 {
		period := periodFor(cost, active)
		// Request: node i asks succ[i] for its (rank, succ).
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			if succ[i] == -1 {
				return
			}
			c.SendAt(slotIn(c.RNG(), period), succ[i], bsp.Msg{Tag: tagReq, A: int64(i)})
		})
		// Reply: each queried node answers its single requester.
		m.Superstep(func(c *bsp.Ctx) {
			for _, msg := range c.Recv() {
				if msg.Tag != tagReq {
					continue
				}
				c.Charge(1)
				c.SendAt(slotIn(c.RNG(), period), int(msg.A),
					bsp.Msg{Tag: tagReply, A: rank[c.ID()], B: int64(succ[c.ID()])})
			}
		})
		// Update locally (next superstep boundary not needed: replies are
		// in the inboxes now; apply via a zero-communication superstep so
		// the work is charged on-machine).
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			for _, msg := range c.Recv() {
				if msg.Tag != tagReply {
					continue
				}
				c.Charge(1)
				rank[i] += msg.A
				succ[i] = int(msg.B)
			}
		})
		active = 0
		for _, s := range succ {
			if s != -1 {
				active++
			}
		}
	}
	return rank
}

// contractRecord remembers how a node was spliced out so the expansion can
// recover its rank.
type contractRecord struct {
	round   int
	oldSucc int
	oldW    int64
}

// ListRankContractBSP ranks the list by randomized contraction (random
// mate): in each round a node whose coin is heads splices out a
// tails-coin successor, so the live list shrinks by an expected 1/4 per
// round and total message traffic over all rounds is O(n), giving
// O(n/m + L·lg n) on the BSP(m) — the work-efficient algorithm behind
// Table 1 row 4.
func ListRankContractBSP(m *bsp.Machine, list List) []int64 {
	n := m.P()
	if len(list.Succ) != n {
		panic("problems: list size must equal processor count")
	}
	cost := m.Cost()
	succ := append([]int(nil), list.Succ...)
	w := make([]int64, n) // weight of node i's outgoing edge
	dead := make([]bool, n)
	rec := make([]contractRecord, n)
	rank := make([]int64, n)
	coin := make([]bool, n) // true = heads
	for i, s := range succ {
		if s != -1 {
			w[i] = 1
		}
		rec[i].round = -1
	}

	countActive := func() int {
		a := 0
		for i := range succ {
			if !dead[i] && succ[i] != -1 {
				a++
			}
		}
		return a
	}

	// --- Contraction ---
	rounds := 0
	maxRounds := 40 * bitsLen(n)
	for active := countActive(); active > 1; active = countActive() {
		if rounds >= maxRounds {
			panic(fmt.Sprintf("problems: contraction failed to converge after %d rounds", rounds))
		}
		period := periodFor(cost, active)
		r := rounds
		// Heads probe their successor.
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			if dead[i] || succ[i] == -1 {
				return
			}
			coin[i] = c.RNG().Bool()
			if coin[i] {
				c.SendAt(slotIn(c.RNG(), period), succ[i], bsp.Msg{Tag: tagReq, A: int64(i)})
			}
		})
		// A tails node that is probed and is not the tail of the list
		// splices itself out: it freezes its state for the expansion and
		// hands (succ, w) to its predecessor. A heads or list-tail node
		// declines.
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			for _, msg := range c.Recv() {
				if msg.Tag != tagReq {
					continue
				}
				c.Charge(1)
				slot := slotIn(c.RNG(), period)
				if !coin[i] && succ[i] != -1 && !dead[i] {
					rec[i] = contractRecord{round: r, oldSucc: succ[i], oldW: w[i]}
					dead[i] = true
					c.SendAt(slot, int(msg.A), bsp.Msg{Tag: tagReply, A: int64(succ[i]), B: w[i]})
				} else {
					c.SendAt(slot, int(msg.A), bsp.Msg{Tag: tagNo})
				}
			}
		})
		// Splicers absorb the reply.
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			for _, msg := range c.Recv() {
				if msg.Tag == tagReply {
					c.Charge(1)
					succ[i] = int(msg.A)
					w[i] += msg.B
				}
			}
		})
		rounds++
	}

	// Base case: at most one live non-tail node remains; its rank is its
	// accumulated weight. Live tail keeps rank 0.
	for i := range succ {
		if !dead[i] {
			if succ[i] != -1 {
				rank[i] = w[i]
			} else {
				rank[i] = 0
			}
		}
	}

	// --- Expansion: reverse round order. A node spliced in round r asks
	// its frozen successor (whose rank is known by now) for its rank. ---
	for r := rounds - 1; r >= 0; r-- {
		cnt := 0
		for i := range rec {
			if rec[i].round == r {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		period := periodFor(cost, cnt)
		rr := r
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			if rec[i].round != rr {
				return
			}
			c.SendAt(slotIn(c.RNG(), period), rec[i].oldSucc, bsp.Msg{Tag: tagReq, A: int64(i)})
		})
		m.Superstep(func(c *bsp.Ctx) {
			for _, msg := range c.Recv() {
				if msg.Tag != tagReq {
					continue
				}
				c.Charge(1)
				c.SendAt(slotIn(c.RNG(), period), int(msg.A), bsp.Msg{Tag: tagReply, A: rank[c.ID()]})
			}
		})
		m.Superstep(func(c *bsp.Ctx) {
			i := c.ID()
			for _, msg := range c.Recv() {
				if msg.Tag == tagReply {
					c.Charge(1)
					rank[i] = rec[i].oldW + msg.A
				}
			}
		})
	}
	return rank
}

// bitsLen returns ⌈lg(n+1)⌉, used for round caps.
func bitsLen(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// --- QSM list ranking ---

// qsm cell layout for list ranking: for node i,
//
//	cell i        — packed live state (coin, succ+1, w), rewritten per round
//	cell n + i    — kill flag for round r (r+1, 0 = alive)
//	cell 2n + i   — published rank + 1 (0 = unknown)
const lrFields = 3

func packState(coin bool, succ int, w int64) int64 {
	v := int64(succ+1)<<22 | (w & ((1 << 21) - 1))
	if coin {
		v |= 1 << 62
	}
	return v
}

func unpackState(v int64) (coin bool, succ int, w int64) {
	coin = v&(1<<62) != 0
	succ = int((v>>22)&((1<<40)-1)) - 1
	w = v & ((1 << 21) - 1)
	return coin, succ, w
}

// ListRankContractQSM is the random-mate contraction on a QSM machine
// (either cost model). The machine needs Mem >= 3n. Θ(lg m + n/m)-shaped on
// the QSM(m) per Table 1 row 4.
func ListRankContractQSM(m *qsm.Machine, list List) []int64 {
	n := m.P()
	if len(list.Succ) != n {
		panic("problems: list size must equal processor count")
	}
	if m.Mem() < lrFields*n {
		panic("problems: ListRankContractQSM needs Mem >= 3n")
	}
	cost := m.Cost()
	succ := append([]int(nil), list.Succ...)
	w := make([]int64, n)
	dead := make([]bool, n)
	rec := make([]contractRecord, n)
	rank := make([]int64, n)
	coin := make([]bool, n)
	for i, s := range succ {
		if s != -1 {
			w[i] = 1
		}
		rec[i].round = -1
	}

	countActive := func() int {
		a := 0
		for i := range succ {
			if !dead[i] && succ[i] != -1 {
				a++
			}
		}
		return a
	}

	rounds := 0
	maxRounds := 40 * bitsLen(n)
	for active := countActive(); active > 1; active = countActive() {
		if rounds >= maxRounds {
			panic(fmt.Sprintf("problems: QSM contraction failed to converge after %d rounds", rounds))
		}
		period := periodFor(cost, active)
		r := rounds
		// Every live node publishes its packed state (with a fresh coin).
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if dead[i] {
				return
			}
			coin[i] = c.RNG().Bool()
			c.WriteAt(slotIn(c.RNG(), period), i, packState(coin[i], succ[i], w[i]))
		})
		// Heads read their successor's state and decide the splice; the
		// splice is announced by writing the round into the victim's kill
		// cell (exclusive: one predecessor per node).
		splice := make([]bool, n)
		sCoin := make([]bool, n)
		sSucc := make([]int, n)
		sW := make([]int64, n)
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if dead[i] || succ[i] == -1 || !coin[i] {
				return
			}
			v := c.ReadAt(slotIn(c.RNG(), period), succ[i])
			sCoin[i], sSucc[i], sW[i] = unpackState(v)
		})
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if dead[i] || succ[i] == -1 || !coin[i] {
				return
			}
			if !sCoin[i] && sSucc[i] != -1 {
				splice[i] = true
				c.WriteAt(slotIn(c.RNG(), period), n+succ[i], int64(r+1))
			}
		})
		// Tails nodes read their kill cell; a killed node freezes its
		// record. Splicers absorb the victim's (succ, w).
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if !dead[i] && succ[i] != -1 && !coin[i] {
				if c.ReadAt(slotIn(c.RNG(), period), n+i) == int64(r+1) {
					rec[i] = contractRecord{round: r, oldSucc: succ[i], oldW: w[i]}
					dead[i] = true
				}
			}
			if splice[i] {
				succ[i] = sSucc[i]
				w[i] += sW[i]
			}
		})
		rounds++
	}

	for i := range succ {
		if !dead[i] {
			if succ[i] != -1 {
				rank[i] = w[i]
			} else {
				rank[i] = 0
			}
		}
	}
	// Publish base ranks.
	pubPeriod := periodFor(cost, 2)
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if !dead[i] {
			c.WriteAt(slotIn(c.RNG(), pubPeriod), 2*n+i, rank[i]+1)
		}
	})

	// Expansion in reverse round order through the rank cells.
	for r := rounds - 1; r >= 0; r-- {
		cnt := 0
		for i := range rec {
			if rec[i].round == r {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		period := periodFor(cost, cnt)
		rr := r
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if rec[i].round != rr {
				return
			}
			got := c.ReadAt(slotIn(c.RNG(), period), 2*n+rec[i].oldSucc)
			if got == 0 {
				panic("problems: expansion read an unknown rank")
			}
			rank[i] = rec[i].oldW + (got - 1)
		})
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			if rec[i].round == rr {
				c.WriteAt(slotIn(c.RNG(), period), 2*n+i, rank[i]+1)
			}
		})
	}
	return rank
}
