package problems

import (
	"testing"
	"testing/quick"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

func bspM(p, mm, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, l), Seed: seed})
}

func bspG(p, g, l int, seed uint64) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: seed})
}

func qsmM(p, mm int, seed uint64) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: 3 * p, Cost: model.QSMm(mm), Seed: seed})
}

func qsmG(p, g int, seed uint64) *qsm.Machine {
	return qsm.New(qsm.Config{P: p, Mem: 3 * p, Cost: model.QSMg(g), Seed: seed})
}

func TestSummationBSP(t *testing.T) {
	for _, mk := range []func() *bsp.Machine{
		func() *bsp.Machine { return bspM(16, 4, 2, 1) },
		func() *bsp.Machine { return bspG(16, 4, 8, 1) },
	} {
		input := make([]int64, 64)
		var want int64
		for i := range input {
			input[i] = int64(i * 3)
			want += input[i]
		}
		if got := SummationBSP(mk(), input); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	}
}

func TestParityBSPandQSM(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 32 + rng.Intn(64)
		input := make([]int64, n)
		var want int64
		for i := range input {
			input[i] = int64(rng.Intn(2))
			want ^= input[i]
		}
		if ParityBSP(bspM(16, 4, 2, seed), input) != want {
			return false
		}
		if ParityQSM(qsmM(16, 4, seed), input) != want {
			return false
		}
		if ParityQSM(qsmG(16, 4, seed), input) != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSummationQSM(t *testing.T) {
	input := make([]int64, 48)
	var want int64
	for i := range input {
		input[i] = int64(i)
		want += input[i]
	}
	if got := SummationQSM(qsmM(16, 8, 2), input); got != want {
		t.Fatalf("QSM(m) sum = %d, want %d", got, want)
	}
	if got := SummationQSM(qsmG(16, 2, 2), input); got != want {
		t.Fatalf("QSM(g) sum = %d, want %d", got, want)
	}
}

func TestSummationSeparation(t *testing.T) {
	// Table 1 row 3 shape: globally-limited summation beats locally-limited
	// with matched aggregate bandwidth.
	p, g, l := 512, 32, 32
	input := make([]int64, p)
	for i := range input {
		input[i] = 1
	}
	lt := bspG(p, g, l, 3)
	gt := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(p/g, l), Seed: 3})
	SummationBSP(lt, input)
	SummationBSP(gt, input)
	if gt.Time() >= lt.Time() {
		t.Fatalf("BSP(m) summation (%v) not faster than BSP(g) (%v)", gt.Time(), lt.Time())
	}
}

// --- List ranking ---

func TestRandomListWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(100)
		l := RandomList(rng, n)
		seen := make([]bool, n)
		tails := 0
		for _, s := range l.Succ {
			if s == -1 {
				tails++
				continue
			}
			if s < 0 || s >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		return tails == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialRanks(t *testing.T) {
	l := List{Succ: []int{2, -1, 1}} // 0 -> 2 -> 1
	r := l.SequentialRanks()
	if r[0] != 2 || r[2] != 1 || r[1] != 0 {
		t.Fatalf("ranks = %v", r)
	}
}

func TestListRankJumpBSP(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 33, 64} {
		rng := xrand.New(uint64(n))
		list := RandomList(rng, n)
		want := list.SequentialRanks()
		m := bspM(n, 4, 2, uint64(n))
		got := ListRankJumpBSP(m, list)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestListRankContractBSP(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 33, 64, 128} {
		rng := xrand.New(uint64(n) + 7)
		list := RandomList(rng, n)
		want := list.SequentialRanks()
		m := bspM(n, 8, 2, uint64(n))
		got := ListRankContractBSP(m, list)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestListRankContractBSPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(96)
		list := RandomList(rng, n)
		want := list.SequentialRanks()
		got := ListRankContractBSP(bspM(n, 4, 2, seed), list)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestListRankContractQSM(t *testing.T) {
	for _, mk := range []func(n int) *qsm.Machine{
		func(n int) *qsm.Machine { return qsmM(n, 8, 5) },
		func(n int) *qsm.Machine { return qsmG(n, 4, 5) },
	} {
		for _, n := range []int{1, 2, 3, 16, 33, 64} {
			rng := xrand.New(uint64(n) + 13)
			list := RandomList(rng, n)
			want := list.SequentialRanks()
			got := ListRankContractQSM(mk(n), list)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNearlyOrderedList(t *testing.T) {
	rng := xrand.New(4)
	list := NearlyOrderedList(rng, 50, 3)
	want := list.SequentialRanks()
	got := ListRankContractBSP(bspM(50, 8, 2, 4), list)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Contraction must do asymptotically less traffic than jumping: compare
// simulated times on BSP(m) at matched parameters.
func TestContractionBeatsJumping(t *testing.T) {
	n := 512
	rng := xrand.New(9)
	list := RandomList(rng, n)
	mj := bspM(n, 8, 2, 9)
	ListRankJumpBSP(mj, list)
	mc := bspM(n, 8, 2, 9)
	ListRankContractBSP(mc, list)
	if mc.Time() >= mj.Time() {
		t.Fatalf("contraction (%v) not faster than jumping (%v)", mc.Time(), mj.Time())
	}
}

// --- Sorting ---

func TestColumnsortBSPSortsRandom(t *testing.T) {
	for _, cfg := range []struct{ n, p, q int }{
		{16, 16, 4}, {64, 16, 8}, {64, 64, 16}, {256, 64, 16},
		{256, 64, 64}, {1024, 32, 32}, {64, 64, 1}, {1, 1, 1}, {2, 2, 2},
	} {
		rng := xrand.New(uint64(cfg.n * cfg.q))
		keys := make([]int64, cfg.n)
		for i := range keys {
			keys[i] = int64(rng.Intn(1000)) - 500
		}
		m := bspM(cfg.p, 4, 2, 77)
		got := ColumnsortBSP(m, keys, cfg.q)
		if !IsSorted(got) {
			t.Fatalf("n=%d p=%d q=%d: output not sorted", cfg.n, cfg.p, cfg.q)
		}
		// Same multiset.
		want := append([]int64(nil), keys...)
		sortInt64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d q=%d: got[%d]=%d want %d", cfg.n, cfg.q, i, got[i], want[i])
			}
		}
	}
}

func TestColumnsortBSPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 << (4 + rng.Intn(6)) // 16..512
		p := 1 << (2 + rng.Intn(4)) // 4..32
		q := p
		if q > n {
			q = n
		}
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 997)
		}
		got := ColumnsortBSP(bspM(p, 4, 2, seed), keys, q)
		if !IsSorted(got) {
			return false
		}
		want := append([]int64(nil), keys...)
		sortInt64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnsortWorksOnBSPg(t *testing.T) {
	rng := xrand.New(21)
	keys := make([]int64, 256)
	for i := range keys {
		keys[i] = int64(rng.Intn(100))
	}
	got := ColumnsortBSP(bspG(64, 8, 16, 21), keys, 64)
	if !IsSorted(got) {
		t.Fatal("BSP(g) columnsort output not sorted")
	}
}

func TestColumnsortDuplicatesAndSortedInputs(t *testing.T) {
	n, p := 128, 16
	allSame := make([]int64, n)
	got := ColumnsortBSP(bspM(p, 4, 2, 1), allSame, 16)
	for _, v := range got {
		if v != 0 {
			t.Fatal("constant input corrupted")
		}
	}
	desc := make([]int64, n)
	for i := range desc {
		desc[i] = int64(n - i)
	}
	got = ColumnsortBSP(bspM(p, 4, 2, 1), desc, 16)
	if !IsSorted(got) {
		t.Fatal("descending input not sorted")
	}
}

func TestColumnsortRejectsBadShapes(t *testing.T) {
	for _, fn := range []func(){
		func() { ColumnsortBSP(bspM(8, 2, 1, 1), make([]int64, 24), 4) },  // n not pow2
		func() { ColumnsortBSP(bspM(8, 2, 1, 1), make([]int64, 4), 8) },   // q > n
		func() { ColumnsortBSP(bspM(8, 2, 1, 1), make([]int64, 32), 16) }, // q > p
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad shape accepted")
				}
			}()
			fn()
		}()
	}
}

func TestPickColumns(t *testing.T) {
	// N=64, q=16: s=4 needs r=16 >= 2·9=18: no; s=2 needs 32 >= 2: yes.
	if got := pickColumns(64, 16); got != 2 {
		t.Fatalf("pickColumns(64,16) = %d, want 2", got)
	}
	// N=4096, q=16: s=8 needs 512 >= 98: yes; s=16 needs 256 >= 450: no.
	if got := pickColumns(4096, 16); got != 8 {
		t.Fatalf("pickColumns(4096,16) = %d, want 8", got)
	}
	if got := pickColumns(2, 2); got != 1 {
		t.Fatalf("pickColumns(2,2) = %d, want 1", got)
	}
}

func TestSortingSeparation(t *testing.T) {
	// Table 1 row 5 shape: BSP(m) sorting (n/m-ish) beats BSP(g) with the
	// same aggregate bandwidth for n = p.
	n := 1024
	p, g, l := n, 32, 16
	rng := xrand.New(31)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64() % 100000)
	}
	mm := p / g
	q := mm * bitsLen(n)
	// Round q down to a power of two within [1, min(n, p)].
	qq := 1
	for qq*2 <= q && qq*2 <= n {
		qq *= 2
	}
	lt := bspG(p, g, l, 31)
	ColumnsortBSP(lt, keys, qq)
	gt := bsp.New(bsp.Config{P: p, Cost: model.BSPmLinear(mm, l), Seed: 31})
	ColumnsortBSP(gt, keys, qq)
	if gt.Time() >= lt.Time() {
		t.Fatalf("BSP(m) sort (%v) not faster than BSP(g) (%v)", gt.Time(), lt.Time())
	}
}

func TestColumnsortQSMSortsRandom(t *testing.T) {
	for _, cfg := range []struct{ n, p, q int }{
		{16, 16, 4}, {64, 16, 8}, {256, 64, 16}, {256, 64, 64}, {2, 2, 2},
	} {
		rng := xrand.New(uint64(cfg.n*cfg.q) + 5)
		keys := make([]int64, cfg.n)
		for i := range keys {
			keys[i] = int64(rng.Intn(1000)) - 500
		}
		for _, mk := range []func() *qsm.Machine{
			func() *qsm.Machine {
				return qsm.New(qsm.Config{P: cfg.p, Mem: cfg.n + 1, Cost: model.QSMm(4), Seed: 3})
			},
			func() *qsm.Machine {
				return qsm.New(qsm.Config{P: cfg.p, Mem: cfg.n + 1, Cost: model.QSMg(4), Seed: 3})
			},
		} {
			got := ColumnsortQSM(mk(), keys, cfg.q)
			if !IsSorted(got) {
				t.Fatalf("n=%d p=%d q=%d: QSM output not sorted", cfg.n, cfg.p, cfg.q)
			}
			want := append([]int64(nil), keys...)
			sortInt64s(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: got[%d]=%d want %d", cfg.n, cfg.q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestColumnsortQSMProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 << (4 + rng.Intn(5))
		p := 1 << (2 + rng.Intn(4))
		q := p
		if q > n {
			q = n
		}
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 513)
		}
		m := qsm.New(qsm.Config{P: p, Mem: n, Cost: model.QSMm(8), Seed: seed})
		got := ColumnsortQSM(m, keys, q)
		if !IsSorted(got) {
			return false
		}
		want := append([]int64(nil), keys...)
		sortInt64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The meaningful Θ(n/m) check is scaling: with the same recursion depth,
// doubling m should roughly halve the sort's simulated time.
func TestColumnsortQSMScalesWithM(t *testing.T) {
	n, p := 512, 64
	rng := xrand.New(8)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(100))
	}
	run := func(mm int) float64 {
		m := qsm.New(qsm.Config{P: p, Mem: n, Cost: model.QSMm(mm), Seed: 8, Trace: true})
		// q = 32 keeps the per-processor request count n/q = 16 below n/m
		// for both m values, so the aggregate term is what scales.
		ColumnsortQSM(m, keys, 32)
		for i, st := range m.Trace() {
			if st.MaxSlot > 4*mm {
				t.Fatalf("m=%d phase %d badly overloaded: %+v", mm, i, st)
			}
		}
		return m.Time()
	}
	t8, t32 := run(8), run(32)
	ratio := t8 / t32
	if ratio < 2 || ratio > 8 {
		t.Fatalf("time(m=8)/time(m=32) = %v, want ~4 (Θ(n/m) scaling)", ratio)
	}
}

func TestSortingSeparationQSM(t *testing.T) {
	n := 512
	p, g := n, 32
	rng := xrand.New(41)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64() % 9999)
	}
	mm := p / g
	lt := qsm.New(qsm.Config{P: p, Mem: n, Cost: model.QSMg(g), Seed: 41})
	ColumnsortQSM(lt, keys, mm*2)
	gt := qsm.New(qsm.Config{P: p, Mem: n, Cost: model.QSMm(mm), Seed: 41})
	ColumnsortQSM(gt, keys, mm*2)
	if gt.Time() >= lt.Time() {
		t.Fatalf("QSM(m) sort (%v) not faster than QSM(g) (%v)", gt.Time(), lt.Time())
	}
}

func TestSampleSortBSPSorts(t *testing.T) {
	for _, cfg := range []struct{ n, p int }{
		{100, 8}, {1000, 16}, {4096, 32}, {17, 4}, {1, 1}, {8, 8},
	} {
		rng := xrand.New(uint64(cfg.n))
		keys := make([]int64, cfg.n)
		for i := range keys {
			keys[i] = int64(rng.Intn(10000)) - 5000
		}
		m := bspM(cfg.p, 8, 2, 9)
		got := SampleSortBSP(m, keys, 8)
		if len(got) != cfg.n {
			t.Fatalf("n=%d p=%d: returned %d keys", cfg.n, cfg.p, len(got))
		}
		if !IsSorted(got) {
			t.Fatalf("n=%d p=%d: not sorted", cfg.n, cfg.p)
		}
		want := append([]int64(nil), keys...)
		sortInt64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d]=%d want %d", cfg.n, i, got[i], want[i])
			}
		}
	}
}

func TestSampleSortBSPProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(2000)
		p := 1 << (1 + rng.Intn(5))
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Uint64() % 4096)
		}
		m := bspM(p, 8, 2, seed)
		got := SampleSortBSP(m, keys, 8)
		if !IsSorted(got) || len(got) != n {
			return false
		}
		want := append([]int64(nil), keys...)
		sortInt64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSortSeeded(t *testing.T) {
	rng := xrand.New(4)
	n := 500
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i) // adversarially ordered
	}
	m := bspM(16, 8, 2, 5)
	got := SampleSortSeeded(m, keys, 8, rng)
	if !IsSorted(got) || len(got) != n {
		t.Fatal("seeded sample sort failed")
	}
}

// In the n ≫ p regime sample sort should beat columnsort (splitter
// broadcast amortized, single routing round vs 4·depth permutes).
func TestSampleSortBeatsColumnsortLargeN(t *testing.T) {
	n, p, mm := 8192, 32, 8
	rng := xrand.New(12)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64() % 100000)
	}
	ms := bspM(p, mm, 2, 6)
	SampleSortBSP(ms, keys, 8)
	mc := bspM(p, mm, 2, 6)
	ColumnsortBSP(mc, keys, p)
	if ms.Time() >= mc.Time() {
		t.Fatalf("sample sort (%v) not faster than columnsort (%v) at n=%d", ms.Time(), mc.Time(), n)
	}
}

func TestMatrixTransposeBSP(t *testing.T) {
	for _, p := range []int{1, 2, 8, 16} {
		rows := make([][]int64, p)
		for i := range rows {
			rows[i] = make([]int64, p)
			for j := range rows[i] {
				rows[i][j] = int64(i*100 + j)
			}
		}
		m := bspM(p, 4, 2, 3)
		got := MatrixTransposeBSP(m, rows)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if got[i][j] != rows[j][i] {
					t.Fatalf("p=%d: got[%d][%d] = %d, want %d", p, i, j, got[i][j], rows[j][i])
				}
			}
		}
	}
}

func TestMatrixTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		p := 4 << (seed % 3)
		rng := xrand.New(seed)
		rows := make([][]int64, p)
		for i := range rows {
			rows[i] = make([]int64, p)
			for j := range rows[i] {
				rows[i][j] = int64(rng.Intn(1000))
			}
		}
		m := bspM(p, 8, 2, seed)
		tr := MatrixTransposeBSP(m, rows)
		back := MatrixTransposeBSP(m, tr)
		for i := range rows {
			for j := range rows[i] {
				if back[i][j] != rows[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixTransposeBalanced(t *testing.T) {
	// Balanced traffic: BSP(g) and BSP(m) costs agree within the (1+ε)
	// scheduling slack at matched aggregate bandwidth.
	p, g, l := 32, 4, 2
	rows := make([][]int64, p)
	for i := range rows {
		rows[i] = make([]int64, p)
	}
	lm := bspG(p, g, l, 5)
	MatrixTransposeBSP(lm, rows)
	gm := bspM(p, p/g, l, 5)
	MatrixTransposeBSP(gm, rows)
	ratio := gm.Time() / lm.Time()
	if ratio < 0.8 || ratio > 1.6 {
		t.Fatalf("balanced transpose costs diverge: BSP(m)/BSP(g) = %v", ratio)
	}
}

func TestMatrixTransposeValidation(t *testing.T) {
	m := bspM(4, 2, 1, 1)
	for _, rows := range [][][]int64{
		make([][]int64, 3),   // wrong row count
		{{1}, {1}, {1}, {1}}, // wrong row length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad matrix accepted")
				}
			}()
			MatrixTransposeBSP(m, rows)
		}()
	}
}
