package problems

import (
	"fmt"

	"parbw/internal/model"
	"parbw/internal/qsm"
	"parbw/internal/xrand"
)

// ColumnsortQSM sorts n keys (distributed blockwise over the p processors'
// private memories) on a QSM machine using the first q processors as
// sorters, returning the sorted keys blockwise. The machine needs
// Mem >= n (a transfer buffer region [0, n)); n, p, q must be powers of two
// with q <= min(n, p).
//
// Data movement goes through shared memory: for each oblivious permutation,
// holders write their keys into the buffer cells of the destination
// positions and the new owners read them in the next phase, with requests
// spread cyclically over a ⌈(1+ε)·moved/m⌉-step window on the QSM(m)
// (Theorem 6.2's schedule, which the paper notes carries over to the
// QSM(m)). This realizes the Table 1 row 5 bound Θ(n/m) for
// m = O(n^{1-ε}).
func ColumnsortQSM(m *qsm.Machine, keys []int64, q int) []int64 {
	p := m.P()
	n := len(keys)
	if n == 0 {
		return nil
	}
	if !isPow2(n) || !isPow2(p) || !isPow2(q) {
		panic("problems: ColumnsortQSM requires power-of-two n, p, q")
	}
	if q > p || q > n {
		panic(fmt.Sprintf("problems: q = %d must be <= min(n=%d, p=%d)", q, n, p))
	}
	if m.Mem() < n {
		panic("problems: ColumnsortQSM needs Mem >= n")
	}
	b := qsmBackend{m: m}
	identity := func(idx int) int { return idx }

	arr := make([]int64, n)
	b.move(keys, arr,
		func(idx int) int { return idx / maxi(n/p, 1) }, // input owner
		identity,
		func(pos int) int { return pos / (n / q) }) // sorter owner

	columnsortRec(b, arr, []span{{off: 0, cnt: n, procLo: 0, procN: q}})

	out := make([]int64, n)
	b.move(arr, out,
		func(idx int) int { return idx / (n / q) },
		identity,
		func(pos int) int { return pos / maxi(n/p, 1) })
	return out
}

// qsmBackend drives columnsort on a QSM machine.
type qsmBackend struct{ m *qsm.Machine }

// slotter assigns a processor's j-th shared-memory request of a phase to a
// step, mirroring Unbalanced-Send's cyclic schedule: a random start in a
// window of ⌈(1+ε)·total/m⌉ steps (at least the processor's own request
// count, so its requests get distinct steps).
type slotter struct {
	period int
	start  int
}

func newSlotter(rng *xrand.Source, global bool, total, mine, mm int) slotter {
	if !global {
		return slotter{period: maxi(mine, 1)}
	}
	period := int((1 + schedEps) * float64(total) / float64(mm))
	if period < mine {
		period = mine
	}
	if period < 1 {
		period = 1
	}
	return slotter{period: period, start: rng.Intn(period)}
}

func (s slotter) slot(j int) int { return (s.start + j) % s.period }

// move places in[idx] at out[dstPos(idx)] for every idx: srcOwner(idx)
// writes buffer cell dstPos(idx), and posOwner(dstPos(idx)) reads it in the
// following phase. Same-owner values move locally (charged as work).
// dstPos must be injective.
func (b qsmBackend) move(in, out []int64, srcOwner, dstPos, posOwner func(int) int) {
	m := b.m
	p := m.P()
	global := m.Cost().Kind == model.KindQSMm
	mm := m.Cost().M
	writes := make([][]int, p) // source indices each processor publishes
	reads := make([][]int, p)  // destination positions each processor reads
	locals := make([][]int, p) // same-owner source indices
	moved := 0
	for idx := range in {
		pos := dstPos(idx)
		s, d := srcOwner(idx), posOwner(pos)
		if s == d {
			locals[s] = append(locals[s], idx)
			continue
		}
		writes[s] = append(writes[s], idx)
		reads[d] = append(reads[d], pos)
		moved++
	}
	if moved > 0 {
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			sl := newSlotter(c.RNG(), global, moved, len(writes[i]), mm)
			for j, idx := range writes[i] {
				c.WriteAt(sl.slot(j), dstPos(idx), in[idx])
			}
		})
		m.Phase(func(c *qsm.Ctx) {
			i := c.ID()
			sl := newSlotter(c.RNG(), global, moved, len(reads[i]), mm)
			for j, pos := range reads[i] {
				out[pos] = c.ReadAt(sl.slot(j), pos)
			}
			for _, idx := range locals[i] {
				out[dstPos(idx)] = in[idx]
			}
			c.Charge(len(locals[i]))
		})
		return
	}
	// Fully local: one work-only phase.
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		for _, idx := range locals[i] {
			out[dstPos(idx)] = in[idx]
		}
		c.Charge(len(locals[i]))
	})
}

func (b qsmBackend) leafSort(arr []int64, spans []span) {
	b.m.Phase(func(c *qsm.Ctx) {
		for _, sp := range spans {
			if sp.procLo == c.ID() {
				sortInt64s(arr[sp.off : sp.off+sp.cnt])
				c.Charge(sp.cnt * bitsLen(sp.cnt))
			}
		}
	})
}

func (b qsmBackend) permute(arr []int64, spans []span, perm func(int) int) {
	next := make([]int64, len(arr))
	toOf := make([]int, len(arr))
	srcOwn := make([]int, len(arr))
	posOwn := make([]int, len(arr))
	for i := range toOf {
		toOf[i] = i
	}
	for _, sp := range spans {
		for k := 0; k < sp.cnt; k++ {
			from := sp.off + k
			to := sp.off + perm(k)
			toOf[from] = to
			srcOwn[from] = sp.ownerIn(from)
			posOwn[to] = sp.ownerIn(to)
		}
	}
	b.move(arr, next,
		func(idx int) int { return srcOwn[idx] },
		func(idx int) int { return toOf[idx] },
		func(pos int) int { return posOwn[pos] })
	copy(arr, next)
}

func (b qsmBackend) gatherSort(arr []int64, spans []span) {
	headOwner := make([]int, len(arr))
	realOwner := make([]int, len(arr))
	inSpan := make([]bool, len(arr))
	for _, sp := range spans {
		for k := 0; k < sp.cnt; k++ {
			pos := sp.off + k
			headOwner[pos] = sp.procLo
			realOwner[pos] = sp.ownerIn(pos)
			inSpan[pos] = true
		}
	}
	// Positions outside the spans (none in practice: spans tile the array
	// at every recursion level) stay owned by themselves.
	for pos := range inSpan {
		if !inSpan[pos] {
			headOwner[pos] = 0
			realOwner[pos] = 0
		}
	}
	identity := func(idx int) int { return idx }
	tmp := make([]int64, len(arr))
	b.move(arr, tmp,
		func(idx int) int { return realOwner[idx] },
		identity,
		func(pos int) int { return headOwner[pos] })
	b.m.Phase(func(c *qsm.Ctx) {
		for _, sp := range spans {
			if sp.procLo == c.ID() {
				sortInt64s(tmp[sp.off : sp.off+sp.cnt])
				c.Charge(sp.cnt * bitsLen(sp.cnt))
			}
		}
	})
	b.move(tmp, arr,
		func(idx int) int { return headOwner[idx] },
		identity,
		func(pos int) int { return realOwner[pos] })
}
