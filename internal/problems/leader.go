package problems

import (
	"fmt"

	"parbw/internal/collective"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/qsm"
)

// Leader recognition (Definition 5.1): the input is p ROM cells, exactly one
// of which holds 1; every processor must learn the address of that cell.
//
// On the concurrent-read CRCW PRAM(m) the problem takes O(max(lg p / w, 1))
// steps: every processor reads a distinct input cell, the one that finds the
// 1 broadcasts its index through a single shared cell, in ⌈lg p / w⌉ chunks
// of the w-bit cell width. On the exclusive-read PRAM(m) the index must fan
// out through the m shared cells, one reader per cell per step, which takes
// Θ((lg m + p/m) · lg p / w) steps — against the Ω(p·lg m/(m·w)) lower
// bound of Lemma 5.3. The measured gap between the two reproduces the
// Ω(p·lg m / (m·lg p)) ER-versus-CR separation (Theorem 5.2).

// LeaderInput builds the ROM for a leader instance with the 1 at the given
// address.
func LeaderInput(p, leader int) []int64 {
	if leader < 0 || leader >= p {
		panic("problems: leader out of range")
	}
	rom := make([]int64, p)
	rom[leader] = 1
	return rom
}

// chunks returns ⌈bits(p−1) / w⌉, the number of w-bit cell transfers needed
// to move a processor index.
func chunks(p, w int) int {
	need := bitsLen(p - 1)
	if need < 1 {
		need = 1
	}
	k := (need + w - 1) / w
	if k < 1 {
		k = 1
	}
	return k
}

// chunkOf extracts the t-th w-bit chunk of v.
func chunkOf(v int64, t, w int) int64 {
	return (v >> (t * w)) & ((1 << w) - 1)
}

// LeaderCR solves leader recognition on a concurrent-read CRCW machine with
// ROM. It returns the leader address learned by each processor.
func LeaderCR(m *pram.Machine) []int64 {
	if !m.Mode().Concurrent() {
		panic("problems: LeaderCR needs a concurrent-read machine")
	}
	p := m.P()
	w := m.CellBits()
	k := chunks(p, w)
	isLeader := make([]bool, p)
	m.Step(func(c *pram.Ctx) {
		if c.ReadROM(c.ID()) == 1 {
			isLeader[c.ID()] = true
			c.Write(0, chunkOf(int64(c.ID()), 0, w))
		}
	})
	out := make([]int64, p)
	for t := 0; t < k; t++ {
		tt := t
		m.Step(func(c *pram.Ctx) {
			out[c.ID()] |= c.Read(0) << (tt * w)
			if isLeader[c.ID()] && tt+1 < k {
				c.Write(0, chunkOf(int64(c.ID()), tt+1, w))
			}
		})
	}
	return out
}

// LeaderER solves leader recognition on an exclusive-read machine (EREW
// mode) with ROM, fanning the answer out through mm shared cells. It
// returns the leader address learned by each processor.
//
// Each round moves the address from width <= mm knowing processors to width
// new ones through cells [0, width), one reader and one writer per cell,
// write and read on alternating steps (EREW forbids touching a cell twice
// in one step). Rounds double the knowing set until it reaches mm, then
// proceed in batches of mm: Θ((lg mm + p/mm) · ⌈lg p / w⌉) steps in total.
func LeaderER(m *pram.Machine, mm int) []int64 {
	if m.Mode() != pram.EREW {
		panic("problems: LeaderER needs an EREW machine")
	}
	if mm < 1 || mm > m.Mem() {
		panic(fmt.Sprintf("problems: LeaderER fan-out width %d out of range (mem %d)", mm, m.Mem()))
	}
	p := m.P()
	w := m.CellBits()
	k := chunks(p, w)
	out := make([]int64, p)

	// Discover the leader (ROM reads are free; this costs one step).
	m.Step(func(c *pram.Ctx) {
		if c.ReadROM(c.ID()) == 1 {
			out[c.ID()] = int64(c.ID())
		}
	})

	// Processors [0, csz) know the address (the leader's value has been
	// relabeled to processor 0's slot by symmetry: processor 0 learns
	// first).
	if p == 1 {
		return out
	}
	// Move the address from the leader to processor 0 through cell 0.
	for t := 0; t < k; t++ {
		tt := t
		m.Step(func(c *pram.Ctx) {
			if c.ReadROM(c.ID()) == 1 {
				c.Write(0, chunkOf(out[c.ID()], tt, w))
			}
		})
		m.Step(func(c *pram.Ctx) {
			if c.ID() == 0 {
				out[0] |= c.Read(0) << (tt * w)
			}
		})
	}

	for csz := 1; csz < p; {
		width := csz
		if width > mm {
			width = mm
		}
		if csz+width > p {
			width = p - csz
		}
		base := csz
		for t := 0; t < k; t++ {
			tt := t
			m.Step(func(c *pram.Ctx) { // writers publish chunk t
				if c.ID() < width {
					c.Write(c.ID(), chunkOf(out[c.ID()], tt, w))
				}
			})
			m.Step(func(c *pram.Ctx) { // readers collect chunk t
				i := c.ID()
				if i >= base && i < base+width {
					out[i] |= c.Read(i-base) << (tt * w)
				}
			})
		}
		csz += width
	}
	return out
}

// LeaderQSM solves leader recognition on a QSM machine (the model of
// Lemma 5.3 itself): every processor reads its own input cell (the input
// occupies machine cells [inBase, inBase+p)), the processor that finds the
// 1 seeds a broadcast of its index through cells [0, p), and the doubling
// broadcast distributes it. Upper bound Θ(lg m + p/m) on the QSM(m) —
// against the lemma's Ω(p·lg m/(m·w)) — and Θ(g·(lg p/lg g + 1)) on the
// QSM(g). The machine needs Mem >= inBase + p with inBase >= 2p (the
// broadcast scratch).
func LeaderQSM(m *qsm.Machine, inBase, leader int) []int64 {
	p := m.P()
	if inBase < 2*p || m.Mem() < inBase+p {
		panic("problems: LeaderQSM needs Mem >= inBase+p, inBase >= 2p")
	}
	if leader < 0 || leader >= p {
		panic("problems: leader out of range")
	}
	m.Store(inBase+leader, 1)
	found := make([]bool, p)
	mm := m.Cost().M
	if m.Cost().Kind == model.KindQSMg {
		mm = p
	}
	// Every processor reads its own input cell (spread m per step).
	m.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		if c.ReadAt(i/mm, inBase+i) == 1 {
			found[i] = true
		}
	})
	// The finder broadcasts its index.
	root := -1
	for i, f := range found {
		if f {
			root = i
		}
	}
	return collective.BroadcastQSM(m, root, int64(root))
}
