package problems_test

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/problems"
	"parbw/internal/xrand"
)

// ExampleColumnsortBSP sorts keys on a bandwidth-limited machine with the
// paper's splitter-free columnsort.
func ExampleColumnsortBSP() {
	m := bsp.New(bsp.Config{P: 16, Cost: model.BSPmLinear(4, 2), Seed: 1})
	keys := []int64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 15, 11, 13, 10, 14, 12}
	sorted := problems.ColumnsortBSP(m, keys, 4)
	fmt.Println(sorted[:8])
	// Output: [0 1 2 3 4 5 6 7]
}

// ExampleListRankContractBSP ranks a linked list by randomized contraction —
// Table 1 row 4's work-efficient algorithm.
func ExampleListRankContractBSP() {
	// The list 2 → 0 → 1 (node 1 is the tail).
	list := problems.List{Succ: []int{1, -1, 0}}
	m := bsp.New(bsp.Config{P: 3, Cost: model.BSPmLinear(2, 1), Seed: 1})
	ranks := problems.ListRankContractBSP(m, list)
	fmt.Println(ranks)
	// Output: [1 0 2]
}

// ExampleLeaderCR solves leader recognition in O(1) steps with concurrent
// read — against the Ω(p·lg m/(m·w)) exclusive-read lower bound.
func ExampleLeaderCR() {
	p := 32
	m := pram.New(pram.Config{P: p, Mem: 4, Mode: pram.CRCWArbitrary,
		ROM: problems.LeaderInput(p, 17), Seed: 1})
	out := problems.LeaderCR(m)
	fmt.Println(out[0], out[p-1], m.Time())
	// Output: 17 17 2
}

// ExampleHRelationCRCW routes an h-relation on the CRCW PRAM in O(h)
// contention-resolution rounds (Section 4.1).
func ExampleHRelationCRCW() {
	p := 4
	plan := [][]problems.HRelationMsg{
		{{Dst: 1, Val: 10}, {Dst: 2, Val: 20}},
		{{Dst: 2, Val: 30}},
		nil,
		{{Dst: 0, Val: 40}},
	}
	m := pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.CRCWArbitrary, Seed: 1})
	out, rounds := problems.HRelationCRCW(m, plan)
	fmt.Println(len(out[2]), rounds <= 2*problems.HRelationDegree(plan)+2)
	// Output: 2 true
}

// ExampleSampleSortBSP sorts with the splitter-based alternative used in
// the n ≫ p regime.
func ExampleSampleSortBSP() {
	m := bsp.New(bsp.Config{P: 4, Cost: model.BSPmLinear(2, 1), Seed: 1})
	rng := xrand.New(2)
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	sorted := problems.SampleSortBSP(m, keys, 8)
	fmt.Println(len(sorted), problems.IsSorted(sorted))
	// Output: 64 true
}
