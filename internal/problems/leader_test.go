package problems

import (
	"testing"
	"testing/quick"

	"parbw/internal/lower"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/qsm"
)

func crMachine(p, mm, bits int, rom []int64) *pram.Machine {
	return pram.New(pram.Config{P: p, Mem: mm, Mode: pram.CRCWArbitrary, ROM: rom, CellBits: bits, Seed: 1})
}

func erMachine(p, mm, bits int, rom []int64) *pram.Machine {
	return pram.New(pram.Config{P: p, Mem: mm, Mode: pram.EREW, ROM: rom, CellBits: bits, Seed: 1})
}

func TestLeaderCR(t *testing.T) {
	for _, p := range []int{1, 2, 8, 64, 100} {
		for _, leader := range []int{0, p / 2, p - 1} {
			m := crMachine(p, 4, 64, LeaderInput(p, leader))
			out := LeaderCR(m)
			for i, v := range out {
				if v != int64(leader) {
					t.Fatalf("p=%d leader=%d: proc %d learned %d", p, leader, i, v)
				}
			}
		}
	}
}

func TestLeaderCRNarrowCells(t *testing.T) {
	// w = 2 bits: a p=64 index needs 3 chunks; still must work.
	p, leader := 64, 45
	m := crMachine(p, 4, 2, LeaderInput(p, leader))
	out := LeaderCR(m)
	for i, v := range out {
		if v != int64(leader) {
			t.Fatalf("proc %d learned %d, want %d", i, v, leader)
		}
	}
	// Time should be ~⌈lg p / w⌉ + 1 steps.
	if m.Time() > 6 {
		t.Fatalf("CR leader took %v steps, want <= 6", m.Time())
	}
}

func TestLeaderER(t *testing.T) {
	for _, p := range []int{1, 2, 8, 64, 100} {
		for _, mm := range []int{1, 2, 8} {
			for _, leader := range []int{0, p - 1} {
				m := erMachine(p, mm, 64, LeaderInput(p, leader))
				out := LeaderER(m, mm)
				for i, v := range out {
					if v != int64(leader) {
						t.Fatalf("p=%d mm=%d leader=%d: proc %d learned %d", p, mm, leader, i, v)
					}
				}
			}
		}
	}
}

func TestLeaderERProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := 2 + int(seed%100)
		mm := 1 + int(seed%7)
		leader := int(seed>>8) % p
		m := erMachine(p, mm, 64, LeaderInput(p, leader))
		out := LeaderER(m, mm)
		for _, v := range out {
			if v != int64(leader) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 5.2 shape: the ER/CR time gap grows like p/(m·...) for fixed m.
func TestLeaderSeparationGrowsWithP(t *testing.T) {
	mm := 4
	prevGap := 0.0
	for _, p := range []int{64, 256, 1024} {
		cr := crMachine(p, mm, 64, LeaderInput(p, p/2))
		LeaderCR(cr)
		er := erMachine(p, mm, 64, LeaderInput(p, p/2))
		LeaderER(er, mm)
		gap := er.Time() / cr.Time()
		if gap <= prevGap {
			t.Fatalf("p=%d: ER/CR gap %v did not grow (prev %v)", p, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestLeaderERTimeShape(t *testing.T) {
	// ER time should be Θ(lg mm + p/mm) steps (w >= lg p), within a small
	// constant factor.
	p, mm := 256, 8
	m := erMachine(p, mm, 64, LeaderInput(p, 3))
	LeaderER(m, mm)
	shape := float64(p)/float64(mm) + 3 // lg mm
	if m.Time() > 4*shape || m.Time() < shape/4 {
		t.Fatalf("ER time %v vs shape %v out of range", m.Time(), shape)
	}
}

func TestLeaderWrongModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LeaderCR on EREW did not panic")
		}
	}()
	LeaderCR(erMachine(4, 2, 64, LeaderInput(4, 0)))
}

func TestLeaderInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range leader accepted")
		}
	}()
	LeaderInput(4, 4)
}

func TestChunks(t *testing.T) {
	if chunks(256, 64) != 1 {
		t.Fatal("chunks(256,64) != 1")
	}
	if chunks(256, 2) != 4 {
		t.Fatalf("chunks(256,2) = %d, want 4", chunks(256, 2))
	}
	if chunks(1, 64) != 1 {
		t.Fatal("chunks(1,64) != 1")
	}
}

func TestChunkOf(t *testing.T) {
	v := int64(0b110110)
	if chunkOf(v, 0, 2) != 0b10 || chunkOf(v, 1, 2) != 0b01 || chunkOf(v, 2, 2) != 0b11 {
		t.Fatal("chunkOf wrong")
	}
}

func TestLeaderQSM(t *testing.T) {
	for _, mk := range []func(p int) *qsm.Machine{
		func(p int) *qsm.Machine {
			return qsm.New(qsm.Config{P: p, Mem: 3 * p, Cost: model.QSMm(4), Seed: 1})
		},
		func(p int) *qsm.Machine {
			return qsm.New(qsm.Config{P: p, Mem: 3 * p, Cost: model.QSMg(4), Seed: 1})
		},
	} {
		for _, p := range []int{4, 32, 100} {
			for _, leader := range []int{0, p / 2, p - 1} {
				m := mk(p)
				out := LeaderQSM(m, 2*p, leader)
				for i, v := range out {
					if v != int64(leader) {
						t.Fatalf("p=%d leader=%d: proc %d learned %d", p, leader, i, v)
					}
				}
			}
		}
	}
}

func TestLeaderQSMTimeShape(t *testing.T) {
	// Θ(lg m + p/m) on the QSM(m): time falls as m rises.
	p := 512
	run := func(mm int) float64 {
		m := qsm.New(qsm.Config{P: p, Mem: 3 * p, Cost: model.QSMm(mm), Seed: 2})
		LeaderQSM(m, 2*p, p/3)
		return m.Time()
	}
	t4, t64 := run(4), run(64)
	if t4 <= t64 {
		t.Fatalf("time not decreasing in m: %v vs %v", t4, t64)
	}
	// Measured must clear the Lemma 5.3 lower bound.
	if t4 < lowerLeaderLB(p, 4) {
		t.Fatalf("measured %v below the Ω(p·lg m/(m·w)) bound %v", t4, lowerLeaderLB(p, 4))
	}
}

func lowerLeaderLB(p, m int) float64 {
	return lower.LeaderLBQSMm(p, m, 64)
}

func TestLeaderQSMValidation(t *testing.T) {
	m := qsm.New(qsm.Config{P: 8, Mem: 24, Cost: model.QSMm(2), Seed: 1})
	for _, fn := range []func(){
		func() { LeaderQSM(m, 8, 0) },  // inBase < 2p
		func() { LeaderQSM(m, 16, 9) }, // leader out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid LeaderQSM input accepted")
				}
			}()
			fn()
		}()
	}
}
