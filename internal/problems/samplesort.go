package problems

import (
	"parbw/internal/bsp"
	"parbw/internal/collective"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

// SampleSortBSP sorts n keys (distributed blockwise over the p processors)
// by randomized sample sort: each processor draws `oversample` local
// samples, the samples are gathered at processor 0, sorted locally, and
// p−1 splitters are broadcast back (a pipelined vector broadcast); each
// processor then routes its keys to the owning bucket with a scheduled
// unbalanced send and sorts its bucket locally. Returns the sorted keys,
// bucket-concatenated (bucket i at processor i).
//
// This is the classic n ≫ p sorting algorithm: the splitter broadcast
// moves p·(p−1) words, so unlike the splitter-free columnsort it is NOT
// suitable for the Table 1 n = p regime — the ablation experiment
// `ablation/sort` quantifies the crossover. Cost on the BSP(m):
// O(p²/m + (1+ε)n/m + (n/p)·lg n) with bucket sizes balanced w.h.p. by the
// oversampling.
func SampleSortBSP(m *bsp.Machine, keys []int64, oversample int) []int64 {
	p := m.P()
	n := len(keys)
	if n == 0 {
		return nil
	}
	if oversample < 1 {
		oversample = 8
	}
	per := (n + p - 1) / p
	blockOf := func(i int) (int, int) {
		lo := i * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	// Phase 1: local sort + sampling. Each processor charges its local
	// work and contributes `oversample` evenly spaced local samples.
	samples := make([][]int64, p)
	m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		lo, hi := blockOf(i)
		blk := keys[lo:hi]
		local := append([]int64(nil), blk...)
		sortInt64s(local)
		c.Charge(len(local) * bitsLen(len(local)))
		copy(keys[lo:hi], local)
		s := make([]int64, 0, oversample)
		for j := 0; j < oversample && len(local) > 0; j++ {
			s = append(s, local[j*len(local)/oversample])
		}
		samples[i] = s
	})

	// Phase 2: gather all samples at processor 0 (scheduled: per-slot load
	// bounded by striping senders), sort them, pick p−1 splitters.
	plan := make(sched.Plan, p)
	for i := 1; i < p; i++ {
		for _, s := range samples[i] {
			plan[i] = append(plan[i], bsp.Msg{Dst: 0, A: s})
		}
	}
	if _, total, _ := plan.Flits(p); total > 0 {
		sched.UnbalancedSend(m, plan, sched.Options{KnownN: total})
	}
	var splitters []int64
	m.Superstep(func(c *bsp.Ctx) {
		if c.ID() != 0 {
			return
		}
		all := append([]int64(nil), samples[0]...)
		for _, msg := range c.Recv() {
			all = append(all, msg.A)
		}
		sortInt64s(all)
		c.Charge(len(all) * bitsLen(len(all)))
		splitters = make([]int64, 0, p-1)
		for b := 1; b < p; b++ {
			splitters = append(splitters, all[b*len(all)/p])
		}
	})

	// Phase 3: broadcast the splitter vector (pipelined).
	if p > 1 {
		splitters = collective.BroadcastVecBSP(m, 0, splitters)
	}

	// Phase 4: route keys to buckets with a scheduled unbalanced send.
	bucketOf := func(k int64) int {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if splitters[mid] <= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	route := make(sched.Plan, p)
	for i := 0; i < p; i++ {
		lo, hi := blockOf(i)
		for _, k := range keys[lo:hi] {
			route[i] = append(route[i], bsp.Msg{Dst: int32(bucketOf(k)), A: k})
		}
	}
	if _, total, _ := route.Flits(p); total > 0 {
		sched.UnbalancedSend(m, route, sched.Options{KnownN: total})
	}

	// Phase 5: local bucket sort and concatenation.
	buckets := make([][]int64, p)
	m.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		var b []int64
		for _, msg := range c.Recv() {
			b = append(b, msg.A)
		}
		sortInt64s(b)
		c.Charge(len(b) * bitsLen(maxi(len(b), 1)))
		buckets[i] = b
	})
	out := make([]int64, 0, n)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// SampleSortSeeded is SampleSortBSP with explicit sampling randomness — the
// deterministic evenly-spaced sampling above makes the function fully
// deterministic, so this variant perturbs the sample offsets for
// sensitivity experiments.
func SampleSortSeeded(m *bsp.Machine, keys []int64, oversample int, rng *xrand.Source) []int64 {
	if len(keys) > 1 && rng != nil {
		// Pre-shuffle a copy so adversarially ordered inputs cannot skew
		// the evenly spaced sampling; the multiset is unchanged.
		shuffled := append([]int64(nil), keys...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		keys = shuffled
	}
	return SampleSortBSP(m, keys, oversample)
}
