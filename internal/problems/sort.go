package problems

import (
	"fmt"
	"sort"

	"parbw/internal/bsp"
	"parbw/internal/sched"
)

// Sorting on bandwidth-limited machines (Table 1 row 5).
//
// The paper sorts n keys on the BSP(m)/QSM(m) in Θ(n/m) (+L) for
// m = O(n^{1-ε}) by routing the keys to a subset of the processors and
// running a deterministic adaptation of Leighton's columnsort [Adler, Byers
// & Karp, SPAA'95]. Columnsort is splitter-free: every data movement is a
// fixed oblivious permutation, so the routing steps are balanced h-relations
// that the Section 6 schedulers move in (1+ε)n/m time each, and no
// splitter-broadcast (which would cost p·s/m time) is needed — essential in
// the Table 1 setting where n = p and each processor holds a single key.
//
// ColumnsortBSP implements the recursive distributed columnsort: an r×s
// matrix (column-major, r = N/s rows, r >= 2(s-1)²) is sorted by the 8-step
// schedule sort/transpose/sort/untranspose/sort/shift/sort/unshift, where
// each column is owned by a uniform subgroup of processors and "sort each
// column" recurses on the subgroups (in lockstep, since every subgroup has
// identical shape) until single-processor columns are sorted locally.
// The shift steps use the cyclic-shift-by-r/2 formulation; the wrapped
// column is safe because after step 5 every element is within r/2 of its
// final position, so the smallest r/2 and largest r/2 elements cannot
// interleave.

// ColumnsortBSP sorts the n keys (distributed blockwise over the p
// processors) using the first q processors as sorters, and returns the
// sorted keys (redistributed blockwise). n, p and q must be powers of two
// with q <= min(n, p). The paper's Table 1 configuration uses
// q = min(m·lg n, n).
func ColumnsortBSP(m *bsp.Machine, keys []int64, q int) []int64 {
	p := m.P()
	n := len(keys)
	if n == 0 {
		return nil
	}
	if !isPow2(n) || !isPow2(p) || !isPow2(q) {
		panic("problems: ColumnsortBSP requires power-of-two n, p, q")
	}
	if q > p || q > n {
		panic(fmt.Sprintf("problems: q = %d must be <= min(n=%d, p=%d)", q, n, p))
	}

	arr := make([]int64, n)
	// Route input from blockwise-over-p to blockwise-over-q (sorter s owns
	// arr[s·n/q, (s+1)·n/q)). The permutation is oblivious, so the message
	// count is known a priori (KnownN).
	routeBSP(m, p, n, keys,
		func(idx int) int { return idx / maxi(n/p, 1) }, // input layout owner
		func(idx int) int { return idx / (n / q) },      // sorter layout owner
		arr)

	columnsortRec(bspBackend{m}, arr, []span{{off: 0, cnt: n, procLo: 0, procN: q}})

	// Route back to blockwise-over-p.
	out := make([]int64, n)
	routeBSP(m, p, n, arr,
		func(idx int) int { return idx / (n / q) },
		func(idx int) int { return idx / maxi(n/p, 1) },
		out)
	return out
}

// span is one uniform group at a recursion level: cnt keys at positions
// [off, off+cnt), owned by procN sorters starting at procLo (cnt/procN keys
// per sorter, contiguous).
type span struct {
	off, cnt      int
	procLo, procN int
}

// ownerIn returns the sorter owning position pos of the span.
func (s span) ownerIn(pos int) int {
	per := s.cnt / s.procN
	return s.procLo + (pos-s.off)/per
}

// sortBackend abstracts the machine-specific pieces of distributed
// columnsort: moving keys along an oblivious permutation, the degenerate
// gather-sort base case, and the single-processor local sort, so that the
// same recursion drives both the BSP and the QSM machines.
type sortBackend interface {
	permute(arr []int64, spans []span, perm func(int) int)
	gatherSort(arr []int64, spans []span)
	leafSort(arr []int64, spans []span)
}

// columnsortRec sorts every span's key range; all spans are identical in
// shape and proceed in lockstep.
func columnsortRec(m sortBackend, arr []int64, spans []span) {
	s0 := spans[0]
	if s0.procN == 1 {
		m.leafSort(arr, spans)
		return
	}

	cols := pickColumns(s0.cnt, s0.procN)
	if cols < 2 {
		m.gatherSort(arr, spans)
		return
	}
	r := s0.cnt / cols
	gsz := s0.procN / cols

	// Column c of a span is the sub-span at offset off + c·r with gsz procs.
	subSpans := func() []span {
		subs := make([]span, 0, len(spans)*cols)
		for _, sp := range spans {
			for c := 0; c < cols; c++ {
				subs = append(subs, span{
					off: sp.off + c*r, cnt: r,
					procLo: sp.procLo + c*gsz, procN: gsz,
				})
			}
		}
		return subs
	}

	sortCols := func() { columnsortRec(m, arr, subSpans()) }

	// Oblivious permutations of the 8-step schedule, as functions from a
	// span-relative position to its new span-relative position. Transpose
	// picks up entries in column-major order and sets them down row-major;
	// untranspose is its inverse. Shift is the cyclic shift by r/2; its
	// inverse folds in a half-rotation of the wrapped column 0, which after
	// sorting holds the globally smallest r/2 elements in its top half and
	// the globally largest r/2 in its bottom half (they cannot interleave
	// after step 5), destined for the two ends of the array.
	n := s0.cnt
	transpose := func(k int) int { return (k%cols)*r + k/cols }
	untranspose := func(k int) int { return (k%r)*cols + k/r }
	shift := func(k int) int { return (k + r/2) % n }
	unshift := func(k int) int {
		switch {
		case k < r/2:
			return k
		case k < r:
			return n - r + k
		default:
			return k - r/2
		}
	}

	sortCols()
	m.permute(arr, spans, transpose)
	sortCols()
	m.permute(arr, spans, untranspose)
	sortCols()
	m.permute(arr, spans, shift)
	sortCols()
	m.permute(arr, spans, unshift)
}

// pickColumns returns the largest power-of-two column count s with
// 2 <= s <= q and N/s >= 2(s-1)², or 1 if none exists.
func pickColumns(n, q int) int {
	best := 1
	for s := 2; s <= q; s *= 2 {
		r := n / s
		if r >= 2*(s-1)*(s-1) {
			best = s
		}
	}
	return best
}

// bspBackend drives columnsort on a BSP machine: permutations are scheduled
// unbalanced sends, local sorts are charged work.
type bspBackend struct{ m *bsp.Machine }

func (b bspBackend) leafSort(arr []int64, spans []span) {
	b.m.Superstep(func(c *bsp.Ctx) {
		for _, sp := range spans {
			if sp.procLo == c.ID() {
				sortInt64s(arr[sp.off : sp.off+sp.cnt])
				c.Charge(sp.cnt * bitsLen(sp.cnt))
			}
		}
	})
}

// permute moves arr contents along perm (span-relative) in every span,
// using a scheduled unbalanced send for the cross-processor moves and a
// zero-cost local pass for same-owner moves. perm must be a bijection on
// [0, cnt).
func (b bspBackend) permute(arr []int64, spans []span, perm func(int) int) {
	m := b.m
	p := m.P()
	plan := make(sched.Plan, p)
	next := make([]int64, len(arr))
	known := 0
	type localMove struct {
		to int
		v  int64
	}
	localWork := make([]int, p)
	locals := make([][]localMove, p)
	for _, sp := range spans {
		for k := 0; k < sp.cnt; k++ {
			from := sp.off + k
			to := sp.off + perm(k)
			src := sp.ownerIn(from)
			dst := sp.ownerIn(to)
			if src == dst {
				locals[src] = append(locals[src], localMove{to: to, v: arr[from]})
				localWork[src]++
				continue
			}
			plan[src] = append(plan[src], bsp.Msg{Dst: int32(dst), A: arr[from], B: int64(to)})
			known++
		}
	}
	if known > 0 {
		sched.UnbalancedSend(m, plan, sched.Options{KnownN: known})
	}
	// Apply receives and local moves; charge the per-processor work.
	m.Superstep(func(c *bsp.Ctx) {
		for _, mv := range locals[c.ID()] {
			next[mv.to] = mv.v
		}
		c.Charge(localWork[c.ID()])
		for _, msg := range c.Recv() {
			next[msg.B] = msg.A
			c.Charge(1)
		}
	})
	copy(arr, next)
}

// gatherSort is the degenerate base case for spans too small for any legal
// column shape: each span's keys are gathered at its first processor,
// sorted, and scattered back.
func (b bspBackend) gatherSort(arr []int64, spans []span) {
	m := b.m
	p := m.P()
	plan := make(sched.Plan, p)
	known := 0
	for _, sp := range spans {
		for k := 0; k < sp.cnt; k++ {
			pos := sp.off + k
			src := sp.ownerIn(pos)
			if src == sp.procLo {
				continue
			}
			plan[src] = append(plan[src], bsp.Msg{Dst: int32(sp.procLo), A: arr[pos], B: int64(pos)})
			known++
		}
	}
	if known > 0 {
		sched.UnbalancedSend(m, plan, sched.Options{KnownN: known})
	}
	m.Superstep(func(c *bsp.Ctx) {
		for _, msg := range c.Recv() {
			arr[msg.B] = msg.A
			c.Charge(1)
		}
	})
	// Sort each span at its head processor.
	m.Superstep(func(c *bsp.Ctx) {
		for _, sp := range spans {
			if sp.procLo == c.ID() {
				sortInt64s(arr[sp.off : sp.off+sp.cnt])
				c.Charge(sp.cnt * bitsLen(sp.cnt))
			}
		}
	})
	// Scatter back.
	plan2 := make(sched.Plan, p)
	known2 := 0
	for _, sp := range spans {
		for k := 0; k < sp.cnt; k++ {
			pos := sp.off + k
			dst := sp.ownerIn(pos)
			if dst == sp.procLo {
				continue
			}
			plan2[sp.procLo] = append(plan2[sp.procLo], bsp.Msg{Dst: int32(dst), A: arr[pos], B: int64(pos)})
			known2++
		}
	}
	if known2 > 0 {
		sched.UnbalancedSend(m, plan2, sched.Options{KnownN: known2})
	}
	m.Superstep(func(c *bsp.Ctx) {
		for _, msg := range c.Recv() {
			arr[msg.B] = msg.A
			c.Charge(1)
		}
	})
}

// routeBSP moves n keys from layout srcOwner to layout dstOwner through a
// scheduled send and writes them into out (same global indexing).
func routeBSP(m *bsp.Machine, p, n int, in []int64,
	srcOwner, dstOwner func(int) int, out []int64) {
	plan := make(sched.Plan, p)
	known := 0
	type localMove struct {
		to int
		v  int64
	}
	locals := make([][]localMove, p)
	for idx := 0; idx < n; idx++ {
		src, dst := srcOwner(idx), dstOwner(idx)
		if src == dst {
			locals[src] = append(locals[src], localMove{to: idx, v: in[idx]})
			continue
		}
		plan[src] = append(plan[src], bsp.Msg{Dst: int32(dst), A: in[idx], B: int64(idx)})
		known++
	}
	if known > 0 {
		sched.UnbalancedSend(m, plan, sched.Options{KnownN: known})
	}
	m.Superstep(func(c *bsp.Ctx) {
		for _, mv := range locals[c.ID()] {
			out[mv.to] = mv.v
		}
		c.Charge(len(locals[c.ID()]))
		for _, msg := range c.Recv() {
			out[msg.B] = msg.A
			c.Charge(1)
		}
	})
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []int64) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
