package problems

import (
	"sort"
	"testing"
	"testing/quick"

	"parbw/internal/pram"
	"parbw/internal/xrand"
)

func hrMachine(p int) *pram.Machine {
	return pram.New(pram.Config{P: p, Mem: 2 * p, Mode: pram.CRCWArbitrary, Seed: 1})
}

// randomHRelation builds a plan where every processor sends up to h
// messages and no processor receives more than h (rejection-free: it spreads
// destinations round-robin from a random start).
func randomHRelation(rng *xrand.Source, p, h int) [][]HRelationMsg {
	plan := make([][]HRelationMsg, p)
	for i := range plan {
		k := rng.Intn(h + 1)
		start := rng.Intn(p)
		for j := 0; j < k; j++ {
			plan[i] = append(plan[i], HRelationMsg{Dst: (start + j) % p, Val: int64(i*1000 + j)})
		}
	}
	return plan
}

func receivedMultiset(out [][]HRelationMsg) []int64 {
	var vals []int64
	for _, msgs := range out {
		for _, m := range msgs {
			vals = append(vals, m.Val)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func plannedMultiset(plan [][]HRelationMsg) []int64 {
	var vals []int64
	for _, msgs := range plan {
		for _, m := range msgs {
			vals = append(vals, m.Val)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func TestHRelationDeliversAll(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 4 + int(seed%13)
		plan := randomHRelation(rng, p, 5)
		m := hrMachine(p)
		out, _ := HRelationCRCW(m, plan)
		want := plannedMultiset(plan)
		got := receivedMultiset(out)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		// Destinations must match too.
		for d, msgs := range out {
			for _, msg := range msgs {
				if msg.Dst != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Section 4.1: the realization runs in O(h) rounds (each round a constant
// number of PRAM steps).
func TestHRelationLinearInH(t *testing.T) {
	p := 32
	for _, h := range []int{1, 4, 16, 31} {
		// Worst case: everyone sends h messages to h distinct targets with
		// maximum collision (all start at 0).
		plan := make([][]HRelationMsg, p)
		for i := range plan {
			for j := 0; j < h; j++ {
				plan[i] = append(plan[i], HRelationMsg{Dst: j, Val: int64(i*100 + j)})
			}
		}
		hDeg := HRelationDegree(plan)
		m := hrMachine(p)
		_, rounds := HRelationCRCW(m, plan)
		if rounds > 2*hDeg+2 {
			t.Fatalf("h=%d (degree %d): %d rounds, want O(h)", h, hDeg, rounds)
		}
		// Each round is 5 PRAM steps in this implementation.
		if m.Time() > float64(5*(2*hDeg+2)) {
			t.Fatalf("h=%d: time %v not O(h)", h, m.Time())
		}
	}
}

func TestHRelationDegree(t *testing.T) {
	plan := [][]HRelationMsg{
		{{Dst: 1, Val: 1}, {Dst: 1, Val: 2}, {Dst: 0, Val: 3}},
		{{Dst: 1, Val: 4}},
	}
	// x̄ = 3, ȳ(dst 1) = 3.
	if got := HRelationDegree(plan); got != 3 {
		t.Fatalf("degree = %d, want 3", got)
	}
}

func TestHRelationEmptyPlan(t *testing.T) {
	m := hrMachine(4)
	out, rounds := HRelationCRCW(m, make([][]HRelationMsg, 4))
	if rounds != 0 {
		t.Fatalf("rounds = %d for empty plan", rounds)
	}
	for _, msgs := range out {
		if len(msgs) != 0 {
			t.Fatal("messages materialized from empty plan")
		}
	}
}

func TestHRelationSingleTargetContention(t *testing.T) {
	// All p-1 processors send one message to processor 0: ȳ = p-1 rounds.
	p := 16
	plan := make([][]HRelationMsg, p)
	for i := 1; i < p; i++ {
		plan[i] = []HRelationMsg{{Dst: 0, Val: int64(i)}}
	}
	m := hrMachine(p)
	out, rounds := HRelationCRCW(m, plan)
	if len(out[0]) != p-1 {
		t.Fatalf("proc 0 received %d messages, want %d", len(out[0]), p-1)
	}
	if rounds != p-1 {
		t.Fatalf("rounds = %d, want %d (one absorption per round)", rounds, p-1)
	}
}

func TestHRelationValidation(t *testing.T) {
	for _, plan := range [][][]HRelationMsg{
		{{{Dst: 9, Val: 1}}, nil, nil, nil},  // bad dst
		{{{Dst: 0, Val: -1}}, nil, nil, nil}, // negative value
		{nil, nil},                           // wrong size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid plan accepted")
				}
			}()
			HRelationCRCW(hrMachine(4), plan)
		}()
	}
}

func TestHRelationWrongModePanics(t *testing.T) {
	m := pram.New(pram.Config{P: 4, Mem: 8, Mode: pram.CRCWPriority, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("non-Arbitrary machine accepted")
		}
	}()
	HRelationCRCW(m, make([][]HRelationMsg, 4))
}

func TestPackUnpackHR(t *testing.T) {
	src, val := 12345, int64(987654321)
	s, v := unpackHR(packHR(src, val))
	if s != src || v != val {
		t.Fatalf("roundtrip = (%d,%d), want (%d,%d)", s, v, src, val)
	}
}

func radixMachine(p, xbar int) *pram.Machine {
	n := p * xbar
	return pram.New(pram.Config{P: n, Mem: 3 * n, Mode: pram.CRCWArbitrary, Seed: 1})
}

func TestHRelationRadixDeliversAll(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := 4 + int(seed%8)
		plan := randomHRelation(rng, p, 4)
		xbar := 0
		for _, msgs := range plan {
			if len(msgs) > xbar {
				xbar = len(msgs)
			}
		}
		if xbar == 0 {
			xbar = 1
		}
		m := radixMachine(p, xbar)
		out, _ := HRelationRadixCRCW(m, plan)
		want := plannedMultiset(plan)
		got := receivedMultiset(out)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		for d, msgs := range out {
			for _, msg := range msgs {
				if msg.Dst != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHRelationRadixEmpty(t *testing.T) {
	m := radixMachine(4, 1)
	out, steps := HRelationRadixCRCW(m, make([][]HRelationMsg, 4))
	if steps != 0 {
		t.Fatalf("steps = %d for empty plan", steps)
	}
	for _, msgs := range out {
		if len(msgs) != 0 {
			t.Fatal("messages from empty plan")
		}
	}
}

// The two §4.1 routes trade off: contention resolution is O(h) rounds,
// sorting is O(lg p · lg n) independent of h — sorting must win for large
// h, contention resolution for small h.
func TestHRelationRouteCrossover(t *testing.T) {
	p := 16
	run := func(h int) (contSteps, sortSteps float64) {
		plan := make([][]HRelationMsg, p)
		for i := range plan {
			for j := 0; j < h; j++ {
				plan[i] = append(plan[i], HRelationMsg{Dst: 0, Val: int64(i*1000 + j)}) // max contention
			}
		}
		mc := hrMachine(p)
		HRelationCRCW(mc, plan)
		ms := radixMachine(p, h)
		HRelationRadixCRCW(ms, plan)
		return mc.Time(), ms.Time()
	}
	c1, s1 := run(1)
	if c1 >= s1 {
		t.Fatalf("h=1: contention route (%v) should beat sorting (%v)", c1, s1)
	}
	c64, s64 := run(64)
	if s64 >= c64 {
		t.Fatalf("h=64: sorting route (%v) should beat contention resolution (%v)", s64, c64)
	}
}

func TestHRelationRadixValidation(t *testing.T) {
	m := radixMachine(2, 2)
	for _, plan := range [][][]HRelationMsg{
		{{{Dst: 5, Val: 1}}, nil},
		{{{Dst: 0, Val: -2}}, nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid radix plan accepted")
				}
			}()
			HRelationRadixCRCW(m, plan)
		}()
	}
}
