package problems

import (
	"parbw/internal/bsp"
	"parbw/internal/sched"
)

// MatrixTransposeBSP transposes an N×N matrix distributed one row per
// processor (p = N), the flagship total-exchange application of the paper's
// Section 3 ("it is used in matrix transposition, two-dimensional Fourier
// Transform, ..."): element (i, j) moves from processor i to processor j,
// a balanced (p−1)-relation routed with the scheduled unbalanced send
// (message counts are oblivious, so n is known and τ = 0). Returns the
// transposed rows.
//
// Cost: Θ(g·p) per processor-row on the BSP(g) versus Θ(p²/m + p) on the
// BSP(m) — equal at matched aggregate bandwidth m = p/g, since the traffic
// is perfectly balanced (this is the workload where local and global
// limitations coincide; the harness's totalexchange example shows the skew
// that separates them).
func MatrixTransposeBSP(m *bsp.Machine, rows [][]int64) [][]int64 {
	p := m.P()
	if len(rows) != p {
		panic("problems: need one matrix row per processor")
	}
	for i, r := range rows {
		if len(r) != p {
			panic("problems: matrix must be p×p")
		}
		_ = i
	}
	out := make([][]int64, p)
	for i := range out {
		out[i] = make([]int64, p)
		out[i][i] = rows[i][i] // diagonal stays local
	}
	plan := make(sched.Plan, p)
	n := 0
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			plan[i] = append(plan[i], bsp.Msg{Dst: int32(j), A: rows[i][j], B: int64(i)})
			n++
		}
	}
	if n > 0 {
		sched.UnbalancedSend(m, plan, sched.Options{KnownN: n})
	}
	m.Superstep(func(c *bsp.Ctx) {
		j := c.ID()
		for _, msg := range c.Recv() {
			out[j][msg.B] = msg.A
			c.Charge(1)
		}
	})
	return out
}
