package problems

import (
	"parbw/internal/pram"
)

// HRelationRadixCRCW is the Section 4.1 sort-based h-relation realization:
// "processor i writes its x_i messages to locations (i−1)x̄+1 through i·x̄
// in an array of size x̄·p ... this array is then integer chain sorted by
// destination ... each destination processor can now scan its list".
//
// The paper's chain sort runs in O(lg lg p) [Bhatt et al. 1991]; that
// algorithm is a research artifact in its own right, so this implementation
// substitutes a stable LSD radix sort over the destination bits built on
// PRAM prefix sums — O(lg p · lg(x̄p)) steps instead of O(lg lg p + h). The
// substitution preserves the route's character (sort once, then scan) and
// the comparison experiment against the contention-resolution realization
// (O(h) rounds) shows the crossover the two §4.1 algorithms trade on:
// sorting wins for large h, contention resolution for small h.
//
// The machine must have P >= x̄·p processors and Mem >= 3·x̄·p + 4 cells.
// Returns per-destination messages and the machine steps used.
func HRelationRadixCRCW(m *pram.Machine, plan [][]HRelationMsg) ([][]HRelationMsg, int) {
	p := len(plan)
	if p == 0 {
		return nil, 0
	}
	if m.Mode() == pram.EREW {
		panic("problems: HRelationRadixCRCW needs a concurrent-capable machine")
	}
	xbar := 0
	for i, msgs := range plan {
		if len(msgs) > xbar {
			xbar = len(msgs)
		}
		for _, msg := range msgs {
			if msg.Dst < 0 || msg.Dst >= p {
				panic("problems: invalid destination")
			}
			if msg.Val < 0 || msg.Val >= 1<<40 {
				panic("problems: value out of 40-bit range")
			}
		}
		_ = i
	}
	if xbar == 0 {
		return make([][]HRelationMsg, p), 0
	}
	n := xbar * p
	if m.P() < n {
		panic("problems: HRelationRadixCRCW needs P >= x̄·p")
	}
	if m.Mem() < 3*n {
		panic("problems: HRelationRadixCRCW needs Mem >= 3·x̄·p")
	}
	const empty = int64(1) << 62 // sorts after every real key

	// Region layout: A = [0, n) keys; B = [n, 2n) scatter buffer;
	// C = [2n, 3n) prefix scratch.
	stepsBefore := m.Steps()

	// Step 1: every processor writes its messages into its block (x̄
	// rounds, one write per processor per step; pad with empties).
	for j := 0; j < xbar; j++ {
		jj := j
		m.Step(func(c *pram.Ctx) {
			i := c.ID()
			if i >= p {
				return
			}
			v := empty
			if jj < len(plan[i]) {
				msg := plan[i][jj]
				v = int64(msg.Dst)<<40 | msg.Val
			}
			c.Write(i*xbar+jj, v)
		})
	}

	// Step 2: stable LSD radix sort on the destination bits (plus the
	// empty bit so padding sinks to the end).
	bits := 0
	for v := p - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	keyBit := func(v int64, b int) int64 {
		if b == bits { // the "empty" bit
			if v == empty {
				return 1
			}
			return 0
		}
		return (v >> (40 + b)) & 1
	}
	cur := make([]int64, n)
	for b := 0; b <= bits; b++ {
		bb := b
		// Read the array and the zero-indicator into C.
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			cur[s] = c.Read(s)
		})
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			ind := int64(1) - keyBit(cur[s], bb)
			c.Write(2*n+s, ind)
		})
		zeros := pram.PrefixSums(m, 2*n, n, n) // exclusive ranks of the 0-keys
		rank0 := make([]int64, n)
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			rank0[s] = c.Read(2*n + s)
		})
		// Ones rank: position among 1-keys = s − rank0[s] (stable).
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			var target int64
			if keyBit(cur[s], bb) == 0 {
				target = rank0[s]
			} else {
				target = zeros + int64(s) - rank0[s]
			}
			c.Write(n+int(target), cur[s])
		})
		// Copy B back to A.
		tmp := make([]int64, n)
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			tmp[s] = c.Read(n + s)
		})
		m.Step(func(c *pram.Ctx) {
			s := c.ID()
			if s >= n {
				return
			}
			c.Write(s, tmp[s])
		})
	}

	// Step 3: destinations scan their (contiguous) runs. The scan itself is
	// the O(h) read loop of the paper; results are assembled by the driver
	// from the sorted array, with each destination's reads charged.
	out := make([][]HRelationMsg, p)
	final := make([]int64, n)
	m.Step(func(c *pram.Ctx) {
		s := c.ID()
		if s >= n {
			return
		}
		final[s] = c.Read(s)
	})
	for _, v := range final {
		if v == empty {
			break // empties are sorted to the end
		}
		d := int(v >> 40)
		out[d] = append(out[d], HRelationMsg{Dst: d, Val: v & ((1 << 40) - 1)})
	}
	return out, m.Steps() - stepsBefore
}
