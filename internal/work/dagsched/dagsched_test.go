package dagsched

import (
	"testing"

	"parbw/internal/work"
)

// diamond: 0 -> {1, 2} -> 3
func diamond() *DAG {
	return &DAG{
		Nodes: []Node{{Work: 1}, {Work: 2}, {Work: 2}, {Work: 1}},
		Edges: []Edge{{U: 0, V: 1, Len: 1}, {U: 0, V: 2, Len: 1}, {U: 1, V: 3, Len: 2}, {U: 2, V: 3, Len: 2}},
	}
}

func TestLevels(t *testing.T) {
	d := diamond()
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if Depth(levels) != 3 {
		t.Fatalf("depth = %d", Depth(levels))
	}
}

func TestLevelsLongestPath(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 3: node 3 must band by the LONGEST path (level 2).
	d := &DAG{Nodes: make([]Node, 4), Edges: []Edge{{U: 0, V: 1}, {U: 1, V: 3}, {U: 0, V: 3}, {U: 0, V: 2}}}
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if levels[3] != 2 {
		t.Fatalf("level[3] = %d, want 2", levels[3])
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name string
		d    *DAG
	}{
		{"empty", &DAG{}},
		{"edge out of range", &DAG{Nodes: make([]Node, 2), Edges: []Edge{{U: 0, V: 5}}}},
		{"self loop", &DAG{Nodes: make([]Node, 2), Edges: []Edge{{U: 1, V: 1}}}},
		{"cycle", &DAG{Nodes: make([]Node, 2), Edges: []Edge{{U: 0, V: 1}, {U: 1, V: 0}}}},
		{"negative len", &DAG{Nodes: make([]Node, 2), Edges: []Edge{{U: 0, V: 1, Len: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.d.Check(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := diamond().Check(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
}

func TestLevelScheduleBalances(t *testing.T) {
	// Four equal-work nodes in one level over two procs: two each.
	d := &DAG{Nodes: []Node{{Work: 1}, {Work: 1}, {Work: 1}, {Work: 1}}}
	levels, _ := d.Levels()
	place := LevelSchedule(d, levels, 2)
	count := map[int]int{}
	for _, pr := range place {
		count[pr]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("placement %v not balanced", place)
	}
}

func TestCommAwarePrefersPredecessorProc(t *testing.T) {
	// Chain 0 -> 1 -> 2 with generous cap: all nodes should co-locate,
	// eliminating every cross edge.
	d := &DAG{Nodes: []Node{{Work: 1}, {Work: 1}, {Work: 1}},
		Edges: []Edge{{U: 0, V: 1, Len: 4}, {U: 1, V: 2, Len: 4}}}
	levels, _ := d.Levels()
	place := CommAwareSchedule(d, levels, 4, 2)
	edges, flits := CrossEdges(d, place)
	if edges != 0 || flits != 0 {
		t.Fatalf("comm-aware left %d cross edges (%d flits), placement %v", edges, flits, place)
	}
	// The greedy scheduler spreads the chain (each level has one node, so
	// it always picks proc 0 — also zero cross edges — use a wider DAG).
	wide := &DAG{Nodes: make([]Node, 8), Edges: []Edge{}}
	for i := range wide.Nodes {
		wide.Nodes[i].Work = 1
	}
	for v := 4; v < 8; v++ {
		wide.Edges = append(wide.Edges, Edge{U: v - 4, V: v, Len: 3})
	}
	wl, _ := wide.Levels()
	greedy := LevelSchedule(wide, wl, 4)
	aware := CommAwareSchedule(wide, wl, 4, 2)
	ge, _ := CrossEdges(wide, greedy)
	ae, _ := CrossEdges(wide, aware)
	if ae > ge {
		t.Fatalf("comm-aware (%d cross) worse than greedy (%d cross)", ae, ge)
	}
	if ae != 0 {
		t.Fatalf("comm-aware should co-locate parallel chains, %d cross edges remain", ae)
	}
}

func TestLowerDiamond(t *testing.T) {
	d := diamond()
	levels, _ := d.Levels()
	place := LevelSchedule(d, levels, 2)
	ir, err := Lower(d, levels, place, 2, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Steps) != 3 {
		t.Fatalf("supersteps = %d, want 3 (depth)", len(ir.Steps))
	}
	if err := ir.Validate(); err != nil {
		t.Fatalf("lowered IR invalid: %v", err)
	}
	if ir.Prec == nil || ir.Prec.Nodes() != 4 || len(ir.Prec.Edges) != 4 {
		t.Fatalf("prec layer missing or wrong: %+v", ir.Prec)
	}
	// Work conservation: total charged work equals total node work.
	var got, want int64
	for _, st := range ir.Steps {
		for _, w := range st.Work {
			got += w
		}
	}
	for _, n := range d.Nodes {
		want += n.Work
	}
	if got != want {
		t.Fatalf("lowered work %d != DAG work %d", got, want)
	}
	// Every cross-processor edge must have a matching send in the window
	// [level[u], level[v]) — the precedence-invariant contract.
	assertEdgesCovered(t, d, levels, place, ir)
}

func assertEdgesCovered(t *testing.T, d *DAG, levels []int, place Placement, ir *work.IR) {
	t.Helper()
	for ei, e := range d.Edges {
		su, sv := place[e.U], place[e.V]
		if su == sv {
			continue
		}
		found := false
		for step := levels[e.U]; step < levels[e.V] && !found; step++ {
			for _, s := range ir.Steps[step].Sends {
				if s.Proc == su && s.Dst == sv {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("edge %d (%d -> %d): no send %d -> %d in window [%d, %d)",
				ei, e.U, e.V, su, sv, levels[e.U], levels[e.V])
		}
	}
}

func TestLowerBatchCoalesces(t *testing.T) {
	// Two nodes on one proc each feeding two nodes on another: unbatched
	// lowering carries one message per edge, batched exactly one.
	d := &DAG{Nodes: make([]Node, 4),
		Edges: []Edge{{U: 0, V: 2, Len: 3}, {U: 1, V: 3, Len: 5}}}
	for i := range d.Nodes {
		d.Nodes[i].Work = 1
	}
	levels, _ := d.Levels()
	place := Placement{0, 0, 1, 1}
	plain, err := Lower(d, levels, place, 2, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Lower(d, levels, place, 2, 1, 1, Options{Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plain.Steps[0].Sends); n != 2 {
		t.Fatalf("unbatched sends = %d, want 2", n)
	}
	if n := len(batched.Steps[0].Sends); n != 1 {
		t.Fatalf("batched sends = %d, want 1", n)
	}
	if batched.Steps[0].Sends[0].Len != 8 {
		t.Fatalf("batched len = %d, want 8", batched.Steps[0].Sends[0].Len)
	}
	if plain.TotalFlits != batched.TotalFlits {
		t.Fatalf("batching changed flit volume: %d vs %d", plain.TotalFlits, batched.TotalFlits)
	}
	assertEdgesCovered(t, d, levels, place, batched)
}

func TestLowerBatchSplitsAtCap(t *testing.T) {
	// More coalesced flits than MaxMsgLen must split, not overflow.
	nEdges := 3
	d := &DAG{Nodes: make([]Node, 2+nEdges)}
	for i := 0; i < nEdges; i++ {
		d.Edges = append(d.Edges, Edge{U: 0, V: 2 + i, Len: work.MaxMsgLen})
	}
	levels, _ := d.Levels()
	place := make(Placement, len(d.Nodes))
	for v := 2; v < len(place); v++ {
		place[v] = 1
	}
	ir, err := Lower(d, levels, place, 2, 1, 1, Options{Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Validate(); err != nil {
		t.Fatalf("split-batched IR invalid: %v", err)
	}
	_, wantFlits := CrossEdges(d, place)
	if ir.TotalFlits != wantFlits {
		t.Fatalf("flits = %d, want %d", ir.TotalFlits, wantFlits)
	}
}

func TestLowerDeterministic(t *testing.T) {
	d := diamond()
	levels, _ := d.Levels()
	place := LevelSchedule(d, levels, 2)
	a, _ := Lower(d, levels, place, 2, 1, 1, Options{Batch: true})
	b, _ := Lower(d, levels, place, 2, 1, 1, Options{Batch: true})
	ea, _ := a.Encode()
	eb, _ := b.Encode()
	if string(ea) != string(eb) {
		t.Fatal("Lower is not deterministic")
	}
}

func TestLowerRejects(t *testing.T) {
	d := diamond()
	levels, _ := d.Levels()
	if _, err := Lower(d, levels, Placement{0}, 2, 1, 1, Options{}); err == nil {
		t.Fatal("accepted short placement")
	}
	if _, err := Lower(d, levels, Placement{0, 0, 0, 5}, 2, 1, 1, Options{}); err == nil {
		t.Fatal("accepted out-of-range placement")
	}
}
