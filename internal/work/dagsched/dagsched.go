// Package dagsched lowers computational DAGs to BSP supersteps in the work
// IR — the frontend "DAG Scheduling in the BSP Model" (Papp et al.,
// PAPERS.md) motivates. A DAG node is a unit of compute work; an edge (u, v)
// means v consumes u's output, so if u and v land on different processors
// the lowered schedule must carry a message from u's processor to v's
// strictly between their compute phases. The lowering discipline here is
// level-synchronous: nodes are banded into levels by longest path from a
// source, level t computes in phase t, and every cross-processor edge out of
// level t is sent in communication superstep t — the earliest superstep the
// precedence invariant admits, so the result validates by construction.
//
// Two placement policies are provided. LevelSchedule balances work within
// each level greedily (least-loaded processor first) and ignores
// communication. CommAwareSchedule additionally pulls nodes toward the
// processor holding the plurality of their predecessors, under a per-level
// load cap, trading a little compute balance for fewer cross-processor
// edges; combined with Lower's Batch option (coalescing all flits between a
// processor pair at a superstep into one message) it models the
// message-combining optimization BSP folklore recommends. The two policies
// price differently under BSP(g) vs BSP(m) — that comparison is the
// dag/lower and dag/comm experiments.
package dagsched

import (
	"fmt"
	"sort"

	"parbw/internal/work"
)

// Node is one unit of the computational DAG.
type Node struct {
	Work int64 // compute cost charged when the node runs
}

// Edge is a data dependency: V consumes U's output of Len flits (Len <= 1
// counts as one flit, like messages).
type Edge struct {
	U, V int
	Len  int
}

// DAG is a computational DAG. Edges must be acyclic; Check verifies.
type DAG struct {
	Nodes []Node
	Edges []Edge
}

// Check validates the DAG shape: edge endpoints in range, no self-loops,
// acyclic, node/edge counts under the work IR resource caps.
func (d *DAG) Check() error {
	n := len(d.Nodes)
	if n == 0 {
		return fmt.Errorf("dagsched: empty DAG")
	}
	if n > work.MaxSendsTotal {
		return fmt.Errorf("dagsched: %d nodes exceeds cap %d", n, work.MaxSendsTotal)
	}
	if len(d.Edges) > work.MaxSendsTotal {
		return fmt.Errorf("dagsched: %d edges exceeds cap %d", len(d.Edges), work.MaxSendsTotal)
	}
	for i, e := range d.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("dagsched: edge %d (%d -> %d) outside %d nodes", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("dagsched: edge %d is a self-loop on node %d", i, e.U)
		}
		if e.Len < 0 || e.Len > work.MaxMsgLen {
			return fmt.Errorf("dagsched: edge %d length %d out of range [0, %d]", i, e.Len, work.MaxMsgLen)
		}
	}
	if _, err := d.Levels(); err != nil {
		return err
	}
	return nil
}

// Levels bands nodes by longest path from a source: level[v] =
// 1 + max(level[u]) over edges (u, v), sources at level 0. Errors if the
// edge list has a cycle.
func (d *DAG) Levels() ([]int, error) {
	n := len(d.Nodes)
	indeg := make([]int, n)
	out := make([][]int, n)
	for ei, e := range d.Edges {
		indeg[e.V]++
		out[e.U] = append(out[e.U], ei)
	}
	level := make([]int, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, ei := range out[u] {
			v := d.Edges[ei].V
			if lv := level[u] + 1; lv > level[v] {
				level[v] = lv
			}
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("dagsched: DAG has a cycle (%d of %d nodes reachable)", seen, n)
	}
	return level, nil
}

// Depth returns the number of levels (longest path length + 1).
func Depth(levels []int) int {
	max := -1
	for _, lv := range levels {
		if lv > max {
			max = lv
		}
	}
	return max + 1
}

// Placement maps each node to a processor.
type Placement []int

// LevelSchedule places nodes level by level onto the least-work-loaded
// processor (ties broken by lowest processor id), balancing compute within
// each level and ignoring communication entirely. Deterministic: nodes
// within a level are visited in index order.
func LevelSchedule(d *DAG, levels []int, p int) Placement {
	place := make(Placement, len(d.Nodes))
	byLevel := nodesByLevel(levels)
	for _, nodes := range byLevel {
		load := make([]int64, p)
		for _, v := range nodes {
			place[v] = leastLoaded(load)
			load[place[v]] += d.Nodes[v].Work
		}
	}
	return place
}

// CommAwareSchedule places nodes level by level like LevelSchedule, but
// each node first tries the processor holding the plurality of its
// predecessors' outputs (by edge flits), accepting it unless that processor
// already carries more than capFactor times the level's mean work — in
// which case it falls back to the least-loaded processor. capFactor <= 1
// degenerates to LevelSchedule; 2 is a reasonable default.
func CommAwareSchedule(d *DAG, levels []int, p int, capFactor float64) Placement {
	place := make(Placement, len(d.Nodes))
	in := make([][]int, len(d.Nodes))
	for ei, e := range d.Edges {
		in[e.V] = append(in[e.V], ei)
	}
	byLevel := nodesByLevel(levels)
	for _, nodes := range byLevel {
		var levelWork int64
		for _, v := range nodes {
			levelWork += d.Nodes[v].Work
		}
		// Per-processor budget for this level: capFactor × mean share,
		// and always at least one node's worth of headroom.
		budget := int64(capFactor * float64(levelWork) / float64(p))
		load := make([]int64, p)
		for _, v := range nodes {
			choice := -1
			if pref := preferredProc(d, in[v], place, p); pref >= 0 && load[pref]+d.Nodes[v].Work <= maxI64(budget, d.Nodes[v].Work) {
				choice = pref
			}
			if choice < 0 {
				choice = leastLoaded(load)
			}
			place[v] = choice
			load[choice] += d.Nodes[v].Work
		}
	}
	return place
}

// preferredProc returns the processor receiving the most predecessor flits
// for node v (-1 if v has no predecessors). Ties break to the lowest
// processor id.
func preferredProc(d *DAG, inEdges []int, place Placement, p int) int {
	if len(inEdges) == 0 {
		return -1
	}
	flits := make([]int, p)
	for _, ei := range inEdges {
		e := d.Edges[ei]
		f := e.Len
		if f <= 1 {
			f = 1
		}
		flits[place[e.U]] += f
	}
	best := 0
	for i := 1; i < p; i++ {
		if flits[i] > flits[best] {
			best = i
		}
	}
	return best
}

func nodesByLevel(levels []int) [][]int {
	depth := Depth(levels)
	byLevel := make([][]int, depth)
	for v, lv := range levels {
		byLevel[lv] = append(byLevel[lv], v)
	}
	return byLevel
}

func leastLoaded(load []int64) int {
	best := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[best] {
			best = i
		}
	}
	return best
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Options tunes Lower.
type Options struct {
	// Batch coalesces all cross-processor edge flits between the same
	// (source proc, dest proc) pair at a superstep into one message —
	// message combining. Unbatched, every cross edge is its own message.
	Batch bool
}

// Lower compiles (DAG, placement) into a work.IR for a p-processor machine
// with bandwidth parameter m and latency l. Level t's nodes compute in
// phase t (work charged to their processors in superstep t); every
// cross-processor edge out of level t is sent in communication superstep t,
// the earliest the precedence layer admits. Same-processor edges cost
// nothing. Slots pack densely per processor in a deterministic order
// (edges sorted by destination processor, then edge index). The returned
// IR carries the full precedence layer and validates by construction.
func Lower(d *DAG, levels []int, place Placement, p, m, l int, opt Options) (*work.IR, error) {
	if len(place) != len(d.Nodes) {
		return nil, fmt.Errorf("dagsched: placement covers %d of %d nodes", len(place), len(d.Nodes))
	}
	for v, proc := range place {
		if proc < 0 || proc >= p {
			return nil, fmt.Errorf("dagsched: node %d placed on invalid proc %d (p=%d)", v, proc, p)
		}
	}
	depth := Depth(levels)
	if depth > work.MaxSteps {
		return nil, fmt.Errorf("dagsched: depth %d exceeds superstep cap %d", depth, work.MaxSteps)
	}

	ir := &work.IR{Version: work.Version, Family: "dag", P: p, M: m, L: l,
		Steps: make([]work.Step, depth)}

	// Compute phases: level t's work lands in superstep t's Work vector.
	for v, lv := range levels {
		st := &ir.Steps[lv]
		if st.Work == nil {
			st.Work = make([]int64, p)
		}
		st.Work[place[v]] += d.Nodes[v].Work
	}

	// Communication: group cross-processor edges by source level.
	type xfer struct {
		src, dst int // processors
		flits    int
		edge     int // original edge index, for deterministic order
	}
	bySuper := make([][]xfer, depth)
	for ei, e := range d.Edges {
		su, sv := place[e.U], place[e.V]
		if su == sv {
			continue
		}
		f := e.Len
		if f <= 1 {
			f = 1
		}
		bySuper[levels[e.U]] = append(bySuper[levels[e.U]], xfer{src: su, dst: sv, flits: f, edge: ei})
	}
	for t, xs := range bySuper {
		sort.Slice(xs, func(i, j int) bool {
			if xs[i].src != xs[j].src {
				return xs[i].src < xs[j].src
			}
			if xs[i].dst != xs[j].dst {
				return xs[i].dst < xs[j].dst
			}
			return xs[i].edge < xs[j].edge
		})
		next := make([]int, p) // per-proc slot cursor
		if opt.Batch {
			for i := 0; i < len(xs); {
				j := i
				flits := 0
				for j < len(xs) && xs[j].src == xs[i].src && xs[j].dst == xs[i].dst {
					flits += xs[j].flits
					j++
				}
				appendSend(&ir.Steps[t], next, xs[i].src, xs[i].dst, flits)
				i = j
			}
		} else {
			for _, x := range xs {
				appendSend(&ir.Steps[t], next, x.src, x.dst, x.flits)
			}
		}
	}

	// Precedence layer: the full DAG, nodes at their compute phases.
	pr := &work.Prec{Proc: make([]int, len(d.Nodes)), Step: append([]int(nil), levels...),
		Edges: make([][2]int, len(d.Edges))}
	copy(pr.Proc, place)
	for ei, e := range d.Edges {
		pr.Edges[ei] = [2]int{e.U, e.V}
	}
	ir.Prec = pr

	ir.SealTotals()
	if err := ir.Validate(); err != nil {
		return nil, fmt.Errorf("dagsched: lowered IR invalid: %w", err)
	}
	return ir, nil
}

// appendSend packs one message densely at the processor's cursor. Batching
// can exceed MaxMsgLen when many edges coalesce; the message is split into
// cap-sized chunks so the IR stays valid.
func appendSend(st *work.Step, next []int, src, dst, flits int) {
	for flits > 0 {
		n := flits
		if n > work.MaxMsgLen {
			n = work.MaxMsgLen
		}
		s := work.Send{Proc: src, Slot: next[src], Dst: dst, Len: n}
		st.Sends = append(st.Sends, s)
		next[src] = s.Slot + s.Flits()
		flits -= n
	}
}

// CrossEdges counts the cross-processor edges and flits a placement induces
// — the communication volume the two policies compete on.
func CrossEdges(d *DAG, place Placement) (edges, flits int) {
	for _, e := range d.Edges {
		if place[e.U] == place[e.V] {
			continue
		}
		edges++
		if e.Len <= 1 {
			flits++
		} else {
			flits += e.Len
		}
	}
	return edges, flits
}
