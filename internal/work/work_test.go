package work

import (
	"bytes"
	"strings"
	"testing"

	"parbw/internal/bsp"
)

func validIR() *IR {
	return &IR{
		Version: Version, Family: "test", Seed: 7, P: 4, M: 2, L: 1,
		Steps: []Step{
			{Work: []int64{3, 0, 1, 0}, Sends: []Send{
				{Proc: 0, Slot: 0, Dst: 1, Len: 2},
				{Proc: 0, Slot: 2, Dst: 2},
				{Proc: 1, Slot: 0, Dst: 3, Len: 1},
			}},
			{Sends: []Send{
				{Proc: 3, Slot: 5, Dst: 0, Len: 4},
			}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	ir := validIR()
	ir.SealTotals()
	if err := ir.Validate(); err != nil {
		t.Fatalf("valid IR rejected: %v", err)
	}
	if ir.TotalSends != 4 {
		t.Fatalf("TotalSends = %d, want 4", ir.TotalSends)
	}
	if ir.TotalFlits != 2+1+1+4 {
		t.Fatalf("TotalFlits = %d, want 8", ir.TotalFlits)
	}
}

func TestValidateDoesNotCrossCheckTotals(t *testing.T) {
	ir := validIR()
	ir.TotalSends = 999
	ir.TotalFlits = -5
	if err := ir.Validate(); err != nil {
		t.Fatalf("lying totals must stay representable, got %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*IR)
		want string
	}{
		{"bad version", func(ir *IR) { ir.Version = 99 }, "version"},
		{"p zero", func(ir *IR) { ir.P = 0 }, "p=0"},
		{"p over cap", func(ir *IR) { ir.P = MaxP + 1 }, "out of range"},
		{"m zero", func(ir *IR) { ir.M = 0 }, "m=0"},
		{"m over p", func(ir *IR) { ir.M = 5 }, "m=5"},
		{"l zero", func(ir *IR) { ir.L = 0 }, "l=0"},
		{"work too long", func(ir *IR) { ir.Steps[0].Work = make([]int64, 9) }, "work vector"},
		{"negative work", func(ir *IR) { ir.Steps[0].Work[0] = -1 }, "negative work"},
		{"bad proc", func(ir *IR) { ir.Steps[0].Sends[0].Proc = 4 }, "invalid proc"},
		{"negative proc", func(ir *IR) { ir.Steps[0].Sends[0].Proc = -1 }, "invalid proc"},
		{"bad dst", func(ir *IR) { ir.Steps[0].Sends[0].Dst = -2 }, "invalid dst"},
		{"negative slot", func(ir *IR) { ir.Steps[1].Sends[0].Slot = -1 }, "negative slot"},
		{"slot over cap", func(ir *IR) { ir.Steps[1].Sends[0].Slot = MaxSlot + 1 }, "exceeds cap"},
		{"negative len", func(ir *IR) { ir.Steps[0].Sends[2].Len = -3 }, "negative length"},
		{"len over cap", func(ir *IR) { ir.Steps[0].Sends[2].Len = MaxMsgLen + 1 }, "exceeds cap"},
		{"overlap exact", func(ir *IR) {
			ir.Steps[0].Sends = append(ir.Steps[0].Sends, Send{Proc: 1, Slot: 0, Dst: 2})
		}, "two flits in slot"},
		{"overlap span", func(ir *IR) {
			// Proc 0's Len=2 send covers slots [0,2); slot 1 collides.
			ir.Steps[0].Sends = append(ir.Steps[0].Sends, Send{Proc: 0, Slot: 1, Dst: 3})
		}, "two flits in slot"},
	}
	for _, tc := range cases {
		ir := validIR()
		tc.mut(ir)
		err := ir.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAllowsCrossProcSameSlot(t *testing.T) {
	// Distinct processors sharing a slot is contention, not a structural
	// error — the models price it.
	ir := &IR{Version: Version, P: 4, M: 2, L: 1, Steps: []Step{{Sends: []Send{
		{Proc: 0, Slot: 0, Dst: 1},
		{Proc: 1, Slot: 0, Dst: 2},
		{Proc: 2, Slot: 0, Dst: 3},
	}}}}
	if err := ir.Validate(); err != nil {
		t.Fatalf("cross-proc same-slot rejected: %v", err)
	}
}

func TestValidatePrec(t *testing.T) {
	base := func() *IR {
		ir := validIR()
		ir.Prec = &Prec{
			Proc:  []int{0, 1, 0},
			Step:  []int{0, 1, 2},
			Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}},
		}
		return ir
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid prec rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Prec)
		want string
	}{
		{"len mismatch", func(pr *Prec) { pr.Step = pr.Step[:2] }, "node procs but"},
		{"bad proc", func(pr *Prec) { pr.Proc[1] = 7 }, "invalid proc"},
		{"negative step", func(pr *Prec) { pr.Step[0] = -1 }, "invalid step"},
		{"step past end", func(pr *Prec) { pr.Step[2] = 3 }, "invalid step"},
		{"edge out of range", func(pr *Prec) { pr.Edges[0] = [2]int{0, 9} }, "outside"},
		{"edge backward", func(pr *Prec) { pr.Edges[0] = [2]int{1, 0} }, "not forward"},
		{"edge self", func(pr *Prec) { pr.Edges[0] = [2]int{1, 1} }, "not forward"},
	}
	for _, tc := range cases {
		ir := base()
		tc.mut(ir.Prec)
		err := ir.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ir := validIR()
	ir.Prec = &Prec{Proc: []int{0, 1}, Step: []int{0, 1}, Edges: [][2]int{{0, 1}}}
	ir.SealTotals()
	b1, err := ir.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b1, []byte("\n")) {
		t.Fatal("encoding must be newline-terminated")
	}
	got, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encode drifted:\n%s\n%s", b1, b2)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	if _, err := Decode([]byte(`{"version":99,"p":1,"m":1,"l":1,"steps":[],"total_sends":0,"total_flits":0}`)); err == nil {
		t.Fatal("decoded unknown version")
	}
	if _, err := Decode([]byte(`{not json`)); err == nil {
		t.Fatal("decoded malformed JSON")
	}
}

func TestEncodeStableGolden(t *testing.T) {
	// The canonical encoding is part of the corpus contract: field order is
	// struct declaration order, zero-valued optional fields are omitted.
	ir := &IR{Version: Version, Family: "g", Seed: 3, P: 2, M: 1, L: 1,
		Steps: []Step{{Sends: []Send{{Proc: 0, Slot: 0, Dst: 1, Len: 2}}}}}
	ir.SealTotals()
	b, err := ir.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":1,"family":"g","seed":3,"p":2,"m":1,"l":1,"steps":[{"sends":[{"proc":0,"slot":0,"dst":1,"len":2}]}],"total_sends":1,"total_flits":2}` + "\n"
	if string(b) != want {
		t.Fatalf("canonical encoding drifted:\ngot  %s\nwant %s", b, want)
	}
}

func TestHist(t *testing.T) {
	ir := validIR()
	hist := ir.Hist(0)
	// Slot 0: proc0 flit + proc1 flit; slot 1: proc0's second flit;
	// slot 2: proc0's zero-len (1 flit) send.
	want := []int{2, 1, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
	if got := ir.Hist(1); len(got) != 9 || got[5] != 1 || got[8] != 1 {
		t.Fatalf("step-1 hist = %v", got)
	}
}

func TestRowsFromRowsRoundTrip(t *testing.T) {
	rows := [][]bsp.Msg{
		{{Dst: 1, Len: 2, Tag: 3, A: 41, B: -2, C: 9}, {Dst: 2, A: 5}},
		nil,
		{{Dst: 0, Len: 1}},
	}
	ir, err := FromRows(rows, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ir.P != 3 || ir.M != 2 || ir.L != 4 {
		t.Fatalf("shape = p%d m%d l%d", ir.P, ir.M, ir.L)
	}
	if err := ir.Validate(); err != nil {
		t.Fatalf("FromRows produced invalid IR: %v", err)
	}
	// Dense packing: proc 0's second send starts after the first's 2 flits.
	if ir.Steps[0].Sends[1].Slot != 2 {
		t.Fatalf("second send slot = %d, want 2", ir.Steps[0].Sends[1].Slot)
	}
	back := ir.Rows(0)
	if len(back) != len(rows) {
		t.Fatalf("rows len = %d", len(back))
	}
	for p := range rows {
		if len(back[p]) != len(rows[p]) {
			t.Fatalf("proc %d: %d msgs, want %d", p, len(back[p]), len(rows[p]))
		}
		for i := range rows[p] {
			if back[p][i] != rows[p][i] {
				t.Fatalf("proc %d msg %d: %+v != %+v", p, i, back[p][i], rows[p][i])
			}
		}
	}
}

func TestFromRowsRejects(t *testing.T) {
	if _, err := FromRows([][]bsp.Msg{{{Dst: 5}}}, 1, 1); err == nil {
		t.Fatal("accepted out-of-range dst")
	}
	if _, err := FromRows([][]bsp.Msg{{{Dst: 0, Len: -1}}}, 1, 1); err == nil {
		t.Fatal("accepted negative length")
	}
}

func TestClone(t *testing.T) {
	ir := validIR()
	ir.Prec = &Prec{Proc: []int{0}, Step: []int{0}}
	cp := ir.Clone()
	cp.Steps[0].Sends[0].Dst = 3
	cp.Steps[0].Work[0] = 99
	cp.Prec.Proc[0] = 2
	if ir.Steps[0].Sends[0].Dst == 3 || ir.Steps[0].Work[0] == 99 || ir.Prec.Proc[0] == 2 {
		t.Fatal("Clone aliases the original")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(4, 2, 1)
	b.Step()
	b.Work(0, 5)
	b.Send(0, 1, 2) // slots [0,2)
	b.Send(0, 2, 1) // slot 2
	b.Send(1, 3, 0) // slot 0 (own cursor)
	b.Step()
	b.SendAt(3, 5, 0, 4)
	ir := b.IR()
	if err := ir.Validate(); err != nil {
		t.Fatalf("builder IR invalid: %v", err)
	}
	if len(ir.Steps) != 2 {
		t.Fatalf("steps = %d", len(ir.Steps))
	}
	s := ir.Steps[0].Sends
	if s[1].Slot != 2 || s[2].Slot != 0 {
		t.Fatalf("auto-packed slots wrong: %+v", s)
	}
	if ir.Steps[0].Work[0] != 5 {
		t.Fatalf("work = %v", ir.Steps[0].Work)
	}
	if ir.TotalSends != 4 || ir.TotalFlits != 2+1+1+4 {
		t.Fatalf("totals = %d/%d", ir.TotalSends, ir.TotalFlits)
	}
	// SendAt past the cursor moves the cursor beyond the explicit span.
	b2 := NewBuilder(2, 1, 1)
	b2.Step()
	b2.SendAt(0, 4, 1, 2) // slots [4,6)
	b2.Send(0, 1, 1)      // must land at 6, not 0
	ir2 := b2.IR()
	if ir2.Steps[0].Sends[1].Slot != 6 {
		t.Fatalf("cursor after SendAt = %d, want 6", ir2.Steps[0].Sends[1].Slot)
	}
	if err := ir2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSendBeforeStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send before Step did not panic")
		}
	}()
	NewBuilder(2, 1, 1).Send(0, 1, 1)
}

func TestErrorType(t *testing.T) {
	ir := validIR()
	ir.Steps[1].Sends[0].Dst = 9
	err := ir.Validate()
	we, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if we.Step != 1 || we.Index != 0 {
		t.Fatalf("Step/Index = %d/%d", we.Step, we.Index)
	}
	if !strings.HasPrefix(we.Error(), "work: ") {
		t.Fatalf("error %q lacks package prefix", we.Error())
	}
}
