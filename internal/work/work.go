// Package work defines the repository's canonical workload IR: one typed
// representation that every workload producer lowers into and every consumer
// executes from. An IR is a sequence of typed supersteps — per-processor
// compute work plus slot-scheduled sends — over a declared machine shape,
// with an optional precedence layer recording the computational DAG a
// schedule was lowered from.
//
// Before the IR, the repo carried three disjoint workload representations:
// sched.Plan (ragged per-processor message rows, slots chosen by the
// schedulers), workgen.Workload (explicit slot schedules for the fuzzing
// oracles), and ad-hoc plan builders inside harness experiment bodies. Every
// new workload family had to be implemented three times, and nothing could
// flow between the pipelines. The IR collapses them: sched compiles IR
// supersteps straight into its flat message arrays, workgen families emit IR
// and project it into the corpus encoding, the oracle invariants take IR,
// and harness bodies assemble IR through Builder. work/dagsched lowers
// computational DAGs into the same representation.
//
// Like the corpus format it subsumes, the IR encodes byte-stably: compact
// JSON in struct declaration order, newline-terminated, so identical IRs
// encode to identical bytes on every platform.
package work

import (
	"encoding/json"
	"fmt"

	"parbw/internal/bsp"
)

// Version is the IR format version stamped into every encoded IR. Bump it
// when the encoding changes incompatibly; Decode rejects unknown versions.
const Version = 1

// Hard resource caps enforced by Validate so adversarial or corrupted input
// cannot allocate an unbounded machine. They are shared with the workgen
// corpus format, which aliases them.
const (
	MaxP          = 1 << 10
	MaxSteps      = 1 << 6
	MaxSendsTotal = 1 << 16
	MaxSlot       = 1 << 20
	MaxMsgLen     = 1 << 8
)

// Send is one slot-scheduled injection: processor Proc injects a message of
// Len flits to Dst with its first flit entering the network at slot Slot.
// Len <= 1 occupies one slot, mirroring bsp.Msg.Flits. Tag/A/B/C carry the
// algorithm payload of plan-style messages so Plan ⇄ IR round trips are
// lossless; generated workloads leave them zero.
type Send struct {
	Proc int   `json:"proc"`
	Slot int   `json:"slot"`
	Dst  int   `json:"dst"`
	Len  int   `json:"len,omitempty"`
	Tag  uint8 `json:"tag,omitempty"`
	A    int64 `json:"a,omitempty"`
	B    int64 `json:"b,omitempty"`
	C    int64 `json:"c,omitempty"`
}

// Flits returns the number of injection slots the send occupies (>= 1 for
// any non-negative Len, mirroring bsp.Msg.Flits).
func (s Send) Flits() int {
	if s.Len <= 1 {
		return 1
	}
	return s.Len
}

// Msg converts the send into the engine's message type (Src is filled by
// the engine at injection time).
func (s Send) Msg() bsp.Msg {
	return bsp.Msg{Dst: int32(s.Dst), Tag: s.Tag, Len: int32(s.Len), A: s.A, B: s.B, C: s.C}
}

// Step is one typed superstep: optional per-processor compute work plus the
// slot-scheduled sends injected during the communication phase.
type Step struct {
	// Work[i] is the compute work charged to processor i before the
	// communication phase; nil or short means zero. len(Work) must not
	// exceed the IR's P.
	Work  []int64 `json:"work,omitempty"`
	Sends []Send  `json:"sends"`
}

// Prec is the optional precedence layer: the computational DAG a schedule
// was lowered from. Node i is placed on processor Proc[i] and computed in
// compute phase Step[i]; compute phase t runs before communication
// superstep t, so a node with Step[i] == len(ir.Steps) computes after the
// final communication phase. Every edge (u, v) requires Step[u] < Step[v],
// and a cross-processor edge requires a message from Proc[u] to Proc[v] in
// some communication superstep t with Step[u] <= t < Step[v] — the
// precedence invariant the oracle replays.
type Prec struct {
	Proc  []int    `json:"proc"`
	Step  []int    `json:"step"`
	Edges [][2]int `json:"edges"`
}

// Nodes returns the number of DAG nodes the layer records.
func (pr *Prec) Nodes() int { return len(pr.Proc) }

// Clone returns a deep copy of the layer.
func (pr *Prec) Clone() *Prec {
	if pr == nil {
		return nil
	}
	return &Prec{
		Proc:  append([]int(nil), pr.Proc...),
		Step:  append([]int(nil), pr.Step...),
		Edges: append([][2]int(nil), pr.Edges...),
	}
}

// IR is the canonical workload: a machine shape, typed supersteps, an
// optional precedence layer, and declared traffic totals. Fields are
// exported and JSON-tagged in declaration order; encoding/json preserves
// that order, making Encode byte-stable.
type IR struct {
	Version int    `json:"version"`
	Family  string `json:"family,omitempty"` // provenance label (workgen family, "plan", "dag", ...)
	Seed    uint64 `json:"seed,omitempty"`
	P       int    `json:"p"`
	M       int    `json:"m"`
	L       int    `json:"l"`
	Steps   []Step `json:"steps"`
	Prec    *Prec  `json:"prec,omitempty"`

	// Declared totals, written by the producer. Consumers that audit
	// workloads (the oracle's conservation invariant) recompute both from
	// the sends and flag disagreement; Validate deliberately does not
	// cross-check them, so lying-totals counterexamples stay representable.
	TotalSends int `json:"total_sends"`
	TotalFlits int `json:"total_flits"`
}

// Encode returns the canonical byte encoding of the IR: compact JSON in
// struct declaration order, terminated by a newline.
func (ir *IR) Encode() ([]byte, error) {
	b, err := json.Marshal(ir)
	if err != nil {
		return nil, fmt.Errorf("work: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses an encoded IR. It validates only JSON well-formedness and
// the format version; run Validate before driving the IR through a machine.
func Decode(data []byte) (*IR, error) {
	var ir IR
	if err := json.Unmarshal(data, &ir); err != nil {
		return nil, fmt.Errorf("work: decode: %w", err)
	}
	if ir.Version != Version {
		return nil, fmt.Errorf("work: unsupported IR version %d (have %d)", ir.Version, Version)
	}
	return &ir, nil
}

// Error reports why an IR failed validation. Step is the offending
// superstep and Index the offending send within it; both are -1 for shape,
// work, or precedence errors with no single offending send.
type Error struct {
	Step   int
	Index  int
	Reason string
}

func (e *Error) Error() string { return "work: " + e.Reason }

func shapeErr(format string, args ...any) error {
	return &Error{Step: -1, Index: -1, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks that the IR is structurally sound and small enough to
// simulate. It subsumes the rejection semantics of sched.CheckPlan and
// sched.CheckSlotSchedule: machine shape in range, step/send counts under
// the resource caps, every send's endpoints inside the machine with
// non-negative slot and length, no processor injecting two flits in the
// same slot (multi-flit spans included), work vectors no longer than P with
// non-negative entries, and — when a precedence layer is present — every
// node placed inside the machine and the step range with every edge
// strictly forward in time. It never panics, whatever the input.
func (ir *IR) Validate() error {
	if ir.Version != Version {
		return shapeErr("unsupported IR version %d", ir.Version)
	}
	if ir.P < 1 || ir.P > MaxP {
		return shapeErr("p=%d out of range [1, %d]", ir.P, MaxP)
	}
	if ir.M < 1 || ir.M > ir.P {
		return shapeErr("m=%d out of range [1, p=%d]", ir.M, ir.P)
	}
	// The BSP cost models require L >= 1.
	if ir.L < 1 || ir.L > MaxSlot {
		return shapeErr("l=%d out of range [1, %d]", ir.L, MaxSlot)
	}
	if len(ir.Steps) > MaxSteps {
		return shapeErr("%d supersteps exceeds cap %d", len(ir.Steps), MaxSteps)
	}
	total := 0
	for si := range ir.Steps {
		step := &ir.Steps[si]
		if len(step.Work) > ir.P {
			return shapeErr("superstep %d: work vector has %d entries for p=%d", si, len(step.Work), ir.P)
		}
		for i, wu := range step.Work {
			if wu < 0 {
				return shapeErr("superstep %d: proc %d has negative work %d", si, i, wu)
			}
		}
		total += len(step.Sends)
		if total > MaxSendsTotal {
			return shapeErr("more than %d sends total", MaxSendsTotal)
		}
		if err := checkStepSends(ir.P, si, step.Sends); err != nil {
			return err
		}
	}
	if err := ir.validatePrec(); err != nil {
		return err
	}
	return nil
}

// checkStepSends validates one superstep's sends: endpoint ranges, slot and
// length signs, the resource caps, and the per-processor overlap sweep —
// the error-returning analogue of the engine's injection validation. Sends
// by distinct processors may share a slot; that is contention, which the
// models price rather than forbid.
func checkStepSends(p, si int, sends []Send) error {
	for i, s := range sends {
		if s.Proc < 0 || s.Proc >= p {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: send %d from invalid proc %d (p=%d)", si, i, s.Proc, p)}
		}
		if s.Dst < 0 || s.Dst >= p {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: proc %d send %d to invalid dst %d (p=%d)", si, s.Proc, i, s.Dst, p)}
		}
		if s.Slot < 0 {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: proc %d send %d at negative slot %d", si, s.Proc, i, s.Slot)}
		}
		if s.Slot > MaxSlot {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: slot %d exceeds cap %d", si, s.Slot, MaxSlot)}
		}
		if s.Len < 0 {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: proc %d send %d has negative length %d", si, s.Proc, i, s.Len)}
		}
		if s.Len > MaxMsgLen {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: len %d exceeds cap %d", si, s.Len, MaxMsgLen)}
		}
	}
	// Overlap check per processor: sort (proc, slot) keys and sweep.
	order := make([]int, len(sends))
	for i := range order {
		order[i] = i
	}
	sortByProcSlot(order, sends)
	prevProc, prevEnd := -1, 0
	for _, i := range order {
		s := sends[i]
		if s.Proc == prevProc && s.Slot < prevEnd {
			return &Error{Step: si, Index: i,
				Reason: fmt.Sprintf("superstep %d: proc %d injects two flits in slot %d", si, s.Proc, s.Slot)}
		}
		prevProc, prevEnd = s.Proc, s.Slot+s.Flits()
	}
	return nil
}

// sortByProcSlot stable-sorts the index slice by (Proc, Slot) with an
// insertion sort — validation-path only, and send lists per step are small.
func sortByProcSlot(order []int, sends []Send) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := sends[order[j-1]], sends[order[j]]
			if a.Proc < b.Proc || (a.Proc == b.Proc && a.Slot <= b.Slot) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
}

// validatePrec checks the optional precedence layer. CheckPrec is the
// reusable core, shared with the corpus format's validation.
func (ir *IR) validatePrec() error {
	return CheckPrec(ir.P, len(ir.Steps), ir.Prec)
}

// CheckPrec validates a precedence layer against a machine of p processors
// and nsteps communication supersteps (nil is valid: no layer). Node step
// indices may equal nsteps — the compute phase after the final
// communication superstep.
func CheckPrec(p, nsteps int, pr *Prec) error {
	if pr == nil {
		return nil
	}
	if len(pr.Step) != len(pr.Proc) {
		return shapeErr("prec: %d node procs but %d node steps", len(pr.Proc), len(pr.Step))
	}
	n := len(pr.Proc)
	if n > MaxSendsTotal {
		return shapeErr("prec: %d nodes exceeds cap %d", n, MaxSendsTotal)
	}
	if len(pr.Edges) > MaxSendsTotal {
		return shapeErr("prec: %d edges exceeds cap %d", len(pr.Edges), MaxSendsTotal)
	}
	for i := 0; i < n; i++ {
		if pr.Proc[i] < 0 || pr.Proc[i] >= p {
			return shapeErr("prec: node %d on invalid proc %d (p=%d)", i, pr.Proc[i], p)
		}
		if pr.Step[i] < 0 || pr.Step[i] > nsteps {
			return shapeErr("prec: node %d in invalid step %d (steps=%d)", i, pr.Step[i], nsteps)
		}
	}
	for ei, e := range pr.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return shapeErr("prec: edge %d (%d -> %d) outside %d nodes", ei, u, v, n)
		}
		if pr.Step[u] >= pr.Step[v] {
			return shapeErr("prec: edge %d (%d -> %d) not forward in time: step %d >= %d",
				ei, u, v, pr.Step[u], pr.Step[v])
		}
	}
	return nil
}

// CountSends returns the actual (sends, flits) totals recomputed from the
// step data, ignoring the declared TotalSends/TotalFlits.
func (ir *IR) CountSends() (sends, flits int) {
	for si := range ir.Steps {
		sends += len(ir.Steps[si].Sends)
		for _, s := range ir.Steps[si].Sends {
			flits += s.Flits()
		}
	}
	return sends, flits
}

// SealTotals stamps the declared totals from the actual step data.
func (ir *IR) SealTotals() {
	ir.TotalSends, ir.TotalFlits = ir.CountSends()
}

// Hist returns the per-slot injection histogram of one superstep: hist[t]
// is the number of flits entering the network at slot t — the m_t the cost
// models price.
func (ir *IR) Hist(step int) []int {
	maxEnd := 0
	for _, s := range ir.Steps[step].Sends {
		if end := s.Slot + s.Flits(); end > maxEnd {
			maxEnd = end
		}
	}
	hist := make([]int, maxEnd)
	for _, s := range ir.Steps[step].Sends {
		for f := 0; f < s.Flits(); f++ {
			hist[s.Slot+f]++
		}
	}
	return hist
}

// Rows projects one superstep into per-processor message rows — the
// sched.Plan shape, slots dropped (the randomized schedulers choose their
// own). Messages keep their stored order within each processor's row.
func (ir *IR) Rows(step int) [][]bsp.Msg {
	rows := make([][]bsp.Msg, ir.P)
	for _, s := range ir.Steps[step].Sends {
		rows[s.Proc] = append(rows[s.Proc], s.Msg())
	}
	return rows
}

// FromRows lifts per-processor message rows (the sched.Plan shape) into a
// single-superstep IR, assigning each processor's messages consecutive
// slots from 0 in row order — the canonical dense schedule, which Validate
// accepts by construction for any plan sched.CheckPlan accepts. The machine
// bandwidth m and latency l are recorded on the IR (they are not part of a
// plan). The conversion is lossless: Rows(0) returns equal rows, message
// payloads included.
func FromRows(rows [][]bsp.Msg, m, l int) (*IR, error) {
	p := len(rows)
	ir := &IR{Version: Version, Family: "plan", P: p, M: m, L: l, Steps: []Step{{}}}
	for proc, msgs := range rows {
		slot := 0
		for _, msg := range msgs {
			if int(msg.Dst) < 0 || int(msg.Dst) >= p {
				return nil, shapeErr("row %d: message to invalid dst %d (p=%d)", proc, msg.Dst, p)
			}
			if msg.Len < 0 {
				return nil, shapeErr("row %d: message has negative length %d", proc, msg.Len)
			}
			s := Send{Proc: proc, Slot: slot, Dst: int(msg.Dst), Len: int(msg.Len),
				Tag: msg.Tag, A: msg.A, B: msg.B, C: msg.C}
			slot += s.Flits()
			ir.Steps[0].Sends = append(ir.Steps[0].Sends, s)
		}
	}
	ir.SealTotals()
	return ir, nil
}

// Clone returns a deep copy of the IR.
func (ir *IR) Clone() *IR {
	out := *ir
	out.Steps = make([]Step, len(ir.Steps))
	for i, st := range ir.Steps {
		out.Steps[i].Work = append([]int64(nil), st.Work...)
		out.Steps[i].Sends = append([]Send(nil), st.Sends...)
	}
	out.Prec = ir.Prec.Clone()
	return &out
}
