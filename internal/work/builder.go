package work

import "fmt"

// Builder assembles an IR imperatively — the replacement for the ad-hoc
// [][]bsp.Msg plan literals harness experiment bodies used to build. It
// keeps a per-processor slot cursor within the current superstep so callers
// can append sends without slot arithmetic: Send packs densely after the
// processor's previous send, SendAt pins an explicit slot and advances the
// cursor past it. Finalize with IR(), which seals the declared totals.
type Builder struct {
	ir   IR
	next []int // per-proc next free slot in the current superstep
}

// NewBuilder starts an IR for a p-processor machine with bandwidth
// parameter m and latency l.
func NewBuilder(p, m, l int) *Builder {
	return &Builder{
		ir:   IR{Version: Version, P: p, M: m, L: l},
		next: make([]int, p),
	}
}

// Family records the provenance label.
func (b *Builder) Family(f string) *Builder { b.ir.Family = f; return b }

// Seed records the generating seed.
func (b *Builder) Seed(s uint64) *Builder { b.ir.Seed = s; return b }

// Step opens a new superstep; subsequent Work/Send calls target it.
func (b *Builder) Step() *Builder {
	b.ir.Steps = append(b.ir.Steps, Step{})
	for i := range b.next {
		b.next[i] = 0
	}
	return b
}

func (b *Builder) cur() *Step {
	if len(b.ir.Steps) == 0 {
		panic("work: Builder used before Step()")
	}
	return &b.ir.Steps[len(b.ir.Steps)-1]
}

// Work charges units of compute work to proc in the current superstep
// (accumulating across calls).
func (b *Builder) Work(proc int, units int64) *Builder {
	st := b.cur()
	if st.Work == nil {
		st.Work = make([]int64, b.ir.P)
	}
	st.Work[proc] += units
	return b
}

// Send appends a send from proc to dst of len flits at the processor's next
// free slot (dense packing in call order).
func (b *Builder) Send(proc, dst, len int) *Builder {
	return b.SendAt(proc, b.next[proc], dst, len)
}

// SendMsg is Send with an explicit payload, for algorithm-carrying plans.
func (b *Builder) SendMsg(proc int, s Send) *Builder {
	s.Proc = proc
	s.Slot = b.next[proc]
	b.cur().Sends = append(b.cur().Sends, s)
	b.next[proc] = s.Slot + s.Flits()
	return b
}

// SendAt appends a send at an explicit slot and advances the processor's
// cursor past it if the explicit span ends later.
func (b *Builder) SendAt(proc, slot, dst, len int) *Builder {
	s := Send{Proc: proc, Slot: slot, Dst: dst, Len: len}
	b.cur().Sends = append(b.cur().Sends, s)
	if end := slot + s.Flits(); end > b.next[proc] {
		b.next[proc] = end
	}
	return b
}

// SetPrec attaches the precedence layer.
func (b *Builder) SetPrec(pr *Prec) *Builder { b.ir.Prec = pr; return b }

// IR finalizes the build: declared totals are sealed from the step data and
// the finished IR returned. The builder must not be reused afterwards.
func (b *Builder) IR() *IR {
	b.ir.SealTotals()
	return &b.ir
}

// MustIR is IR plus a Validate gate, panicking on structural errors — for
// experiment bodies, where a malformed workload is a programming bug.
func (b *Builder) MustIR() *IR {
	ir := b.IR()
	if err := ir.Validate(); err != nil {
		panic(fmt.Sprintf("work: builder produced invalid IR: %v", err))
	}
	return ir
}
