package retry

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	t0 := time.Unix(1000, 0)

	if !b.Allow(t0) {
		t.Fatal("fresh breaker not closed")
	}
	if got := b.State(t0); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
	b.Failure(t0)
	if !b.Allow(t0) || b.Open(t0) {
		t.Fatal("one failure below threshold opened the breaker")
	}
	b.Failure(t0)
	if b.Allow(t0) || !b.Open(t0) {
		t.Fatal("threshold failures did not open the breaker")
	}
	if got := b.State(t0); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Half-open after the cooldown: exactly one probe is allowed.
	t1 := t0.Add(2 * time.Minute)
	if got := b.State(t1); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	if !b.Allow(t1) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(t1) {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe failure re-opens (a second distinct open).
	b.Failure(t1)
	if b.Allow(t1.Add(time.Second)) {
		t.Fatal("failed probe did not re-open")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// Probe success closes fully.
	t2 := t1.Add(2 * time.Minute)
	if !b.Allow(t2) {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if !b.Allow(t2) || b.Open(t2) {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, time.Minute)
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		b.Failure(now)
	}
	if !b.Allow(now) || b.Open(now) || b.Opens() != 0 {
		t.Fatal("disabled breaker tripped")
	}
	if got := b.State(now); got != "disabled" {
		t.Fatalf("state = %q, want disabled", got)
	}
}

// The half-open probe slot is exclusive even under concurrent Allow callers:
// exactly one goroutine is admitted, everyone else is refused. Run under
// -race by the chaos targets.
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	t0 := time.Unix(1000, 0)
	b.Failure(t0) // open
	probeAt := t0.Add(time.Second)

	for round := 0; round < 50; round++ {
		var admitted atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Allow(probeAt) {
					admitted.Add(1)
				}
			}()
		}
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted, want exactly 1", round, n)
		}
		// Fail the probe: the breaker re-opens, then the cooldown expires
		// again before the next round's probe time.
		b.Failure(probeAt)
		probeAt = probeAt.Add(time.Second)
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	key := "deadbeef"
	for attempt := 2; attempt <= 8; attempt++ {
		d1 := BackoffDelay(base, max, key, attempt)
		d2 := BackoffDelay(base, max, key, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %s vs %s", attempt, d1, d2)
		}
		raw := base << (attempt - 2)
		if raw > max {
			raw = max
		}
		if d1 < raw/2 || d1 > max {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d1, raw/2, max)
		}
	}
	// Exponential shape: the un-capped raw window doubles per attempt, so
	// the jittered delay at attempt 5 must exceed attempt 2's window.
	if d := BackoffDelay(base, max, key, 5); d <= base+base/2 {
		t.Fatalf("attempt 5 delay %s not exponentially larger than base", d)
	}
	// Distinct keys de-correlate.
	if BackoffDelay(base, max, "aaaa", 3) == BackoffDelay(base, max, "bbbb", 3) &&
		BackoffDelay(base, max, "aaaa", 4) == BackoffDelay(base, max, "bbbb", 4) {
		t.Fatal("jitter identical across keys at two attempts")
	}
	// No backoff before the first retry, or when disabled.
	if BackoffDelay(base, max, key, 1) != 0 || BackoffDelay(-1, max, key, 3) != 0 {
		t.Fatal("expected zero delay")
	}
}
