// Package retry holds the retry discipline shared by the sweep executor
// (internal/service) and the cluster forwarding client (internal/cluster):
// a consecutive-failure circuit breaker and exponential backoff with
// deterministic jitter. Both echo the paper's thesis — pace injections
// instead of hammering a collapsing resource (the f_m^u penalty regime): a
// dependency that just failed is "overloaded", so callers back off or route
// around it rather than piling on.
package retry

import (
	"hash/fnv"
	"sync"
	"time"

	"parbw/internal/xrand"
)

// Breaker is a consecutive-failure circuit breaker. Closed: calls flow, and
// threshold consecutive failures open it. Open: calls are refused for
// cooldown. Half-open: after the cooldown one probe is allowed through at a
// time — success closes the breaker, failure re-opens it. A threshold <= 0
// disables the breaker entirely. All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
	opens     uint64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and stays open for cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call should be attempted now. A true return in
// the half-open state claims the probe slot; the caller must follow up
// with Success or Failure.
func (b *Breaker) Allow(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed call; at threshold consecutive failures the
// breaker (re-)opens for cooldown.
func (b *Breaker) Failure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.fails >= b.threshold {
		if !now.Before(b.openUntil) {
			b.opens++ // closed (or half-open) → open transition
		}
		b.openUntil = now.Add(b.cooldown)
	}
}

// Open reports whether calls are currently being refused.
func (b *Breaker) Open(now time.Time) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil)
}

// Opens returns how many closed→open (or half-open→open) transitions have
// happened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// State renders the breaker's position for observability surfaces:
// "disabled", "closed", "open", or "half-open".
func (b *Breaker) State(now time.Time) string {
	if b.threshold <= 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fails < b.threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// backoffSeed fixes the jitter stream. Jitter must be deterministic (chaos
// runs replay bit-identically) yet decorrelated across keys and attempts,
// so the stream is split by key and attempt rather than seeded per process.
const backoffSeed = 0x9e3779b97f4a7c15

// BackoffDelay returns the pause before retry `attempt` (attempts are
// 1-based; the first retry is attempt 2): base·2^(attempt−2) scaled by a
// deterministic jitter factor in [0.5, 1.5) drawn from (key, attempt), and
// capped at max. Jitter prevents a failed sweep's tasks from re-hammering
// a struggling dependency in lockstep — the same collision-collapse the
// paper's schedulers exist to avoid.
func BackoffDelay(base, max time.Duration, key string, attempt int) time.Duration {
	if base <= 0 || attempt < 2 {
		return 0
	}
	d := base
	for i := 2; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	src := xrand.New(backoffSeed).Split(h.Sum64()).Split(uint64(attempt))
	d = time.Duration(float64(d) * (0.5 + src.Float64()))
	if d > max {
		d = max
	}
	return d
}
