// Package result defines the structured form of an experiment run. Every
// experiment in internal/harness produces a *Result — named-column tables,
// verdicts, notes, and the total simulated model time — and the ASCII-table
// and CSV renderings the CLI prints are views over that structure. Because a
// Result serializes to canonical (byte-stable) JSON, runs keyed by
// (experiment, params, seed, code version) can be content-addressed, cached
// in internal/runstore, and served by internal/service.
package result

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parbw/internal/tablefmt"
)

// SchemaVersion is bumped whenever the JSON shape of Result changes, so
// stored runs from an older schema never alias current ones.
const SchemaVersion = 2

// Param is one resolved experiment parameter. Value is the canonical string
// encoding produced by the harness resolver (strconv.FormatInt /
// FormatFloat(-1) / FormatBool), so equal values always have equal bytes.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Params identifies one run of one experiment: the seed plus the full
// resolved parameter set, sorted by name. Together with the experiment id and
// the harness code version it is the cache key of the run store.
type Params struct {
	Seed   uint64  `json:"seed"`
	Values []Param `json:"values"`
}

// NewParams returns Params with the given resolved values sorted by name, so
// the JSON encoding is independent of the caller's map iteration order.
func NewParams(seed uint64, values map[string]string) Params {
	ps := make([]Param, 0, len(values))
	for k, v := range values {
		ps = append(ps, Param{Name: k, Value: v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return Params{Seed: seed, Values: ps}
}

// Get returns the value of the named param and whether it is present.
func (p Params) Get(name string) (string, bool) {
	for _, kv := range p.Values {
		if kv.Name == name {
			return kv.Value, true
		}
	}
	return "", false
}

// Canonical renders the parameter set as "k=v,k=v" in name order — the form
// folded into run-store cache keys and bench fingerprints. The seed is not
// included; it is a separate key component.
func (p Params) Canonical() string {
	var b strings.Builder
	for i, kv := range p.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv.Name)
		b.WriteByte('=')
		b.WriteString(kv.Value)
	}
	return b.String()
}

// Table is one named-column table of an experiment report. Cells are kept as
// the formatted strings the live run produced, so re-rendering is exact and
// serialization is trivially deterministic.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Verdict is a pass/fail judgment an experiment attaches to its own output
// (e.g. "the globally-limited model won every Table 1 row").
type Verdict struct {
	ID     string `json:"id"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Result is the structured outcome of one experiment run.
//
// WallNS is the host wall-clock time of the run. It is deliberately excluded
// from the JSON form (json:"-"): two runs of the same deterministic
// experiment must serialize to byte-identical JSON, and wall time is the one
// field that never repeats.
type Result struct {
	Schema     int       `json:"schema"`
	Experiment string    `json:"experiment"`
	Title      string    `json:"title,omitempty"`
	Source     string    `json:"source,omitempty"`
	Params     Params    `json:"params"`
	Tables     []Table   `json:"tables"`
	Notes      []string  `json:"notes,omitempty"`
	Verdicts   []Verdict `json:"verdicts,omitempty"`
	ModelTime  float64   `json:"model_time"`

	WallNS int64 `json:"-"`
}

// New returns an empty result for the given experiment.
func New(experiment, title, source string, params Params) *Result {
	return &Result{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Title:      title,
		Source:     source,
		Params:     params,
		Tables:     []Table{},
	}
}

// AddTable appends a table.
func (r *Result) AddTable(t Table) { r.Tables = append(r.Tables, t) }

// Notef appends a free-form note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddVerdict appends a verdict.
func (r *Result) AddVerdict(id string, ok bool, detail string) {
	r.Verdicts = append(r.Verdicts, Verdict{ID: id, OK: ok, Detail: detail})
}

// Finalize derives summary fields from the recorded tables: ModelTime is the
// sum of every cell in a column named "measured" that parses as a number —
// the total simulated model time the run charged across its sweeps.
func (r *Result) Finalize() {
	total := 0.0
	for _, t := range r.Tables {
		for ci, col := range t.Columns {
			if col != "measured" {
				continue
			}
			for _, row := range t.Rows {
				if ci < len(row) {
					if v, err := strconv.ParseFloat(row[ci], 64); err == nil {
						total += v
					}
				}
			}
		}
	}
	r.ModelTime = total
}

// CanonicalJSON returns the byte-stable JSON encoding of r. encoding/json
// emits struct fields in declaration order and all cell data is pre-formatted
// strings, so identical runs yield identical bytes — the property the
// content-addressed run store depends on.
func (r *Result) CanonicalJSON() ([]byte, error) {
	return json.Marshal(r)
}

// Decode parses a canonical-JSON result.
func Decode(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("result: decode: %w", err)
	}
	return &r, nil
}

// Render writes the human view of r to w: the aligned ASCII tables a live
// run prints, or CSV when csv is true. Byte-for-byte it matches what the
// pre-refactor harness emitted directly, followed by any verdict lines.
func (r *Result) Render(w io.Writer, csv bool) {
	for _, t := range r.Tables {
		ft := tablefmt.FromData(t.Title, t.Columns, t.Rows)
		if csv {
			fmt.Fprint(w, ft.CSV())
		} else {
			fmt.Fprintln(w, ft.String())
		}
	}
	if !csv {
		for _, n := range r.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
		for _, v := range r.Verdicts {
			status := "PASS"
			if !v.OK {
				status = "FAIL"
			}
			fmt.Fprintf(w, "[%s] %s: %s\n", status, v.ID, v.Detail)
		}
	}
}
