package result

import (
	"bytes"
	"strings"
	"testing"

	"parbw/internal/tablefmt"
)

func sample() *Result {
	r := New("table1/demo", "Demo", "Table 1", NewParams(7, map[string]string{"quick": "true"}))
	r.AddTable(Table{
		Title:   "demo table",
		Columns: []string{"p", "measured", "predicted"},
		Rows:    [][]string{{"64", "128", "100"}, {"256", "512", "400"}},
	})
	r.Notef("swept %d sizes", 2)
	r.AddVerdict("demo/ok", true, "shape matches")
	r.Finalize()
	return r
}

func TestCanonicalJSONStable(t *testing.T) {
	a, err := sample().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sample().CanonicalJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical JSON differs:\n%s\n%s", a, b)
	}
}

func TestWallTimeExcludedFromJSON(t *testing.T) {
	r := sample()
	r.WallNS = 12345
	withWall, _ := r.CanonicalJSON()
	r.WallNS = 99999
	again, _ := r.CanonicalJSON()
	if !bytes.Equal(withWall, again) {
		t.Fatal("WallNS leaked into canonical JSON")
	}
	if strings.Contains(string(withWall), "12345") {
		t.Fatal("wall time serialized")
	}
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	data, _ := r.CanonicalJSON()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := back.CanonicalJSON()
	if !bytes.Equal(data, data2) {
		t.Fatal("JSON round-trip not byte-identical")
	}
}

func TestFinalizeModelTime(t *testing.T) {
	r := sample()
	if r.ModelTime != 128+512 {
		t.Fatalf("ModelTime = %v, want 640", r.ModelTime)
	}
}

// Render must match the bytes the harness used to print directly: tables via
// tablefmt with a blank separator line (text) or raw CSV.
func TestRenderMatchesTablefmt(t *testing.T) {
	r := sample()
	ft := tablefmt.FromData(r.Tables[0].Title, r.Tables[0].Columns, r.Tables[0].Rows)

	var text bytes.Buffer
	r.Render(&text, false)
	if !strings.HasPrefix(text.String(), ft.String()+"\n") {
		t.Fatalf("text render diverges from tablefmt:\n%q", text.String())
	}
	if !strings.Contains(text.String(), "note: swept 2 sizes") {
		t.Fatal("note missing from text render")
	}
	if !strings.Contains(text.String(), "[PASS] demo/ok") {
		t.Fatal("verdict missing from text render")
	}

	var csv bytes.Buffer
	r.Render(&csv, true)
	if csv.String() != ft.CSV() {
		t.Fatalf("CSV render diverges:\n%q\nwant\n%q", csv.String(), ft.CSV())
	}
}
