package fault

import (
	"context"
	"io"
	"time"
)

// This file is the subscriber seam: InjectWriter wraps an io.Writer so a
// fault plan can impersonate a misbehaving streaming client — one that
// drains slowly (Slow), hangs up mid-stream (Error), or takes half a frame
// and then vanishes (PartialWrite). The SSE layer of the run service writes
// every frame through this seam, which is how the stream chaos suite proves
// a pathological subscriber can slow only its own stream, never the
// executor feeding it.

// InjectWriter wraps w so that plan rules at point inject faults into each
// Write: Slow sleeps (bounded by ctx) before writing, Error fails the write
// without transferring anything, PartialWrite writes half the buffer and
// then fails. A nil plan injects nothing; a nil ctx is background.
func InjectWriter(w io.Writer, plan *Plan, point string, ctx context.Context) io.Writer {
	if plan == nil {
		return w
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &injectWriter{w: w, plan: plan, point: point, ctx: ctx}
}

type injectWriter struct {
	w     io.Writer
	plan  *Plan
	point string
	ctx   context.Context
}

func (iw *injectWriter) Write(p []byte) (int, error) {
	inj := iw.plan.At(iw.point)
	if inj == nil {
		return iw.w.Write(p)
	}
	switch inj.Kind {
	case Panic:
		panic("fault: injected panic at " + iw.point)
	case Slow:
		// A slow consumer: the write itself stalls, bounded by ctx so a
		// cancelled stream does not pin the goroutine.
		t := time.NewTimer(inj.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-iw.ctx.Done():
			return 0, iw.ctx.Err()
		}
		return iw.w.Write(p)
	case PartialWrite:
		// Half a frame reaches the client, then the connection dies.
		n, err := iw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, inj.Err
	default: // Error: the client hung up
		return 0, inj.Err
	}
}
