package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// This file is the HTTP seam: InjectTransport wraps an http.RoundTripper so
// a fault plan can inject peer failures into cluster forwarding — node down,
// slow peer, partitioned responses, torn forwards — with decisions still a
// pure function of (seed, point, hit).

// Transport injection points, relative to the wrapper's prefix. A request
// hits RTSend before it leaves and RTRecv after the peer answered, so the
// two points carve the four peer-failure flavors out of the fault kinds:
//
//	RTSend + Error        node down: the request never reaches the peer
//	RTSend + Slow         slow peer: the request stalls (bounded by its ctx)
//	RTRecv + Error        partition: the peer did the work, the response is lost
//	RTRecv + PartialWrite torn forward: the response body arrives truncated
const (
	RTSend = "send"
	RTRecv = "recv"
)

// InjectTransport wraps base so that plan rules at "<prefix>send" and
// "<prefix>recv" inject faults into round trips (e.g. "cluster.peer.send"
// with prefix "cluster.peer."). A nil plan injects nothing.
func InjectTransport(base http.RoundTripper, plan *Plan, prefix string) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &injectTransport{base: base, plan: plan, prefix: prefix}
}

type injectTransport struct {
	base   http.RoundTripper
	plan   *Plan
	prefix string
}

func (t *injectTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if inj := t.plan.At(t.prefix + RTSend); inj != nil {
		switch inj.Kind {
		case Panic:
			panic("fault: injected panic at " + t.prefix + RTSend)
		case Slow:
			// A slow peer, bounded by the request's context so per-attempt
			// deadlines still cut the stall short.
			timer := time.NewTimer(inj.Delay)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				return nil, fmt.Errorf("fault: slow peer: %w", req.Context().Err())
			}
		default: // Error, PartialWrite
			// Node down: fail before anything reaches the peer.
			return nil, fmt.Errorf("fault: peer down: %w", inj.Err)
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if inj := t.plan.At(t.prefix + RTRecv); inj != nil {
		switch inj.Kind {
		case Panic:
			resp.Body.Close()
			panic("fault: injected panic at " + t.prefix + RTRecv)
		case Slow:
			timer := time.NewTimer(inj.Delay)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				resp.Body.Close()
				return nil, fmt.Errorf("fault: slow peer: %w", req.Context().Err())
			}
		case PartialWrite:
			// A torn forward: the peer's side effects happened and the
			// status line arrived, but the body is cut in half. The
			// Content-Length header is dropped so the truncation reaches
			// the caller's integrity check instead of erroring in the HTTP
			// client — exactly the case the response CRC exists for.
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, rerr
			}
			resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
			resp.ContentLength = -1
			resp.Header.Del("Content-Length")
		default: // Error
			// Partition: the request was processed — the peer may have
			// computed and stored — but the response never made it back.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("fault: partitioned peer: %w", inj.Err)
		}
	}
	return resp, nil
}
