package fault

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNilPlanIsNoFault(t *testing.T) {
	var p *Plan
	if inj := p.At("x"); inj != nil {
		t.Fatalf("nil plan injected %+v", inj)
	}
	if err := p.Fire(nil, "x"); err != nil {
		t.Fatal(err)
	}
	if p.Events() != nil || p.Fired("x") != 0 || p.Hits("x") != 0 || p.Points() != nil {
		t.Fatal("nil plan reported activity")
	}
}

func TestAlwaysRuleFiresEveryHit(t *testing.T) {
	p := NewPlan(1, Rule{Point: "a", Kind: Error})
	for i := 0; i < 5; i++ {
		inj := p.At("a")
		if inj == nil || inj.Kind != Error || !errors.Is(inj.Err, ErrInjected) {
			t.Fatalf("hit %d: %+v", i, inj)
		}
	}
	if p.Fired("a") != 5 || p.Hits("a") != 5 {
		t.Fatalf("fired=%d hits=%d", p.Fired("a"), p.Hits("a"))
	}
	if p.At("unarmed") != nil {
		t.Fatal("unarmed point fired")
	}
}

func TestAfterAndCountWindows(t *testing.T) {
	p := NewPlan(1, Rule{Point: "a", Kind: Error, After: 2, Count: 3})
	var fired []int
	for i := 0; i < 10; i++ {
		if p.At("a") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

// The core reproducibility property: the same seed yields the same firing
// pattern; a different seed yields (with these parameters) a different one.
func TestProbabilisticRuleDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) string {
		p := NewPlan(seed, Rule{Point: "a", Kind: Error, Prob: 0.5})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if p.At("a") != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a1, a2 := pattern(42), pattern(42)
	if a1 != a2 {
		t.Fatalf("same seed, different patterns:\n%s\n%s", a1, a2)
	}
	if ones := strings.Count(a1, "1"); ones < 16 || ones > 48 {
		t.Fatalf("p=0.5 fired %d/64 times", ones)
	}
	if b := pattern(43); b == a1 {
		t.Fatal("seeds 42 and 43 produced identical 64-hit patterns")
	}
}

func TestDistinctPointsDrawIndependently(t *testing.T) {
	p := NewPlan(7,
		Rule{Point: "a", Kind: Error, Prob: 0.5},
		Rule{Point: "b", Kind: Error, Prob: 0.5},
	)
	same := 0
	for i := 0; i < 64; i++ {
		fa := p.At("a") != nil
		fb := p.At("b") != nil
		if fa == fb {
			same++
		}
	}
	if same == 64 {
		t.Fatal("points a and b fired in lockstep; streams are correlated")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	p := NewPlan(1,
		Rule{Point: "a", Kind: Slow, Count: 1, Delay: time.Nanosecond},
		Rule{Point: "a", Kind: Error},
	)
	if inj := p.At("a"); inj == nil || inj.Kind != Slow {
		t.Fatalf("first hit %+v, want slow", inj)
	}
	if inj := p.At("a"); inj == nil || inj.Kind != Error {
		t.Fatalf("second hit %+v, want error (slow exhausted)", inj)
	}
	evs := p.Events()
	if len(evs) != 2 || evs[0].Kind != Slow || evs[1].Kind != Error || evs[1].Hit != 1 {
		t.Fatalf("events %+v", evs)
	}
}

func TestFireAppliesKinds(t *testing.T) {
	custom := errors.New("disk on fire")
	p := NewPlan(1,
		Rule{Point: "err", Kind: Error, Err: custom},
		Rule{Point: "slow", Kind: Slow, Delay: time.Millisecond},
		Rule{Point: "boom", Kind: Panic},
	)
	if err := p.Fire(nil, "err"); !errors.Is(err, custom) {
		t.Fatalf("Fire(err) = %v", err)
	}
	start := time.Now()
	if err := p.Fire(context.Background(), "slow"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("slow fault did not sleep")
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic fault did not panic")
			}
		}()
		p.Fire(nil, "boom")
	}()
}

func TestFireSlowRespectsContext(t *testing.T) {
	p := NewPlan(1, Rule{Point: "slow", Kind: Slow, Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Fire(ctx, "slow"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled context did not cut the sleep short")
	}
}

func writeThrough(t *testing.T, fsys FS, dir, name string, data []byte) error {
	t.Helper()
	f, err := fsys.CreateTemp(dir, ".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), filepath.Join(dir, name))
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeThrough(t, OS, sub, "x.json", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(filepath.Join(sub, "x.json"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir %v, %v", ents, err)
	}
	if err := OS.Remove(filepath.Join(sub, "x.json")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFSReadAndRenameErrors(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(1,
		Rule{Point: "t.read", Kind: Error, Count: 1},
		Rule{Point: "t.rename", Kind: Error, Count: 1},
	)
	fsys := InjectFS(OS, plan, "t.")

	if err := writeThrough(t, fsys, dir, "a.json", []byte("A")); err == nil {
		t.Fatal("rename fault not injected")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("rename error %v not ErrInjected", err)
	}
	// The fault consumed its Count; the next write succeeds.
	if err := writeThrough(t, fsys, dir, "a.json", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, "a.json")); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error %v, want injected", err)
	}
	var perr *fs.PathError
	_, err := fsys.ReadFile(filepath.Join(dir, "missing.json"))
	if !errors.As(err, &perr) && !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("clean miss after fault exhausted: %v", err)
	}
}

func TestInjectFSPartialWrite(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(1, Rule{Point: "t.write", Kind: PartialWrite, Count: 1})
	fsys := InjectFS(OS, plan, "t.")

	f, err := fsys.CreateTemp(dir, ".x.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("wrote %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	// The torn bytes really landed in the temp file — the caller is
	// responsible for cleaning it up, which is exactly what runstore's
	// tmp-sweep exists for.
	got, err := os.ReadFile(f.Name())
	if err != nil || string(got) != "01234" {
		t.Fatalf("temp holds %q, %v", got, err)
	}
}
