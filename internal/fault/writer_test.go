package fault

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectWriterKinds(t *testing.T) {
	plan := NewPlan(7,
		Rule{Point: "sub.write", Kind: Error, After: 1, Count: 1},
		Rule{Point: "sub.write", Kind: PartialWrite, After: 2, Count: 1},
	)
	var buf bytes.Buffer
	w := InjectWriter(&buf, plan, "sub.write", nil)

	// Hit 0: clean write.
	if n, err := w.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("clean write = (%d, %v)", n, err)
	}
	// Hit 1: the client hung up — nothing transferred.
	if n, err := w.Write([]byte("efgh")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("error write = (%d, %v)", n, err)
	}
	// Hit 2: half a frame, then the line dies.
	if n, err := w.Write([]byte("ijkl")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write = (%d, %v)", n, err)
	}
	if got := buf.String(); got != "abcdij" {
		t.Fatalf("bytes through the seam = %q, want %q", got, "abcdij")
	}
}

func TestInjectWriterSlowBoundedByContext(t *testing.T) {
	plan := NewPlan(7, Rule{Point: "sub.write", Kind: Slow, Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	w := InjectWriter(&buf, plan, "sub.write", ctx)
	start := time.Now()
	if _, err := w.Write([]byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled write err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled context did not cut the stall short")
	}
}

func TestInjectWriterNilPlanIsTransparent(t *testing.T) {
	var buf strings.Builder
	w := InjectWriter(&buf, nil, "sub.write", nil)
	if _, ok := w.(*injectWriter); ok {
		t.Fatal("nil plan should return the writer unwrapped")
	}
}
