// Package fault is a deterministic fault-injection framework for chaos
// testing the serve path (run store, sweep executor, HTTP API).
//
// A Plan is a set of rules attached to named injection points — e.g.
// "store.write" or "service.runner" — each describing a fault kind (error,
// panic, slow, partial-write) and when it fires. Decisions are a pure
// function of (plan seed, point name, hit index), computed with
// internal/xrand: the same plan replayed against the same workload injects
// the same faults at the same hits regardless of goroutine interleaving, so
// a chaos run that found a bug is reproducible from its seed alone.
//
// Production code threads an optional *Plan through its seams (a nil plan
// injects nothing and costs one nil check per point). The filesystem seam
// for internal/runstore lives in fs.go.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"parbw/internal/xrand"
)

// Kind is a fault category.
type Kind string

// Fault kinds. PartialWrite is only meaningful at filesystem write points
// (see InjectFS); elsewhere it behaves like Error.
const (
	Error        Kind = "error"
	Panic        Kind = "panic"
	Slow         Kind = "slow"
	PartialWrite Kind = "partial-write"
)

// ErrInjected is the default error returned by Error and PartialWrite
// faults.
var ErrInjected = errors.New("fault: injected error")

// DefaultDelay is the sleep applied by Slow faults when the rule does not
// set one.
const DefaultDelay = 10 * time.Millisecond

// Rule arms one injection point with one fault kind. Rules on the same
// point are evaluated in the order given to NewPlan; the first that fires
// wins the hit.
type Rule struct {
	Point string // injection point name, e.g. "store.write"
	Kind  Kind
	Prob  float64       // per-hit firing probability; <= 0 means always
	After int           // skip the first After hits of the point
	Count int           // fire at most Count times; <= 0 means unlimited
	Delay time.Duration // Slow only; 0 selects DefaultDelay
	Err   error         // Error/PartialWrite; nil selects ErrInjected
}

// Injection is the decision for one hit of a point.
type Injection struct {
	Kind  Kind
	Err   error
	Delay time.Duration
}

// Event records one fired injection, for test assertions.
type Event struct {
	Point string
	Kind  Kind
	Hit   int // 0-based hit index at the point
}

type ruleState struct {
	rule  Rule
	fired int
}

type pointState struct {
	hits  int
	rules []*ruleState
}

// Plan is a seeded set of injection rules. All methods are safe for
// concurrent use, and every method on a nil *Plan reports "no fault", so
// production code can hold a possibly-nil plan without guarding call sites.
type Plan struct {
	seed uint64

	mu     sync.Mutex
	points map[string]*pointState
	log    []Event
}

// NewPlan builds a plan from seed and rules.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	p := &Plan{seed: seed, points: map[string]*pointState{}}
	for _, r := range rules {
		ps := p.points[r.Point]
		if ps == nil {
			ps = &pointState{}
			p.points[r.Point] = ps
		}
		ps.rules = append(ps.rules, &ruleState{rule: r})
	}
	return p
}

// pointHash folds a point name into the stream id used to split the plan's
// random source, so distinct points draw from independent streams.
func pointHash(point string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(point))
	return h.Sum64()
}

// At records one hit of point and returns the injection to apply, or nil.
// The decision depends only on (seed, point, hit index) and the rule list,
// never on wall-clock time or goroutine scheduling.
func (p *Plan) At(point string) *Injection {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := p.points[point]
	if ps == nil {
		return nil
	}
	hit := ps.hits
	ps.hits++
	for _, rs := range ps.rules {
		r := rs.rule
		if hit < r.After {
			continue
		}
		if r.Count > 0 && rs.fired >= r.Count {
			continue
		}
		if r.Prob > 0 {
			// One independent draw per (point, hit): immune to call
			// interleaving across goroutines.
			src := xrand.New(p.seed).Split(pointHash(point)).Split(uint64(hit))
			if src.Float64() >= r.Prob {
				continue
			}
		}
		rs.fired++
		p.log = append(p.log, Event{Point: point, Kind: r.Kind, Hit: hit})
		inj := &Injection{Kind: r.Kind, Err: r.Err, Delay: r.Delay}
		if inj.Err == nil {
			inj.Err = ErrInjected
		}
		if inj.Delay <= 0 {
			inj.Delay = DefaultDelay
		}
		return inj
	}
	return nil
}

// Fire records a hit of point and applies the decided fault in place:
// Panic panics, Slow sleeps (bounded by ctx) and returns nil, Error and
// PartialWrite return the rule's error. A nil ctx is treated as
// context.Background().
func (p *Plan) Fire(ctx context.Context, point string) error {
	inj := p.At(point)
	if inj == nil {
		return nil
	}
	switch inj.Kind {
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	case Slow:
		if ctx == nil {
			ctx = context.Background()
		}
		t := time.NewTimer(inj.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	default:
		return inj.Err
	}
}

// Events returns a copy of every fired injection, in firing order.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.log...)
}

// Fired returns how many injections fired at point.
func (p *Plan) Fired(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.log {
		if e.Point == point {
			n++
		}
	}
	return n
}

// Hits returns how many times point was reached (fired or not).
func (p *Plan) Hits(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ps := p.points[point]; ps != nil {
		return ps.hits
	}
	return 0
}

// Points returns the armed point names, sorted.
func (p *Plan) Points() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.points))
	for name := range p.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
