package fault

import (
	"io/fs"
	"os"
	"time"
)

// File is the write handle produced by FS.CreateTemp — the subset of
// *os.File the run store needs.
type File interface {
	Write(p []byte) (int, error)
	Close() error
	Name() string
}

// FS is the filesystem seam threaded through internal/runstore. The OS
// variable is the real implementation; InjectFS wraps any FS with a fault
// plan. Defining the seam here lets chaos tests and production share one
// interface without runstore knowing about injection.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OS is the passthrough FS backed by package os.
var OS FS = osFS{}

// Injection points used by InjectFS, relative to the wrapper's prefix.
const (
	FSRead    = "read"    // ReadFile
	FSWrite   = "write"   // File.Write on a CreateTemp handle
	FSCreate  = "create"  // CreateTemp
	FSRename  = "rename"  // Rename
	FSRemove  = "remove"  // Remove
	FSMkdir   = "mkdir"   // MkdirAll
	FSReadDir = "readdir" // ReadDir
)

// InjectFS wraps base so that plan rules at "<prefix><op>" (e.g.
// "store.fs.write" with prefix "store.fs.") inject faults into the matching
// operations. An Error rule fails the call outright; a PartialWrite rule at
// the write point writes only the first half of the buffer into base before
// failing, modeling a torn write; Slow sleeps before the call proceeds.
func InjectFS(base FS, plan *Plan, prefix string) FS {
	return &injectFS{base: base, plan: plan, prefix: prefix}
}

type injectFS struct {
	base   FS
	plan   *Plan
	prefix string
}

// op fires non-write faults for one operation: Error/PartialWrite fail the
// call, Slow sleeps, Panic panics.
func (f *injectFS) op(name string) error {
	return f.plan.Fire(nil, f.prefix+name)
}

func (f *injectFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.op(FSMkdir); err != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.base.MkdirAll(path, perm)
}

func (f *injectFS) ReadFile(name string) ([]byte, error) {
	if err := f.op(FSRead); err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: err}
	}
	return f.base.ReadFile(name)
}

func (f *injectFS) Rename(oldpath, newpath string) error {
	if err := f.op(FSRename); err != nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *injectFS) Remove(name string) error {
	if err := f.op(FSRemove); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.base.Remove(name)
}

func (f *injectFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.op(FSReadDir); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.base.ReadDir(name)
}

func (f *injectFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.op(FSCreate); err != nil {
		return nil, &fs.PathError{Op: "create", Path: dir, Err: err}
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, fs: f}, nil
}

type injectFile struct {
	File
	fs *injectFS
}

func (w *injectFile) Write(p []byte) (int, error) {
	inj := w.fs.plan.At(w.fs.prefix + FSWrite)
	if inj == nil {
		return w.File.Write(p)
	}
	switch inj.Kind {
	case PartialWrite:
		// A torn write: half the buffer lands, then the device "fails".
		n, err := w.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, inj.Err
	case Slow:
		time.Sleep(inj.Delay)
		return w.File.Write(p)
	case Panic:
		panic("fault: injected panic at " + w.fs.prefix + FSWrite)
	default:
		return 0, inj.Err
	}
}
