package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

const transportSeed = 0xBEEF

func transportServer(t *testing.T, hits *atomic.Int32, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func doGet(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

// RTSend + Error models a dead node: the request never reaches the peer.
func TestInjectTransportNodeDown(t *testing.T) {
	var hits atomic.Int32
	ts := transportServer(t, &hits, "ok")
	plan := NewPlan(transportSeed, Rule{Point: "peer.send", Kind: Error, Count: 1})
	c := &http.Client{Transport: InjectTransport(nil, plan, "peer.")}

	if _, err := doGet(t, c, ts.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("down fault err = %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatal("request reached a 'down' peer")
	}
	// The rule is exhausted: the next request flows.
	resp, err := doGet(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("peer hits = %d, want 1", hits.Load())
	}
}

// RTSend + Slow stalls the request but respects the context deadline.
func TestInjectTransportSlowPeerRespectsContext(t *testing.T) {
	var hits atomic.Int32
	ts := transportServer(t, &hits, "ok")
	plan := NewPlan(transportSeed, Rule{Point: "peer.send", Kind: Slow, Delay: time.Minute})
	c := &http.Client{Transport: InjectTransport(nil, plan, "peer.")}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow fault err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context did not cut the injected stall short")
	}
	if hits.Load() != 0 {
		t.Fatal("stalled request reached the peer")
	}
}

// RTRecv + Error models a partition: the peer processed the request but the
// response is lost.
func TestInjectTransportPartitionLosesResponseAfterWork(t *testing.T) {
	var hits atomic.Int32
	ts := transportServer(t, &hits, "ok")
	plan := NewPlan(transportSeed, Rule{Point: "peer.recv", Kind: Error, Count: 1})
	c := &http.Client{Transport: InjectTransport(nil, plan, "peer.")}

	if _, err := doGet(t, c, ts.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("partition err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatal("partition must lose the response *after* the peer did the work")
	}
}

// RTRecv + PartialWrite models a torn forward: the body arrives truncated,
// with the Content-Length header stripped so the caller's own integrity
// check (not the HTTP client) is what catches it.
func TestInjectTransportTornForwardTruncatesBody(t *testing.T) {
	var hits atomic.Int32
	const payload = "0123456789abcdef"
	ts := transportServer(t, &hits, payload)
	plan := NewPlan(transportSeed, Rule{Point: "peer.recv", Kind: PartialWrite, Count: 1})
	c := &http.Client{Transport: InjectTransport(nil, plan, "peer.")}

	resp, err := doGet(t, c, ts.URL)
	if err != nil {
		t.Fatalf("torn forward must deliver a (truncated) response, got %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading torn body: %v", err)
	}
	if string(body) != payload[:len(payload)/2] {
		t.Fatalf("torn body = %q, want the first half of %q", body, payload)
	}
	if resp.Header.Get("Content-Length") != "" {
		t.Fatal("torn response kept its Content-Length header")
	}
}

// A nil plan injects nothing, and decisions replay: the same seed fires the
// same hits.
func TestInjectTransportNilPlanAndReplay(t *testing.T) {
	var hits atomic.Int32
	ts := transportServer(t, &hits, "ok")
	c := &http.Client{Transport: InjectTransport(nil, nil, "peer.")}
	resp, err := doGet(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	run := func() []Event {
		plan := NewPlan(transportSeed, Rule{Point: "peer.send", Kind: Error, Prob: 0.5})
		cc := &http.Client{Transport: InjectTransport(nil, plan, "peer.")}
		for i := 0; i < 20; i++ {
			if resp, err := doGet(t, cc, ts.URL); err == nil {
				resp.Body.Close()
			}
		}
		return plan.Events()
	}
	ev1, ev2 := run(), run()
	if len(ev1) == 0 {
		t.Fatal("probabilistic plan fired nothing; replay test is vacuous")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("replay diverged: %d vs %d events", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}
