package dynamic_test

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/dynamic"
	"parbw/internal/model"
)

// Example shows the Theorem 6.5 / 6.7 contrast on one hot flow: a local
// rate four times past the BSP(g)'s 1/g threshold diverges there but is
// absorbed by Algorithm B on the BSP(m) with the same aggregate bandwidth.
func Example() {
	const p, g, l, windows = 16, 8, 4, 60
	limits := dynamic.Limits{W: 32, Alpha: 0.5, Beta: 0.5} // β·g = 4
	adv := dynamic.SingleTargetAdversary{L: limits}

	lg := bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: 1})
	lres := dynamic.RunBSPgInterval(lg, adv, limits, windows)

	gm := bsp.New(bsp.Config{P: p, Cost: model.BSPm(p/g, l), Seed: 1})
	gres := dynamic.RunAlgorithmB(gm, adv, limits, windows, 0.25)

	fmt.Printf("BSP(g) stable: %v\nBSP(m) stable: %v\n",
		lres.LooksStable(), gres.LooksStable())
	// Output:
	// BSP(g) stable: false
	// BSP(m) stable: true
}
