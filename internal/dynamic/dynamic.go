// Package dynamic implements the Section 6.2 dynamic unbalanced routing
// problem under the Adversarial Queuing Theory model of Borodin et al.:
// an adversary injects point-to-point messages over an infinite time line,
// constrained by a window size w, a global arrival rate α (at most ⌈αw⌉
// messages per w consecutive steps) and a local arrival rate β (at most
// ⌈βw⌉ of them from any one source or to any one destination).
//
// Routers:
//
//   - RunBSPgInterval is Theorem 6.5's BSP(g) router: the time line is cut
//     into intervals of max(g·⌈w/g⌉, L); each interval's arrivals are routed
//     in the next interval as one h-relation. It is stable iff β <= 1/g.
//
//   - RunAlgorithmB is Theorem 6.7's BSP(m) router: each window's arrivals
//     are sent with a static scheduler (Unbalanced-Send with n = ⌈αw⌉
//     known), starting at the later of the next window boundary and the
//     completion of the previous batch. It is stable for α up to ~m and β
//     up to ~1 — a factor g more local traffic than any locally-limited
//     router can absorb.
//
// The simulation keeps two clocks: the arrival clock (discrete unit steps,
// the adversary's time line) and the machine's simulated-time clock, which
// measures how long each batch's transmission takes. Backlog is sampled at
// window boundaries; an execution "looks stable" when the backlog in the
// second half of the run does not outgrow the first half.
package dynamic

import (
	"fmt"

	"parbw/internal/bsp"
	"parbw/internal/model"
	"parbw/internal/sched"
	"parbw/internal/xrand"
)

// Arrival is one injected message.
type Arrival struct {
	Src, Dst int
}

// Adversary generates the arrivals of each time step.
type Adversary interface {
	// Step returns the messages injected at time step t.
	Step(t int) []Arrival
}

// Limits is the (w, α, β) constraint envelope.
type Limits struct {
	W     int     // window size
	Alpha float64 // global arrival rate
	Beta  float64 // local arrival rate (per source and per destination)
}

// MaxPerWindow returns ⌈αw⌉.
func (l Limits) MaxPerWindow() int { return ceilMul(l.Alpha, l.W) }

// MaxLocalPerWindow returns ⌈βw⌉.
func (l Limits) MaxLocalPerWindow() int { return ceilMul(l.Beta, l.W) }

func ceilMul(r float64, w int) int {
	v := int(r * float64(w))
	if float64(v) < r*float64(w) {
		v++
	}
	return v
}

// Validate checks that the adversary respects the limits over the horizon
// [0, steps): every window of W steps (every sliding window, or only the
// aligned ones when aligned is true — bursty adversaries meet the model
// only in aligned form) carries at most ⌈αW⌉ messages in total and ⌈βW⌉
// per source and destination. Returns an error naming the first violated
// constraint.
func Validate(adv Adversary, l Limits, p, steps int, aligned bool) error {
	perStep := make([][]Arrival, steps)
	for t := 0; t < steps; t++ {
		perStep[t] = adv.Step(t)
		for _, a := range perStep[t] {
			if a.Src < 0 || a.Src >= p || a.Dst < 0 || a.Dst >= p {
				return fmt.Errorf("dynamic: arrival %+v out of range at t=%d", a, t)
			}
		}
	}
	stride := 1
	if aligned {
		stride = l.W
	}
	for lo := 0; lo+l.W <= steps; lo += stride {
		total := 0
		src := map[int]int{}
		dst := map[int]int{}
		for t := lo; t < lo+l.W; t++ {
			for _, a := range perStep[t] {
				total++
				src[a.Src]++
				dst[a.Dst]++
			}
		}
		if total > l.MaxPerWindow() {
			return fmt.Errorf("dynamic: window [%d,%d) carries %d > ⌈αw⌉ = %d", lo, lo+l.W, total, l.MaxPerWindow())
		}
		for s, n := range src {
			if n > l.MaxLocalPerWindow() {
				return fmt.Errorf("dynamic: window [%d,%d) src %d sends %d > ⌈βw⌉ = %d", lo, lo+l.W, s, n, l.MaxLocalPerWindow())
			}
		}
		for d, n := range dst {
			if n > l.MaxLocalPerWindow() {
				return fmt.Errorf("dynamic: window [%d,%d) dst %d receives %d > ⌈βw⌉ = %d", lo, lo+l.W, d, n, l.MaxLocalPerWindow())
			}
		}
	}
	return nil
}

// Result reports a dynamic routing run.
type Result struct {
	Windows      int
	Backlog      []int     // pending messages at each window boundary
	ServiceTimes []float64 // per batch: completion time − batch close time
	MaxBacklog   int
	TotalSent    int
}

// MeanService returns the average batch service time.
func (r Result) MeanService() float64 {
	if len(r.ServiceTimes) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.ServiceTimes {
		s += v
	}
	return s / float64(len(r.ServiceTimes))
}

// LooksStable compares backlog between the two halves of the run: a stable
// system's backlog does not trend upward.
func (r Result) LooksStable() bool {
	h := len(r.Backlog) / 2
	if h == 0 {
		return true
	}
	first, second := 0.0, 0.0
	for i, b := range r.Backlog {
		if i < h {
			first += float64(b)
		} else {
			second += float64(b)
		}
	}
	first /= float64(h)
	second /= float64(len(r.Backlog) - h)
	return second <= 2*first+3
}

// collectWindow gathers the adversary's arrivals for window i (steps
// [i·w, (i+1)·w)) into a per-source plan.
func collectWindow(adv Adversary, p, w, i int) (sched.Plan, int) {
	plan := make(sched.Plan, p)
	n := 0
	for t := i * w; t < (i+1)*w; t++ {
		for _, a := range adv.Step(t) {
			plan[a.Src] = append(plan[a.Src], bsp.Msg{Dst: int32(a.Dst), A: int64(t)})
			n++
		}
	}
	return plan, n
}

// RunAlgorithmB routes the adversary's traffic on a globally-limited
// machine per Theorem 6.7: window i's batch is sent with Unbalanced-Send
// (KnownN = ⌈αw⌉, so τ = 0) starting at the later of the window's close and
// the previous batch's completion.
func RunAlgorithmB(m *bsp.Machine, adv Adversary, l Limits, windows int, eps float64) Result {
	if !m.Cost().Global() {
		panic("dynamic: RunAlgorithmB needs a globally-limited machine")
	}
	p := m.P()
	res := Result{Windows: windows}
	free := 0.0 // machine-time point at which the sender is next free
	var closed []int
	var completed []float64
	for i := 0; i < windows; i++ {
		plan, n := collectWindow(adv, p, l.W, i)
		closeAt := float64((i + 1) * l.W)
		start := closeAt
		if free > start {
			start = free
		}
		if n > 0 {
			r := sched.UnbalancedSend(m, plan, sched.Options{Eps: eps, KnownN: l.MaxPerWindow()})
			free = start + r.Time
			res.TotalSent += n
		} else {
			free = start
		}
		closed = append(closed, n)
		completed = append(completed, free)
		res.ServiceTimes = append(res.ServiceTimes, free-closeAt)
		// Backlog at this window boundary: arrivals from all closed windows
		// whose batches have not completed by closeAt.
		pending := 0
		for j := 0; j <= i; j++ {
			if completed[j] > closeAt {
				pending += closed[j]
			}
		}
		res.Backlog = append(res.Backlog, pending)
		if pending > res.MaxBacklog {
			res.MaxBacklog = pending
		}
	}
	return res
}

// RunBSPgInterval routes the adversary's traffic on a locally-limited
// machine per Theorem 6.5: intervals of size max(g·⌈w/g⌉, L), each routed in
// one plain superstep during the next interval.
func RunBSPgInterval(m *bsp.Machine, adv Adversary, l Limits, windows int) Result {
	if m.Cost().Kind != model.KindBSPg {
		panic("dynamic: RunBSPgInterval needs a BSP(g) machine")
	}
	p := m.P()
	g := m.Cost().G
	interval := g * ((l.W + g - 1) / g)
	if m.Cost().L > interval {
		interval = m.Cost().L
	}
	res := Result{Windows: windows}
	free := 0.0
	var closed []int
	var completed []float64
	for i := 0; i < windows; i++ {
		plan := make(sched.Plan, p)
		n := 0
		for t := i * interval; t < (i+1)*interval; t++ {
			for _, a := range adv.Step(t) {
				plan[a.Src] = append(plan[a.Src], bsp.Msg{Dst: int32(a.Dst), A: int64(t)})
				n++
			}
		}
		closeAt := float64((i + 1) * interval)
		start := closeAt
		if free > start {
			start = free
		}
		if n > 0 {
			r := sched.NaiveSend(m, plan) // one h-relation superstep
			free = start + r.Time
			res.TotalSent += n
		} else {
			free = start
		}
		closed = append(closed, n)
		completed = append(completed, free)
		res.ServiceTimes = append(res.ServiceTimes, free-closeAt)
		pending := 0
		for j := 0; j <= i; j++ {
			if completed[j] > closeAt {
				pending += closed[j]
			}
		}
		res.Backlog = append(res.Backlog, pending)
		if pending > res.MaxBacklog {
			res.MaxBacklog = pending
		}
	}
	return res
}

// --- Adversaries ---

// UniformAdversary injects at global rate Alpha with uniformly random
// sources and destinations (each respecting β by round-robin offsets).
type UniformAdversary struct {
	P    int
	L    Limits
	rng  *xrand.Source
	mem  map[int][]Arrival // arrivals keyed by absolute step
	done map[int]bool      // windows already generated
}

// NewUniformAdversary builds a deterministic uniform adversary.
func NewUniformAdversary(p int, l Limits, seed uint64) *UniformAdversary {
	return &UniformAdversary{P: p, L: l, rng: xrand.New(seed),
		mem: map[int][]Arrival{}, done: map[int]bool{}}
}

// Step returns the arrivals at step t. Per window of W steps it injects
// exactly ⌈αW⌉−1 messages (one under the cap, so sliding windows stay
// legal), spread evenly over the window, with sources and destinations
// walking a random permutation so no processor exceeds ⌈βW⌉.
func (a *UniformAdversary) Step(t int) []Arrival {
	win := t / a.L.W
	if !a.done[win] {
		a.done[win] = true
		total := a.L.MaxPerWindow() - 1
		if total < 0 {
			total = 0
		}
		perLocal := a.L.MaxLocalPerWindow()
		arr := make([][]Arrival, a.L.W)
		srcPerm := a.rng.Perm(a.P)
		dstPerm := a.rng.Perm(a.P)
		srcCount := make([]int, a.P)
		dstCount := make([]int, a.P)
		si, di := 0, 0
		for k := 0; k < total; k++ {
			// Next source/destination with remaining local budget; if the
			// per-processor budgets are exhausted the remaining global
			// budget is simply left unused.
			tries := 0
			for srcCount[srcPerm[si%a.P]] >= perLocal && tries < a.P {
				si++
				tries++
			}
			tries = 0
			for dstCount[dstPerm[di%a.P]] >= perLocal && tries < a.P {
				di++
				tries++
			}
			if srcCount[srcPerm[si%a.P]] >= perLocal || dstCount[dstPerm[di%a.P]] >= perLocal {
				break
			}
			s := srcPerm[si%a.P]
			d := dstPerm[di%a.P]
			srcCount[s]++
			dstCount[d]++
			si++
			di++
			arr[k*a.L.W/max1(total)] = append(arr[k*a.L.W/max1(total)], Arrival{Src: s, Dst: d})
		}
		for off := 0; off < a.L.W; off++ {
			a.mem[win*a.L.W+off] = arr[off]
		}
	}
	return a.mem[t]
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// SingleTargetAdversary injects messages all from source 0 to destination 1
// at local rate Beta — the Theorem 6.5 instability witness for β > 1/g.
type SingleTargetAdversary struct {
	L Limits
}

// Step injects ⌈βW⌉−1 messages per aligned window, spread evenly, all on
// the (0 → 1) flow.
func (a SingleTargetAdversary) Step(t int) []Arrival {
	k := a.L.MaxLocalPerWindow() - 1
	if k <= 0 {
		k = a.L.MaxLocalPerWindow()
	}
	off := t % a.L.W
	// Place the k messages at offsets 0, W/k, 2W/k, ...
	if k > 0 && off%max1(a.L.W/max1(k)) == 0 && off/max1(a.L.W/max1(k)) < k {
		return []Arrival{{Src: 0, Dst: 1}}
	}
	return nil
}

// BurstAdversary injects the whole window's budget in the window's first
// step: the bursty extreme of the constraint envelope.
type BurstAdversary struct {
	P   int
	L   Limits
	rng *xrand.Source
	mem map[int][]Arrival
}

// NewBurstAdversary builds a deterministic bursty adversary.
func NewBurstAdversary(p int, l Limits, seed uint64) *BurstAdversary {
	return &BurstAdversary{P: p, L: l, rng: xrand.New(seed), mem: map[int][]Arrival{}}
}

// Step injects ⌈αW⌉ messages at every window start (sources and
// destinations round-robin under β) and nothing elsewhere. Note aligned
// windows are at the cap; sliding windows across a boundary could see up to
// 2⌈αW⌉ — burst adversaries are validated with aligned windows only.
func (a *BurstAdversary) Step(t int) []Arrival {
	if t%a.L.W != 0 {
		return nil
	}
	if v, ok := a.mem[t]; ok {
		return v
	}
	total := a.L.MaxPerWindow() - 1
	perLocal := a.L.MaxLocalPerWindow()
	var out []Arrival
	srcCount := make([]int, a.P)
	dstCount := make([]int, a.P)
	s, d := 0, a.P/2
	for k := 0; k < total; k++ {
		for srcCount[s%a.P] >= perLocal {
			s++
		}
		for dstCount[d%a.P] >= perLocal {
			d++
		}
		out = append(out, Arrival{Src: s % a.P, Dst: d % a.P})
		srcCount[s%a.P]++
		dstCount[d%a.P]++
		s++
		d++
	}
	a.mem[t] = out
	return out
}

// Scheduler is the static routing algorithm A that Theorem 6.7
// parameterizes Algorithm B over: anything that sends a batch and reports
// its completion time.
type Scheduler func(m *bsp.Machine, plan sched.Plan, knownN int) model.Time

// UnbalancedSendScheduler adapts Theorem 6.2's scheduler.
func UnbalancedSendScheduler(eps float64) Scheduler {
	return func(m *bsp.Machine, plan sched.Plan, knownN int) model.Time {
		return sched.UnbalancedSend(m, plan, sched.Options{Eps: eps, KnownN: knownN}).Time
	}
}

// ConsecutiveSendScheduler adapts Theorem 6.3's scheduler (for flows with
// long messages whose flits must be contiguous).
func ConsecutiveSendScheduler(eps float64) Scheduler {
	return func(m *bsp.Machine, plan sched.Plan, knownN int) model.Time {
		return sched.UnbalancedConsecutiveSend(m, plan, sched.Options{Eps: eps, KnownN: knownN}).Time
	}
}

// FlitAdversary wraps an Adversary, assigning every injected message a
// fixed flit length — the variable-length extension of the dynamic problem
// (the paper's Theorem 6.7 statement is for an arbitrary scheduler A, so
// pairing a flit adversary with ConsecutiveSendScheduler exercises the
// Theorem 6.3 + 6.7 composition).
type FlitAdversary struct {
	Inner Adversary
	Len   int
}

// Step returns the inner arrivals (lengths are applied by RunAlgorithmBWith
// via the plan builder, which reads FlitAdversary.Len).
func (f FlitAdversary) Step(t int) []Arrival { return f.Inner.Step(t) }

// RunAlgorithmBWith is RunAlgorithmB with an explicit scheduler A and
// message length (flits per message; 1 for the unit case). The knownN
// handed to A is ⌈αw⌉·flits, the per-window budget in flits.
func RunAlgorithmBWith(m *bsp.Machine, adv Adversary, l Limits, windows int,
	flits int, schedule Scheduler) Result {
	if !m.Cost().Global() {
		panic("dynamic: RunAlgorithmBWith needs a globally-limited machine")
	}
	if flits < 1 {
		flits = 1
	}
	p := m.P()
	res := Result{Windows: windows}
	free := 0.0
	var closed []int
	var completed []float64
	for i := 0; i < windows; i++ {
		plan := make(sched.Plan, p)
		n := 0
		for t := i * l.W; t < (i+1)*l.W; t++ {
			for _, a := range adv.Step(t) {
				plan[a.Src] = append(plan[a.Src],
					bsp.Msg{Dst: int32(a.Dst), Len: int32(flits), A: int64(t)})
				n++
			}
		}
		closeAt := float64((i + 1) * l.W)
		start := closeAt
		if free > start {
			start = free
		}
		if n > 0 {
			took := schedule(m, plan, l.MaxPerWindow()*flits)
			free = start + took
			res.TotalSent += n
		} else {
			free = start
		}
		closed = append(closed, n)
		completed = append(completed, free)
		res.ServiceTimes = append(res.ServiceTimes, free-closeAt)
		pending := 0
		for j := 0; j <= i; j++ {
			if completed[j] > closeAt {
				pending += closed[j]
			}
		}
		res.Backlog = append(res.Backlog, pending)
		if pending > res.MaxBacklog {
			res.MaxBacklog = pending
		}
	}
	return res
}
