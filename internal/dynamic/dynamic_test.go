package dynamic

import (
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/model"
)

func bspgM(p, g, l int) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPg(g, l), Seed: 1})
}

func bspmM(p, mm, l int) *bsp.Machine {
	return bsp.New(bsp.Config{P: p, Cost: model.BSPm(mm, l), Seed: 1})
}

func TestLimits(t *testing.T) {
	l := Limits{W: 10, Alpha: 2.5, Beta: 0.3}
	if l.MaxPerWindow() != 25 {
		t.Fatalf("⌈αw⌉ = %d, want 25", l.MaxPerWindow())
	}
	if l.MaxLocalPerWindow() != 3 {
		t.Fatalf("⌈βw⌉ = %d, want 3", l.MaxLocalPerWindow())
	}
	l2 := Limits{W: 10, Alpha: 0.21, Beta: 0.21}
	if l2.MaxPerWindow() != 3 {
		t.Fatalf("⌈0.21·10⌉ = %d, want 3", l2.MaxPerWindow())
	}
}

func TestUniformAdversaryRespectsLimits(t *testing.T) {
	p := 16
	l := Limits{W: 32, Alpha: 4, Beta: 0.5}
	adv := NewUniformAdversary(p, l, 3)
	if err := Validate(adv, l, p, 20*l.W, false); err != nil {
		t.Fatalf("uniform adversary violated limits: %v", err)
	}
}

func TestSingleTargetAdversaryRespectsLimits(t *testing.T) {
	l := Limits{W: 16, Alpha: 1, Beta: 0.75}
	adv := SingleTargetAdversary{L: l}
	if err := Validate(adv, l, 8, 30*l.W, false); err != nil {
		t.Fatalf("single-target adversary violated limits: %v", err)
	}
}

func TestBurstAdversaryRespectsAlignedLimits(t *testing.T) {
	p := 16
	l := Limits{W: 32, Alpha: 3, Beta: 1}
	adv := NewBurstAdversary(p, l, 4)
	if err := Validate(adv, l, p, 20*l.W, true); err != nil {
		t.Fatalf("burst adversary violated aligned limits: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	l := Limits{W: 4, Alpha: 0.25, Beta: 0.25}
	// An adversary injecting every step at rate 1 > α.
	bad := adversaryFunc(func(t int) []Arrival { return []Arrival{{Src: 0, Dst: 1}} })
	if err := Validate(bad, l, 4, 40, false); err == nil {
		t.Fatal("over-rate adversary accepted")
	}
	oob := adversaryFunc(func(t int) []Arrival { return []Arrival{{Src: 9, Dst: 0}} })
	if err := Validate(oob, l, 4, 8, false); err == nil {
		t.Fatal("out-of-range arrival accepted")
	}
}

type adversaryFunc func(t int) []Arrival

func (f adversaryFunc) Step(t int) []Arrival { return f(t) }

// Theorem 6.5, stable direction: β <= 1/g keeps the BSP(g) interval router
// stable.
func TestBSPgStableBelowThreshold(t *testing.T) {
	p, g, lL := 16, 4, 4
	l := Limits{W: 32, Alpha: 1, Beta: 1.0 / float64(g)}
	adv := NewUniformAdversary(p, l, 5)
	m := bspgM(p, g, lL)
	res := RunBSPgInterval(m, adv, l, 60)
	if !res.LooksStable() {
		t.Fatalf("BSP(g) unstable below threshold: backlog %v", res.Backlog)
	}
}

// Theorem 6.5, unstable direction: a single-source flow at β > 1/g grows
// without bound on the BSP(g).
func TestBSPgUnstableAboveThreshold(t *testing.T) {
	p, g, lL := 16, 8, 4
	l := Limits{W: 32, Alpha: 0.5, Beta: 0.5} // β = 0.5 > 1/g = 0.125
	adv := SingleTargetAdversary{L: l}
	m := bspgM(p, g, lL)
	res := RunBSPgInterval(m, adv, l, 80)
	if res.LooksStable() {
		t.Fatalf("BSP(g) stable above threshold: backlog %v", res.Backlog)
	}
	// Linear growth: final backlog near max.
	if res.Backlog[len(res.Backlog)-1] < res.MaxBacklog/2 {
		t.Fatalf("backlog not growing: %v", res.Backlog)
	}
}

// Theorem 6.7: the same β ≫ 1/g flow is easily stable on the BSP(m) with
// matched aggregate bandwidth m = p/g.
func TestBSPmStableWhereBSPgIsNot(t *testing.T) {
	p, g, lL := 16, 8, 4
	mm := p / g
	l := Limits{W: 32, Alpha: 0.5, Beta: 0.5}
	adv := SingleTargetAdversary{L: l}
	m := bspmM(p, mm, lL)
	res := RunAlgorithmB(m, adv, l, 80, 0.25)
	if !res.LooksStable() {
		t.Fatalf("BSP(m) unstable on single-target flow: backlog %v", res.Backlog)
	}
	if res.TotalSent == 0 {
		t.Fatal("nothing sent")
	}
}

// Algorithm B stability at high global rate: α close to m (with u slack).
func TestAlgorithmBStableNearCapacity(t *testing.T) {
	p, mm, lL := 32, 8, 2
	l := Limits{W: 64, Alpha: float64(mm) * 0.5, Beta: 0.5}
	adv := NewUniformAdversary(p, l, 7)
	if err := Validate(adv, l, p, 10*l.W, false); err != nil {
		t.Fatalf("adversary invalid: %v", err)
	}
	m := bspmM(p, mm, lL)
	res := RunAlgorithmB(m, adv, l, 100, 0.25)
	if !res.LooksStable() {
		t.Fatalf("Algorithm B unstable at α = m/2: backlog %v", res.Backlog)
	}
}

// Overload direction: α > m cannot be stable on the BSP(m) either (the
// network moves only m per step).
func TestAlgorithmBUnstableAboveCapacity(t *testing.T) {
	p, mm, lL := 32, 4, 2
	l := Limits{W: 64, Alpha: float64(mm) * 2.5, Beta: 1}
	adv := NewUniformAdversary(p, l, 9)
	m := bspmM(p, mm, lL)
	res := RunAlgorithmB(m, adv, l, 80, 0.25)
	if res.LooksStable() {
		t.Fatalf("Algorithm B stable above network capacity: backlog %v", res.Backlog)
	}
}

// Expected service time stays within the Theorem 6.7 O(w²/u) regime: for a
// lightly loaded system it should be O(w).
func TestAlgorithmBServiceTime(t *testing.T) {
	p, mm, lL := 32, 8, 2
	l := Limits{W: 64, Alpha: 2, Beta: 0.25}
	adv := NewUniformAdversary(p, l, 11)
	m := bspmM(p, mm, lL)
	res := RunAlgorithmB(m, adv, l, 100, 0.25)
	if res.MeanService() > float64(l.W) {
		t.Fatalf("mean service %v exceeds w = %d at light load", res.MeanService(), l.W)
	}
}

func TestRunAlgorithmBRejectsLocalMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("local machine accepted")
		}
	}()
	RunAlgorithmB(bspgM(4, 2, 1), SingleTargetAdversary{L: Limits{W: 4, Alpha: 1, Beta: 1}}, Limits{W: 4, Alpha: 1, Beta: 1}, 2, 0.25)
}

func TestRunBSPgIntervalRejectsGlobalMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("global machine accepted")
		}
	}()
	RunBSPgInterval(bspmM(4, 2, 1), SingleTargetAdversary{L: Limits{W: 4, Alpha: 1, Beta: 1}}, Limits{W: 4, Alpha: 1, Beta: 1}, 2)
}

func TestLooksStable(t *testing.T) {
	if !(Result{Backlog: []int{5, 5, 5, 5, 5, 5}}).LooksStable() {
		t.Fatal("flat backlog judged unstable")
	}
	if (Result{Backlog: []int{1, 2, 40, 80, 160, 320}}).LooksStable() {
		t.Fatal("growing backlog judged stable")
	}
	if !(Result{}).LooksStable() {
		t.Fatal("empty result should be stable")
	}
}

func TestMeanService(t *testing.T) {
	r := Result{ServiceTimes: []float64{1, 2, 3}}
	if r.MeanService() != 2 {
		t.Fatalf("MeanService = %v", r.MeanService())
	}
	if (Result{}).MeanService() != 0 {
		t.Fatal("empty MeanService != 0")
	}
}

// Theorem 6.7 parameterized over A: Algorithm B with the consecutive-flit
// scheduler stays stable on long-message traffic when rates leave room for
// the flit multiplier.
func TestAlgorithmBWithFlits(t *testing.T) {
	p, mm, lL := 16, 8, 2
	flits := 4
	// α·flits per window must stay well under m: α = m/(4·flits).
	l := Limits{W: 64, Alpha: float64(mm) / float64(4*flits), Beta: 0.25}
	adv := NewUniformAdversary(p, l, 21)
	m := bspmM(p, mm, lL)
	res := RunAlgorithmBWith(m, adv, l, 80, flits, ConsecutiveSendScheduler(0.25))
	if !res.LooksStable() {
		t.Fatalf("flit Algorithm B unstable: backlog %v", res.Backlog)
	}
	if res.TotalSent == 0 {
		t.Fatal("nothing sent")
	}
}

// Overloading the flit budget (α·flits > m) must destabilize.
func TestAlgorithmBWithFlitsOverload(t *testing.T) {
	p, mm, lL := 16, 4, 2
	flits := 8
	l := Limits{W: 64, Alpha: float64(mm), Beta: 1} // α·flits = 8m ≫ m
	adv := NewUniformAdversary(p, l, 22)
	m := bspmM(p, mm, lL)
	res := RunAlgorithmBWith(m, adv, l, 60, flits, ConsecutiveSendScheduler(0.25))
	if res.LooksStable() {
		t.Fatalf("flit-overloaded Algorithm B reported stable: backlog %v", res.Backlog)
	}
}

// The generalized runner with the unit scheduler matches RunAlgorithmB.
func TestRunWithMatchesRunAlgorithmB(t *testing.T) {
	p, mm, lL := 16, 4, 2
	l := Limits{W: 32, Alpha: 1, Beta: 0.5}
	a1 := NewUniformAdversary(p, l, 23)
	r1 := RunAlgorithmB(bspmM(p, mm, lL), a1, l, 40, 0.25)
	a2 := NewUniformAdversary(p, l, 23)
	r2 := RunAlgorithmBWith(bspmM(p, mm, lL), a2, l, 40, 1, UnbalancedSendScheduler(0.25))
	if r1.TotalSent != r2.TotalSent || r1.MaxBacklog != r2.MaxBacklog {
		t.Fatalf("generalized runner diverged: %+v vs %+v", r1, r2)
	}
}

func TestFlitAdversaryPassthrough(t *testing.T) {
	l := Limits{W: 8, Alpha: 1, Beta: 1}
	inner := SingleTargetAdversary{L: l}
	f := FlitAdversary{Inner: inner, Len: 3}
	for tt := 0; tt < 16; tt++ {
		a, b := inner.Step(tt), f.Step(tt)
		if len(a) != len(b) {
			t.Fatal("FlitAdversary altered arrivals")
		}
	}
}
