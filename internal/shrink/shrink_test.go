package shrink

import (
	"testing"

	"parbw/internal/oracle"
	"parbw/internal/sched"
	"parbw/internal/workgen"
)

// sameNames reports whether the oracle violation names of w equal want.
func sameNames(w *workgen.Workload, want []string) bool {
	got := oracle.Names(oracle.Check(w))
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// The acceptance-criteria scenario: a deliberately broken invariant
// (test-only hook) must shrink to a workload with at most 3 supersteps —
// in fact to one superstep with one unit send, since the broken conserve
// check fails for any workload carrying a flit.
func TestShrinkBrokenInvariantToMinimal(t *testing.T) {
	oracle.BreakForTest = "workload/conserve"
	defer func() { oracle.BreakForTest = "" }()

	for _, seed := range []uint64{1, 7, 23} {
		w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: seed})
		if w.TotalFlits == 0 {
			continue
		}
		want := oracle.Names(oracle.Check(w))
		if len(want) == 0 {
			t.Fatalf("seed %d: hook did not break the oracle", seed)
		}
		res := Minimize(w, func(c *workgen.Workload) bool { return sameNames(c, want) }, Options{})
		got := res.Workload
		if len(got.Steps) > 3 {
			t.Fatalf("seed %d: shrunk to %d supersteps, want <= 3", seed, len(got.Steps))
		}
		sends, flits := got.CountSends()
		if len(got.Steps) != 1 || sends != 1 || flits != 1 {
			t.Errorf("seed %d: expected the 1-step/1-send/1-flit minimum, got steps=%d sends=%d flits=%d",
				seed, len(got.Steps), sends, flits)
		}
		if got.P != 1 || got.M != 1 || got.L != 1 {
			t.Errorf("seed %d: machine shape not minimized: p=%d m=%d l=%d", seed, got.P, got.M, got.L)
		}
		if !sameNames(got, want) {
			t.Fatalf("seed %d: shrunk workload no longer fails the same way", seed)
		}
		if res.Nondeterministic != 0 {
			t.Errorf("seed %d: %d nondeterministic candidates on a pure predicate",
				seed, res.Nondeterministic)
		}
	}
}

// A lying-totals workload must stay a lying-totals workload through
// shrinking (the declared-vs-actual delta is preserved), and shrink to the
// empty workload — zero sends still violates conserve when the declared
// totals are off.
func TestShrinkPreservesTotalsDelta(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyBalls, Seed: 4})
	w.TotalFlits += 7
	want := oracle.Names(oracle.Check(w))
	res := Minimize(w, func(c *workgen.Workload) bool { return sameNames(c, want) }, Options{})
	got := res.Workload
	if !sameNames(got, want) {
		t.Fatal("shrunk workload no longer fails the same way")
	}
	if sends, _ := got.CountSends(); sends != 0 {
		t.Errorf("lying-totals counterexample kept %d sends, want 0", sends)
	}
}

func TestNonFailingInputReturnedUnchanged(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 5})
	enc, _ := w.Encode()
	res := Minimize(w, func(c *workgen.Workload) bool { return len(oracle.Check(c)) > 0 }, Options{})
	enc2, _ := res.Workload.Encode()
	if string(enc) != string(enc2) {
		t.Fatal("non-failing input was modified")
	}
}

func TestInputNotMutated(t *testing.T) {
	oracle.BreakForTest = "workload/conserve"
	defer func() { oracle.BreakForTest = "" }()
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 1})
	enc, _ := w.Encode()
	want := oracle.Names(oracle.Check(w))
	Minimize(w, func(c *workgen.Workload) bool { return sameNames(c, want) }, Options{})
	enc2, _ := w.Encode()
	if string(enc) != string(enc2) {
		t.Fatal("Minimize mutated its input workload")
	}
}

func TestNondeterministicPredicateRejected(t *testing.T) {
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 9})
	flip := false
	res := Minimize(w, func(c *workgen.Workload) bool {
		flip = !flip
		return flip
	}, Options{})
	// Every candidate disagrees with itself, so nothing may shrink.
	if res.Nondeterministic == 0 {
		t.Fatal("flaky predicate not detected")
	}
	enc, _ := w.Encode()
	enc2, _ := res.Workload.Encode()
	if string(enc) != string(enc2) {
		t.Fatal("flaky predicate still shrank the workload")
	}
}

func TestEvalBudgetRespected(t *testing.T) {
	oracle.BreakForTest = "workload/conserve"
	defer func() { oracle.BreakForTest = "" }()
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyHRel, Seed: 1})
	res := Minimize(w, func(c *workgen.Workload) bool {
		return sameNames(c, []string{"workload/conserve"})
	}, Options{MaxEvals: 10})
	if res.Evals > 10 {
		t.Fatalf("spent %d evals, budget 10", res.Evals)
	}
}

func TestDDMinMinimalSubset(t *testing.T) {
	// ddmin on a plain int list: failure iff the list contains both 3 and
	// 7. The minimum is exactly {3, 7}.
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	got := ddmin(items, func(cand []int) bool {
		has3, has7 := false, false
		for _, v := range cand {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("ddmin = %v, want [3 7]", got)
	}
}

func TestDDMinEmptyAndSingle(t *testing.T) {
	if got := ddmin(nil, func(c []int) bool { return true }); len(got) != 0 {
		t.Fatalf("ddmin(nil) = %v", got)
	}
	if got := ddmin([]int{5}, func(c []int) bool { return len(c) == 0 || c[0] == 5 }); len(got) != 0 {
		t.Fatalf("singleton not dropped when empty list fails too: %v", got)
	}
	if got := ddmin([]int{5}, func(c []int) bool { return len(c) == 1 }); len(got) != 1 {
		t.Fatalf("necessary singleton dropped: %v", got)
	}
}

func TestShrinkKeepsSlotSchedulesConsistent(t *testing.T) {
	// Shrinking a clean-oracle failure must produce a workload whose slot
	// schedules still validate (the predicate pins the violation set, so a
	// candidate that breaks validation fails differently and is rejected).
	oracle.BreakForTest = "workload/conserve"
	defer func() { oracle.BreakForTest = "" }()
	w := workgen.Generate(workgen.GenConfig{Family: workgen.FamilyDAG, Seed: 2})
	if w.TotalFlits == 0 {
		t.Skip("empty workload")
	}
	want := oracle.Names(oracle.Check(w))
	res := Minimize(w, func(c *workgen.Workload) bool { return sameNames(c, want) }, Options{})
	for si, step := range res.Workload.Steps {
		if err := sched.CheckSlotSchedule(res.Workload.P, step.Sends); err != nil {
			t.Fatalf("superstep %d of shrunk workload invalid: %v", si, err)
		}
	}
}
