// Package shrink reduces failing fuzz workloads to minimal counterexamples
// with ddmin-style delta debugging (Zeller & Hildebrandt). Minimization
// walks coarse-to-fine over the workload's structure — drop whole
// supersteps, drop individual messages, shrink slot values, shrink message
// lengths, shrink the machine shape — re-running the caller's failure
// predicate on every candidate and keeping a change only if the failure
// persists.
//
// Determinism is re-checked at every step: each candidate is evaluated
// twice and a candidate whose two evaluations disagree is discarded (and
// counted), so a flaky predicate can slow shrinking down but can never
// smuggle a nondeterministic "counterexample" into the corpus.
package shrink

import (
	"parbw/internal/sched"
	"parbw/internal/workgen"
)

// Options bounds a minimization run.
type Options struct {
	// MaxEvals caps the number of predicate evaluations (each candidate
	// costs two, for the determinism double-check). 0 selects 4096.
	MaxEvals int
}

func (o Options) maxEvals() int {
	if o.MaxEvals <= 0 {
		return 4096
	}
	return o.MaxEvals
}

// Result reports a completed minimization.
type Result struct {
	// Workload is the minimal failing workload found (never nil; at worst
	// the input itself).
	Workload *workgen.Workload
	// Evals is the number of predicate evaluations spent.
	Evals int
	// Nondeterministic counts candidates discarded because the predicate
	// disagreed with itself — nonzero means the failure is not a function
	// of the workload alone and the shrunk result deserves suspicion.
	Nondeterministic int
	// StepsBefore/After and SendsBefore/After summarize the reduction.
	StepsBefore, StepsAfter int
	SendsBefore, SendsAfter int
}

// minimizer carries the shared evaluation state through the phases.
type minimizer struct {
	failing    func(*workgen.Workload) bool
	budget     int
	evals      int
	nondet     int
	deltaSends int // declared-minus-actual totals of the input, preserved
	deltaFlits int // so lying-totals failures survive renormalization
}

// Minimize reduces w to a locally minimal workload for which failing still
// returns true. failing must be a pure function of the workload (run the
// oracles, compare violation names); Minimize evaluates it twice per
// candidate and rejects candidates it is not deterministic on. The input
// workload is not modified. If failing(w) is false to begin with, the
// input is returned unchanged.
//
// Candidates keep the input's declared-totals discrepancy: totals are
// recomputed after every structural edit and the input's declared-actual
// delta is re-applied, so both honest workloads and lying-totals
// counterexamples shrink without the renormalization erasing the bug.
func Minimize(w *workgen.Workload, failing func(*workgen.Workload) bool, opt Options) Result {
	m := &minimizer{failing: failing, budget: opt.maxEvals()}
	sends, flits := w.CountSends()
	m.deltaSends = w.TotalSends - sends
	m.deltaFlits = w.TotalFlits - flits

	res := Result{StepsBefore: len(w.Steps), SendsBefore: sends}
	cur := clone(w)
	if !m.check(cur) {
		res.Workload = cur
		res.Evals = m.evals
		res.Nondeterministic = m.nondet
		res.StepsAfter, res.SendsAfter = len(cur.Steps), sends
		return res
	}

	cur = m.shrinkPrec(cur)
	cur = m.shrinkSupersteps(cur)
	cur = m.shrinkSends(cur)
	cur = m.shrinkSlots(cur)
	cur = m.shrinkLens(cur)
	cur = m.shrinkShape(cur)

	res.Workload = cur
	res.Evals = m.evals
	res.Nondeterministic = m.nondet
	res.StepsAfter = len(cur.Steps)
	res.SendsAfter, _ = cur.CountSends()
	return res
}

// check evaluates the predicate twice on a renormalized candidate,
// spending budget; true only if both evaluations agree the candidate
// fails.
func (m *minimizer) check(w *workgen.Workload) bool {
	if m.evals+2 > m.budget {
		return false
	}
	m.renormalize(w)
	m.evals += 2
	a := m.failing(w)
	b := m.failing(w)
	if a != b {
		m.nondet++
		return false
	}
	return a
}

// renormalize recomputes the declared totals, preserving the input's
// declared-vs-actual delta.
func (m *minimizer) renormalize(w *workgen.Workload) {
	sends, flits := w.CountSends()
	w.TotalSends = sends + m.deltaSends
	w.TotalFlits = flits + m.deltaFlits
}

func clone(w *workgen.Workload) *workgen.Workload {
	out := *w
	out.Steps = make([]workgen.Superstep, len(w.Steps))
	for i, step := range w.Steps {
		out.Steps[i].Sends = append([]sendT(nil), step.Sends...)
	}
	return &out
}

// sendT aliases the corpus send type for brevity.
type sendT = sched.SlotSend

// ddmin is the classic minimizing delta debugger over a list: it returns a
// sublist, locally 1-minimal under the budget, for which test still
// fails. test receives a candidate sublist and must not retain it.
func ddmin[T any](items []T, test func([]T) bool) []T {
	n := 2
	for len(items) >= 2 && n <= len(items) {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for start := 0; start < len(items); start += chunk {
			end := start + chunk
			if end > len(items) {
				end = len(items)
			}
			cand := make([]T, 0, len(items)-(end-start))
			cand = append(cand, items[:start]...)
			cand = append(cand, items[end:]...)
			if test(cand) {
				items = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(items) {
				break
			}
			n *= 2
			if n > len(items) {
				n = len(items)
			}
		}
	}
	// Final singleton pass: try the empty list if a single item remains.
	if len(items) == 1 && test(nil) {
		items = nil
	}
	return items
}

// shrinkPrec tries dropping the precedence layer outright. Run first: with
// the layer present, structural edits (dropping supersteps or sends) tend
// to break node-step ranges or edge coverage and get rejected wholesale, so
// a failure that does not need the layer shrinks far better without it. A
// failure that does need it (a precedence violation) keeps it, and the
// structural phases then shrink only what the layer's validity allows.
func (m *minimizer) shrinkPrec(w *workgen.Workload) *workgen.Workload {
	if w.Prec == nil {
		return w
	}
	c := clone(w)
	c.Prec = nil
	if m.check(c) {
		return c
	}
	return w
}

// shrinkSupersteps drops whole supersteps.
func (m *minimizer) shrinkSupersteps(w *workgen.Workload) *workgen.Workload {
	steps := ddmin(w.Steps, func(cand []workgen.Superstep) bool {
		c := clone(w)
		c.Steps = append([]workgen.Superstep(nil), cand...)
		return m.check(c)
	})
	w.Steps = steps
	m.renormalize(w)
	return w
}

// shrinkSends drops individual messages within each remaining superstep.
func (m *minimizer) shrinkSends(w *workgen.Workload) *workgen.Workload {
	for i := range w.Steps {
		kept := ddmin(w.Steps[i].Sends, func(cand []sendT) bool {
			c := clone(w)
			c.Steps[i].Sends = append([]sendT(nil), cand...)
			return m.check(c)
		})
		w.Steps[i].Sends = kept
		m.renormalize(w)
	}
	return w
}

// shrinkInt lowers a value toward lo: first lo itself, then binary search
// on the surviving range. keep builds and tests the candidate.
func shrinkInt(v, lo int, keep func(int) bool) int {
	if v <= lo {
		return v
	}
	if keep(lo) {
		return lo
	}
	for lo+1 < v {
		mid := lo + (v-lo)/2
		if keep(mid) {
			v = mid
		} else {
			lo = mid
		}
	}
	return v
}

// shrinkSlots packs every processor's schedule toward slot 0, then shrinks
// each remaining slot value individually.
func (m *minimizer) shrinkSlots(w *workgen.Workload) *workgen.Workload {
	// One wholesale candidate first: repack all slots densely per
	// processor, preserving order. Often this single step does most of the
	// work.
	packed := clone(w)
	for i := range packed.Steps {
		next := map[int]int{}
		sends := packed.Steps[i].Sends
		for j := range sends {
			s := &sends[j]
			s.Slot = next[s.Proc]
			next[s.Proc] = s.Slot + s.Flits()
		}
	}
	if m.check(packed) {
		w = packed
	}
	for i := range w.Steps {
		for j := range w.Steps[i].Sends {
			s := w.Steps[i].Sends[j]
			got := shrinkInt(s.Slot, 0, func(v int) bool {
				c := clone(w)
				c.Steps[i].Sends[j].Slot = v
				return m.check(c)
			})
			w.Steps[i].Sends[j].Slot = got
		}
	}
	m.renormalize(w)
	return w
}

// shrinkLens lowers message lengths toward 0 (a Len of 0 or 1 is one
// flit, and 0 is the canonical short form the encoder omits).
func (m *minimizer) shrinkLens(w *workgen.Workload) *workgen.Workload {
	for i := range w.Steps {
		for j := range w.Steps[i].Sends {
			s := w.Steps[i].Sends[j]
			got := shrinkInt(s.Len, 0, func(v int) bool {
				c := clone(w)
				c.Steps[i].Sends[j].Len = v
				return m.check(c)
			})
			w.Steps[i].Sends[j].Len = got
		}
	}
	m.renormalize(w)
	return w
}

// shrinkShape lowers every processor id toward 0, compacts the survivors,
// and lowers p, m, and l.
func (m *minimizer) shrinkShape(w *workgen.Workload) *workgen.Workload {
	// Pull each send's endpoints toward processor 0 (self-sends are legal),
	// so the machine below can shrink to a single processor.
	for i := range w.Steps {
		for j := range w.Steps[i].Sends {
			s := w.Steps[i].Sends[j]
			w.Steps[i].Sends[j].Proc = shrinkInt(s.Proc, 0, func(v int) bool {
				c := clone(w)
				c.Steps[i].Sends[j].Proc = v
				return m.check(c)
			})
			s = w.Steps[i].Sends[j]
			w.Steps[i].Sends[j].Dst = shrinkInt(s.Dst, 0, func(v int) bool {
				c := clone(w)
				c.Steps[i].Sends[j].Dst = v
				return m.check(c)
			})
		}
	}
	// Remap the used processor ids to a dense prefix, preserving order.
	used := map[int]bool{}
	for _, step := range w.Steps {
		for _, s := range step.Sends {
			used[s.Proc] = true
			used[s.Dst] = true
		}
	}
	if len(used) > 0 && len(used) < w.P {
		remap := map[int]int{}
		next := 0
		for id := 0; id < w.P; id++ {
			if used[id] {
				remap[id] = next
				next++
			}
		}
		c := clone(w)
		for i := range c.Steps {
			for j := range c.Steps[i].Sends {
				c.Steps[i].Sends[j].Proc = remap[c.Steps[i].Sends[j].Proc]
				c.Steps[i].Sends[j].Dst = remap[c.Steps[i].Sends[j].Dst]
			}
		}
		c.P = next
		if c.M > c.P {
			c.M = c.P
		}
		if m.check(c) {
			w = c
		}
	}
	// Lower bounds: p must cover every referenced id, m >= 1, l >= 1.
	minP := 1
	for _, step := range w.Steps {
		for _, s := range step.Sends {
			if s.Proc+1 > minP {
				minP = s.Proc + 1
			}
			if s.Dst+1 > minP {
				minP = s.Dst + 1
			}
		}
	}
	w.P = shrinkInt(w.P, minP, func(v int) bool {
		c := clone(w)
		c.P = v
		if c.M > v {
			c.M = v
		}
		return m.check(c)
	})
	if w.M > w.P {
		w.M = w.P
	}
	w.M = shrinkInt(w.M, 1, func(v int) bool {
		c := clone(w)
		c.M = v
		return m.check(c)
	})
	w.L = shrinkInt(w.L, 1, func(v int) bool {
		c := clone(w)
		c.L = v
		return m.check(c)
	})
	m.renormalize(w)
	return w
}
