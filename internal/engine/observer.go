// Observability layer of the superstep engine: normalized per-step records,
// observer callbacks (per-machine and process-global), and cheap atomic
// counters aggregated across every machine in the process.
package engine

import (
	"sync"
	"sync/atomic"

	"parbw/internal/model"
)

// StepStats is the normalized record of one committed superstep, common to
// every machine family. Machine-specific quantities map onto it as follows:
//
//	BSP:  W = max work, H = max(h_send, h_recv), N = total flits sent,
//	      Steps/MaxSlot/Overload/CM from the injection histogram.
//	QSM:  W = max work, H = max per-processor max(reads, writes), N = total
//	      requests, Steps/MaxSlot/Overload/CM from the request histogram.
//	PRAM: W = 0 (unit-cost steps), H = MaxSlot = κ (per-cell contention),
//	      N = total shared-memory accesses, Steps = 1.
type StepStats struct {
	Machine  string     // machine family: "bsp", "qsm", "pram"
	Index    int        // 0-based superstep index within the machine
	W        int        // maximum local work over processors
	H        int        // maximum per-processor traffic
	N        int        // total traffic units moved (flits / requests / accesses)
	Steps    int        // injection steps spanned (max slot + 1)
	MaxSlot  int        // maximum per-step load m_t
	Overload int        // steps with m_t > m (globally-limited models only)
	CM       model.Time // c_m = Σ_t f_m(m_t) (globally-limited models only)
	Cost     model.Time // simulated time charged for the step
	// Hist is the per-step load histogram snapshot. It aliases an
	// engine-owned recycled buffer: valid only inside the observer callback,
	// and nil in ring entries and for machines without slot schedules.
	Hist []int
}

// Observer receives a callback after every committed superstep. Callbacks
// run on the machine's driver goroutine; they must not call back into the
// machine and should be cheap — a slow observer stalls the simulation.
type Observer interface {
	OnStep(st StepStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(st StepStats)

// OnStep calls f.
func (f ObserverFunc) OnStep(st StepStats) { f(st) }

// Counters is a snapshot of the process-wide engine counters, aggregated
// over every machine of every family since process start. `bandsim serve`
// reports them on /statsz.
type Counters struct {
	Supersteps  uint64 `json:"supersteps"`    // supersteps committed
	Messages    uint64 `json:"messages"`      // traffic units routed (Σ StepStats.N)
	MaxSlotLoad int64  `json:"max_slot_load"` // maximum per-step load ever seen
	Overloads   uint64 `json:"overloads"`     // overloaded steps (Σ StepStats.Overload)
}

var global struct {
	supersteps atomic.Uint64
	messages   atomic.Uint64
	maxSlot    atomic.Int64
	overloads  atomic.Uint64

	mu        sync.Mutex                      // guards writes to observers
	observers atomic.Pointer[[]*registration] // copy-on-write snapshot
}

// registration wraps a global observer so removal can compare registration
// identity rather than observer values (func-typed observers are not
// comparable).
type registration struct{ obs Observer }

// countStep folds one committed step into the process-wide counters.
func countStep(st StepStats) {
	global.supersteps.Add(1)
	if st.N > 0 {
		global.messages.Add(uint64(st.N))
	}
	if st.Overload > 0 {
		global.overloads.Add(uint64(st.Overload))
	}
	for {
		cur := global.maxSlot.Load()
		if int64(st.MaxSlot) <= cur {
			break
		}
		if global.maxSlot.CompareAndSwap(cur, int64(st.MaxSlot)) {
			break
		}
	}
}

// GlobalCounters returns a snapshot of the process-wide engine counters.
func GlobalCounters() Counters {
	return Counters{
		Supersteps:  global.supersteps.Load(),
		Messages:    global.messages.Load(),
		MaxSlotLoad: global.maxSlot.Load(),
		Overloads:   global.overloads.Load(),
	}
}

// AddGlobalObserver registers obs to receive every machine's steps,
// process-wide, and returns a function that removes it. It is how run-level
// tooling (`bandsim trace`, harness Config.Observer) taps machines it did
// not construct. The tap is process-global: while registered, obs also sees
// steps of machines driven by concurrent runs, so it suits single-run tools
// and tests rather than the multi-tenant serve path.
func AddGlobalObserver(obs Observer) (remove func()) {
	if obs == nil {
		return func() {}
	}
	reg := &registration{obs: obs}
	global.mu.Lock()
	defer global.mu.Unlock()
	var cur []*registration
	if p := global.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]*registration, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = reg
	global.observers.Store(&next)
	var once sync.Once
	return func() {
		once.Do(func() {
			global.mu.Lock()
			defer global.mu.Unlock()
			var cur []*registration
			if p := global.observers.Load(); p != nil {
				cur = *p
			}
			next := make([]*registration, 0, len(cur))
			for _, r := range cur {
				if r != reg {
					next = append(next, r)
				}
			}
			global.observers.Store(&next)
		})
	}
}

// notifyGlobal fans a committed step out to the process-global observers.
func notifyGlobal(st StepStats) {
	p := global.observers.Load()
	if p == nil {
		return
	}
	for _, r := range *p {
		r.obs.OnStep(st)
	}
}
