// Package engine is the shared superstep core under every machine simulator
// in this repository. The BSP, QSM, and PRAM machines all execute the same
// abstract loop — reset per-processor contexts, fan the per-processor
// programs out over a bounded worker pool, run a model-specific merge that
// validates schedules and computes the step's cost, then commit: advance the
// simulated clock, retain the step's statistics, and notify observers.
// Before this package existed that loop was implemented once per machine;
// Core implements it exactly once, parameterized by the machine's native
// per-step Stats type S and its merge strategy.
//
// Core also owns the recycled scratch buffers the merge strategies share
// (the per-step injection histogram and a per-processor ledger), the
// retained trace, a fixed-size ring of recent steps that is always on, and
// the observability layer of observer.go: normalized per-step callbacks plus
// cheap process-wide atomic counters that aggregate across every machine in
// the process (surfaced by `bandsim serve` on /statsz).
//
// The merge strategy returns both the machine's native Stats value and a
// normalized StepStats view; Core commits the former and publishes the
// latter. Costs are computed entirely inside the merge strategy, so moving a
// machine onto Core cannot change any simulated time: Core only adds the
// returned cost to the clock, exactly as the per-machine loops did.
package engine

import (
	"slices"

	"parbw/internal/model"
	"parbw/internal/workpool"
)

// ringCap is the capacity of the always-on recent-step ring.
const ringCap = 64

// Core is the generic superstep driver. S is the machine's native per-step
// statistics type (bsp.Stats, qsm.Stats, pram.Stats). Methods must be called
// from a single driver goroutine, mirroring the machines' contract.
type Core[S any] struct {
	label string
	p     int
	pool  *workpool.Pool
	keep  bool

	time  model.Time
	steps int
	last  S
	trace []S

	ring  [ringCap]StepStats
	ringN int

	hist    []int // recycled per-step injection/request histogram
	ledger  []int // recycled per-processor counter, length p
	offsets []int // recycled per-processor counter, length p (slab.go)
	grid    []int // recycled chunk×destination count matrix (slab.go)

	observers []Observer
}

// NewCore constructs a Core for a machine with p simulated processors.
// label names the machine family in StepStats ("bsp", "qsm", "pram");
// workers bounds host parallelism (<= 0 selects GOMAXPROCS); keepTrace
// retains every step's native Stats for Trace.
func NewCore[S any](label string, p, workers int, keepTrace bool) *Core[S] {
	return &Core[S]{
		label: label,
		p:     p,
		pool:  workpool.New(workers),
		keep:  keepTrace,
	}
}

// P returns the simulated processor count.
func (c *Core[S]) P() int { return c.p }

// Label returns the machine-family label reported in StepStats.
func (c *Core[S]) Label() string { return c.label }

// Time returns the accumulated simulated time.
func (c *Core[S]) Time() model.Time { return c.time }

// Steps returns the number of supersteps committed.
func (c *Core[S]) Steps() int { return c.steps }

// Last returns the native Stats of the most recent superstep.
func (c *Core[S]) Last() S { return c.last }

// Trace returns the retained per-superstep Stats (nil unless keepTrace).
func (c *Core[S]) Trace() []S { return c.trace }

// ChargeTime adds t units of simulated time outside any superstep.
func (c *Core[S]) ChargeTime(t model.Time) { c.time += t }

// Attach registers an observer for this machine's steps. Per-machine
// observers run before the process-global ones, in attachment order.
func (c *Core[S]) Attach(obs Observer) {
	if obs != nil {
		c.observers = append(c.observers, obs)
	}
}

// Hist returns the recycled histogram buffer resized and zeroed to n slots.
// The returned slice is owned by the Core and valid until the next call.
func (c *Core[S]) Hist(n int) []int {
	if cap(c.hist) < n {
		c.hist = make([]int, n)
	}
	h := c.hist[:n]
	for i := range h {
		h[i] = 0
	}
	return h
}

// Ledger returns the recycled per-processor counter buffer (length P),
// zeroed. The returned slice is owned by the Core and valid until the next
// call.
func (c *Core[S]) Ledger() []int {
	if c.ledger == nil {
		c.ledger = make([]int, c.p)
	}
	for i := range c.ledger {
		c.ledger[i] = 0
	}
	return c.ledger
}

// Recent returns the normalized stats of up to the last 64 committed steps,
// oldest first. The ring is always on (histogram snapshots excluded), so a
// machine can be inspected after the fact without configuring a trace.
func (c *Core[S]) Recent() []StepStats {
	start := 0
	if c.ringN > ringCap {
		start = c.ringN - ringCap
	}
	out := make([]StepStats, 0, c.ringN-start)
	for i := start; i < c.ringN; i++ {
		out = append(out, c.ring[i%ringCap])
	}
	return out
}

// Step drives one superstep: body runs once per contiguous processor chunk
// on the worker pool (reset each chunk processor's state and execute its
// program — chunk boundaries follow ChunkPlan, so live goroutine and
// closure state is O(cores), never O(p)), then merge — the model-specific
// strategy — validates schedules, routes traffic, and prices the step,
// returning the machine's native Stats together with the normalized
// StepStats view. Core commits the result: clock, counters, trace, ring,
// observers.
func (c *Core[S]) Step(body func(lo, hi int), merge func() (S, StepStats)) S {
	c.pool.ForChunks(c.p, body)
	st, view := merge()
	view.Machine = c.label
	view.Index = c.steps
	c.time += view.Cost
	c.steps++
	c.last = st
	if c.keep {
		c.trace = append(c.trace, st)
	}
	ringView := view
	ringView.Hist = nil // ring entries outlive the recycled histogram
	c.ring[c.ringN%ringCap] = ringView
	c.ringN++
	countStep(view)
	for _, obs := range c.observers {
		obs.OnStep(view)
	}
	notifyGlobal(view)
	notifyTagged(view)
	return st
}

// ResetClock clears time, step count, last stats, trace, and the recent
// ring. Scratch buffers and observers are preserved, matching the machines'
// Reset semantics (processor RNG state lives in the machines).
func (c *Core[S]) ResetClock() {
	var zero S
	c.time = 0
	c.steps = 0
	c.last = zero
	c.trace = nil
	c.ringN = 0
}

// CheckSchedule validates a per-processor injection schedule: items are
// sorted in place by start slot, and any two items whose [slot, slot+width)
// intervals overlap make the schedule invalid — the globally-limited models
// permit at most one injection per processor per step. fail is called with
// the offending slot and must not return (the machines panic with their
// model-specific message).
func CheckSchedule[T any](items []T, slot func(T) int, width func(T) int, fail func(slot int)) {
	if len(items) < 2 {
		return
	}
	if len(items) <= 32 {
		insertionSortBySlot(items, slot)
	} else {
		slices.SortFunc(items, func(a, b T) int { return slot(a) - slot(b) })
	}
	prevEnd := -1
	for _, it := range items {
		s := slot(it)
		if s < prevEnd {
			fail(s)
		}
		prevEnd = s + width(it)
	}
}

// insertionSortBySlot sorts items by slot without allocating. Per-processor
// schedules are short (a handful of sends), where insertion sort beats the
// generic sort for both time and allocations in the merge hot path.
func insertionSortBySlot[T any](items []T, slot func(T) int) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && slot(items[j]) < slot(items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
