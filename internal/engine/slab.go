package engine

// This file is the pooled-slab / radix-bucket routing layer of the engine:
// engine-owned freelists (deliberately not sync.Pool — recycling must be
// deterministic and visible to the allocation budget, and a superstep core
// is driven from a single goroutine) plus the scratch buffers the
// counting-sort message router needs. The merge strategies in
// internal/bsp and internal/qsm build per-destination buckets by counting
// and prefix-summing into a single recycled slab instead of appending into
// per-destination slices through a map or a ragged [][]T, which is where
// the pre-rework merge spent most of its time.

// Slab is a capacity-recycling buffer of T. Take returns a slice of the
// requested length backed by the slab's memory, growing it only when the
// request exceeds the retained capacity; in steady state (stable per-step
// sizes) Take never allocates. Contents of the returned slice are
// unspecified — callers overwrite every element. The returned slice is
// valid until the next Take.
//
// Capacity also decays: one adversarial superstep must not pin its peak for
// the machine's lifetime, so after slabDecayAfter consecutive Takes using
// under a quarter of the retained capacity the slab shrinks to twice the
// latest demand. A workload that oscillates near its capacity never decays
// (any Take at >= 25% utilization resets the streak), so steady-state
// supersteps stay allocation-free.
//
// A Slab is owned by one machine and must not be shared across goroutines.
type Slab[T any] struct {
	buf []T
	low int // consecutive Takes under 25% of capacity
}

// slabDecayAfter is the length of the low-utilization streak that triggers
// a shrink.
const slabDecayAfter = 32

// Take returns a slice of length n, reusing the slab's capacity.
func (s *Slab[T]) Take(n int) []T {
	switch c := cap(s.buf); {
	case c < n:
		// Grow with headroom so a slowly-growing workload does not
		// reallocate every step.
		nc := 2 * c
		if nc < n {
			nc = n
		}
		s.buf = make([]T, nc)
		s.low = 0
	case n*4 < c:
		if s.low++; s.low >= slabDecayAfter {
			s.buf = make([]T, 2*n)
			s.low = 0
		}
	default:
		s.low = 0
	}
	s.buf = s.buf[:n]
	return s.buf
}

// Cap returns the retained capacity.
func (s *Slab[T]) Cap() int { return cap(s.buf) }

// Offsets returns a second recycled length-P zeroed int buffer, distinct
// from Ledger. The counting-sort router uses Ledger for per-destination
// flit totals and Offsets for per-destination message counts that are then
// prefix-summed in place into placement cursors. Valid until the next call.
func (c *Core[S]) Offsets() []int {
	if c.offsets == nil {
		c.offsets = make([]int, c.p)
	}
	for i := range c.offsets {
		c.offsets[i] = 0
	}
	return c.offsets
}

// Grid returns a recycled zeroed int buffer of length n — scratch for the
// parallel router's per-worker count matrix (n = chunks × destinations).
// Valid until the next call.
func (c *Core[S]) Grid(n int) []int {
	if cap(c.grid) < n {
		c.grid = make([]int, n)
	}
	g := c.grid[:n]
	for i := range g {
		g[i] = 0
	}
	return g
}

// Workers returns the worker count of the core's pool.
func (c *Core[S]) Workers() int { return c.pool.Workers() }

// ChunkPlan reports the contiguous chunking ForChunks uses for n items:
// the chunk width and the number of chunks. Chunk r covers
// [r·width, min((r+1)·width, n)). The parallel router sizes its per-chunk
// count matrix from this.
func (c *Core[S]) ChunkPlan(n int) (width, chunks int) {
	if n <= 0 {
		return 0, 0
	}
	workers := c.pool.Workers()
	if workers > n {
		workers = n
	}
	width = (n + workers - 1) / workers
	chunks = (n + width - 1) / width
	return width, chunks
}

// ForChunks runs fn over the contiguous disjoint ranges of [0, n) reported
// by ChunkPlan, in parallel on the core's pool. Merge strategies use it for
// the destination-sharded routing passes.
func (c *Core[S]) ForChunks(n int, fn func(lo, hi int)) {
	c.pool.ForChunks(n, fn)
}
