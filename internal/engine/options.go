package engine

import "parbw/internal/model"

// Options is the v1 cross-machine construction surface: one struct accepted
// by bsp.New, qsm.New, and pram.New alike, selecting the cost model from
// plain numbers instead of a pre-built model.Cost. The bandwidth fields
// follow the paper's dichotomy — a positive M selects the globally-limited
// (m) variant of the machine, otherwise G selects the locally-limited (g)
// variant (for the PRAM, which has neither, both are ignored and Variant
// picks the memory discipline).
//
// The per-package Config structs remain the low-level escape hatch for
// knobs Options deliberately omits (a custom model.Cost such as the
// self-scheduling BSP(m), the PRAM's ROM and CellBits); new callers should
// construct machines from Options.
type Options struct {
	Procs int // number of simulated processors (>= 1)
	Mem   int // shared-memory words (QSM and PRAM machines; ignored by BSP)

	// M > 0 selects the globally-limited variant — BSP(m) or QSM(m) — with
	// aggregate bandwidth M. When M == 0, G is the per-processor gap of the
	// locally-limited variant — BSP(g) or QSM(g).
	M int
	G int
	// L is the superstep latency of the BSP machines (ignored by QSM/PRAM).
	L int
	// Penalty overrides the per-step network charge f_m of an (m) variant;
	// nil selects the paper's exponential penalty f^u.
	Penalty model.Penalty
	// Variant names the PRAM memory discipline ("EREW", "QRQW",
	// "CRCW-Common", "CRCW-Arbitrary", "CRCW-Priority"); empty means EREW.
	// BSP and QSM machines ignore it.
	Variant string

	Seed    uint64
	Workers int // host-CPU parallelism; <= 0 selects GOMAXPROCS
	Trace   bool
	// Observer, if non-nil, receives a normalized StepStats callback after
	// every superstep.
	Observer Observer
}

// BSPCost resolves the options to a BSP cost model.
func (o Options) BSPCost() model.Cost {
	if o.M > 0 {
		c := model.BSPm(o.M, o.L)
		c.Penalty = o.Penalty
		return c
	}
	return model.BSPg(o.G, o.L)
}

// QSMCost resolves the options to a QSM cost model.
func (o Options) QSMCost() model.Cost {
	if o.M > 0 {
		c := model.QSMm(o.M)
		c.Penalty = o.Penalty
		return c
	}
	return model.QSMg(o.G)
}
