package engine

import (
	"sync"
	"testing"
)

// step drives one trivial superstep on c whose merge reports the given cost
// and traffic.
func step(c *Core[int], cost float64, n, maxSlot, overload int) {
	c.Step(func(lo, hi int) {}, func() (int, StepStats) {
		return c.Steps() + 1, StepStats{N: n, MaxSlot: maxSlot, Overload: overload, Cost: cost}
	})
}

func TestCoreClockAndTrace(t *testing.T) {
	c := NewCore[int]("test", 4, 1, true)
	if c.P() != 4 || c.Label() != "test" {
		t.Fatalf("P/Label = %d/%q", c.P(), c.Label())
	}
	step(c, 3, 1, 1, 0)
	step(c, 5, 2, 1, 0)
	if c.Time() != 8 {
		t.Fatalf("Time = %v, want 8", c.Time())
	}
	if c.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", c.Steps())
	}
	if c.Last() != 2 {
		t.Fatalf("Last = %d, want 2", c.Last())
	}
	if got := c.Trace(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Trace = %v", got)
	}
	c.ChargeTime(10)
	if c.Time() != 18 {
		t.Fatalf("Time after ChargeTime = %v", c.Time())
	}
	c.ResetClock()
	if c.Time() != 0 || c.Steps() != 0 || c.Trace() != nil || len(c.Recent()) != 0 {
		t.Fatal("ResetClock did not clear state")
	}
}

func TestCoreNoTraceByDefault(t *testing.T) {
	c := NewCore[int]("test", 2, 1, false)
	step(c, 1, 0, 0, 0)
	if c.Trace() != nil {
		t.Fatal("trace retained without keepTrace")
	}
}

func TestCoreBodyRunsEveryProcessor(t *testing.T) {
	const p = 100
	c := NewCore[int]("test", p, 4, false)
	hits := make([]int, p)
	var mu sync.Mutex
	c.Step(func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	}, func() (int, StepStats) { return 0, StepStats{} })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("processor %d ran %d times", i, h)
		}
	}
}

func TestHistRecycled(t *testing.T) {
	c := NewCore[int]("test", 2, 1, false)
	h1 := c.Hist(8)
	if len(h1) != 8 {
		t.Fatalf("len = %d", len(h1))
	}
	for i := range h1 {
		h1[i] = 7
	}
	h2 := c.Hist(4)
	if len(h2) != 4 {
		t.Fatalf("len = %d", len(h2))
	}
	for i, v := range h2 {
		if v != 0 {
			t.Fatalf("hist[%d] = %d, want zeroed", i, v)
		}
	}
	if &h1[0] != &h2[0] {
		t.Fatal("histogram buffer not recycled")
	}
}

func TestLedgerRecycled(t *testing.T) {
	c := NewCore[int]("test", 5, 1, false)
	l1 := c.Ledger()
	if len(l1) != 5 {
		t.Fatalf("len = %d", len(l1))
	}
	l1[3] = 9
	l2 := c.Ledger()
	if l2[3] != 0 {
		t.Fatal("ledger not zeroed")
	}
	if &l1[0] != &l2[0] {
		t.Fatal("ledger buffer not recycled")
	}
}

func TestRecentRing(t *testing.T) {
	c := NewCore[int]("test", 1, 1, false)
	for i := 0; i < ringCap+10; i++ {
		step(c, float64(i), 0, 0, 0)
	}
	rec := c.Recent()
	if len(rec) != ringCap {
		t.Fatalf("Recent returned %d entries, want %d", len(rec), ringCap)
	}
	// Oldest first; the last entry is the most recent step.
	if rec[len(rec)-1].Index != ringCap+9 {
		t.Fatalf("last ring entry index = %d", rec[len(rec)-1].Index)
	}
	for i := 1; i < len(rec); i++ {
		if rec[i].Index != rec[i-1].Index+1 {
			t.Fatalf("ring not in order at %d: %d then %d", i, rec[i-1].Index, rec[i].Index)
		}
		if rec[i].Hist != nil {
			t.Fatal("ring entry retained a histogram alias")
		}
	}
}

// TestRecentAtRingBoundary pins Recent's behavior at the wraparound edge:
// exactly ringCap committed steps must return all of them in order, and one
// more must drop exactly the oldest.
func TestRecentAtRingBoundary(t *testing.T) {
	c := NewCore[int]("test", 1, 1, false)
	for i := 0; i < ringCap; i++ {
		step(c, float64(i), 0, 0, 0)
	}
	rec := c.Recent()
	if len(rec) != ringCap {
		t.Fatalf("at %d steps Recent returned %d entries", ringCap, len(rec))
	}
	if rec[0].Index != 0 || rec[ringCap-1].Index != ringCap-1 {
		t.Fatalf("at %d steps Recent spans [%d, %d]", ringCap, rec[0].Index, rec[ringCap-1].Index)
	}

	step(c, 0, 0, 0, 0) // step ringCap+1 evicts exactly index 0
	rec = c.Recent()
	if len(rec) != ringCap {
		t.Fatalf("at %d steps Recent returned %d entries", ringCap+1, len(rec))
	}
	if rec[0].Index != 1 || rec[ringCap-1].Index != ringCap {
		t.Fatalf("at %d steps Recent spans [%d, %d], want [1, %d]",
			ringCap+1, rec[0].Index, rec[ringCap-1].Index, ringCap)
	}
	for i := 1; i < len(rec); i++ {
		if rec[i].Index != rec[i-1].Index+1 {
			t.Fatalf("ring not in order at %d", i)
		}
	}
}

func TestObserverSeesCommittedSteps(t *testing.T) {
	c := NewCore[int]("obs", 3, 1, false)
	var got []StepStats
	c.Attach(ObserverFunc(func(st StepStats) { got = append(got, st) }))
	step(c, 2, 5, 3, 1)
	step(c, 4, 6, 2, 0)
	if len(got) != 2 {
		t.Fatalf("observer saw %d steps", len(got))
	}
	for i, st := range got {
		if st.Machine != "obs" || st.Index != i {
			t.Fatalf("step %d: machine %q index %d", i, st.Machine, st.Index)
		}
	}
	if got[0].Cost != 2 || got[0].N != 5 || got[0].MaxSlot != 3 || got[0].Overload != 1 {
		t.Fatalf("step 0 fields: %+v", got[0])
	}
}

func TestAttachNilObserverIgnored(t *testing.T) {
	c := NewCore[int]("test", 1, 1, false)
	c.Attach(nil)
	step(c, 1, 0, 0, 0) // must not panic
}

func TestGlobalObserverAddRemove(t *testing.T) {
	c := NewCore[int]("test", 1, 1, false)
	var n int
	remove := AddGlobalObserver(ObserverFunc(func(st StepStats) { n++ }))
	step(c, 1, 0, 0, 0)
	step(c, 1, 0, 0, 0)
	remove()
	remove() // idempotent
	step(c, 1, 0, 0, 0)
	if n != 2 {
		t.Fatalf("global observer saw %d steps, want 2", n)
	}
}

func TestGlobalCountersAdvance(t *testing.T) {
	before := GlobalCounters()
	c := NewCore[int]("test", 2, 1, false)
	step(c, 1, 10, 3, 2)
	step(c, 1, 5, 1, 0)
	after := GlobalCounters()
	if d := after.Supersteps - before.Supersteps; d != 2 {
		t.Fatalf("supersteps advanced by %d, want 2", d)
	}
	if d := after.Messages - before.Messages; d != 15 {
		t.Fatalf("messages advanced by %d, want 15", d)
	}
	if d := after.Overloads - before.Overloads; d != 2 {
		t.Fatalf("overloads advanced by %d, want 2", d)
	}
	if after.MaxSlotLoad < 3 {
		t.Fatalf("max slot load = %d, want >= 3", after.MaxSlotLoad)
	}
}

type span struct{ slot, width int }

func TestCheckScheduleValid(t *testing.T) {
	spans := []span{{4, 2}, {0, 1}, {1, 3}, {6, 1}}
	CheckSchedule(spans,
		func(s span) int { return s.slot },
		func(s span) int { return s.width },
		func(slot int) { t.Fatalf("valid schedule rejected at slot %d", slot) })
	// Sorted in place by slot.
	for i := 1; i < len(spans); i++ {
		if spans[i].slot < spans[i-1].slot {
			t.Fatalf("not sorted: %v", spans)
		}
	}
}

func TestCheckScheduleOverlap(t *testing.T) {
	cases := [][]span{
		{{0, 2}, {1, 1}},         // interval overlap
		{{3, 1}, {3, 1}},         // duplicate slot
		{{0, 1}, {5, 3}, {6, 1}}, // overlap after sorting
	}
	for i, spans := range cases {
		fired := false
		func() {
			defer func() { recover() }()
			CheckSchedule(spans,
				func(s span) int { return s.slot },
				func(s span) int { return s.width },
				func(slot int) { fired = true; panic("overlap") })
		}()
		if !fired {
			t.Fatalf("case %d: overlap not detected", i)
		}
	}
}

func TestCheckScheduleLarge(t *testing.T) {
	// Above the insertion-sort cutoff: descending slots, still valid.
	n := 100
	spans := make([]span, n)
	for i := range spans {
		spans[i] = span{slot: n - 1 - i, width: 1}
	}
	CheckSchedule(spans,
		func(s span) int { return s.slot },
		func(s span) int { return s.width },
		func(slot int) { t.Fatalf("valid large schedule rejected at %d", slot) })
	if spans[0].slot != 0 || spans[n-1].slot != n-1 {
		t.Fatal("large schedule not sorted")
	}
}
