package engine

import (
	"sync"
	"testing"

	"parbw/internal/xrand"
)

// TestColsRNGMatchesEagerSplit is the contract that makes the lazy column
// safe: whatever order processors first touch their sources, every stream is
// byte-for-byte the eager root.Split(i) the machines used to materialize at
// construction.
func TestColsRNGMatchesEagerSplit(t *testing.T) {
	const p, seed = 64, 0xfeed
	cs := NewCols(p, seed)
	root := xrand.New(seed)

	// Touch in a scrambled order, interleaving draws, to prove derivation
	// order and parent state are immaterial.
	order := xrand.New(1).Perm(p)
	for _, i := range order {
		got := cs.RNG(i).Uint64()
		want := root.Split(uint64(i)).Uint64()
		if got != want {
			t.Fatalf("proc %d first draw = %#x, want eager split's %#x", i, got, want)
		}
	}
	// Second draws continue the same streams (pointers are stable).
	for i := 0; i < p; i++ {
		want := root.Split(uint64(i))
		want.Uint64()
		if got, w := cs.RNG(i).Uint64(), want.Uint64(); got != w {
			t.Fatalf("proc %d second draw = %#x, want %#x", i, got, w)
		}
	}
}

// TestColsRNGConcurrentFirstUse exercises the lazy-allocation path from many
// goroutines at once (run under -race in CI): the column alloc is Once-guarded
// and each entry is only touched by its own processor's goroutine.
func TestColsRNGConcurrentFirstUse(t *testing.T) {
	const p = 128
	cs := NewCols(p, 7)
	got := make([]uint64, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = cs.RNG(i).Uint64()
		}(i)
	}
	wg.Wait()
	root := xrand.New(7)
	for i := 0; i < p; i++ {
		if want := root.Split(uint64(i)).Uint64(); got[i] != want {
			t.Fatalf("proc %d concurrent first draw = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestColsResetProc(t *testing.T) {
	cs := NewCols(4, 0)
	cs.Work[2] = 9
	cs.AutoSlot[2] = 3
	cs.RecvUsed[2] = true
	cs.Off[2] = 7
	cs.Cnt[2] = 5
	cs.ResetProc(2)
	if cs.Work[2] != 0 || cs.AutoSlot[2] != 0 || cs.RecvUsed[2] {
		t.Fatalf("ResetProc left counters: %+v", cs)
	}
	// Off/Cnt are queue bookkeeping owned by the machine body, not ResetProc.
	if cs.Off[2] != 7 || cs.Cnt[2] != 5 {
		t.Fatal("ResetProc must not touch Off/Cnt")
	}
}
