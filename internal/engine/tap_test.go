package engine

import (
	"sync"
	"testing"
)

// A tagged observer sees exactly the steps committed on tagged goroutines,
// each with the committing goroutine's own tag — concurrent tagged drivers
// never cross-talk, and untagged drivers stay invisible.
func TestTaggedObserverScopesByGoroutine(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	remove := AddTaggedObserver(TaggedObserverFunc(func(tag any, st StepStats) {
		mu.Lock()
		got[tag.(string)]++
		mu.Unlock()
	}))
	defer remove()

	var wg sync.WaitGroup
	drive := func(tag string, steps int) {
		defer wg.Done()
		if tag != "" {
			untag := TagGoroutine(tag)
			defer untag()
		}
		c := NewCore[int]("test", 2, 1, false)
		for i := 0; i < steps; i++ {
			step(c, 1, 1, 1, 0)
		}
	}
	wg.Add(3)
	go drive("a", 3)
	go drive("b", 5)
	go drive("", 7) // untagged: invisible to the tagged tap
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if got["a"] != 3 || got["b"] != 5 || len(got) != 2 {
		t.Fatalf("tagged step counts = %v, want a:3 b:5 only", got)
	}
}

// Untagging stops delivery immediately, and a double untag is harmless.
func TestTagGoroutineUntagStopsDelivery(t *testing.T) {
	var mu sync.Mutex
	n := 0
	remove := AddTaggedObserver(TaggedObserverFunc(func(any, StepStats) {
		mu.Lock()
		n++
		mu.Unlock()
	}))
	defer remove()

	c := NewCore[int]("test", 2, 1, false)
	untag := TagGoroutine("x")
	step(c, 1, 0, 0, 0)
	untag()
	untag() // idempotent
	step(c, 1, 0, 0, 0)

	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("observed %d steps, want 1 (only the tagged one)", n)
	}
	if tagged.count.Load() != 0 {
		t.Fatalf("tag count = %d after untag, want 0", tagged.count.Load())
	}
}

// With no tags and no tagged observers the commit path stays allocation-free
// — the gate is two atomic loads, not a stack parse.
func TestTaggedTapIdleCostIsZeroAllocs(t *testing.T) {
	c := NewCore[int]("test", 2, 1, false)
	step(c, 1, 0, 0, 0) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		step(c, 1, 0, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("idle tagged tap costs %v allocs/step, want 0", allocs)
	}
}

// Removing a tagged observer stops delivery even while the goroutine stays
// tagged, and remove is idempotent.
func TestAddTaggedObserverRemove(t *testing.T) {
	var mu sync.Mutex
	n := 0
	remove := AddTaggedObserver(TaggedObserverFunc(func(any, StepStats) {
		mu.Lock()
		n++
		mu.Unlock()
	}))
	untag := TagGoroutine("y")
	defer untag()

	c := NewCore[int]("test", 2, 1, false)
	step(c, 1, 0, 0, 0)
	remove()
	remove()
	step(c, 1, 0, 0, 0)

	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("observed %d steps, want 1", n)
	}
}
