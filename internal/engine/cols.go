package engine

// This file is the columnar per-processor state layer of the engine. The
// machines used to keep one object per simulated processor (a Ctx struct
// holding its own send slice, its own eagerly-materialized RNG, its own
// counters), which put an O(p)-objects floor under memory and allocation
// count and capped practical machine sizes around tens of thousands of
// processors. Cols replaces that with struct-of-arrays slabs: one flat
// column per field, indexed by processor id, so a million-processor machine
// is a handful of large allocations instead of millions of small ones. The
// machines' Ctx types become thin index-plus-pointer views over these
// columns; the queued per-processor work itself (sends, requests, accesses)
// lives in O(cores) chunk-local arenas addressed by the Off/Cnt columns.

import (
	"sync"

	"parbw/internal/xrand"
)

// Cols holds the per-processor engine state shared by every machine as
// parallel flat arrays indexed by processor id. All columns are reset by the
// machine's chunk body at the start of each superstep, touching only the
// processors the chunk owns, so resets parallelize with the fan-out and
// never allocate.
//
// The RNG column is lazy: constructing a Cols records only the root seed
// state, and a processor's source is derived on its first RNG call —
// byte-for-byte identical to the eager root.Split(i) the machines used to
// run at construction (Split does not advance the parent, so derivation
// order is immaterial). A machine whose programs never draw randomness pays
// nothing for p sources.
type Cols struct {
	Work     []int   // local work charged this step
	AutoSlot []int   // next free auto-assigned injection/request slot
	RecvUsed []bool  // whether the processor consulted its inbox this step
	Off      []int32 // start of the processor's queued run in its chunk arena
	Cnt      []int32 // number of queued items in the run

	root    xrand.Source
	rngOnce sync.Once
	rng     []xrand.Source
	rngInit []bool
}

// NewCols allocates the columns for p processors. seed is the machine seed
// every per-processor RNG derives from.
func NewCols(p int, seed uint64) *Cols {
	return &Cols{
		Work:     make([]int, p),
		AutoSlot: make([]int, p),
		RecvUsed: make([]bool, p),
		Off:      make([]int32, p),
		Cnt:      make([]int32, p),
		root:     *xrand.New(seed),
	}
}

// ResetProc zeroes processor i's per-step counters for a new superstep. It
// is called from the chunk body before the processor's program runs;
// distinct processors are reset by distinct goroutines, never concurrently
// for one i. Off and Cnt are queue bookkeeping the machine sets itself (Off
// is the arena cursor at the moment the program starts, not zero).
func (cs *Cols) ResetProc(i int) {
	cs.Work[i] = 0
	cs.AutoSlot[i] = 0
	cs.RecvUsed[i] = false
}

// allocRNG materializes the RNG columns on first use.
func (cs *Cols) allocRNG() {
	cs.rng = make([]xrand.Source, len(cs.Work))
	cs.rngInit = make([]bool, len(cs.Work))
}

// RNG returns processor i's private deterministic source, deriving it from
// the root seed on first use. The returned pointer is stable for the life of
// the machine and the source's state persists across supersteps, exactly as
// the eagerly-split sources did. Safe to call concurrently for distinct i
// (entry i is only ever touched by the goroutine running processor i).
func (cs *Cols) RNG(i int) *xrand.Source {
	cs.rngOnce.Do(cs.allocRNG)
	if !cs.rngInit[i] {
		cs.root.SplitInto(uint64(i), &cs.rng[i])
		cs.rngInit[i] = true
	}
	return &cs.rng[i]
}
