package engine_test

// Cross-model conformance suite: the BSP, QSM, and PRAM machines are three
// merge strategies over one engine core, so the same abstract workload must
// produce the same normalized accounting on all of them. The suite drives a
// seeded slot-scheduled workload through each machine and checks the shared
// Stats invariants — N equals the sum of issued requests, Steps equals the
// maximum slot + 1, per-slot histograms agree, and cost is monotone in
// per-step overload — plus the ordering contract of the observer layer.

import (
	"testing"

	"parbw/internal/bsp"
	"parbw/internal/engine"
	"parbw/internal/model"
	"parbw/internal/pram"
	"parbw/internal/qsm"
)

// workload is an abstract slot-scheduled communication pattern: request j of
// processor i goes to destination dst[i][j] in slot slot[i][j]. Slots are
// distinct per processor, so the pattern is valid on every machine.
type workload struct {
	p    int
	slot [][]int
	dst  [][]int
}

// conformanceWorkload builds a deterministic skewed workload: processor i
// issues 1 + i%3 requests at slots (i + 2j) mod 8 toward (i*7 + j) mod p.
func conformanceWorkload(p int) workload {
	w := workload{p: p, slot: make([][]int, p), dst: make([][]int, p)}
	for i := 0; i < p; i++ {
		k := 1 + i%3
		for j := 0; j < k; j++ {
			w.slot[i] = append(w.slot[i], (i+2*j)%8)
			w.dst[i] = append(w.dst[i], (i*7+j)%p)
		}
	}
	return w
}

// expected computes the workload's ground-truth accounting directly.
func (w workload) expected() (n, steps, maxSlot int, hist []int) {
	for i := range w.slot {
		for _, s := range w.slot[i] {
			if s+1 > steps {
				steps = s + 1
			}
		}
		n += len(w.slot[i])
	}
	hist = make([]int, steps)
	for i := range w.slot {
		for _, s := range w.slot[i] {
			hist[s]++
			if hist[s] > maxSlot {
				maxSlot = hist[s]
			}
		}
	}
	return n, steps, maxSlot, hist
}

func TestConformanceAcrossModels(t *testing.T) {
	const p = 16
	w := conformanceWorkload(p)
	wantN, wantSteps, wantMaxSlot, wantHist := w.expected()

	// BSP(m): one single-flit message per scheduled request.
	bm := bsp.New(bsp.Config{P: p, Cost: model.BSPm(4, 1), Seed: 1})
	bst := bm.Superstep(func(c *bsp.Ctx) {
		i := c.ID()
		for j, s := range w.slot[i] {
			c.SendAt(s, w.dst[i][j], bsp.Msg{Tag: 1, A: int64(j)})
		}
	})
	if bst.N != wantN {
		t.Errorf("bsp: N = %d, want sum of sends %d", bst.N, wantN)
	}
	if bst.Steps != wantSteps {
		t.Errorf("bsp: Steps = %d, want max slot+1 = %d", bst.Steps, wantSteps)
	}
	if bst.MaxSlot != wantMaxSlot {
		t.Errorf("bsp: MaxSlot = %d, want %d", bst.MaxSlot, wantMaxSlot)
	}

	// QSM(m): one write request per scheduled request; distinct per-proc
	// addresses keep the read/write exclusion rule out of the picture.
	qm := qsm.New(qsm.Config{P: p, Mem: p, Cost: model.QSMm(4), Seed: 1})
	qst := qm.Phase(func(c *qsm.Ctx) {
		i := c.ID()
		for j, s := range w.slot[i] {
			c.WriteAt(s, w.dst[i][j], int64(i))
		}
	})
	if got := qst.Reads + qst.Writes; got != wantN {
		t.Errorf("qsm: Reads+Writes = %d, want %d", got, wantN)
	}
	if qst.Steps != wantSteps {
		t.Errorf("qsm: Steps = %d, want %d", qst.Steps, wantSteps)
	}
	if qst.MaxSlot != wantMaxSlot {
		t.Errorf("qsm: MaxSlot = %d, want %d", qst.MaxSlot, wantMaxSlot)
	}

	// The two slot-scheduled machines must also agree on c_m: identical
	// histograms priced by the identical penalty.
	if bst.CM != qst.CM {
		t.Errorf("c_m diverges: bsp %v vs qsm %v", bst.CM, qst.CM)
	}
	if bst.Overload != qst.Overload {
		t.Errorf("overload diverges: bsp %d vs qsm %d", bst.Overload, qst.Overload)
	}

	// PRAM: slot s becomes lock-step step s; processor i writes its cell in
	// the steps it scheduled. Per-step write totals must reproduce the slot
	// histogram, and the total must match N.
	pm := pram.New(pram.Config{P: p, Mem: p, Mode: pram.CRCWArbitrary, Seed: 1})
	total := 0
	for s := 0; s < wantSteps; s++ {
		st := pm.Step(func(c *pram.Ctx) {
			i := c.ID()
			for j, ps := range w.slot[i] {
				if ps == s {
					c.Write(w.dst[i][j], int64(i))
				}
			}
		})
		if st.Writes != wantHist[s] {
			t.Errorf("pram: step %d writes = %d, want hist %d", s, st.Writes, wantHist[s])
		}
		total += st.Writes
	}
	if total != wantN {
		t.Errorf("pram: total writes = %d, want %d", total, wantN)
	}
	if pm.Steps() != wantSteps {
		t.Errorf("pram: Steps = %d, want %d", pm.Steps(), wantSteps)
	}
}

// costUnderLoad packs n width-1 requests evenly into 4 slots on a machine
// with m=4 and returns the charged superstep/phase cost.
func bspCostUnderLoad(t *testing.T, n int) model.Time {
	t.Helper()
	m := bsp.New(bsp.Config{P: n, Cost: model.BSPm(4, 1), Seed: 1})
	st := m.Superstep(func(c *bsp.Ctx) {
		c.SendAt(c.ID()%4, (c.ID()+1)%n, bsp.Msg{Tag: 1})
	})
	if st.N != n {
		t.Fatalf("bsp load %d: N = %d", n, st.N)
	}
	return st.Cost
}

func qsmCostUnderLoad(t *testing.T, n int) model.Time {
	t.Helper()
	m := qsm.New(qsm.Config{P: n, Mem: n, Cost: model.QSMm(4), Seed: 1})
	st := m.Phase(func(c *qsm.Ctx) {
		c.WriteAt(c.ID()%4, c.ID(), 1)
	})
	if st.Writes != n {
		t.Fatalf("qsm load %d: Writes = %d", n, st.Writes)
	}
	return st.Cost
}

// Cost must be monotone in per-step overload, and identical between the two
// slot-scheduled machines: the same histogram under the same penalty prices
// the same, whether the requests are messages or shared-memory writes.
func TestConformanceCostMonotoneInOverload(t *testing.T) {
	loads := []int{4, 8, 16, 32, 64}
	var prevB, prevQ model.Time
	for i, n := range loads {
		cb := bspCostUnderLoad(t, n)
		cq := qsmCostUnderLoad(t, n)
		if cb != cq {
			t.Errorf("load %d: bsp cost %v != qsm cost %v", n, cb, cq)
		}
		if i > 0 && cb < prevB {
			t.Errorf("bsp cost not monotone: load %d cost %v < previous %v", n, cb, prevB)
		}
		if i > 0 && cq < prevQ {
			t.Errorf("qsm cost not monotone: load %d cost %v < previous %v", n, cq, prevQ)
		}
		prevB, prevQ = cb, cq
	}
	// Past the aggregate limit the exponential penalty must actually bite.
	if !(bspCostUnderLoad(t, 64) > bspCostUnderLoad(t, 16)) {
		t.Error("overloaded schedule not priced above saturated schedule")
	}
}

// Observer contract: per-machine observers fire before the process-global
// tap, per committed step, in superstep order, with the stats the machine
// itself retains.
func TestObserverCallbackOrdering(t *testing.T) {
	type event struct {
		scope string
		st    engine.StepStats
	}
	var events []event
	m := bsp.New(bsp.Config{
		P: 8, Cost: model.BSPm(4, 1), Seed: 1, Trace: true,
		Observer: engine.ObserverFunc(func(st engine.StepStats) {
			events = append(events, event{"machine", st})
		}),
	})
	remove := engine.AddGlobalObserver(engine.ObserverFunc(func(st engine.StepStats) {
		events = append(events, event{"global", st})
	}))
	defer remove()

	const steps = 5
	for s := 0; s < steps; s++ {
		m.Superstep(func(c *bsp.Ctx) {
			c.Charge(s + 1)
			c.Send((c.ID()+1)%8, 1, int64(s))
		})
	}
	remove()

	if len(events) != 2*steps {
		t.Fatalf("saw %d events, want %d", len(events), 2*steps)
	}
	trace := m.Trace()
	for s := 0; s < steps; s++ {
		loc, glob := events[2*s], events[2*s+1]
		if loc.scope != "machine" || glob.scope != "global" {
			t.Fatalf("step %d: order = (%s, %s), want (machine, global)", s, loc.scope, glob.scope)
		}
		for _, ev := range []event{loc, glob} {
			if ev.st.Machine != "bsp" || ev.st.Index != s {
				t.Fatalf("step %d: got machine %q index %d", s, ev.st.Machine, ev.st.Index)
			}
			if ev.st.Cost != trace[s].Cost || ev.st.N != trace[s].N || ev.st.W != trace[s].W {
				t.Fatalf("step %d: observer stats %+v diverge from trace %+v", s, ev.st, trace[s])
			}
		}
	}
}
