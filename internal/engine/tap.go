package engine

// Goroutine-scoped step tagging: the mechanism that lets the serve path
// attribute committed supersteps to the (job, task) that drove them without
// serializing observed runs the way the process-global tap must.
//
// The global tap (AddGlobalObserver) sees every machine in the process and
// cannot tell whose steps are whose, so harness.Run makes observed runs
// exclusive. A tagged observer instead receives each step together with the
// tag attached to the goroutine that committed it — observer callbacks run
// on the machine's driver goroutine, which for the run service is exactly
// the executor goroutine running one task. Tag that goroutine with the task
// identity and concurrent sweeps stream their own steps with no cross-talk
// and no exclusivity.
//
// Cost discipline: commits only pay for tagging when at least one goroutine
// is tagged AND at least one tagged observer is registered (two atomic
// loads otherwise). The tag lookup itself parses the goroutine id from the
// runtime stack header (~1µs) — negligible against a superstep, but not
// against nothing, hence the gate.

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// TaggedObserver receives committed steps annotated with the tag of the
// goroutine that drove them. Like Observer, callbacks run on the driver
// goroutine and must be cheap; StepStats.Hist is only valid inside the call.
type TaggedObserver interface {
	OnTaggedStep(tag any, st StepStats)
}

// TaggedObserverFunc adapts a function to the TaggedObserver interface.
type TaggedObserverFunc func(tag any, st StepStats)

// OnTaggedStep calls f.
func (f TaggedObserverFunc) OnTaggedStep(tag any, st StepStats) { f(tag, st) }

type taggedReg struct{ obs TaggedObserver }

var tagged struct {
	count     atomic.Int64 // live goroutine tags; gates the per-commit lookup
	tags      sync.Map     // goroutine id (uint64) → tag (any)
	mu        sync.Mutex   // guards writes to observers
	observers atomic.Pointer[[]*taggedReg]
}

// goid returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine 123 [running]:"). Callers gate on tagged.count so the
// parse only happens while something is actually tagged.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	i := bytes.IndexByte(s, ' ')
	if i <= 0 {
		return 0
	}
	id, err := strconv.ParseUint(string(s[:i]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// TagGoroutine attaches tag to the calling goroutine until the returned
// untag function runs. While tagged, every superstep committed on this
// goroutine is delivered to the tagged observers together with tag. Tags do
// not nest: a second TagGoroutine on the same goroutine replaces the first,
// and its untag restores nothing — callers own the discipline of one tag
// per goroutine at a time. untag must run on the same goroutine.
func TagGoroutine(tag any) (untag func()) {
	id := goid()
	if _, loaded := tagged.tags.Swap(id, tag); !loaded {
		tagged.count.Add(1)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if _, loaded := tagged.tags.LoadAndDelete(id); loaded {
				tagged.count.Add(-1)
			}
		})
	}
}

// AddTaggedObserver registers obs to receive every step committed on a
// tagged goroutine, process-wide, and returns a function that removes it.
func AddTaggedObserver(obs TaggedObserver) (remove func()) {
	if obs == nil {
		return func() {}
	}
	reg := &taggedReg{obs: obs}
	tagged.mu.Lock()
	defer tagged.mu.Unlock()
	var cur []*taggedReg
	if p := tagged.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]*taggedReg, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = reg
	tagged.observers.Store(&next)
	var once sync.Once
	return func() {
		once.Do(func() {
			tagged.mu.Lock()
			defer tagged.mu.Unlock()
			var cur []*taggedReg
			if p := tagged.observers.Load(); p != nil {
				cur = *p
			}
			next := make([]*taggedReg, 0, len(cur))
			for _, r := range cur {
				if r != reg {
					next = append(next, r)
				}
			}
			tagged.observers.Store(&next)
		})
	}
}

// notifyTagged fans a committed step out to the tagged observers when the
// committing goroutine carries a tag. Called from Core commit, on the
// driver goroutine.
func notifyTagged(st StepStats) {
	if tagged.count.Load() == 0 {
		return
	}
	p := tagged.observers.Load()
	if p == nil || len(*p) == 0 {
		return
	}
	tag, ok := tagged.tags.Load(goid())
	if !ok {
		return
	}
	for _, r := range *p {
		r.obs.OnTaggedStep(tag, st)
	}
}
