package engine

import "testing"

func TestSlabTakeGrowsAndRecycles(t *testing.T) {
	var s Slab[int]
	a := s.Take(10)
	if len(a) != 10 || s.Cap() < 10 {
		t.Fatalf("len=%d cap=%d after Take(10)", len(a), s.Cap())
	}
	b := s.Take(8)
	if len(b) != 8 {
		t.Fatalf("len=%d after Take(8)", len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Take(8) did not recycle the retained capacity")
	}
}

// TestSlabDecay exercises the high-water release: a single huge step must
// not pin its peak capacity forever, but the shrink must wait out
// slabDecayAfter consecutive low-utilization Takes so steady workloads
// never thrash.
func TestSlabDecay(t *testing.T) {
	var s Slab[int]
	s.Take(1 << 20)
	high := s.Cap()
	if high < 1<<20 {
		t.Fatalf("cap=%d after Take(1<<20)", high)
	}
	// Under a quarter of capacity, but not yet for long enough: capacity
	// must be retained so that the streak is what triggers the shrink.
	for i := 0; i < slabDecayAfter-1; i++ {
		s.Take(100)
		if s.Cap() != high {
			t.Fatalf("cap=%d after %d low Takes, want %d retained", s.Cap(), i+1, high)
		}
	}
	s.Take(100)
	if got := s.Cap(); got != 200 {
		t.Fatalf("cap=%d after %d low Takes, want shrunk to 200", got, slabDecayAfter)
	}
}

// TestSlabDecayStreakResets verifies that any Take at >= 25% utilization
// resets the low-water streak: a workload oscillating near its capacity
// never decays.
func TestSlabDecayStreakResets(t *testing.T) {
	var s Slab[int]
	s.Take(1000)
	high := s.Cap()
	for round := 0; round < 3; round++ {
		for i := 0; i < slabDecayAfter-1; i++ {
			s.Take(10)
		}
		s.Take(high / 2) // >= 25% of capacity: streak resets
	}
	if s.Cap() != high {
		t.Fatalf("cap=%d, want %d retained across interrupted streaks", s.Cap(), high)
	}
}

// TestSlabGrowResetsStreak verifies a growth reallocation starts a fresh
// streak (the new capacity is sized to demand, so it is not "low").
func TestSlabGrowResetsStreak(t *testing.T) {
	var s Slab[int]
	s.Take(1000)
	for i := 0; i < slabDecayAfter-1; i++ {
		s.Take(10)
	}
	s.Take(10_000) // grow
	high := s.Cap()
	s.Take(10) // first low Take of a new streak — must not shrink yet
	if s.Cap() != high {
		t.Fatalf("cap=%d immediately after grow, want %d", s.Cap(), high)
	}
}
