// Package model defines the four bandwidth-limited machine models studied in
// Adler, Gibbons, Matias & Ramachandran, "Modeling Parallel Bandwidth: Local
// vs. Global Restrictions" (SPAA 1997), together with the network-overload
// penalty functions used by the globally-limited models.
//
// The locally-limited models, BSP(g) and QSM(g), charge each processor g time
// units per message or shared-memory request: a superstep in which some
// processor sends or receives h messages costs at least g·h.
//
// The globally-limited models, BSP(m) and QSM(m) (defined by the paper),
// instead let the network sustain m message injections per unit step. A
// superstep is a sequence of steps; if m_t messages are injected in step t,
// the step is charged f_m(m_t), where f_m is 0 for m_t = 0, 1 for
// 1 <= m_t <= m, and a growing penalty for m_t > m. The paper uses the
// linear charge f^ℓ(m_t) = m_t/m for lower bounds and the exponential charge
// f^u(m_t) = e^{m_t/m - 1} for upper bounds.
//
// Time in this library is a float64 count of model time units; it is
// simulated time, unrelated to wall-clock execution time of the simulator.
package model

import (
	"fmt"
	"math"
)

// Time is simulated model time.
type Time = float64

// Penalty is the per-step network charge function f_m of the globally
// limited models: given the number of messages m_t injected in a step and
// the aggregate bandwidth m, it returns the time charged for that step.
type Penalty func(mt, m int) Time

// LinearPenalty is f^ℓ: 0 for m_t=0, 1 for 1<=m_t<=m, m_t/m above. The paper
// uses it for lower bounds; it models a network that absorbs any injection
// rate at throughput m with no overload penalty.
func LinearPenalty(mt, m int) Time {
	switch {
	case mt <= 0:
		return 0
	case mt <= m:
		return 1
	default:
		return float64(mt) / float64(m)
	}
}

// ExpPenalty is f^u: 0 for m_t=0, 1 for 1<=m_t<=m, e^{m_t/m - 1} above. The
// paper uses it for upper bounds; it models a network whose performance
// deteriorates drastically past its aggregate bandwidth m. The result
// saturates at MaxPenalty rather than overflowing to +Inf so that tables
// remain comparable.
func ExpPenalty(mt, m int) Time {
	switch {
	case mt <= 0:
		return 0
	case mt <= m:
		return 1
	default:
		e := float64(mt)/float64(m) - 1
		if e > maxExpArg {
			return MaxPenalty
		}
		return math.Exp(e)
	}
}

// MaxPenalty is the saturation value of ExpPenalty.
const MaxPenalty = 1e300

// maxExpArg is ln(MaxPenalty).
var maxExpArg = math.Log(MaxPenalty)

// Kind identifies which cost discipline a machine uses.
type Kind int

const (
	// KindBSPg is the locally-limited message-passing model BSP(g):
	// superstep cost max(w, g·h, L).
	KindBSPg Kind = iota
	// KindBSPm is the globally-limited message-passing model BSP(m):
	// superstep cost max(w, h, c_m, L) with c_m = Σ_t f_m(m_t).
	KindBSPm
	// KindBSPSelfSched is the self-scheduling BSP(m) variant of Section 2:
	// superstep cost max(w, h, n/m, L) where n is the total number of
	// messages sent in the superstep, ignoring exact injection times.
	KindBSPSelfSched
	// KindQSMg is the locally-limited shared-memory model QSM(g):
	// phase cost max(w, g·h, κ).
	KindQSMg
	// KindQSMm is the globally-limited shared-memory model QSM(m):
	// phase cost max(w, h, κ, c_m).
	KindQSMm
)

// String returns the paper's name for the model kind.
func (k Kind) String() string {
	switch k {
	case KindBSPg:
		return "BSP(g)"
	case KindBSPm:
		return "BSP(m)"
	case KindBSPSelfSched:
		return "ss-BSP(m)"
	case KindQSMg:
		return "QSM(g)"
	case KindQSMm:
		return "QSM(m)"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Cost is a fully parameterized cost model for one machine.
type Cost struct {
	Kind Kind
	// G is the per-processor gap for the (g) models.
	G int
	// M is the aggregate bandwidth for the (m) models.
	M int
	// L is the BSP periodicity parameter (latency plus synchronization);
	// unused by the QSM models.
	L int
	// Penalty is the overload charge for the (m) models; nil selects
	// ExpPenalty, the paper's pessimistic upper-bound charge.
	Penalty Penalty
}

// Validate checks parameter sanity for the model kind.
func (c Cost) Validate(p int) error {
	if p <= 0 {
		return fmt.Errorf("model: p = %d, want > 0", p)
	}
	switch c.Kind {
	case KindBSPg, KindQSMg:
		if c.G < 1 {
			return fmt.Errorf("model: %v requires g >= 1, got %d", c.Kind, c.G)
		}
	case KindBSPm, KindBSPSelfSched, KindQSMm:
		if c.M < 1 {
			return fmt.Errorf("model: %v requires m >= 1, got %d", c.Kind, c.M)
		}
	default:
		return fmt.Errorf("model: unknown kind %d", int(c.Kind))
	}
	switch c.Kind {
	case KindBSPg, KindBSPm, KindBSPSelfSched:
		if c.L < 1 {
			return fmt.Errorf("model: %v requires L >= 1, got %d", c.Kind, c.L)
		}
	}
	return nil
}

// penalty returns the configured penalty function, defaulting to ExpPenalty.
func (c Cost) penalty() Penalty {
	if c.Penalty != nil {
		return c.Penalty
	}
	return ExpPenalty
}

// CM computes c_m = Σ_t f_m(m_t) for a per-step injection histogram. Only
// meaningful for the (m) kinds.
func (c Cost) CM(slots []int) Time {
	f := c.penalty()
	sum := 0.0
	for _, mt := range slots {
		sum += f(mt, c.M)
		if sum >= MaxPenalty {
			return MaxPenalty
		}
	}
	return sum
}

// Global reports whether the model is globally (aggregate) limited.
func (c Cost) Global() bool {
	return c.Kind == KindBSPm || c.Kind == KindBSPSelfSched || c.Kind == KindQSMm
}

// SharedMemory reports whether the model is a QSM variant.
func (c Cost) SharedMemory() bool {
	return c.Kind == KindQSMg || c.Kind == KindQSMm
}

// BSPSuperstep computes the cost of one BSP superstep under this model.
//
//	w     — maximum local work over processors
//	h     — maximum over processors of max(sends, receives)
//	n     — total messages sent in the superstep
//	slots — per-step injection histogram (may be nil for BSP(g) and the
//	        self-scheduling model, which ignore it)
func (c Cost) BSPSuperstep(w, h, n int, slots []int) Time {
	t := float64(w)
	if lt := float64(c.L); lt > t {
		t = lt
	}
	switch c.Kind {
	case KindBSPg:
		if gh := float64(c.G) * float64(h); gh > t {
			t = gh
		}
	case KindBSPm:
		if fh := float64(h); fh > t {
			t = fh
		}
		if cm := c.CM(slots); cm > t {
			t = cm
		}
	case KindBSPSelfSched:
		if fh := float64(h); fh > t {
			t = fh
		}
		if nm := float64(n) / float64(c.M); nm > t {
			t = nm
		}
	default:
		panic(fmt.Sprintf("model: BSPSuperstep on %v", c.Kind))
	}
	return t
}

// QSMPhase computes the cost of one QSM phase under this model.
//
//	w     — maximum local work over processors
//	h     — max(1, maximum over processors of max(reads, writes))
//	kappa — maximum per-location contention
//	slots — per-step request histogram (ignored by QSM(g))
func (c Cost) QSMPhase(w, h, kappa int, slots []int) Time {
	if h < 1 {
		h = 1
	}
	t := float64(w)
	if k := float64(kappa); k > t {
		t = k
	}
	switch c.Kind {
	case KindQSMg:
		if gh := float64(c.G) * float64(h); gh > t {
			t = gh
		}
	case KindQSMm:
		if fh := float64(h); fh > t {
			t = fh
		}
		if cm := c.CM(slots); cm > t {
			t = cm
		}
	default:
		panic(fmt.Sprintf("model: QSMPhase on %v", c.Kind))
	}
	return t
}

// BSPg returns a BSP(g) cost model.
func BSPg(g, l int) Cost { return Cost{Kind: KindBSPg, G: g, L: l} }

// BSPm returns a BSP(m) cost model with the exponential penalty.
func BSPm(m, l int) Cost { return Cost{Kind: KindBSPm, M: m, L: l} }

// BSPmLinear returns a BSP(m) cost model with the linear penalty f^ℓ.
func BSPmLinear(m, l int) Cost {
	return Cost{Kind: KindBSPm, M: m, L: l, Penalty: LinearPenalty}
}

// BSPSelfSched returns a self-scheduling BSP(m) cost model.
func BSPSelfSched(m, l int) Cost { return Cost{Kind: KindBSPSelfSched, M: m, L: l} }

// QSMg returns a QSM(g) cost model.
func QSMg(g int) Cost { return Cost{Kind: KindQSMg, G: g} }

// QSMm returns a QSM(m) cost model with the exponential penalty.
func QSMm(m int) Cost { return Cost{Kind: KindQSMm, M: m} }

// MatchedPair returns the locally- and globally-limited variants with equal
// aggregate bandwidth for p processors: g and m = p/g (the paper's standing
// assumption p·(1/g) = m). It panics unless g divides p.
func MatchedPair(p, g, l int, shared bool) (local, global Cost) {
	if g < 1 || p%g != 0 {
		panic(fmt.Sprintf("model: MatchedPair requires g >= 1 dividing p, got p=%d g=%d", p, g))
	}
	m := p / g
	if shared {
		return QSMg(g), QSMm(m)
	}
	return BSPg(g, l), BSPm(m, l)
}
