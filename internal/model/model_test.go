package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearPenalty(t *testing.T) {
	cases := []struct {
		mt, m int
		want  Time
	}{
		{0, 8, 0},
		{-3, 8, 0},
		{1, 8, 1},
		{8, 8, 1},
		{9, 8, 9.0 / 8},
		{80, 8, 10},
	}
	for _, c := range cases {
		if got := LinearPenalty(c.mt, c.m); got != c.want {
			t.Errorf("LinearPenalty(%d,%d) = %v, want %v", c.mt, c.m, got, c.want)
		}
	}
}

func TestExpPenalty(t *testing.T) {
	if got := ExpPenalty(0, 8); got != 0 {
		t.Errorf("ExpPenalty(0) = %v", got)
	}
	if got := ExpPenalty(8, 8); got != 1 {
		t.Errorf("ExpPenalty(m) = %v, want 1", got)
	}
	want := math.Exp(16.0/8 - 1)
	if got := ExpPenalty(16, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpPenalty(2m) = %v, want %v", got, want)
	}
	if got := ExpPenalty(1<<40, 8); got != MaxPenalty {
		t.Errorf("ExpPenalty huge = %v, want saturation %v", got, MaxPenalty)
	}
}

// The paper notes f^u(m_t) >= f^ℓ(m_t) for all m_t >= m; check it holds in
// general for m_t >= 0 in this implementation.
func TestExpDominatesLinear(t *testing.T) {
	f := func(mtRaw, mRaw uint16) bool {
		m := int(mRaw%1000) + 1
		mt := int(mtRaw)
		return ExpPenalty(mt, m) >= LinearPenalty(mt, m)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPenaltyMonotone(t *testing.T) {
	m := 16
	prevL, prevE := Time(0), Time(0)
	for mt := 0; mt < 400; mt++ {
		l, e := LinearPenalty(mt, m), ExpPenalty(mt, m)
		if l < prevL || e < prevE {
			t.Fatalf("penalty decreased at mt=%d", mt)
		}
		prevL, prevE = l, e
	}
}

func TestCM(t *testing.T) {
	c := BSPmLinear(4, 1)
	// slots: 0, 3, 4, 8 -> 0 + 1 + 1 + 2 = 4
	if got := c.CM([]int{0, 3, 4, 8}); got != 4 {
		t.Fatalf("CM = %v, want 4", got)
	}
	ce := BSPm(4, 1)
	want := 1 + math.Exp(8.0/4-1)
	if got := ce.CM([]int{4, 8}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CM exp = %v, want %v", got, want)
	}
}

func TestBSPSuperstepBSPg(t *testing.T) {
	c := BSPg(4, 10)
	// max(w=3, g*h=4*5=20, L=10) = 20
	if got := c.BSPSuperstep(3, 5, 100, nil); got != 20 {
		t.Fatalf("BSP(g) cost = %v, want 20", got)
	}
	// latency floor
	if got := c.BSPSuperstep(0, 0, 0, nil); got != 10 {
		t.Fatalf("BSP(g) idle cost = %v, want L=10", got)
	}
}

func TestBSPSuperstepBSPm(t *testing.T) {
	c := BSPmLinear(4, 2)
	// hist of 3 slots at exactly m: c_m = 3; h=2, w=1 -> 3
	if got := c.BSPSuperstep(1, 2, 12, []int{4, 4, 4}); got != 3 {
		t.Fatalf("BSP(m) cost = %v, want 3", got)
	}
	// h dominates
	if got := c.BSPSuperstep(1, 9, 12, []int{4, 4, 4}); got != 9 {
		t.Fatalf("BSP(m) h-dominated cost = %v, want 9", got)
	}
}

func TestBSPSuperstepSelfSched(t *testing.T) {
	c := BSPSelfSched(4, 2)
	// max(w=1, h=3, n/m=40/4=10, L=2) = 10
	if got := c.BSPSuperstep(1, 3, 40, nil); got != 10 {
		t.Fatalf("self-sched cost = %v, want 10", got)
	}
}

func TestQSMPhase(t *testing.T) {
	g := QSMg(3)
	// max(w=2, g*h=3*4=12, κ=5) = 12
	if got := g.QSMPhase(2, 4, 5, nil); got != 12 {
		t.Fatalf("QSM(g) cost = %v, want 12", got)
	}
	// h floor of 1: max(w=0, g*1=3, κ=0) = 3
	if got := g.QSMPhase(0, 0, 0, nil); got != 3 {
		t.Fatalf("QSM(g) idle cost = %v, want 3", got)
	}
	m := QSMm(4)
	m.Penalty = LinearPenalty
	// max(w=0, h=2, κ=9, c_m=2) = 9
	if got := m.QSMPhase(0, 2, 9, []int{4, 4}); got != 9 {
		t.Fatalf("QSM(m) cost = %v, want 9", got)
	}
}

func TestValidate(t *testing.T) {
	if err := BSPg(2, 4).Validate(8); err != nil {
		t.Fatalf("valid BSP(g) rejected: %v", err)
	}
	if err := BSPg(0, 4).Validate(8); err == nil {
		t.Fatal("g=0 accepted")
	}
	if err := BSPm(0, 4).Validate(8); err == nil {
		t.Fatal("m=0 accepted")
	}
	if err := BSPm(4, 0).Validate(8); err == nil {
		t.Fatal("L=0 accepted for BSP(m)")
	}
	if err := QSMg(2).Validate(8); err != nil {
		t.Fatalf("QSM(g) without L rejected: %v", err)
	}
	if err := QSMm(2).Validate(0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if err := (Cost{Kind: Kind(99)}).Validate(4); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBSPg: "BSP(g)", KindBSPm: "BSP(m)", KindBSPSelfSched: "ss-BSP(m)",
		KindQSMg: "QSM(g)", KindQSMm: "QSM(m)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestMatchedPair(t *testing.T) {
	local, global := MatchedPair(64, 8, 4, false)
	if local.Kind != KindBSPg || local.G != 8 {
		t.Fatalf("local = %+v", local)
	}
	if global.Kind != KindBSPm || global.M != 8 {
		t.Fatalf("global = %+v", global)
	}
	ql, qg := MatchedPair(64, 4, 0, true)
	if ql.Kind != KindQSMg || qg.Kind != KindQSMm || qg.M != 16 {
		t.Fatalf("qsm pair = %+v %+v", ql, qg)
	}
}

func TestMatchedPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing g did not panic")
		}
	}()
	MatchedPair(10, 3, 1, false)
}

// The emulation observation of Section 4: a locally-limited superstep cost
// always dominates the corresponding globally-limited cost when m = p/g and
// the injections are spread as in the grouped emulation (g substeps, each
// with at most p/g = m messages). We check cost-model consistency: spreading
// n <= p messages, one per processor, over g substeps of m injections each
// costs max(h, g) <= g·h on BSP(m) versus g·h on BSP(g).
func TestGroupedEmulationCostDominance(t *testing.T) {
	f := func(pRaw, gRaw uint8) bool {
		g := int(gRaw%6) + 1
		groups := int(pRaw%50) + 1
		p := g * groups
		m := p / g
		local, global := BSPg(g, 1), BSPmLinear(m, 1)
		// One message per processor, emulated in g substeps of m messages.
		h := 1
		slots := make([]int, g)
		for t := range slots {
			slots[t] = m
		}
		lc := local.BSPSuperstep(0, h, p, nil)
		gc := global.BSPSuperstep(0, h, p, slots)
		return gc <= lc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCMSaturates(t *testing.T) {
	c := BSPm(1, 1)
	slots := make([]int, 4)
	for i := range slots {
		slots[i] = 1 << 30 // each step individually saturates
	}
	if got := c.CM(slots); got != MaxPenalty {
		t.Fatalf("CM = %v, want saturation", got)
	}
}

func TestKindStringUnknown(t *testing.T) {
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("unknown kind string = %q", Kind(99).String())
	}
}

func TestPenaltyDefaultIsExponential(t *testing.T) {
	c := Cost{Kind: KindBSPm, M: 2, L: 1} // Penalty nil
	if got := c.CM([]int{8}); got != ExpPenalty(8, 2) {
		t.Fatalf("default penalty = %v, want exponential", got)
	}
}

func TestBSPSuperstepPanicsOnQSMKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QSM kind accepted by BSPSuperstep")
		}
	}()
	QSMg(2).BSPSuperstep(1, 1, 1, nil)
}

func TestQSMPhasePanicsOnBSPKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BSP kind accepted by QSMPhase")
		}
	}()
	BSPg(2, 2).QSMPhase(1, 1, 1, nil)
}

func TestGlobalAndShared(t *testing.T) {
	cases := []struct {
		c              Cost
		global, shared bool
	}{
		{BSPg(2, 1), false, false},
		{BSPm(2, 1), true, false},
		{BSPSelfSched(2, 1), true, false},
		{QSMg(2), false, true},
		{QSMm(2), true, true},
	}
	for _, tc := range cases {
		if tc.c.Global() != tc.global || tc.c.SharedMemory() != tc.shared {
			t.Fatalf("%v: Global/Shared = %v/%v", tc.c.Kind, tc.c.Global(), tc.c.SharedMemory())
		}
	}
}
